package dist

import (
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/partition"
)

// fallback is the bottom of the degradation ladder: the distributed
// run's restart budget is exhausted, so the same workload is re-run in
// this process under the supervision layer, starting at the synchronous
// engine and degrading further to the sequential reference if even that
// fails. Every engine reproduces the sequential trajectory, so the
// degraded result's waveform is bit-identical to what the fleet would
// have produced — the ladder trades performance, never correctness.
func (h *hub) fallback(loss *core.SimError) (*Result, error) {
	method, err := partition.ParseMethod(h.opts.Partition)
	if err != nil {
		return nil, err
	}
	lps := h.opts.LPs
	if lps <= 0 {
		lps = 4
	}
	rep, err := core.Simulate(h.c, h.stim, circuit.Tick(h.opts.Until), core.Options{
		Engine:        core.EngineSync,
		LPs:           lps,
		Partition:     method,
		PartitionSeed: h.opts.PartitionSeed,
		System:        h.sys,
		MaxEvents:     h.opts.MaxEvents,
		Metrics:       h.opts.Metrics,
		Supervise: &core.SuperviseOptions{
			Watchdog: h.opts.HangTimeout,
			Retries:  1,
			Backoff:  10 * time.Millisecond,
			Fallback: true,
		},
	})
	if err != nil {
		return nil, err
	}
	finalMode := core.EngineSync.String()
	fallbacks := 1 // dist -> sync
	if rep.Supervision != nil {
		finalMode = rep.Supervision.FinalEngine.String()
		fallbacks += int(rep.Supervision.Fallbacks)
	}
	h.gauge("dist_fallbacks", float64(fallbacks))
	return &Result{
		Values:     rep.Values,
		Waveform:   rep.Waveform,
		EndTime:    rep.EndTime,
		Events:     appliedEvents(rep.Stats.LPs),
		Shards:     h.opts.Shards,
		Attempts:   h.opts.Restarts + 1,
		Recoveries: h.opts.Restarts,
		Fallbacks:  fallbacks,
		FinalMode:  finalMode,
		Degraded:   loss.Error(),
	}, nil
}
