package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Frame kinds. Sequenced kinds (assigned a nonzero sequence number) are
// delivered reliably, exactly once, in order; unsequenced kinds
// (hello/hello-ok/heartbeat/ack) are connection-scoped and may be lost.
const (
	// FHello opens a connection: shard id, attempt, and the dialer's
	// highest contiguously received sequence number.
	FHello byte = iota + 1
	// FHelloOK answers with the acceptor's highest received sequence
	// number, from which the dialer retransmits.
	FHelloOK
	// FJob carries the JSON job spec from coordinator to worker.
	FJob
	// FBatch carries one encoded event batch for one destination LP.
	FBatch
	// FHeartbeat is the worker's periodic liveness beacon: cumulative
	// event count and an all-idle flag.
	FHeartbeat
	// FGVTStart begins one distributed GVT round.
	FGVTStart
	// FGVTReport is a worker's round report: local quiescence, local
	// minimum, and cumulative wire send/receive counts.
	FGVTReport
	// FGVTDone ends a GVT cycle with the computed GVT (or terminates the
	// run when the GVT has passed the horizon).
	FGVTDone
	// FResult carries the worker's JSON shard result.
	FResult
	// FError carries a worker's structured failure.
	FError
	// FAck is an empty frame whose header ack field drains the peer's
	// retransmit buffer when no reverse traffic is flowing.
	FAck
	// FDone tells a worker every shard's result arrived and it may exit.
	FDone
	// FMeshAddr carries a worker's mesh listener address to the hub
	// (JSON MeshAddr), the first half of the mesh handshake.
	FMeshAddr
	// FMeshTable carries the hub's complete shard -> mesh address routing
	// table to every worker (JSON MeshTable), the second half.
	FMeshTable
	// FChaos carries a hub-injected chaos order for one of the worker's
	// mesh links (netfault faults with a per-link mesh target).
	FChaos
)

// MaxFrame bounds a frame's payload; a length beyond it means a
// corrupted stream.
const MaxFrame = 64 << 20

// frameHeader is length (4) + kind (1) + seq (8) + ack (8); the length
// field counts kind+seq+ack+payload.
const frameHeader = 4 + 1 + 8 + 8

// writeFrame writes one frame. Callers serialize writes per connection.
func writeFrame(w io.Writer, kind byte, seq, ack uint64, payload []byte) error {
	buf := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(frameHeader-4+len(payload)))
	buf[4] = kind
	binary.LittleEndian.PutUint64(buf[5:13], seq)
	binary.LittleEndian.PutUint64(buf[13:21], ack)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, returning its payload in a fresh slice.
func readFrame(r io.Reader) (kind byte, seq, ack uint64, payload []byte, err error) {
	var hdr [frameHeader]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < frameHeader-4 || n > MaxFrame {
		return 0, 0, 0, nil, fmt.Errorf("wire: frame length %d", n)
	}
	kind = hdr[4]
	seq = binary.LittleEndian.Uint64(hdr[5:13])
	ack = binary.LittleEndian.Uint64(hdr[13:21])
	payload = make([]byte, n-(frameHeader-4))
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, 0, nil, err
	}
	return kind, seq, ack, payload, nil
}

// Hello is the connection-opening handshake payload.
type Hello struct {
	Shard   int32
	Attempt int32
	// RecvSeq is the dialer's highest contiguously received sequence
	// number; the acceptor resumes retransmission above it.
	RecvSeq uint64
}

func appendHello(b []byte, h Hello) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Shard))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Attempt))
	b = binary.LittleEndian.AppendUint64(b, h.RecvSeq)
	return b
}

func decodeHello(p []byte) (Hello, error) {
	if len(p) != 16 {
		return Hello{}, fmt.Errorf("wire: hello payload %d bytes", len(p))
	}
	return Hello{
		Shard:   int32(binary.LittleEndian.Uint32(p[0:4])),
		Attempt: int32(binary.LittleEndian.Uint32(p[4:8])),
		RecvSeq: binary.LittleEndian.Uint64(p[8:16]),
	}, nil
}

// Heartbeat is the worker liveness beacon payload. Sent and Recv
// piggyback the shard's cumulative cross-shard message counters on the
// beacon: the hub's GVT driver can observe a stable Mattern cut from
// heartbeats alone and conclude a steady-state (all-idle) GVT cycle
// after a single explicit round instead of two.
type Heartbeat struct {
	// Events is the shard's cumulative processed-event count.
	Events uint64
	// Idle reports every local LP parked with nothing to do.
	Idle bool
	// Sent and Recv are the shard's cumulative cross-shard message
	// counts, the same counters an FGVTReport carries.
	Sent uint64
	Recv uint64
}

// AppendHeartbeat encodes a heartbeat payload.
func AppendHeartbeat(b []byte, h Heartbeat) []byte {
	b = binary.LittleEndian.AppendUint64(b, h.Events)
	idle := byte(0)
	if h.Idle {
		idle = 1
	}
	b = append(b, idle)
	b = binary.LittleEndian.AppendUint64(b, h.Sent)
	b = binary.LittleEndian.AppendUint64(b, h.Recv)
	return b
}

// DecodeHeartbeat decodes a heartbeat payload.
func DecodeHeartbeat(p []byte) (Heartbeat, error) {
	if len(p) != 25 {
		return Heartbeat{}, fmt.Errorf("wire: heartbeat payload %d bytes", len(p))
	}
	return Heartbeat{
		Events: binary.LittleEndian.Uint64(p[0:8]),
		Idle:   p[8] == 1,
		Sent:   binary.LittleEndian.Uint64(p[9:17]),
		Recv:   binary.LittleEndian.Uint64(p[17:25]),
	}, nil
}

// GVTStart is one distributed GVT round's kickoff payload.
type GVTStart struct{ Round uint32 }

// AppendGVTStart encodes a round kickoff.
func AppendGVTStart(b []byte, g GVTStart) []byte {
	return binary.LittleEndian.AppendUint32(b, g.Round)
}

// DecodeGVTStart decodes a round kickoff.
func DecodeGVTStart(p []byte) (GVTStart, error) {
	if len(p) != 4 {
		return GVTStart{}, fmt.Errorf("wire: gvt-start payload %d bytes", len(p))
	}
	return GVTStart{Round: binary.LittleEndian.Uint32(p[0:4])}, nil
}

// GVTReport is a worker's per-round GVT report payload.
type GVTReport struct {
	Round uint32
	// Quiet reports a locally quiescent round: no LP handled a message
	// and no locally buffered message is unflushed.
	Quiet bool
	// LocalMin is the shard's local GVT contribution (min over LVTs and
	// unprocessed/unacknowledged message timestamps).
	LocalMin uint64
	// Sent and Recv are the shard's cumulative cross-shard message
	// counts; the coordinator concludes only when the global sums match
	// and are stable across consecutive rounds (Mattern-style counting).
	Sent uint64
	Recv uint64
}

// AppendGVTReport encodes a round report.
func AppendGVTReport(b []byte, g GVTReport) []byte {
	b = binary.LittleEndian.AppendUint32(b, g.Round)
	q := byte(0)
	if g.Quiet {
		q = 1
	}
	b = append(b, q)
	b = binary.LittleEndian.AppendUint64(b, g.LocalMin)
	b = binary.LittleEndian.AppendUint64(b, g.Sent)
	b = binary.LittleEndian.AppendUint64(b, g.Recv)
	return b
}

// DecodeGVTReport decodes a round report.
func DecodeGVTReport(p []byte) (GVTReport, error) {
	if len(p) != 29 {
		return GVTReport{}, fmt.Errorf("wire: gvt-report payload %d bytes", len(p))
	}
	return GVTReport{
		Round:    binary.LittleEndian.Uint32(p[0:4]),
		Quiet:    p[4] == 1,
		LocalMin: binary.LittleEndian.Uint64(p[5:13]),
		Sent:     binary.LittleEndian.Uint64(p[13:21]),
		Recv:     binary.LittleEndian.Uint64(p[21:29]),
	}, nil
}

// GVTDone ends a GVT cycle.
type GVTDone struct {
	GVT uint64
	// Terminate tells workers the GVT passed the horizon: commit and
	// stop.
	Terminate bool
}

// AppendGVTDone encodes a cycle conclusion.
func AppendGVTDone(b []byte, g GVTDone) []byte {
	b = binary.LittleEndian.AppendUint64(b, g.GVT)
	t := byte(0)
	if g.Terminate {
		t = 1
	}
	return append(b, t)
}

// DecodeGVTDone decodes a cycle conclusion.
func DecodeGVTDone(p []byte) (GVTDone, error) {
	if len(p) != 9 {
		return GVTDone{}, fmt.Errorf("wire: gvt-done payload %d bytes", len(p))
	}
	return GVTDone{GVT: binary.LittleEndian.Uint64(p[0:8]), Terminate: p[8] == 1}, nil
}

// MeshAddr is a worker's FMeshAddr payload: where its mesh listener
// accepts direct peer connections. JSON — mesh setup is cold-path.
type MeshAddr struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
}

// AppendMeshAddr encodes a mesh address announcement.
func AppendMeshAddr(b []byte, m MeshAddr) []byte {
	p, _ := json.Marshal(&m)
	return append(b, p...)
}

// DecodeMeshAddr decodes a mesh address announcement.
func DecodeMeshAddr(p []byte) (MeshAddr, error) {
	var m MeshAddr
	if err := json.Unmarshal(p, &m); err != nil {
		return MeshAddr{}, fmt.Errorf("wire: mesh-addr payload: %v", err)
	}
	return m, nil
}

// MeshTable is the hub's FMeshTable payload: every shard's mesh listener
// address, indexed by shard. Workers derive their neighbor sets from the
// partition's cut edges; the table only supplies the addresses.
type MeshTable struct {
	Addrs []string `json:"addrs"`
}

// AppendMeshTable encodes the routing table.
func AppendMeshTable(b []byte, m MeshTable) []byte {
	p, _ := json.Marshal(&m)
	return append(b, p...)
}

// DecodeMeshTable decodes the routing table.
func DecodeMeshTable(p []byte) (MeshTable, error) {
	var m MeshTable
	if err := json.Unmarshal(p, &m); err != nil {
		return MeshTable{}, fmt.Errorf("wire: mesh-table payload: %v", err)
	}
	return m, nil
}

// Chaos is a hub-injected fault order for one of the worker's mesh
// links: Op mirrors netfault's op codes, Peer is the target peer shard,
// Ms the stall/partition duration.
type Chaos struct {
	Op   uint8
	Peer int32
	Ms   uint64
}

// AppendChaos encodes a chaos order.
func AppendChaos(b []byte, c Chaos) []byte {
	b = append(b, c.Op)
	b = binary.LittleEndian.AppendUint32(b, uint32(c.Peer))
	return binary.LittleEndian.AppendUint64(b, c.Ms)
}

// DecodeChaos decodes a chaos order.
func DecodeChaos(p []byte) (Chaos, error) {
	if len(p) != 13 {
		return Chaos{}, fmt.Errorf("wire: chaos payload %d bytes", len(p))
	}
	return Chaos{
		Op:   p[0],
		Peer: int32(binary.LittleEndian.Uint32(p[1:5])),
		Ms:   binary.LittleEndian.Uint64(p[5:13]),
	}, nil
}
