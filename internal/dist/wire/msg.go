// Package wire is the socket transport under distributed simulation: a
// fixed binary message format for cross-shard simulation events,
// length-prefixed frames, and a reliable endpoint (sequence numbers,
// cumulative acks, in-order retransmit across reconnects, exponential
// backoff redialing) that upholds the one delivery contract both
// simulation protocols require — per-sender FIFO, exactly once — on top
// of connections that chaos may stall, drop, duplicate through, or
// partition.
//
// Like inject and supervise, the package sits below the engines in the
// import graph (it imports only internal/supervise and the standard
// library), so engine configs can accept a *wire.Seam without a cycle.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Msg is one cross-shard simulation message in wire form. Both engines'
// scalar message structs project onto it one to one: Kind is the
// engine's message kind (value, null, anti, request, …), From the
// sending LP, ID the Time Warp message identity for annihilation, Time
// the timestamp or bound, Gate and Value the payload.
type Msg struct {
	Kind  uint8
	From  int32
	ID    uint64
	Time  uint64
	Gate  int32
	Value uint8
}

// msgSize is the fixed encoding size of one Msg.
const msgSize = 1 + 4 + 8 + 8 + 4 + 1

// batchOverhead is the fixed prefix of a batch payload: destination LP
// and message count.
const batchOverhead = 4 + 4

// AppendBatch encodes a batch of messages for destination LP dst onto
// b. One batch is one frame, which is what makes PutAll delivery atomic
// across the wire.
func AppendBatch(b []byte, dst int32, ms []Msg) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(dst))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ms)))
	for _, m := range ms {
		b = append(b, m.Kind)
		b = binary.LittleEndian.AppendUint32(b, uint32(m.From))
		b = binary.LittleEndian.AppendUint64(b, m.ID)
		b = binary.LittleEndian.AppendUint64(b, m.Time)
		b = binary.LittleEndian.AppendUint32(b, uint32(m.Gate))
		b = append(b, m.Value)
	}
	return b
}

// DecodeBatch decodes a batch payload into its destination LP and
// messages.
func DecodeBatch(p []byte) (dst int32, ms []Msg, err error) {
	if len(p) < batchOverhead {
		return 0, nil, fmt.Errorf("wire: batch payload %d bytes", len(p))
	}
	dst = int32(binary.LittleEndian.Uint32(p[0:4]))
	n := int(binary.LittleEndian.Uint32(p[4:8]))
	if len(p) != batchOverhead+n*msgSize {
		return 0, nil, fmt.Errorf("wire: batch of %d msgs in %d bytes", n, len(p))
	}
	ms = make([]Msg, n)
	off := batchOverhead
	for i := range ms {
		ms[i] = Msg{
			Kind:  p[off],
			From:  int32(binary.LittleEndian.Uint32(p[off+1 : off+5])),
			ID:    binary.LittleEndian.Uint64(p[off+5 : off+13]),
			Time:  binary.LittleEndian.Uint64(p[off+13 : off+21]),
			Gate:  int32(binary.LittleEndian.Uint32(p[off+21 : off+25])),
			Value: p[off+25],
		}
		off += msgSize
	}
	return dst, ms, nil
}

// BatchDst peeks a batch payload's destination LP without decoding the
// messages — the relay's routing path.
func BatchDst(p []byte) (int32, error) {
	if len(p) < 4 {
		return 0, fmt.Errorf("wire: batch payload %d bytes", len(p))
	}
	return int32(binary.LittleEndian.Uint32(p[0:4])), nil
}

// BatchLen peeks a batch payload's message count.
func BatchLen(p []byte) (int, error) {
	if len(p) < batchOverhead {
		return 0, fmt.Errorf("wire: batch payload %d bytes", len(p))
	}
	return int(binary.LittleEndian.Uint32(p[4:8])), nil
}
