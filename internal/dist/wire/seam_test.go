package wire

import (
	"errors"
	"net"
	"testing"
	"time"
)

// seamPair is socketPair with the full production wiring: endpoint
// failures reach the seams' Down hooks, and the server's frame handler
// can be overridden (before any traffic) to intercept control frames.
func seamPair(t *testing.T, shardOf []int, serverHandler func(s *Seam, kind byte, payload []byte)) (client, server *Seam, cleanup func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	serverEP := New(Config{Shard: 0})
	server = NewSeam(serverEP, 1, shardOf)
	if serverHandler == nil {
		serverHandler = func(s *Seam, kind byte, payload []byte) { s.HandleFrame(kind, payload) }
	}
	sv := server
	serverEP.cfg.Handler = func(kind byte, payload []byte) { serverHandler(sv, kind, payload) }
	serverEP.cfg.OnDown = server.Down
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			hello, err := ReadHello(c)
			if err != nil {
				c.Close()
				continue
			}
			serverEP.Attach(c, hello.RecvSeq)
		}
	}()

	clientEP := New(Config{
		Shard:      -1,
		Dial:       func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Hello:      Hello{Shard: 0, Attempt: 0},
		MaxRedials: 50,
		RedialBase: time.Millisecond,
		RedialCap:  20 * time.Millisecond,
	})
	client = NewSeam(clientEP, 0, shardOf)
	clientEP.cfg.Handler = func(kind byte, payload []byte) { client.HandleFrame(kind, payload) }
	clientEP.cfg.OnDown = client.Down
	if err := clientEP.Connect(); err != nil {
		t.Fatal(err)
	}
	return client, server, func() {
		ln.Close()
		clientEP.Close()
		serverEP.Close()
	}
}

// TestSeamGVTConversation walks one full distributed GVT exchange
// through the seam on both sides of a real socket: round command in,
// report out, done and terminate commands, plus the flight accounting
// the Mattern conclusion reads.
func TestSeamGVTConversation(t *testing.T) {
	shardOf := []int{0, 1}
	reports := make(chan GVTReport, 4)
	client, server, cleanup := seamPair(t, shardOf, func(s *Seam, kind byte, payload []byte) {
		if kind == FGVTReport {
			if r, err := DecodeGVTReport(payload); err == nil {
				reports <- r
			}
			return
		}
		s.HandleFrame(kind, payload)
	})
	defer cleanup()

	if client.Self() != 0 || server.Self() != 1 {
		t.Fatalf("Self: %d/%d", client.Self(), server.Self())
	}
	if client.Shards() != 2 {
		t.Fatalf("Shards = %d", client.Shards())
	}
	if client.Shard(1) != 1 || !client.Local(0) || client.Local(1) {
		t.Fatal("shard map accessors disagree with shardOf")
	}

	// Hub (server side) starts a round; the worker (client) must see it
	// as a CmdRound.
	server.Endpoint().Send(FGVTStart, AppendGVTStart(nil, GVTStart{Round: 3}))
	cmd, err := client.GVTNext()
	if err != nil || cmd.Kind != CmdRound || cmd.Round != 3 {
		t.Fatalf("round command: %+v, %v", cmd, err)
	}

	// The worker reports; the report must carry the cumulative wire
	// counters (one batch of 2 sent just before).
	client.Send(1, []Msg{{Time: 1}, {Time: 2}})
	client.GVTReport(3, true, 777)
	select {
	case r := <-reports:
		if r.Round != 3 || !r.Quiet || r.LocalMin != 777 || r.Sent != 2 {
			t.Fatalf("report: %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("report never arrived")
	}
	if sent, _ := client.SentRecv(); sent != 2 {
		t.Fatalf("SentRecv sent = %d", sent)
	}

	// Done without terminate, then terminate.
	server.Endpoint().Send(FGVTDone, AppendGVTDone(nil, GVTDone{GVT: 40}))
	if cmd, err = client.GVTNext(); err != nil || cmd.Kind != CmdDone || cmd.GVT != 40 {
		t.Fatalf("done command: %+v, %v", cmd, err)
	}
	server.Endpoint().Send(FGVTDone, AppendGVTDone(nil, GVTDone{GVT: 90, Terminate: true}))
	if cmd, err = client.GVTNext(); err != nil || cmd.Kind != CmdTerminate || cmd.GVT != 90 {
		t.Fatalf("terminate command: %+v, %v", cmd, err)
	}
}

// TestSeamPendingBufferAndProgress: batches delivered before an LP is
// bound must be buffered and flushed at Bind in arrival order, and the
// progress probe must report zero/not-idle until an engine registers.
func TestSeamPendingBufferAndProgress(t *testing.T) {
	shardOf := []int{1, 1}
	client, server, cleanup := seamPair(t, shardOf, nil)
	defer cleanup()

	// No Bind yet: these park in the seam's pending buffer.
	client.Send(0, []Msg{{Time: 1}})
	client.Send(0, []Msg{{Time: 2}})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, recv := server.SentRecv(); recv == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pre-bind batches never delivered to the seam")
		}
		time.Sleep(time.Millisecond)
	}

	var got []uint64
	server.Bind(0, func(ms []Msg) {
		for _, m := range ms {
			got = append(got, m.Time)
		}
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("flushed pending batches = %v, want [1 2]", got)
	}

	if ev, idle := server.Progress(); ev != 0 || idle {
		t.Fatalf("unregistered probe: %d, %v", ev, idle)
	}
	server.SetProgress(func() (uint64, bool) { return 42, true })
	if ev, idle := server.Progress(); ev != 42 || !idle {
		t.Fatalf("registered probe: %d, %v", ev, idle)
	}
	server.SetProgress(nil)
	if ev, idle := server.Progress(); ev != 0 || idle {
		t.Fatalf("unregistered again: %d, %v", ev, idle)
	}

	st := server.TransportState()
	if len(st) != 1 || st[0].Shard != 0 {
		t.Fatalf("transport state: %+v", st)
	}
}

// TestSeamDownAndCancel: Down must unblock GVTNext with the first
// error, fire the OnDown hook, and CancelWait must release a waiter
// with the bare ErrDown sentinel.
func TestSeamDownAndCancel(t *testing.T) {
	ep := New(Config{Shard: 0})
	s := NewSeam(ep, 0, []int{0})

	fired := make(chan error, 2)
	s.OnDown(func(err error) { fired <- err })
	boom := errors.New("boom")
	s.Down(boom)
	s.Down(errors.New("second, ignored"))
	if _, err := s.GVTNext(); !errors.Is(err, boom) {
		t.Fatalf("GVTNext after Down: %v", err)
	}
	if err := <-fired; !errors.Is(err, boom) {
		t.Fatalf("hook error: %v", err)
	}
	s.OnDown(nil)

	// A fresh seam, cancelled without a failure: ErrDown sentinel.
	s2 := NewSeam(ep, 0, []int{0})
	done := make(chan error, 1)
	go func() {
		_, err := s2.GVTNext()
		done <- err
	}()
	s2.CancelWait()
	if err := <-done; !errors.Is(err, ErrDown) {
		t.Fatalf("GVTNext after CancelWait: %v", err)
	}
}

// TestEndpointStateAndChaos exercises the introspection surface the hub
// monitor reads and the chaos primitives deterministically: a frozen
// then unfrozen link still delivers, a forced retransmit duplicate is
// absorbed by sequence dedup, and a forced failure surfaces through the
// seam's down hook.
func TestEndpointStateAndChaos(t *testing.T) {
	shardOf := []int{1}
	client, server, cleanup := seamPair(t, shardOf, nil)
	defer cleanup()

	got := make(chan []Msg, 16)
	server.Bind(0, func(ms []Msg) { got <- ms })

	wait := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			select {
			case ms := <-got:
				if ms[len(ms)-1].Time == want {
					return
				}
			case <-time.After(time.Until(deadline)):
				t.Fatalf("message %d never arrived", want)
			}
		}
	}

	client.Send(0, []Msg{{Time: 1}})
	wait(1)

	// Freeze both directions briefly mid-stream; delivery must resume
	// once the freezes lift.
	client.Endpoint().FreezeOut(5 * time.Millisecond)
	client.Endpoint().FreezeIn(5 * time.Millisecond)
	client.Send(0, []Msg{{Time: 2}})
	wait(2)

	// Stall the client's inbound side so the next frame's ack cannot be
	// processed: the frame stays unacked, which makes ChaosDup re-send
	// it deterministically. The server's dedup must absorb the copy.
	client.Endpoint().FreezeIn(300 * time.Millisecond)
	client.Send(0, []Msg{{Time: 3}})
	wait(3)
	client.Endpoint().ChaosDup()
	deadline := time.Now().Add(5 * time.Second)
	for server.Endpoint().DupsDropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("forced duplicate was not counted as dropped")
		}
		time.Sleep(time.Millisecond)
	}

	if !client.Endpoint().Connected() {
		t.Error("client endpoint reports disconnected")
	}
	if age := server.Endpoint().LastRecvAge(); age < 0 || age > time.Minute {
		t.Errorf("implausible LastRecvAge %v", age)
	}
	st := client.Endpoint().State()
	if !st.Connected {
		t.Errorf("state snapshot: %+v", st)
	}

	// Fail tears the link down permanently and surfaces through the seam.
	downErr := make(chan error, 1)
	client.OnDown(func(err error) { downErr <- err })
	client.Endpoint().Fail(errors.New("forced failure"))
	select {
	case err := <-downErr:
		if err == nil {
			t.Error("nil failure error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fail never reached the seam's down hook")
	}
	if client.Endpoint().Connected() {
		t.Error("failed endpoint still reports connected")
	}
}
