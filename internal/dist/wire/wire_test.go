package wire

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"
)

// socketPair wires a client seam to a server seam over a real TCP
// loopback connection, with the server re-accepting after connection
// drops (the reliable layer's reconnect path).
func socketPair(t *testing.T, lps int, shardOf []int) (client, server *Seam, cleanup func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	serverEP := New(Config{Shard: 0})
	server = NewSeam(serverEP, 1, shardOf)
	serverEP.cfg.Handler = func(kind byte, payload []byte) { server.HandleFrame(kind, payload) }
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			hello, err := ReadHello(c)
			if err != nil {
				c.Close()
				continue
			}
			serverEP.Attach(c, hello.RecvSeq)
		}
	}()

	clientEP := New(Config{
		Shard:      -1,
		Dial:       func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Hello:      Hello{Shard: 0, Attempt: 0},
		MaxRedials: 50,
		RedialBase: time.Millisecond,
		RedialCap:  20 * time.Millisecond,
	})
	client = NewSeam(clientEP, 0, shardOf)
	clientEP.cfg.Handler = func(kind byte, payload []byte) { client.HandleFrame(kind, payload) }
	if err := clientEP.Connect(); err != nil {
		t.Fatal(err)
	}
	return client, server, func() {
		ln.Close()
		clientEP.Close()
		serverEP.Close()
	}
}

// TestSocketTransportFIFOAndAtomicity is the lockstep property test for
// the socket transport, mirroring the mpsc stress suite: under many
// concurrent senders, every PutAll batch must arrive intact (one frame,
// one delivery — never split, never interleaved) and each sender's
// messages must arrive in send order, exactly once. Run with -race.
func TestSocketTransportFIFOAndAtomicity(t *testing.T) {
	const (
		senders = 8
		batches = 120
		lps     = 4
	)
	shardOf := []int{1, 1, 1, 1} // every LP remote from the client's view
	client, server, cleanup := socketPair(t, lps, shardOf)
	defer cleanup()

	type delivered struct {
		dst int
		ms  []Msg
	}
	var mu sync.Mutex
	var got []delivered
	done := make(chan struct{})
	total := 0
	for lp := 0; lp < lps; lp++ {
		lp := lp
		server.Bind(lp, func(ms []Msg) {
			mu.Lock()
			got = append(got, delivered{dst: lp, ms: ms})
			total += len(ms)
			if total == senders*batches*3 { // 3 msgs per batch
				close(done)
			}
			mu.Unlock()
		})
	}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(s), 7))
			seq := uint64(0)
			for b := 0; b < batches; b++ {
				ms := make([]Msg, 3)
				for i := range ms {
					seq++
					ms[i] = Msg{Kind: 1, From: int32(s), ID: uint64(b), Time: seq, Gate: int32(s)}
				}
				client.Send(rng.IntN(lps), ms)
			}
		}(s)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		mu.Lock()
		t.Fatalf("timed out: %d of %d messages delivered", total, senders*batches*3)
	}

	mu.Lock()
	defer mu.Unlock()
	next := make([]uint64, senders)      // next expected per-sender Time
	nextBatch := make([]uint64, senders) // next expected per-sender batch ID
	for _, d := range got {
		from := d.ms[0].From
		// Atomicity: a delivered batch is exactly one sent batch — uniform
		// sender, uniform batch ID, original size.
		if len(d.ms) != 3 {
			t.Fatalf("batch split or merged: %d msgs", len(d.ms))
		}
		for _, m := range d.ms {
			if m.From != from || m.ID != d.ms[0].ID {
				t.Fatalf("batch interleaved across senders: %+v vs %+v", m, d.ms[0])
			}
			// FIFO, exactly once: per-sender Time is the send counter.
			if m.Time != next[from]+1 {
				t.Fatalf("sender %d: message %d delivered after %d (reorder, loss, or duplicate)", from, m.Time, next[from])
			}
			next[from] = m.Time
		}
		if d.ms[0].ID != nextBatch[from] {
			t.Fatalf("sender %d: batch %d delivered after batch %d", from, d.ms[0].ID, nextBatch[from])
		}
		nextBatch[from]++
	}
	for s, n := range next {
		if n != batches*3 {
			t.Errorf("sender %d: %d of %d messages delivered", s, n, batches*3)
		}
	}
}

// TestSocketTransportSurvivesChaosFaults drives the same FIFO/atomicity
// contract while a chaos goroutine drops the connection, duplicates
// frames, and freezes both directions: the reliable layer (retransmit
// after reconnect, sequence dedup) must make every fault invisible
// above the seam.
func TestSocketTransportSurvivesChaosFaults(t *testing.T) {
	const (
		senders = 4
		batches = 150
	)
	shardOf := []int{1}
	client, server, cleanup := socketPair(t, 1, shardOf)
	defer cleanup()

	var mu sync.Mutex
	next := make([]uint64, senders)
	total := 0
	done := make(chan struct{})
	server.Bind(0, func(ms []Msg) {
		mu.Lock()
		defer mu.Unlock()
		from := ms[0].From
		for _, m := range ms {
			if m.From != from {
				t.Errorf("batch interleaved: %+v vs sender %d", m, from)
			}
			if m.Time != next[from]+1 {
				t.Errorf("sender %d: message %d after %d", from, m.Time, next[from])
			}
			next[from] = m.Time
			total++
		}
		if total == senders*batches*2 {
			close(done)
		}
	})

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		rng := rand.New(rand.NewPCG(99, 1))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(1+rng.IntN(4)) * time.Millisecond):
			}
			switch i % 4 {
			case 0:
				client.Endpoint().ChaosDropConn()
			case 1:
				client.Endpoint().ChaosDup()
			case 2:
				client.Endpoint().FreezeOut(time.Duration(rng.IntN(5)) * time.Millisecond)
			case 3:
				client.Endpoint().FreezeIn(time.Duration(rng.IntN(5)) * time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			seq := uint64(0)
			for b := 0; b < batches; b++ {
				ms := make([]Msg, 2)
				for i := range ms {
					seq++
					ms[i] = Msg{From: int32(s), Time: seq}
				}
				client.Send(0, ms)
			}
		}(s)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		mu.Lock()
		t.Fatalf("timed out under chaos: %d of %d messages delivered (reconnects=%d)",
			total, senders*batches*2, client.Endpoint().Reconnects())
	}
	close(stop)
	chaosWG.Wait()
}

// TestRedialSleepCappedFromFirstRetry is the regression test for the
// backoff clamp: RedialCap must bound every jittered sleep, including
// the first retry's, not just the doubling of the next one. With the
// old code a RedialBase above the cap slept the full base on the first
// retry — here 2s each against a dead dialer, so four retries would
// take multiple seconds. Capped, the whole budget burns in tens of
// milliseconds.
func TestRedialSleepCappedFromFirstRetry(t *testing.T) {
	ep := New(Config{
		Shard:      0,
		Dial:       func() (net.Conn, error) { return nil, fmt.Errorf("dead address") },
		MaxRedials: 4,
		RedialBase: 2 * time.Second,
		RedialCap:  10 * time.Millisecond,
	})
	defer ep.Close()
	start := time.Now()
	err := ep.Connect()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Connect to a dead dialer succeeded")
	}
	// 4 retries * <=10ms jittered sleep plus instant dial failures:
	// generous margin, but far below the uncapped >=1s first sleep.
	if elapsed > 500*time.Millisecond {
		t.Fatalf("redial budget took %v; sleeps not capped at RedialCap", elapsed)
	}
}

// TestBatchRoundTrip pins the wire encoding.
func TestBatchRoundTrip(t *testing.T) {
	in := []Msg{
		{Kind: 2, From: -1, ID: 1 << 62, Time: ^uint64(0), Gate: 1234, Value: 8},
		{Kind: 0, From: 7, ID: 0, Time: 0, Gate: -1, Value: 0},
	}
	p := AppendBatch(nil, 42, in)
	dst, out, err := DecodeBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if dst != 42 || len(out) != len(in) {
		t.Fatalf("dst=%d n=%d", dst, len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("msg %d: %+v != %+v", i, in[i], out[i])
		}
	}
	if d, _ := BatchDst(p); d != 42 {
		t.Errorf("BatchDst = %d", d)
	}
	if n, _ := BatchLen(p); n != 2 {
		t.Errorf("BatchLen = %d", n)
	}
	if _, _, err := DecodeBatch(p[:len(p)-1]); err == nil {
		t.Error("truncated batch decoded")
	}
}

// TestHeartbeatAndGVTPayloads pins the control payload encodings.
func TestHeartbeatAndGVTPayloads(t *testing.T) {
	hb, err := DecodeHeartbeat(AppendHeartbeat(nil, Heartbeat{Events: 991, Idle: true, Sent: 40, Recv: 38}))
	if err != nil || hb != (Heartbeat{Events: 991, Idle: true, Sent: 40, Recv: 38}) {
		t.Errorf("heartbeat: %+v, %v", hb, err)
	}
	ma, err := DecodeMeshAddr(AppendMeshAddr(nil, MeshAddr{Shard: 4, Addr: "127.0.0.1:9999"}))
	if err != nil || ma != (MeshAddr{Shard: 4, Addr: "127.0.0.1:9999"}) {
		t.Errorf("mesh-addr: %+v, %v", ma, err)
	}
	mt, err := DecodeMeshTable(AppendMeshTable(nil, MeshTable{Addrs: []string{"a", "b"}}))
	if err != nil || len(mt.Addrs) != 2 || mt.Addrs[0] != "a" || mt.Addrs[1] != "b" {
		t.Errorf("mesh-table: %+v, %v", mt, err)
	}
	co, err := DecodeChaos(AppendChaos(nil, Chaos{Op: 3, Peer: 1, Ms: 25}))
	if err != nil || co != (Chaos{Op: 3, Peer: 1, Ms: 25}) {
		t.Errorf("chaos: %+v, %v", co, err)
	}
	gs, err := DecodeGVTStart(AppendGVTStart(nil, GVTStart{Round: 7}))
	if err != nil || gs.Round != 7 {
		t.Errorf("gvt-start: %+v, %v", gs, err)
	}
	gr, err := DecodeGVTReport(AppendGVTReport(nil, GVTReport{Round: 3, Quiet: true, LocalMin: 55, Sent: 10, Recv: 9}))
	if err != nil || gr != (GVTReport{Round: 3, Quiet: true, LocalMin: 55, Sent: 10, Recv: 9}) {
		t.Errorf("gvt-report: %+v, %v", gr, err)
	}
	gd, err := DecodeGVTDone(AppendGVTDone(nil, GVTDone{GVT: 123, Terminate: true}))
	if err != nil || gd != (GVTDone{GVT: 123, Terminate: true}) {
		t.Errorf("gvt-done: %+v, %v", gd, err)
	}
	h, err := decodeHello(appendHello(nil, Hello{Shard: 3, Attempt: 2, RecvSeq: 17}))
	if err != nil || h != (Hello{Shard: 3, Attempt: 2, RecvSeq: 17}) {
		t.Errorf("hello: %+v, %v", h, err)
	}
}
