package wire

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim/supervise"
)

// ErrDown reports a permanently failed link.
var ErrDown = fmt.Errorf("wire: link down")

// handshakeTimeout bounds the hello/hello-ok exchange on a fresh
// connection.
const handshakeTimeout = 3 * time.Second

// ackEvery forces an explicit ack frame after this many sequenced
// frames received without reverse traffic, bounding the peer's
// retransmit buffer.
const ackEvery = 64

// Config configures an Endpoint.
type Config struct {
	// Shard is the peer's shard index, for transport-state reports (the
	// coordinator is shard -1 from a worker's point of view).
	Shard int
	// Dial re-establishes the connection (worker side). Nil on the
	// coordinator side, where reconnections arrive via Attach.
	Dial func() (net.Conn, error)
	// Hello is sent on every (re)connect; the endpoint fills RecvSeq.
	Hello Hello
	// MaxRedials bounds reconnection attempts per disconnect; exhausting
	// it fails the link.
	MaxRedials int
	// RedialBase/RedialCap shape the exponential backoff between redials
	// (jittered uniformly in [d/2, d)).
	RedialBase, RedialCap time.Duration
	// Handler receives every delivered frame (sequenced frames exactly
	// once, in order, plus heartbeats), on the endpoint's read goroutine.
	Handler func(kind byte, payload []byte)
	// OnDown fires once when the link permanently fails.
	OnDown func(err error)
}

// savedFrame is one sequenced frame held for retransmit until acked.
type savedFrame struct {
	kind    byte
	seq     uint64
	payload []byte
}

// Endpoint is one end of a reliable link: it assigns sequence numbers,
// retains frames until the peer's cumulative ack, retransmits in order
// after a reconnect, drops duplicates by sequence number, and redials
// with exponential backoff when it owns the dialing side. Under those
// rules every chaos fault — stall, drop, duplicate, partition — is
// absorbed below the delivery contract: the Handler sees each sequenced
// frame exactly once, in send order.
type Endpoint struct {
	cfg Config

	mu             sync.Mutex
	conn           net.Conn
	connGen        uint64
	sendSeq        uint64 // last assigned outgoing seq
	sentUpTo       uint64 // highest seq written to the current conn
	maxSent        uint64 // highest seq ever written on any conn
	unacked        []savedFrame
	recvSeq        uint64 // highest contiguous seq delivered
	lastAckSent    uint64
	frozenOutUntil time.Time
	closed         bool
	down           bool
	downErr        error

	reconnects   atomic.Uint64
	dupsDropped  atomic.Uint64
	frames       atomic.Uint64 // sequenced frames delivered in order
	retransmits  atomic.Uint64 // sequenced frames written more than once
	lastRecvNano atomic.Int64
	frozenInNano atomic.Int64
	downOnce     sync.Once
}

// New creates an endpoint; worker sides call Connect before use,
// coordinator sides wait for Attach.
func New(cfg Config) *Endpoint {
	if cfg.RedialBase <= 0 {
		cfg.RedialBase = 20 * time.Millisecond
	}
	if cfg.RedialCap <= 0 {
		cfg.RedialCap = 500 * time.Millisecond
	}
	return &Endpoint{cfg: cfg}
}

// Connect establishes the initial connection (dialing side), applying
// the same retry budget as a mid-run reconnect.
func (e *Endpoint) Connect() error {
	return e.redial(fmt.Errorf("initial connect"))
}

// redial dials until a handshake succeeds or the budget is exhausted.
func (e *Endpoint) redial(prevErr error) error {
	backoff := e.cfg.RedialBase
	var lastErr error = prevErr
	for attempt := 0; attempt <= e.cfg.MaxRedials; attempt++ {
		e.mu.Lock()
		dead := e.closed || e.down
		e.mu.Unlock()
		if dead {
			return ErrDown
		}
		if attempt > 0 {
			// Clamp the sleep itself, not just the next doubling: the
			// jittered sleep lands in [d/2, d) with d capped at RedialCap
			// from the very first retry, so a large RedialBase can never
			// stretch a redial past the cap (and past the hub's heartbeat
			// watchdog window).
			d := backoff
			if d > e.cfg.RedialCap {
				d = e.cfg.RedialCap
			}
			time.Sleep(d/2 + rand.N(d/2+1))
			if backoff *= 2; backoff > e.cfg.RedialCap {
				backoff = e.cfg.RedialCap
			}
		}
		c, err := e.cfg.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		if err := e.handshake(c); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		return nil
	}
	err := fmt.Errorf("wire: redial budget exhausted (%d attempts): %w", e.cfg.MaxRedials+1, lastErr)
	e.fail(err)
	return err
}

// handshake runs the dialing side of the hello exchange on a fresh
// connection, then installs it.
func (e *Endpoint) handshake(c net.Conn) error {
	e.mu.Lock()
	hello := e.cfg.Hello
	hello.RecvSeq = e.recvSeq
	e.mu.Unlock()
	c.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := writeFrame(c, FHello, 0, hello.RecvSeq, appendHello(nil, hello)); err != nil {
		return err
	}
	kind, _, _, payload, err := readFrame(c)
	if err != nil {
		return err
	}
	if kind != FHelloOK {
		return fmt.Errorf("wire: handshake got frame kind %d", kind)
	}
	ok, err := decodeHello(payload)
	if err != nil {
		return err
	}
	c.SetDeadline(time.Time{})
	e.install(c, ok.RecvSeq)
	return nil
}

// ReadHello reads the hello frame an accepting listener expects first
// on a fresh connection.
func ReadHello(c net.Conn) (Hello, error) {
	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	kind, _, _, payload, err := readFrame(c)
	if err != nil {
		return Hello{}, err
	}
	if kind != FHello {
		return Hello{}, fmt.Errorf("wire: expected hello, got frame kind %d", kind)
	}
	c.SetReadDeadline(time.Time{})
	return decodeHello(payload)
}

// Attach installs an accepted connection (coordinator side) whose hello
// reported peerRecv, answering with our receive position.
func (e *Endpoint) Attach(c net.Conn, peerRecv uint64) error {
	e.mu.Lock()
	if e.closed || e.down {
		e.mu.Unlock()
		c.Close()
		return ErrDown
	}
	recv := e.recvSeq
	e.mu.Unlock()
	if err := writeFrame(c, FHelloOK, 0, recv, appendHello(nil, Hello{RecvSeq: recv})); err != nil {
		c.Close()
		return err
	}
	e.install(c, peerRecv)
	return nil
}

// install swaps in a connected, handshaken conn: prunes acked frames,
// rewinds the write cursor to the peer's position so everything later
// retransmits in order, and starts the read loop.
func (e *Endpoint) install(c net.Conn, peerRecv uint64) {
	e.mu.Lock()
	if e.conn != nil {
		e.conn.Close()
		e.reconnects.Add(1)
	}
	e.pruneLocked(peerRecv)
	e.sentUpTo = peerRecv
	e.conn = c
	e.connGen++
	gen := e.connGen
	e.flushLocked()
	e.mu.Unlock()
	e.lastRecvNano.Store(time.Now().UnixNano())
	go e.readLoop(c, gen)
}

// pruneLocked drops retained frames at or below the peer's cumulative
// ack.
func (e *Endpoint) pruneLocked(ack uint64) {
	i := 0
	for i < len(e.unacked) && e.unacked[i].seq <= ack {
		i++
	}
	if i > 0 {
		e.unacked = append(e.unacked[:0], e.unacked[i:]...)
	}
}

// flushLocked writes every retained frame above the write cursor, in
// order. Freezes and missing connections leave frames retained; a later
// flush (unfreeze, reconnect, next send) picks them up.
func (e *Endpoint) flushLocked() {
	if e.conn == nil || time.Now().Before(e.frozenOutUntil) {
		return
	}
	for i := range e.unacked {
		fr := &e.unacked[i]
		if fr.seq <= e.sentUpTo {
			continue
		}
		if err := writeFrame(e.conn, fr.kind, fr.seq, e.recvSeq, fr.payload); err != nil {
			e.conn.Close()
			return
		}
		if fr.seq <= e.maxSent {
			e.retransmits.Add(1)
		} else {
			e.maxSent = fr.seq
		}
		e.sentUpTo = fr.seq
		e.lastAckSent = e.recvSeq
	}
}

// Send transmits a sequenced frame reliably: it is retained until the
// peer acknowledges it, surviving connection loss. Only a permanently
// failed link errors.
func (e *Endpoint) Send(kind byte, payload []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.down {
		return e.downErr
	}
	if e.closed {
		return ErrDown
	}
	e.sendSeq++
	e.unacked = append(e.unacked, savedFrame{kind: kind, seq: e.sendSeq, payload: payload})
	e.flushLocked()
	return nil
}

// SendUnseq transmits a best-effort frame (heartbeats, acks): lost on a
// dead or frozen connection, never retransmitted.
func (e *Endpoint) SendUnseq(kind byte, payload []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conn == nil || e.down || e.closed || time.Now().Before(e.frozenOutUntil) {
		return nil
	}
	if err := writeFrame(e.conn, kind, 0, e.recvSeq, payload); err != nil {
		e.conn.Close()
		return nil
	}
	e.lastAckSent = e.recvSeq
	return nil
}

// readLoop delivers frames from one connection until it dies.
func (e *Endpoint) readLoop(c net.Conn, gen uint64) {
	for {
		if until := e.frozenInNano.Load(); until > 0 {
			if d := time.Until(time.Unix(0, until)); d > 0 {
				time.Sleep(d)
			}
		}
		kind, seq, ack, payload, err := readFrame(c)
		if err != nil {
			e.mu.Lock()
			stale := e.closed || e.down || gen != e.connGen
			if !stale && e.conn == c {
				e.conn = nil
			}
			redial := !stale && e.cfg.Dial != nil
			e.mu.Unlock()
			if redial {
				go e.redial(err)
			}
			return
		}
		e.lastRecvNano.Store(time.Now().UnixNano())
		e.mu.Lock()
		e.pruneLocked(ack)
		deliver := true
		var needAck bool
		if seq != 0 {
			if seq <= e.recvSeq {
				deliver = false
				e.dupsDropped.Add(1)
			} else {
				// The reliable layer retransmits in order, so a gap can
				// only mean stream corruption: drop the conn and let the
				// handshake resynchronize.
				if seq != e.recvSeq+1 {
					c.Close()
					e.mu.Unlock()
					continue
				}
				e.recvSeq = seq
				e.frames.Add(1)
				needAck = e.recvSeq-e.lastAckSent >= ackEvery
			}
		} else {
			deliver = kind == FHeartbeat
		}
		e.mu.Unlock()
		if deliver && e.cfg.Handler != nil {
			e.cfg.Handler(kind, payload)
		}
		if needAck {
			e.SendUnseq(FAck, nil)
		}
	}
}

// fail marks the link permanently down and fires OnDown once.
func (e *Endpoint) fail(err error) {
	e.mu.Lock()
	if e.closed || e.down {
		e.mu.Unlock()
		return
	}
	e.down = true
	e.downErr = fmt.Errorf("%w: %v", ErrDown, err)
	if e.conn != nil {
		e.conn.Close()
		e.conn = nil
	}
	e.mu.Unlock()
	e.downOnce.Do(func() {
		if e.cfg.OnDown != nil {
			e.cfg.OnDown(err)
		}
	})
}

// Fail is the exported failure entry point: the coordinator's monitor
// calls it when it gives up on a shard.
func (e *Endpoint) Fail(err error) { e.fail(err) }

// Close shuts the endpoint down quietly (no OnDown).
func (e *Endpoint) Close() {
	e.mu.Lock()
	e.closed = true
	if e.conn != nil {
		e.conn.Close()
		e.conn = nil
	}
	e.mu.Unlock()
}

// Connected reports whether a live connection is installed.
func (e *Endpoint) Connected() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.conn != nil && !e.down && !e.closed
}

// LastRecvAge is the time since any frame arrived (a very large value
// before the first).
func (e *Endpoint) LastRecvAge() time.Duration {
	n := e.lastRecvNano.Load()
	if n == 0 {
		return time.Duration(1<<62 - 1)
	}
	return time.Since(time.Unix(0, n))
}

// DupsDropped counts duplicate sequenced frames absorbed by dedup.
func (e *Endpoint) DupsDropped() uint64 { return e.dupsDropped.Load() }

// Reconnects counts completed reconnections.
func (e *Endpoint) Reconnects() uint64 { return e.reconnects.Load() }

// Frames counts sequenced frames delivered in order on this link.
func (e *Endpoint) Frames() uint64 { return e.frames.Load() }

// Retransmits counts sequenced frames written more than once (reconnect
// replays and chaos duplicates).
func (e *Endpoint) Retransmits() uint64 { return e.retransmits.Load() }

// State snapshots the link for watchdog hang reports.
func (e *Endpoint) State() supervise.TransportState {
	e.mu.Lock()
	connected := e.conn != nil && !e.down && !e.closed
	unacked := len(e.unacked)
	e.mu.Unlock()
	hb := int64(-1)
	if n := e.lastRecvNano.Load(); n > 0 {
		hb = time.Since(time.Unix(0, n)).Milliseconds()
	}
	return supervise.TransportState{
		Shard:           e.cfg.Shard,
		Connected:       connected,
		LastHeartbeatMs: hb,
		UnackedBatches:  unacked,
		Reconnects:      e.reconnects.Load(),
		Frames:          e.frames.Load(),
		Retransmits:     e.retransmits.Load(),
		DupsDropped:     e.dupsDropped.Load(),
	}
}

// FreezeOut blocks outgoing traffic for d (chaos: the outbound half of
// a partition). Sequenced frames queue and flush, in order, when the
// freeze lifts; unsequenced frames are lost, as on a dead route.
func (e *Endpoint) FreezeOut(d time.Duration) {
	e.mu.Lock()
	until := time.Now().Add(d)
	if until.After(e.frozenOutUntil) {
		e.frozenOutUntil = until
	}
	e.mu.Unlock()
	time.AfterFunc(d+time.Millisecond, func() {
		e.mu.Lock()
		e.flushLocked()
		e.mu.Unlock()
	})
}

// FreezeIn stops reading incoming traffic for d (chaos: the inbound
// half of a partition). Heartbeat perception stalls with it.
func (e *Endpoint) FreezeIn(d time.Duration) {
	e.frozenInNano.Store(time.Now().Add(d).UnixNano())
}

// ChaosDup re-sends the most recent still-unacked sequenced frame with
// its original sequence number (chaos: a retransmit duplicate). The
// peer's dedup must absorb it.
func (e *Endpoint) ChaosDup() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conn == nil || time.Now().Before(e.frozenOutUntil) {
		return
	}
	for i := range e.unacked {
		fr := &e.unacked[i]
		if fr.seq == e.sentUpTo {
			if err := writeFrame(e.conn, fr.kind, fr.seq, e.recvSeq, fr.payload); err != nil {
				e.conn.Close()
			} else {
				e.retransmits.Add(1)
			}
			return
		}
	}
}

// ChaosDropConn closes the current connection without failing the link
// (chaos: a TCP reset). The dialing side redials with backoff; frames
// retransmit on reattach.
func (e *Endpoint) ChaosDropConn() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conn != nil {
		e.conn.Close()
	}
}
