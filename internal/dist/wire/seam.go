package wire

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim/supervise"
)

// GVTCmdKind classifies a coordinator GVT command.
type GVTCmdKind uint8

// The command kinds a worker's GVT loop receives.
const (
	// CmdRound asks for one local handling round and a report.
	CmdRound GVTCmdKind = iota
	// CmdDone publishes a computed GVT: fossil-collect and resume.
	CmdDone
	// CmdTerminate ends the run: the GVT passed the horizon.
	CmdTerminate
)

// GVTCmd is one coordinator command in a worker's GVT loop.
type GVTCmd struct {
	Kind  GVTCmdKind
	Round uint32
	GVT   uint64
}

// Seam is the engine-facing face of a worker's link to the coordinator:
// remote sends, local delivery bindings, the distributed GVT
// conversation, and cross-shard flight accounting. Engines see only
// this type; the socket machinery stays behind it.
type Seam struct {
	ep      *Endpoint
	self    int
	shardOf []int

	// bindMu guards binds and pending: delivery (the endpoint read
	// goroutine) races engine startup (Bind), and a batch that arrives
	// before its LP is bound must be buffered, not dropped — the
	// reliable layer has already consumed and acked it, so a drop here
	// would be a silent message loss the retransmit machinery cannot
	// repair. Bind flushes the buffer under the lock, so buffered and
	// live batches cannot interleave out of order.
	bindMu  sync.Mutex
	binds   []func([]Msg)
	pending [][][]Msg

	// wireSent/wireRecv count cross-shard messages at flush/delivery
	// time; with the engines' local transit counters they are the
	// Mattern message-counting terms of distributed GVT.
	wireSent atomic.Uint64
	wireRecv atomic.Uint64

	// peers holds direct mesh endpoints per destination shard (nil
	// entries route through the hub). Installed once, before the engine
	// starts; published atomically so a late engine send cannot race the
	// install. meshBytes/hubBytes split outbound FBatch payload volume by
	// route, the data-plane accounting behind the hub_bytes/mesh_bytes
	// gauges.
	peers     atomic.Pointer[[]*Endpoint]
	meshBytes atomic.Uint64
	hubBytes  atomic.Uint64

	gvt        chan GVTCmd
	cancel     chan struct{}
	cancelOnce sync.Once
	cancelErr  atomic.Pointer[error]

	onDown   atomic.Pointer[func(error)]
	progress atomic.Pointer[func() (uint64, bool)]
}

// NewSeam builds a seam for shard self over lp -> shard map shardOf.
func NewSeam(ep *Endpoint, self int, shardOf []int) *Seam {
	return &Seam{
		ep:      ep,
		self:    self,
		shardOf: shardOf,
		binds:   make([]func([]Msg), len(shardOf)),
		pending: make([][][]Msg, len(shardOf)),
		gvt:     make(chan GVTCmd, 16),
		cancel:  make(chan struct{}),
	}
}

// Self is this worker's shard index.
func (s *Seam) Self() int { return s.self }

// Shards is the shard count.
func (s *Seam) Shards() int {
	max := 0
	for _, sh := range s.shardOf {
		if sh > max {
			max = sh
		}
	}
	return max + 1
}

// Shard maps an LP to its owning shard.
func (s *Seam) Shard(lp int) int { return s.shardOf[lp] }

// Local reports whether this worker owns the LP.
func (s *Seam) Local(lp int) bool { return s.shardOf[lp] == s.self }

// Bind registers the delivery function for a local LP's inbox; batches
// arriving for that LP are handed over intact (one frame, one PutAll).
// Batches that arrived before the bind are flushed first, in arrival
// order, so an engine that attaches late (after a checkpoint-shadow
// phase, say) misses nothing.
func (s *Seam) Bind(lp int, fn func([]Msg)) {
	s.bindMu.Lock()
	defer s.bindMu.Unlock()
	s.binds[lp] = fn
	for _, ms := range s.pending[lp] {
		fn(ms)
	}
	s.pending[lp] = nil
}

// SetPeers installs the mesh routing slice: peers[shard] is the direct
// endpoint for that shard, nil entries (and a nil slice) fall back to
// the hub relay. Called once, after mesh links are connected and before
// the engine starts.
func (s *Seam) SetPeers(peers []*Endpoint) {
	s.peers.Store(&peers)
}

// peerFor returns the direct mesh endpoint for a shard, or nil when the
// route goes through the hub.
func (s *Seam) peerFor(shard int) *Endpoint {
	p := s.peers.Load()
	if p == nil || shard < 0 || shard >= len(*p) {
		return nil
	}
	return (*p)[shard]
}

// MeshBytes and HubBytes report outbound FBatch payload volume by
// route: direct worker-to-worker versus relayed through the hub.
func (s *Seam) MeshBytes() uint64 { return s.meshBytes.Load() }
func (s *Seam) HubBytes() uint64  { return s.hubBytes.Load() }

// Send transmits a batch to a remote LP — directly over the mesh link
// to the destination's shard when one is installed, through the hub
// relay otherwise. The batch is counted sent here, atomically with
// leaving the engine's local transit count, so no GVT round can observe
// the messages in neither ledger. Link loss surfaces through OnDown,
// not here: the run is aborted wholesale.
func (s *Seam) Send(dst int, ms []Msg) {
	s.wireSent.Add(uint64(len(ms)))
	payload := AppendBatch(make([]byte, 0, batchOverhead+len(ms)*msgSize), int32(dst), ms)
	if ep := s.peerFor(s.shardOf[dst]); ep != nil {
		s.meshBytes.Add(uint64(len(payload)))
		ep.Send(FBatch, payload)
		return
	}
	s.hubBytes.Add(uint64(len(payload)))
	s.ep.Send(FBatch, payload)
}

// HandleFrame dispatches one delivered frame; the worker's frame
// dispatcher calls it first and falls back to its own handling when it
// returns false.
func (s *Seam) HandleFrame(kind byte, payload []byte) bool {
	switch kind {
	case FBatch:
		dst, ms, err := DecodeBatch(payload)
		if err != nil {
			s.Down(err)
			return true
		}
		s.wireRecv.Add(uint64(len(ms)))
		if int(dst) < len(s.binds) {
			s.bindMu.Lock()
			if fn := s.binds[dst]; fn != nil {
				fn(ms)
			} else {
				s.pending[dst] = append(s.pending[dst], ms)
			}
			s.bindMu.Unlock()
		}
		return true
	case FGVTStart:
		g, err := DecodeGVTStart(payload)
		if err != nil {
			s.Down(err)
			return true
		}
		s.gvt <- GVTCmd{Kind: CmdRound, Round: g.Round}
		return true
	case FGVTDone:
		g, err := DecodeGVTDone(payload)
		if err != nil {
			s.Down(err)
			return true
		}
		cmd := GVTCmd{Kind: CmdDone, GVT: g.GVT}
		if g.Terminate {
			cmd.Kind = CmdTerminate
		}
		s.gvt <- cmd
		return true
	}
	return false
}

// GVTNext blocks for the coordinator's next GVT command; it returns an
// error once the link fails or the engine cancels the wait, so a
// coordinator death can never park the worker forever.
func (s *Seam) GVTNext() (GVTCmd, error) {
	select {
	case cmd := <-s.gvt:
		return cmd, nil
	case <-s.cancel:
		if p := s.cancelErr.Load(); p != nil {
			return GVTCmd{}, *p
		}
		return GVTCmd{}, ErrDown
	}
}

// GVTReport answers a round with local quiescence, the local minimum,
// and the cumulative wire counters.
func (s *Seam) GVTReport(round uint32, quiet bool, localMin uint64) {
	s.ep.Send(FGVTReport, AppendGVTReport(nil, GVTReport{
		Round:    round,
		Quiet:    quiet,
		LocalMin: localMin,
		Sent:     s.wireSent.Load(),
		Recv:     s.wireRecv.Load(),
	}))
}

// SentRecv reads the cumulative cross-shard message counters.
func (s *Seam) SentRecv() (sent, recv uint64) {
	return s.wireSent.Load(), s.wireRecv.Load()
}

// OnDown registers the engine's abort hook for link failure (nil
// unregisters; engines defer that so a late failure cannot touch a
// finished run).
func (s *Seam) OnDown(fn func(error)) {
	if fn == nil {
		s.onDown.Store(nil)
		return
	}
	s.onDown.Store(&fn)
}

// Down reports a permanent link failure: it unblocks GVTNext and fires
// the engine hook. Idempotent; the first error wins.
func (s *Seam) Down(err error) {
	s.cancelOnce.Do(func() {
		s.cancelErr.Store(&err)
		close(s.cancel)
	})
	if p := s.onDown.Load(); p != nil {
		(*p)(err)
	}
}

// CancelWait unblocks any pending GVTNext without a link failure (the
// engine's own abort path).
func (s *Seam) CancelWait() {
	s.cancelOnce.Do(func() { close(s.cancel) })
}

// SetProgress registers the engine's live progress probe — cumulative
// processed events and an all-idle flag — which the worker's heartbeat
// loop samples between frames. Nil unregisters.
func (s *Seam) SetProgress(fn func() (events uint64, idle bool)) {
	if fn == nil {
		s.progress.Store(nil)
		return
	}
	s.progress.Store(&fn)
}

// Progress samples the engine's registered progress probe; zero and
// not-idle before an engine attaches.
func (s *Seam) Progress() (events uint64, idle bool) {
	if p := s.progress.Load(); p != nil {
		return (*p)()
	}
	return 0, false
}

// TransportState snapshots the coordinator link and every installed
// mesh link for hang reports, so a mesh partition is diagnosable from
// the report alone.
func (s *Seam) TransportState() []supervise.TransportState {
	out := []supervise.TransportState{s.ep.State()}
	if p := s.peers.Load(); p != nil {
		for _, ep := range *p {
			if ep != nil {
				out = append(out, ep.State())
			}
		}
	}
	return out
}

// Endpoint exposes the underlying link (the worker's heartbeat loop and
// dispatcher live above the seam).
func (s *Seam) Endpoint() *Endpoint { return s.ep }
