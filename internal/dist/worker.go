package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/dist/wire"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/cmb"
	"repro/internal/sim/seq"
	"repro/internal/sim/supervise"
	"repro/internal/sim/timewarp"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// jobWait bounds how long a connected worker waits for its FJob frame.
const jobWait = 30 * time.Second

// resultLinger bounds how long a finished worker waits for the hub's
// FDone before exiting anyway (the result frame is sequenced, so the
// linger exists only to keep the connection up for retransmits).
const resultLinger = 60 * time.Second

// ErrKilled is the failure a forcibly killed in-process worker reports.
var ErrKilled = errors.New("dist: worker killed")

// bufferedFrame is one frame received before the seam existed.
type bufferedFrame struct {
	kind    byte
	payload []byte
}

// Worker is one shard of a distributed run: it dials the coordinator,
// receives its job, regenerates the workload deterministically, writes
// shard-restricted checkpoints via a sequential shadow, runs its engine
// over the local LPs, and reports the shard result.
type Worker struct {
	network string
	addr    string
	shard   int
	attempt int

	ep *wire.Endpoint

	// mu guards seam, preSeam, and mesh: frames can arrive (on the
	// endpoint read goroutine) before the job does, and the seam cannot
	// exist until the job's partition is built. Batches and GVT commands
	// that arrive early are buffered and replayed through the seam at
	// install time, under the same lock, so no sequenced frame is ever
	// dropped and order is preserved.
	mu      sync.Mutex
	seam    *wire.Seam
	preSeam []bufferedFrame
	mesh    *meshNet

	jobCh    chan []byte
	meshCh   chan wire.MeshTable
	doneCh   chan struct{}
	doneOnce sync.Once
	downCh   chan struct{}
	downOnce sync.Once
	downErr  error
}

// NewWorker creates a worker that will dial addr on network and
// identify itself as (shard, attempt). Run drives it to completion.
func NewWorker(network, addr string, shard, attempt int) *Worker {
	w := &Worker{
		network: network,
		addr:    addr,
		shard:   shard,
		attempt: attempt,
		jobCh:   make(chan []byte, 1),
		meshCh:  make(chan wire.MeshTable, 1),
		doneCh:  make(chan struct{}),
		downCh:  make(chan struct{}),
	}
	w.ep = wire.New(wire.Config{
		Shard: -1, // the peer is the coordinator
		Dial:  func() (net.Conn, error) { return net.Dial(network, addr) },
		Hello: wire.Hello{Shard: int32(shard), Attempt: int32(attempt)},
		// Generous redial budget with tight pacing: chaos connection
		// drops must be ridden out quickly, while a truly dead hub still
		// fails the link inside a few seconds.
		MaxRedials: 60,
		RedialBase: 5 * time.Millisecond,
		RedialCap:  250 * time.Millisecond,
		Handler:    w.handle,
		OnDown:     w.onDown,
	})
	return w
}

// Kill forces the worker down, as close to SIGKILL as an in-process
// worker gets: the link fails permanently, the engine aborts through
// the seam's OnDown hook, and Run returns promptly.
func (w *Worker) Kill() { w.ep.Fail(ErrKilled) }

// handle dispatches one delivered frame on the endpoint read goroutine.
func (w *Worker) handle(kind byte, payload []byte) {
	w.mu.Lock()
	seam := w.seam
	if seam == nil {
		switch kind {
		case wire.FBatch, wire.FGVTStart, wire.FGVTDone:
			w.preSeam = append(w.preSeam, bufferedFrame{kind: kind, payload: payload})
			w.mu.Unlock()
			return
		}
	}
	w.mu.Unlock()
	if seam != nil && seam.HandleFrame(kind, payload) {
		return
	}
	switch kind {
	case wire.FJob:
		select {
		case w.jobCh <- payload:
		default:
		}
	case wire.FMeshTable:
		if t, err := wire.DecodeMeshTable(payload); err == nil {
			select {
			case w.meshCh <- t:
			default:
			}
		}
	case wire.FChaos:
		co, err := wire.DecodeChaos(payload)
		if err != nil {
			return
		}
		w.mu.Lock()
		m := w.mesh
		w.mu.Unlock()
		if m != nil {
			m.applyChaos(co)
		}
	case wire.FDone:
		w.doneOnce.Do(func() { close(w.doneCh) })
	}
}

// onDown records the permanent link failure and propagates it.
func (w *Worker) onDown(err error) {
	w.mu.Lock()
	seam := w.seam
	w.mu.Unlock()
	if seam != nil {
		seam.Down(err)
	}
	w.downOnce.Do(func() {
		w.downErr = err
		close(w.downCh)
	})
}

// installSeam publishes the seam and replays every buffered frame
// through it, under the lock, so buffered and live frames cannot
// interleave out of order.
func (w *Worker) installSeam(s *wire.Seam) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seam = s
	for _, fr := range w.preSeam {
		s.HandleFrame(fr.kind, fr.payload)
	}
	w.preSeam = nil
}

// Run connects, receives the job, and executes the shard to completion.
// The returned error is the worker's local verdict; the hub learns of
// failures through the FError frame (or through silence).
func (w *Worker) Run() error {
	defer w.ep.Close()
	if err := w.ep.Connect(); err != nil {
		return err
	}
	var payload []byte
	select {
	case payload = <-w.jobCh:
	case <-w.downCh:
		return w.downErr
	case <-time.After(jobWait):
		return fmt.Errorf("dist: worker shard %d: no job within %v", w.shard, jobWait)
	}
	job, err := DecodeJob(payload)
	if err != nil {
		return w.sendError(err)
	}
	sys, err := job.LogicSystem()
	if err != nil {
		return w.sendError(err)
	}
	c, err := job.BuildCircuit()
	if err != nil {
		return w.sendError(err)
	}
	stim, err := job.BuildStimulus(c)
	if err != nil {
		return w.sendError(err)
	}
	part, shardOf, err := job.BuildPartition(c)
	if err != nil {
		return w.sendError(err)
	}
	seam := wire.NewSeam(w.ep, job.Shard, shardOf)
	w.installSeam(seam)

	stopHB := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(job.Heartbeat())
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
				ev, idle := seam.Progress()
				// Piggyback the cumulative wire counters on the beacon so
				// the hub can observe a stable Mattern cut without extra
				// round-trips in steady state.
				sent, recv := seam.SentRecv()
				w.ep.SendUnseq(wire.FHeartbeat,
					wire.AppendHeartbeat(nil, wire.Heartbeat{Events: ev, Idle: idle, Sent: sent, Recv: recv}))
			}
		}
	}()
	defer func() {
		close(stopHB)
		hbWG.Wait()
	}()

	// Mesh handshake: announce the listener, wait for the hub's routing
	// table, then connect exactly the cut-edge neighbors. This completes
	// before the checkpoint shadow and the engine, so every FBatch the
	// engine sends already has its direct route installed.
	if job.Mesh && job.Shards > 1 {
		adj := meshNeighbors(c, part.Assign, shardOf, job.Shards)
		m, err := newMeshNet(w.network, job.MeshDir, job, seam, adj[job.Shard])
		if err != nil {
			return w.sendError(err)
		}
		defer m.close()
		w.mu.Lock()
		w.mesh = m
		w.mu.Unlock()
		deadline := time.Now().Add(meshSetupWait)
		if err := w.ep.Send(wire.FMeshAddr,
			wire.AppendMeshAddr(nil, wire.MeshAddr{Shard: job.Shard, Addr: m.Addr()})); err != nil {
			return w.sendError(err)
		}
		var table wire.MeshTable
		select {
		case table = <-w.meshCh:
		case <-w.downCh:
			return w.downErr
		case <-time.After(meshSetupWait):
			return w.sendError(fmt.Errorf("dist: shard %d: no mesh table within %v", job.Shard, meshSetupWait))
		}
		if err := m.connect(w.network, table, adj[job.Shard], deadline); err != nil {
			return w.sendError(err)
		}
	}

	var boot *ckpt.State
	if job.Boot != "" {
		boot, err = ckpt.ReadFile(job.Boot)
		if err != nil {
			return w.sendError(err)
		}
		if err := boot.Check(c, sys); err != nil {
			return w.sendError(err)
		}
	}
	owned := ownedGates(part.Assign, shardOf, job.Shard, c.NumGates())

	// Sequential shadow: regenerate the trajectory and persist this
	// shard's restriction of every boundary snapshot before the engine
	// runs. Every engine reproduces the sequential trajectory exactly,
	// so these cuts are valid restore points no matter which engine (or
	// which attempt) later boots from them. Inbound batches arriving
	// during this phase park in the seam's pending buffers.
	var ckptFullBytes, ckptDeltaBytes, ckptFulls, ckptDeltas uint64
	if job.CheckpointEvery > 0 && job.CheckpointDir != "" {
		if err := os.MkdirAll(job.CheckpointDir, 0o755); err != nil {
			return w.sendError(err)
		}
		// In delta mode the first boundary of each attempt is a full
		// snapshot and every later one a delta chained to its sealed
		// predecessor. A delta's base is always the boundary one interval
		// earlier on the deterministic trajectory, so delta files — like
		// full ones — are attempt-independent and safely overwrite stale
		// copies from torn-down attempts.
		var last *ckpt.State
		_, err := seq.Run(c, stim, circuit.Tick(job.Until), seq.Config{
			System:          sys,
			MaxEvents:       job.MaxEvents,
			CheckpointEvery: circuit.Tick(job.CheckpointEvery),
			Checkpoint: func(st *ckpt.State) error {
				cur := restrictToShard(st, owned)
				if !job.CkptDelta || last == nil {
					path := filepath.Join(job.CheckpointDir, shardCkptName(job.Shard, cur.Time))
					if err := ckpt.WriteFile(path, cur); err != nil {
						return err
					}
					ckptFullBytes += fileSize(path)
					ckptFulls++
				} else {
					d, err := ckpt.DeltaFrom(last, cur)
					if err != nil {
						return err
					}
					path := filepath.Join(job.CheckpointDir, shardDeltaName(job.Shard, cur.Time))
					if err := ckpt.WriteDeltaFile(path, d); err != nil {
						return err
					}
					ckptDeltaBytes += fileSize(path)
					ckptDeltas++
				}
				last = cur
				return nil
			},
			Boot: boot,
		})
		if err != nil {
			return w.sendError(err)
		}
	}

	out, err := w.runEngine(job, c, stim, part, sys, boot, seam)
	if err != nil {
		return w.sendError(err)
	}

	// The shard waveform is absolute: every owned-gate sample from t=0
	// through the horizon, boot prefix included. Engines return only the
	// post-boot suffix, so the prefix is prepended here; both halves are
	// filtered to owned gates so the hub's merge is a plain union.
	samples := make([]wfSample, 0, len(out.waveform))
	for _, sm := range prefixOf(boot) {
		if owned[sm.Gate] {
			samples = append(samples, sm)
		}
	}
	for _, sm := range out.waveform {
		if owned[sm.Gate] {
			samples = append(samples, wfSample{Time: uint64(sm.Time), Gate: sm.Gate, Value: sm.Value})
		}
	}
	res := shardResult{
		Shard:          job.Shard,
		Values:         out.values,
		Waveform:       samples,
		EndTime:        uint64(out.endTime),
		Events:         out.events,
		GVT:            uint64(out.gvt),
		MeshBytes:      seam.MeshBytes(),
		CkptFullBytes:  ckptFullBytes,
		CkptDeltaBytes: ckptDeltaBytes,
		CkptFulls:      ckptFulls,
		CkptDeltas:     ckptDeltas,
	}
	rp, err := json.Marshal(&res)
	if err != nil {
		return w.sendError(err)
	}
	if err := w.ep.Send(wire.FResult, rp); err != nil {
		return err
	}
	select {
	case <-w.doneCh:
	case <-w.downCh:
	case <-time.After(resultLinger):
	}
	return nil
}

// engineOut is the engine-independent slice of a shard run's result.
type engineOut struct {
	values   []logic.Value
	waveform trace.Waveform
	endTime  circuit.Tick
	events   uint64
	gvt      circuit.Tick
}

// runEngine dispatches the job's engine over the local LPs.
func (w *Worker) runEngine(job *Job, c *circuit.Circuit, stim *vectors.Stimulus,
	part *partition.Partition, sys logic.System, boot *ckpt.State, seam *wire.Seam) (*engineOut, error) {
	until := circuit.Tick(job.Until)
	switch job.Engine {
	case "cmb", "cmb-demand":
		mode := cmb.NullEager
		if job.Engine == "cmb-demand" {
			mode = cmb.NullDemand
		}
		res, err := cmb.Run(c, stim, until, cmb.Config{
			Partition:   part,
			Mode:        mode,
			System:      sys,
			MaxEvents:   job.MaxEvents,
			HangTimeout: job.HangTimeout(),
			Boot:        boot,
			Dist:        seam,
		})
		if err != nil {
			return nil, err
		}
		return &engineOut{
			values:   res.Values,
			waveform: res.Waveform,
			endTime:  res.EndTime,
			events:   appliedEvents(res.Stats.LPs),
		}, nil
	case "timewarp", "timewarp-lazy":
		cancel := timewarp.Aggressive
		if job.Engine == "timewarp-lazy" {
			cancel = timewarp.Lazy
		}
		res, err := timewarp.Run(c, stim, until, timewarp.Config{
			Partition:    part,
			Cancellation: cancel,
			System:       sys,
			MaxEvents:    job.MaxEvents,
			HangTimeout:  job.HangTimeout(),
			Boot:         boot,
			Dist:         seam,
		})
		if err != nil {
			return nil, err
		}
		return &engineOut{
			values:   res.Values,
			waveform: res.Waveform,
			endTime:  res.EndTime,
			events:   appliedEvents(res.Stats.LPs),
			gvt:      res.GVT,
		}, nil
	}
	return nil, fmt.Errorf("dist: engine %q does not distribute", job.Engine)
}

// appliedEvents sums committed net changes across the shard's LPs.
func appliedEvents(lps []metrics.LPCounters) uint64 {
	var n uint64
	for _, lp := range lps {
		n += lp.EventsApplied
	}
	return n
}

// sendError flattens the failure into an FError frame (best effort; the
// hub also notices dead links without one) and returns it.
func (w *Worker) sendError(err error) error {
	we := wireError{Engine: "dist", LP: -1, Cause: err.Error()}
	var se *supervise.SimError
	if errors.As(err, &se) {
		we = wireError{
			Engine:      se.Engine,
			LP:          se.LP,
			Phase:       se.Phase,
			ModeledTime: uint64(se.ModeledTime),
			Kind:        uint8(se.Kind),
			Cause:       se.Error(),
		}
	}
	if p, merr := json.Marshal(&we); merr == nil {
		w.ep.Send(wire.FError, p)
	}
	return err
}

// toSimError rebuilds a structured error from a worker's FError payload.
func (e *wireError) toSimError() *supervise.SimError {
	return &supervise.SimError{
		Engine:      e.Engine,
		LP:          e.LP,
		Phase:       e.Phase,
		ModeledTime: circuit.Tick(e.ModeledTime),
		Kind:        supervise.Kind(e.Kind),
		Cause:       errors.New(e.Cause),
	}
}
