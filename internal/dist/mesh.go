package dist

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/dist/wire"
	"repro/internal/simtest/chaos/netfault"
)

// Mesh data plane. With Job.Mesh set, inter-shard FBatch traffic flows
// shard-to-shard over direct peer links instead of being relayed by the
// hub, cutting the data-plane hop count from two to one and taking the
// hub off the event-traffic critical path entirely — it keeps only the
// control plane (GVT rounds, heartbeats, results, chaos orders).
//
// Setup is a three-step handshake over the existing hub links: each
// worker opens a mesh listener and announces its address (FMeshAddr);
// the hub collects all addresses and broadcasts the routing table
// (FMeshTable); workers then connect to exactly the neighbors the
// partition's cut edges dictate. Both sides derive the neighbor set
// independently from the deterministic partition — the table carries
// only addresses, never topology — so a disagreement is impossible.
// For a neighbor pair (i, j) with i < j, the higher shard dials and
// owns the redial budget; the lower shard accepts, matching hellos by
// attempt. Each direction of a pair is one wire.Endpoint, so mesh links
// inherit the full reliable-delivery contract (sequencing, cumulative
// acks, in-order retransmit after redial, dup suppression) and the full
// chaos surface of the hub links.

// meshSetupWait bounds the whole mesh handshake: table wait plus peer
// connects. A worker that cannot complete its mesh inside this window
// reports the failure and lets the hub's recovery machinery restart the
// fleet.
const meshSetupWait = 30 * time.Second

// meshNeighbors derives the shard adjacency matrix from the partition's
// cut edges: shards i and j are neighbors iff some gate owned by one
// fans out to a gate owned by the other. Cross-shard event traffic
// flows only along gate fanout edges (stimulus and boot routing are
// shard-local), so these are exactly the links the data plane needs.
func meshNeighbors(c *circuit.Circuit, assign []int, shardOf []int, shards int) [][]bool {
	adj := make([][]bool, shards)
	for i := range adj {
		adj[i] = make([]bool, shards)
	}
	for g := 0; g < c.NumGates(); g++ {
		sg := shardOf[assign[g]]
		for _, fo := range c.Fanout[g] {
			if sf := shardOf[assign[fo]]; sf != sg {
				adj[sg][sf] = true
				adj[sf][sg] = true
			}
		}
	}
	return adj
}

// meshNet is one worker's half of the mesh: its listener, its per-peer
// endpoints, and the accept machinery for higher-shard dialers.
type meshNet struct {
	self    int
	attempt int
	seam    *wire.Seam
	ln      net.Listener

	// eps[p] is the link to peer shard p (nil for non-neighbors and
	// self). Lower-peer entries are dial-side and filled by connect;
	// higher-peer entries are accept-side and pre-created here so an
	// early dialer always finds its endpoint.
	eps []*wire.Endpoint

	// accepted[p] closes when higher peer p's first connection attaches.
	accepted []chan struct{}
	acceptMu sync.Mutex
	attached []bool
}

// newMeshNet opens the mesh listener and pre-creates the accept-side
// endpoints. network/meshDir mirror the hub link's transport: tcp
// listens on loopback, unix sockets live in the job's mesh directory.
func newMeshNet(network, meshDir string, job *Job, seam *wire.Seam, neighbors []bool) (*meshNet, error) {
	laddr := "127.0.0.1:0"
	if network == "unix" {
		laddr = filepath.Join(meshDir, fmt.Sprintf("mesh-%d-%d.sock", job.Shard, job.Attempt))
	}
	ln, err := net.Listen(network, laddr)
	if err != nil {
		return nil, fmt.Errorf("dist: shard %d mesh listen: %w", job.Shard, err)
	}
	m := &meshNet{
		self:     job.Shard,
		attempt:  job.Attempt,
		seam:     seam,
		ln:       ln,
		eps:      make([]*wire.Endpoint, job.Shards),
		accepted: make([]chan struct{}, job.Shards),
		attached: make([]bool, job.Shards),
	}
	for p := job.Shard + 1; p < job.Shards; p++ {
		if !neighbors[p] {
			continue
		}
		m.accepted[p] = make(chan struct{})
		m.eps[p] = wire.New(wire.Config{
			Shard:   p,
			Handler: m.handle,
		})
	}
	go m.acceptLoop()
	return m, nil
}

// Addr is the listener address workers announce in FMeshAddr.
func (m *meshNet) Addr() string { return m.ln.Addr().String() }

// handle feeds delivered mesh frames into the seam; only FBatch flows
// on mesh links, and the seam's pre-bind pending buffers already handle
// batches that beat the engine to its Bind.
func (m *meshNet) handle(kind byte, payload []byte) {
	m.seam.HandleFrame(kind, payload)
}

// acceptLoop admits dialing peers for the worker's lifetime — chaos
// connection drops make higher peers redial mid-run, and each redial
// re-attaches here.
func (m *meshNet) acceptLoop() {
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return
		}
		go m.admit(c)
	}
}

// admit validates one inbound hello (right attempt, an expected higher
// neighbor) and attaches the connection to that peer's endpoint.
func (m *meshNet) admit(c net.Conn) {
	hello, err := wire.ReadHello(c)
	if err != nil || int(hello.Attempt) != m.attempt {
		c.Close()
		return
	}
	p := int(hello.Shard)
	if p <= m.self || p >= len(m.eps) || m.eps[p] == nil {
		c.Close()
		return
	}
	if m.eps[p].Attach(c, hello.RecvSeq) != nil {
		return
	}
	m.acceptMu.Lock()
	if !m.attached[p] {
		m.attached[p] = true
		close(m.accepted[p])
	}
	m.acceptMu.Unlock()
}

// connect completes the mesh: dial every lower neighbor from the
// broadcast table and wait for every higher neighbor to dial in, all
// inside the deadline. On success the seam routes FBatch traffic over
// the returned peer slice.
func (m *meshNet) connect(network string, table wire.MeshTable, neighbors []bool, deadline time.Time) error {
	if len(table.Addrs) != len(m.eps) {
		return fmt.Errorf("dist: shard %d mesh table has %d addrs, want %d", m.self, len(table.Addrs), len(m.eps))
	}
	var wg sync.WaitGroup
	errs := make([]error, m.self)
	for p := 0; p < m.self; p++ {
		if !neighbors[p] {
			continue
		}
		addr := table.Addrs[p]
		ep := wire.New(wire.Config{
			Shard: p,
			Dial:  func() (net.Conn, error) { return net.Dial(network, addr) },
			Hello: wire.Hello{Shard: int32(m.self), Attempt: int32(m.attempt)},
			// Same budget and pacing as the hub link: chaos drops are
			// ridden out fast, a dead peer fails the link (and so the
			// run, triggering fleet recovery) within seconds.
			MaxRedials: 60,
			RedialBase: 5 * time.Millisecond,
			RedialCap:  250 * time.Millisecond,
			Handler:    m.handle,
			OnDown:     m.seam.Down,
		})
		m.eps[p] = ep
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = ep.Connect()
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			return fmt.Errorf("dist: shard %d mesh dial to shard %d: %w", m.self, p, err)
		}
	}
	for p := m.self + 1; p < len(m.eps); p++ {
		if m.accepted[p] == nil {
			continue
		}
		select {
		case <-m.accepted[p]:
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("dist: shard %d mesh accept from shard %d timed out", m.self, p)
		}
	}
	m.seam.SetPeers(m.eps)
	return nil
}

// applyChaos maps a hub chaos order onto the targeted mesh link; orders
// for absent links (non-neighbor targets in a random plan) are no-ops.
// OpStall has no relay to hold on a direct link, so it freezes the
// inbound half instead — delayed, never reordered, like the hub stall.
func (m *meshNet) applyChaos(co wire.Chaos) {
	p := int(co.Peer)
	if p < 0 || p >= len(m.eps) || m.eps[p] == nil {
		return
	}
	ep := m.eps[p]
	d := time.Duration(co.Ms) * time.Millisecond
	switch netfault.Op(co.Op) {
	case netfault.OpStall:
		ep.FreezeIn(d)
	case netfault.OpDropConn:
		ep.ChaosDropConn()
	case netfault.OpDup:
		ep.ChaosDup()
	case netfault.OpPartition:
		ep.FreezeOut(d)
		ep.FreezeIn(d)
	}
}

// close tears the mesh down: listener first (stops new attaches), then
// every peer link.
func (m *meshNet) close() {
	m.ln.Close()
	for _, ep := range m.eps {
		if ep != nil {
			ep.Close()
		}
	}
}
