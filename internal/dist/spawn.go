package dist

import (
	"fmt"
	"io"
	"os/exec"
	"strconv"
)

// Proc is one launched worker the hub can reap or kill.
type Proc interface {
	// Kill terminates the worker immediately (SIGKILL for a process,
	// forced link failure for an in-process worker). Idempotent.
	Kill()
	// Done is closed once the worker has exited; it is safe to receive
	// from any number of times and goroutines.
	Done() <-chan struct{}
	// Err is the worker's exit error (nil on clean exit), valid once
	// Done is closed.
	Err() error
}

// Spawner launches workers; the hub calls it once per shard per
// attempt.
type Spawner interface {
	Spawn(network, addr string, shard, attempt int) (Proc, error)
}

// ExecSpawner launches each worker as a separate OS process running the
// parsimd-worker binary — the production topology, and the one the
// chaos harness SIGKILLs for real.
type ExecSpawner struct {
	// Bin is the parsimd-worker binary path.
	Bin string
	// Stderr receives worker stderr (nil discards it).
	Stderr io.Writer
}

type execProc struct {
	cmd  *exec.Cmd
	err  error
	done chan struct{}
}

// Spawn starts one worker process.
func (s *ExecSpawner) Spawn(network, addr string, shard, attempt int) (Proc, error) {
	cmd := exec.Command(s.Bin,
		"-network", network, "-addr", addr,
		"-shard", strconv.Itoa(shard), "-attempt", strconv.Itoa(attempt))
	cmd.Stderr = s.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: spawn shard %d: %w", shard, err)
	}
	p := &execProc{cmd: cmd, done: make(chan struct{})}
	go func() {
		p.err = cmd.Wait()
		close(p.done)
	}()
	return p, nil
}

func (p *execProc) Kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
}

func (p *execProc) Done() <-chan struct{} { return p.done }
func (p *execProc) Err() error            { return p.err }

// InProcSpawner runs each worker as a goroutine inside the hub's
// process, still talking through real sockets. It is the test harness's
// spawner: the full wire protocol is exercised without the cost of
// go-building a binary, and "kill" is a forced permanent link failure —
// the in-process analogue of SIGKILL the netfault plan documents.
type InProcSpawner struct{}

type inprocProc struct {
	w    *Worker
	err  error
	done chan struct{}
}

// Spawn starts one in-process worker.
func (InProcSpawner) Spawn(network, addr string, shard, attempt int) (Proc, error) {
	w := NewWorker(network, addr, shard, attempt)
	p := &inprocProc{w: w, done: make(chan struct{})}
	go func() {
		p.err = w.Run()
		close(p.done)
	}()
	return p, nil
}

func (p *inprocProc) Kill()                 { p.w.Kill() }
func (p *inprocProc) Done() <-chan struct{} { return p.done }
func (p *inprocProc) Err() error            { return p.err }
