// Package dist runs one simulation as a set of worker processes, each
// owning a contiguous shard of the LPs, joined by the reliable socket
// transport in internal/dist/wire and coordinated by an in-process hub.
//
// The hub is a star: every worker holds exactly one connection to the
// coordinator, which relays framed event batches between shards, drives
// the distributed Mattern-style GVT conversation for the optimistic
// engines, and watches per-connection heartbeats. Fault tolerance is
// checkpoint-restart over the whole fleet: each worker's sequential
// shadow writes shard-restricted snapshots at fixed modeled-time
// boundaries, and when a shard is lost (crash, hang, or partition that
// outlives the retry budget) the hub kills every worker, merges the
// latest boundary that is complete and uncorrupted across all shards,
// and relaunches the fleet booted from the merged cut. When the restart
// budget is exhausted the run degrades to a single-process supervised
// run (sync, then seq) or fails with a structured shard-loss error.
//
// Workers do not receive the circuit or the stimulus over the wire:
// both are regenerated from the job spec's deterministic parameters
// (generator name, delay seed, stimulus seed), exactly as the parsim
// CLI builds them, so every shard provably simulates the same workload.
package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/vectors"
)

// Job is the spec a worker receives in its FJob frame: everything
// needed to deterministically regenerate the circuit, the stimulus, the
// partition, and the shard map, plus this worker's place in the fleet.
// It is JSON so a captured job can be replayed by hand.
type Job struct {
	// Bench reads the circuit from an ISCAS .bench file; empty uses the
	// Circuit generator name instead.
	Bench string `json:"bench,omitempty"`
	// Circuit is the generator name (gen.ByName: c17, ripple8, mul16, ...).
	Circuit string `json:"circuit,omitempty"`
	// FineDelays assigns random delays in [1,N] to generated circuits
	// (0 = unit delays).
	FineDelays uint64 `json:"fine_delays,omitempty"`
	// Seed feeds delay assignment, stimulus generation, and randomized
	// partitioners; identical seeds regenerate identical workloads.
	Seed int64 `json:"seed"`

	// Vectors/Activity/Period parameterize the stimulus exactly as the
	// parsim CLI does (clocked when the circuit has a clock input,
	// random otherwise).
	Vectors  int     `json:"vectors"`
	Activity float64 `json:"activity"`
	Period   uint64  `json:"period"`

	// Engine is the worker engine: cmb, cmb-demand, timewarp, or
	// timewarp-lazy. The deadlock-recovery and hybrid variants need
	// global in-process coordination and do not distribute.
	Engine string `json:"engine"`
	// Until is the simulation horizon (inclusive), fixed by the hub so
	// every shard agrees.
	Until uint64 `json:"until"`
	// LPs is the total LP count across all shards.
	LPs int `json:"lps"`
	// Partition is the partition method name; PartitionSeed feeds it.
	Partition     string `json:"partition"`
	PartitionSeed int64  `json:"partition_seed"`
	// System is the logic value system (2, 4, or 9).
	System uint8 `json:"system"`
	// MaxEvents aborts runaway shards (0 = unlimited).
	MaxEvents uint64 `json:"max_events,omitempty"`
	// HangTimeoutMs arms the worker's progress watchdog (0 = off).
	HangTimeoutMs int64 `json:"hang_timeout_ms,omitempty"`
	// HeartbeatMs paces the worker's liveness beacon.
	HeartbeatMs int64 `json:"heartbeat_ms"`

	// Shards is the fleet size; Shard is this worker's index; Attempt
	// is the hub's restart counter (echoed in the hello so the hub can
	// reject zombies from torn-down attempts).
	Shards  int `json:"shards"`
	Shard   int `json:"shard"`
	Attempt int `json:"attempt"`

	// CheckpointEvery/CheckpointDir arm the worker's sequential-shadow
	// shard checkpointer (0/"" = off).
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
	CheckpointDir   string `json:"checkpoint_dir,omitempty"`
	// Boot is the path of the merged snapshot this attempt resumes
	// from ("" = fresh start at t=0).
	Boot string `json:"boot,omitempty"`

	// Mesh routes inter-shard event batches over direct worker-to-worker
	// links; the hub keeps only the control plane. MeshDir holds the mesh
	// listener sockets for the unix network.
	Mesh    bool   `json:"mesh,omitempty"`
	MeshDir string `json:"mesh_dir,omitempty"`
	// CkptDelta makes shard checkpoints incremental: a full snapshot at
	// the first boundary of each attempt, fingerprint-chained delta
	// records after.
	CkptDelta bool `json:"ckpt_delta,omitempty"`
}

// validEngine reports whether the engine name distributes.
func validEngine(name string) bool {
	switch name {
	case "cmb", "cmb-demand", "timewarp", "timewarp-lazy":
		return true
	}
	return false
}

// HangTimeout converts the wire field back to a duration.
func (j *Job) HangTimeout() time.Duration {
	return time.Duration(j.HangTimeoutMs) * time.Millisecond
}

// Heartbeat converts the wire field back to a duration (floored so a
// zero job cannot spin the beacon loop).
func (j *Job) Heartbeat() time.Duration {
	if j.HeartbeatMs <= 0 {
		return 25 * time.Millisecond
	}
	return time.Duration(j.HeartbeatMs) * time.Millisecond
}

// LogicSystem decodes the System field.
func (j *Job) LogicSystem() (logic.System, error) {
	switch j.System {
	case 2:
		return logic.TwoValued, nil
	case 4:
		return logic.FourValued, nil
	case 0, 9:
		return logic.NineValued, nil
	}
	return 0, fmt.Errorf("dist: invalid logic system %d", j.System)
}

// BuildCircuit regenerates the circuit from the job's deterministic
// parameters — the same resolution order as the parsim CLI.
func (j *Job) BuildCircuit() (*circuit.Circuit, error) {
	if j.Bench != "" {
		f, err := os.Open(j.Bench)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bench.Read(f)
	}
	delays := gen.Unit
	if j.FineDelays > 0 {
		delays = gen.Fine(circuit.Tick(j.FineDelays), j.Seed)
	}
	return gen.ByName(j.Circuit, delays, j.Seed)
}

// BuildStimulus regenerates the stimulus: clocked when the circuit has
// a clock input, random vectors otherwise (mirrors the parsim CLI, so a
// distributed run and its sequential golden see the same input).
func (j *Job) BuildStimulus(c *circuit.Circuit) (*vectors.Stimulus, error) {
	for _, clk := range []string{"clk", "CLK", "__CLK"} {
		if id, ok := c.ByName(clk); ok && c.Gate(id).Kind == circuit.Input {
			return vectors.Clocked(c, vectors.ClockedConfig{
				Clock: clk, Cycles: j.Vectors, HalfPeriod: circuit.Tick(j.Period),
				Activity: j.Activity, Seed: j.Seed,
			})
		}
	}
	return vectors.Random(c, vectors.RandomConfig{
		Vectors: j.Vectors, Period: circuit.Tick(j.Period),
		Activity: j.Activity, Seed: j.Seed,
	})
}

// BuildPartition regenerates the LP partition and the LP->shard map.
// Both sides of the wire run this with identical inputs, so the hub and
// every worker agree on gate ownership without shipping the assignment.
func (j *Job) BuildPartition(c *circuit.Circuit) (*partition.Partition, []int, error) {
	method, err := partition.ParseMethod(j.Partition)
	if err != nil {
		return nil, nil, err
	}
	lps := j.LPs
	if lps <= 0 {
		lps = 4
	}
	part, err := partition.New(method, c, lps, partition.Options{Seed: j.PartitionSeed})
	if err != nil {
		return nil, nil, err
	}
	if err := part.Validate(c); err != nil {
		return nil, nil, err
	}
	if j.Shards < 1 {
		return nil, nil, fmt.Errorf("dist: job needs at least one shard, got %d", j.Shards)
	}
	shardOf := part.Group(j.Shards, partition.WeightsUniform(c))
	return part, shardOf, nil
}

// Encode marshals the job for an FJob frame.
func (j *Job) Encode() ([]byte, error) { return json.Marshal(j) }

// DecodeJob unmarshals an FJob payload.
func DecodeJob(p []byte) (*Job, error) {
	var j Job
	if err := json.Unmarshal(p, &j); err != nil {
		return nil, fmt.Errorf("dist: job decode: %w", err)
	}
	if !validEngine(j.Engine) {
		return nil, fmt.Errorf("dist: engine %q does not distribute (cmb, cmb-demand, timewarp, timewarp-lazy)", j.Engine)
	}
	return &j, nil
}

// shardResult is the JSON payload of a worker's FResult frame: final
// values and waveform samples for the gates this shard owns, plus the
// shard's bookkeeping. Values is full-length with non-owned entries
// zero; the hub reads only the owned gates.
type shardResult struct {
	Shard    int           `json:"shard"`
	Values   []logic.Value `json:"values"`
	Waveform []wfSample    `json:"waveform"`
	EndTime  uint64        `json:"end_time"`
	Events   uint64        `json:"events"`
	GVT      uint64        `json:"gvt,omitempty"`
	// MeshBytes is FBatch payload volume this shard sent over direct
	// mesh links (0 on the hub-relay path); the hub folds these into the
	// mesh_bytes gauge opposite its own hub_bytes relay count.
	MeshBytes uint64 `json:"mesh_bytes,omitempty"`
	// Checkpoint volume accounting: bytes and record counts written as
	// full snapshots versus delta records, behind the delta_ratio gauge.
	CkptFullBytes  uint64 `json:"ckpt_full_bytes,omitempty"`
	CkptDeltaBytes uint64 `json:"ckpt_delta_bytes,omitempty"`
	CkptFulls      uint64 `json:"ckpt_fulls,omitempty"`
	CkptDeltas     uint64 `json:"ckpt_deltas,omitempty"`
}

// wfSample is a JSON-stable waveform sample.
type wfSample struct {
	Time  uint64         `json:"t"`
	Gate  circuit.GateID `json:"g"`
	Value logic.Value    `json:"v"`
}

// wireError is the JSON payload of a worker's FError frame: a SimError
// flattened for the wire (the cause survives as text).
type wireError struct {
	Engine      string `json:"engine"`
	LP          int    `json:"lp"`
	Phase       string `json:"phase"`
	ModeledTime uint64 `json:"t"`
	Kind        uint8  `json:"kind"`
	Cause       string `json:"cause"`
}
