package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/dist/wire"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/supervise"
	"repro/internal/simtest/chaos/netfault"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Options configures a distributed run.
type Options struct {
	// Shards is the worker-process count (>= 1).
	Shards int
	// Engine is the worker engine: cmb, cmb-demand, timewarp, or
	// timewarp-lazy.
	Engine string

	// Workload parameters, forwarded verbatim into every worker's Job so
	// each shard regenerates the identical circuit and stimulus.
	Bench      string
	Circuit    string
	FineDelays uint64
	Seed       int64
	Vectors    int
	Activity   float64
	Period     uint64
	Until      uint64

	// LPs / Partition / PartitionSeed parameterize the gate partition;
	// LPs are then grouped onto shards uniformly.
	LPs           int
	Partition     string
	PartitionSeed int64
	// System is the logic value system (default 9-valued).
	System logic.System
	// MaxEvents aborts runaway shards (0 = unlimited).
	MaxEvents uint64
	// HangTimeout arms each worker's in-engine progress watchdog.
	HangTimeout time.Duration

	// CheckpointEvery, when non-zero, arms per-shard checkpointing at
	// every multiple of this modeled time; recovery needs it.
	CheckpointEvery uint64
	// WorkDir holds shard snapshots, merged boot files, and (for the
	// unix network) the coordinator socket. Empty creates a temporary
	// directory that is removed when the run ends.
	WorkDir string

	// Restarts is the fleet-restart budget: after a shard loss the hub
	// kills every worker, merges the newest complete checkpoint
	// boundary, and relaunches, at most this many times.
	Restarts int
	// Fallback degrades a run whose restart budget is exhausted to a
	// single-process supervised run (sync, then seq) instead of failing
	// with a shard-loss error.
	Fallback bool

	// HeartbeatEvery paces worker liveness beacons (default 25ms);
	// HeartbeatTimeout is how long a silent, result-less shard can stay
	// silent before the hub declares it lost (default 1s).
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration

	// Network is "tcp" (loopback, default) or "unix" (socket in
	// WorkDir).
	Network string

	// Mesh routes inter-shard event batches over direct worker-to-worker
	// links dialed from a hub-distributed routing table; the hub keeps
	// only the control plane (GVT, heartbeats, results, chaos). Falls
	// back to hub relay per-batch for any route without a mesh link.
	Mesh bool
	// CkptDelta makes per-shard checkpoints incremental: full snapshot
	// at the first boundary of each attempt, fingerprint-chained delta
	// records after, with recovery replaying the chain and degrading to
	// the last full snapshot when a link is broken.
	CkptDelta bool

	// GVTInterval is the wall-clock ceiling between distributed GVT
	// cycles for the optimistic engines (default 50ms); like the
	// single-process coordinator, cycles are normally paced by reported
	// work and by all-idle heartbeats.
	GVTInterval time.Duration

	// Plan injects network chaos at the hub's relay: stalls, connection
	// drops, duplicates, partitions, and worker kills, each scoped to
	// one shard's link.
	Plan netfault.Plan

	// Spawn launches workers; nil uses in-process workers over real
	// sockets. ExecSpawner launches separate OS processes.
	Spawn Spawner

	// Metrics receives dist_* gauges (nil discards them).
	Metrics metrics.Sink
}

// Result is the outcome of a distributed run.
type Result struct {
	Values   []logic.Value
	Waveform trace.Waveform
	EndTime  circuit.Tick
	GVT      circuit.Tick
	// Events sums committed net changes across shards (of the final,
	// successful attempt).
	Events uint64
	Shards int
	// Attempts counts fleet launches; Recoveries counts checkpoint
	// restarts after a shard loss; Fallbacks counts degradations to a
	// simpler single-process engine.
	Attempts   int
	Recoveries int
	Fallbacks  int
	// FinalMode is "dist", or the single-process engine name that
	// finished the run after degradation ("sync", "seq").
	FinalMode string
	// Degraded, when FinalMode is not "dist", is the shard-loss error
	// that exhausted the restart budget.
	Degraded string
}

// Defaults.
const (
	defaultHeartbeat        = 25 * time.Millisecond
	defaultHeartbeatTimeout = 1 * time.Second
	defaultGVTInterval      = 50 * time.Millisecond
	// teardownGrace bounds how long the hub waits for workers to exit on
	// their own (after FDone, or after a kill) before moving on.
	teardownGrace = 5 * time.Second
)

// Run executes one distributed simulation: launch the fleet, relay and
// perturb traffic, recover from shard losses, and merge the shard
// results into a single report whose waveform is bit-identical to the
// sequential engine's.
func Run(opts Options) (*Result, error) {
	h, err := newHub(opts)
	if err != nil {
		return nil, err
	}
	defer h.close()

	var lastErr error
	for attempt := 0; attempt <= h.opts.Restarts; attempt++ {
		res, err := h.runAttempt(attempt)
		if err == nil {
			res.Attempts = attempt + 1
			res.Recoveries = attempt
			res.FinalMode = "dist"
			h.gauge("dist_shards", float64(h.opts.Shards))
			h.gauge("dist_recoveries", float64(attempt))
			h.gauge("dist_fallbacks", 0)
			return res, nil
		}
		lastErr = err
		if !recoverableDist(err) {
			return nil, err
		}
	}

	loss := &supervise.SimError{
		Engine: "dist", LP: -1, Phase: "supervise",
		Kind: supervise.KindShardLoss, Cause: lastErr,
	}
	h.gauge("dist_recoveries", float64(h.opts.Restarts))
	if !h.opts.Fallback {
		return nil, loss
	}
	return h.fallback(loss)
}

// recoverableDist reports whether a failed attempt is worth a restart.
// Everything is, except the event-limit guard: a runaway workload
// regenerates identically on every attempt.
func recoverableDist(err error) bool {
	var se *supervise.SimError
	if errors.As(err, &se) {
		return se.Kind != supervise.KindEventLimit
	}
	return true
}

// hub is the coordinator: listener, workload, and across-attempt state.
type hub struct {
	opts      Options
	c         *circuit.Circuit
	stim      *vectors.Stimulus
	part      *partition.Partition
	shardOf   []int // LP -> shard
	gateShard []int // gate -> shard
	sys       logic.System

	ln      net.Listener
	addr    string
	workDir string
	ownDir  bool // we created workDir and must remove it

	mu   sync.Mutex
	sess *session // the attempt the accept loop routes hellos to
}

// newHub validates options, rebuilds the workload locally (for shard
// maps, result merging, and the fallback path), and starts listening.
func newHub(opts Options) (*hub, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("dist: need at least one shard, got %d", opts.Shards)
	}
	if !validEngine(opts.Engine) {
		return nil, fmt.Errorf("dist: engine %q does not distribute (cmb, cmb-demand, timewarp, timewarp-lazy)", opts.Engine)
	}
	if opts.System == 0 {
		opts.System = logic.NineValued
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = defaultHeartbeat
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = defaultHeartbeatTimeout
	}
	if opts.GVTInterval <= 0 {
		opts.GVTInterval = defaultGVTInterval
	}
	if opts.Network == "" {
		opts.Network = "tcp"
	}
	if opts.Spawn == nil {
		opts.Spawn = InProcSpawner{}
	}
	if opts.Partition == "" {
		opts.Partition = "fm"
	}

	h := &hub{opts: opts, sys: opts.System}
	job := h.jobFor(0, 0, "")
	var err error
	if h.c, err = job.BuildCircuit(); err != nil {
		return nil, err
	}
	if h.stim, err = job.BuildStimulus(h.c); err != nil {
		return nil, err
	}
	if h.part, h.shardOf, err = job.BuildPartition(h.c); err != nil {
		return nil, err
	}
	h.gateShard = make([]int, h.c.NumGates())
	for g := range h.gateShard {
		h.gateShard[g] = h.shardOf[h.part.Assign[g]]
	}

	h.workDir = opts.WorkDir
	if h.workDir == "" {
		dir, err := os.MkdirTemp("", "parsim-dist-")
		if err != nil {
			return nil, err
		}
		h.workDir = dir
		h.ownDir = true
	} else if err := os.MkdirAll(h.workDir, 0o755); err != nil {
		return nil, err
	}

	laddr := "127.0.0.1:0"
	if opts.Network == "unix" {
		laddr = filepath.Join(h.workDir, "hub.sock")
	}
	if h.ln, err = net.Listen(opts.Network, laddr); err != nil {
		h.close()
		return nil, err
	}
	h.addr = h.ln.Addr().String()
	go h.acceptLoop()
	return h, nil
}

// close releases the listener and (when owned) the work directory.
func (h *hub) close() {
	if h.ln != nil {
		h.ln.Close()
	}
	if h.ownDir {
		os.RemoveAll(h.workDir)
	}
}

// gauge records a run-level metric if a sink is attached.
func (h *hub) gauge(name string, v float64) {
	if h.opts.Metrics != nil {
		h.opts.Metrics.SetGauge(name, v)
	}
}

// jobFor builds shard s's job for one attempt.
func (h *hub) jobFor(shard, attempt int, bootPath string) *Job {
	o := &h.opts
	lps := o.LPs
	if lps <= 0 {
		lps = 4
	}
	ckptDir := ""
	if o.CheckpointEvery > 0 {
		ckptDir = h.workDir
	}
	return &Job{
		Bench: o.Bench, Circuit: o.Circuit, FineDelays: o.FineDelays, Seed: o.Seed,
		Vectors: o.Vectors, Activity: o.Activity, Period: o.Period,
		Engine: o.Engine, Until: o.Until, LPs: lps,
		Partition: o.Partition, PartitionSeed: o.PartitionSeed,
		System: uint8(o.System), MaxEvents: o.MaxEvents,
		HangTimeoutMs: o.HangTimeout.Milliseconds(),
		HeartbeatMs:   o.HeartbeatEvery.Milliseconds(),
		Shards:        o.Shards, Shard: shard, Attempt: attempt,
		CheckpointEvery: o.CheckpointEvery, CheckpointDir: ckptDir,
		Boot: bootPath,
		Mesh: o.Mesh, MeshDir: h.workDir, CkptDelta: o.CkptDelta,
	}
}

// acceptLoop admits worker connections for the hub's lifetime; hellos
// that do not match the live attempt (zombies of torn-down fleets) are
// rejected by closing the connection.
func (h *hub) acceptLoop() {
	for {
		c, err := h.ln.Accept()
		if err != nil {
			return
		}
		go h.admit(c)
	}
}

func (h *hub) admit(c net.Conn) {
	hello, err := wire.ReadHello(c)
	if err != nil {
		c.Close()
		return
	}
	h.mu.Lock()
	sess := h.sess
	h.mu.Unlock()
	if sess == nil || int(hello.Attempt) != sess.attempt ||
		hello.Shard < 0 || int(hello.Shard) >= len(sess.links) {
		c.Close()
		return
	}
	sess.links[hello.Shard].ep.Attach(c, hello.RecvSeq)
}

// runAttempt launches one fleet and runs it to completion or to the
// first shard-loss verdict.
func (h *hub) runAttempt(attempt int) (*Result, error) {
	bootPath := ""
	if attempt > 0 && h.opts.CheckpointEvery > 0 {
		merged, t, err := latestBoundary(h.workDir, h.opts.Shards, h.gateShard)
		if err != nil {
			return nil, err
		}
		if merged != nil {
			bootPath = filepath.Join(h.workDir, fmt.Sprintf("boot-attempt-%d.json", attempt))
			if err := ckpt.WriteFile(bootPath, merged); err != nil {
				return nil, err
			}
			h.gauge("dist_boot_time", float64(t))
		}
	}

	sess := newSession(h, attempt)
	h.mu.Lock()
	h.sess = sess
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		h.sess = nil
		h.mu.Unlock()
		sess.teardown()
	}()

	// Jobs are sent before the workers exist: sequenced frames queue in
	// the endpoint until the worker's connection attaches, so the job is
	// always the first sequenced frame a worker receives.
	for s, link := range sess.links {
		p, err := h.jobFor(s, attempt, bootPath).Encode()
		if err != nil {
			return nil, err
		}
		link.ep.Send(wire.FJob, p)
	}
	for s, link := range sess.links {
		proc, err := h.opts.Spawn.Spawn(h.opts.Network, h.addr, s, attempt)
		if err != nil {
			return nil, fmt.Errorf("dist: attempt %d: %w", attempt, err)
		}
		link.setProc(proc)
	}

	if h.opts.Engine == "timewarp" || h.opts.Engine == "timewarp-lazy" {
		go sess.gvtDriver()
	}
	go sess.monitor()

	for done := 0; done < len(sess.links); {
		select {
		case <-sess.resCh:
			done++
		case <-sess.failed:
			return nil, sess.err
		}
	}
	for _, link := range sess.links {
		link.ep.Send(wire.FDone, nil)
	}

	res := &Result{Shards: h.opts.Shards}
	shardRes := make([]*shardResult, len(sess.links))
	var reconnects uint64
	var meshBytes, fullBytes, deltaBytes, fulls, deltas uint64
	for s, link := range sess.links {
		sr := link.result.Load()
		if sr == nil || len(sr.Values) != h.c.NumGates() {
			return nil, fmt.Errorf("dist: shard %d produced a malformed result", s)
		}
		shardRes[s] = sr
		if circuit.Tick(sr.EndTime) > res.EndTime {
			res.EndTime = circuit.Tick(sr.EndTime)
		}
		if circuit.Tick(sr.GVT) > res.GVT {
			res.GVT = circuit.Tick(sr.GVT)
		}
		res.Events += sr.Events
		reconnects += link.ep.Reconnects()
		meshBytes += sr.MeshBytes
		fullBytes += sr.CkptFullBytes
		deltaBytes += sr.CkptDeltaBytes
		fulls += sr.CkptFulls
		deltas += sr.CkptDeltas
	}
	// Data-plane routing gauges: hub_bytes is FBatch payload the hub
	// relayed, mesh_bytes what flowed shard-to-shard; relay_hops is the
	// data plane's hop count (1 only when the mesh carried everything).
	hubBytes := sess.hubDataBytes.Load()
	h.gauge("hub_bytes", float64(hubBytes))
	h.gauge("mesh_bytes", float64(meshBytes))
	hops := 2.0
	if h.opts.Mesh && hubBytes == 0 {
		hops = 1.0
	}
	h.gauge("relay_hops", hops)
	h.gauge("dist_gvt_rounds", float64(sess.gvtRounds.Load()))
	// Checkpoint volume gauges: delta_ratio is mean delta record size
	// over mean full snapshot size — the incremental saving per boundary.
	h.gauge("ckpt_full_bytes", float64(fullBytes))
	h.gauge("ckpt_delta_bytes", float64(deltaBytes))
	if fulls > 0 && deltas > 0 && fullBytes > 0 {
		h.gauge("delta_ratio", (float64(deltaBytes)/float64(deltas))/(float64(fullBytes)/float64(fulls)))
	}
	res.Values = make([]logic.Value, h.c.NumGates())
	var n int
	for _, sr := range shardRes {
		n += len(sr.Waveform)
	}
	res.Waveform = make(trace.Waveform, 0, n)
	for g := range res.Values {
		res.Values[g] = shardRes[h.gateShard[g]].Values[g]
	}
	for _, sr := range shardRes {
		for _, sm := range sr.Waveform {
			res.Waveform = append(res.Waveform, trace.Sample{
				Time: circuit.Tick(sm.Time), Gate: sm.Gate, Value: sm.Value,
			})
		}
	}
	// Canonical order (time, then gate) matches every engine's merged
	// waveform, so the distributed result is byte-identical in VCD form.
	sort.Slice(res.Waveform, func(i, j int) bool {
		if res.Waveform[i].Time != res.Waveform[j].Time {
			return res.Waveform[i].Time < res.Waveform[j].Time
		}
		return res.Waveform[i].Gate < res.Waveform[j].Gate
	})
	h.gauge("dist_reconnects", float64(reconnects))
	return res, nil
}

// session is one attempt's live state: per-shard links, chaos, verdicts.
type session struct {
	h       *hub
	attempt int
	links   []*shardLink

	resCh  chan struct{} // one tick per shard result
	failed chan struct{} // closed on the first fatal verdict
	err    error
	once   sync.Once
	torn   atomic.Bool

	// hubDataBytes counts FBatch payload relayed through the hub — the
	// data-plane share of hub traffic. Under a healthy mesh it stays 0:
	// every batch takes the direct route.
	hubDataBytes atomic.Uint64
	// gvtRounds counts explicit GVT rounds driven over the wire; the
	// heartbeat piggyback exists to keep this low in steady state.
	gvtRounds atomic.Uint64

	// meshMu guards the mesh address table while workers announce their
	// listeners; when the last address lands the table is broadcast once.
	meshMu    sync.Mutex
	meshAddrs []string
	meshSeen  int
	meshSent  bool
}

// shardLink is one worker's connection, process, chaos state, and
// latest liveness sample.
type shardLink struct {
	ep *wire.Endpoint

	// pmu guards proc: the spawner's worker can connect and trigger a
	// chaos kill before runAttempt stores the Proc handle.
	pmu  sync.Mutex
	proc Proc

	result  atomic.Pointer[shardResult]
	reports chan wire.GVTReport

	hbEvents atomic.Uint64
	hbIdle   atomic.Bool
	// hbSent/hbRecv are the latest piggybacked cumulative wire counters;
	// the GVT driver seeds its two-observation Mattern check from them.
	hbSent atomic.Uint64
	hbRecv atomic.Uint64

	// frames counts inbound frames relayed/handled from this shard;
	// faults lists the plan entries scoped to this shard and attempt, in
	// plan order, each fired at most once. Both are touched only on this
	// link's read goroutine.
	frames uint64
	faults []netfault.Fault
	fired  []bool
}

func (l *shardLink) setProc(p Proc) {
	l.pmu.Lock()
	l.proc = p
	l.pmu.Unlock()
}

func (l *shardLink) getProc() Proc {
	l.pmu.Lock()
	defer l.pmu.Unlock()
	return l.proc
}

func newSession(h *hub, attempt int) *session {
	sess := &session{
		h:         h,
		attempt:   attempt,
		links:     make([]*shardLink, h.opts.Shards),
		resCh:     make(chan struct{}, h.opts.Shards),
		failed:    make(chan struct{}),
		meshAddrs: make([]string, h.opts.Shards),
	}
	for s := range sess.links {
		link := &shardLink{reports: make(chan wire.GVTReport, 16)}
		for _, f := range h.opts.Plan {
			if f.Shard == s && (f.Attempt == -1 || f.Attempt == attempt) {
				link.faults = append(link.faults, f)
			}
		}
		link.fired = make([]bool, len(link.faults))
		shard := s
		link.ep = wire.New(wire.Config{
			Shard:   shard,
			Handler: func(kind byte, payload []byte) { sess.handle(shard, kind, payload) },
		})
		sess.links[s] = link
	}
	return sess
}

// fail records the attempt's first fatal verdict.
func (s *session) fail(err error) {
	s.once.Do(func() {
		s.err = err
		close(s.failed)
	})
}

// handle processes one frame from shard src on that link's read
// goroutine: fire due chaos faults, then relay or consume the frame.
func (s *session) handle(src int, kind byte, payload []byte) {
	link := s.links[src]
	link.frames++
	for i, f := range link.faults {
		if link.fired[i] || link.frames <= f.AfterFrames {
			continue
		}
		link.fired[i] = true
		s.fire(link, f)
	}
	switch kind {
	case wire.FBatch:
		dst, err := wire.BatchDst(payload)
		if err != nil {
			s.fail(fmt.Errorf("dist: shard %d sent a malformed batch: %w", src, err))
			return
		}
		if int(dst) < 0 || int(dst) >= len(s.h.shardOf) {
			s.fail(fmt.Errorf("dist: shard %d batched to unknown lp %d", src, dst))
			return
		}
		s.hubDataBytes.Add(uint64(len(payload)))
		s.links[s.h.shardOf[dst]].ep.Send(wire.FBatch, payload)
	case wire.FMeshAddr:
		ma, err := wire.DecodeMeshAddr(payload)
		if err != nil || ma.Shard != src {
			s.fail(fmt.Errorf("dist: shard %d sent a malformed mesh address", src))
			return
		}
		s.meshMu.Lock()
		if s.meshAddrs[src] == "" {
			s.meshAddrs[src] = ma.Addr
			s.meshSeen++
		}
		// Broadcast the routing table exactly once, when the last shard's
		// listener address lands. Workers block in mesh setup until it
		// arrives.
		if s.meshSeen == len(s.links) && !s.meshSent {
			s.meshSent = true
			p := wire.AppendMeshTable(nil, wire.MeshTable{Addrs: s.meshAddrs})
			for _, l := range s.links {
				l.ep.Send(wire.FMeshTable, p)
			}
		}
		s.meshMu.Unlock()
	case wire.FHeartbeat:
		hb, err := wire.DecodeHeartbeat(payload)
		if err != nil {
			return
		}
		link.hbEvents.Store(hb.Events)
		link.hbIdle.Store(hb.Idle)
		link.hbSent.Store(hb.Sent)
		link.hbRecv.Store(hb.Recv)
	case wire.FGVTReport:
		rep, err := wire.DecodeGVTReport(payload)
		if err != nil {
			return
		}
		select {
		case link.reports <- rep:
		default:
		}
	case wire.FResult:
		var sr shardResult
		if err := json.Unmarshal(payload, &sr); err != nil {
			s.fail(fmt.Errorf("dist: shard %d result: %w", src, err))
			return
		}
		link.result.Store(&sr)
		s.resCh <- struct{}{}
	case wire.FError:
		var we wireError
		if err := json.Unmarshal(payload, &we); err != nil {
			s.fail(fmt.Errorf("dist: shard %d error frame: %w", src, err))
			return
		}
		s.fail(we.toSimError())
	}
}

// fire applies one chaos fault to a shard's link. Stalls sleep on the
// read goroutine (delaying, never reordering, subsequent relays);
// everything else maps to a wire- or process-level primitive.
// Mesh-targeted faults (Peer > 0) are forwarded to the worker as a
// sequenced FChaos order over the control link, and the worker applies
// the primitive to the targeted peer endpoint itself — the hub cannot
// reach a mesh link directly.
func (s *session) fire(link *shardLink, f netfault.Fault) {
	if f.Peer > 0 && f.Op != netfault.OpKill && s.h.opts.Mesh {
		link.ep.Send(wire.FChaos, wire.AppendChaos(nil, wire.Chaos{
			Op: uint8(f.Op), Peer: int32(f.Peer - 1), Ms: f.Ms,
		}))
		return
	}
	d := time.Duration(f.Ms) * time.Millisecond
	switch f.Op {
	case netfault.OpStall:
		time.Sleep(d)
	case netfault.OpDropConn:
		link.ep.ChaosDropConn()
	case netfault.OpDup:
		link.ep.ChaosDup()
	case netfault.OpPartition:
		link.ep.FreezeOut(d)
		link.ep.FreezeIn(d)
	case netfault.OpKill:
		if p := link.getProc(); p != nil {
			p.Kill()
		}
	}
}

// progress sums the fleet's heartbeat-reported work; idle is true only
// when every shard's latest beacon reported all local LPs parked.
func (s *session) progress() (events uint64, idle bool) {
	idle = true
	for _, link := range s.links {
		events += link.hbEvents.Load()
		if !link.hbIdle.Load() {
			idle = false
		}
	}
	return events, idle
}

// monitor watches every result-less shard for death and silence, and
// classifies a loss into a structured shard error: a dead process or
// dead link is a crash; a connected link with no inbound traffic beyond
// the heartbeat timeout is a hang or partition. The verdict carries the
// per-shard transport scoreboard, the same shape the in-process
// watchdog reports.
func (s *session) monitor() {
	period := s.h.opts.HeartbeatTimeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.failed:
			return
		case <-t.C:
		}
		if s.torn.Load() {
			return
		}
		for shard, link := range s.links {
			if link.result.Load() != nil {
				continue
			}
			if p := link.getProc(); p != nil {
				select {
				case <-p.Done():
					s.fail(s.verdict(shard, supervise.KindInternal,
						fmt.Errorf("dist: shard %d worker died before its result: %v", shard, p.Err())))
					return
				default:
				}
			}
			if link.ep.LastRecvAge() > s.h.opts.HeartbeatTimeout {
				kind := supervise.KindHang
				cause := fmt.Errorf("dist: shard %d silent for over %v (hang or partition)",
					shard, s.h.opts.HeartbeatTimeout)
				if !link.ep.Connected() {
					kind = supervise.KindInternal
					cause = fmt.Errorf("dist: shard %d link down for over %v (crash)",
						shard, s.h.opts.HeartbeatTimeout)
				}
				s.fail(s.verdict(shard, kind, cause))
				return
			}
		}
	}
}

// verdict builds the structured shard-loss error for one lost shard,
// annotated with the whole fleet's transport state.
func (s *session) verdict(shard int, kind supervise.Kind, cause error) error {
	states := make([]supervise.TransportState, len(s.links))
	for i, link := range s.links {
		states[i] = link.ep.State()
	}
	return &supervise.SimError{
		Engine: "dist", LP: shard, Phase: "transport",
		Kind: kind, Cause: fmt.Errorf("%w; fleet transport: %+v", cause, states),
	}
}

// gvtDriver is the hub half of distributed GVT for the optimistic
// engines. Cycles are paced like the single-process coordinator: start
// once the fleet has processed roughly sixteen events per gate since
// the last cycle, immediately when every shard reports idle, or at the
// wall-clock ceiling. Within a cycle, rounds repeat until two
// consecutive rounds are globally quiet with identical, matching
// cumulative wire counters (Mattern-style message counting made stable
// under relay latency); the GVT is then the minimum local minimum of
// the final round.
func (s *session) gvtDriver() {
	threshold := uint64(16 * s.h.c.NumGates())
	if threshold < 100_000 {
		threshold = 100_000
	}
	var round uint32
	var lastEvents uint64
	for {
		deadline := time.Now().Add(s.h.opts.GVTInterval)
		for {
			if s.dead() {
				return
			}
			ev, idle := s.progress()
			if idle || ev-lastEvents >= threshold || !time.Now().Before(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}

		var gvt uint64
		var prev *gvtTotals
		// Steady-state shortcut: when every shard's latest heartbeat
		// reports idle and the piggybacked cumulative wire counters
		// balance, that beacon set is already one quiet Mattern
		// observation. Seeding it as the previous round lets a single
		// explicit round — quiet, with the same matching totals — conclude
		// the cycle: equal monotone counters at two observations mean no
		// message moved in between, so nothing is in transit. The fallback
		// (activity between beacon and round, or stale beacons) is simply
		// the old two-round conversation.
		if hb, ok := s.hbTotals(); ok {
			prev = &hb
		}
		for {
			round++
			s.gvtRounds.Add(1)
			for _, link := range s.links {
				link.ep.Send(wire.FGVTStart, wire.AppendGVTStart(nil, wire.GVTStart{Round: round}))
			}
			tot, ok := s.collect(round)
			if !ok {
				return
			}
			if tot.quiet && tot.sent == tot.recv &&
				prev != nil && prev.quiet && prev.sent == tot.sent && prev.recv == tot.recv {
				gvt = tot.min
				break
			}
			prev = &tot
		}
		lastEvents, _ = s.progress()

		terminate := gvt > s.h.opts.Until
		for _, link := range s.links {
			link.ep.Send(wire.FGVTDone, wire.AppendGVTDone(nil, wire.GVTDone{GVT: gvt, Terminate: terminate}))
		}
		if terminate {
			return
		}
	}
}

// hbTotals folds the fleet's latest piggybacked heartbeat counters into
// a candidate quiet observation: ok only when every shard's beacon
// reports idle and the cumulative send/receive sums balance.
func (s *session) hbTotals() (gvtTotals, bool) {
	tot := gvtTotals{quiet: true, min: ^uint64(0)}
	for _, link := range s.links {
		if !link.hbIdle.Load() {
			return tot, false
		}
		tot.sent += link.hbSent.Load()
		tot.recv += link.hbRecv.Load()
	}
	return tot, tot.sent == tot.recv
}

// gvtTotals folds one round's per-shard reports.
type gvtTotals struct {
	quiet      bool
	min        uint64
	sent, recv uint64
}

// collect gathers one report per shard for the given round, discarding
// stale rounds; it aborts (ok=false) when the session dies.
func (s *session) collect(round uint32) (gvtTotals, bool) {
	tot := gvtTotals{quiet: true, min: ^uint64(0)}
	for _, link := range s.links {
		for {
			select {
			case rep := <-link.reports:
				if rep.Round != round {
					continue
				}
				if !rep.Quiet {
					tot.quiet = false
				}
				if rep.LocalMin < tot.min {
					tot.min = rep.LocalMin
				}
				tot.sent += rep.Sent
				tot.recv += rep.Recv
			case <-s.failed:
				return tot, false
			}
			break
		}
	}
	return tot, true
}

// dead reports whether the session has failed or been torn down.
func (s *session) dead() bool {
	if s.torn.Load() {
		return true
	}
	select {
	case <-s.failed:
		return true
	default:
		return false
	}
}

// teardown dismantles the fleet: on a failed attempt every worker is
// killed outright; on a clean one they have already been sent FDone and
// get a grace period to exit before the kill. Endpoints close last so
// queued frames (FDone, retransmits) can still drain.
func (s *session) teardown() {
	s.torn.Store(true)
	clean := true
	select {
	case <-s.failed:
		clean = false
	default:
	}
	if !clean {
		for _, link := range s.links {
			if p := link.getProc(); p != nil {
				p.Kill()
			}
		}
	}
	deadline := time.Now().Add(teardownGrace)
	for _, link := range s.links {
		p := link.getProc()
		if p == nil {
			continue
		}
		select {
		case <-p.Done():
		case <-time.After(time.Until(deadline)):
			p.Kill()
			select {
			case <-p.Done():
			case <-time.After(teardownGrace):
			}
		}
	}
	for _, link := range s.links {
		link.ep.Close()
	}
}
