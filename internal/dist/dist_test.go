package dist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/seq"
	"repro/internal/simtest/chaos"
	"repro/internal/simtest/chaos/netfault"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// testJob is the shared workload spec: small enough to keep the fleet
// tests fast, large enough that every shard owns real work.
func testJob() *Job {
	return &Job{
		Circuit: "ripple8", Seed: 1,
		Vectors: 15, Activity: 0.5, Period: 40,
		Partition: "fm",
	}
}

// golden runs the sequential reference over the test workload and
// returns the circuit, stimulus, horizon, and reference result.
func golden(t *testing.T) (*circuit.Circuit, *vectors.Stimulus, uint64, *seq.Result) {
	t.Helper()
	j := testJob()
	c, err := j.BuildCircuit()
	if err != nil {
		t.Fatal(err)
	}
	stim, err := j.BuildStimulus(c)
	if err != nil {
		t.Fatal(err)
	}
	until := core.Horizon(c, stim)
	ref, err := seq.Run(c, stim, until, seq.Config{System: logic.NineValued})
	if err != nil {
		t.Fatal(err)
	}
	return c, stim, uint64(until), ref
}

// baseOpts builds distributed Options over the test workload.
func baseOpts(t *testing.T, engine string, shards int, until uint64) Options {
	t.Helper()
	j := testJob()
	return Options{
		Shards:   shards,
		Engine:   engine,
		Circuit:  j.Circuit,
		Seed:     j.Seed,
		Vectors:  j.Vectors,
		Activity: j.Activity,
		Period:   j.Period,
		Until:    until,
		LPs:      2 * shards,
		WorkDir:  t.TempDir(),
	}
}

// checkMatchesGolden requires the distributed result to agree with the
// sequential reference on every final value and every waveform sample —
// the bit-exactness contract recovery and chaos must preserve.
func checkMatchesGolden(t *testing.T, res *Result, ref *seq.Result) {
	t.Helper()
	if !reflect.DeepEqual(res.Values, ref.Values) {
		t.Errorf("final values diverge from the sequential reference")
	}
	if !reflect.DeepEqual(res.Waveform, ref.Waveform) {
		t.Errorf("waveform diverges: %d samples vs %d reference",
			len(res.Waveform), len(ref.Waveform))
	}
}

// TestDistMatchesSequential: every distributable engine, sharded two
// ways over real loopback sockets, must reproduce the sequential
// trajectory exactly.
func TestDistMatchesSequential(t *testing.T) {
	_, _, until, ref := golden(t)
	for _, engine := range []string{"cmb", "cmb-demand", "timewarp", "timewarp-lazy"} {
		t.Run(engine, func(t *testing.T) {
			res, err := Run(baseOpts(t, engine, 2, until))
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalMode != "dist" || res.Attempts != 1 || res.Recoveries != 0 {
				t.Errorf("unexpected run shape: mode=%s attempts=%d recoveries=%d",
					res.FinalMode, res.Attempts, res.Recoveries)
			}
			checkMatchesGolden(t, res, ref)
		})
	}
}

// TestDistUnixNetwork: the same contract over a unix-domain socket in
// the work directory.
func TestDistUnixNetwork(t *testing.T) {
	_, _, until, ref := golden(t)
	opts := baseOpts(t, "timewarp", 3, until)
	opts.Network = "unix"
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchesGolden(t, res, ref)
}

// TestDistChaosWithoutKills: a seeded plan of stalls, connection drops,
// duplicates, and partitions — everything the reliable layer must
// absorb without a fleet restart. One attempt, exact waveform.
func TestDistChaosWithoutKills(t *testing.T) {
	_, _, until, ref := golden(t)
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			opts := baseOpts(t, engine, 2, until)
			opts.Plan = netfault.NewPlan(42, opts.Shards, 8, false)
			opts.HeartbeatTimeout = 2 * time.Second
			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Attempts != 1 {
				t.Errorf("survivable chaos forced %d attempts", res.Attempts)
			}
			checkMatchesGolden(t, res, ref)
		})
	}
}

// TestDistKillRecovers: a planned worker kill on the first attempt with
// checkpointing armed. The hub must classify the loss, merge the newest
// complete boundary, relaunch the fleet, and still produce the exact
// sequential waveform.
func TestDistKillRecovers(t *testing.T) {
	_, _, until, ref := golden(t)
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			opts := baseOpts(t, engine, 2, until)
			opts.CheckpointEvery = 200
			opts.Restarts = 2
			opts.Plan = netfault.Plan{
				{Op: netfault.OpKill, Shard: 0, AfterFrames: 5, Attempt: 0},
			}
			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Recoveries < 1 || res.Attempts < 2 {
				t.Errorf("kill did not force a recovery: attempts=%d recoveries=%d",
					res.Attempts, res.Recoveries)
			}
			if res.FinalMode != "dist" {
				t.Errorf("recovered run degraded to %s", res.FinalMode)
			}
			checkMatchesGolden(t, res, ref)
		})
	}
}

// TestDistShardLossError: a kill on every attempt with no fallback must
// exhaust the restart budget and surface a structured shard-loss error.
func TestDistShardLossError(t *testing.T) {
	_, _, until, _ := golden(t)
	opts := baseOpts(t, "cmb", 2, until)
	opts.CheckpointEvery = 200
	opts.Restarts = 1
	opts.Plan = netfault.Plan{
		{Op: netfault.OpKill, Shard: 1, AfterFrames: 3, Attempt: -1},
	}
	_, err := Run(opts)
	var se *core.SimError
	if !errors.As(err, &se) {
		t.Fatalf("want a SimError, got %v", err)
	}
	if se.Kind != core.KindShardLoss {
		t.Errorf("kind = %v, want shard loss; error: %v", se.Kind, se)
	}
}

// TestDistShardLossFallback: the same unsurvivable plan with Fallback
// set must walk the degradation ladder (dist -> sync -> ...) and still
// hand back the exact sequential result.
func TestDistShardLossFallback(t *testing.T) {
	_, _, until, ref := golden(t)
	opts := baseOpts(t, "cmb", 2, until)
	opts.CheckpointEvery = 200
	opts.Restarts = 0
	opts.Fallback = true
	opts.Plan = netfault.Plan{
		{Op: netfault.OpKill, Shard: 0, AfterFrames: 3, Attempt: -1},
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMode == "dist" || res.Fallbacks < 1 {
		t.Errorf("expected a degraded run, got mode=%s fallbacks=%d",
			res.FinalMode, res.Fallbacks)
	}
	if res.Degraded == "" {
		t.Error("degraded result does not carry the shard-loss cause")
	}
	checkMatchesGolden(t, res, ref)
}

// shadowStates captures real sequential-shadow snapshots at every
// multiple of `every` for the test workload.
func shadowStates(t *testing.T, every uint64) []*ckpt.State {
	t.Helper()
	j := testJob()
	c, _ := j.BuildCircuit()
	stim, _ := j.BuildStimulus(c)
	var states []*ckpt.State
	_, err := seq.Run(c, stim, core.Horizon(c, stim), seq.Config{
		System:          logic.NineValued,
		CheckpointEvery: circuit.Tick(every),
		Checkpoint: func(st *ckpt.State) error {
			states = append(states, st)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) < 2 {
		t.Fatalf("workload too small: %d boundaries", len(states))
	}
	return states
}

// TestLatestBoundarySkipsCorrupt: the merge must fall back to the next
// older boundary when any shard file of the newest one is truncated,
// and report a fresh start (nil, no error) when every boundary is
// unusable — a bad snapshot must never wedge recovery.
func TestLatestBoundarySkipsCorrupt(t *testing.T) {
	j := testJob()
	c, _ := j.BuildCircuit()
	j.Shards = 2
	j.LPs = 4
	part, shardOf, err := j.BuildPartition(c)
	if err != nil {
		t.Fatal(err)
	}
	gateShard := make([]int, c.NumGates())
	for g := range gateShard {
		gateShard[g] = shardOf[part.Assign[g]]
	}

	states := shadowStates(t, 200)
	dir := t.TempDir()
	for _, st := range states {
		for s := 0; s < 2; s++ {
			owned := ownedGates(part.Assign, shardOf, s, c.NumGates())
			if err := ckpt.WriteFile(filepath.Join(dir, shardCkptName(s, st.Time)),
				restrictToShard(st, owned)); err != nil {
				t.Fatal(err)
			}
		}
	}

	merged, at, err := latestBoundary(dir, 2, gateShard)
	if err != nil || merged == nil {
		t.Fatalf("clean directory: merged=%v err=%v", merged, err)
	}
	newest := states[len(states)-1].Time
	if at != newest {
		t.Fatalf("picked boundary %d, want newest %d", at, newest)
	}

	// Truncate one shard file of the newest boundary: the next older
	// boundary must be chosen instead.
	if err := os.WriteFile(filepath.Join(dir, shardCkptName(1, newest)), []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	merged, at, err = latestBoundary(dir, 2, gateShard)
	if err != nil || merged == nil {
		t.Fatalf("after corruption: merged=%v err=%v", merged, err)
	}
	if at != states[len(states)-2].Time {
		t.Errorf("picked boundary %d, want fallback %d", at, states[len(states)-2].Time)
	}
	if merged.Verify() != nil {
		t.Error("merged snapshot fails its own checksum")
	}

	// Corrupt every boundary: recovery must report a fresh start.
	for _, st := range states {
		for s := 0; s < 2; s++ {
			if err := os.Truncate(filepath.Join(dir, shardCkptName(s, st.Time)), 3); err != nil {
				t.Fatal(err)
			}
		}
	}
	merged, _, err = latestBoundary(dir, 2, gateShard)
	if err != nil {
		t.Fatalf("all-corrupt directory errored: %v", err)
	}
	if merged != nil {
		t.Error("all-corrupt directory still produced a boundary")
	}

	// A directory that never existed is also a fresh start.
	merged, _, err = latestBoundary(filepath.Join(dir, "nope"), 2, gateShard)
	if err != nil || merged != nil {
		t.Errorf("missing directory: merged=%v err=%v", merged, err)
	}
}

// TestMergeRoundTrip: restricting a real shadow snapshot to each shard
// and merging the restrictions back must reproduce the full cut exactly.
func TestMergeRoundTrip(t *testing.T) {
	j := testJob()
	c, _ := j.BuildCircuit()
	j.Shards = 3
	j.LPs = 6
	part, shardOf, err := j.BuildPartition(c)
	if err != nil {
		t.Fatal(err)
	}
	gateShard := make([]int, c.NumGates())
	for g := range gateShard {
		gateShard[g] = shardOf[part.Assign[g]]
	}
	st := shadowStates(t, 200)[1]

	states := make([]*ckpt.State, 3)
	for s := 0; s < 3; s++ {
		states[s] = restrictToShard(st, ownedGates(part.Assign, shardOf, s, c.NumGates()))
	}
	merged, err := mergeShardStates(states, gateShard)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Vals, st.Vals) ||
		!reflect.DeepEqual(merged.PrevClk, st.PrevClk) ||
		!reflect.DeepEqual(merged.Projected, st.Projected) {
		t.Error("merged value planes differ from the original cut")
	}
	// The merge re-sorts canonically by (time, gate); compare against a
	// copy of the original in that order.
	wantEvents := append([]ckpt.Event(nil), st.Events...)
	sort.SliceStable(wantEvents, func(i, j int) bool {
		if wantEvents[i].Time != wantEvents[j].Time {
			return wantEvents[i].Time < wantEvents[j].Time
		}
		return wantEvents[i].Gate < wantEvents[j].Gate
	})
	if !reflect.DeepEqual(merged.Events, wantEvents) {
		t.Errorf("merged events differ: %d vs %d", len(merged.Events), len(wantEvents))
	}
	if !reflect.DeepEqual(merged.Waveform, st.Waveform) {
		t.Errorf("merged waveform differs: %d vs %d samples", len(merged.Waveform), len(st.Waveform))
	}
	if merged.Verify() != nil {
		t.Error("merged snapshot fails its checksum")
	}
}

// TestDecodeJobRejectsNonDistributableEngine: the hybrid and recovery
// variants need global in-process coordination; a job naming one must
// be rejected at decode time, before any simulation starts.
func TestDecodeJobRejectsNonDistributableEngine(t *testing.T) {
	for _, engine := range []string{"seq", "sync", "hybrid", "cmb-detect", ""} {
		j := testJob()
		j.Engine = engine
		j.Shards, j.LPs = 2, 4
		p, err := j.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeJob(p); err == nil {
			t.Errorf("engine %q accepted", engine)
		}
	}
}

// TestDistSoak is the env-gated chaos soak (DIST_SOAK=1): seeded
// netfault plans with kills over both protocol families, every run
// checked bit-exact against the sequential reference. A failing seed
// ddmin-shrinks to a minimal fault subset and prints a repro line.
func TestDistSoak(t *testing.T) {
	if os.Getenv("DIST_SOAK") == "" {
		t.Skip("set DIST_SOAK=1 to run the distributed chaos soak")
	}
	seeds := 6
	if n, err := strconv.Atoi(os.Getenv("DIST_SOAK_SEEDS")); err == nil && n > 0 {
		seeds = n
	}
	_, _, until, ref := golden(t)

	attempt := func(t *testing.T, engine string, mesh bool, plan netfault.Plan) error {
		opts := baseOpts(t, engine, 3, until)
		opts.CheckpointEvery = 200
		opts.Restarts = 3
		opts.HeartbeatTimeout = 2 * time.Second
		opts.Plan = plan
		// The mesh arm soaks the direct data plane together with
		// incremental checkpoints, so every recovery replays a delta
		// chain; kills land faster with a quick beacon because the mesh
		// hub link carries control frames only.
		if mesh {
			opts.Mesh = true
			opts.CkptDelta = true
			opts.HeartbeatEvery = time.Millisecond
		}
		res, err := Run(opts)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Waveform, trace.Waveform(ref.Waveform)) {
			return fmt.Errorf("waveform diverged (%d vs %d samples)",
				len(res.Waveform), len(ref.Waveform))
		}
		if !reflect.DeepEqual(res.Values, ref.Values) {
			return fmt.Errorf("final values diverged")
		}
		return nil
	}

	for _, engine := range []string{"cmb", "timewarp"} {
		for _, mesh := range []bool{false, true} {
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				name := fmt.Sprintf("%s/seed%d", engine, seed)
				plan := netfault.NewPlan(seed, 3, 10, true)
				if mesh {
					name = fmt.Sprintf("%s/mesh/seed%d", engine, seed)
					plan = netfault.NewMeshPlan(seed, 3, 10, true)
				}
				t.Run(name, func(t *testing.T) {
					err := attempt(t, engine, mesh, plan)
					if err == nil {
						return
					}
					// Shrink to a minimal failing fault subset for the repro.
					min, failure := chaos.ShrinkIndices(len(plan), err.Error(), func(idx []int) (bool, string) {
						if e := attempt(t, engine, mesh, plan.Subset(idx)); e != nil {
							return true, e.Error()
						}
						return false, ""
					}, 25)
					t.Errorf("mesh=%v seed %d failed: %s\nminimal fault subset %v of plan:\n%v",
						mesh, seed, failure, min, plan.Subset(min))
				})
			}
		}
	}
}
