package dist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/logic"
	"repro/internal/sim/ckpt"
)

// Shard checkpointing. Every worker runs the sequential shadow over the
// whole circuit (the trajectory is deterministic, so each shard's copy
// of the shadow computes the same cut) but persists only its own
// restriction of each boundary snapshot: value planes zeroed outside
// owned gates, pending events and waveform samples filtered to owned
// gates. The waveform restriction is absolute — all own-gate samples
// from t=0 through the boundary, including any booted prefix — so a
// boundary file's content depends only on (workload, boundary, shard),
// never on which attempt wrote it. That makes stale files from
// torn-down attempts indistinguishable from fresh ones, and lets the
// hub merge any boundary that is complete across shards: plane
// stitching by gate owner, event and sample union, one checksum reseal.
//
// A truncated or bit-flipped shard file surfaces as ckpt.ErrCorrupt at
// read time; the merge skips that boundary and falls back to the next
// older one, down to a fresh start when nothing survives.

// shardCkptName names shard s's full snapshot at boundary t.
func shardCkptName(shard int, t uint64) string {
	return fmt.Sprintf("shard-%03d-ckpt-%010d.json", shard, t)
}

// shardDeltaName names shard s's incremental record at boundary t.
func shardDeltaName(shard int, t uint64) string {
	return fmt.Sprintf("shard-%03d-delta-%010d.json", shard, t)
}

// fileSize is best-effort on-disk size accounting for the checkpoint
// volume gauges (0 when unreadable — never an error path).
func fileSize(path string) uint64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return uint64(fi.Size())
}

// restrictToShard projects a full shadow snapshot onto one shard: owned
// planes kept (others zeroed), events and waveform filtered to owned
// gates, checksum resealed.
func restrictToShard(st *ckpt.State, owned []bool) *ckpt.State {
	out := &ckpt.State{
		Version: st.Version, Fingerprint: st.Fingerprint,
		Time: st.Time, Until: st.Until, System: st.System, EndTime: st.EndTime,
		Vals:      make([]logic.Value, len(st.Vals)),
		PrevClk:   make([]logic.Value, len(st.PrevClk)),
		Projected: make([]logic.Value, len(st.Projected)),
	}
	for g, own := range owned {
		if !own {
			continue
		}
		out.Vals[g] = st.Vals[g]
		out.PrevClk[g] = st.PrevClk[g]
		out.Projected[g] = st.Projected[g]
	}
	for _, ev := range st.Events {
		if owned[ev.Gate] {
			out.Events = append(out.Events, ev)
		}
	}
	for _, sm := range st.Waveform {
		if owned[sm.Gate] {
			out.Waveform = append(out.Waveform, sm)
		}
	}
	out.Seal()
	return out
}

// mergeShardStates stitches per-shard restrictions of one boundary back
// into a full consistent cut: planes by gate owner, events and waveform
// unioned and canonically sorted.
func mergeShardStates(states []*ckpt.State, gateShard []int) (*ckpt.State, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("dist: merge of zero shard states")
	}
	base := states[0]
	n := len(base.Vals)
	merged := &ckpt.State{
		Version: base.Version, Fingerprint: base.Fingerprint,
		Time: base.Time, Until: base.Until, System: base.System,
		Vals:      make([]logic.Value, n),
		PrevClk:   make([]logic.Value, n),
		Projected: make([]logic.Value, n),
	}
	for s, st := range states {
		if st.Time != base.Time || st.Fingerprint != base.Fingerprint || st.System != base.System {
			return nil, fmt.Errorf("dist: shard %d snapshot disagrees with shard 0 (t=%d vs %d, fp %s vs %s)",
				s, st.Time, base.Time, st.Fingerprint, base.Fingerprint)
		}
		if len(st.Vals) != n {
			return nil, fmt.Errorf("dist: shard %d snapshot sized %d, want %d", s, len(st.Vals), n)
		}
		if st.EndTime > merged.EndTime {
			merged.EndTime = st.EndTime
		}
		merged.Events = append(merged.Events, st.Events...)
		merged.Waveform = append(merged.Waveform, st.Waveform...)
	}
	for g := 0; g < n; g++ {
		st := states[gateShard[g]]
		merged.Vals[g] = st.Vals[g]
		merged.PrevClk[g] = st.PrevClk[g]
		merged.Projected[g] = st.Projected[g]
	}
	sort.Slice(merged.Events, func(i, j int) bool {
		if merged.Events[i].Time != merged.Events[j].Time {
			return merged.Events[i].Time < merged.Events[j].Time
		}
		return merged.Events[i].Gate < merged.Events[j].Gate
	})
	// Canonical waveform order (time, then gate) matches trace.Merge, so
	// a spliced prefix is byte-identical to an uninterrupted run's.
	sort.Slice(merged.Waveform, func(i, j int) bool {
		if merged.Waveform[i].Time != merged.Waveform[j].Time {
			return merged.Waveform[i].Time < merged.Waveform[j].Time
		}
		return merged.Waveform[i].Gate < merged.Waveform[j].Gate
	})
	merged.Seal()
	return merged, nil
}

// latestBoundary scans the checkpoint directory for the newest boundary
// reconstructible for every shard — from a full snapshot directly, or
// by replaying a fingerprint-chained delta sequence down to one — and
// returns the merged cut. Boundaries with missing, truncated, or
// bit-flipped files (ckpt.ErrCorrupt), or with a broken delta chain,
// are skipped in favor of the next older one; since the first boundary
// of every attempt is a full snapshot, a broken chain degrades to the
// last full snapshot, never to a wrong state. A nil state (no error)
// means no boundary survives and recovery must restart from t=0.
func latestBoundary(dir string, shards int, gateShard []int) (*ckpt.State, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	// Index which boundaries each shard has, and as what kind of record.
	fulls := make([]map[uint64]bool, shards)
	deltas := make([]map[uint64]bool, shards)
	for s := range fulls {
		fulls[s] = map[uint64]bool{}
		deltas[s] = map[uint64]bool{}
	}
	seen := map[uint64]int{}
	for _, e := range entries {
		var shard int
		var t uint64
		if _, err := fmt.Sscanf(e.Name(), "shard-%d-ckpt-%d.json", &shard, &t); err == nil {
			if shard >= 0 && shard < shards && !fulls[shard][t] {
				fulls[shard][t] = true
				if !deltas[shard][t] {
					seen[t]++
				}
			}
			continue
		}
		if _, err := fmt.Sscanf(e.Name(), "shard-%d-delta-%d.json", &shard, &t); err == nil {
			if shard >= 0 && shard < shards && !deltas[shard][t] {
				deltas[shard][t] = true
				if !fulls[shard][t] {
					seen[t]++
				}
			}
		}
	}
	times := make([]uint64, 0, len(seen))
	for t, cnt := range seen {
		if cnt == shards {
			times = append(times, t)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] > times[j] })

	for _, t := range times {
		states := make([]*ckpt.State, shards)
		ok := true
		for s := 0; s < shards; s++ {
			st, err := reconstructShard(dir, s, t, fulls[s], deltas[s])
			if err != nil {
				// Corrupt, unreadable, or chain-broken: this boundary is
				// unusable, try the next older one. Anything else (version
				// skew) also falls back — a bad snapshot must never wedge
				// recovery.
				ok = false
				break
			}
			states[s] = st
		}
		if !ok {
			continue
		}
		merged, err := mergeShardStates(states, gateShard)
		if err != nil {
			continue
		}
		return merged, t, nil
	}
	return nil, 0, nil
}

// reconstructShard rebuilds shard s's snapshot at boundary t: a full
// file directly, otherwise the delta at t replayed onto the recursively
// reconstructed base it names. Apply verifies every chain link (the
// base's checksum must match the delta's recorded BaseSum), so a
// mid-chain corruption surfaces as ckpt.ErrCorrupt here rather than as
// a silently wrong boot state. BaseTime must strictly decrease, so a
// corrupt record cannot send the walk into a cycle.
func reconstructShard(dir string, shard int, t uint64, fulls, deltas map[uint64]bool) (*ckpt.State, error) {
	if fulls[t] {
		return ckpt.ReadFile(filepath.Join(dir, shardCkptName(shard, t)))
	}
	if !deltas[t] {
		return nil, fmt.Errorf("%w: shard %d has no record at boundary %d", ckpt.ErrCorrupt, shard, t)
	}
	d, err := ckpt.ReadDeltaFile(filepath.Join(dir, shardDeltaName(shard, t)))
	if err != nil {
		return nil, err
	}
	if d.BaseTime >= t {
		return nil, fmt.Errorf("%w: shard %d delta at %d names non-decreasing base %d", ckpt.ErrCorrupt, shard, t, d.BaseTime)
	}
	base, err := reconstructShard(dir, shard, d.BaseTime, fulls, deltas)
	if err != nil {
		return nil, err
	}
	return d.Apply(base)
}

// prefixOf returns the boot state's waveform prefix as engine samples
// (empty for a fresh start).
func prefixOf(boot *ckpt.State) []wfSample {
	if boot == nil {
		return nil
	}
	out := make([]wfSample, len(boot.Waveform))
	for i, sm := range boot.Waveform {
		out[i] = wfSample{Time: sm.Time, Gate: sm.Gate, Value: sm.Value}
	}
	return out
}

// ownedGates derives the per-gate ownership mask of one shard from the
// partition assignment and the LP->shard map.
func ownedGates(assign []int, shardOf []int, shard int, n int) []bool {
	owned := make([]bool, n)
	for g := 0; g < n; g++ {
		owned[g] = shardOf[assign[g]] == shard
	}
	return owned
}
