package dist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/logic"
	"repro/internal/sim/ckpt"
)

// Shard checkpointing. Every worker runs the sequential shadow over the
// whole circuit (the trajectory is deterministic, so each shard's copy
// of the shadow computes the same cut) but persists only its own
// restriction of each boundary snapshot: value planes zeroed outside
// owned gates, pending events and waveform samples filtered to owned
// gates. The waveform restriction is absolute — all own-gate samples
// from t=0 through the boundary, including any booted prefix — so a
// boundary file's content depends only on (workload, boundary, shard),
// never on which attempt wrote it. That makes stale files from
// torn-down attempts indistinguishable from fresh ones, and lets the
// hub merge any boundary that is complete across shards: plane
// stitching by gate owner, event and sample union, one checksum reseal.
//
// A truncated or bit-flipped shard file surfaces as ckpt.ErrCorrupt at
// read time; the merge skips that boundary and falls back to the next
// older one, down to a fresh start when nothing survives.

// shardCkptName names shard s's snapshot at boundary t.
func shardCkptName(shard int, t uint64) string {
	return fmt.Sprintf("shard-%03d-ckpt-%010d.json", shard, t)
}

// restrictToShard projects a full shadow snapshot onto one shard: owned
// planes kept (others zeroed), events and waveform filtered to owned
// gates, checksum resealed.
func restrictToShard(st *ckpt.State, owned []bool) *ckpt.State {
	out := &ckpt.State{
		Version: st.Version, Fingerprint: st.Fingerprint,
		Time: st.Time, Until: st.Until, System: st.System, EndTime: st.EndTime,
		Vals:      make([]logic.Value, len(st.Vals)),
		PrevClk:   make([]logic.Value, len(st.PrevClk)),
		Projected: make([]logic.Value, len(st.Projected)),
	}
	for g, own := range owned {
		if !own {
			continue
		}
		out.Vals[g] = st.Vals[g]
		out.PrevClk[g] = st.PrevClk[g]
		out.Projected[g] = st.Projected[g]
	}
	for _, ev := range st.Events {
		if owned[ev.Gate] {
			out.Events = append(out.Events, ev)
		}
	}
	for _, sm := range st.Waveform {
		if owned[sm.Gate] {
			out.Waveform = append(out.Waveform, sm)
		}
	}
	out.Seal()
	return out
}

// mergeShardStates stitches per-shard restrictions of one boundary back
// into a full consistent cut: planes by gate owner, events and waveform
// unioned and canonically sorted.
func mergeShardStates(states []*ckpt.State, gateShard []int) (*ckpt.State, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("dist: merge of zero shard states")
	}
	base := states[0]
	n := len(base.Vals)
	merged := &ckpt.State{
		Version: base.Version, Fingerprint: base.Fingerprint,
		Time: base.Time, Until: base.Until, System: base.System,
		Vals:      make([]logic.Value, n),
		PrevClk:   make([]logic.Value, n),
		Projected: make([]logic.Value, n),
	}
	for s, st := range states {
		if st.Time != base.Time || st.Fingerprint != base.Fingerprint || st.System != base.System {
			return nil, fmt.Errorf("dist: shard %d snapshot disagrees with shard 0 (t=%d vs %d, fp %s vs %s)",
				s, st.Time, base.Time, st.Fingerprint, base.Fingerprint)
		}
		if len(st.Vals) != n {
			return nil, fmt.Errorf("dist: shard %d snapshot sized %d, want %d", s, len(st.Vals), n)
		}
		if st.EndTime > merged.EndTime {
			merged.EndTime = st.EndTime
		}
		merged.Events = append(merged.Events, st.Events...)
		merged.Waveform = append(merged.Waveform, st.Waveform...)
	}
	for g := 0; g < n; g++ {
		st := states[gateShard[g]]
		merged.Vals[g] = st.Vals[g]
		merged.PrevClk[g] = st.PrevClk[g]
		merged.Projected[g] = st.Projected[g]
	}
	sort.Slice(merged.Events, func(i, j int) bool {
		if merged.Events[i].Time != merged.Events[j].Time {
			return merged.Events[i].Time < merged.Events[j].Time
		}
		return merged.Events[i].Gate < merged.Events[j].Gate
	})
	// Canonical waveform order (time, then gate) matches trace.Merge, so
	// a spliced prefix is byte-identical to an uninterrupted run's.
	sort.Slice(merged.Waveform, func(i, j int) bool {
		if merged.Waveform[i].Time != merged.Waveform[j].Time {
			return merged.Waveform[i].Time < merged.Waveform[j].Time
		}
		return merged.Waveform[i].Gate < merged.Waveform[j].Gate
	})
	merged.Seal()
	return merged, nil
}

// latestBoundary scans the checkpoint directory for the newest boundary
// with a valid snapshot from every shard, skipping boundaries with
// missing, truncated, or bit-flipped files (ckpt.ErrCorrupt), and
// returns the merged cut. A nil state (no error) means no complete
// boundary survives and recovery must restart from t=0.
func latestBoundary(dir string, shards int, gateShard []int) (*ckpt.State, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	// Collect boundary times that have a file for every shard.
	seen := map[uint64]int{}
	for _, e := range entries {
		var shard int
		var t uint64
		if _, err := fmt.Sscanf(e.Name(), "shard-%d-ckpt-%d.json", &shard, &t); err != nil {
			continue
		}
		if shard >= 0 && shard < shards {
			seen[t]++
		}
	}
	times := make([]uint64, 0, len(seen))
	for t, cnt := range seen {
		if cnt == shards {
			times = append(times, t)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] > times[j] })

	for _, t := range times {
		states := make([]*ckpt.State, shards)
		ok := true
		for s := 0; s < shards; s++ {
			st, err := ckpt.ReadFile(filepath.Join(dir, shardCkptName(s, t)))
			if err != nil {
				// Corrupt or unreadable: this boundary is unusable, try the
				// next older one. Anything else (version skew) also falls
				// back — a bad snapshot must never wedge recovery.
				ok = false
				break
			}
			states[s] = st
		}
		if !ok {
			continue
		}
		merged, err := mergeShardStates(states, gateShard)
		if err != nil {
			continue
		}
		return merged, t, nil
	}
	return nil, 0, nil
}

// prefixOf returns the boot state's waveform prefix as engine samples
// (empty for a fresh start).
func prefixOf(boot *ckpt.State) []wfSample {
	if boot == nil {
		return nil
	}
	out := make([]wfSample, len(boot.Waveform))
	for i, sm := range boot.Waveform {
		out[i] = wfSample{Time: sm.Time, Gate: sm.Gate, Value: sm.Value}
	}
	return out
}

// ownedGates derives the per-gate ownership mask of one shard from the
// partition assignment and the LP->shard map.
func ownedGates(assign []int, shardOf []int, shard int, n int) []bool {
	owned := make([]bool, n)
	for g := 0; g < n; g++ {
		owned[g] = shardOf[assign[g]] == shard
	}
	return owned
}
