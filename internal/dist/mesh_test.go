package dist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim/ckpt"
	"repro/internal/simtest/chaos"
	"repro/internal/simtest/chaos/netfault"
)

// TestDistMeshMatchesSequential: every distributable engine over the
// mesh data plane must reproduce the sequential trajectory exactly, and
// the hub must relay zero data-plane bytes — all FBatch traffic takes
// the direct shard-to-shard route (relay_hops 1, not 2).
func TestDistMeshMatchesSequential(t *testing.T) {
	_, _, until, ref := golden(t)
	for _, engine := range []string{"cmb", "cmb-demand", "timewarp", "timewarp-lazy"} {
		t.Run(engine, func(t *testing.T) {
			reg := metrics.NewRegistry(engine + "-dist")
			opts := baseOpts(t, engine, 3, until)
			opts.Mesh = true
			opts.Metrics = reg
			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			checkMatchesGolden(t, res, ref)
			g := reg.Report().Gauges
			if g["hub_bytes"] != 0 {
				t.Errorf("hub relayed %v data-plane bytes under mesh, want 0", g["hub_bytes"])
			}
			if g["mesh_bytes"] == 0 {
				t.Error("no bytes flowed over mesh links")
			}
			if g["relay_hops"] != 1 {
				t.Errorf("relay_hops = %v, want 1", g["relay_hops"])
			}
		})
	}
}

// TestDistMeshUnixNetwork: mesh listeners follow the hub's transport;
// over the unix network the peer sockets live in the work directory.
func TestDistMeshUnixNetwork(t *testing.T) {
	_, _, until, ref := golden(t)
	opts := baseOpts(t, "timewarp", 3, until)
	opts.Network = "unix"
	opts.Mesh = true
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchesGolden(t, res, ref)
}

// TestDistMeshVsHubRouting is the routing-equivalence property test:
// under seeded netfault plans (with mesh-link targets), the mesh and
// hub data planes must both produce the byte-identical sequential
// waveform, for each distributable protocol family. The issue's third
// family, hybrid, needs global in-process coordination and does not
// distribute at all (DecodeJob rejects it — see
// TestDecodeJobRejectsNonDistributableEngine), so the property is
// quantified over the distributable set: the conservative engines (cmb,
// cmb-demand) and the optimistic ones (timewarp, timewarp-lazy), with
// chaos exercised on one of each family. A failing seed ddmin-shrinks
// to a minimal fault subset via Plan.Subset and prints a repro line.
func TestDistMeshVsHubRouting(t *testing.T) {
	_, _, until, ref := golden(t)

	attempt := func(t *testing.T, engine string, mesh bool, plan netfault.Plan) error {
		opts := baseOpts(t, engine, 3, until)
		opts.Mesh = mesh
		opts.Plan = plan
		opts.HeartbeatTimeout = 2 * time.Second
		res, err := Run(opts)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(res.Values, ref.Values) {
			return fmt.Errorf("final values diverged")
		}
		if len(res.Waveform) != len(ref.Waveform) {
			return fmt.Errorf("waveform diverged (%d vs %d samples)", len(res.Waveform), len(ref.Waveform))
		}
		for i := range res.Waveform {
			if res.Waveform[i] != ref.Waveform[i] {
				return fmt.Errorf("waveform sample %d diverged: %+v vs %+v", i, res.Waveform[i], ref.Waveform[i])
			}
		}
		return nil
	}

	for _, engine := range []string{"cmb", "timewarp"} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", engine, seed), func(t *testing.T) {
				plan := netfault.NewMeshPlan(seed, 3, 8, false)
				for _, mesh := range []bool{false, true} {
					if err := attempt(t, engine, mesh, plan); err != nil {
						min, failure := chaos.ShrinkIndices(len(plan), err.Error(), func(idx []int) (bool, string) {
							if e := attempt(t, engine, mesh, plan.Subset(idx)); e != nil {
								return true, e.Error()
							}
							return false, ""
						}, 25)
						t.Errorf("mesh=%v seed %d failed: %s\nminimal fault subset %v of plan:\n%v",
							mesh, seed, failure, min, plan.Subset(min))
					}
				}
			})
		}
	}
}

// TestDistMeshKillRecovers: a planned worker kill under the mesh data
// plane with incremental checkpoints armed. Recovery must replay the
// delta chain into a correct merged cut, relaunch the mesh fleet, and
// still produce the exact sequential waveform — and the deltas must
// actually have been written and been smaller than the fulls.
func TestDistMeshKillRecovers(t *testing.T) {
	_, _, until, ref := golden(t)
	for _, engine := range []string{"cmb", "timewarp"} {
		t.Run(engine, func(t *testing.T) {
			opts := baseOpts(t, engine, 2, until)
			opts.Mesh = true
			opts.CkptDelta = true
			opts.CheckpointEvery = 200
			opts.Restarts = 2
			// Under mesh the hub link carries no FBatch frames, so the
			// kill's frame trigger counts control traffic; a fast beacon
			// makes the counter advance while the shard is still working.
			opts.HeartbeatEvery = time.Millisecond
			opts.Plan = netfault.Plan{
				{Op: netfault.OpKill, Shard: 0, AfterFrames: 5, Attempt: 0},
			}
			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Recoveries < 1 {
				t.Errorf("kill did not force a recovery: attempts=%d", res.Attempts)
			}
			if res.FinalMode != "dist" {
				t.Errorf("recovered run degraded to %s", res.FinalMode)
			}
			checkMatchesGolden(t, res, ref)
			// The attempt that was killed must have left delta records on
			// disk — the recovery boot merged its way through them.
			if n, _ := filepath.Glob(filepath.Join(opts.WorkDir, "shard-*-delta-*.json")); len(n) == 0 {
				t.Error("no delta checkpoint records were written")
			}
		})
	}
}

// TestDistDeltaCkptGauges: a clean delta-checkpointed run must report
// the checkpoint volume split, with delta records measurably smaller
// than full snapshots at equal recovery fidelity (delta_ratio < 1).
func TestDistDeltaCkptGauges(t *testing.T) {
	_, _, until, ref := golden(t)
	reg := metrics.NewRegistry("cmb-dist")
	opts := baseOpts(t, "cmb", 2, until)
	opts.Mesh = true
	opts.CkptDelta = true
	opts.CheckpointEvery = 200
	opts.Metrics = reg
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchesGolden(t, res, ref)
	g := reg.Report().Gauges
	if g["ckpt_full_bytes"] == 0 || g["ckpt_delta_bytes"] == 0 {
		t.Fatalf("checkpoint volume gauges missing: full=%v delta=%v",
			g["ckpt_full_bytes"], g["ckpt_delta_bytes"])
	}
	if r := g["delta_ratio"]; r <= 0 || r >= 1 {
		t.Errorf("delta_ratio = %v, want a real saving in (0, 1)", r)
	}
}

// writeShardChain writes one shard's checkpoint sequence in delta mode:
// a full snapshot at the first boundary, chained deltas after — exactly
// what the worker's shadow produces.
func writeShardChain(t *testing.T, dir string, shard int, states []*ckpt.State, owned []bool) {
	t.Helper()
	var last *ckpt.State
	for _, st := range states {
		cur := restrictToShard(st, owned)
		if last == nil {
			if err := ckpt.WriteFile(filepath.Join(dir, shardCkptName(shard, cur.Time)), cur); err != nil {
				t.Fatal(err)
			}
		} else {
			d, err := ckpt.DeltaFrom(last, cur)
			if err != nil {
				t.Fatal(err)
			}
			if err := ckpt.WriteDeltaFile(filepath.Join(dir, shardDeltaName(shard, cur.Time)), d); err != nil {
				t.Fatal(err)
			}
		}
		last = cur
	}
}

// TestDeltaChainRestore: a full-then-deltas checkpoint directory must
// reconstruct the newest boundary byte-for-byte identical to the merge
// of directly written full snapshots — restoring through the chain is
// indistinguishable from restoring a full snapshot.
func TestDeltaChainRestore(t *testing.T) {
	j := testJob()
	c, _ := j.BuildCircuit()
	j.Shards = 2
	j.LPs = 4
	part, shardOf, err := j.BuildPartition(c)
	if err != nil {
		t.Fatal(err)
	}
	gateShard := make([]int, c.NumGates())
	for g := range gateShard {
		gateShard[g] = shardOf[part.Assign[g]]
	}
	states := shadowStates(t, 200)

	deltaDir, fullDir := t.TempDir(), t.TempDir()
	for s := 0; s < 2; s++ {
		owned := ownedGates(part.Assign, shardOf, s, c.NumGates())
		writeShardChain(t, deltaDir, s, states, owned)
		for _, st := range states {
			if err := ckpt.WriteFile(filepath.Join(fullDir, shardCkptName(s, st.Time)),
				restrictToShard(st, owned)); err != nil {
				t.Fatal(err)
			}
		}
	}

	fromDeltas, atD, err := latestBoundary(deltaDir, 2, gateShard)
	if err != nil || fromDeltas == nil {
		t.Fatalf("delta-chain restore: merged=%v err=%v", fromDeltas, err)
	}
	fromFulls, atF, err := latestBoundary(fullDir, 2, gateShard)
	if err != nil || fromFulls == nil {
		t.Fatalf("full-snapshot restore: merged=%v err=%v", fromFulls, err)
	}
	if atD != atF || atD != states[len(states)-1].Time {
		t.Fatalf("boundaries differ: delta %d, full %d, newest %d", atD, atF, states[len(states)-1].Time)
	}
	if !reflect.DeepEqual(fromDeltas, fromFulls) {
		t.Error("delta-chain restore differs from full-snapshot restore")
	}
	if fromDeltas.Sum != fromFulls.Sum || fromDeltas.Verify() != nil {
		t.Errorf("checksums differ: delta %s vs full %s", fromDeltas.Sum, fromFulls.Sum)
	}
}

// TestDeltaChainCorruptFallsBack: corrupting a mid-chain delta makes
// every boundary past the break unusable; recovery must degrade to the
// newest boundary the intact prefix still reaches — and to the full
// snapshot itself when the very first link breaks — never to a wrong
// state and never to a wedge.
func TestDeltaChainCorruptFallsBack(t *testing.T) {
	j := testJob()
	c, _ := j.BuildCircuit()
	j.Shards = 2
	j.LPs = 4
	part, shardOf, err := j.BuildPartition(c)
	if err != nil {
		t.Fatal(err)
	}
	gateShard := make([]int, c.NumGates())
	for g := range gateShard {
		gateShard[g] = shardOf[part.Assign[g]]
	}
	states := shadowStates(t, 200)
	if len(states) < 3 {
		t.Fatalf("need at least 3 boundaries, have %d", len(states))
	}

	dir := t.TempDir()
	for s := 0; s < 2; s++ {
		writeShardChain(t, dir, s, states, ownedGates(part.Assign, shardOf, s, c.NumGates()))
	}

	// The corruption itself must surface as the structured ckpt.ErrCorrupt
	// when the broken record is read back directly.
	mid := states[len(states)-1].Time
	if err := os.WriteFile(filepath.Join(dir, shardDeltaName(1, mid)), []byte(`{"version":"parsim-ckpt-delta/v1","sum":"fnv64a:dead"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.ReadDeltaFile(filepath.Join(dir, shardDeltaName(1, mid))); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("corrupt delta read error = %v, want ckpt.ErrCorrupt", err)
	}

	// Newest boundary's delta broken: fall back one boundary.
	merged, at, err := latestBoundary(dir, 2, gateShard)
	if err != nil || merged == nil {
		t.Fatalf("after tail corruption: merged=%v err=%v", merged, err)
	}
	if want := states[len(states)-2].Time; at != want {
		t.Errorf("picked boundary %d, want fallback %d", at, want)
	}

	// Break the first delta link too: every chained boundary is now
	// unreachable and recovery must degrade to the last full snapshot.
	first := states[1].Time
	if err := os.Truncate(filepath.Join(dir, shardDeltaName(0, first)), 3); err != nil {
		t.Fatal(err)
	}
	merged, at, err = latestBoundary(dir, 2, gateShard)
	if err != nil || merged == nil {
		t.Fatalf("after chain-head corruption: merged=%v err=%v", merged, err)
	}
	if want := states[0].Time; at != want {
		t.Errorf("picked boundary %d, want the full snapshot at %d", at, want)
	}
	if merged.Verify() != nil {
		t.Error("fallback snapshot fails its own checksum")
	}
}
