package fault

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/gen"
)

var update = flag.Bool("update", false, "rewrite the PPSFP golden fixtures")

// goldenCampaigns are the committed fault-grading fixtures: fixed circuit,
// fixed patterns, committed detected-fault set. They pin the exact PPSFP
// verdict — total, detected, and per-fault first-detecting pattern — so an
// accidental change to fault collapsing, pattern packing, or detection
// ordering shows up as a fixture diff rather than a silent coverage shift.
//
// Regenerate with: go test ./internal/fault/ -run Golden -update
var goldenCampaigns = []struct {
	name     string
	build    func() (*circuit.Circuit, error)
	patterns func(c *circuit.Circuit) [][]bool
}{
	{
		name:  "c17-exhaustive",
		build: func() (*circuit.Circuit, error) { return bench.MustC17(), nil },
		patterns: func(c *circuit.Circuit) [][]bool {
			var ps [][]bool
			for v := 0; v < 1<<len(c.Inputs); v++ {
				pat := make([]bool, len(c.Inputs))
				for i := range pat {
					pat[i] = v&(1<<i) != 0
				}
				ps = append(ps, pat)
			}
			return ps
		},
	},
	{
		name:     "cla6-random48",
		build:    func() (*circuit.Circuit, error) { return gen.CLAAdder(6, gen.Unit) },
		patterns: func(c *circuit.Circuit) [][]bool { return randomPatterns(c, 48, 7) },
	},
	{
		name:     "mul4-random96",
		build:    func() (*circuit.Circuit, error) { return gen.ArrayMultiplier(4, gen.Unit) },
		patterns: func(c *circuit.Circuit) [][]bool { return randomPatterns(c, 96, 11) },
	},
}

// renderCampaign fixes the fixture text: a header, the summary counts, and
// one line per detection in the grader's (sorted) order.
func renderCampaign(name string, c *circuit.Circuit, nPatterns int, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# PPSFP golden fixture %q -- regenerate with -update\n", name)
	fmt.Fprintf(&b, "patterns=%d total=%d detected=%d coverage=%.4f\n",
		nPatterns, res.Total, res.Detected, res.Coverage)
	for _, d := range res.Detections {
		name := c.Gates[d.Fault.Gate].Name
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(&b, "%v name=%s first=%d\n", d.Fault, name, d.Time)
	}
	return b.String()
}

func TestPPSFPGolden(t *testing.T) {
	for _, tc := range goldenCampaigns {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			faults := Collapse(c, Universe(c))
			patterns := tc.patterns(c)
			res, err := GradeBitParallel(c, patterns, faults, 4)
			if err != nil {
				t.Fatal(err)
			}
			got := renderCampaign(tc.name, c, len(patterns), res)
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("detected-fault set diverged from %s:\n%s", path, diffLines(string(want), got))
			}
		})
	}
}

// diffLines reports the first few differing lines between two fixtures.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  want %q\n  got  %q\n", i+1, w, g)
		if shown++; shown >= 5 {
			fmt.Fprintf(&b, "  ... (further differences elided)\n")
			break
		}
	}
	return b.String()
}

// TestPPSFPGoldenStability reruns one campaign with a different worker
// count: the fixture text must not depend on scheduling.
func TestPPSFPGoldenStability(t *testing.T) {
	c, err := gen.CLAAdder(6, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	faults := Collapse(c, Universe(c))
	patterns := randomPatterns(c, 48, 7)
	a, err := GradeBitParallel(c, patterns, faults, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GradeBitParallel(c, patterns, faults, 8)
	if err != nil {
		t.Fatal(err)
	}
	ra := renderCampaign("stability", c, len(patterns), a)
	rb := renderCampaign("stability", c, len(patterns), b)
	if ra != rb {
		t.Errorf("worker count changed the verdict:\n%s", diffLines(ra, rb))
	}
}
