// Package fault implements single-stuck-at fault simulation.
//
// The paper's taxonomy of parallelism notes that data parallelism —
// different processors simulating distinct inputs — "is quite effective
// for fault simulation, where a large number of independent input vectors
// [and faults] need to be simulated". This package provides the workload:
// a stuck-at fault universe with simple structural collapsing, a serial
// fault simulator built on the sequential engine, and a data-parallel
// runner that fans the fault list out across goroutines. Experiment E13
// compares the two.
package fault

import (
	"fmt"
	"sort"
	gosync "sync"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/sim/seq"
	"repro/internal/sim/supervise"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Fault is a single stuck-at fault on a gate's output net.
type Fault struct {
	Gate    circuit.GateID
	StuckAt logic.Value // logic.Zero or logic.One
}

// String renders the conventional "net/sa0" form.
func (f Fault) String() string {
	sa := "sa0"
	if f.StuckAt == logic.One {
		sa = "sa1"
	}
	return fmt.Sprintf("%d/%s", f.Gate, sa)
}

// Universe enumerates both stuck-at faults on every fault site: all gate
// output nets except constants and output markers (whose faults are
// equivalent to faults on their driving nets).
func Universe(c *circuit.Circuit) []Fault {
	var out []Fault
	for id := range c.Gates {
		switch c.Gates[id].Kind {
		case circuit.Const0, circuit.Const1, circuit.ConstX, circuit.Output:
			continue
		}
		out = append(out,
			Fault{circuit.GateID(id), logic.Zero},
			Fault{circuit.GateID(id), logic.One},
		)
	}
	return out
}

// Collapse removes faults that are structurally equivalent to a fault on
// their (sole) fanin: a buffer's stuck-at-v collapses onto its input's
// stuck-at-v, an inverter's onto its input's stuck-at-(not v). This is the
// classic cheap equivalence collapsing; it typically removes the
// buffer/inverter share of the universe.
func Collapse(c *circuit.Circuit, faults []Fault) []Fault {
	// representative follows Buf/Not chains down to a canonical site.
	var canon func(f Fault) Fault
	canon = func(f Fault) Fault {
		g := c.Gate(f.Gate)
		switch g.Kind {
		case circuit.Buf, circuit.Output:
			return canon(Fault{g.Fanin[0], f.StuckAt})
		case circuit.Not:
			inv := logic.Zero
			if f.StuckAt == logic.Zero {
				inv = logic.One
			}
			return canon(Fault{g.Fanin[0], inv})
		}
		return f
	}
	seen := map[Fault]bool{}
	var out []Fault
	for _, f := range faults {
		cf := canon(f)
		if !seen[cf] {
			seen[cf] = true
			out = append(out, cf)
		}
	}
	return out
}

// Detection records where a fault first became observable.
type Detection struct {
	Fault Fault
	// Time is the first simulated time at which a primary output diverged
	// from the good circuit.
	Time circuit.Tick
}

// Result summarizes a fault simulation campaign.
type Result struct {
	Total      int
	Detected   int
	Coverage   float64
	Detections []Detection
	// GoodStats are the work counters of the fault-free reference run.
	GoodStats metrics.LPCounters
}

// Config parameterizes a campaign.
type Config struct {
	// Workers is the data-parallel fan-out; 1 is the serial baseline.
	Workers int
	// System is the logic value system (two-valued is customary for fault
	// grading).
	System logic.System
	// MaxEvents bounds each faulty-circuit run.
	MaxEvents uint64
}

// Run grades the given faults under the stimulus.
func Run(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, faults []Fault, cfg Config) (*Result, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.System == 0 {
		cfg.System = logic.TwoValued
	}
	seqCfg := seq.Config{System: cfg.System, MaxEvents: cfg.MaxEvents}
	good, err := seq.Run(c, stim, until, seqCfg)
	if err != nil {
		return nil, fmt.Errorf("fault: good-circuit run: %w", err)
	}
	strobes := strobeTimes(stim, until)
	init := cfg.System.Project(logic.U)
	goodSamples := sampleAt(good.Waveform, c.Outputs, strobes, init)

	type verdict struct {
		idx      int
		detected bool
		at       circuit.Tick
		err      error
	}
	verdicts := make([]verdict, len(faults))
	var wg gosync.WaitGroup
	work := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				// Recover per item: a panic on one fault must not kill the
				// worker (which would starve the feeder) or the campaign.
				func(i int) {
					defer func() {
						if r := recover(); r != nil {
							verdicts[i] = verdict{idx: i, err: supervise.FromPanic("bitpar", w, "fault", 0, r)}
						}
					}()
					fc, fstim, err := inject(c, stim, faults[i])
					if err != nil {
						verdicts[i] = verdict{idx: i, err: err}
						return
					}
					res, err := seq.Run(fc, fstim, until, seqCfg)
					if err != nil {
						verdicts[i] = verdict{idx: i, err: err}
						return
					}
					badSamples := sampleAt(res.Waveform, c.Outputs, strobes, init)
					at, det := firstDivergence(strobes, goodSamples, badSamples)
					verdicts[i] = verdict{idx: i, detected: det, at: at}
				}(i)
			}
		}(w)
	}
	for i := range faults {
		work <- i
	}
	close(work)
	wg.Wait()

	out := &Result{Total: len(faults), GoodStats: good.Counters}
	for i, v := range verdicts {
		if v.err != nil {
			return nil, fmt.Errorf("fault %v: %w", faults[i], v.err)
		}
		if v.detected {
			out.Detected++
			out.Detections = append(out.Detections, Detection{Fault: faults[i], Time: v.at})
		}
	}
	sort.Slice(out.Detections, func(a, b int) bool {
		if out.Detections[a].Time != out.Detections[b].Time {
			return out.Detections[a].Time < out.Detections[b].Time
		}
		return out.Detections[a].Fault.Gate < out.Detections[b].Fault.Gate
	})
	if out.Total > 0 {
		out.Coverage = float64(out.Detected) / float64(out.Total)
	}
	return out, nil
}

// inject builds the faulty circuit: the faulted gate is replaced by a
// constant driving the stuck value. Faulting a primary input also removes
// it from the input list and the stimulus.
func inject(c *circuit.Circuit, stim *vectors.Stimulus, f Fault) (*circuit.Circuit, *vectors.Stimulus, error) {
	gates := make([]circuit.Gate, len(c.Gates))
	copy(gates, c.Gates)
	fg := &gates[f.Gate]
	faultedInput := fg.Kind == circuit.Input
	if f.StuckAt == logic.One {
		fg.Kind = circuit.Const1
	} else {
		fg.Kind = circuit.Const0
	}
	fg.Fanin = nil

	inputs := c.Inputs
	if faultedInput {
		inputs = make([]circuit.GateID, 0, len(c.Inputs)-1)
		for _, in := range c.Inputs {
			if in != f.Gate {
				inputs = append(inputs, in)
			}
		}
	}
	fc, err := circuit.New(gates, inputs, c.Outputs)
	if err != nil {
		return nil, nil, err
	}
	if !faultedInput {
		return fc, stim, nil
	}
	fs := &vectors.Stimulus{End: stim.End}
	for _, ch := range stim.Changes {
		if ch.Input != f.Gate {
			fs.Changes = append(fs.Changes, ch)
		}
	}
	return fc, fs, nil
}

// strobeTimes lists the observation instants: just before each vector
// boundary after the first, and the simulation horizon. Strobing settled
// values (rather than diffing full waveforms) is the standard fault-
// grading discipline — it ignores transient glitch differences, so
// logically redundant faults stay undetected.
func strobeTimes(stim *vectors.Stimulus, until circuit.Tick) []circuit.Tick {
	var strobes []circuit.Tick
	var last circuit.Tick
	have := false
	for _, ch := range stim.Changes {
		if !have || ch.Time != last {
			if have && ch.Time > 0 {
				strobes = append(strobes, ch.Time-1)
			}
			last = ch.Time
			have = true
		}
	}
	strobes = append(strobes, until)
	return strobes
}

// sampleAt reconstructs the values of the given gates at each strobe time
// from a change waveform, in one pass.
func sampleAt(wf trace.Waveform, gates []circuit.GateID, strobes []circuit.Tick, initial logic.Value) [][]logic.Value {
	cur := map[circuit.GateID]logic.Value{}
	for _, g := range gates {
		cur[g] = initial
	}
	out := make([][]logic.Value, len(strobes))
	wi := 0
	for si, st := range strobes {
		for wi < len(wf) && wf[wi].Time <= st {
			if _, ok := cur[wf[wi].Gate]; ok {
				cur[wf[wi].Gate] = wf[wi].Value
			}
			wi++
		}
		row := make([]logic.Value, len(gates))
		for i, g := range gates {
			row[i] = cur[g]
		}
		out[si] = row
	}
	return out
}

// firstDivergence compares strobe samples and returns the earliest strobe
// at which the faulty circuit's outputs disagree with the good circuit's.
func firstDivergence(strobes []circuit.Tick, good, bad [][]logic.Value) (circuit.Tick, bool) {
	for si := range strobes {
		for i := range good[si] {
			if good[si][i] != bad[si][i] {
				return strobes[si], true
			}
		}
	}
	return 0, false
}
