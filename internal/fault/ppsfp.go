package fault

import (
	"fmt"
	gosync "sync"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim/bitpar"
	"repro/internal/sim/supervise"
)

// GradeBitParallel grades stuck-at faults on a combinational circuit with
// parallel-pattern single-fault propagation (PPSFP): the good circuit and
// each faulty circuit are evaluated on 64 patterns at once using the
// bit-parallel engine, and detected faults are dropped from later passes.
// This is the word-level data parallelism of the paper's taxonomy layered
// under the fault-level data parallelism of Run: patterns fill the bit
// lanes, faults fan out across workers.
//
// patterns[k][i] is the value of input i (circuit.Inputs order) under
// pattern k. The returned detections carry the index of the first
// detecting pattern in the Time field.
func GradeBitParallel(c *circuit.Circuit, patterns [][]bool, faults []Fault, workers int) (*Result, error) {
	if workers < 1 {
		workers = 1
	}
	if st := c.ComputeStats(); st.FlipFlops > 0 || st.Latches > 0 {
		return nil, fmt.Errorf("fault: PPSFP handles combinational circuits; this one has %d state elements",
			st.FlipFlops+st.Latches)
	}
	good, err := bitpar.New(c)
	if err != nil {
		return nil, err
	}
	sims := make([]*bitpar.Sim, workers)
	for i := range sims {
		if sims[i], err = bitpar.New(c); err != nil {
			return nil, err
		}
	}

	remaining := append([]Fault(nil), faults...)
	firstPattern := make(map[Fault]int, len(faults))

	// A panicking worker is recovered into the campaign's first error; the
	// per-pass barrier (wg.Wait) always completes because Done is deferred.
	var failMu gosync.Mutex
	var failErr error
	setFail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
	}

	goodOut := make([]uint64, len(c.Outputs))
	for base := 0; base < len(patterns) && len(remaining) > 0; base += 64 {
		hi := base + 64
		if hi > len(patterns) {
			hi = len(patterns)
		}
		packed, err := bitpar.PackPatterns(c, patterns[base:hi])
		if err != nil {
			return nil, err
		}
		mask := packed.Mask()
		good.ApplyAndSettle(packed)
		for i, o := range c.Outputs {
			goodOut[i] = good.Get(o)
		}

		// Fan the remaining faults across the workers.
		type hit struct {
			idx     int // index into remaining
			pattern int // absolute index of the first detecting pattern
		}
		hitsCh := make(chan []hit, workers)
		var wg gosync.WaitGroup
		chunk := (len(remaining) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(remaining) {
				break
			}
			end := lo + chunk
			if end > len(remaining) {
				end = len(remaining)
			}
			wg.Add(1)
			go func(w, lo, end int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						setFail(supervise.FromPanic("bitpar", w, "ppsfp", 0, r))
					}
				}()
				var hits []hit
				s := sims[w]
				for fi := lo; fi < end; fi++ {
					f := remaining[fi]
					s.ForceNet(f.Gate, stuckWord(f.StuckAt))
					s.ApplyAndSettle(packed)
					var diff uint64
					for i, o := range c.Outputs {
						diff |= (s.Get(o) ^ goodOut[i]) & mask
					}
					s.ClearForce()
					if diff != 0 {
						hits = append(hits, hit{fi, base + lowestBit(diff)})
					}
				}
				hitsCh <- hits
			}(w, lo, end)
		}
		wg.Wait()
		close(hitsCh)
		failMu.Lock()
		ferr := failErr
		failMu.Unlock()
		if ferr != nil {
			return nil, ferr
		}

		drop := map[int]int{}
		for hits := range hitsCh {
			for _, h := range hits {
				drop[h.idx] = h.pattern
			}
		}
		if len(drop) > 0 {
			kept := remaining[:0]
			for i, f := range remaining {
				if pat, hit := drop[i]; hit {
					firstPattern[f] = pat
				} else {
					kept = append(kept, f)
				}
			}
			remaining = kept
		}
	}

	res := &Result{Total: len(faults), Detected: len(firstPattern)}
	for f, pat := range firstPattern {
		res.Detections = append(res.Detections, Detection{Fault: f, Time: circuit.Tick(pat)})
	}
	sortDetections(res.Detections)
	if res.Total > 0 {
		res.Coverage = float64(res.Detected) / float64(res.Total)
	}
	return res, nil
}

// stuckWord is the 64-lane constant for a stuck value.
func stuckWord(v logic.Value) uint64 {
	if v == logic.One {
		return ^uint64(0)
	}
	return 0
}

// lowestBit returns the index of the lowest set bit (diff != 0).
func lowestBit(diff uint64) int {
	n := 0
	for diff&1 == 0 {
		diff >>= 1
		n++
	}
	return n
}

// sortDetections orders by (pattern/time, gate).
func sortDetections(ds []Detection) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0; j-- {
			a, b := ds[j-1], ds[j]
			if b.Time < a.Time || (b.Time == a.Time && b.Fault.Gate < a.Fault.Gate) ||
				(b.Time == a.Time && b.Fault.Gate == a.Fault.Gate && b.Fault.StuckAt < a.Fault.StuckAt) {
				ds[j-1], ds[j] = b, a
			} else {
				break
			}
		}
	}
}
