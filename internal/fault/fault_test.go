package fault

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim/seq"
	"repro/internal/vectors"
)

func TestUniverseSize(t *testing.T) {
	c := bench.MustC17()
	u := Universe(c)
	// c17: 5 inputs + 6 NANDs = 11 fault sites, 22 faults (outputs excluded).
	if len(u) != 22 {
		t.Fatalf("universe = %d faults, want 22", len(u))
	}
	for _, f := range u {
		if f.StuckAt != logic.Zero && f.StuckAt != logic.One {
			t.Fatalf("fault %v has non-binary stuck value", f)
		}
		k := c.Gate(f.Gate).Kind
		if k == circuit.Output || k == circuit.Const0 || k == circuit.Const1 {
			t.Fatalf("fault %v on excluded site %v", f, k)
		}
	}
}

func TestCollapseBufferChains(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	b1 := b.Gate(circuit.Buf, "b1", a)
	n1 := b.Gate(circuit.Not, "n1", b1)
	b.Output("y", n1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := Universe(c) // a, b1, n1: 6 faults
	if len(u) != 6 {
		t.Fatalf("universe = %d", len(u))
	}
	col := Collapse(c, u)
	// b1's faults collapse onto a (same polarity); n1's collapse onto a
	// (inverted polarity). Remaining: a/sa0 and a/sa1.
	if len(col) != 2 {
		t.Fatalf("collapsed = %d faults (%v), want 2", len(col), col)
	}
	for _, f := range col {
		if f.Gate != a {
			t.Fatalf("collapsed fault %v not on input a", f)
		}
	}
}

func TestFaultString(t *testing.T) {
	if (Fault{3, logic.Zero}).String() != "3/sa0" || (Fault{7, logic.One}).String() != "7/sa1" {
		t.Fatal("fault naming wrong")
	}
}

// TestC17FullCoverage checks the textbook result: exhaustive vectors
// detect every collapsed fault of c17 (the circuit is fully testable).
func TestC17FullCoverage(t *testing.T) {
	c := bench.MustC17()
	stim, err := vectors.Exhaustive(c, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	faults := Collapse(c, Universe(c))
	res, err := Run(c, stim, seq.Horizon(c, stim), faults, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1.0 {
		t.Fatalf("c17 exhaustive coverage = %.3f (%d/%d), want 1.0",
			res.Coverage, res.Detected, res.Total)
	}
}

func TestSerialAndParallelAgree(t *testing.T) {
	c, err := gen.ArrayMultiplier(3, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 15, Period: 40, Activity: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	faults := Collapse(c, Universe(c))
	until := seq.Horizon(c, stim)
	serial, err := Run(c, stim, until, faults, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(c, stim, until, faults, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Detected != parallel.Detected || serial.Total != parallel.Total {
		t.Fatalf("serial %d/%d vs parallel %d/%d",
			serial.Detected, serial.Total, parallel.Detected, parallel.Total)
	}
	if len(serial.Detections) != len(parallel.Detections) {
		t.Fatal("detection lists differ")
	}
	for i := range serial.Detections {
		if serial.Detections[i] != parallel.Detections[i] {
			t.Fatalf("detection %d differs: %+v vs %+v", i, serial.Detections[i], parallel.Detections[i])
		}
	}
}

func TestUndetectableRedundantFault(t *testing.T) {
	// y = a OR (a AND b): the AND gate is redundant logic; its sa0 is
	// undetectable (output equals a regardless).
	b := circuit.NewBuilder()
	a := b.Input("a")
	bb := b.Input("b")
	and := b.Gate(circuit.And, "and", a, bb)
	or := b.Gate(circuit.Or, "or", a, and)
	b.Output("y", or)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Exhaustive(c, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, stim, seq.Horizon(c, stim), []Fault{{and, logic.Zero}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != 0 {
		t.Fatalf("redundant fault reported detected")
	}
}

func TestDetectionOnSequentialCircuit(t *testing.T) {
	c, err := gen.Counter(4, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 20, HalfPeriod: 30, Activity: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stuck the enable input high/low: en/sa0 freezes the counter, which
	// is detectable once it should have counted.
	en, _ := c.ByName("en")
	res, err := Run(c, stim, seq.Horizon(c, stim), []Fault{{en, logic.Zero}, {en, logic.One}}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The random initial en value is either 0 or 1; exactly one of the two
	// stuck faults disagrees with it and must be detected.
	if res.Detected < 1 {
		t.Fatalf("no enable fault detected (%d/%d)", res.Detected, res.Total)
	}
}

func TestCoverageGrowsWithVectors(t *testing.T) {
	c, err := gen.CLAAdder(8, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	faults := Collapse(c, Universe(c))
	cov := func(n int) float64 {
		stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: n, Period: 60, Activity: 0.5, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, stim, seq.Horizon(c, stim), faults, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.Coverage
	}
	few := cov(2)
	many := cov(40)
	if many < few {
		t.Fatalf("coverage shrank with more vectors: %f -> %f", few, many)
	}
	if many < 0.5 {
		t.Fatalf("40 random vectors cover only %.2f of the CLA adder", many)
	}
}
