package fault

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim/seq"
	"repro/internal/vectors"
)

// randomPatterns draws n random input assignments.
func randomPatterns(c *circuit.Circuit, n int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]bool, n)
	for k := range out {
		out[k] = make([]bool, len(c.Inputs))
		for i := range out[k] {
			out[k][i] = rng.Intn(2) == 1
		}
	}
	return out
}

// patternsToStimulus converts the same patterns into event-driven stimulus
// (one vector per pattern, long settle period).
func patternsToStimulus(c *circuit.Circuit, patterns [][]bool, period circuit.Tick) *vectors.Stimulus {
	s := &vectors.Stimulus{End: circuit.Tick(len(patterns)-1) * period}
	for k, pat := range patterns {
		t := circuit.Tick(k) * period
		for i, in := range c.Inputs {
			s.Changes = append(s.Changes, vectors.Change{Time: t, Input: in, Value: logic.FromBool(pat[i])})
		}
	}
	s.Sort()
	// Event-driven stimulus dedups repeated values implicitly (apply only
	// if changed), so identical consecutive assignments are harmless, but
	// Validate rejects exact duplicates at the same (time, input); these
	// cannot occur here.
	return s
}

// TestPPSFPMatchesEventDrivenGrading is the central cross-check: the
// bit-parallel grader and the event-driven strobe-based grader must agree
// fault for fault on the same patterns.
func TestPPSFPMatchesEventDrivenGrading(t *testing.T) {
	c, err := gen.CLAAdder(6, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	faults := Collapse(c, Universe(c))
	patterns := randomPatterns(c, 48, 7)

	pp, err := GradeBitParallel(c, patterns, faults, 4)
	if err != nil {
		t.Fatal(err)
	}
	stim := patternsToStimulus(c, patterns, 200)
	ev, err := Run(c, stim, seq.Horizon(c, stim), faults, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pp.Detected != ev.Detected {
		t.Fatalf("PPSFP detected %d, event-driven %d", pp.Detected, ev.Detected)
	}
	ppSet := map[Fault]bool{}
	for _, d := range pp.Detections {
		ppSet[d.Fault] = true
	}
	for _, d := range ev.Detections {
		if !ppSet[d.Fault] {
			t.Fatalf("fault %v detected by event-driven but not PPSFP", d.Fault)
		}
	}
}

func TestPPSFPC17Exhaustive(t *testing.T) {
	c := bench.MustC17()
	faults := Collapse(c, Universe(c))
	// All 32 input combinations as patterns.
	var patterns [][]bool
	for v := 0; v < 32; v++ {
		pat := make([]bool, len(c.Inputs))
		for i := range pat {
			pat[i] = v&(1<<i) != 0
		}
		patterns = append(patterns, pat)
	}
	res, err := GradeBitParallel(c, patterns, faults, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1.0 {
		t.Fatalf("c17 exhaustive PPSFP coverage = %.3f", res.Coverage)
	}
	// First-detection pattern indices must be within range and sorted.
	last := circuit.Tick(0)
	for _, d := range res.Detections {
		if d.Time >= circuit.Tick(len(patterns)) {
			t.Fatalf("detection pattern index %d out of range", d.Time)
		}
		if d.Time < last {
			t.Fatal("detections not sorted by pattern")
		}
		last = d.Time
	}
}

func TestPPSFPFaultDropping(t *testing.T) {
	// With more than 64 patterns the grader runs multiple passes; coverage
	// must be monotone in the pattern count and the result identical to a
	// single big campaign's subset.
	c, err := gen.ArrayMultiplier(4, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	faults := Collapse(c, Universe(c))
	patterns := randomPatterns(c, 150, 11)
	few, err := GradeBitParallel(c, patterns[:32], faults, 3)
	if err != nil {
		t.Fatal(err)
	}
	many, err := GradeBitParallel(c, patterns, faults, 3)
	if err != nil {
		t.Fatal(err)
	}
	if many.Detected < few.Detected {
		t.Fatalf("coverage shrank with more patterns: %d -> %d", few.Detected, many.Detected)
	}
	// Every fault detected in the short campaign is detected (at the same
	// first pattern) in the long one.
	first := map[Fault]circuit.Tick{}
	for _, d := range many.Detections {
		first[d.Fault] = d.Time
	}
	for _, d := range few.Detections {
		at, ok := first[d.Fault]
		if !ok || at != d.Time {
			t.Fatalf("fault %v first-detection changed: %d vs %v", d.Fault, d.Time, at)
		}
	}
}

func TestPPSFPRejectsSequential(t *testing.T) {
	c, err := gen.Counter(3, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GradeBitParallel(c, randomPatterns(c, 8, 1), Universe(c), 1); err == nil {
		t.Fatal("sequential circuit accepted by PPSFP")
	}
}

func TestPPSFPInputFault(t *testing.T) {
	// A stuck input must be detectable and must override the pattern.
	b := circuit.NewBuilder()
	a := b.Input("a")
	bb := b.Input("b")
	x := b.Gate(Xor2, "x", a, bb)
	b.Output("y", x)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	patterns := [][]bool{{false, false}, {true, false}, {false, true}, {true, true}}
	res, err := GradeBitParallel(c, patterns, []Fault{{a, logic.Zero}, {a, logic.One}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != 2 {
		t.Fatalf("input faults detected = %d, want 2", res.Detected)
	}
}

// Xor2 aliases the gate kind for readability in the test above.
const Xor2 = circuit.Xor
