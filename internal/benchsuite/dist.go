package benchsuite

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
)

// Dist returns the distributed-topology rows: the identical sharded
// workload routed through the hub (every inter-shard batch relayed,
// two hops) and over the direct worker mesh (one hop, hub reduced to
// the control plane), plus a full-vs-delta checkpoint pair. The
// MeshRelay/HubRelay ns/op ratio is the data-plane win of cutting the
// relay out; hub-bytes/run and mesh-bytes/run prove where the traffic
// actually went. The Ckpt pair shares its workload and boundary pace,
// so ckpt-bytes/run is directly comparable: the delta row's reduction
// is what fingerprint-chained incremental records save per run at
// identical recovery fidelity.
func Dist() []Benchmark {
	return []Benchmark{
		{"Dist/HubRelay", BenchDistHubRelay},
		{"Dist/MeshRelay", BenchDistMeshRelay},
		{"Ckpt/Full", BenchCkptFull},
		{"Ckpt/Delta", BenchCkptDelta},
	}
}

// distBenchOpts is the shared 4-shard workload: in-process workers over
// real loopback sockets, a ripple-carry netlist whose carry chain cuts
// across every shard boundary so inter-shard traffic dominates.
func distBenchOpts(b *testing.B, mesh bool, ckptEvery uint64, delta bool) (dist.Options, *metrics.Registry) {
	b.Helper()
	j := &dist.Job{
		Circuit: "ripple32", Seed: 1,
		Vectors: 12, Activity: 0.5, Period: 40,
		Partition: "fm",
	}
	c, err := j.BuildCircuit()
	if err != nil {
		b.Fatal(err)
	}
	stim, err := j.BuildStimulus(c)
	if err != nil {
		b.Fatal(err)
	}
	reg := metrics.NewRegistry("cmb-dist")
	return dist.Options{
		Shards:          4,
		Engine:          "cmb",
		Circuit:         j.Circuit,
		Seed:            j.Seed,
		Vectors:         j.Vectors,
		Activity:        j.Activity,
		Period:          j.Period,
		Until:           uint64(core.Horizon(c, stim)),
		LPs:             8,
		Partition:       j.Partition,
		Mesh:            mesh,
		CheckpointEvery: ckptEvery,
		CkptDelta:       delta,
		WorkDir:         b.TempDir(),
		Metrics:         reg,
	}, reg
}

// benchDist measures end-to-end dist.Run wall-clock for one topology,
// reporting where the inter-shard bytes flowed.
func benchDist(b *testing.B, mesh bool) {
	opts, reg := distBenchOpts(b, mesh, 0, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
	g := reg.Report().Gauges
	b.ReportMetric(g["hub_bytes"], "hub-bytes/run")
	b.ReportMetric(g["mesh_bytes"], "mesh-bytes/run")
	b.ReportMetric(g["relay_hops"], "relay-hops")
}

// BenchDistHubRelay routes every inter-shard event batch through the
// hub: two socket hops per batch, the star topology's serialization
// point.
func BenchDistHubRelay(b *testing.B) { benchDist(b, false) }

// BenchDistMeshRelay routes inter-shard batches over direct
// worker-to-worker links; the hub carries only control traffic, so
// hub-bytes/run must be zero.
func BenchDistMeshRelay(b *testing.B) { benchDist(b, true) }

// benchCkpt measures the same sharded run writing a shard snapshot
// every 100 ticks, full-only versus delta-chained. ckpt-bytes/run is
// the on-disk volume per run; the Delta row additionally reports the
// per-record size ratio.
func benchCkpt(b *testing.B, delta bool) {
	opts, reg := distBenchOpts(b, true, 100, delta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
	g := reg.Report().Gauges
	b.ReportMetric(g["ckpt_full_bytes"]+g["ckpt_delta_bytes"], "ckpt-bytes/run")
	if delta {
		b.ReportMetric(g["delta_ratio"], "delta-ratio")
	}
}

// BenchCkptFull writes a full restriction of the boundary snapshot at
// every checkpoint boundary — the pre-incremental baseline.
func BenchCkptFull(b *testing.B) { benchCkpt(b, false) }

// BenchCkptDelta writes one full snapshot per attempt and
// fingerprint-chained delta records afterwards.
func BenchCkptDelta(b *testing.B) { benchCkpt(b, true) }
