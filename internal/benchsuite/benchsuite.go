// Package benchsuite defines the repository's wall-clock benchmark
// baseline: allocation-counting microbenchmarks for the per-event hot
// paths (kernel step, pending-event queues, a conservative round, an
// optimistic run with rollbacks) plus one end-to-end run per engine.
//
// The suite is a plain data slice of named func(*testing.B) so the same
// workloads run two ways: `go test -bench BenchmarkHotPaths` during
// development, and cmd/benchbaseline, which executes the suite via
// testing.Benchmark and emits BENCH_parsim.json — the committed baseline
// every future performance PR diffs against.
package benchsuite

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/partition"
	"repro/internal/sim/adapt"
	"repro/internal/sim/cmb"
	"repro/internal/sim/hybrid"
	"repro/internal/sim/kernel"
	"repro/internal/sim/timewarp"
	"repro/internal/vectors"
)

// Benchmark is one named entry of the suite.
type Benchmark struct {
	Name string
	Fn   func(b *testing.B)
}

// All returns the full suite: microbenchmarks first, then the wide-plane
// rows, the optimizer, cone-split, adaptive, and distributed-topology
// rows, then the per-engine end-to-end runs.
func All() []Benchmark {
	out := Micro()
	out = append(out, Wide()...)
	out = append(out, Opt()...)
	out = append(out, ConeSplit()...)
	out = append(out, Adapt()...)
	out = append(out, Dist()...)
	return append(out, Engines()...)
}

// Micro returns the hot-path microbenchmarks.
func Micro() []Benchmark {
	out := []Benchmark{
		{"KernelStep", BenchKernelStep},
		{"KernelStepUndo", BenchKernelStepUndo},
		{"CMBRound", BenchCMBRound},
		{"TimeWarpRollback", BenchTimeWarpRollback},
	}
	for _, impl := range []eventq.Impl{eventq.ImplHeap, eventq.ImplCalendar, eventq.ImplWheel} {
		impl := impl
		out = append(out, Benchmark{
			Name: "EventqPushPop/" + impl.String(),
			Fn:   func(b *testing.B) { benchEventqPushPop(b, impl) },
		})
	}
	return out
}

// Engines returns one end-to-end simulation benchmark per engine on a
// fixed mid-sized workload, the per-engine rows of BENCH_parsim.json.
func Engines() []Benchmark {
	var out []Benchmark
	for _, e := range core.Engines() {
		e := e
		out = append(out, Benchmark{
			Name: "Engine/" + e.String(),
			Fn:   func(b *testing.B) { benchEngine(b, e) },
		})
	}
	return out
}

// Wide returns the wide-plane (64 lanes per word) benchmarks: the wide
// kernel step, and scalar/wide throughput pairs on an identical 64-lane
// vector workload. Each pair's scalar row replays the 64 per-lane stimuli
// one at a time; the wide row packs them into one run. The vectors/s extra
// metric is directly comparable within a pair — the wide win the paper's
// word-parallel direction promises is that ratio.
func Wide() []Benchmark {
	out := []Benchmark{
		{"WideKernelStep", BenchWideKernelStep},
	}
	for _, e := range []core.Engine{core.EngineSeq, core.EngineOblivious, core.EngineCMB} {
		e := e
		out = append(out,
			Benchmark{
				Name: "Vectors/" + e.String() + "-scalar",
				Fn:   func(b *testing.B) { benchVectors(b, e, false) },
			},
			Benchmark{
				Name: "Vectors/" + e.String() + "-wide",
				Fn:   func(b *testing.B) { benchVectors(b, e, true) },
			})
	}
	return out
}

// Opt returns the netlist-optimizer rows: the pipeline's own cost on a
// mid-sized DAG (with the headline reduction ratios as extra metrics), and
// a plain/optimized pair of end-to-end conservative runs on the
// BenchCMBRound workload so the event-count win of simulating the smaller
// netlist shows up as a wall-clock and nulls/run delta.
func Opt() []Benchmark {
	return []Benchmark{
		{"Opt/Pipeline", BenchOptPipeline},
		{"Opt/CMBRound", BenchOptCMBRound},
	}
}

// ConeSplit returns the cone-partition rows: the BenchCMBRound workload
// rerun with whole combinational cones packed per LP and the oblivious
// block sweep armed, on the conservative and hybrid engines. The headline
// is nulls/run versus the stock CMBRound row — cone boundaries coincide
// with sequential boundaries, so almost all synchronization null traffic
// disappears.
func ConeSplit() []Benchmark {
	return []Benchmark{
		{"ConeSplit/CMBRound", BenchConeSplitCMBRound},
		{"ConeSplit/HybridRound", BenchConeSplitHybridRound},
	}
}

// Adapt returns the adaptive-synchronization rows: the E20 low-activity
// workload (the CMBRound circuit at activity 0.1, where the conservative
// protocol is null-bound) run under the two static protocol choices and
// under closed-loop adaptive control starting from the bad one. The
// headline comparison is wall-clock: adaptive must land near the good
// static column despite probing, and the switches/run extra metric
// proves the controller — not luck — got it there.
func Adapt() []Benchmark {
	return []Benchmark{
		{"Adapt/StaticConservative", BenchAdaptStaticConservative},
		{"Adapt/StaticOptimistic", BenchAdaptStaticOptimistic},
		{"Adapt/Adaptive", BenchAdaptAdaptive},
	}
}

// adaptRunFixture is the E20 workload: the CMBRound circuit with the
// activity dialed down to 0.1 — where null traffic dwarfs real events on
// a min-cut partition and the engine choice dominates wall-clock — and
// the stimulus lengthened to 1536 vectors so the run is long enough for
// probe segments to amortize against.
func adaptRunFixture(b *testing.B) *runFixture {
	b.Helper()
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 300, Inputs: 12, Outputs: 8, Locality: 0.6, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 1536, Period: 30, Activity: 0.1, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	return &runFixture{c: c, stim: stim, until: core.Horizon(c, stim)}
}

func benchAdapt(b *testing.B, engine core.Engine, spec *adapt.Spec) {
	fx := adaptRunFixture(b)
	opts := core.Options{
		Engine: engine, LPs: 8, Partition: partition.MethodFM, PartitionSeed: 11,
		System: logic.TwoValued,
	}
	if spec != nil {
		sp := *spec
		// Short probe segments (128 ticks on a ~46k-tick horizon) and a
		// 2-segment budget keep adaptation overhead inside the 10% the
		// E20 acceptance allows over the best static configuration.
		sp.Every = 128
		sp.MaxProbes = 2
		opts.Adapt = &sp
	}
	b.ReportAllocs()
	b.ResetTimer()
	var nulls uint64
	var switches, segments int
	for i := 0; i < b.N; i++ {
		rep, err := core.Simulate(fx.c, fx.stim, fx.until, opts)
		if err != nil {
			b.Fatal(err)
		}
		nulls = rep.Stats.Total().NullsSent
		if rep.Adapt != nil {
			switches = rep.Adapt.EngineSwitches
			segments = rep.Adapt.Segments
		}
	}
	b.ReportMetric(float64(nulls), "nulls/run")
	if spec != nil {
		b.ReportMetric(float64(switches), "switches/run")
		b.ReportMetric(float64(segments), "segments/run")
	}
}

// BenchAdaptStaticConservative is the bad static choice for the
// low-activity workload: the eager-null conservative engine pays its
// per-timestep null synchronization bill regardless of how few real
// events flow.
func BenchAdaptStaticConservative(b *testing.B) {
	benchAdapt(b, core.EngineCMB, nil)
}

// BenchAdaptStaticOptimistic is the good static choice: Time Warp sends
// no nulls, and the low activity produces few stragglers to roll back.
func BenchAdaptStaticOptimistic(b *testing.B) {
	benchAdapt(b, core.EngineTimeWarp, nil)
}

// BenchAdaptAdaptive starts on the bad engine with the closed-loop
// controllers live: the switch supervisor observes the null-bound first
// segment, migrates to Time Warp via checkpoint/restart, and commits.
func BenchAdaptAdaptive(b *testing.B) {
	benchAdapt(b, core.EngineCMB, &adapt.Spec{})
}

// kernelFixture builds a single-LP executor over a mid-sized DAG with two
// alternating input patterns, so every benchmarked Step changes state.
func kernelFixture(b *testing.B) (*kernel.LP, [2][]kernel.Event) {
	b.Helper()
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 400, Inputs: 16, Outputs: 8, Locality: 0.6, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	owner := make([]int, len(c.Gates))
	own := make([]circuit.GateID, len(c.Gates))
	for g := range own {
		own[g] = circuit.GateID(g)
	}
	lp := kernel.New(c, owner, 0, logic.TwoValued, nil, own)
	lp.Schedule = func(circuit.Tick, circuit.GateID, logic.Value) {}
	lp.Send = func(int, circuit.Tick, circuit.GateID, logic.Value) {}
	var evs [2][]kernel.Event
	for i, in := range c.Inputs {
		v := logic.FromBool(i%2 == 0)
		evs[0] = append(evs[0], kernel.Event{Gate: in, Value: v})
		evs[1] = append(evs[1], kernel.Event{Gate: in, Value: logic.Not(v)})
	}
	return lp, evs
}

// BenchKernelStep measures one warm LP timestep (apply + evaluate) with no
// undo logging. The allocation-regression tests pin this at 0 allocs/op.
func BenchKernelStep(b *testing.B) {
	lp, evs := kernelFixture(b)
	var st metrics.LPCounters
	lp.Step(0, evs[0], true, nil, &st)
	b.ReportAllocs()
	b.ResetTimer()
	t := circuit.Tick(1)
	for i := 0; i < b.N; i++ {
		lp.Step(t, evs[i%2], false, nil, &st)
		t++
	}
	b.ReportMetric(float64(st.Evaluations)/float64(b.N), "evals/op")
}

// BenchKernelStepUndo is the same step with incremental state saving into a
// reused undo log — Time Warp's forward-path cost.
func BenchKernelStepUndo(b *testing.B) {
	lp, evs := kernelFixture(b)
	var st metrics.LPCounters
	lp.Step(0, evs[0], true, nil, &st)
	var undo kernel.Undo
	b.ReportAllocs()
	b.ResetTimer()
	t := circuit.Tick(1)
	for i := 0; i < b.N; i++ {
		undo.Reset()
		lp.Step(t, evs[i%2], false, &undo, &st)
		t++
	}
}

// wideKernelFixture is kernelFixture on the 64-lane plane with two
// alternating checkerboard word patterns, so every lane toggles each step.
func wideKernelFixture(b *testing.B) (*kernel.WideLP, [2][]kernel.WideEvent) {
	b.Helper()
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 400, Inputs: 16, Outputs: 8, Locality: 0.6, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	owner := make([]int, len(c.Gates))
	own := make([]circuit.GateID, len(c.Gates))
	for g := range own {
		own[g] = circuit.GateID(g)
	}
	lp := kernel.NewWide(c, owner, 0, logic.TwoValued, nil, own)
	lp.Schedule = func(circuit.Tick, circuit.GateID, logic.Word) {}
	lp.Send = func(int, circuit.Tick, circuit.GateID, logic.Word) {}
	var a logic.Word
	for k := 0; k < logic.Lanes; k++ {
		a.Set(k, logic.FromBool(k%2 == 0))
	}
	n := logic.WideNot(a)
	var evs [2][]kernel.WideEvent
	for i, in := range c.Inputs {
		w0, w1 := a, n
		if i%2 == 1 {
			w0, w1 = n, a
		}
		evs[0] = append(evs[0], kernel.WideEvent{Gate: in, Value: w0})
		evs[1] = append(evs[1], kernel.WideEvent{Gate: in, Value: w1})
	}
	return lp, evs
}

// BenchWideKernelStep measures one warm wide LP timestep: the same apply +
// evaluate loop as BenchKernelStep with every operation processing 64
// lanes. lane-evals/op counts evaluations times lanes — the vector work a
// step retires; ns/op divided by it is the per-vector-evaluation cost the
// wide plane exists to shrink.
func BenchWideKernelStep(b *testing.B) {
	lp, evs := wideKernelFixture(b)
	var st metrics.LPCounters
	lp.Step(0, evs[0], true, nil, &st)
	b.ReportAllocs()
	b.ResetTimer()
	t := circuit.Tick(1)
	for i := 0; i < b.N; i++ {
		lp.Step(t, evs[i%2], false, nil, &st)
		t++
	}
	b.ReportMetric(float64(st.Evaluations)/float64(b.N), "evals/op")
	b.ReportMetric(float64(st.Evaluations)*float64(logic.Lanes)/float64(b.N), "lane-evals/op")
}

// benchVectors measures vector throughput on a fixed 64-lane workload:
// 64 independent random stimuli over a mid-sized DAG. The scalar variant
// simulates the lanes one at a time (64 engine runs per op); the wide
// variant packs them into a single 64-lane run. Both report vectors/s over
// the identical total vector count, so within an engine the wide/scalar
// ratio is the word-parallel speedup.
func benchVectors(b *testing.B, engine core.Engine, wide bool) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 600, Inputs: 12, Outputs: 8, Locality: 0.6, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	ws, stims, err := vectors.RandomBatch(c, vectors.RandomConfig{
		Vectors: 8, Period: 30, Activity: 0.6, Seed: 11,
	}, logic.Lanes, logic.TwoValued)
	if err != nil {
		b.Fatal(err)
	}
	until := core.WideHorizon(c, ws)
	opts := core.Options{
		Engine: engine, LPs: 4, Partition: partition.MethodFM, PartitionSeed: 11,
		System: logic.TwoValued,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var totalVectors float64
	for i := 0; i < b.N; i++ {
		if wide {
			rep, err := core.SimulateWide(c, ws, until, opts)
			if err != nil {
				b.Fatal(err)
			}
			totalVectors = float64(rep.Vectors)
		} else {
			for _, stim := range stims {
				if _, err := core.Simulate(c, stim, until, opts); err != nil {
					b.Fatal(err)
				}
			}
			totalVectors = float64(ws.NumVectors() * ws.Lanes)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(totalVectors*float64(b.N)/sec, "vectors/s")
	}
	b.ReportMetric(totalVectors, "vectors/op")
}

// benchEventqPushPop measures the steady-state pop-one/push-one cycle of a
// pending-event set, including occasional pushes beyond the timing wheel's
// horizon so the overflow promotion path is exercised.
func benchEventqPushPop(b *testing.B, impl eventq.Impl) {
	q := eventq.New[int](impl)
	for i := 0; i < 512; i++ {
		q.Push(uint64(i%61), i)
	}
	// Warm one full wrap so slot/bucket storage reaches steady state.
	for i := 0; i < 4096; i++ {
		t, v, _ := q.PopMin()
		q.Push(t+1+uint64(v%7), v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, v, ok := q.PopMin()
		if !ok {
			b.Fatal("queue drained")
		}
		delta := uint64(1 + v%7)
		if v%97 == 0 {
			delta = 300 // beyond the wheel horizon: overflow then promote
		}
		q.Push(t+delta, v)
	}
}

// cmbFixture is a shared conservative workload: a hot random DAG, an FM
// partition, and a random stimulus, all prebuilt so the benchmark measures
// the run itself.
type runFixture struct {
	c     *circuit.Circuit
	stim  *vectors.Stimulus
	until circuit.Tick
	part  *partition.Partition
}

func newRunFixture(b *testing.B, gates, lps int, method partition.Method, seqCircuit bool) *runFixture {
	b.Helper()
	var (
		c   *circuit.Circuit
		err error
	)
	if seqCircuit {
		c, err = gen.RandomSeq(gen.RandomConfig{Gates: gates, Inputs: 12, Outputs: 8, Locality: 0.6, Seed: 11, FFRatio: 0.15})
	} else {
		c, err = gen.RandomDAG(gen.RandomConfig{Gates: gates, Inputs: 12, Outputs: 8, Locality: 0.6, Seed: 11})
	}
	if err != nil {
		b.Fatal(err)
	}
	var stim *vectors.Stimulus
	if seqCircuit {
		stim, err = vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 12, HalfPeriod: 25, Activity: 0.6, Seed: 11})
	} else {
		stim, err = vectors.Random(c, vectors.RandomConfig{Vectors: 12, Period: 30, Activity: 0.7, Seed: 11})
	}
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.New(method, c, lps, partition.Options{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	return &runFixture{c: c, stim: stim, until: core.Horizon(c, stim), part: part}
}

// BenchCMBRound measures one full conservative (eager-null) run: every
// event, cross-LP message, and null message of the workload. B/op and
// allocs/op here are the conservative engine's per-round garbage bill.
func BenchCMBRound(b *testing.B) {
	fx := newRunFixture(b, 300, 8, partition.MethodFM, false)
	b.ReportAllocs()
	b.ResetTimer()
	var nulls uint64
	for i := 0; i < b.N; i++ {
		res, err := cmb.Run(fx.c, fx.stim, fx.until, cmb.Config{
			Partition: fx.part, Mode: cmb.NullEager, System: logic.TwoValued,
		})
		if err != nil {
			b.Fatal(err)
		}
		nulls = res.Stats.Total().NullsSent
	}
	b.ReportMetric(float64(nulls), "nulls/run")
}

// BenchOptPipeline measures the optimizer pipeline itself (default exact
// passes, run to fixpoint) on the benchEngine netlist. gates-removed/op and
// depth-after are the headline reduction the pipeline buys; ns/op is its
// one-time cost against the per-run savings in the Opt/CMBRound row.
func BenchOptPipeline(b *testing.B) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 1200, Inputs: 24, Outputs: 12, Locality: 0.6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var st opt.Stats
	for i := 0; i < b.N; i++ {
		res, err := opt.Optimize(c, opt.Options{})
		if err != nil {
			b.Fatal(err)
		}
		st = res.Stats
	}
	b.ReportMetric(float64(st.GatesBefore-st.GatesAfter), "gates-removed/op")
	b.ReportMetric(float64(st.LevelsBefore), "depth-before")
	b.ReportMetric(float64(st.LevelsAfter), "depth-after")
}

// BenchOptCMBRound is BenchCMBRound after the optimizer: the identical
// workload, with the netlist optimized (and the stimulus remapped) before
// partitioning. Compare ns/op and nulls/run directly against CMBRound —
// the delta is what simulating the smaller netlist saves every run.
func BenchOptCMBRound(b *testing.B) {
	fx := newRunFixture(b, 300, 8, partition.MethodFM, false)
	ores, err := opt.Optimize(fx.c, opt.Options{})
	if err != nil {
		b.Fatal(err)
	}
	stim, err := ores.Remap.Stimulus(fx.stim)
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.New(partition.MethodFM, ores.Circuit, 8, partition.Options{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var nulls uint64
	for i := 0; i < b.N; i++ {
		res, err := cmb.Run(ores.Circuit, stim, fx.until, cmb.Config{
			Partition: part, Mode: cmb.NullEager, System: logic.TwoValued,
		})
		if err != nil {
			b.Fatal(err)
		}
		nulls = res.Stats.Total().NullsSent
	}
	b.ReportMetric(float64(nulls), "nulls/run")
	b.ReportMetric(float64(ores.Stats.GatesBefore-ores.Stats.GatesAfter), "gates-removed")
}

// BenchConeSplitCMBRound is BenchCMBRound under the cone-split partition
// with the oblivious block sweep armed: whole combinational cones evaluate
// in one levelized pass per timestep and LPs exchange real events only at
// sequential/source boundaries. nulls/run against the stock CMBRound row is
// the null-traffic reduction the cone grouping exists for.
func BenchConeSplitCMBRound(b *testing.B) {
	fx := newRunFixture(b, 300, 8, partition.MethodFM, false)
	part, err := partition.New(partition.MethodConeSplit, fx.c, 8, partition.Options{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var nulls uint64
	for i := 0; i < b.N; i++ {
		res, err := cmb.Run(fx.c, fx.stim, fx.until, cmb.Config{
			Partition: part, Mode: cmb.NullEager, System: logic.TwoValued, Sweep: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		nulls = res.Stats.Total().NullsSent
	}
	b.ReportMetric(float64(nulls), "nulls/run")
	b.ReportMetric(float64(part.Blocks), "lps")
}

// BenchConeSplitHybridRound runs the same workload on the hybrid engine
// with cone clusters: fat oblivious cones inside, optimistic synchronization
// only between sequential frontiers.
func BenchConeSplitHybridRound(b *testing.B) {
	fx := newRunFixture(b, 300, 8, partition.MethodFM, false)
	part, err := partition.New(partition.MethodConeSplit, fx.c, 8, partition.Options{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rollbacks uint64
	for i := 0; i < b.N; i++ {
		res, err := hybrid.Run(fx.c, fx.stim, fx.until, hybrid.Config{
			Partition: part, IntraWorkers: 2, System: logic.TwoValued, Sweep: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		rollbacks = res.Stats.Total().Rollbacks
	}
	b.ReportMetric(float64(rollbacks), "rollbacks/run")
}

// BenchTimeWarpRollback measures a full optimistic run on a clocked
// sequential circuit under a contiguous partition — a deliberately bad cut
// whose stragglers force real rollbacks, so state saving, rollback, and
// cancellation all appear in the per-op allocation bill.
func BenchTimeWarpRollback(b *testing.B) {
	fx := newRunFixture(b, 250, 4, partition.MethodContiguous, true)
	b.ReportAllocs()
	b.ResetTimer()
	var rollbacks, undone uint64
	for i := 0; i < b.N; i++ {
		// GVT every 500µs (vs the 50ms default) so fossil collection — and
		// with it history recycling — runs several times within the run,
		// as it would in any long simulation.
		res, err := timewarp.Run(fx.c, fx.stim, fx.until, timewarp.Config{
			Partition: fx.part, System: logic.TwoValued,
			GVTInterval: 500 * time.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		tot := res.Stats.Total()
		rollbacks = tot.Rollbacks
		undone = tot.EventsRolledBack
	}
	b.ReportMetric(float64(rollbacks), "rollbacks/run")
	b.ReportMetric(float64(undone), "undone/run")
}

// benchEngine measures one end-to-end core.Simulate per iteration.
func benchEngine(b *testing.B, engine core.Engine) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 1200, Inputs: 24, Outputs: 12, Locality: 0.6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 10, Period: 40, Activity: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	until := core.Horizon(c, stim)
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		rep, err := core.Simulate(c, stim, until, core.Options{
			Engine: engine, LPs: 8, Partition: partition.MethodFM, System: logic.TwoValued,
		})
		if err != nil {
			b.Fatal(err)
		}
		if engine == core.EngineSeq {
			events = rep.SeqWork.EventsApplied
		} else if tot := rep.Stats.Total(); tot.EventsApplied > 0 {
			events = tot.EventsApplied
		} else {
			events = tot.Evaluations
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(events)*float64(b.N)/sec, "events/s")
	}
}

// Names returns the suite's benchmark names in order, for documentation
// and the baseline writer.
func Names() []string {
	var out []string
	for _, bm := range All() {
		out = append(out, bm.Name)
	}
	return out
}

var _ = fmt.Sprintf // keep fmt for future use
