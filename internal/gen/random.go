package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
)

// RandomConfig parameterizes RandomDAG and RandomSeq.
type RandomConfig struct {
	// Gates is the number of logic gates to create (primary inputs and
	// output markers are extra).
	Gates int
	// Inputs is the number of primary inputs (>= 1).
	Inputs int
	// Outputs is the number of primary outputs (>= 1); sink gates are
	// preferred as outputs so little logic is dead.
	Outputs int
	// MaxFanin bounds multi-input gate fanin (>= 2; default 4).
	MaxFanin int
	// Layers shapes the DAG depth; 0 derives roughly sqrt(Gates) layers.
	Layers int
	// Locality in [0,1] biases fanin selection toward recent layers; 0 is
	// uniform over all earlier gates, 1 draws almost exclusively from the
	// previous layer. Structure is a primary performance factor in the
	// paper, and this knob varies it continuously.
	Locality float64
	// FFRatio (RandomSeq only) is the fraction of gates that become D
	// flip-flops, giving the circuit sequential feedback.
	FFRatio float64
	Seed    int64
	Delays  DelaySpec
}

// withDefaults validates and fills derived fields.
func (cfg RandomConfig) withDefaults() (RandomConfig, error) {
	if cfg.Gates < 1 {
		return cfg, fmt.Errorf("gen: random circuit needs at least 1 gate")
	}
	if cfg.Inputs < 1 {
		return cfg, fmt.Errorf("gen: random circuit needs at least 1 input")
	}
	if cfg.Outputs < 1 {
		return cfg, fmt.Errorf("gen: random circuit needs at least 1 output")
	}
	if cfg.MaxFanin == 0 {
		cfg.MaxFanin = 4
	}
	if cfg.MaxFanin < 2 {
		return cfg, fmt.Errorf("gen: MaxFanin must be >= 2")
	}
	if cfg.Layers == 0 {
		cfg.Layers = int(math.Sqrt(float64(cfg.Gates)))
		if cfg.Layers < 1 {
			cfg.Layers = 1
		}
	}
	if cfg.Layers > cfg.Gates {
		cfg.Layers = cfg.Gates
	}
	if cfg.Locality < 0 || cfg.Locality > 1 {
		return cfg, fmt.Errorf("gen: Locality %f outside [0,1]", cfg.Locality)
	}
	if cfg.FFRatio < 0 || cfg.FFRatio > 1 {
		return cfg, fmt.Errorf("gen: FFRatio %f outside [0,1]", cfg.FFRatio)
	}
	return cfg, nil
}

// combKinds is the gate-kind palette for random logic, roughly weighted
// like synthesized netlists (NAND/NOR-heavy, occasional XOR).
var combKinds = []circuit.Kind{
	circuit.Nand, circuit.Nand, circuit.Nand,
	circuit.Nor, circuit.Nor,
	circuit.And, circuit.Or,
	circuit.Xor, circuit.Xnor,
	circuit.Not, circuit.Buf,
}

// RandomDAG builds a random layered combinational circuit.
func RandomDAG(cfg RandomConfig) (*circuit.Circuit, error) {
	cfg.FFRatio = 0
	return randomCircuit(cfg, false)
}

// RandomSeq builds a random layered circuit in which a fraction of the
// gates are D flip-flops clocked by a dedicated "clk" input, with feedback
// allowed through the flip-flops. FFRatio defaults to 0.1 when zero.
func RandomSeq(cfg RandomConfig) (*circuit.Circuit, error) {
	if cfg.FFRatio == 0 {
		cfg.FFRatio = 0.1
	}
	return randomCircuit(cfg, true)
}

func randomCircuit(cfg RandomConfig, seq bool) (*circuit.Circuit, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := newGenBuilder(cfg.Delays)

	var clk circuit.GateID
	if seq {
		clk = b.Input("clk")
	}
	inputs := make([]circuit.GateID, cfg.Inputs)
	for i := range inputs {
		inputs[i] = b.Input(fmt.Sprintf("in%d", i))
	}

	// layerOf[i] is the layer of the i-th created logic gate; candidates
	// accumulates (gate, layer) pairs eligible as fanin sources.
	type node struct {
		id    circuit.GateID
		layer int
	}
	candidates := make([]node, 0, cfg.Gates+cfg.Inputs)
	for _, in := range inputs {
		candidates = append(candidates, node{in, 0})
	}

	// pick selects a fanin source from gates at layers < layer, biased by
	// locality toward the most recent layers.
	pick := func(layer int) circuit.GateID {
		// Eligible prefix: all candidates with layer < the target layer.
		// Candidates are appended in layer order, so binary scan suffices.
		hi := len(candidates)
		for hi > 0 && candidates[hi-1].layer >= layer {
			hi--
		}
		if hi == 0 {
			hi = 1 // always at least one input
		}
		if cfg.Locality == 0 {
			return candidates[rng.Intn(hi)].id
		}
		// Exponential recency bias: sample a depth-from-the-end with
		// geometric-ish decay controlled by locality.
		span := float64(hi)
		back := span * math.Pow(rng.Float64(), 1/(1.001-cfg.Locality))
		idx := hi - 1 - int(back)
		if idx < 0 {
			idx = 0
		}
		return candidates[idx].id
	}

	// Distribute gates across layers as evenly as possible.
	perLayer := cfg.Gates / cfg.Layers
	extra := cfg.Gates % cfg.Layers

	type ffPatch struct {
		id circuit.GateID
	}
	var ffs []ffPatch
	var allGates []circuit.GateID

	created := 0
	for layer := 1; layer <= cfg.Layers; layer++ {
		n := perLayer
		if layer <= extra {
			n++
		}
		for k := 0; k < n; k++ {
			name := fmt.Sprintf("g%d", created)
			created++
			if seq && rng.Float64() < cfg.FFRatio {
				// Placeholder fanin; the data input is patched after all
				// gates exist so feedback can reach forward in the DAG.
				id := b.gate(circuit.DFF, name, clk, clk)
				ffs = append(ffs, ffPatch{id})
				candidates = append(candidates, node{id, layer})
				allGates = append(allGates, id)
				continue
			}
			kind := combKinds[rng.Intn(len(combKinds))]
			var fanin []circuit.GateID
			if kind == circuit.Not || kind == circuit.Buf {
				fanin = []circuit.GateID{pick(layer)}
			} else {
				nin := 2 + rng.Intn(cfg.MaxFanin-1)
				fanin = make([]circuit.GateID, nin)
				for i := range fanin {
					fanin[i] = pick(layer)
				}
			}
			id := b.gate(kind, name, fanin...)
			candidates = append(candidates, node{id, layer})
			allGates = append(allGates, id)
		}
	}

	// Patch flip-flop data inputs: uniform over every logic gate (feedback
	// through the register is what makes the circuit sequential).
	for _, ff := range ffs {
		d := allGates[rng.Intn(len(allGates))]
		b.SetFanin(ff.id, []circuit.GateID{d, clk})
	}

	// Outputs: prefer sink gates (nothing reads them) so little of the
	// generated logic is dead; fill up from random gates if needed.
	sinks := sinksOf(b, allGates)
	outs := make([]circuit.GateID, 0, cfg.Outputs)
	outs = append(outs, sinks...)
	for len(outs) < cfg.Outputs {
		outs = append(outs, allGates[rng.Intn(len(allGates))])
	}
	outs = outs[:cfg.Outputs]
	for i, g := range outs {
		b.Output(fmt.Sprintf("out%d", i), g)
	}
	return b.Build()
}

// sinksOf returns the gates in ids that no gate currently consumes.
func sinksOf(b *genBuilder, ids []circuit.GateID) []circuit.GateID {
	consumed := make(map[circuit.GateID]bool)
	for _, id := range ids {
		for _, f := range b.FaninOf(id) {
			consumed[f] = true
		}
	}
	var sinks []circuit.GateID
	for _, id := range ids {
		if !consumed[id] {
			sinks = append(sinks, id)
		}
	}
	return sinks
}
