// Package gen builds parameterized benchmark circuits.
//
// The paper's closing complaint is that the logic-simulation community
// lacks "a benchmark set … with large circuits, at varying levels of
// abstraction, with varying timing granularity"; these generators provide
// a controlled substitute: arithmetic datapaths (ripple and carry-lookahead
// adders, array multipliers), sequential machines (LFSRs, counters, shift
// registers), and random layered DAGs whose size, shape, and delay
// distribution are all dials. Together with the ISCAS .bench reader in
// package bench they span the size sweep Figure 1 needs.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// DelayMode selects how gate delays are assigned, reproducing the paper's
// "timing granularity" factor.
type DelayMode uint8

// Delay assignment modes.
const (
	// DelayUnit gives every gate delay 1 (coarse granularity: maximum
	// event simultaneity).
	DelayUnit DelayMode = iota
	// DelayRandom draws each gate's delay uniformly from [1, Max]
	// (fine granularity: events spread thinly over time).
	DelayRandom
	// DelayByKind assigns fixed per-kind delays loosely modeling relative
	// gate complexity (inverters fast, XORs slow).
	DelayByKind
)

// DelaySpec bundles a delay mode with its parameters.
type DelaySpec struct {
	Mode DelayMode
	// Max is the largest delay DelayRandom may assign; 0 means 10.
	Max circuit.Tick
	// Seed feeds DelayRandom.
	Seed int64
}

// Unit is the default coarse-granularity delay spec.
var Unit = DelaySpec{Mode: DelayUnit}

// Fine returns a fine-granularity random delay spec.
func Fine(max circuit.Tick, seed int64) DelaySpec {
	return DelaySpec{Mode: DelayRandom, Max: max, Seed: seed}
}

// apply assigns delays to every non-source gate of a built circuit's
// builder according to the spec.
type delayer struct {
	spec DelaySpec
	rng  *rand.Rand
}

func newDelayer(spec DelaySpec) *delayer {
	d := &delayer{spec: spec}
	if spec.Mode == DelayRandom {
		max := spec.Max
		if max == 0 {
			max = 10
		}
		d.spec.Max = max
		d.rng = rand.New(rand.NewSource(spec.Seed))
	}
	return d
}

// next returns the delay for a new gate of the given kind.
func (d *delayer) next(kind circuit.Kind) circuit.Tick {
	switch d.spec.Mode {
	case DelayRandom:
		return 1 + circuit.Tick(d.rng.Int63n(int64(d.spec.Max)))
	case DelayByKind:
		switch kind {
		case circuit.Not, circuit.Buf, circuit.Output:
			return 1
		case circuit.And, circuit.Or, circuit.Nand, circuit.Nor:
			return 2
		case circuit.Xor, circuit.Xnor, circuit.Mux2:
			return 3
		case circuit.DFF, circuit.DLatch:
			return 2
		default:
			return 1
		}
	default:
		return 1
	}
}

// genBuilder wraps circuit.Builder with delay assignment and name
// generation helpers shared by the generators.
type genBuilder struct {
	*circuit.Builder
	d *delayer
	n int
}

func newGenBuilder(spec DelaySpec) *genBuilder {
	return &genBuilder{Builder: circuit.NewBuilder(), d: newDelayer(spec)}
}

// gate adds a gate with a spec-assigned delay.
func (b *genBuilder) gate(kind circuit.Kind, name string, fanin ...circuit.GateID) circuit.GateID {
	return b.GateDelay(kind, name, b.d.next(kind), fanin...)
}

// fresh generates a unique internal gate name with the given prefix.
func (b *genBuilder) fresh(prefix string) string {
	b.n++
	return fmt.Sprintf("%s_%d", prefix, b.n)
}

// fullAdder wires a 1-bit full adder and returns (sum, carry).
func (b *genBuilder) fullAdder(tag string, a, c, cin circuit.GateID) (sum, cout circuit.GateID) {
	axb := b.gate(circuit.Xor, tag+"_axb", a, c)
	sum = b.gate(circuit.Xor, tag+"_sum", axb, cin)
	and1 := b.gate(circuit.And, tag+"_and1", a, c)
	and2 := b.gate(circuit.And, tag+"_and2", axb, cin)
	cout = b.gate(circuit.Or, tag+"_cout", and1, and2)
	return sum, cout
}

// RippleAdder builds an n-bit ripple-carry adder: inputs a0..a(n-1),
// b0..b(n-1), cin; outputs s0..s(n-1), cout. Roughly 5n gates with a long
// carry chain — the classic deep, low-parallelism datapath.
func RippleAdder(bits int, spec DelaySpec) (*circuit.Circuit, error) {
	if bits < 1 {
		return nil, fmt.Errorf("gen: RippleAdder: bits must be >= 1")
	}
	b := newGenBuilder(spec)
	as := make([]circuit.GateID, bits)
	bs := make([]circuit.GateID, bits)
	for i := 0; i < bits; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	carry := b.Input("cin")
	for i := 0; i < bits; i++ {
		var sum circuit.GateID
		sum, carry = b.fullAdder(fmt.Sprintf("fa%d", i), as[i], bs[i], carry)
		b.Output(fmt.Sprintf("s%d", i), sum)
	}
	b.Output("cout", carry)
	return b.Build()
}

// CLAAdder builds an n-bit carry-lookahead adder using 4-bit lookahead
// blocks chained at the block level. Wider and shallower than the ripple
// adder: the same function with a very different structure, which is
// exactly the "circuit structure" performance factor the paper calls out.
func CLAAdder(bits int, spec DelaySpec) (*circuit.Circuit, error) {
	if bits < 1 {
		return nil, fmt.Errorf("gen: CLAAdder: bits must be >= 1")
	}
	b := newGenBuilder(spec)
	as := make([]circuit.GateID, bits)
	bs := make([]circuit.GateID, bits)
	for i := 0; i < bits; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	blockCarry := b.Input("cin")
	for lo := 0; lo < bits; lo += 4 {
		hi := lo + 4
		if hi > bits {
			hi = bits
		}
		n := hi - lo
		g := make([]circuit.GateID, n) // generate
		p := make([]circuit.GateID, n) // propagate
		for i := 0; i < n; i++ {
			tag := fmt.Sprintf("cla%d", lo+i)
			g[i] = b.gate(circuit.And, tag+"_g", as[lo+i], bs[lo+i])
			p[i] = b.gate(circuit.Xor, tag+"_p", as[lo+i], bs[lo+i])
		}
		// c[i+1] = g[i] | p[i]&g[i-1] | ... | p[i]&...&p[0]&cin
		carries := make([]circuit.GateID, n+1)
		carries[0] = blockCarry
		for i := 0; i < n; i++ {
			tag := fmt.Sprintf("cla%d_c", lo+i)
			terms := []circuit.GateID{g[i]}
			for j := i; j >= 0; j-- {
				// p[i] & p[i-1] & ... & p[j] & (g[j-1] or cin)
				var ins []circuit.GateID
				for k := j; k <= i; k++ {
					ins = append(ins, p[k])
				}
				if j == 0 {
					ins = append(ins, blockCarry)
				} else {
					ins = append(ins, g[j-1])
				}
				terms = append(terms, b.gate(circuit.And, b.fresh(tag+"_t"), ins...))
			}
			carries[i+1] = b.gate(circuit.Or, tag, terms...)
		}
		for i := 0; i < n; i++ {
			sum := b.gate(circuit.Xor, fmt.Sprintf("cla%d_s", lo+i), p[i], carries[i])
			b.Output(fmt.Sprintf("s%d", lo+i), sum)
		}
		blockCarry = carries[n]
	}
	b.Output("cout", blockCarry)
	return b.Build()
}

// ArrayMultiplier builds an n x n unsigned array multiplier: inputs
// a0..a(n-1) and b0..b(n-1), outputs p0..p(2n-1). About 6n^2 gates, the
// workhorse of the Figure 1 size sweep.
func ArrayMultiplier(bits int, spec DelaySpec) (*circuit.Circuit, error) {
	if bits < 1 {
		return nil, fmt.Errorf("gen: ArrayMultiplier: bits must be >= 1")
	}
	b := newGenBuilder(spec)
	as := make([]circuit.GateID, bits)
	bs := make([]circuit.GateID, bits)
	for i := 0; i < bits; i++ {
		as[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < bits; i++ {
		bs[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	// Partial products pp[i][j] = a[j] & b[i], weight i+j.
	pp := make([][]circuit.GateID, bits)
	for i := 0; i < bits; i++ {
		pp[i] = make([]circuit.GateID, bits)
		for j := 0; j < bits; j++ {
			pp[i][j] = b.gate(circuit.And, fmt.Sprintf("pp%d_%d", i, j), as[j], bs[i])
		}
	}
	// Row-by-row shift-add reduction. Before row i, acc holds the running
	// sum bits of weights i .. i+len(acc)-1; row i adds pp[i] (weights
	// i .. i+bits-1), the weight-i bit becomes final output p_i, and the
	// rest (plus the row carry) becomes the next accumulator.
	b.Output("p0", pp[0][0])
	acc := pp[0][1:]
	for i := 1; i < bits; i++ {
		next := make([]circuit.GateID, 0, bits+1)
		carry := circuit.GateID(-1)
		for j := 0; j < bits; j++ {
			tag := fmt.Sprintf("m%d_%d", i, j)
			a := pp[i][j]
			bbit := circuit.GateID(-1)
			if j < len(acc) {
				bbit = acc[j]
			}
			switch {
			case bbit >= 0 && carry >= 0:
				var s circuit.GateID
				s, carry = b.fullAdder(tag, a, bbit, carry)
				next = append(next, s)
			case bbit >= 0:
				s := b.gate(circuit.Xor, tag+"_s", a, bbit)
				carry = b.gate(circuit.And, tag+"_c", a, bbit)
				next = append(next, s)
			case carry >= 0:
				s := b.gate(circuit.Xor, tag+"_s", a, carry)
				carry = b.gate(circuit.And, tag+"_c", a, carry)
				next = append(next, s)
			default:
				next = append(next, a)
			}
		}
		if carry >= 0 {
			next = append(next, carry)
		}
		b.Output(fmt.Sprintf("p%d", i), next[0])
		acc = next[1:]
	}
	// Remaining accumulator bits are the top product bits p_bits..p_{2n-1}.
	for j := 0; j < len(acc); j++ {
		b.Output(fmt.Sprintf("p%d", bits+j), acc[j])
	}
	// A 1-bit multiplier has no accumulator left; pad the top bit with 0.
	for j := len(acc); j < bits; j++ {
		g := b.Const(b.fresh("zero"), logic.Zero)
		b.Output(fmt.Sprintf("p%d", bits+j), g)
	}
	return b.Build()
}

// LFSR builds an n-bit Fibonacci linear feedback shift register with the
// given tap positions (bit indices XORed into the feedback; if empty, taps
// default to {0, n-1}). Inputs: clk, rst (synchronous reset loads 1 into
// bit 0). Outputs: q0..q(n-1). A maximal-activity sequential workload.
func LFSR(bits int, taps []int, spec DelaySpec) (*circuit.Circuit, error) {
	if bits < 2 {
		return nil, fmt.Errorf("gen: LFSR: bits must be >= 2")
	}
	if len(taps) == 0 {
		taps = []int{0, bits - 1}
	}
	for _, t := range taps {
		if t < 0 || t >= bits {
			return nil, fmt.Errorf("gen: LFSR: tap %d out of range", t)
		}
	}
	b := newGenBuilder(spec)
	clk := b.Input("clk")
	rst := b.Input("rst")
	// Declare the flip-flops first (they form the feedback loop), then wire
	// fanins. The builder allows patching fanin before Build.
	ffs := make([]circuit.GateID, bits)
	for i := 0; i < bits; i++ {
		ffs[i] = b.gate(circuit.DFF, fmt.Sprintf("q%d", i), clk, clk) // placeholder fanin
	}
	// Feedback = XOR of taps.
	tapIDs := make([]circuit.GateID, len(taps))
	for i, t := range taps {
		tapIDs[i] = ffs[t]
	}
	fb := b.gate(circuit.Xor, "fb", tapIDs...)
	nrst := b.gate(circuit.Not, "nrst", rst)
	// d0 = (fb & !rst) | rst  -> loads 1 on reset.
	d0a := b.gate(circuit.And, "d0_and", fb, nrst)
	d0 := b.gate(circuit.Or, "d0", d0a, rst)
	b.SetFanin(ffs[0], []circuit.GateID{d0, clk})
	for i := 1; i < bits; i++ {
		// di = q(i-1) & !rst (reset clears the rest of the register).
		di := b.gate(circuit.And, fmt.Sprintf("d%d", i), ffs[i-1], nrst)
		b.SetFanin(ffs[i], []circuit.GateID{di, clk})
	}
	for i := 0; i < bits; i++ {
		b.Output(fmt.Sprintf("out%d", i), ffs[i])
	}
	return b.Build()
}

// Counter builds an n-bit synchronous binary counter with enable. Inputs:
// clk, en. Outputs: q0..q(n-1). Activity decays geometrically with bit
// position, making it a natural low-activity sequential workload.
func Counter(bits int, spec DelaySpec) (*circuit.Circuit, error) {
	if bits < 1 {
		return nil, fmt.Errorf("gen: Counter: bits must be >= 1")
	}
	b := newGenBuilder(spec)
	clk := b.Input("clk")
	en := b.Input("en")
	ffs := make([]circuit.GateID, bits)
	for i := 0; i < bits; i++ {
		ffs[i] = b.gate(circuit.DFF, fmt.Sprintf("q%d", i), clk, clk) // placeholder
	}
	carry := en
	for i := 0; i < bits; i++ {
		d := b.gate(circuit.Xor, fmt.Sprintf("d%d", i), ffs[i], carry)
		b.SetFanin(ffs[i], []circuit.GateID{d, clk})
		if i+1 < bits {
			carry = b.gate(circuit.And, fmt.Sprintf("c%d", i), carry, ffs[i])
		}
		b.Output(fmt.Sprintf("out%d", i), ffs[i])
	}
	return b.Build()
}

// ShiftRegister builds an n-stage shift register: inputs clk, d; outputs
// q(n-1) (and optionally all stages). The minimal sequential pipeline.
func ShiftRegister(stages int, spec DelaySpec) (*circuit.Circuit, error) {
	if stages < 1 {
		return nil, fmt.Errorf("gen: ShiftRegister: stages must be >= 1")
	}
	b := newGenBuilder(spec)
	clk := b.Input("clk")
	d := b.Input("d")
	prev := d
	for i := 0; i < stages; i++ {
		prev = b.gate(circuit.DFF, fmt.Sprintf("q%d", i), prev, clk)
	}
	b.Output("out", prev)
	return b.Build()
}
