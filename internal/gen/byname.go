package gen

import (
	"fmt"
	"regexp"
	"strconv"

	"repro/internal/bench"
	"repro/internal/circuit"
)

// nameRe splits a circuit family name from its size parameter.
var nameRe = regexp.MustCompile(`^([a-z]+)(\d+)$`)

// ByName builds a circuit from a compact textual name, the vocabulary the
// command-line tools share: the embedded ISCAS netlists ("c17", "s27") or
// a parameterized generator ("mul16", "ripple32", "cla24", "lfsr16",
// "counter12", "shift64", "dag5000", "seq2000").
func ByName(name string, delays DelaySpec, seed int64) (*circuit.Circuit, error) {
	switch name {
	case "c17":
		return bench.MustC17(), nil
	case "s27":
		return bench.MustS27(), nil
	}
	m := nameRe.FindStringSubmatch(name)
	if m == nil {
		return nil, fmt.Errorf("gen: unknown circuit %q (want c17, s27, or <family><size>)", name)
	}
	n, err := strconv.Atoi(m[2])
	if err != nil {
		return nil, fmt.Errorf("gen: circuit %q: %v", name, err)
	}
	switch m[1] {
	case "mul":
		return ArrayMultiplier(n, delays)
	case "ripple":
		return RippleAdder(n, delays)
	case "cla":
		return CLAAdder(n, delays)
	case "lfsr":
		return LFSR(n, nil, delays)
	case "counter":
		return Counter(n, delays)
	case "shift":
		return ShiftRegister(n, delays)
	case "dag":
		return RandomDAG(RandomConfig{
			Gates: n, Inputs: 8 + n/64, Outputs: 4 + n/128,
			Locality: 0.6, Seed: seed, Delays: delays,
		})
	case "seq":
		return RandomSeq(RandomConfig{
			Gates: n, Inputs: 8 + n/64, Outputs: 4 + n/128,
			Locality: 0.6, Seed: seed, Delays: delays, FFRatio: 0.12,
		})
	}
	return nil, fmt.Errorf("gen: unknown circuit family %q", m[1])
}
