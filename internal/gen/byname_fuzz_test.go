package gen

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/circuit"
)

// FuzzGenByName asserts ByName's contract over arbitrary spec strings:
// either a clean error, or a circuit that satisfies every structural
// invariant the engines rely on — no panics, no combinational cycles
// (Levelize succeeds), positive delays (CheckEventDriven), and in-range
// fanin/fanout wiring.
func FuzzGenByName(f *testing.F) {
	for _, seed := range []string{
		"c17", "s27",
		"mul4", "ripple8", "cla6", "lfsr8", "counter5", "shift16", "dag150", "seq200",
		"mul0", "ripple1", "lfsr1", "counter0", "dag1", "seq2",
		"", "c17x", "mul", "17", "mul-4", "mul4x", "MUL4", "dag999999999999999999",
		"ripple08", "zzz12", "c018", "müller4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		// Cap the generator size: huge but well-formed specs ("dag900000")
		// are legitimate requests, just too slow for a fuzz iteration.
		if m := nameRe.FindStringSubmatch(name); m != nil {
			if n, err := strconv.Atoi(m[2]); err == nil && n > 2000 {
				t.Skip("size beyond fuzz budget")
			}
		}
		c, err := ByName(name, Unit, 1)
		if err != nil {
			if c != nil {
				t.Fatalf("ByName(%q) returned both a circuit and error %v", name, err)
			}
			if msg := err.Error(); !strings.HasPrefix(msg, "gen: ") && !strings.HasPrefix(msg, "circuit: ") {
				t.Errorf("ByName(%q) error lacks package prefix: %q", name, msg)
			}
			return
		}
		if c == nil {
			t.Fatalf("ByName(%q) returned nil circuit without error", name)
		}
		if c.NumGates() == 0 {
			t.Fatalf("ByName(%q) built an empty circuit", name)
		}
		if len(c.Inputs) == 0 || len(c.Outputs) == 0 {
			t.Fatalf("ByName(%q): %d inputs, %d outputs", name, len(c.Inputs), len(c.Outputs))
		}
		if err := c.CheckEventDriven(); err != nil {
			t.Fatalf("ByName(%q) with unit delays: %v", name, err)
		}
		// No combinational cycles: levelization of the combinational part
		// must succeed.
		if _, err := c.Levelize(); err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		// Wiring invariants: fanin in range, fanout consistent with fanin.
		for id := range c.Gates {
			for _, fi := range c.Gates[id].Fanin {
				if fi < 0 || int(fi) >= c.NumGates() {
					t.Fatalf("ByName(%q): gate %d fanin %d out of range", name, id, fi)
				}
				found := false
				for _, out := range c.Fanout[fi] {
					if out == circuit.GateID(id) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("ByName(%q): gate %d consumes %d but is missing from its fanout", name, id, fi)
				}
			}
		}
	})
}
