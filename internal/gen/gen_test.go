package gen_test

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/simtest"
)

// addInputs builds the assignment for an adder.
func addInputs(bits int, a, b uint64, cin bool) map[string]logic.Value {
	m := map[string]logic.Value{"cin": logic.FromBool(cin)}
	simtest.BusAssign(m, "a", bits, a)
	simtest.BusAssign(m, "b", bits, b)
	return m
}

func testAdder(t *testing.T, name string, build func(int, gen.DelaySpec) (*circuit.Circuit, error), spec gen.DelaySpec) {
	t.Helper()
	const bits = 8
	c, err := build(bits, spec)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		a := rng.Uint64() & 0xFF
		b := rng.Uint64() & 0xFF
		cin := rng.Intn(2) == 1
		vals, err := simtest.Settle(c, addInputs(bits, a, b, cin))
		if err != nil {
			t.Fatalf("%s settle: %v", name, err)
		}
		sum, err := simtest.BusValue(c, vals, "s", bits)
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		coutID, _ := c.ByName("cout")
		coutBit, ok := vals[coutID].Bool()
		if !ok {
			t.Fatalf("%s: cout undriven", name)
		}
		want := a + b
		if cin {
			want++
		}
		got := sum
		if coutBit {
			got |= 1 << bits
		}
		if got != want {
			t.Fatalf("%s: %d + %d + %v = %d, want %d", name, a, b, cin, got, want)
		}
	}
}

func TestRippleAdderArithmetic(t *testing.T) {
	testAdder(t, "ripple-unit", gen.RippleAdder, gen.Unit)
	testAdder(t, "ripple-fine", gen.RippleAdder, gen.Fine(9, 3))
	testAdder(t, "ripple-bykind", gen.RippleAdder, gen.DelaySpec{Mode: gen.DelayByKind})
}

func TestCLAAdderArithmetic(t *testing.T) {
	testAdder(t, "cla-unit", gen.CLAAdder, gen.Unit)
	testAdder(t, "cla-fine", gen.CLAAdder, gen.Fine(6, 5))
}

func TestCLAAdderOddWidth(t *testing.T) {
	// Widths that are not multiples of the 4-bit block size.
	for _, bits := range []int{1, 3, 5, 7, 13} {
		c, err := gen.CLAAdder(bits, gen.Unit)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		mask := uint64(1)<<bits - 1
		vals, err := simtest.Settle(c, addInputs(bits, mask, 1, false))
		if err != nil {
			t.Fatalf("bits=%d settle: %v", bits, err)
		}
		sum, err := simtest.BusValue(c, vals, "s", bits)
		if err != nil {
			t.Fatal(err)
		}
		if sum != 0 {
			t.Fatalf("bits=%d: max+1 sum = %d, want 0 with carry", bits, sum)
		}
		coutID, _ := c.ByName("cout")
		if b, _ := vals[coutID].Bool(); !b {
			t.Fatalf("bits=%d: carry not set", bits)
		}
	}
}

func TestArrayMultiplierArithmetic(t *testing.T) {
	for _, bits := range []int{1, 2, 4, 6} {
		c, err := gen.ArrayMultiplier(bits, gen.Unit)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		rng := rand.New(rand.NewSource(int64(bits)))
		trials := 20
		if bits <= 2 {
			trials = 1 << (2 * bits) // exhaustive for tiny widths
		}
		for trial := 0; trial < trials; trial++ {
			var a, b uint64
			if bits <= 2 {
				a = uint64(trial) & (1<<bits - 1)
				b = uint64(trial) >> bits
			} else {
				a = rng.Uint64() & (1<<bits - 1)
				b = rng.Uint64() & (1<<bits - 1)
			}
			m := map[string]logic.Value{}
			simtest.BusAssign(m, "a", bits, a)
			simtest.BusAssign(m, "b", bits, b)
			vals, err := simtest.Settle(c, m)
			if err != nil {
				t.Fatalf("bits=%d settle: %v", bits, err)
			}
			p, err := simtest.BusValue(c, vals, "p", 2*bits)
			if err != nil {
				t.Fatalf("bits=%d decode: %v", bits, err)
			}
			if p != a*b {
				t.Fatalf("bits=%d: %d * %d = %d, want %d", bits, a, b, p, a*b)
			}
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := gen.RippleAdder(0, gen.Unit); err == nil {
		t.Error("RippleAdder(0) accepted")
	}
	if _, err := gen.CLAAdder(0, gen.Unit); err == nil {
		t.Error("CLAAdder(0) accepted")
	}
	if _, err := gen.ArrayMultiplier(0, gen.Unit); err == nil {
		t.Error("ArrayMultiplier(0) accepted")
	}
	if _, err := gen.LFSR(1, nil, gen.Unit); err == nil {
		t.Error("LFSR(1) accepted")
	}
	if _, err := gen.LFSR(4, []int{9}, gen.Unit); err == nil {
		t.Error("LFSR bad tap accepted")
	}
	if _, err := gen.Counter(0, gen.Unit); err == nil {
		t.Error("Counter(0) accepted")
	}
	if _, err := gen.ShiftRegister(0, gen.Unit); err == nil {
		t.Error("ShiftRegister(0) accepted")
	}
	if _, err := gen.RandomDAG(gen.RandomConfig{Gates: 0, Inputs: 1, Outputs: 1}); err == nil {
		t.Error("RandomDAG with 0 gates accepted")
	}
	if _, err := gen.RandomDAG(gen.RandomConfig{Gates: 5, Inputs: 1, Outputs: 1, MaxFanin: 1}); err == nil {
		t.Error("MaxFanin 1 accepted")
	}
	if _, err := gen.RandomDAG(gen.RandomConfig{Gates: 5, Inputs: 1, Outputs: 1, Locality: 2}); err == nil {
		t.Error("Locality 2 accepted")
	}
	if _, err := gen.RandomSeq(gen.RandomConfig{Gates: 5, Inputs: 1, Outputs: 1, FFRatio: -1}); err == nil {
		t.Error("FFRatio -1 accepted")
	}
}

func TestRandomDAGStructure(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := gen.RandomConfig{
			Gates: 200, Inputs: 10, Outputs: 5, Seed: seed,
			Locality: float64(seed) / 8,
		}
		c, err := gen.RandomDAG(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(c.Inputs) != cfg.Inputs || len(c.Outputs) != cfg.Outputs {
			t.Fatalf("seed %d: io = %d/%d", seed, len(c.Inputs), len(c.Outputs))
		}
		// Build already rejects combinational cycles; also levelizable.
		if _, err := c.Levelize(); err != nil {
			t.Fatalf("seed %d: levelize: %v", seed, err)
		}
		st := c.ComputeStats()
		if st.FlipFlops != 0 {
			t.Fatalf("seed %d: DAG contains flip-flops", seed)
		}
		if st.Gates < cfg.Gates {
			t.Fatalf("seed %d: only %d gates", seed, st.Gates)
		}
		if err := c.CheckEventDriven(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomSeqStructure(t *testing.T) {
	c, err := gen.RandomSeq(gen.RandomConfig{Gates: 400, Inputs: 8, Outputs: 4, Seed: 11, FFRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	st := c.ComputeStats()
	if st.FlipFlops == 0 {
		t.Fatal("RandomSeq produced no flip-flops")
	}
	if _, ok := c.ByName("clk"); !ok {
		t.Fatal("RandomSeq has no clk input")
	}
	// Every DFF's clock pin must be the clk input.
	clk, _ := c.ByName("clk")
	for id := range c.Gates {
		g := c.Gate(circuit.GateID(id))
		if g.Kind == circuit.DFF && g.Fanin[1] != clk {
			t.Fatalf("DFF %q clocked by %d, not clk", g.Name, g.Fanin[1])
		}
	}
}

func TestRandomDAGDeterminism(t *testing.T) {
	cfg := gen.RandomConfig{Gates: 100, Inputs: 6, Outputs: 4, Seed: 77}
	c1, err := gen.RandomDAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := gen.RandomDAG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c1.NumGates() != c2.NumGates() {
		t.Fatal("same seed produced different circuits")
	}
	for i := range c1.Gates {
		g1, g2 := c1.Gates[i], c2.Gates[i]
		if g1.Kind != g2.Kind || g1.Name != g2.Name || g1.Delay != g2.Delay || len(g1.Fanin) != len(g2.Fanin) {
			t.Fatalf("gate %d differs between identical seeds", i)
		}
	}
}

func TestDelaySpecs(t *testing.T) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 150, Inputs: 6, Outputs: 3, Seed: 5, Delays: gen.Fine(12, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxDelay() < 2 {
		t.Fatal("fine delays produced no delay > 1")
	}
	if c.MinDelay() < 1 {
		t.Fatal("fine delays produced zero delay")
	}
	cu, err := gen.RandomDAG(gen.RandomConfig{Gates: 150, Inputs: 6, Outputs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cu.MaxDelay() != 1 {
		t.Fatal("unit delays produced delay > 1")
	}
}

func TestCounterCounts(t *testing.T) {
	// Drive 10 clock cycles with enable high and check the counter reads 10.
	c, err := gen.Counter(5, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	// Settle-based approach does not toggle clocks, so simulate via the
	// corpus path instead: handled in the seq engine tests.
	_ = c
}

func TestShiftRegisterStructure(t *testing.T) {
	c, err := gen.ShiftRegister(10, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	st := c.ComputeStats()
	if st.FlipFlops != 10 {
		t.Fatalf("ShiftRegister(10) has %d FFs", st.FlipFlops)
	}
}

func TestStandardCorpusBuilds(t *testing.T) {
	corpus, err := simtest.StandardCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 8 {
		t.Fatalf("corpus too small: %d", len(corpus))
	}
	for _, cs := range corpus {
		if err := cs.Stim.Validate(cs.C); err != nil {
			t.Errorf("%s: %v", cs.Name, err)
		}
		if err := cs.C.CheckEventDriven(); err != nil {
			t.Errorf("%s: %v", cs.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	cases := []struct {
		name  string
		gates int // minimum expected gate count
	}{
		{"c17", 10}, {"s27", 15}, {"mul4", 50}, {"ripple8", 40},
		{"cla8", 60}, {"lfsr8", 20}, {"counter4", 10}, {"shift16", 16},
		{"dag300", 300}, {"seq200", 200},
	}
	for _, cs := range cases {
		c, err := gen.ByName(cs.name, gen.Unit, 1)
		if err != nil {
			t.Fatalf("%s: %v", cs.name, err)
		}
		if c.NumGates() < cs.gates {
			t.Fatalf("%s: %d gates, want >= %d", cs.name, c.NumGates(), cs.gates)
		}
	}
	for _, bad := range []string{"", "frob", "mul", "12", "dag-5", "mulx4", "mul999999999999999999999"} {
		if _, err := gen.ByName(bad, gen.Unit, 1); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	// Fine delays propagate.
	c, err := gen.ByName("dag200", gen.Fine(9, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxDelay() < 2 {
		t.Fatal("fine delays not applied through ByName")
	}
}
