package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/supervise"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// workload builds the shared test circuit and stimulus.
func workload(t *testing.T) (*circuit.Circuit, *vectors.Stimulus, circuit.Tick) {
	t.Helper()
	c, err := gen.RandomSeq(gen.RandomConfig{Gates: 250, Inputs: 8, Outputs: 6, Seed: 3, FFRatio: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 12, HalfPeriod: 60, Activity: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return c, stim, Horizon(c, stim)
}

func golden(t *testing.T, c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick) *Report {
	t.Helper()
	base, err := Simulate(c, stim, until, Options{Engine: EngineSeq, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	return base
}

// TestCheckpointRestoreAllEngines writes checkpoints from a run, then
// resumes every event-driven engine from a mid-run snapshot and requires
// the spliced waveform to be bit-identical to the uninterrupted golden run.
func TestCheckpointRestoreAllEngines(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)

	dir := t.TempDir()
	if _, err := Simulate(c, stim, until, Options{
		Engine: EngineSeq, System: logic.TwoValued,
		CheckpointEvery: 200, CheckpointDir: dir,
	}); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.json"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no checkpoints written (err=%v)", err)
	}
	sort.Strings(names)
	mid := names[len(names)/2]
	st, err := ckpt.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	if st.Time == 0 || circuit.Tick(st.Time) >= until {
		t.Fatalf("mid checkpoint at t=%d is not mid-run (until=%d)", st.Time, until)
	}

	for _, e := range Engines() {
		if e == EngineOblivious {
			continue
		}
		rep, err := Simulate(c, stim, until, Options{
			Engine: e, LPs: 4, Partition: partition.MethodFM, System: logic.TwoValued,
			Restore: st,
		})
		if err != nil {
			t.Fatalf("%v restore: %v", e, err)
		}
		if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
			t.Fatalf("%v: restored waveform differs from uninterrupted run:\n%s", e, d)
		}
		for g := range base.Values {
			if base.Values[g] != rep.Values[g] {
				t.Fatalf("%v: restored final value mismatch at gate %d", e, g)
			}
		}
		if rep.EndTime != base.EndTime {
			t.Fatalf("%v: restored EndTime %d, want %d", e, rep.EndTime, base.EndTime)
		}
	}

	// Restoring into the oblivious engine is rejected, not silently wrong.
	if _, err := Simulate(c, stim, until, Options{Engine: EngineOblivious, System: logic.TwoValued, Restore: st}); err == nil {
		t.Fatal("oblivious restore accepted")
	}
}

// TestCheckpointedRunKeepsCheckpointingAfterRestore resumes from one
// snapshot while writing new snapshots, and requires the post-boundary
// snapshots of the resumed run to match the originals.
func TestCheckpointedRunKeepsCheckpointingAfterRestore(t *testing.T) {
	c, stim, until := workload(t)
	dir1 := t.TempDir()
	if _, err := Simulate(c, stim, until, Options{
		Engine: EngineSeq, System: logic.TwoValued, CheckpointEvery: 200, CheckpointDir: dir1,
	}); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir1, "ckpt-*.json"))
	sort.Strings(names)
	if len(names) < 2 {
		t.Fatalf("need >= 2 checkpoints, got %d", len(names))
	}
	st, err := ckpt.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if _, err := Simulate(c, stim, until, Options{
		Engine: EngineSeq, System: logic.TwoValued, Restore: st,
		CheckpointEvery: 200, CheckpointDir: dir2,
	}); err != nil {
		t.Fatal(err)
	}
	for _, orig := range names[1:] {
		resumed := filepath.Join(dir2, filepath.Base(orig))
		a, err := os.ReadFile(orig)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(resumed)
		if err != nil {
			t.Fatalf("resumed run did not write %s: %v", filepath.Base(orig), err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: resumed checkpoint differs from original", filepath.Base(orig))
		}
	}
}

// TestSupervisedHangFallsBack injects a permanent LP stall into the
// asynchronous engines and requires the supervisor to complete the run via
// watchdog-triggered fallback, with the waveform equal to the golden run.
func TestSupervisedHangFallsBack(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)
	for _, e := range []Engine{EngineCMB, EngineTimeWarp} {
		t.Run(e.String(), func(t *testing.T) {
			hook := inject.NewHook(1, nil)
			hook.HangLP = 1
			rep, err := Simulate(c, stim, until, Options{
				Engine: e, LPs: 4, Partition: partition.MethodFM, System: logic.TwoValued,
				Chaos: hook,
				Supervise: &SuperviseOptions{
					Watchdog: 250 * time.Millisecond,
					Retries:  0,
					Fallback: true,
				},
			})
			if err != nil {
				t.Fatalf("supervised run failed outright: %v", err)
			}
			if rep.Supervision == nil || rep.Supervision.Fallbacks < 1 {
				t.Fatalf("no fallback recorded: %+v", rep.Supervision)
			}
			if rep.Supervision.FinalEngine == e {
				t.Fatalf("hung engine %v reported as final", e)
			}
			if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
				t.Fatalf("degraded waveform differs from golden:\n%s", d)
			}
			if rep.Metrics == nil || rep.Metrics.Gauges["supervise_fallbacks"] < 1 {
				t.Fatalf("supervise_fallbacks gauge missing: %+v", rep.Metrics)
			}
			// The failed attempt must be classified as a hang.
			if len(rep.Supervision.Attempts) == 0 || !strings.Contains(rep.Supervision.Attempts[0], "hang") {
				t.Fatalf("hang attempt not recorded: %v", rep.Supervision.Attempts)
			}
		})
	}
}

// TestSupervisedPanicRetries injects a one-shot panic; the supervisor must
// recover it by retrying the same engine, no fallback needed.
func TestSupervisedPanicRetries(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)
	for _, e := range []Engine{EngineCMB, EngineTimeWarp} {
		t.Run(e.String(), func(t *testing.T) {
			hook := inject.NewHook(1, nil)
			hook.PanicLP = 1
			rep, err := Simulate(c, stim, until, Options{
				Engine: e, LPs: 4, Partition: partition.MethodFM, System: logic.TwoValued,
				Chaos: hook,
				Supervise: &SuperviseOptions{
					Retries:  2,
					Fallback: false,
				},
			})
			if err != nil {
				t.Fatalf("supervised run failed outright: %v", err)
			}
			if rep.Supervision == nil || rep.Supervision.Recoveries != 1 || rep.Supervision.Fallbacks != 0 {
				t.Fatalf("expected exactly one retry recovery: %+v", rep.Supervision)
			}
			if rep.Supervision.FinalEngine != e {
				t.Fatalf("final engine %v, want %v", rep.Supervision.FinalEngine, e)
			}
			if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
				t.Fatalf("recovered waveform differs from golden:\n%s", d)
			}
			if rep.Metrics == nil || rep.Metrics.Gauges["supervise_recoveries"] != 1 {
				t.Fatalf("supervise_recoveries gauge wrong: %+v", rep.Metrics)
			}
		})
	}
}

// TestSupervisedEventLimitNotRetried: the runaway guard is deterministic,
// so the supervisor must fail fast instead of burning retries.
func TestSupervisedEventLimitNotRetried(t *testing.T) {
	c, stim, until := workload(t)
	begin := time.Now()
	_, err := Simulate(c, stim, until, Options{
		Engine: EngineCMB, LPs: 4, Partition: partition.MethodFM, System: logic.TwoValued,
		MaxEvents: 10,
		Supervise: &SuperviseOptions{Retries: 5, Backoff: time.Second, Fallback: true},
	})
	if err == nil {
		t.Fatal("event limit did not surface")
	}
	var se *SimError
	if !errors.As(err, &se) || se.Kind != KindEventLimit {
		t.Fatalf("expected KindEventLimit, got %v", err)
	}
	// Five retries with 1s backoff would take >= 5s; failing fast proves
	// no retry happened.
	if time.Since(begin) > 3*time.Second {
		t.Fatal("event limit appears to have been retried")
	}
}

// TestUnsupervisedHangReport arms only the watchdog (no fallback) and
// checks the machine-readable hang report surfaces with per-LP state.
func TestUnsupervisedHangReport(t *testing.T) {
	c, stim, until := workload(t)
	hook := inject.NewHook(1, nil)
	hook.HangLP = 0
	_, err := Simulate(c, stim, until, Options{
		Engine: EngineCMB, LPs: 4, Partition: partition.MethodFM, System: logic.TwoValued,
		Chaos: hook,
		Supervise: &SuperviseOptions{
			Watchdog: 250 * time.Millisecond,
			Retries:  0,
			Fallback: false,
		},
	})
	if err == nil {
		t.Fatal("hung run reported success")
	}
	var se *SimError
	if !errors.As(err, &se) || se.Kind != KindHang {
		t.Fatalf("expected KindHang, got %v", err)
	}
	var hr *supervise.HangReport
	if !errors.As(err, &hr) {
		t.Fatalf("no hang report in %v", err)
	}
	if hr.Engine != "cmb" || len(hr.LPs) != 4 {
		t.Fatalf("report wrong: %+v", hr)
	}
	// The report must round-trip as JSON (machine readability).
	msg := err.Error()
	idx := strings.Index(msg, "{")
	if idx < 0 {
		t.Fatalf("no JSON body in %q", msg)
	}
	var decoded supervise.HangReport
	if jerr := json.Unmarshal([]byte(msg[idx:]), &decoded); jerr != nil {
		t.Fatalf("hang report does not parse: %v", jerr)
	}
}

// TestSupervisedCleanRunUntouched: supervision of a healthy run must not
// change its result or record recoveries.
func TestSupervisedCleanRunUntouched(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)
	for _, e := range Engines() {
		rep, err := Simulate(c, stim, until, Options{
			Engine: e, LPs: 4, Partition: partition.MethodFM, System: logic.TwoValued,
			Supervise: &SuperviseOptions{Watchdog: 2 * time.Second, Retries: 1, Fallback: true},
		})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if rep.Supervision.Recoveries != 0 || rep.Supervision.Fallbacks != 0 {
			t.Fatalf("%v: clean run recorded recoveries: %+v", e, rep.Supervision)
		}
		if e != EngineOblivious {
			if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
				t.Fatalf("%v: supervised waveform differs:\n%s", e, d)
			}
		}
	}
}

// TestHistoryLimitThrottles bounds Time Warp history memory and requires
// the run to still reproduce the golden waveform while reporting throttle
// activity.
func TestHistoryLimitThrottles(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)
	rep, err := Simulate(c, stim, until, Options{
		Engine: EngineTimeWarp, LPs: 4, Partition: partition.MethodFM, System: logic.TwoValued,
		HistoryLimit: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
		t.Fatalf("throttled waveform differs from golden:\n%s", d)
	}
	if rep.Metrics == nil {
		t.Fatal("no metrics report")
	}
	if rep.Metrics.Gauges["history_peak_words"] <= 0 {
		t.Fatalf("history accounting inert: gauges=%v", rep.Metrics.Gauges)
	}
	if rep.Metrics.Gauges["mem_throttle_rounds"] < 1 {
		t.Fatalf("tiny limit never throttled: gauges=%v", rep.Metrics.Gauges)
	}
}
