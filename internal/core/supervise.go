package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/seq"
	"repro/internal/stats"
	"repro/internal/vectors"
)

// Simulate runs the selected engine on the circuit and stimulus.
//
// With Options.Supervise set, the run is supervised: the asynchronous
// engines execute under a progress watchdog, recoverable failures (panics,
// hangs, causality violations) are retried with backoff, and — when
// Fallback is enabled — the run degrades to the synchronous engine and
// finally the sequential reference. Because every engine reproduces the
// same trajectory, degradation changes performance only; the waveform is
// identical. With Options.CheckpointEvery/CheckpointDir set, consistent
// snapshots are written during the run; Options.Restore resumes from one.
func Simulate(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, opts Options) (*Report, error) {
	if opts.LPs <= 0 {
		opts.LPs = 4
	}
	if opts.System == 0 {
		opts.System = logic.NineValued
	}
	if opts.Cost == (stats.CostModel{}) {
		opts.Cost = stats.DefaultCostModel()
	}
	if opts.IntraWorkers <= 0 {
		opts.IntraWorkers = 2
	}
	if opts.CheckpointEvery > 0 && opts.CheckpointDir != "" {
		if err := writeCheckpoints(c, stim, until, opts); err != nil {
			return nil, err
		}
	}
	if opts.Adapt != nil {
		// The adaptive supervisor owns segmentation, restore splicing,
		// and (when configured) per-segment supervision.
		return simulateAdaptive(c, stim, until, opts)
	}
	var rep *Report
	var err error
	if opts.Supervise == nil {
		rep, err = simulateOnce(c, stim, until, opts, 0)
	} else {
		rep, err = simulateSupervised(c, stim, until, opts)
	}
	if err != nil {
		return nil, err
	}
	if opts.Restore != nil {
		// Engines resumed from a checkpoint report only the suffix; splice
		// the checkpointed prefix back on so the caller sees the waveform
		// of an uninterrupted run.
		rep.Waveform = append(opts.Restore.Prefix(), rep.Waveform...)
		if end := circuit.Tick(opts.Restore.EndTime); end > rep.EndTime {
			rep.EndTime = end
		}
	}
	return rep, nil
}

// recoverable reports whether the supervision layer may retry or degrade
// after err. Structured engine failures are recoverable except the event
// limit, which is a property of the circuit and stimulus — every engine
// would hit it, so retrying only burns time. Unstructured errors are
// configuration or validation problems and are returned as-is.
func recoverable(err error) bool {
	var se *SimError
	if !errors.As(err, &se) {
		return false
	}
	return se.Kind != KindEventLimit
}

// simulateSupervised drives the retry/backoff/fallback chain.
func simulateSupervised(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, opts Options) (*Report, error) {
	sup := *opts.Supervise
	chain := []Engine{opts.Engine}
	if sup.Fallback {
		if opts.Engine != EngineSync && opts.Engine != EngineSeq && opts.Engine != EngineOblivious {
			chain = append(chain, EngineSync)
		}
		if opts.Engine != EngineSeq && opts.Engine != EngineOblivious {
			chain = append(chain, EngineSeq)
		}
	}
	srep := &SupervisionReport{}
	backoff := sup.Backoff
	var lastErr error
	for ci, eng := range chain {
		tries := 1
		if ci == 0 {
			tries += sup.Retries
		}
		for a := 0; a < tries; a++ {
			if lastErr != nil {
				// Re-arm transient chaos faults between attempts so the
				// harness can model faults that persist (hangs re-arm) or
				// do not (panics stay fired).
				opts.Chaos.Rearm()
				if backoff > 0 {
					time.Sleep(backoff)
					backoff *= 2
				}
			}
			o := opts
			o.Engine = eng
			rep, err := simulateOnce(c, stim, until, o, sup.Watchdog)
			if err == nil {
				srep.FinalEngine = eng
				rep.Supervision = srep
				if rep.Metrics != nil {
					if rep.Metrics.Gauges == nil {
						rep.Metrics.Gauges = map[string]float64{}
					}
					rep.Metrics.Gauges["supervise_recoveries"] = float64(srep.Recoveries)
					rep.Metrics.Gauges["supervise_fallbacks"] = float64(srep.Fallbacks)
				}
				return rep, nil
			}
			lastErr = err
			srep.Attempts = append(srep.Attempts, fmt.Sprintf("%s: %v", eng, err))
			if !recoverable(err) {
				return nil, err
			}
			if a+1 < tries {
				srep.Recoveries++
			}
		}
		if ci+1 < len(chain) {
			srep.Fallbacks++
		}
	}
	return nil, lastErr
}

// writeCheckpoints runs the sequential shadow that produces the run's
// checkpoint stream. The shadow is legitimate as a checkpoint source for
// every engine because all engines reproduce the sequential trajectory
// exactly (the differential harness enforces this), so the sequential
// state at a boundary is a consistent global cut of any engine's run.
func writeCheckpoints(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, opts Options) error {
	if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
		return err
	}
	_, err := seq.Run(c, stim, until, seq.Config{
		System: opts.System, Queue: opts.Queue, Watch: opts.Watch,
		MaxEvents:       opts.MaxEvents,
		Boot:            opts.Restore,
		CheckpointEvery: opts.CheckpointEvery,
		Checkpoint: func(st *ckpt.State) error {
			return ckpt.WriteFile(filepath.Join(opts.CheckpointDir, fmt.Sprintf("ckpt-%08d.json", st.Time)), st)
		},
	})
	if err != nil {
		return fmt.Errorf("core: checkpoint shadow: %w", err)
	}
	return nil
}
