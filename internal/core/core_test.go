package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

func TestEngineNames(t *testing.T) {
	for _, e := range Engines() {
		got, err := ParseEngine(e.String())
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if got != e {
			t.Fatalf("ParseEngine(%q) = %v", e.String(), got)
		}
	}
	if _, err := ParseEngine("frobnicator"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if Engine(99).String() != "Engine(99)" {
		t.Fatal("unknown engine string wrong")
	}
}

// TestAllEnginesAgree runs every engine through the unified API on one
// sequential circuit and requires identical waveforms (oblivious excepted:
// it is cycle-based, so only final settled values are compared).
func TestAllEnginesAgree(t *testing.T) {
	c, err := gen.RandomSeq(gen.RandomConfig{Gates: 250, Inputs: 8, Outputs: 6, Seed: 3, FFRatio: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 15, HalfPeriod: 60, Activity: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	until := Horizon(c, stim)
	base, err := Simulate(c, stim, until, Options{Engine: EngineSeq, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	if base.Modeled <= 0 || base.Processors != 1 {
		t.Fatalf("bad baseline report: %+v", base)
	}
	for _, e := range Engines() {
		if e == EngineSeq {
			continue
		}
		rep, err := Simulate(c, stim, until, Options{
			Engine: e, LPs: 4, Partition: partition.MethodFM, System: logic.TwoValued,
		})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		for g := range base.Values {
			if base.Values[g] != rep.Values[g] {
				t.Fatalf("%v: final value mismatch at gate %d", e, g)
			}
		}
		if e != EngineOblivious {
			if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
				t.Fatalf("%v waveform mismatch:\n%s", e, d)
			}
		}
		if rep.Modeled <= 0 {
			t.Fatalf("%v: no modeled time", e)
		}
		if s := rep.SpeedupOver(base, stats.CostModel{}); s <= 0 {
			t.Fatalf("%v: speedup = %f", e, s)
		}
	}
}

func TestPreSimulateProducesWeights(t *testing.T) {
	c, err := gen.ArrayMultiplier(4, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 10, Period: 50, Activity: 0.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := PreSimulate(c, stim, Horizon(c, stim), logic.TwoValued)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != c.NumGates() {
		t.Fatalf("weights cover %d of %d gates", len(w), c.NumGates())
	}
	// Weighted partitioning must accept them.
	if _, err := Simulate(c, stim, Horizon(c, stim), Options{
		Engine: EngineSync, LPs: 4, Partition: partition.MethodFM,
		Weights: w, System: logic.TwoValued,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	c, err := gen.RippleAdder(4, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 5, Period: 30, Activity: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(c, stim, Horizon(c, stim), Options{Engine: EngineSync})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Processors != 4 {
		t.Fatalf("default LPs = %d, want 4", rep.Processors)
	}
}

func TestBadPartitionMethodPropagates(t *testing.T) {
	c, _ := gen.RippleAdder(2, gen.Unit)
	stim, _ := vectors.Random(c, vectors.RandomConfig{Vectors: 1, Period: 5, Activity: 1, Seed: 0})
	if _, err := Simulate(c, stim, 50, Options{
		Engine: EngineSync, Partition: partition.Method(99),
	}); err == nil {
		t.Fatal("invalid partition method accepted")
	}
}
