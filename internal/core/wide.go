package core

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim/cmb"
	"repro/internal/sim/hybrid"
	"repro/internal/sim/oblivious"
	"repro/internal/sim/seq"
	"repro/internal/sim/supervise"
	"repro/internal/sim/sync"
	"repro/internal/sim/timewarp"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// WideReport is the engine-independent outcome of a wide (64-lane) run.
type WideReport struct {
	Engine   Engine
	Values   []logic.Word
	Waveform trace.WideWaveform
	EndTime  circuit.Tick
	// Lanes is the meaningful lane count, copied from the stimulus.
	Lanes int
	// Vectors is the total number of stimulus vectors the run consumed:
	// lanes times distinct stimulus boundaries.
	Vectors uint64
	// VectorsPerSec is Vectors divided by the run's wall-clock time — the
	// headline wide-throughput figure.
	VectorsPerSec float64
	Stats         stats.RunStats
	Processors    int
	// Metrics is the machine-readable run report from the run's metrics
	// registry.
	Metrics *metrics.Report
}

// SimulateWide runs the selected engine on all 64 lanes of the wide
// stimulus at once — 64 vectors per gate operation. Every engine is
// supported; per lane, the committed waveform is bit-identical to a scalar
// run of that lane's stimulus on the same engine.
//
// The wide path is restricted relative to Simulate: the logic system must
// be two- or four-valued (default four-valued), and checkpoint restore,
// supervision, and chaos injection are not available.
func SimulateWide(c *circuit.Circuit, stim *vectors.WideStimulus, until circuit.Tick, opts Options) (rep *WideReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, supervise.FromPanic(opts.Engine.String()+"-wide", -1, "run", 0, r)
		}
	}()
	if opts.Restore != nil {
		return nil, fmt.Errorf("core: wide runs do not support checkpoint restore")
	}
	if opts.Supervise != nil {
		return nil, fmt.Errorf("core: wide runs do not support supervision")
	}
	if opts.Chaos != nil {
		return nil, fmt.Errorf("core: wide runs do not support chaos injection")
	}
	if opts.Adapt != nil {
		return nil, fmt.Errorf("core: wide runs do not support adaptive control (the controllers drive the scalar engines' checkpoint/restart path)")
	}
	if opts.System == 0 {
		opts.System = logic.FourValued
	}
	if err := logic.CheckWide(opts.System); err != nil {
		return nil, err
	}
	if opts.LPs <= 0 {
		opts.LPs = 4
	}
	sink := opts.Metrics
	if sink == nil {
		reg := metrics.NewRegistry(opts.Engine.String() + "-wide")
		if opts.PProfLabels {
			reg.EnablePProf()
		}
		sink = reg
	}
	start := time.Now()

	var part *partition.Partition
	if opts.Engine.Parallel() {
		var err error
		part, err = partition.New(opts.Partition, c, opts.LPs, partition.Options{
			Weights: opts.Weights,
			Seed:    opts.PartitionSeed,
		})
		if err != nil {
			return nil, err
		}
	}

	rep = &WideReport{Engine: opts.Engine, Lanes: stim.Lanes, Processors: opts.LPs}
	switch opts.Engine {
	case EngineSeq:
		res, err := seq.RunWide(c, stim, until, seq.WideConfig{
			System: opts.System, Queue: opts.Queue, Watch: opts.Watch,
			MaxEvents: opts.MaxEvents, Metrics: sink,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats.LPs = []metrics.LPCounters{res.Counters}
		rep.Processors = 1
	case EngineOblivious:
		res, err := oblivious.RunWide(c, stim, oblivious.Config{
			System: opts.System, Workers: opts.LPs, Watch: opts.Watch, Cost: opts.Cost,
			Metrics: sink, Tracer: opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform = res.Values, res.Waveform
		rep.Stats = res.Stats
	case EngineSync:
		res, err := sync.RunWide(c, stim, until, sync.Config{
			Partition: part, System: opts.System, Queue: opts.Queue,
			Watch: opts.Watch, Cost: opts.Cost, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
	case EngineCMB, EngineCMBDemand, EngineCMBDetect:
		mode := cmb.NullEager
		switch opts.Engine {
		case EngineCMBDemand:
			mode = cmb.NullDemand
		case EngineCMBDetect:
			mode = cmb.DeadlockRecovery
		}
		res, err := cmb.RunWide(c, stim, until, cmb.Config{
			Partition: part, Mode: mode, System: opts.System, Queue: opts.Queue,
			Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
	case EngineTimeWarp, EngineTimeWarpLazy:
		cancel := opts.Cancellation
		if opts.Engine == EngineTimeWarpLazy {
			cancel = timewarp.Lazy
		}
		res, err := timewarp.RunWide(c, stim, until, timewarp.Config{
			Partition: part, Cancellation: cancel, StateSaving: opts.StateSaving,
			Window: opts.Window, System: opts.System, Queue: opts.Queue,
			Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer, HistoryLimit: opts.HistoryLimit,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
	case EngineHybrid:
		res, err := hybrid.RunWide(c, stim, until, hybrid.Config{
			Partition: part, IntraWorkers: opts.IntraWorkers,
			Cancellation: opts.Cancellation, StateSaving: opts.StateSaving,
			Window: opts.Window, System: opts.System, Cost: opts.Cost,
			Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer, HistoryLimit: opts.HistoryLimit,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
		rep.Processors = res.TotalProcessors()
	default:
		return nil, fmt.Errorf("core: unknown engine %v", opts.Engine)
	}

	rep.Vectors = uint64(stim.Lanes) * uint64(countBoundaries(stim, until))
	wall := time.Since(start)
	if secs := wall.Seconds(); secs > 0 {
		rep.VectorsPerSec = float64(rep.Vectors) / secs
	}
	sink.SetGauge("lanes", float64(stim.Lanes))
	sink.SetGauge("vectors_per_sec", rep.VectorsPerSec)
	if reg, ok := sink.(*metrics.Registry); ok {
		reg.SetLabel("engine", opts.Engine.String()+"-wide")
		reg.SetLabel("lanes", fmt.Sprint(stim.Lanes))
		reg.SetLabel("lps", fmt.Sprint(rep.Processors))
		if opts.Engine.Parallel() {
			reg.SetLabel("partition", opts.Partition.String())
		}
		rep.Metrics = reg.Report()
	}
	return rep, nil
}

// countBoundaries counts the distinct stimulus times at or before until —
// the number of vectors each lane applies.
func countBoundaries(stim *vectors.WideStimulus, until circuit.Tick) int {
	seen := map[circuit.Tick]bool{}
	for _, ch := range stim.Changes {
		if ch.Time <= until {
			seen[ch.Time] = true
		}
	}
	return len(seen)
}

// WideHorizon re-exports the wide settling-margin heuristic.
func WideHorizon(c *circuit.Circuit, stim *vectors.WideStimulus) circuit.Tick {
	return seq.WideHorizon(c, stim)
}
