package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim/adapt"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/seq"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// AdaptReport records what the adaptive supervisor did: the decision
// log of every controller, the segment/switch/rebalance tallies, and
// the operating point the run ended on.
type AdaptReport struct {
	// Decisions is the full decision log: segment-boundary decisions
	// (engine switch, rebalance, commit, and explanatory holds) in
	// order, followed by the in-run optimism-window decisions (whose
	// Round field is the GVT round they fired at).
	Decisions []adapt.Decision
	// Segments is how many engine runs the job was split into.
	Segments int
	// EngineSwitches and Rebalances count the acted boundary decisions;
	// WindowChanges counts in-run optimism-window moves.
	EngineSwitches int
	Rebalances     int
	WindowChanges  int
	// FinalEngine is the engine that ran the last segment; FinalWindow
	// is the adapted optimism window at the end (0 = unbounded).
	FinalEngine Engine
	FinalWindow circuit.Tick
	// Committed reports that probing ended by decision (the switch
	// controller committed, a scripted commit fired, or the probe
	// budget ran out) rather than by reaching the horizon.
	Committed bool
}

// simulateAdaptive runs the job under closed-loop adaptive control.
//
// The run is split into probing segments at multiples of Spec.Every.
// Each segment executes on the currently selected engine, booted from
// the previous boundary's checkpoint; at every boundary the
// engine-switch supervisor and the load rebalancer observe that
// segment's metrics and may migrate the job to another protocol or
// repartition it on measured per-LP load. Boundary states come from an
// incremental sequential shadow (one segment of sequential work per
// boundary, stopped early via ckpt.ErrStop) — a consistent cut for any
// engine because every engine reproduces the sequential trajectory.
// Once the switch controller settles (or the probe budget is spent)
// the current engine is committed and runs unsegmented to the horizon,
// so adaptation overhead is paid only while the controllers are still
// deciding. The optimism-window controller is not segmented: it rides
// inside the optimistic engines, observing once per GVT round, and its
// adapted window carries across segments.
//
// The waveform is the concatenation of the restore prefix and each
// segment's recorded suffix — bit-identical to a static run under any
// decision sequence, because adaptation changes when things execute,
// never what is computed. Note that MaxEvents bounds each segment (and
// each shadow) individually, not the whole job.
func simulateAdaptive(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, opts Options) (*Report, error) {
	if !opts.Engine.Parallel() {
		return nil, fmt.Errorf("core: adaptive control requires a parallel engine (got %v)", opts.Engine)
	}
	spec := opts.Adapt.WithDefaults(uint64(until))

	var winCtl *adapt.WindowController
	if !spec.NoWindow {
		winCtl = adapt.NewWindowController(spec.Window)
	}
	var swCtl *adapt.SwitchController
	if !spec.NoSwitch {
		swCtl = adapt.NewSwitchController(spec.Switch)
	}
	var rbCtl *adapt.Rebalancer
	if !spec.NoRebalance {
		rbCtl = adapt.NewRebalancer(spec.Rebalance)
	}

	engine := opts.Engine
	weights := opts.Weights
	baseWindow := opts.Window
	cur := opts.Restore // boundary state feeding the next segment
	boundary := uint64(0)
	if cur != nil {
		boundary = cur.Time
	}

	master := metrics.NewRegistry(engine.String())
	wallStart := time.Now()
	var (
		wave       trace.Waveform
		values     []logic.Value
		endTime    circuit.Tick
		modeled    float64
		procs      int
		decisions  []adapt.Decision
		segments   int
		switches   int
		rebalances int
		committed  bool
		srep       *SupervisionReport
		part       *partition.Partition
		coneCount  int
	)
	if cur != nil {
		wave = cur.Prefix()
		if end := circuit.Tick(cur.EndTime); end > endTime {
			endTime = end
		}
	}

	for {
		// Segment horizon: the next multiple of the cadence, or the full
		// horizon once the engine is committed (or the cadence overshoots).
		segEnd := until
		last := committed
		if !last {
			next := (boundary/spec.Every + 1) * spec.Every
			if circuit.Tick(next) >= until {
				last = true
			} else {
				segEnd = circuit.Tick(next)
			}
		}

		o := opts
		o.Engine = engine
		o.Window = baseWindow
		o.Weights = weights
		o.Restore = cur
		o.Adapt = nil
		o.CheckpointEvery = 0
		o.CheckpointDir = ""
		o.winCtl = winCtl
		// The partition only depends on inputs that survive a segment
		// boundary (method, LP count, seed, weights), so build it once
		// and share it across segments; a rebalance invalidates it.
		if part == nil {
			var err error
			part, coneCount, err = buildPartition(c, o)
			if err != nil {
				return nil, err
			}
		}
		o.prebuilt, o.prebuiltCones = part, coneCount
		segReg := metrics.NewRegistry(engine.String())
		if opts.PProfLabels {
			segReg.EnablePProf()
		}
		o.Metrics = segReg

		var rep *Report
		var err error
		if o.Supervise != nil {
			rep, err = simulateSupervised(c, stim, segEnd, o)
		} else {
			rep, err = simulateOnce(c, stim, segEnd, o, 0)
		}
		if err != nil {
			return nil, err
		}
		segments++
		master.Absorb(segReg)
		wave = append(wave, rep.Waveform...)
		values = rep.Values
		modeled += rep.Modeled
		if rep.EndTime > endTime {
			endTime = rep.EndTime
		}
		if rep.Processors > procs {
			procs = rep.Processors
		}
		if rep.Supervision != nil {
			if srep == nil {
				srep = &SupervisionReport{}
			}
			srep.Recoveries += rep.Supervision.Recoveries
			srep.Fallbacks += rep.Supervision.Fallbacks
			srep.Attempts = append(srep.Attempts, rep.Supervision.Attempts...)
			// A fallback sticks: later segments continue on the engine
			// that actually survived, not the one that kept failing.
			engine = rep.Supervision.FinalEngine
		}
		if last {
			break
		}

		// Boundary state for the next segment: one segment of sequential
		// shadow work, stopped the moment the boundary is captured.
		st, err := shadowCheckpoint(c, stim, uint64(segEnd), uint64(until), spec.Every, opts, cur)
		if err != nil {
			return nil, err
		}
		if st == nil {
			// No activity beyond this boundary — the run is complete.
			break
		}

		// Boundary decisions. A scripted entry replaces the controllers
		// for this boundary; otherwise the switch supervisor decides
		// first and the rebalancer only when placement was not already
		// invalidated by a protocol migration.
		bIdx := segments - 1
		s := segmentSample(bIdx, engine, rep, segReg)
		if d, ok := spec.Scripted(bIdx); ok {
			wasRebalances := rebalances
			if err := applyScripted(&d, &engine, &baseWindow, &weights, &committed, &switches, &rebalances, c, o, s); err != nil {
				return nil, err
			}
			if rebalances != wasRebalances {
				part, coneCount = nil, 0 // weights changed: repartition next segment
			}
			decisions = append(decisions, d)
		} else {
			switched := false
			if swCtl != nil {
				d, acted := swCtl.Observe(s)
				decisions = append(decisions, d)
				if acted {
					switch d.Kind {
					case adapt.KindSwitch:
						e, err := parseSwitchTarget(d.To)
						if err != nil {
							return nil, err
						}
						engine = e
						switches++
						switched = true
					case adapt.KindCommit:
						committed = true
					}
				}
			}
			if rbCtl != nil && !switched && !committed {
				d, acted := rbCtl.Observe(s)
				decisions = append(decisions, d)
				if acted {
					w, err := rebalanceWeights(c, o, s.PerLPEvals)
					if err != nil {
						return nil, err
					}
					if w != nil {
						weights = w
						rebalances++
						part, coneCount = nil, 0 // weights changed: repartition next segment
					}
				}
			}
		}
		if !committed && segments >= spec.MaxProbes {
			committed = true
			decisions = append(decisions, adapt.Decision{
				Round: bIdx, Kind: adapt.KindCommit,
				Reason: fmt.Sprintf("probe budget (%d segments) spent: commit %s", spec.MaxProbes, engine),
			})
		}
		if winCtl != nil {
			// The next segment's counters restart from zero; re-baseline
			// the delta computation (the adapted window carries over).
			winCtl.ResetEpoch()
		}
		cur = st
		boundary = st.Time
	}

	wall := time.Since(wallStart)
	ar := &AdaptReport{
		Decisions:      decisions,
		Segments:       segments,
		EngineSwitches: switches,
		Rebalances:     rebalances,
		FinalEngine:    engine,
		Committed:      committed,
	}
	master.SetLabel("engine", engine.String())
	master.SetLabel("adaptive", "on")
	master.SetLabel("lps", fmt.Sprint(procs))
	master.SetGauge("adapt_segments", float64(segments))
	master.SetGauge("adapt_engine_switches", float64(switches))
	master.SetGauge("adapt_rebalances", float64(rebalances))
	if committed {
		master.SetGauge("adapt_committed", 1)
	} else {
		master.SetGauge("adapt_committed", 0)
	}
	if winCtl != nil {
		ar.WindowChanges = winCtl.Changes()
		ar.FinalWindow = circuit.Tick(winCtl.Window())
		ar.Decisions = append(ar.Decisions, winCtl.Decisions()...)
		master.SetGauge("adapt_window_changes", float64(winCtl.Changes()))
		master.SetGauge("adapt_final_window", float64(winCtl.Window()))
	}
	if srep != nil {
		srep.FinalEngine = engine
		master.SetGauge("supervise_recoveries", float64(srep.Recoveries))
		master.SetGauge("supervise_fallbacks", float64(srep.Fallbacks))
	}

	rep := &Report{
		Engine:      opts.Engine,
		Values:      values,
		Waveform:    wave,
		EndTime:     endTime,
		Modeled:     modeled,
		Processors:  procs,
		Supervision: srep,
		Adapt:       ar,
	}
	rep.Stats = stats.Collect(master, wall)
	if ext, ok := opts.Metrics.(*metrics.Registry); ok {
		// The caller brought its own registry: fold the run into it and
		// report through it, mirroring the static path.
		ext.Absorb(master)
		rep.Metrics = ext.Report()
	} else {
		rep.Metrics = master.Report()
	}
	return rep, nil
}

// segmentSample condenses one finished segment into the per-segment
// observation the boundary controllers consume.
func segmentSample(round int, engine Engine, rep *Report, reg *metrics.Registry) adapt.Sample {
	tot := reg.Totals()
	perLP := make([]uint64, reg.NumLPs())
	for i := range perLP {
		perLP[i] = reg.LP(i).Evaluations
	}
	return adapt.Sample{
		Round:            round,
		WallMs:           float64(rep.Stats.Wall.Microseconds()) / 1e3,
		Engine:           engine.String(),
		EventsApplied:    tot.EventsApplied,
		EventsRolledBack: tot.EventsRolledBack,
		Rollbacks:        tot.Rollbacks,
		NullsSent:        tot.NullsSent,
		MessagesSent:     tot.MessagesSent,
		PerLPEvals:       perLP,
	}
}

// applyScripted executes one forced boundary decision from Spec.Script.
func applyScripted(d *adapt.Decision, engine *Engine, baseWindow *circuit.Tick, weights *partition.Weights, committed *bool, switches, rebalances *int, c *circuit.Circuit, segOpts Options, s adapt.Sample) error {
	switch d.Kind {
	case adapt.KindSwitch:
		e, err := parseSwitchTarget(d.To)
		if err != nil {
			return err
		}
		if d.From == "" {
			d.From = engine.String()
		}
		*engine = e
		*switches++
	case adapt.KindWindow:
		*baseWindow = circuit.Tick(d.Window)
	case adapt.KindRebalance:
		w, err := rebalanceWeights(c, segOpts, s.PerLPEvals)
		if err != nil {
			return err
		}
		if w != nil {
			*weights = w
			*rebalances++
		}
	case adapt.KindCommit:
		*committed = true
	case adapt.KindHold:
		// Explicitly forced no-op boundary.
	default:
		return fmt.Errorf("core: scripted decision round %d has unknown kind %q", d.Round, d.Kind)
	}
	return nil
}

// parseSwitchTarget resolves an engine-switch target, rejecting engines
// that cannot resume from a checkpoint.
func parseSwitchTarget(name string) (Engine, error) {
	e, err := ParseEngine(name)
	if err != nil {
		return 0, err
	}
	if e == EngineOblivious {
		return 0, fmt.Errorf("core: cannot switch to %v mid-run: the oblivious engine is cycle-based and cannot resume from an event checkpoint", e)
	}
	return e, nil
}

// rebalanceWeights turns the just-measured per-LP utilization into
// per-gate partitioner weights: every gate inherits its LP's mean
// measured load, so the next partition spreads observed work instead of
// static estimates. segOpts must be the options the measured segment
// ran with — the same gate→LP assignment. Returns nil (no error) when
// the segment has no partition to project through.
func rebalanceWeights(c *circuit.Circuit, segOpts Options, perLP []uint64) (partition.Weights, error) {
	part, _, err := buildPartition(c, segOpts)
	if err != nil || part == nil || len(perLP) == 0 {
		return nil, err
	}
	counts := make([]int, len(perLP))
	for _, lp := range part.Assign {
		if lp >= 0 && lp < len(counts) {
			counts[lp]++
		}
	}
	w := make(partition.Weights, len(c.Gates))
	for g, lp := range part.Assign {
		if lp < 0 || lp >= len(perLP) || counts[lp] == 0 {
			w[g] = 1
			continue
		}
		// The +0.1 floor keeps gates that happened to be idle this
		// segment movable rather than weightless.
		w[g] = float64(perLP[lp])/float64(counts[lp]) + 0.1
	}
	return w, nil
}

// shadowCheckpoint produces the consistent boundary state at modeled
// time `at` by advancing the sequential shadow from the previous
// boundary, stopping the instant the snapshot is captured
// (ckpt.ErrStop). `at` is always the first multiple of `every`
// strictly after the boot time, so the shadow's first capture is
// exactly the wanted boundary. A nil state with nil error means the
// shadow finished without capturing: nothing is pending beyond the
// boundary, so the segmented run is already complete.
func shadowCheckpoint(c *circuit.Circuit, stim *vectors.Stimulus, at, until, every uint64, opts Options, prev *ckpt.State) (*ckpt.State, error) {
	var captured *ckpt.State
	_, err := seq.Run(c, stim, circuit.Tick(until), seq.Config{
		System: opts.System, Queue: opts.Queue, Watch: opts.Watch,
		MaxEvents:       opts.MaxEvents,
		Boot:            prev,
		CheckpointEvery: circuit.Tick(every),
		Checkpoint: func(st *ckpt.State) error {
			if st.Time != at {
				return nil
			}
			captured = st
			return ckpt.ErrStop
		},
	})
	if err != nil && !errors.Is(err, ckpt.ErrStop) {
		return nil, fmt.Errorf("core: adaptive shadow: %w", err)
	}
	return captured, nil
}
