// Package core is the unified front end over every simulation engine in
// this repository: the sequential reference, the oblivious compiled-mode
// simulator, and the synchronous, conservative, optimistic, and hybrid
// parallel engines. One Options struct configures any of them; one Report
// carries values, waveform, work counters, and modeled time, so callers
// (CLIs, examples, and the experiment harness) can compare algorithms —
// which is the whole subject of the paper.
package core

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/eventq"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim/cmb"
	"repro/internal/sim/hybrid"
	"repro/internal/sim/oblivious"
	"repro/internal/sim/seq"
	"repro/internal/sim/sync"
	"repro/internal/sim/timewarp"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Engine names a simulation algorithm.
type Engine uint8

// The available engines. The conservative and optimistic entries expose
// their principal protocol variants directly so experiment sweeps can
// enumerate them.
const (
	EngineSeq Engine = iota
	EngineOblivious
	EngineSync
	EngineCMB
	EngineCMBDemand
	EngineCMBDetect
	EngineTimeWarp
	EngineTimeWarpLazy
	EngineHybrid

	numEngines
)

var engineNames = [numEngines]string{
	"seq", "oblivious", "sync", "cmb", "cmb-demand", "cmb-detect",
	"timewarp", "timewarp-lazy", "hybrid",
}

// String names the engine.
func (e Engine) String() string {
	if e < numEngines {
		return engineNames[e]
	}
	return fmt.Sprintf("Engine(%d)", uint8(e))
}

// ParseEngine converts an engine name.
func ParseEngine(s string) (Engine, error) {
	for e := Engine(0); e < numEngines; e++ {
		if engineNames[e] == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("core: unknown engine %q (have %v)", s, engineNames)
}

// Engines lists every engine, for sweeps.
func Engines() []Engine {
	out := make([]Engine, numEngines)
	for i := range out {
		out[i] = Engine(i)
	}
	return out
}

// Parallel reports whether the engine divides the circuit across LPs.
func (e Engine) Parallel() bool { return e != EngineSeq && e != EngineOblivious }

// Options configures a simulation run for any engine.
type Options struct {
	// Engine selects the algorithm.
	Engine Engine
	// LPs is the logical-process count for parallel engines (also the
	// worker count for the oblivious engine). Defaults to 4.
	LPs int
	// Partition selects the gate-assignment heuristic.
	Partition partition.Method
	// PartitionSeed feeds randomized partitioners.
	PartitionSeed int64
	// Weights are pre-simulation load estimates for the partitioner.
	Weights partition.Weights
	// System is the logic value system (default 9-valued).
	System logic.System
	// Queue selects the pending-event set implementation.
	Queue eventq.Impl
	// Watch lists nets to record; nil watches primary outputs.
	Watch []circuit.GateID
	// MaxEvents bounds runaway simulations.
	MaxEvents uint64
	// Cost prices modeled times; the zero value uses the default model.
	Cost stats.CostModel

	// Cancellation, StateSaving, and Window configure the optimistic
	// engines.
	Cancellation timewarp.Cancellation
	StateSaving  timewarp.StateSaving
	Window       circuit.Tick
	// IntraWorkers is the per-cluster synchronous worker count of the
	// hybrid engine (default 2).
	IntraWorkers int

	// Metrics, when non-nil, receives the run's work counters instead of
	// the private registry Simulate otherwise creates. Report.Metrics is
	// only populated for *metrics.Registry sinks.
	Metrics metrics.Sink
	// Tracer, when non-nil, records per-LP lifecycle spans (see
	// trace.Tracer.WriteJSON for the Chrome trace_event export).
	Tracer *trace.Tracer
	// PProfLabels tags LP goroutines with runtime/pprof labels
	// (engine/lp/phase) so CPU profiles break down by logical process.
	PProfLabels bool
	// Chaos, when non-nil, wraps the asynchronous engines' per-LP
	// transports in the fault-injecting chaos layer (see
	// internal/simtest/chaos). Only the cmb, timewarp, and hybrid engines
	// honor it; test harness use only.
	Chaos *inject.Hook
}

// Report is the engine-independent outcome of a run.
type Report struct {
	Engine   Engine
	Values   []logic.Value
	Waveform trace.Waveform
	EndTime  circuit.Tick
	Stats    stats.RunStats
	// Modeled is the run's modeled execution time in model nanoseconds on
	// Processors modeled processors (see package stats for methodology).
	Modeled    float64
	Processors int
	// SeqWork caches the counters needed to compute a sequential baseline
	// time for speedups (populated for EngineSeq runs).
	SeqWork metrics.LPCounters
	// Metrics is the machine-readable run report (counters, histograms,
	// gauges, globals) from the run's metrics registry.
	Metrics *metrics.Report
}

// SpeedupOver computes this run's modeled speedup over a sequential
// baseline report.
func (r *Report) SpeedupOver(baseline *Report, m stats.CostModel) float64 {
	if m == (stats.CostModel{}) {
		m = stats.DefaultCostModel()
	}
	seqTime := stats.SequentialTime(m,
		baseline.SeqWork.Evaluations,
		baseline.SeqWork.EventsApplied,
		baseline.SeqWork.EventsScheduled)
	return stats.Speedup(seqTime, r.Modeled)
}

// Simulate runs the selected engine on the circuit and stimulus.
func Simulate(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, opts Options) (*Report, error) {
	if opts.LPs <= 0 {
		opts.LPs = 4
	}
	if opts.System == 0 {
		opts.System = logic.NineValued
	}
	if opts.Cost == (stats.CostModel{}) {
		opts.Cost = stats.DefaultCostModel()
	}
	if opts.IntraWorkers <= 0 {
		opts.IntraWorkers = 2
	}
	sink := opts.Metrics
	if sink == nil {
		reg := metrics.NewRegistry(opts.Engine.String())
		if opts.PProfLabels {
			reg.EnablePProf()
		}
		sink = reg
	}

	var part *partition.Partition
	if opts.Engine.Parallel() {
		var err error
		part, err = partition.New(opts.Partition, c, opts.LPs, partition.Options{
			Weights: opts.Weights,
			Seed:    opts.PartitionSeed,
		})
		if err != nil {
			return nil, err
		}
	}

	rep := &Report{Engine: opts.Engine, Processors: opts.LPs}
	switch opts.Engine {
	case EngineSeq:
		res, err := seq.Run(c, stim, until, seq.Config{
			System: opts.System, Queue: opts.Queue, Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.SeqWork = res.Counters
		rep.Stats.LPs = []metrics.LPCounters{res.Counters}
		rep.Processors = 1
		rep.Modeled = stats.SequentialTime(opts.Cost,
			res.Counters.Evaluations, res.Counters.EventsApplied, res.Counters.EventsScheduled)
	case EngineOblivious:
		res, err := oblivious.Run(c, stim, oblivious.Config{
			System: opts.System, Workers: opts.LPs, Watch: opts.Watch, Cost: opts.Cost,
			Metrics: sink, Tracer: opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform = res.Values, res.Waveform
		rep.Stats = res.Stats
		rep.Modeled = res.Stats.ModeledTime(opts.Cost)
	case EngineSync:
		res, err := sync.Run(c, stim, until, sync.Config{
			Partition: part, System: opts.System, Queue: opts.Queue,
			Watch: opts.Watch, Cost: opts.Cost, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
		rep.Modeled = res.Stats.ModeledTime(opts.Cost)
	case EngineCMB, EngineCMBDemand, EngineCMBDetect:
		mode := cmb.NullEager
		switch opts.Engine {
		case EngineCMBDemand:
			mode = cmb.NullDemand
		case EngineCMBDetect:
			mode = cmb.DeadlockRecovery
		}
		res, err := cmb.Run(c, stim, until, cmb.Config{
			Partition: part, Mode: mode, System: opts.System, Queue: opts.Queue,
			Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer, Chaos: opts.Chaos,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
		rep.Modeled = res.Stats.ModeledTime(opts.Cost)
	case EngineTimeWarp, EngineTimeWarpLazy:
		cancel := opts.Cancellation
		if opts.Engine == EngineTimeWarpLazy {
			cancel = timewarp.Lazy
		}
		res, err := timewarp.Run(c, stim, until, timewarp.Config{
			Partition: part, Cancellation: cancel, StateSaving: opts.StateSaving,
			Window: opts.Window, System: opts.System, Queue: opts.Queue,
			Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer, Chaos: opts.Chaos,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
		rep.Modeled = res.Stats.ModeledTime(opts.Cost)
	case EngineHybrid:
		res, err := hybrid.Run(c, stim, until, hybrid.Config{
			Partition: part, IntraWorkers: opts.IntraWorkers,
			Cancellation: opts.Cancellation, StateSaving: opts.StateSaving,
			Window: opts.Window, System: opts.System, Cost: opts.Cost,
			Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer, Chaos: opts.Chaos,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
		rep.Modeled = res.ModeledTime()
		rep.Processors = res.TotalProcessors()
	default:
		return nil, fmt.Errorf("core: unknown engine %v", opts.Engine)
	}
	if reg, ok := sink.(*metrics.Registry); ok {
		reg.SetLabel("engine", opts.Engine.String())
		reg.SetLabel("lps", fmt.Sprint(rep.Processors))
		if opts.Engine.Parallel() {
			reg.SetLabel("partition", opts.Partition.String())
		}
		rep.Metrics = reg.Report()
	}
	return rep, nil
}

// PreSimulate runs the paper's pre-simulation workload estimation: a
// sequential profiling run over a prefix of the stimulus, converted into
// partitioner weights.
func PreSimulate(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, sys logic.System) (partition.Weights, error) {
	res, err := seq.Run(c, stim, until, seq.Config{System: sys, Profile: true})
	if err != nil {
		return nil, err
	}
	return partition.WeightsFromProfile(res.EvalsByGate), nil
}

// Horizon re-exports the settling-margin heuristic for callers that only
// import core.
func Horizon(c *circuit.Circuit, stim *vectors.Stimulus) circuit.Tick {
	return seq.Horizon(c, stim)
}
