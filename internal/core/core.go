// Package core is the unified front end over every simulation engine in
// this repository: the sequential reference, the oblivious compiled-mode
// simulator, and the synchronous, conservative, optimistic, and hybrid
// parallel engines. One Options struct configures any of them; one Report
// carries values, waveform, work counters, and modeled time, so callers
// (CLIs, examples, and the experiment harness) can compare algorithms —
// which is the whole subject of the paper.
package core

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/eventq"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim/adapt"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/cmb"
	"repro/internal/sim/hybrid"
	"repro/internal/sim/oblivious"
	"repro/internal/sim/seq"
	"repro/internal/sim/supervise"
	"repro/internal/sim/sync"
	"repro/internal/sim/timewarp"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Engine names a simulation algorithm.
type Engine uint8

// The available engines. The conservative and optimistic entries expose
// their principal protocol variants directly so experiment sweeps can
// enumerate them.
const (
	EngineSeq Engine = iota
	EngineOblivious
	EngineSync
	EngineCMB
	EngineCMBDemand
	EngineCMBDetect
	EngineTimeWarp
	EngineTimeWarpLazy
	EngineHybrid

	numEngines
)

var engineNames = [numEngines]string{
	"seq", "oblivious", "sync", "cmb", "cmb-demand", "cmb-detect",
	"timewarp", "timewarp-lazy", "hybrid",
}

// String names the engine.
func (e Engine) String() string {
	if e < numEngines {
		return engineNames[e]
	}
	return fmt.Sprintf("Engine(%d)", uint8(e))
}

// ParseEngine converts an engine name.
func ParseEngine(s string) (Engine, error) {
	for e := Engine(0); e < numEngines; e++ {
		if engineNames[e] == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("core: unknown engine %q (have %v)", s, engineNames)
}

// Engines lists every engine, for sweeps.
func Engines() []Engine {
	out := make([]Engine, numEngines)
	for i := range out {
		out[i] = Engine(i)
	}
	return out
}

// Parallel reports whether the engine divides the circuit across LPs.
func (e Engine) Parallel() bool { return e != EngineSeq && e != EngineOblivious }

// Options configures a simulation run for any engine.
type Options struct {
	// Engine selects the algorithm.
	Engine Engine
	// LPs is the logical-process count for parallel engines (also the
	// worker count for the oblivious engine). Defaults to 4.
	LPs int
	// Partition selects the gate-assignment heuristic.
	Partition partition.Method
	// ConeSplit overrides Partition with the cone-split mode: whole
	// combinational cones (bounded at sequential elements and sources)
	// become fat LPs whose kernels evaluate obliviously in one levelized
	// sweep once active, so the parallel engines synchronize only at
	// state-element boundaries. Honored by the cmb, timewarp, and hybrid
	// engines; the sync engine gets the partition but not the sweep.
	ConeSplit bool
	// PartitionSeed feeds randomized partitioners.
	PartitionSeed int64
	// Weights are pre-simulation load estimates for the partitioner.
	Weights partition.Weights
	// System is the logic value system (default 9-valued).
	System logic.System
	// Queue selects the pending-event set implementation.
	Queue eventq.Impl
	// Watch lists nets to record; nil watches primary outputs.
	Watch []circuit.GateID
	// MaxEvents bounds runaway simulations.
	MaxEvents uint64
	// Cost prices modeled times; the zero value uses the default model.
	Cost stats.CostModel

	// Cancellation, StateSaving, and Window configure the optimistic
	// engines.
	Cancellation timewarp.Cancellation
	StateSaving  timewarp.StateSaving
	Window       circuit.Tick
	// IntraWorkers is the per-cluster synchronous worker count of the
	// hybrid engine (default 2).
	IntraWorkers int

	// Metrics, when non-nil, receives the run's work counters instead of
	// the private registry Simulate otherwise creates. Report.Metrics is
	// only populated for *metrics.Registry sinks.
	Metrics metrics.Sink
	// Tracer, when non-nil, records per-LP lifecycle spans (see
	// trace.Tracer.WriteJSON for the Chrome trace_event export).
	Tracer *trace.Tracer
	// PProfLabels tags LP goroutines with runtime/pprof labels
	// (engine/lp/phase) so CPU profiles break down by logical process.
	PProfLabels bool
	// Chaos, when non-nil, wraps the asynchronous engines' per-LP
	// transports in the fault-injecting chaos layer (see
	// internal/simtest/chaos). Only the cmb, timewarp, and hybrid engines
	// honor it; test harness use only.
	Chaos *inject.Hook

	// Supervise, when non-nil, runs the engine under the supervision
	// layer: watchdog, retry/backoff, and graceful degradation to simpler
	// engines. See SuperviseOptions.
	Supervise *SuperviseOptions
	// HistoryLimit bounds the optimistic engines' saved-history memory in
	// words; 0 means unlimited. See timewarp.Config.HistoryLimit.
	HistoryLimit uint64
	// CheckpointEvery, with CheckpointDir, writes a consistent snapshot
	// every multiple of this modeled time. Snapshots are produced by a
	// sequential shadow run — legitimate because every engine reproduces
	// the sequential trajectory exactly, so the sequential state at a
	// boundary IS a consistent cut for any engine.
	CheckpointEvery circuit.Tick
	// CheckpointDir is the directory receiving ckpt-<time>.json files.
	CheckpointDir string
	// Restore, when non-nil, resumes the run from a checkpoint: engine
	// state is seeded from the snapshot and the report's waveform is the
	// checkpoint prefix plus the resumed suffix — bit-identical to an
	// uninterrupted run. The oblivious engine does not support it.
	Restore *ckpt.State

	// Adapt, when non-nil, runs the job under closed-loop adaptive
	// control: an AIMD optimism-window controller inside the optimistic
	// engines, an engine-switch supervisor migrating the run between
	// conservative and optimistic protocols via checkpoint/restart, and
	// a load rebalancer that repartitions on measured per-LP
	// utilization. Requires a parallel engine. Every decision lands in
	// Report.Adapt and the adapt_* gauges; the waveform is bit-identical
	// to a static run because every engine reproduces the sequential
	// trajectory — adaptation changes when things execute, never what
	// is computed. See internal/sim/adapt.
	Adapt *adapt.Spec

	// winCtl carries the live window controller from the adaptive
	// supervisor into per-segment engine runs (internal plumbing).
	winCtl *adapt.WindowController
	// prebuilt carries an already-built partition (and its cone count)
	// from the adaptive supervisor into per-segment engine runs, so
	// short probing segments do not pay the partitioner once per
	// segment. Engines treat the assignment as read-only (the sync
	// engine's dynamic balancer mutates a private copy), so sharing one
	// across segments is safe (internal plumbing).
	prebuilt      *partition.Partition
	prebuiltCones int
}

// SuperviseOptions configures the supervision layer.
type SuperviseOptions struct {
	// Watchdog, when non-zero, aborts an engine run (with a
	// machine-readable hang report) after this long without global
	// progress. Honored by the asynchronous engines (cmb, timewarp,
	// hybrid); the barrier-stepped engines cannot stall between barriers.
	Watchdog time.Duration
	// Retries is how many times a recoverable failure of the selected
	// engine is retried before degrading; 0 means fail over immediately.
	Retries int
	// Backoff is slept between attempts (doubled each retry).
	Backoff time.Duration
	// Fallback enables graceful degradation: after the retries are
	// exhausted the run falls back to the synchronous engine, then to the
	// sequential reference. All engines produce identical waveforms, so
	// degradation trades performance, never correctness.
	Fallback bool
}

// SupervisionReport records what the supervision layer did.
type SupervisionReport struct {
	// Recoveries counts failed attempts that were retried on the same
	// engine; Fallbacks counts degradations to a simpler engine.
	Recoveries uint64
	Fallbacks  uint64
	// FinalEngine is the engine that produced the result.
	FinalEngine Engine
	// Attempts holds the error of every failed attempt, in order.
	Attempts []string
}

// SimError is the structured simulation error; re-exported so callers can
// classify failures with errors.As without importing the engine internals.
type SimError = supervise.SimError

// Kind classifies a SimError.
type Kind = supervise.Kind

// The error kinds.
const (
	KindInternal   = supervise.KindInternal
	KindCausality  = supervise.KindCausality
	KindHang       = supervise.KindHang
	KindPanic      = supervise.KindPanic
	KindEventLimit = supervise.KindEventLimit
	KindShardLoss  = supervise.KindShardLoss
)

// Report is the engine-independent outcome of a run.
type Report struct {
	Engine   Engine
	Values   []logic.Value
	Waveform trace.Waveform
	EndTime  circuit.Tick
	Stats    stats.RunStats
	// Modeled is the run's modeled execution time in model nanoseconds on
	// Processors modeled processors (see package stats for methodology).
	Modeled    float64
	Processors int
	// SeqWork caches the counters needed to compute a sequential baseline
	// time for speedups (populated for EngineSeq runs).
	SeqWork metrics.LPCounters
	// Metrics is the machine-readable run report (counters, histograms,
	// gauges, globals) from the run's metrics registry.
	Metrics *metrics.Report
	// Supervision, when the run was supervised, records recoveries and
	// fallbacks.
	Supervision *SupervisionReport
	// Adapt, when the run was adaptive, records every controller
	// decision and the final operating point.
	Adapt *AdaptReport
}

// SpeedupOver computes this run's modeled speedup over a sequential
// baseline report.
func (r *Report) SpeedupOver(baseline *Report, m stats.CostModel) float64 {
	if m == (stats.CostModel{}) {
		m = stats.DefaultCostModel()
	}
	seqTime := stats.SequentialTime(m,
		baseline.SeqWork.Evaluations,
		baseline.SeqWork.EventsApplied,
		baseline.SeqWork.EventsScheduled)
	return stats.Speedup(seqTime, r.Modeled)
}

// simulateOnce runs the selected engine exactly once. hangTimeout arms the
// asynchronous engines' progress watchdog; zero leaves it off. A panic on
// the calling goroutine (the serial engines run there) is recovered into a
// structured SimError, completing panic isolation for every engine.
func simulateOnce(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, opts Options, hangTimeout time.Duration) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, supervise.FromPanic(opts.Engine.String(), -1, "run", 0, r)
		}
	}()
	if opts.Restore != nil && opts.Engine == EngineOblivious {
		return nil, fmt.Errorf("core: the oblivious engine is cycle-based and cannot resume from an event checkpoint")
	}
	sink := opts.Metrics
	if sink == nil {
		reg := metrics.NewRegistry(opts.Engine.String())
		if opts.PProfLabels {
			reg.EnablePProf()
		}
		sink = reg
	}

	part, coneCount, err := buildPartition(c, opts)
	if err != nil {
		return nil, err
	}
	sweep := opts.ConeSplit

	rep = &Report{Engine: opts.Engine, Processors: opts.LPs}
	switch opts.Engine {
	case EngineSeq:
		res, err := seq.Run(c, stim, until, seq.Config{
			System: opts.System, Queue: opts.Queue, Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer, Boot: opts.Restore,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.SeqWork = res.Counters
		rep.Stats.LPs = []metrics.LPCounters{res.Counters}
		rep.Processors = 1
		rep.Modeled = stats.SequentialTime(opts.Cost,
			res.Counters.Evaluations, res.Counters.EventsApplied, res.Counters.EventsScheduled)
	case EngineOblivious:
		res, err := oblivious.Run(c, stim, oblivious.Config{
			System: opts.System, Workers: opts.LPs, Watch: opts.Watch, Cost: opts.Cost,
			Metrics: sink, Tracer: opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform = res.Values, res.Waveform
		rep.Stats = res.Stats
		rep.Modeled = res.Stats.ModeledTime(opts.Cost)
	case EngineSync:
		res, err := sync.Run(c, stim, until, sync.Config{
			Partition: part, System: opts.System, Queue: opts.Queue,
			Watch: opts.Watch, Cost: opts.Cost, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer, Boot: opts.Restore,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
		rep.Modeled = res.Stats.ModeledTime(opts.Cost)
	case EngineCMB, EngineCMBDemand, EngineCMBDetect:
		mode := cmb.NullEager
		switch opts.Engine {
		case EngineCMBDemand:
			mode = cmb.NullDemand
		case EngineCMBDetect:
			mode = cmb.DeadlockRecovery
		}
		res, err := cmb.Run(c, stim, until, cmb.Config{
			Partition: part, Mode: mode, System: opts.System, Queue: opts.Queue,
			Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer, Chaos: opts.Chaos,
			HangTimeout: hangTimeout, Boot: opts.Restore, Sweep: sweep,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
		rep.Modeled = res.Stats.ModeledTime(opts.Cost)
	case EngineTimeWarp, EngineTimeWarpLazy:
		cancel := opts.Cancellation
		if opts.Engine == EngineTimeWarpLazy {
			cancel = timewarp.Lazy
		}
		res, err := timewarp.Run(c, stim, until, timewarp.Config{
			Partition: part, Cancellation: cancel, StateSaving: opts.StateSaving,
			Window: opts.Window, System: opts.System, Queue: opts.Queue,
			Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer, Chaos: opts.Chaos,
			HangTimeout: hangTimeout, HistoryLimit: opts.HistoryLimit, Boot: opts.Restore,
			Sweep: sweep, Adapt: opts.winCtl,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
		rep.Modeled = res.Stats.ModeledTime(opts.Cost)
	case EngineHybrid:
		res, err := hybrid.Run(c, stim, until, hybrid.Config{
			Partition: part, IntraWorkers: opts.IntraWorkers,
			Cancellation: opts.Cancellation, StateSaving: opts.StateSaving,
			Window: opts.Window, System: opts.System, Cost: opts.Cost,
			Watch: opts.Watch, MaxEvents: opts.MaxEvents,
			Metrics: sink, Tracer: opts.Tracer, Chaos: opts.Chaos,
			HangTimeout: hangTimeout, HistoryLimit: opts.HistoryLimit, Boot: opts.Restore,
			Sweep: sweep, Adapt: opts.winCtl,
		})
		if err != nil {
			return nil, err
		}
		rep.Values, rep.Waveform, rep.EndTime = res.Values, res.Waveform, res.EndTime
		rep.Stats = res.Stats
		rep.Modeled = res.ModeledTime()
		rep.Processors = res.TotalProcessors()
	default:
		return nil, fmt.Errorf("core: unknown engine %v", opts.Engine)
	}
	if reg, ok := sink.(*metrics.Registry); ok {
		reg.SetLabel("engine", opts.Engine.String())
		reg.SetLabel("lps", fmt.Sprint(rep.Processors))
		if opts.Engine.Parallel() {
			if opts.ConeSplit {
				reg.SetLabel("partition", partition.MethodConeSplit.String())
			} else {
				reg.SetLabel("partition", opts.Partition.String())
			}
		}
		if coneCount >= 0 {
			reg.SetGauge("cone_count", float64(coneCount))
		}
		rep.Metrics = reg.Report()
	}
	return rep, nil
}

// buildPartition derives the gate→LP assignment an engine run will use
// (nil for the serial engines). Shared between simulateOnce and the
// adaptive rebalancer, which needs the same assignment to translate
// per-LP utilization into per-gate weights.
func buildPartition(c *circuit.Circuit, opts Options) (*partition.Partition, int, error) {
	if !opts.Engine.Parallel() {
		return nil, -1, nil
	}
	if opts.prebuilt != nil {
		return opts.prebuilt, opts.prebuiltCones, nil
	}
	if opts.ConeSplit {
		lps := opts.LPs
		if lps < 1 {
			lps = 4
		}
		w := opts.Weights
		if w == nil {
			w = partition.WeightsUniform(c)
		}
		part, coneCount := partition.ConeSplit(c, lps, w)
		if err := part.Validate(c); err != nil {
			return nil, -1, err
		}
		return part, coneCount, nil
	}
	part, err := partition.New(opts.Partition, c, opts.LPs, partition.Options{
		Weights: opts.Weights,
		Seed:    opts.PartitionSeed,
	})
	if err != nil {
		return nil, -1, err
	}
	return part, -1, nil
}

// PreSimulate runs the paper's pre-simulation workload estimation: a
// sequential profiling run over a prefix of the stimulus, converted into
// partitioner weights.
func PreSimulate(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, sys logic.System) (partition.Weights, error) {
	res, err := seq.Run(c, stim, until, seq.Config{System: sys, Profile: true})
	if err != nil {
		return nil, err
	}
	return partition.WeightsFromProfile(res.EvalsByGate), nil
}

// Horizon re-exports the settling-margin heuristic for callers that only
// import core.
func Horizon(c *circuit.Circuit, stim *vectors.Stimulus) circuit.Tick {
	return seq.Horizon(c, stim)
}
