package core

import (
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/adapt"
	"repro/internal/sim/ckpt"
	"repro/internal/trace"
)

// adaptOpts is the shared static configuration of the adaptive tests.
func adaptOpts(e Engine) Options {
	return Options{
		Engine: e, LPs: 4, Partition: partition.MethodFM, System: logic.TwoValued,
	}
}

// TestAdaptiveMatchesStatic runs every parallel start engine under live
// adaptive control and requires the waveform, final values, and end
// time to be bit-identical to the sequential golden run — adaptation
// may change when things execute, never what is computed.
func TestAdaptiveMatchesStatic(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)
	for _, e := range []Engine{EngineCMB, EngineTimeWarp, EngineHybrid} {
		t.Run(e.String(), func(t *testing.T) {
			opts := adaptOpts(e)
			opts.Adapt = &adapt.Spec{Every: 300}
			rep, err := Simulate(c, stim, until, opts)
			if err != nil {
				t.Fatal(err)
			}
			if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
				t.Fatalf("adaptive waveform differs from golden:\n%s", d)
			}
			for g := range base.Values {
				if base.Values[g] != rep.Values[g] {
					t.Fatalf("final value mismatch at gate %d", g)
				}
			}
			if rep.EndTime != base.EndTime {
				t.Fatalf("EndTime %d, want %d", rep.EndTime, base.EndTime)
			}
			if rep.Adapt == nil {
				t.Fatal("no AdaptReport on adaptive run")
			}
			if rep.Adapt.Segments < 2 {
				t.Fatalf("cadence 300 produced %d segments, want >= 2", rep.Adapt.Segments)
			}
			if rep.Metrics == nil || rep.Metrics.Gauges["adapt_segments"] != float64(rep.Adapt.Segments) {
				t.Fatalf("adapt_segments gauge missing or wrong: %+v", rep.Metrics.Gauges)
			}
			if len(rep.Adapt.Decisions) == 0 {
				t.Fatal("empty decision log: controllers never observed the run")
			}
		})
	}
}

// TestAdaptiveScriptedSwitch forces a mid-run engine migration via the
// decision script and requires the checkpoint/restart handoff to be
// invisible in the waveform.
func TestAdaptiveScriptedSwitch(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)
	opts := adaptOpts(EngineCMB)
	opts.Adapt = &adapt.Spec{
		Every: 300, NoSwitch: true, NoRebalance: true,
		Script: []adapt.Decision{{Round: 0, Kind: adapt.KindSwitch, To: "timewarp"}},
	}
	rep, err := Simulate(c, stim, until, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
		t.Fatalf("switched waveform differs from golden:\n%s", d)
	}
	if rep.Adapt.EngineSwitches != 1 {
		t.Fatalf("EngineSwitches = %d, want 1 (decisions: %v)", rep.Adapt.EngineSwitches, rep.Adapt.Decisions)
	}
	if rep.Adapt.FinalEngine != EngineTimeWarp {
		t.Fatalf("FinalEngine = %v, want timewarp", rep.Adapt.FinalEngine)
	}
	if rep.Metrics.Gauges["adapt_engine_switches"] != 1 {
		t.Fatalf("adapt_engine_switches gauge wrong: %+v", rep.Metrics.Gauges)
	}
	// The From side of the logged switch must name the engine it left.
	var found bool
	for _, d := range rep.Adapt.Decisions {
		if d.Kind == adapt.KindSwitch {
			found = true
			if d.From != "cmb" || d.To != "timewarp" {
				t.Fatalf("switch logged as %s -> %s", d.From, d.To)
			}
		}
	}
	if !found {
		t.Fatalf("no switch decision in log: %v", rep.Adapt.Decisions)
	}
}

// TestAdaptiveScriptedRebalanceAndWindow forces a measured-weight
// repartition and a window change; both must leave the waveform
// untouched and land in the report.
func TestAdaptiveScriptedRebalanceAndWindow(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)
	opts := adaptOpts(EngineTimeWarp)
	opts.Adapt = &adapt.Spec{
		Every: 300, NoSwitch: true, NoRebalance: true, NoWindow: true,
		Script: []adapt.Decision{
			{Round: 0, Kind: adapt.KindRebalance},
			{Round: 1, Kind: adapt.KindWindow, Window: 64},
		},
	}
	rep, err := Simulate(c, stim, until, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
		t.Fatalf("rebalanced waveform differs from golden:\n%s", d)
	}
	if rep.Adapt.Rebalances != 1 {
		t.Fatalf("Rebalances = %d, want 1 (decisions: %v)", rep.Adapt.Rebalances, rep.Adapt.Decisions)
	}
	if rep.Metrics.Gauges["adapt_rebalances"] != 1 {
		t.Fatalf("adapt_rebalances gauge wrong: %+v", rep.Metrics.Gauges)
	}
}

// TestAdaptiveWithHistoryLimit combines the PR 4 memory clamp with the
// live window controller: the clamp must keep winning (the run
// completes without livelock) and the waveform must stay golden.
func TestAdaptiveWithHistoryLimit(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)
	opts := adaptOpts(EngineTimeWarp)
	opts.HistoryLimit = 512
	opts.Adapt = &adapt.Spec{Every: 300, NoSwitch: true, NoRebalance: true}
	rep, err := Simulate(c, stim, until, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
		t.Fatalf("clamped adaptive waveform differs from golden:\n%s", d)
	}
	if rep.Metrics.Gauges["mem_throttle_rounds"] < 1 {
		t.Fatalf("tiny history limit never throttled: %+v", rep.Metrics.Gauges)
	}
}

// TestAdaptiveComposesWithRestore resumes an adaptive run from a
// mid-run checkpoint; the spliced waveform must be golden even though
// the first segment boundary is not aligned to the restore point.
func TestAdaptiveComposesWithRestore(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)
	dir := t.TempDir()
	if _, err := Simulate(c, stim, until, Options{
		Engine: EngineSeq, System: logic.TwoValued,
		CheckpointEvery: 250, CheckpointDir: dir,
	}); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.json"))
	if len(names) == 0 {
		t.Fatal("no checkpoints written")
	}
	sort.Strings(names)
	st, err := ckpt.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	opts := adaptOpts(EngineCMB)
	opts.Restore = st
	opts.Adapt = &adapt.Spec{Every: 300}
	rep, err := Simulate(c, stim, until, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
		t.Fatalf("restored adaptive waveform differs from golden:\n%s", d)
	}
	if rep.EndTime != base.EndTime {
		t.Fatalf("EndTime %d, want %d", rep.EndTime, base.EndTime)
	}
}

// TestAdaptiveComposesWithSupervision runs each probing segment under
// the supervision layer; a clean run must record no recoveries and
// still adapt.
func TestAdaptiveComposesWithSupervision(t *testing.T) {
	c, stim, until := workload(t)
	base := golden(t, c, stim, until)
	opts := adaptOpts(EngineTimeWarp)
	opts.Supervise = &SuperviseOptions{Retries: 1, Fallback: true}
	opts.Adapt = &adapt.Spec{Every: 300}
	rep, err := Simulate(c, stim, until, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(base.Waveform, rep.Waveform, 5); d != "" {
		t.Fatalf("supervised adaptive waveform differs from golden:\n%s", d)
	}
	if rep.Supervision == nil {
		t.Fatal("no supervision report")
	}
	if rep.Supervision.Recoveries != 0 || rep.Supervision.Fallbacks != 0 {
		t.Fatalf("clean run recorded recoveries: %+v", rep.Supervision)
	}
	if rep.Adapt == nil || rep.Adapt.Segments < 2 {
		t.Fatalf("supervised run did not segment: %+v", rep.Adapt)
	}
}

// TestAdaptiveRejections: serial engines, wide runs, and un-restorable
// switch targets are configuration errors, not silent fallbacks.
func TestAdaptiveRejections(t *testing.T) {
	c, stim, until := workload(t)
	opts := adaptOpts(EngineSeq)
	opts.Adapt = &adapt.Spec{}
	if _, err := Simulate(c, stim, until, opts); err == nil {
		t.Fatal("adaptive seq run accepted")
	}
	if _, err := SimulateWide(c, nil, until, Options{Engine: EngineCMB, Adapt: &adapt.Spec{}}); err == nil {
		t.Fatal("adaptive wide run accepted")
	}
	opts = adaptOpts(EngineCMB)
	opts.Adapt = &adapt.Spec{
		Every:  300,
		Script: []adapt.Decision{{Round: 0, Kind: adapt.KindSwitch, To: "oblivious"}},
	}
	if _, err := Simulate(c, stim, until, opts); err == nil {
		t.Fatal("switch to the oblivious engine accepted")
	}
	opts.Adapt.Script[0].To = "no-such-engine"
	if _, err := Simulate(c, stim, until, opts); err == nil {
		t.Fatal("switch to unknown engine accepted")
	}
}

// TestAdaptiveProbeBudget: with a cadence that would produce many
// segments, MaxProbes must cap probing with an explicit commit
// decision, after which the run proceeds unsegmented.
func TestAdaptiveProbeBudget(t *testing.T) {
	c, stim, until := workload(t)
	opts := adaptOpts(EngineCMB)
	// Huge SettleAfter so the switch controller never commits on its own.
	opts.Adapt = &adapt.Spec{Every: 100, MaxProbes: 2, Switch: adapt.SwitchConfig{SettleAfter: 1000}}
	rep, err := Simulate(c, stim, until, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adapt.Segments != 3 { // 2 probes + 1 committed run to horizon
		t.Fatalf("Segments = %d, want 3 (decisions: %v)", rep.Adapt.Segments, rep.Adapt.Decisions)
	}
	if !rep.Adapt.Committed {
		t.Fatal("probe budget did not commit")
	}
	var commits int
	for _, d := range rep.Adapt.Decisions {
		if d.Kind == adapt.KindCommit {
			commits++
		}
	}
	if commits != 1 {
		t.Fatalf("commit decisions = %d, want 1: %v", commits, rep.Adapt.Decisions)
	}
}
