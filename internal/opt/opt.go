// Package opt is the netlist optimizer: a pipeline of remap-preserving
// transformation passes over the immutable circuit.Circuit, run before
// partitioning so the parallel engines simulate a smaller, shallower
// netlist. The classical pre-pass transforms are here — constant
// propagation, structural hashing, buffer/double-inverter cleanup, and
// dead-gate elimination — plus an opt-in fanin-tree flattening pass that
// trades transient (glitch) accuracy for levelized depth.
//
// # Exactness contract
//
// Every pass in DefaultPasses preserves the simulated waveform of the
// primary outputs bit-exactly on every engine, and the state evolution of
// every surviving sequential element, for both the scalar 9-valued and the
// wide 4-valued planes. Three of the passes (constprop, hash, dce) are
// stronger: every surviving net's full event trajectory is unchanged.
// Buffer cleanup re-times a value through an absorbed buffer, which can
// interchange U and X on the absorbed net itself; that class of difference
// is closed under every gate table and collapses at the To01 boundaries
// (Output gates, DFF/DLatch sampling), so primary outputs and sequential
// state remain bit-identical.
//
// Two passes are deliberately NOT in DefaultPasses because they are weaker
// than the contract. "invpair" (double-inverter collapse) is bit-exact
// under the 4- and 9-valued systems, whose nets boot as U/X (Not(U)=U, so
// the removed inverter never fires at the t=0 sweep), but the 2-valued
// system boots every net at Zero and the removed inverter's real
// Not(0)=1 warm-up pulse from the initial full-dirty sweep is observable
// at primary outputs. "balance" preserves only settled (cycle-accurate)
// behavior; see balance.go.
//
// Each pass records a GateID substitution, and Optimize composes them into
// a Remap so recorded waveforms, golden fixtures, stimuli, and VCD names
// expressed against the original netlist still resolve after optimization.
package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// DefaultPasses is the exact pipeline: constant propagation first (it
// exposes structural duplicates), then hashing, buffer cleanup, and dead
// gate elimination. Optimize iterates the whole pipeline to a fixpoint.
var DefaultPasses = []string{"constprop", "hash", "bufclean", "dce"}

// AllPasses lists every registered pass name, DefaultPasses order first.
var AllPasses = []string{"constprop", "hash", "bufclean", "dce", "invpair", "balance"}

// Options configures an optimization run.
type Options struct {
	// Passes names the passes to run, in order, per round; nil means
	// DefaultPasses. See AllPasses for the registry.
	Passes []string
	// Keep lists original-netlist gates whose nets must survive with their
	// exact event trajectories (e.g. externally watched nets). Kept gates
	// are never dropped, merged away, or re-timed. Primary inputs and
	// Output gates are always kept implicitly.
	Keep []circuit.GateID
	// MaxRounds bounds the pipeline fixpoint iteration; 0 means 10.
	MaxRounds int
}

// Stats reports what an optimization run did.
type Stats struct {
	GatesBefore  int `json:"gates_before"`
	GatesAfter   int `json:"gates_after"`
	GatesRemoved int `json:"gates_removed"` // GatesBefore - GatesAfter
	GatesHashed  int `json:"gates_hashed"`  // merged by structural hashing
	ConstFolds   int `json:"const_folds"`   // constant-propagation rewrites
	BufsCleaned  int `json:"bufs_cleaned"`  // absorbed sole-fanout buffers
	InvPairs     int `json:"inv_pairs"`     // collapsed double inverters (opt-in)
	DeadRemoved  int `json:"dead_removed"`  // gates outside the support cone
	Flattened    int `json:"flattened"`     // fanin subtrees inlined by balance
	LevelsBefore int `json:"levels_before"` // levelized depth before
	LevelsAfter  int `json:"levels_after"`  // levelized depth after
	Rounds       int `json:"rounds"`        // pipeline rounds until fixpoint
}

// Result is an optimized circuit plus the identity bridge back to the
// original netlist.
type Result struct {
	Circuit *circuit.Circuit
	Remap   Remap
	Stats   Stats
}

// passFn mutates the work representation and reports whether it changed
// anything.
type passFn func(w *work) bool

var passRegistry = map[string]passFn{
	"constprop": passConstProp,
	"hash":      passHash,
	"bufclean":  passBufClean,
	"dce":       passDCE,
	"invpair":   passInvPair,
	"balance":   passBalance,
}

// ParsePasses validates a comma-separated pass list ("" means the default
// pipeline) into a pass-name slice for Options.Passes.
func ParsePasses(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	names := strings.Split(s, ",")
	for _, n := range names {
		if _, ok := passRegistry[n]; !ok {
			return nil, fmt.Errorf("opt: unknown pass %q (have %v)", n, AllPasses)
		}
	}
	return names, nil
}

// Optimize runs the pass pipeline over c and returns the optimized
// circuit, the GateID remap, and the run's statistics. The input circuit
// is never mutated.
func Optimize(c *circuit.Circuit, o Options) (*Result, error) {
	passes := o.Passes
	if passes == nil {
		passes = DefaultPasses
	}
	fns := make([]passFn, len(passes))
	for i, name := range passes {
		fn, ok := passRegistry[name]
		if !ok {
			return nil, fmt.Errorf("opt: unknown pass %q (have %v)", name, AllPasses)
		}
		fns[i] = fn
	}
	maxRounds := o.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10
	}

	w := newWork(c, o.Keep)
	st := &w.stats
	st.GatesBefore = len(c.Gates)
	if lv, err := c.Levelize(); err == nil {
		st.LevelsBefore = len(lv)
	}

	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, fn := range fns {
			if fn(w) {
				changed = true
			}
		}
		st.Rounds = round + 1
		if !changed {
			break
		}
	}

	outGates := make([]circuit.Gate, len(w.gates))
	copy(outGates, w.gates)
	oc, err := circuit.New(outGates, w.inputs, w.outputs)
	if err != nil {
		return nil, fmt.Errorf("opt: optimized netlist invalid: %w", err)
	}
	st.GatesAfter = len(oc.Gates)
	st.GatesRemoved = st.GatesBefore - st.GatesAfter
	if lv, err := oc.Levelize(); err == nil {
		st.LevelsAfter = len(lv)
	}
	return &Result{
		Circuit: oc,
		Remap:   Remap{Fwd: w.fwd, Back: w.back},
		Stats:   *st,
	}, nil
}

// Remap is the GateID bridge between the original and optimized netlists.
type Remap struct {
	// Fwd maps original GateIDs to optimized ones; -1 marks a gate that was
	// eliminated without a surviving representative (dead logic). A gate
	// merged into a structural twin maps to the twin.
	Fwd []circuit.GateID
	// Back maps optimized GateIDs to the original gate each survivor
	// descends from (the representative's original ID).
	Back []circuit.GateID
}

// Gate maps one original GateID forward; ok is false for eliminated gates.
func (r Remap) Gate(g circuit.GateID) (circuit.GateID, bool) {
	if int(g) < 0 || int(g) >= len(r.Fwd) || r.Fwd[g] < 0 {
		return -1, false
	}
	return r.Fwd[g], true
}

// Stimulus rewrites a stimulus expressed against the original netlist.
// Primary inputs always survive optimization, so this cannot fail on a
// stimulus that validated against the original circuit.
func (r Remap) Stimulus(s *vectors.Stimulus) (*vectors.Stimulus, error) {
	out := &vectors.Stimulus{Changes: make([]vectors.Change, len(s.Changes)), End: s.End}
	for i, ch := range s.Changes {
		ng, ok := r.Gate(ch.Input)
		if !ok {
			return nil, fmt.Errorf("opt: stimulus input %d was eliminated", ch.Input)
		}
		out.Changes[i] = vectors.Change{Time: ch.Time, Input: ng, Value: ch.Value}
	}
	out.Sort()
	return out, nil
}

// Watch rewrites a watch list of original GateIDs. Nets on the Keep list,
// primary inputs, and Output gates always survive; other nets may have
// been eliminated, which is an error here.
func (r Remap) Watch(gates []circuit.GateID) ([]circuit.GateID, error) {
	if gates == nil {
		return nil, nil
	}
	out := make([]circuit.GateID, len(gates))
	for i, g := range gates {
		ng, ok := r.Gate(g)
		if !ok {
			return nil, fmt.Errorf("opt: watched net %d was eliminated (pass it in Options.Keep)", g)
		}
		out[i] = ng
	}
	return out, nil
}

// WaveformBack rewrites a waveform recorded on the optimized netlist into
// original-netlist GateIDs, re-sorting into canonical (Time, Gate) order,
// so it compares directly against an unoptimized run's recording.
func (r Remap) WaveformBack(wf trace.Waveform) trace.Waveform {
	out := make(trace.Waveform, len(wf))
	for i, s := range wf {
		g := s.Gate
		if int(g) >= 0 && int(g) < len(r.Back) {
			g = r.Back[s.Gate]
		}
		out[i] = trace.Sample{Time: s.Time, Gate: g, Value: s.Value}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Gate < out[j].Gate
	})
	return out
}
