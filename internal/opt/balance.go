package opt

import "repro/internal/circuit"

// maxBalanceFanin caps the fanin width flattening may create; beyond this
// an n-ary fold evaluation itself becomes the bottleneck.
const maxBalanceFanin = 32

// passBalance flattens associative fanin trees to cut levelized depth: a
// same-family fold (And under And/Nand, Or under Or/Nor, Xor under
// Xor/Xnor) whose only reader is its parent is inlined into the parent's
// fanin list. The parent then computes the same settled value one level
// earlier.
//
// Unlike every DefaultPasses member, this pass is only cycle-accurate:
// the inlined subtree's propagation delay disappears from the path, so
// transient (glitch) timing changes even though every settled value — and
// therefore the oblivious engine's waveform, all sequential state at
// settled clock edges, and settled primary outputs — is preserved. It
// must be requested explicitly via Options.Passes.
func passBalance(w *work) bool {
	fo := w.distinctFanout()
	changed := 0
	for i := range w.gates {
		g := &w.gates[i]
		var inner circuit.Kind
		switch g.Kind {
		case circuit.And, circuit.Nand:
			inner = circuit.And
		case circuit.Or, circuit.Nor:
			inner = circuit.Or
		case circuit.Xor, circuit.Xnor:
			inner = circuit.Xor
		default:
			continue
		}
		out := make([]circuit.GateID, 0, len(g.Fanin))
		width := len(g.Fanin)
		did := false
		for _, f := range g.Fanin {
			fg := &w.gates[f]
			if fg.Kind == inner && !w.keep[f] &&
				len(fo[f]) == 1 && fo[f][0] == circuit.GateID(i) &&
				width+len(fg.Fanin)-1 <= maxBalanceFanin {
				out = append(out, fg.Fanin...)
				width += len(fg.Fanin) - 1
				did = true
				changed++
			} else {
				out = append(out, f)
			}
		}
		if did {
			g.Fanin = out
		}
	}
	if changed == 0 {
		return false
	}
	w.stats.Flattened += changed
	return true
}
