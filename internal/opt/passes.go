package opt

import (
	"sort"

	"repro/internal/circuit"
)

// work is the mutable pipeline representation: a deep copy of the gate
// array plus the evolving original<->current GateID bridge. Passes mutate
// gates in place and retire gates through compact, which applies a
// substitution, renumbers densely, and composes the remap.
type work struct {
	gates   []circuit.Gate
	inputs  []circuit.GateID
	outputs []circuit.GateID
	// fwd maps original IDs to current ones (-1 = eliminated); back maps
	// current IDs to the original gate they descend from.
	fwd  []circuit.GateID
	back []circuit.GateID
	// keep marks gates that must survive with their exact trajectory:
	// primary inputs, Output gates, and the caller's Keep list.
	keep  []bool
	stats Stats
}

func newWork(c *circuit.Circuit, keepList []circuit.GateID) *work {
	n := len(c.Gates)
	w := &work{
		gates:   make([]circuit.Gate, n),
		inputs:  append([]circuit.GateID(nil), c.Inputs...),
		outputs: append([]circuit.GateID(nil), c.Outputs...),
		fwd:     make([]circuit.GateID, n),
		back:    make([]circuit.GateID, n),
		keep:    make([]bool, n),
	}
	for i := range c.Gates {
		g := c.Gates[i]
		g.Fanin = append([]circuit.GateID(nil), g.Fanin...)
		w.gates[i] = g
		w.fwd[i] = circuit.GateID(i)
		w.back[i] = circuit.GateID(i)
		if g.Kind == circuit.Input || g.Kind == circuit.Output {
			w.keep[i] = true
		}
	}
	for _, g := range c.Inputs {
		w.keep[g] = true
	}
	for _, g := range c.Outputs {
		w.keep[g] = true
	}
	for _, g := range keepList {
		if 0 <= int(g) && int(g) < n {
			w.keep[g] = true
		}
	}
	return w
}

// distinctFanout lists, per net, the gates reading it, each reader once
// even when it reads the net through several pins.
func (w *work) distinctFanout() [][]circuit.GateID {
	fo := make([][]circuit.GateID, len(w.gates))
	last := make([]circuit.GateID, len(w.gates))
	for i := range last {
		last[i] = -1
	}
	for i := range w.gates {
		for _, f := range w.gates[i].Fanin {
			if last[f] != circuit.GateID(i) {
				last[f] = circuit.GateID(i)
				fo[f] = append(fo[f], circuit.GateID(i))
			}
		}
	}
	return fo
}

// compact applies a substitution (repl, with repl[g] != g meaning "net g
// is now driven by net repl[g]") and a drop set, rewrites every surviving
// fanin, renumbers densely, and composes the remap. Every replaced gate
// must also be dropped, and no survivor may reference a gate that is
// dropped without a replacement.
func (w *work) compact(repl []circuit.GateID, drop []bool) {
	n := len(w.gates)
	res := func(g circuit.GateID) circuit.GateID {
		for repl[g] != g {
			g = repl[g]
		}
		return g
	}
	newID := make([]circuit.GateID, n)
	id := circuit.GateID(0)
	for i := 0; i < n; i++ {
		if drop[i] {
			newID[i] = -1
			continue
		}
		newID[i] = id
		id++
	}
	gates := make([]circuit.Gate, 0, id)
	back := make([]circuit.GateID, 0, id)
	keep := make([]bool, 0, id)
	for i := 0; i < n; i++ {
		if drop[i] {
			continue
		}
		g := w.gates[i]
		for p, f := range g.Fanin {
			g.Fanin[p] = newID[res(f)]
		}
		gates = append(gates, g)
		back = append(back, w.back[i])
		keep = append(keep, w.keep[i])
	}
	for i, in := range w.inputs {
		w.inputs[i] = newID[res(in)]
	}
	for i, out := range w.outputs {
		w.outputs[i] = newID[res(out)]
	}
	for o := range w.fwd {
		if w.fwd[o] < 0 {
			continue
		}
		w.fwd[o] = newID[res(w.fwd[o])]
	}
	w.gates, w.back, w.keep = gates, back, keep
}

func (w *work) identity() ([]circuit.GateID, []bool) {
	repl := make([]circuit.GateID, len(w.gates))
	for i := range repl {
		repl[i] = circuit.GateID(i)
	}
	return repl, make([]bool, len(w.gates))
}

// ---------------------------------------------------------------- constprop

// passConstProp folds Const0/Const1/ConstX drivers into their readers.
// Every rewrite keeps the reader's kind family and delay and only shrinks
// or redirects its fanin, so the reader's own event trajectory — initial
// evaluation at t=0 scheduling at t=Delay, then re-evaluations on input
// events with the projected-value filter — is preserved bit-exactly in
// all nine logic values. Rules that would change a net's pre-delay value
// (e.g. replacing Buf(Const0) by the constant itself, which is driven
// from t=0 instead of t=Delay) are deliberately absent.
func passConstProp(w *work) bool {
	changed := false
	for i := range w.gates {
		g := &w.gates[i]
		var c bool
		switch g.Kind {
		case circuit.And, circuit.Nand:
			c = w.foldDominated(g, circuit.Const0, circuit.Const1)
		case circuit.Or, circuit.Nor:
			c = w.foldDominated(g, circuit.Const1, circuit.Const0)
		case circuit.Xor, circuit.Xnor:
			c = w.foldXor(g)
		case circuit.Mux2:
			c = w.foldMux(g)
		case circuit.Tri:
			c = w.foldTri(g)
		}
		if c {
			w.stats.ConstFolds++
			changed = true
		}
	}
	return changed
}

// foldDominated handles the And/Nand and Or/Nor families: a dominating
// constant fanin (0 for and, 1 for or) forces the fold result for every
// input value — including U and the weak values — so the whole fanin
// shrinks to that one constant; identity constants (1 for and, 0 for or)
// drop out of the fold as long as at least one fanin remains.
func (w *work) foldDominated(g *circuit.Gate, dominating, identity circuit.Kind) bool {
	for _, f := range g.Fanin {
		if w.gates[f].Kind == dominating {
			if len(g.Fanin) == 1 {
				return false // already folded
			}
			g.Fanin = []circuit.GateID{f}
			return true
		}
	}
	kept := g.Fanin[:0:0]
	var dropped circuit.GateID = -1
	for _, f := range g.Fanin {
		if w.gates[f].Kind == identity {
			dropped = f
			continue
		}
		kept = append(kept, f)
	}
	if dropped < 0 {
		return false
	}
	if len(kept) == 0 {
		kept = append(kept, dropped) // all-identity: keep one, fold is unchanged
		if len(g.Fanin) == 1 {
			return false
		}
	}
	g.Fanin = kept
	return true
}

// foldXor drops Const0 fanins from Xor/Xnor folds and removes Const1
// fanins by flipping the gate's polarity (Xor <-> Xnor) once per removal,
// which is exact because xor-with-One acts as a fixed involution on the
// fold accumulator for every logic value. At least one fanin is retained.
func (w *work) foldXor(g *circuit.Gate) bool {
	kept := g.Fanin[:0:0]
	flips := 0
	var c0, c1 circuit.GateID = -1, -1
	for _, f := range g.Fanin {
		switch w.gates[f].Kind {
		case circuit.Const0:
			c0 = f
		case circuit.Const1:
			c1 = f
			flips++
		default:
			kept = append(kept, f)
		}
	}
	if c0 < 0 && c1 < 0 {
		return false
	}
	if len(kept) == 0 {
		// All-constant fold: retain one constant so arity stays >= 1. A
		// retained Const1 keeps contributing its flip inside the fold.
		if c0 >= 0 {
			kept = append(kept, c0)
		} else {
			kept = append(kept, c1)
			flips--
		}
		if len(g.Fanin) == 1 {
			return false
		}
	}
	g.Fanin = kept
	if flips%2 == 1 {
		if g.Kind == circuit.Xor {
			g.Kind = circuit.Xnor
		} else {
			g.Kind = circuit.Xor
		}
	}
	return true
}

// foldMux reduces Mux2 to Buf when the select is a known constant (the
// mux output is exactly the selected data input's Buf in every case) or
// when both data pins read the same net (the pessimistic unknown-select
// agreement then always returns that net's Buf).
func (w *work) foldMux(g *circuit.Gate) bool {
	sel, d0, d1 := g.Fanin[0], g.Fanin[1], g.Fanin[2]
	switch w.gates[sel].Kind {
	case circuit.Const0:
		g.Kind, g.Fanin = circuit.Buf, []circuit.GateID{d0}
		return true
	case circuit.Const1:
		g.Kind, g.Fanin = circuit.Buf, []circuit.GateID{d1}
		return true
	}
	if d0 == d1 {
		g.Kind, g.Fanin = circuit.Buf, []circuit.GateID{d0}
		return true
	}
	return false
}

// foldTri reduces Tri by its enable: always-enabled is a plain Buf of the
// data pin; always-disabled drives Z regardless of data, so the data pin
// is dropped (Tri arity is exactly 2, so the enable is read twice);
// unknown-constant enable always drives X, the Buf of the ConstX net.
func (w *work) foldTri(g *circuit.Gate) bool {
	en, d := g.Fanin[0], g.Fanin[1]
	switch w.gates[en].Kind {
	case circuit.Const1:
		g.Kind, g.Fanin = circuit.Buf, []circuit.GateID{d}
		return true
	case circuit.Const0:
		if d == en {
			return false
		}
		g.Fanin = []circuit.GateID{en, en}
		return true
	case circuit.ConstX:
		g.Kind, g.Fanin = circuit.Buf, []circuit.GateID{en}
		return true
	}
	return false
}

// --------------------------------------------------------------------- hash

// commutativeKind reports the kinds whose fold is invariant under fanin
// permutation (verified exhaustively over value triples in the tests), so
// their hash key uses the sorted fanin multiset.
func commutativeKind(k circuit.Kind) bool {
	switch k {
	case circuit.And, circuit.Nand, circuit.Or, circuit.Nor,
		circuit.Xor, circuit.Xnor, circuit.Resolve:
		return true
	}
	return false
}

type hashKey struct {
	kind  circuit.Kind
	delay circuit.Tick
	fanin string
}

func faninKey(fanin []circuit.GateID, commutative bool) string {
	ids := fanin
	if commutative && !sort.SliceIsSorted(ids, func(a, b int) bool { return ids[a] < ids[b] }) {
		ids = append([]circuit.GateID(nil), fanin...)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	}
	buf := make([]byte, 0, 4*len(ids))
	for _, f := range ids {
		buf = append(buf, byte(f), byte(f>>8), byte(f>>16), byte(f>>24))
	}
	return string(buf)
}

// passHash merges structurally identical gates: same kind, same delay,
// and the same fanin (as a multiset for commutative folds, positionally
// otherwise). Identical gates compute identical event trajectories —
// including identical sequential state evolution for twin DFF/DLatch
// pairs — so redirecting readers to one representative is exact. Constant
// sources merge by kind alone (their nets carry the constant from t=0
// regardless of delay). Inputs and Output gates never merge; a kept gate
// can serve as a representative but is never merged away.
func passHash(w *work) bool {
	repl, drop := w.identity()
	reps := make(map[hashKey]circuit.GateID, len(w.gates))
	merged := 0
	for i := range w.gates {
		g := &w.gates[i]
		if g.Kind == circuit.Input || g.Kind == circuit.Output {
			continue
		}
		var k hashKey
		if g.Kind.Source() {
			k = hashKey{kind: g.Kind}
		} else {
			k = hashKey{g.Kind, g.Delay, faninKey(g.Fanin, commutativeKind(g.Kind))}
		}
		rep, ok := reps[k]
		if !ok {
			reps[k] = circuit.GateID(i)
			continue
		}
		switch {
		case w.keep[i] && w.keep[rep]:
			continue // two pinned nets: both must survive
		case w.keep[i]:
			repl[rep], drop[rep] = circuit.GateID(i), true
			reps[k] = circuit.GateID(i)
		default:
			repl[i], drop[i] = rep, true
		}
		merged++
	}
	if merged == 0 {
		return false
	}
	w.stats.GatesHashed += merged
	w.compact(repl, drop)
	return true
}

// ----------------------------------------------------------------- bufclean

// absorbableDriver reports the kinds a sole-fanout buffer may be absorbed
// into by summing delays. Eligible drivers are the pure combinational
// folds whose output range is {U, X, 0, 1}: for those values the buffer's
// To01 projection only interchanges U and X, a difference every gate
// table preserves as-a-class and every To01 boundary (Output, DFF/DLatch
// sampling) collapses, so primary outputs and sequential state are
// bit-identical. Tri and Resolve drivers are excluded — they emit Z and
// weak values, which Buf projects to different strengths (Buf(Z)=X,
// Buf(L)=0) that a downstream Resolve would genuinely distinguish.
// Sequential drivers are excluded because their hold-current-value
// re-evaluations are only suppressed when the output delay is unchanged,
// and Output drivers because their nets are externally observed.
func absorbableDriver(k circuit.Kind) bool {
	switch k {
	case circuit.Buf, circuit.Not, circuit.And, circuit.Nand,
		circuit.Or, circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Mux2:
		return true
	}
	return false
}

// passBufClean folds a buffer that is its driver's only reader into the
// driver by summing delays. This is exact on every value system: under
// zero-boot (2-valued) the buffer's t=0 evaluation Buf(0)=0 is suppressed
// and steady transitions arrive at the same absolute times, and under
// U-boot the absorbed net maps to its driver identically up to the U/X
// class described on absorbableDriver.
func passBufClean(w *work) bool {
	changed := false
	fo := w.distinctFanout()
	repl, drop := w.identity()
	touched := make([]bool, len(w.gates))
	absorbed := 0
	for i := range w.gates {
		g := &w.gates[i]
		if g.Kind != circuit.Buf || w.keep[i] || touched[i] {
			continue
		}
		x := g.Fanin[0]
		if w.keep[x] || touched[x] || !absorbableDriver(w.gates[x].Kind) {
			continue
		}
		if readers := fo[x]; len(readers) != 1 || readers[0] != circuit.GateID(i) {
			continue
		}
		w.gates[x].Delay += g.Delay
		repl[i], drop[i] = x, true
		touched[i], touched[x] = true, true
		absorbed++
	}
	if absorbed > 0 {
		w.stats.BufsCleaned += absorbed
		w.compact(repl, drop)
		changed = true
	}
	return changed
}

// ------------------------------------------------------------------ invpair

// passInvPair collapses a Not(Not(x)) pair by rewriting the outer Not
// into a single-fanin And reading x with the summed delay — And with one
// input is the identity fold, which equals not-of-not on all nine values
// (both map U to U, whereas Buf would project U to X). Opt-in, not part
// of DefaultPasses: it is bit-exact only on the 4- and 9-valued systems.
// The 2-valued system boots every net at Zero, so the initial full-dirty
// sweep makes the inner inverter emit a real Not(0)=1 warm-up pulse that
// the collapsed form no longer produces; only settled behavior survives
// there (same caveat class as balance, see balance.go).
func passInvPair(w *work) bool {
	changed := false
	for i := range w.gates {
		g := &w.gates[i]
		if g.Kind != circuit.Not || w.keep[i] {
			continue
		}
		inner := &w.gates[g.Fanin[0]]
		if inner.Kind != circuit.Not {
			continue
		}
		g.Kind = circuit.And
		g.Fanin = []circuit.GateID{inner.Fanin[0]}
		g.Delay += inner.Delay
		w.stats.InvPairs++
		changed = true
	}
	return changed
}

// ---------------------------------------------------------------------- dce

// passDCE drops every gate outside the backward support cone of the
// observation roots: Output gates, sequential elements, and kept nets
// (primary inputs are kept, so stimuli always resolve). Removing a gate
// no root transitively reads cannot affect any observed trajectory.
func passDCE(w *work) bool {
	n := len(w.gates)
	live := make([]bool, n)
	stack := make([]circuit.GateID, 0, n)
	for i := range w.gates {
		if w.keep[i] || w.gates[i].Kind == circuit.Output || w.gates[i].Kind.Sequential() {
			live[i] = true
			stack = append(stack, circuit.GateID(i))
		}
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range w.gates[g].Fanin {
			if !live[f] {
				live[f] = true
				stack = append(stack, f)
			}
		}
	}
	repl, drop := w.identity()
	dead := 0
	for i := range live {
		if !live[i] {
			drop[i] = true
			dead++
		}
	}
	if dead == 0 {
		return false
	}
	w.stats.DeadRemoved += dead
	w.compact(repl, drop)
	return true
}
