package opt

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/trace"
	"repro/internal/vectors"
)

func allValues() []logic.Value {
	vs := make([]logic.Value, 0, int(logic.NumValues))
	for v := logic.Value(0); v < logic.NumValues; v++ {
		vs = append(vs, v)
	}
	return vs
}

func evalComb(t *testing.T, kind circuit.Kind, fanin ...logic.Value) logic.Value {
	t.Helper()
	out, _ := circuit.Evaluate(kind, fanin, logic.U, logic.U)
	return out
}

// TestNotNotEqualsSingleFaninAnd pins the identity behind double-inverter
// collapse: not(not(v)) equals the single-fanin And fold (and(One, v)) on
// every one of the nine values — and differs from Buf on U, which is why
// the collapse must NOT produce a Buf.
func TestNotNotEqualsSingleFaninAnd(t *testing.T) {
	for _, v := range allValues() {
		notNot := logic.Not(logic.Not(v))
		and1 := evalComb(t, circuit.And, v)
		if notNot != and1 {
			t.Errorf("not(not(%v)) = %v but And(%v) = %v", v, notNot, v, and1)
		}
	}
	if buf := evalComb(t, circuit.Buf, logic.U); buf == logic.Not(logic.Not(logic.U)) {
		t.Fatalf("Buf(U) unexpectedly equals not(not(U)); the collapse rule could use Buf")
	}
}

// TestFoldPermutationInvariance pins the structural-hashing assumption
// that the commutative kinds' folds are invariant under fanin permutation,
// exhaustively over all 9^3 value triples.
func TestFoldPermutationInvariance(t *testing.T) {
	kinds := []circuit.Kind{
		circuit.And, circuit.Nand, circuit.Or, circuit.Nor,
		circuit.Xor, circuit.Xnor, circuit.Resolve,
	}
	vals := allValues()
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, k := range kinds {
		for _, a := range vals {
			for _, b := range vals {
				for _, c := range vals {
					in := [3]logic.Value{a, b, c}
					want := evalComb(t, k, a, b, c)
					for _, p := range perms[1:] {
						got := evalComb(t, k, in[p[0]], in[p[1]], in[p[2]])
						if got != want {
							t.Fatalf("%v(%v,%v,%v): permutation %v gives %v, want %v",
								k, a, b, c, p, got, want)
						}
					}
				}
			}
		}
	}
}

// TestConstPropRulesExhaustive verifies every constant-propagation rewrite
// at the evaluation level, for all combinations of the remaining fanin
// values: the rewritten gate must compute the identical output.
func TestConstPropRulesExhaustive(t *testing.T) {
	vals := allValues()
	for _, a := range vals {
		for _, b := range vals {
			// Dominating constants.
			for _, k := range []circuit.Kind{circuit.And, circuit.Nand} {
				if got, want := evalComb(t, k, a, logic.Zero, b), evalComb(t, k, logic.Zero); got != want {
					t.Fatalf("%v(%v,0,%v)=%v want %v", k, a, b, got, want)
				}
			}
			for _, k := range []circuit.Kind{circuit.Or, circuit.Nor} {
				if got, want := evalComb(t, k, a, logic.One, b), evalComb(t, k, logic.One); got != want {
					t.Fatalf("%v(%v,1,%v)=%v want %v", k, a, b, got, want)
				}
			}
			// Identity constants drop out.
			for _, k := range []circuit.Kind{circuit.And, circuit.Nand} {
				if got, want := evalComb(t, k, a, logic.One, b), evalComb(t, k, a, b); got != want {
					t.Fatalf("%v(%v,1,%v)=%v want %v", k, a, b, got, want)
				}
			}
			for _, k := range []circuit.Kind{circuit.Or, circuit.Nor} {
				if got, want := evalComb(t, k, a, logic.Zero, b), evalComb(t, k, a, b); got != want {
					t.Fatalf("%v(%v,0,%v)=%v want %v", k, a, b, got, want)
				}
			}
			for _, k := range []circuit.Kind{circuit.Xor, circuit.Xnor} {
				if got, want := evalComb(t, k, a, logic.Zero, b), evalComb(t, k, a, b); got != want {
					t.Fatalf("%v(%v,0,%v)=%v want %v", k, a, b, got, want)
				}
			}
			// Xor polarity flip: dropping a One toggles Xor <-> Xnor.
			if got, want := evalComb(t, circuit.Xor, a, logic.One, b), evalComb(t, circuit.Xnor, a, b); got != want {
				t.Fatalf("Xor(%v,1,%v)=%v want Xnor=%v", a, b, got, want)
			}
			if got, want := evalComb(t, circuit.Xnor, a, logic.One, b), evalComb(t, circuit.Xor, a, b); got != want {
				t.Fatalf("Xnor(%v,1,%v)=%v want Xor=%v", a, b, got, want)
			}
			// Mux with constant select is the selected pin's Buf; equal
			// data pins are that pin's Buf for ANY select value.
			if got, want := evalComb(t, circuit.Mux2, logic.Zero, a, b), evalComb(t, circuit.Buf, a); got != want {
				t.Fatalf("Mux2(0,%v,%v)=%v want Buf=%v", a, b, got, want)
			}
			if got, want := evalComb(t, circuit.Mux2, logic.One, a, b), evalComb(t, circuit.Buf, b); got != want {
				t.Fatalf("Mux2(1,%v,%v)=%v want Buf=%v", a, b, got, want)
			}
			if got, want := evalComb(t, circuit.Mux2, a, b, b), evalComb(t, circuit.Buf, b); got != want {
				t.Fatalf("Mux2(%v,%v,%v)=%v want Buf=%v", a, b, b, got, want)
			}
		}
		// Tri enables.
		if got, want := evalComb(t, circuit.Tri, logic.One, a), evalComb(t, circuit.Buf, a); got != want {
			t.Fatalf("Tri(1,%v)=%v want Buf=%v", a, got, want)
		}
		if got, want := evalComb(t, circuit.Tri, logic.Zero, a), evalComb(t, circuit.Tri, logic.Zero, logic.Zero); got != want {
			t.Fatalf("Tri(0,%v)=%v want %v", a, got, want)
		}
		if got, want := evalComb(t, circuit.Tri, logic.X, a), evalComb(t, circuit.Buf, logic.X); got != want {
			t.Fatalf("Tri(X,%v)=%v want %v", a, got, want)
		}
	}
}

// optFixture builds a small netlist exercising every pass: constants
// feeding and/or/xor/mux/tri, structural twins, buffer chains, a
// double-inverter pair, sequential state, and a dead cone.
func optFixture(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder()
	a := b.Input("a")
	x := b.Input("x")
	clk := b.Input("clk")
	c0 := b.Const("c0", logic.Zero)
	c1 := b.Const("c1", logic.One)

	andDom := b.Gate(circuit.And, "and_dom", a, c0, x)     // collapses to And(c0)
	orId := b.Gate(circuit.Or, "or_id", a, c0, x)          // drops c0
	xorFlip := b.Gate(circuit.Xor, "xor_flip", a, c1)      // becomes Xnor(a)
	mux := b.Gate(circuit.Mux2, "mux_sel1", c1, a, x)      // becomes Buf(x)
	tri := b.Gate(circuit.Tri, "tri_en", c1, x)            // becomes Buf(x)
	twin1 := b.Gate(circuit.Nand, "twin1", a, x)           // hash-merges with twin2
	twin2 := b.Gate(circuit.Nand, "twin2", x, a)           // (commutative multiset key)
	reader := b.Gate(circuit.Xor, "reader", twin1, twin2)  // becomes two-pin read
	inv1 := b.Gate(circuit.Not, "inv1", orId)              // double inverter
	inv2 := b.Gate(circuit.Not, "inv2", inv1)              // (collapses under invpair)
	buf1 := b.Gate(circuit.Buf, "buf1", xorFlip)           // absorbed into xorFlip
	buf2 := b.Gate(circuit.Buf, "buf2", buf1)              // then chain-absorbed
	ff := b.Gate(circuit.DFF, "ff", buf2, clk)             // keeps its cone alive
	deadA := b.Gate(circuit.And, "dead_a", a, x)           // dead cone:
	_ = b.Gate(circuit.Not, "dead_b", deadA)               // nothing reads it
	sum := b.Gate(circuit.Xor, "sum", andDom, mux, tri, reader, inv2, ff)
	b.Output("out", sum)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOptimizePipeline(t *testing.T) {
	c := optFixture(t)
	res, err := Optimize(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.GatesRemoved <= 0 || st.GatesAfter >= st.GatesBefore {
		t.Fatalf("no reduction: %+v", st)
	}
	if st.GatesHashed == 0 || st.ConstFolds == 0 || st.BufsCleaned == 0 || st.DeadRemoved == 0 {
		t.Fatalf("some pass did nothing: %+v", st)
	}
	if st.GatesBefore-st.GatesAfter != st.GatesRemoved {
		t.Fatalf("inconsistent removal accounting: %+v", st)
	}
	// Remap invariants: inputs and outputs survive; Fwd/Back compose to
	// the identity on surviving representatives.
	for _, in := range c.Inputs {
		ng, ok := res.Remap.Gate(in)
		if !ok {
			t.Fatalf("input %d eliminated", in)
		}
		if res.Circuit.Gates[ng].Name != c.Gates[in].Name {
			t.Fatalf("input %d name mismatch", in)
		}
	}
	for _, out := range c.Outputs {
		if _, ok := res.Remap.Gate(out); !ok {
			t.Fatalf("output %d eliminated", out)
		}
	}
	for ng, og := range res.Remap.Back {
		if fwd := res.Remap.Fwd[og]; fwd != circuit.GateID(ng) {
			t.Fatalf("Back[%d]=%d but Fwd[%d]=%d", ng, og, og, fwd)
		}
	}
	if _, ok := res.Circuit.ByName("dead_b"); ok {
		t.Fatal("dead gate survived")
	}

	// The merged twins leave the reader gate reading one net through two
	// pins — the shape the fanout/levelize layers must handle.
	reader, ok := c.ByName("reader")
	if !ok {
		t.Fatal("reader gate missing")
	}
	nr, ok := res.Remap.Gate(reader)
	if ok { // reader may itself fold further; if it survives, check pins
		fan := res.Circuit.Gates[nr].Fanin
		if len(fan) == 2 && fan[0] != fan[1] {
			t.Fatalf("twins not merged: reader fanin %v", fan)
		}
	}
	if _, err := res.Circuit.Levelize(); err != nil {
		t.Fatalf("optimized circuit does not levelize: %v", err)
	}
	checkWaveformEquivalent(t, c, res)
}

// checkWaveformEquivalent runs the original and optimized circuits under
// the same random stimulus on the sequential reference and requires
// bit-identical primary-output waveforms and final values.
func checkWaveformEquivalent(t *testing.T, c *circuit.Circuit, res *Result) {
	t.Helper()
	checkWaveformEquivalentOn(t, c, res, logic.TwoValued, logic.NineValued)
}

func checkWaveformEquivalentOn(t *testing.T, c *circuit.Circuit, res *Result, systems ...logic.System) {
	t.Helper()
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 24, Period: 16, Activity: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	until := core.Horizon(c, stim)
	ostim, err := res.Remap.Stimulus(stim)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range systems {
		ref, err := core.Simulate(c, stim, until, core.Options{Engine: core.EngineSeq, System: sys})
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.Simulate(res.Circuit, ostim, until, core.Options{Engine: core.EngineSeq, System: sys})
		if err != nil {
			t.Fatal(err)
		}
		if d := trace.Diff(ref.Waveform, res.Remap.WaveformBack(got.Waveform), 5); d != "" {
			t.Fatalf("system %v: optimized waveform differs:\n%s", sys, d)
		}
		for _, po := range c.Outputs {
			np, _ := res.Remap.Gate(po)
			if ref.Values[po] != got.Values[np] {
				t.Fatalf("system %v: PO %d final %v vs %v", sys, po, ref.Values[po], got.Values[np])
			}
		}
	}
}

// TestOptimizeIndividualPasses runs each registered pass alone and
// requires waveform equivalence (balance is settled-only and excluded
// here; see TestBalanceSettledEquivalence).
func TestOptimizeIndividualPasses(t *testing.T) {
	c := optFixture(t)
	for _, pass := range DefaultPasses {
		pass := pass
		t.Run(pass, func(t *testing.T) {
			res, err := Optimize(c, Options{Passes: []string{pass}})
			if err != nil {
				t.Fatal(err)
			}
			checkWaveformEquivalent(t, c, res)
		})
	}
}

// TestInvPairEquivalence: double-inverter collapse is bit-exact on the
// 9-valued system (nets boot as U and Not(U)=U, so the removed inverter
// never fires at the t=0 sweep) but only settled-equivalent on the
// 2-valued system (zero boot makes the inner inverter's Not(0)=1 warm-up
// pulse observable) — exactly the contract documented on passInvPair.
func TestInvPairEquivalence(t *testing.T) {
	c := optFixture(t)
	res, err := Optimize(c, Options{Passes: []string{"invpair", "dce"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.InvPairs == 0 {
		t.Fatalf("no inverter pair collapsed: %+v", res.Stats)
	}
	inv2, _ := c.ByName("inv2")
	ng, ok := res.Remap.Gate(inv2)
	if !ok {
		t.Fatal("collapsed pair's outer gate eliminated")
	}
	if g := res.Circuit.Gates[ng]; g.Kind != circuit.And || len(g.Fanin) != 1 {
		t.Fatalf("outer inverter rewrote to %v/%d fanin, want single-fanin And", g.Kind, len(g.Fanin))
	}
	checkWaveformEquivalentOn(t, c, res, logic.NineValued)

	// 2-valued: settled (oblivious) behavior still matches.
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 16, Period: 10, Activity: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ostim, err := res.Remap.Stimulus(stim)
	if err != nil {
		t.Fatal(err)
	}
	until := core.Horizon(c, stim)
	ref, err := core.Simulate(c, stim, until, core.Options{Engine: core.EngineOblivious, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Simulate(res.Circuit, ostim, until, core.Options{Engine: core.EngineOblivious, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(ref.Waveform, res.Remap.WaveformBack(got.Waveform), 5); d != "" {
		t.Fatalf("invpair oblivious 2-valued waveform differs:\n%s", d)
	}
}

// TestBalanceSettledEquivalence checks the opt-in flattening pass on the
// oblivious (cycle-based) engine, whose waveform ignores transient timing
// — the equivalence class balance actually preserves.
func TestBalanceSettledEquivalence(t *testing.T) {
	b := circuit.NewBuilder()
	var ins []circuit.GateID
	for _, n := range []string{"i0", "i1", "i2", "i3", "i4", "i5"} {
		ins = append(ins, b.Input(n))
	}
	a1 := b.Gate(circuit.And, "a1", ins[0], ins[1])
	a2 := b.Gate(circuit.And, "a2", a1, ins[2])
	a3 := b.Gate(circuit.And, "a3", a2, ins[3])
	o1 := b.Gate(circuit.Or, "o1", ins[4], ins[5])
	x1 := b.Gate(circuit.Xor, "x1", a3, o1)
	b.Output("out", x1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(c, Options{Passes: []string{"balance", "dce"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Flattened == 0 {
		t.Fatalf("balance flattened nothing: %+v", res.Stats)
	}
	if res.Stats.LevelsAfter >= res.Stats.LevelsBefore {
		t.Fatalf("no depth reduction: %+v", res.Stats)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 16, Period: 10, Activity: 0.8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ostim, err := res.Remap.Stimulus(stim)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Simulate(c, stim, core.Horizon(c, stim), core.Options{Engine: core.EngineOblivious})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Simulate(res.Circuit, ostim, core.Horizon(c, stim), core.Options{Engine: core.EngineOblivious})
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(ref.Waveform, res.Remap.WaveformBack(got.Waveform), 5); d != "" {
		t.Fatalf("balanced oblivious waveform differs:\n%s", d)
	}
}

// TestKeepPinsNet: a net on the Keep list survives even when dead, and
// its exact trajectory is preserved (it is never merged away).
func TestKeepPinsNet(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	x := b.Input("x")
	n1 := b.Gate(circuit.Nand, "n1", a, x)
	n2 := b.Gate(circuit.Nand, "n2", a, x) // structural twin of n1
	dead := b.Gate(circuit.Not, "dead", n2)
	b.Output("out", n1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = dead
	res, err := Optimize(c, Options{Keep: []circuit.GateID{n2}})
	if err != nil {
		t.Fatal(err)
	}
	ng, ok := res.Remap.Gate(n2)
	if !ok {
		t.Fatal("kept net eliminated")
	}
	if res.Circuit.Gates[ng].Name != "n2" {
		t.Fatalf("kept net merged away: maps to %q", res.Circuit.Gates[ng].Name)
	}
	// Without Keep, the twin merges and "dead" disappears.
	res2, err := Optimize(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res2.Circuit.ByName("dead"); ok {
		t.Fatal("dead cone survived default pipeline")
	}
	g1, _ := res2.Remap.Gate(n1)
	g2, ok := res2.Remap.Gate(n2)
	if !ok || g1 != g2 {
		t.Fatalf("twins not merged: %d vs %d", g1, g2)
	}
}

func TestParsePasses(t *testing.T) {
	if _, err := ParsePasses("constprop,nope"); err == nil {
		t.Fatal("unknown pass accepted")
	}
	ps, err := ParsePasses("hash,dce")
	if err != nil || len(ps) != 2 {
		t.Fatalf("ParsePasses: %v %v", ps, err)
	}
	if ps, err := ParsePasses(""); err != nil || ps != nil {
		t.Fatalf("empty spec: %v %v", ps, err)
	}
}
