package opt

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// FuzzOptimize asserts the optimizer's contract over generated netlists
// and arbitrary pass subsets: no panics; the optimized circuit satisfies
// every structural invariant the engines rely on (single dense ID space,
// in-range wiring, acyclic combinational graph, event-driven delays); the
// Remap is a consistent bridge; and for subsets of the exact default
// pipeline the sequential engine's primary-output waveform is
// bit-identical to the unoptimized run.
func FuzzOptimize(f *testing.F) {
	f.Add(int64(1), uint16(60), uint8(0), uint8(0b1111), uint8(3))
	f.Add(int64(7), uint16(200), uint8(30), uint8(0b0101), uint8(0))
	f.Add(int64(42), uint16(120), uint8(60), uint8(0b0010), uint8(255))
	f.Add(int64(-9), uint16(17), uint8(100), uint8(0b1000), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, gatesRaw uint16, ffPct, passMask, keepSel uint8) {
		gates := int(gatesRaw)%280 + 20
		var c *circuit.Circuit
		var err error
		if ffPct%101 > 0 {
			c, err = gen.RandomSeq(gen.RandomConfig{
				Gates: gates, Inputs: 6, Outputs: 4, Seed: seed,
				FFRatio: float64(ffPct%101) / 100,
			})
		} else {
			c, err = gen.RandomDAG(gen.RandomConfig{
				Gates: gates, Inputs: 6, Outputs: 4, Seed: seed, Locality: 0.5,
			})
		}
		if err != nil {
			t.Skip("generator rejected config")
		}

		var keep []circuit.GateID
		if keepSel > 0 {
			keep = append(keep, circuit.GateID(int(keepSel)%c.NumGates()))
		}
		var passes []string
		for i, name := range DefaultPasses {
			if passMask&(1<<i) != 0 {
				passes = append(passes, name)
			}
		}

		res, err := Optimize(c, Options{Passes: passes, Keep: keep})
		if err != nil {
			t.Fatalf("Optimize: %v", err)
		}
		checkOptimizedInvariants(t, c, res)

		// The full registry (including the settled-only opt-ins) must still
		// produce a structurally valid netlist and remap.
		all, err := Optimize(c, Options{Passes: AllPasses, Keep: keep})
		if err != nil {
			t.Fatalf("Optimize(AllPasses): %v", err)
		}
		checkOptimizedInvariants(t, c, all)

		// Waveform equivalence on the reference engine (exact subset only).
		stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 8, Period: 8, Activity: 0.6, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ostim, err := res.Remap.Stimulus(stim)
		if err != nil {
			t.Fatal(err)
		}
		until := core.Horizon(c, stim)
		for _, sys := range []logic.System{logic.TwoValued, logic.NineValued} {
			ref, err := core.Simulate(c, stim, until, core.Options{Engine: core.EngineSeq, System: sys})
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.Simulate(res.Circuit, ostim, until, core.Options{Engine: core.EngineSeq, System: sys})
			if err != nil {
				t.Fatal(err)
			}
			if d := trace.Diff(ref.Waveform, res.Remap.WaveformBack(got.Waveform), 3); d != "" {
				t.Fatalf("system %v passes %v: waveform differs:\n%s", sys, passes, d)
			}
		}
	})
}

func checkOptimizedInvariants(t *testing.T, c *circuit.Circuit, res *Result) {
	t.Helper()
	oc := res.Circuit
	if oc.NumGates() == 0 {
		t.Fatal("optimized to an empty circuit")
	}
	if err := oc.CheckEventDriven(); err != nil {
		t.Fatalf("optimized delays: %v", err)
	}
	if _, err := oc.Levelize(); err != nil {
		t.Fatalf("optimized circuit has a combinational cycle: %v", err)
	}
	for id := range oc.Gates {
		for _, fi := range oc.Gates[id].Fanin {
			if fi < 0 || int(fi) >= oc.NumGates() {
				t.Fatalf("gate %d fanin %d out of range", id, fi)
			}
		}
	}
	if len(res.Remap.Fwd) != c.NumGates() || len(res.Remap.Back) != oc.NumGates() {
		t.Fatalf("remap sized %d/%d for %d->%d gates",
			len(res.Remap.Fwd), len(res.Remap.Back), c.NumGates(), oc.NumGates())
	}
	for ng, og := range res.Remap.Back {
		if og < 0 || int(og) >= c.NumGates() {
			t.Fatalf("Back[%d]=%d out of range", ng, og)
		}
		if res.Remap.Fwd[og] != circuit.GateID(ng) {
			t.Fatalf("Back[%d]=%d but Fwd[%d]=%d", ng, og, og, res.Remap.Fwd[og])
		}
	}
	for og, ng := range res.Remap.Fwd {
		if ng < 0 {
			continue
		}
		if int(ng) >= oc.NumGates() {
			t.Fatalf("Fwd[%d]=%d out of range", og, ng)
		}
	}
	for _, in := range c.Inputs {
		if _, ok := res.Remap.Gate(in); !ok {
			t.Fatalf("primary input %d eliminated", in)
		}
	}
	for _, out := range c.Outputs {
		if _, ok := res.Remap.Gate(out); !ok {
			t.Fatalf("primary output %d eliminated", out)
		}
	}
}
