package eventq

// Wheel is the classic logic-simulator timing wheel: an array of slots,
// one tick wide each, covering the near future, with a heap holding the
// overflow beyond the horizon. Gate delays in logic simulation are small
// integers, so nearly every event lands directly in a slot and enqueue and
// dequeue are O(1).
//
// Invariant: every event in a slot has a time in [cur, cur+W), and because
// slot index is time mod W, all events within one slot share the same time.
type Wheel[T any] struct {
	slots    [][]item[T]
	cur      uint64 // current time cursor; no wheel event is earlier
	wheelCnt int
	overflow *Heap[T] // events at or beyond cur+W when pushed
	started  bool     // whether cur has been initialized by a push/pop
	lastPop  uint64
	err      error
}

// NewWheel returns an empty timing wheel with the given number of
// single-tick slots (the lookahead horizon). Sizes below 2 are raised to 2.
func NewWheel[T any](slots int) *Wheel[T] {
	if slots < 2 {
		slots = 2
	}
	return &Wheel[T]{
		slots:    make([][]item[T], slots),
		overflow: NewHeap[T](),
	}
}

// Len returns the number of pending events.
func (w *Wheel[T]) Len() int { return w.wheelCnt + w.overflow.Len() }

// horizon is the first time that does not fit in the wheel.
func (w *Wheel[T]) horizon() uint64 { return w.cur + uint64(len(w.slots)) }

// Push inserts an event.
func (w *Wheel[T]) Push(time uint64, v T) {
	if time < w.lastPop {
		w.err = pushFault(w.err, time, w.lastPop)
		return
	}
	if !w.started {
		w.cur = time
		w.started = true
	}
	if time < w.cur {
		// Earlier than the cursor but not earlier than the last pop can
		// only happen before anything was popped (afterwards cur equals the
		// last popped time). Rewind the cursor and demote wheel events that
		// no longer fit under the shrunken horizon to the overflow heap.
		w.cur = time
		for i, slot := range w.slots {
			kept := slot[:0]
			for _, it := range slot {
				if it.time >= w.horizon() {
					w.overflow.Push(it.time, it.v)
					w.wheelCnt--
				} else {
					kept = append(kept, it)
				}
			}
			for j := len(kept); j < len(slot); j++ {
				slot[j] = item[T]{}
			}
			w.slots[i] = kept
		}
	}
	if time >= w.horizon() {
		w.overflow.Push(time, v)
		return
	}
	idx := time % uint64(len(w.slots))
	w.slots[idx] = append(w.slots[idx], item[T]{time, v})
	w.wheelCnt++
}

// refill moves overflow events that now fit under the horizon into slots.
func (w *Wheel[T]) refill() {
	for {
		t, ok := w.overflow.PeekTime()
		if !ok || t >= w.horizon() {
			return
		}
		_, v, _ := w.overflow.PopMin()
		idx := t % uint64(len(w.slots))
		w.slots[idx] = append(w.slots[idx], item[T]{t, v})
		w.wheelCnt++
	}
}

// PeekTime returns the minimum pending time.
func (w *Wheel[T]) PeekTime() (uint64, bool) {
	if w.Len() == 0 {
		return 0, false
	}
	w.advanceToMin()
	return w.cur, true
}

// advanceToMin moves the cursor to the earliest pending event time.
func (w *Wheel[T]) advanceToMin() {
	if w.wheelCnt == 0 {
		// All pending events are in the overflow: jump.
		t, _ := w.overflow.PeekTime()
		w.cur = t
	}
	w.refill()
	for {
		idx := w.cur % uint64(len(w.slots))
		if len(w.slots[idx]) > 0 && w.slots[idx][0].time == w.cur {
			return
		}
		w.cur++
		w.refill()
	}
}

// Peek returns the next event without removing it.
func (w *Wheel[T]) Peek() (uint64, T, bool) {
	var zero T
	if w.Len() == 0 {
		return 0, zero, false
	}
	w.advanceToMin()
	slot := w.slots[w.cur%uint64(len(w.slots))]
	it := slot[len(slot)-1]
	return it.time, it.v, true
}

// ResetFloor permits pushes earlier than the last popped time; the push
// path already rewinds the cursor and demotes out-of-horizon events. The
// overflow heap shares the floor, since demotion pushes into it.
func (w *Wheel[T]) ResetFloor() {
	w.lastPop = 0
	w.overflow.ResetFloor()
}

// Err returns the latched push violation from the wheel or its
// overflow heap, if any.
func (w *Wheel[T]) Err() error {
	if w.err != nil {
		return w.err
	}
	return w.overflow.Err()
}

// PopMin removes an event with the minimum time.
func (w *Wheel[T]) PopMin() (uint64, T, bool) {
	var zero T
	if w.Len() == 0 {
		return 0, zero, false
	}
	w.advanceToMin()
	idx := w.cur % uint64(len(w.slots))
	slot := w.slots[idx]
	it := slot[len(slot)-1]
	slot[len(slot)-1] = item[T]{}
	w.slots[idx] = slot[:len(slot)-1]
	w.wheelCnt--
	w.lastPop = it.time
	return it.time, it.v, true
}
