package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

var impls = []struct {
	name string
	mk   func() Queue[int]
}{
	{"heap", func() Queue[int] { return NewHeap[int]() }},
	{"calendar", func() Queue[int] { return NewCalendar[int]() }},
	{"wheel16", func() Queue[int] { return NewWheel[int](16) }},
	{"wheel2", func() Queue[int] { return NewWheel[int](2) }},
}

func TestImplString(t *testing.T) {
	if ImplHeap.String() != "heap" || ImplCalendar.String() != "calendar" ||
		ImplWheel.String() != "wheel" {
		t.Fatal("Impl names wrong")
	}
	if Impl(9).String() != "Impl(9)" {
		t.Fatal("unknown impl name wrong")
	}
}

func TestNewDispatch(t *testing.T) {
	if _, ok := New[int](ImplHeap).(*Heap[int]); !ok {
		t.Error("New(ImplHeap) wrong type")
	}
	if _, ok := New[int](ImplCalendar).(*Calendar[int]); !ok {
		t.Error("New(ImplCalendar) wrong type")
	}
	if _, ok := New[int](ImplWheel).(*Wheel[int]); !ok {
		t.Error("New(ImplWheel) wrong type")
	}
	if _, ok := New[int](Impl(200)).(*Heap[int]); !ok {
		t.Error("New(unknown) should default to heap")
	}
}

func TestEmptyQueues(t *testing.T) {
	for _, im := range impls {
		q := im.mk()
		if q.Len() != 0 {
			t.Errorf("%s: empty Len != 0", im.name)
		}
		if _, ok := q.PeekTime(); ok {
			t.Errorf("%s: empty PeekTime ok", im.name)
		}
		if _, _, ok := q.PopMin(); ok {
			t.Errorf("%s: empty PopMin ok", im.name)
		}
	}
}

func TestSingleElement(t *testing.T) {
	for _, im := range impls {
		q := im.mk()
		q.Push(42, 7)
		if q.Len() != 1 {
			t.Errorf("%s: Len = %d", im.name, q.Len())
		}
		if tm, ok := q.PeekTime(); !ok || tm != 42 {
			t.Errorf("%s: PeekTime = %d,%v", im.name, tm, ok)
		}
		tm, v, ok := q.PopMin()
		if !ok || tm != 42 || v != 7 {
			t.Errorf("%s: PopMin = %d,%d,%v", im.name, tm, v, ok)
		}
		if q.Len() != 0 {
			t.Errorf("%s: Len after pop = %d", im.name, q.Len())
		}
	}
}

func TestAscendingOrder(t *testing.T) {
	for _, im := range impls {
		q := im.mk()
		times := []uint64{5, 1, 9, 3, 3, 7, 0, 100, 2, 2}
		for i, tm := range times {
			q.Push(tm, i)
		}
		var got []uint64
		for {
			tm, _, ok := q.PopMin()
			if !ok {
				break
			}
			got = append(got, tm)
		}
		if len(got) != len(times) {
			t.Fatalf("%s: popped %d of %d", im.name, len(got), len(times))
		}
		want := append([]uint64(nil), times...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: pop %d = %d, want %d", im.name, i, got[i], want[i])
			}
		}
	}
}

func TestPushEqualToLastPop(t *testing.T) {
	// Scheduling at exactly the current time is legal (same-timestep
	// events from sibling gates).
	for _, im := range impls {
		q := im.mk()
		q.Push(10, 0)
		q.PopMin()
		q.Push(10, 1)
		tm, v, ok := q.PopMin()
		if !ok || tm != 10 || v != 1 {
			t.Errorf("%s: pop = %d,%d,%v", im.name, tm, v, ok)
		}
	}
}

// TestModelConformance drives each implementation with a random
// interleaving of operations and compares it against a sorted-slice model.
func TestModelConformance(t *testing.T) {
	for _, im := range impls {
		t.Run(im.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				rng := rand.New(rand.NewSource(seed))
				q := im.mk()
				var model []uint64 // multiset of pending times
				floor := uint64(0) // last popped time
				next := 0
				for op := 0; op < 2000; op++ {
					if rng.Intn(3) != 0 || len(model) == 0 {
						// Push with simulator-like locality: close to floor.
						tm := floor + uint64(rng.Intn(50))
						q.Push(tm, next)
						next++
						model = append(model, tm)
					} else {
						wantLen := len(model)
						if q.Len() != wantLen {
							t.Fatalf("seed %d op %d: Len = %d, want %d", seed, op, q.Len(), wantLen)
						}
						sort.Slice(model, func(a, b int) bool { return model[a] < model[b] })
						want := model[0]
						model = model[1:]
						if pk, ok := q.PeekTime(); !ok || pk != want {
							t.Fatalf("seed %d op %d: PeekTime = %d,%v want %d", seed, op, pk, ok, want)
						}
						got, _, ok := q.PopMin()
						if !ok || got != want {
							t.Fatalf("seed %d op %d: PopMin = %d,%v want %d", seed, op, got, ok, want)
						}
						floor = got
					}
				}
				// Drain and verify the tail is fully sorted and complete.
				sort.Slice(model, func(a, b int) bool { return model[a] < model[b] })
				for i, want := range model {
					got, _, ok := q.PopMin()
					if !ok || got != want {
						t.Fatalf("seed %d drain %d: got %d,%v want %d", seed, i, got, ok, want)
					}
				}
				if q.Len() != 0 {
					t.Fatalf("seed %d: queue not empty after drain", seed)
				}
			}
		})
	}
}

// TestValuesSurviveIntact checks payloads are not mixed up across pops.
func TestValuesSurviveIntact(t *testing.T) {
	for _, im := range impls {
		q := im.mk()
		byTime := map[uint64]map[int]bool{}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 500; i++ {
			tm := uint64(rng.Intn(64))
			q.Push(tm, i)
			if byTime[tm] == nil {
				byTime[tm] = map[int]bool{}
			}
			byTime[tm][i] = true
		}
		for {
			tm, v, ok := q.PopMin()
			if !ok {
				break
			}
			if !byTime[tm][v] {
				t.Fatalf("%s: payload %d popped at wrong time %d", im.name, v, tm)
			}
			delete(byTime[tm], v)
		}
		for tm, vs := range byTime {
			if len(vs) > 0 {
				t.Fatalf("%s: events lost at time %d: %v", im.name, tm, vs)
			}
		}
	}
}

// TestLargeTimeJumps exercises calendar resizing and wheel overflow.
func TestLargeTimeJumps(t *testing.T) {
	for _, im := range impls {
		q := im.mk()
		times := []uint64{0, 1 << 30, 1 << 20, 5, 1 << 40, 1000}
		for i, tm := range times {
			q.Push(tm, i)
		}
		sorted := append([]uint64(nil), times...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		for i, want := range sorted {
			got, _, ok := q.PopMin()
			if !ok || got != want {
				t.Fatalf("%s: pop %d = %d,%v want %d", im.name, i, got, ok, want)
			}
		}
	}
}

// TestInterleavedPushPopMonotonic simulates the hold-and-advance pattern of
// an event-driven engine: pop a timestep, push into the near future.
func TestInterleavedPushPopMonotonic(t *testing.T) {
	for _, im := range impls {
		q := im.mk()
		q.Push(0, 0)
		last := uint64(0)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000 && q.Len() > 0; i++ {
			tm, _, _ := q.PopMin()
			if tm < last {
				t.Fatalf("%s: time went backwards %d -> %d", im.name, last, tm)
			}
			last = tm
			if rng.Intn(10) > 0 {
				q.Push(tm+uint64(1+rng.Intn(8)), i)
			}
			if rng.Intn(4) == 0 {
				q.Push(tm+uint64(1+rng.Intn(300)), i)
			}
		}
	}
}

func benchQueue(b *testing.B, q Queue[int]) {
	rng := rand.New(rand.NewSource(1))
	// Classic hold model: keep ~1k pending events, pop one push one.
	for i := 0; i < 1000; i++ {
		q.Push(uint64(rng.Intn(1000)), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm, _, _ := q.PopMin()
		q.Push(tm+uint64(1+rng.Intn(16)), i)
	}
}

func BenchmarkHeapHold(b *testing.B)     { benchQueue(b, NewHeap[int]()) }
func BenchmarkCalendarHold(b *testing.B) { benchQueue(b, NewCalendar[int]()) }
func BenchmarkWheelHold(b *testing.B)    { benchQueue(b, NewWheel[int](256)) }

// TestPeekMatchesPop checks Peek returns exactly what PopMin would.
func TestPeekMatchesPop(t *testing.T) {
	for _, im := range impls {
		q := im.mk()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 300; i++ {
			q.Push(uint64(rng.Intn(100)), i)
		}
		for q.Len() > 0 {
			pt, pv, pok := q.Peek()
			gt, gv, gok := q.PopMin()
			if !pok || !gok || pt != gt || pv != gv {
				t.Fatalf("%s: Peek (%d,%d,%v) != Pop (%d,%d,%v)", im.name, pt, pv, pok, gt, gv, gok)
			}
		}
		if _, _, ok := q.Peek(); ok {
			t.Fatalf("%s: Peek on empty ok", im.name)
		}
	}
}

// TestResetFloorAllowsRollbackPattern models Time Warp: pop forward, then
// requeue into the past after ResetFloor, and verify ordering still holds.
func TestResetFloorAllowsRollbackPattern(t *testing.T) {
	for _, im := range impls {
		q := im.mk()
		rng := rand.New(rand.NewSource(9))
		model := map[int]uint64{}
		next := 0
		floor := uint64(0)
		var popped []struct {
			t uint64
			v int
		}
		for op := 0; op < 4000; op++ {
			switch {
			case rng.Intn(4) == 0 && len(popped) > 4:
				// Rollback: requeue the last few popped events.
				q.ResetFloor()
				k := 1 + rng.Intn(4)
				for i := 0; i < k && len(popped) > 0; i++ {
					last := popped[len(popped)-1]
					popped = popped[:len(popped)-1]
					q.Push(last.t, last.v)
					model[last.v] = last.t
				}
				if len(popped) > 0 {
					floor = popped[len(popped)-1].t
				} else {
					floor = 0
				}
			case rng.Intn(2) == 0 || q.Len() == 0:
				tm := floor + uint64(rng.Intn(30))
				q.Push(tm, next)
				model[next] = tm
				next++
			default:
				tm, v, ok := q.PopMin()
				if !ok {
					t.Fatalf("%s: empty pop with %d modeled", im.name, len(model))
				}
				want, inModel := model[v]
				if !inModel || want != tm {
					t.Fatalf("%s: popped (%d,%d), model says %d,%v", im.name, tm, v, want, inModel)
				}
				// Must be the global minimum.
				for _, mt := range model {
					if mt < tm {
						t.Fatalf("%s: popped %d but %d pending", im.name, tm, mt)
					}
				}
				delete(model, v)
				popped = append(popped, struct {
					t uint64
					v int
				}{tm, v})
				floor = tm
			}
		}
	}
}
