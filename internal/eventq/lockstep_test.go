package eventq

import (
	"math/rand"
	"testing"
)

// lockstepQueues builds one queue per implementation, with the wheel sized
// small so pushes routinely land beyond the horizon and exercise the
// overflow heap plus its promotion path (refill).
func lockstepQueues() (names []string, qs []Queue[int]) {
	names = []string{"heap", "calendar", "wheel4"}
	qs = []Queue[int]{NewHeap[int](), NewCalendar[int](), NewWheel[int](4)}
	return
}

// driveLockstep feeds the identical operation sequence to every queue and
// requires identical observable behaviour: same Len, same PeekTime, same
// popped time at each pop, and the same payload multiset within each
// timestep (intra-timestep order is unspecified by the Queue contract, so
// payloads are compared per time, not per pop).
func driveLockstep(t *testing.T, ops []byte) {
	t.Helper()
	names, qs := lockstepQueues()
	floor := uint64(0)
	next := 1
	// popped[i][time][payload] counts what queue i returned per timestep.
	popped := make([]map[uint64]map[int]int, len(qs))
	for i := range popped {
		popped[i] = map[uint64]map[int]int{}
	}
	record := func(i int, tm uint64, v int) {
		m := popped[i][tm]
		if m == nil {
			m = map[int]int{}
			popped[i][tm] = m
		}
		m[v]++
	}
	popAll := func(opIdx int) {
		wantLen := qs[0].Len()
		var wantTime uint64
		for i, q := range qs {
			if q.Len() != wantLen {
				t.Fatalf("op %d: %s Len = %d, %s Len = %d", opIdx, names[0], wantLen, names[i], q.Len())
			}
			pk, pkOK := q.PeekTime()
			tm, v, ok := q.PopMin()
			if !ok {
				t.Fatalf("op %d: %s empty pop with Len %d", opIdx, names[i], wantLen)
			}
			if !pkOK || pk != tm {
				t.Fatalf("op %d: %s PeekTime %d,%v != popped %d", opIdx, names[i], pk, pkOK, tm)
			}
			if i == 0 {
				wantTime = tm
			} else if tm != wantTime {
				t.Fatalf("op %d: %s popped t=%d, %s popped t=%d", opIdx, names[0], wantTime, names[i], tm)
			}
			record(i, tm, v)
		}
		floor = wantTime
	}
	for opIdx, op := range ops {
		if op%3 != 0 || qs[0].Len() == 0 {
			// Push. The op byte picks an offset from the floor; every 7th
			// push jumps far past the wheel horizon to force overflow, and
			// later pops force promotion back into the slots.
			delta := uint64(op % 11)
			if op%7 == 0 {
				delta = 50 + uint64(op)
			}
			tm := floor + delta
			for _, q := range qs {
				q.Push(tm, next)
			}
			next++
			continue
		}
		popAll(opIdx)
	}
	// Drain completely, still in lockstep.
	for qs[0].Len() > 0 {
		popAll(-1)
	}
	for i := 1; i < len(qs); i++ {
		if qs[i].Len() != 0 {
			t.Fatalf("%s not empty after lockstep drain", names[i])
		}
	}
	// Per-timestep payload multisets must match across implementations.
	for i := 1; i < len(qs); i++ {
		if len(popped[i]) != len(popped[0]) {
			t.Fatalf("%s saw %d distinct times, %s saw %d", names[0], len(popped[0]), names[i], len(popped[i]))
		}
		for tm, want := range popped[0] {
			got := popped[i][tm]
			if len(got) != len(want) {
				t.Fatalf("t=%d: %s payloads %v, %s payloads %v", tm, names[0], want, names[i], got)
			}
			for v, n := range want {
				if got[v] != n {
					t.Fatalf("t=%d payload %d: %s count %d, %s count %d", tm, v, names[0], n, names[i], got[v])
				}
			}
		}
	}
}

// TestLockstepEquivalence drives all three implementations with identical
// random operation sequences and demands identical pop-time sequences,
// covering the wheel's overflow demotion/promotion and the calendar's
// resizing on the same inputs.
func TestLockstepEquivalence(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := make([]byte, 3000)
		rng.Read(ops)
		driveLockstep(t, ops)
	}
}

// FuzzLockstep lets the fuzzer search for operation sequences on which the
// implementations disagree. Seeds cover pure pushes, alternation, and the
// far-jump (overflow) path.
func FuzzLockstep(f *testing.F) {
	f.Add([]byte{1, 2, 4, 5, 7, 8})
	f.Add([]byte{0, 3, 6, 9, 12, 15})
	f.Add([]byte{7, 14, 21, 0, 3, 49, 3, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		driveLockstep(t, ops)
	})
}

// TestWheelWarmCycleZeroAllocs locks in the slot-reuse property: once the
// wheel has wrapped and its slot slices and overflow heap have grown, a
// steady-state pop/push cycle performs no allocation at all.
func TestWheelWarmCycleZeroAllocs(t *testing.T) {
	q := NewWheel[int](64)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 512; i++ {
		q.Push(uint64(rng.Intn(61)), i)
	}
	// Warm across several full wraparounds, including overflow promotions.
	v := 0
	cycle := func() {
		tm, _, _ := q.PopMin()
		d := uint64(1 + v%7)
		if v%97 == 0 {
			d = 300 // beyond the horizon: overflow, promoted later
		}
		q.Push(tm+d, v)
		v++
	}
	for i := 0; i < 8192; i++ {
		cycle()
	}
	if a := testing.AllocsPerRun(2000, cycle); a != 0 {
		t.Fatalf("warm wheel pop/push cycle allocates %.1f per op, want 0", a)
	}
}

// TestHeapWarmCycleZeroAllocs is the same property for the baseline heap:
// with capacity grown, hold-model churn is allocation-free.
func TestHeapWarmCycleZeroAllocs(t *testing.T) {
	q := NewHeap[int]()
	for i := 0; i < 1024; i++ {
		q.Push(uint64(i%63), i)
	}
	v := 0
	cycle := func() {
		tm, _, _ := q.PopMin()
		q.Push(tm+uint64(1+v%9), v)
		v++
	}
	for i := 0; i < 4096; i++ {
		cycle()
	}
	if a := testing.AllocsPerRun(2000, cycle); a != 0 {
		t.Fatalf("warm heap pop/push cycle allocates %.1f per op, want 0", a)
	}
}
