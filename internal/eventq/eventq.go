// Package eventq provides the pending-event set implementations used by the
// event-driven simulation engines.
//
// Event queue management is one of the serial bottlenecks the paper's
// "algorithm parallelism" discussion calls out, and the choice of structure
// matters enough that three classic implementations are provided behind one
// interface: a binary heap (the baseline), Brown's calendar queue, and the
// timing wheel traditionally used by logic simulators. Experiment E14
// benchmarks them against each other under simulator-like access patterns.
//
// All queues order events by ascending time. Events that share a time may
// be returned in any order; the engines' two-phase timestep semantics make
// the simulation result independent of intra-timestep ordering.
package eventq

import "fmt"

// Queue is a pending-event set holding values of type T keyed by time.
type Queue[T any] interface {
	// Push inserts an event. Pushing a time earlier than the last popped
	// time is always an engine bug (scheduling into the past); the event
	// is dropped and the violation is latched as a sentinel error on Err,
	// which engines surface as a causality failure at the next check.
	// Under the eventqdebug build tag the push panics instead, preserving
	// the crashing stack for queue-level debugging.
	Push(time uint64, v T)
	// PopMin removes and returns an event with the minimum time.
	// ok is false when the queue is empty.
	PopMin() (time uint64, v T, ok bool)
	// PeekTime returns the minimum time without removing anything.
	PeekTime() (uint64, bool)
	// Peek returns an event with the minimum time without removing it —
	// the same event the next PopMin would return.
	Peek() (time uint64, v T, ok bool)
	// Len returns the number of pending events.
	Len() int
	// ResetFloor forgets the last popped time, permitting pushes earlier
	// than previously popped events. Time Warp rollback requeues past
	// events and needs this; the other engines never call it.
	ResetFloor()
	// Err returns the first push-into-the-past violation, or nil. The
	// error is sticky: once set, the queue has dropped an event and its
	// contents are no longer trustworthy, so the run must abort.
	Err() error
}

// Impl names a queue implementation for configuration and reporting.
type Impl uint8

// The available implementations.
const (
	ImplHeap Impl = iota
	ImplCalendar
	ImplWheel
)

// String names the implementation.
func (i Impl) String() string {
	switch i {
	case ImplHeap:
		return "heap"
	case ImplCalendar:
		return "calendar"
	case ImplWheel:
		return "wheel"
	}
	return fmt.Sprintf("Impl(%d)", uint8(i))
}

// New constructs a queue of the given implementation.
func New[T any](impl Impl) Queue[T] {
	return NewCap[T](impl, 0)
}

// NewCap constructs a queue with a capacity hint: the backing storage is
// pre-grown so an engine's warm-up pushes skip the append growth chain.
// Implementations whose storage is already slotted (calendar, wheel) ignore
// the hint; their per-slot slices grow once and are reused thereafter.
func NewCap[T any](impl Impl, hint int) Queue[T] {
	switch impl {
	case ImplCalendar:
		return NewCalendar[T]()
	case ImplWheel:
		return NewWheel[T](256)
	default:
		h := NewHeap[T]()
		if hint > 0 {
			h.items = make([]item[T], 0, hint)
		}
		return h
	}
}

// item is a timed entry shared by the implementations.
type item[T any] struct {
	time uint64
	v    T
}

// Heap is a binary min-heap keyed by time. It is the baseline
// implementation: O(log n) per operation, no tuning parameters.
type Heap[T any] struct {
	items   []item[T]
	lastPop uint64
	err     error
}

// NewHeap returns an empty heap queue.
func NewHeap[T any]() *Heap[T] { return &Heap[T]{} }

// Len returns the number of pending events.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts an event.
func (h *Heap[T]) Push(time uint64, v T) {
	if time < h.lastPop {
		h.err = pushFault(h.err, time, h.lastPop)
		return
	}
	h.items = append(h.items, item[T]{time, v})
	h.up(len(h.items) - 1)
}

// Err returns the latched push violation, if any.
func (h *Heap[T]) Err() error { return h.err }

// PeekTime returns the minimum pending time.
func (h *Heap[T]) PeekTime() (uint64, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return h.items[0].time, true
}

// Peek returns the next event without removing it.
func (h *Heap[T]) Peek() (uint64, T, bool) {
	if len(h.items) == 0 {
		var zero T
		return 0, zero, false
	}
	return h.items[0].time, h.items[0].v, true
}

// ResetFloor permits pushes earlier than the last popped time.
func (h *Heap[T]) ResetFloor() { h.lastPop = 0 }

// PopMin removes an event with the minimum time.
func (h *Heap[T]) PopMin() (uint64, T, bool) {
	var zero T
	if len(h.items) == 0 {
		return 0, zero, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = item[T]{} // release references for GC
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	h.lastPop = top.time
	return top.time, top.v, true
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].time <= h.items[i].time {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.items[l].time < h.items[small].time {
			small = l
		}
		if r < n && h.items[r].time < h.items[small].time {
			small = r
		}
		if small == i {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}
