//go:build !eventqdebug

package eventq

import "testing"

// TestPushPastLatchesError: pushing into the past is an engine bug; in
// release builds the event is dropped and the violation latches on Err
// (under -tags eventqdebug it panics instead, covered by
// TestPushPastPanicsDebug in guard_debug_test.go).
func TestPushPastLatchesError(t *testing.T) {
	for _, im := range impls {
		q := im.mk()
		if q.Err() != nil {
			t.Errorf("%s: fresh queue has Err", im.name)
		}
		q.Push(10, 0)
		q.PopMin()
		q.Push(5, 1)
		err := q.Err()
		if err == nil {
			t.Errorf("%s: pushing into the past did not latch an error", im.name)
			continue
		}
		if q.Len() != 0 {
			t.Errorf("%s: violating event was enqueued (Len=%d)", im.name, q.Len())
		}
		// The first violation is the sticky root cause.
		q.Push(3, 2)
		if q.Err() != err {
			t.Errorf("%s: later violation replaced the first error", im.name)
		}
	}
}
