package eventq

import "sort"

// Calendar is R. Brown's calendar queue: an array of day-buckets spanning a
// repeating year. With a bucket width tuned to the inter-event gap it gives
// amortized O(1) enqueue/dequeue, which is why it became the standard
// pending-event set for high-activity discrete-event simulation.
type Calendar[T any] struct {
	buckets   [][]item[T] // each bucket is kept sorted by ascending time
	width     uint64      // bucket width in ticks
	size      int
	lastPop   uint64 // time of the last popped event
	curBucket int    // bucket the last pop came from / search starts at
	bucketTop uint64 // upper time bound of the current bucket's current year
	// resize thresholds
	growAt, shrinkAt int
	err              error
}

// NewCalendar returns an empty calendar queue with default geometry.
func NewCalendar[T any]() *Calendar[T] {
	c := &Calendar[T]{}
	c.resize(2, 1, 0)
	return c
}

// Len returns the number of pending events.
func (c *Calendar[T]) Len() int { return c.size }

// resize rebuilds the calendar with nbuckets of the given width, starting
// at time start, and re-inserts all pending events.
func (c *Calendar[T]) resize(nbuckets int, width uint64, start uint64) {
	old := c.buckets
	if width == 0 {
		width = 1
	}
	c.buckets = make([][]item[T], nbuckets)
	c.width = width
	c.growAt = 2 * nbuckets
	c.shrinkAt = nbuckets/2 - 2
	c.curBucket = int((start / width) % uint64(nbuckets))
	c.bucketTop = (start/width)*width + width
	for _, b := range old {
		for _, it := range b {
			c.insert(it)
		}
	}
}

// insert places an item into its day bucket, keeping the bucket sorted.
func (c *Calendar[T]) insert(it item[T]) {
	idx := int((it.time / c.width) % uint64(len(c.buckets)))
	b := c.buckets[idx]
	pos := sort.Search(len(b), func(i int) bool { return b[i].time > it.time })
	b = append(b, item[T]{})
	copy(b[pos+1:], b[pos:])
	b[pos] = it
	c.buckets[idx] = b
}

// Push inserts an event. A push earlier than the current cursor (possible
// only after ResetFloor) rewinds the cursor to the event's year, keeping
// the search invariant that nothing is pending before the cursor.
func (c *Calendar[T]) Push(time uint64, v T) {
	if time < c.lastPop {
		c.err = pushFault(c.err, time, c.lastPop)
		return
	}
	if time < c.bucketTop-c.width {
		c.curBucket = int((time / c.width) % uint64(len(c.buckets)))
		c.bucketTop = (time/c.width)*c.width + c.width
	}
	c.insert(item[T]{time, v})
	c.size++
	if c.size > c.growAt {
		c.resize(2*len(c.buckets), c.newWidth(), c.lastPop)
	}
}

// PeekTime returns the minimum pending time.
func (c *Calendar[T]) PeekTime() (uint64, bool) {
	if c.size == 0 {
		return 0, false
	}
	// Cheap path: search from the current bucket within the current year.
	bucket, top := c.curBucket, c.bucketTop
	for i := 0; i < len(c.buckets); i++ {
		b := c.buckets[bucket]
		if len(b) > 0 && b[0].time < top {
			return b[0].time, true
		}
		bucket = (bucket + 1) % len(c.buckets)
		top += c.width
	}
	// Sparse queue: direct search for the global minimum.
	min, ok := c.globalMin()
	if !ok {
		return 0, false
	}
	return min, true
}

// Peek returns the next event without removing it.
func (c *Calendar[T]) Peek() (uint64, T, bool) {
	var zero T
	if c.size == 0 {
		return 0, zero, false
	}
	bucket, top := c.curBucket, c.bucketTop
	for i := 0; i < len(c.buckets); i++ {
		b := c.buckets[bucket]
		if len(b) > 0 && b[0].time < top {
			return b[0].time, b[0].v, true
		}
		bucket = (bucket + 1) % len(c.buckets)
		top += c.width
	}
	// Sparse queue: return the head of the globally minimal bucket.
	var best *item[T]
	for i := range c.buckets {
		if b := c.buckets[i]; len(b) > 0 && (best == nil || b[0].time < best.time) {
			best = &b[0]
		}
	}
	if best == nil {
		return 0, zero, false
	}
	return best.time, best.v, true
}

// ResetFloor permits pushes earlier than the last popped time. The cursor
// is rewound so the next search starts from the new minimum's year.
func (c *Calendar[T]) ResetFloor() {
	c.lastPop = 0
	if min, ok := c.globalMin(); ok {
		c.curBucket = int((min / c.width) % uint64(len(c.buckets)))
		c.bucketTop = (min/c.width)*c.width + c.width
	}
}

// Err returns the latched push violation, if any.
func (c *Calendar[T]) Err() error { return c.err }

// globalMin scans every bucket head for the smallest time.
func (c *Calendar[T]) globalMin() (uint64, bool) {
	var best uint64
	found := false
	for _, b := range c.buckets {
		if len(b) > 0 && (!found || b[0].time < best) {
			best = b[0].time
			found = true
		}
	}
	return best, found
}

// PopMin removes an event with the minimum time.
func (c *Calendar[T]) PopMin() (uint64, T, bool) {
	var zero T
	if c.size == 0 {
		return 0, zero, false
	}
	for i := 0; i < len(c.buckets); i++ {
		b := c.buckets[c.curBucket]
		if len(b) > 0 && b[0].time < c.bucketTop {
			it := b[0]
			copy(b, b[1:])
			b[len(b)-1] = item[T]{}
			c.buckets[c.curBucket] = b[:len(b)-1]
			c.size--
			c.lastPop = it.time
			if c.size < c.shrinkAt && len(c.buckets) > 2 {
				c.resize(len(c.buckets)/2, c.newWidth(), c.lastPop)
			}
			return it.time, it.v, true
		}
		c.curBucket = (c.curBucket + 1) % len(c.buckets)
		c.bucketTop += c.width
	}
	// A full year passed without a direct hit: jump to the global minimum.
	min, _ := c.globalMin()
	c.curBucket = int((min / c.width) % uint64(len(c.buckets)))
	c.bucketTop = (min/c.width)*c.width + c.width
	return c.PopMin()
}

// newWidth estimates a bucket width from the spread of pending event times,
// following the spirit of Brown's sampling rule: aim for a handful of
// events per bucket across the occupied time range.
func (c *Calendar[T]) newWidth() uint64 {
	if c.size < 2 {
		return 1
	}
	var lo, hi uint64
	first := true
	for _, b := range c.buckets {
		for _, it := range b {
			if first {
				lo, hi = it.time, it.time
				first = false
				continue
			}
			if it.time < lo {
				lo = it.time
			}
			if it.time > hi {
				hi = it.time
			}
		}
	}
	span := hi - lo
	w := span * 3 / uint64(c.size)
	if w == 0 {
		w = 1
	}
	return w
}
