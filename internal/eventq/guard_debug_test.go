//go:build eventqdebug

package eventq

import "testing"

// TestPushPastPanicsDebug: under the eventqdebug build tag the original
// panic-at-push behaviour is preserved so the crashing stack points at
// the scheduling bug.
func TestPushPastPanicsDebug(t *testing.T) {
	for _, im := range impls {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: pushing into the past did not panic", im.name)
				}
			}()
			q := im.mk()
			q.Push(10, 0)
			q.PopMin()
			q.Push(5, 1)
		}()
	}
}
