//go:build eventqdebug

package eventq

import "fmt"

// pushFault handles a push-into-the-past violation in debug builds
// (-tags eventqdebug): panic at the push site so the crashing stack
// identifies the scheduling bug directly, instead of deferring to the
// engine's next Err poll.
func pushFault(prev error, time, lastPop uint64) error {
	panic(fmt.Sprintf("eventq: push at %d before last pop %d", time, lastPop))
}
