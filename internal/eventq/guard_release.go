//go:build !eventqdebug

package eventq

import "fmt"

// pushFault handles a push-into-the-past violation in release builds:
// the first violation is latched as a sentinel error (later ones keep
// the first, which is the root cause) and the event is dropped. Engines
// poll Queue.Err and abort the run as a causality failure.
func pushFault(prev error, time, lastPop uint64) error {
	if prev != nil {
		return prev
	}
	return fmt.Errorf("eventq: push at %d before last pop %d", time, lastPop)
}
