package mpsc

import (
	"sync"
	"testing"
	"time"
)

func TestPutDrainOrder(t *testing.T) {
	m := New[int]()
	for i := 0; i < 10; i++ {
		m.Put(i)
	}
	got := m.TryDrain(nil)
	if len(got) != 10 {
		t.Fatalf("drained %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
	if m.Len() != 0 {
		t.Fatal("not empty after drain")
	}
}

func TestPutAll(t *testing.T) {
	m := New[string]()
	m.PutAll([]string{"a", "b"})
	m.PutAll(nil) // no-op
	got := m.TryDrain(nil)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestWaitDrainBlocksUntilPut(t *testing.T) {
	m := New[int]()
	done := make(chan []int)
	go func() {
		buf, ok := m.WaitDrain(nil)
		if !ok {
			t.Error("WaitDrain returned !ok")
		}
		done <- buf
	}()
	time.Sleep(5 * time.Millisecond)
	m.Put(7)
	select {
	case got := <-done:
		if len(got) != 1 || got[0] != 7 {
			t.Fatalf("got %v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitDrain never woke")
	}
}

func TestPokeWakesWithoutItem(t *testing.T) {
	m := New[int]()
	done := make(chan int)
	go func() {
		buf, ok := m.WaitDrain(nil)
		if !ok {
			t.Error("closed?")
		}
		done <- len(buf)
	}()
	time.Sleep(5 * time.Millisecond)
	m.Poke()
	select {
	case n := <-done:
		if n != 0 {
			t.Fatalf("poke delivered %d items", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("poke did not wake")
	}
}

func TestPokeIsSticky(t *testing.T) {
	m := New[int]()
	m.Poke() // receiver not waiting yet
	buf, ok := m.WaitDrain(nil)
	if !ok || len(buf) != 0 {
		t.Fatalf("sticky poke broken: ok=%v n=%d", ok, len(buf))
	}
}

func TestCloseDeliversQueuedThenFalse(t *testing.T) {
	m := New[int]()
	m.Put(1)
	m.Close()
	buf, ok := m.WaitDrain(nil)
	if !ok || len(buf) != 1 {
		t.Fatalf("first drain after close: ok=%v n=%d", ok, len(buf))
	}
	buf, ok = m.WaitDrain(buf[:0])
	if ok || len(buf) != 0 {
		t.Fatalf("second drain after close: ok=%v n=%d", ok, len(buf))
	}
}

func TestConcurrentProducers(t *testing.T) {
	m := New[int]()
	const producers = 8
	const perProducer = 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m.Put(p*perProducer + i)
			}
		}(p)
	}
	seen := make(map[int]bool, producers*perProducer)
	lastPer := make([]int, producers)
	for i := range lastPer {
		lastPer[i] = -1
	}
	var buf []int
	for len(seen) < producers*perProducer {
		var ok bool
		buf, ok = m.WaitDrain(buf[:0])
		if !ok {
			t.Fatal("closed unexpectedly")
		}
		for _, v := range buf {
			if seen[v] {
				t.Fatalf("duplicate %d", v)
			}
			seen[v] = true
			// Per-producer FIFO must hold.
			p, i := v/perProducer, v%perProducer
			if i <= lastPer[p] {
				t.Fatalf("producer %d out of order: %d after %d", p, i, lastPer[p])
			}
			lastPer[p] = i
		}
	}
	wg.Wait()
}
