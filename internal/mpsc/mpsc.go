// Package mpsc provides an unbounded multi-producer single-consumer
// mailbox with blocking receive.
//
// The asynchronous engines (conservative and optimistic) use one mailbox
// per logical process as the message transport. Unboundedness is a
// correctness requirement, not a convenience: the blocking behaviour of
// conservative simulation must come from the protocol's input waiting rule,
// and rollback behaviour in Time Warp from timestamp comparison — never
// from transport back-pressure, which would introduce deadlocks that are
// artifacts of buffer sizing rather than of the algorithms under study.
package mpsc

import "sync"

// Mailbox is an unbounded MPSC queue. The zero value is not usable; call
// New. Multiple goroutines may Put concurrently; exactly one goroutine
// should drain.
type Mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
	pokes  int
}

// New returns an empty mailbox.
func New[T any]() *Mailbox[T] {
	return NewCap[T](0)
}

// NewCap returns an empty mailbox whose internal queue is pre-grown to the
// given capacity, so the first bursts of Put/PutAll skip the append growth
// chain. The mailbox stays unbounded; the hint only seeds capacity.
func NewCap[T any](hint int) *Mailbox[T] {
	m := &Mailbox[T]{}
	if hint > 0 {
		m.items = make([]T, 0, hint)
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Put enqueues one item.
func (m *Mailbox[T]) Put(v T) {
	m.mu.Lock()
	m.items = append(m.items, v)
	m.mu.Unlock()
	m.cond.Signal()
}

// PutAll enqueues a batch.
func (m *Mailbox[T]) PutAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	m.mu.Lock()
	m.items = append(m.items, vs...)
	m.mu.Unlock()
	m.cond.Signal()
}

// TryDrain appends all currently queued items to buf and returns it
// without blocking.
func (m *Mailbox[T]) TryDrain(buf []T) []T {
	m.mu.Lock()
	buf = append(buf, m.items...)
	m.items = m.items[:0]
	m.mu.Unlock()
	return buf
}

// WaitDrain blocks until at least one item is available, a Poke arrives,
// or the mailbox is closed; it then appends any queued items to buf. The
// second result is false once the mailbox is closed and empty.
func (m *Mailbox[T]) WaitDrain(buf []T) ([]T, bool) {
	m.mu.Lock()
	for len(m.items) == 0 && m.pokes == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.pokes > 0 {
		m.pokes = 0
	}
	ok := !(m.closed && len(m.items) == 0)
	buf = append(buf, m.items...)
	m.items = m.items[:0]
	m.mu.Unlock()
	return buf, ok
}

// Poke wakes a blocked receiver without delivering an item, so it can
// notice out-of-band state such as a pause flag. Pokes are sticky: a poke
// sent while the receiver is not waiting is consumed by its next WaitDrain.
func (m *Mailbox[T]) Poke() {
	m.mu.Lock()
	m.pokes++
	m.mu.Unlock()
	m.cond.Signal()
}

// Close wakes any blocked receiver and makes future WaitDrain calls return
// false once drained. Items already queued are still delivered.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Len reports the current queue length (racy by nature; for tests and
// stats only).
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}
