package mpsc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentPutAllBatches hammers the mailbox with batched producers —
// the engines' flushSends pattern — while the consumer loops WaitDrain.
// Per-producer batch order and intra-batch order must both survive, and
// every element must arrive exactly once. Run under -race this also checks
// the producers' reuse of their batch buffers after PutAll returns.
func TestConcurrentPutAllBatches(t *testing.T) {
	m := NewCap[int](16)
	const producers = 8
	const batches = 400
	const batchLen = 7
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]int, 0, batchLen)
			for b := 0; b < batches; b++ {
				batch = batch[:0]
				for i := 0; i < batchLen; i++ {
					batch = append(batch, p*batches*batchLen+b*batchLen+i)
				}
				m.PutAll(batch)
			}
		}(p)
	}
	const total = producers * batches * batchLen
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	seen := 0
	var buf []int
	for seen < total {
		var ok bool
		buf, ok = m.WaitDrain(buf[:0])
		if !ok {
			t.Fatal("closed unexpectedly")
		}
		for _, v := range buf {
			p, i := v/(batches*batchLen), v%(batches*batchLen)
			if i <= last[p] {
				t.Fatalf("producer %d out of order: %d after %d", p, i, last[p])
			}
			last[p] = i
			seen++
		}
	}
	wg.Wait()
	if m.Len() != 0 {
		t.Fatalf("%d items left after consuming %d", m.Len(), total)
	}
}

// TestCloseWhileWaiting closes the mailbox while the consumer is parked in
// WaitDrain: the consumer must wake, receive any concurrently queued tail,
// and then see ok=false on its next wait.
func TestCloseWhileWaiting(t *testing.T) {
	m := New[int]()
	got := make(chan int, 1)
	go func() {
		n := 0
		var buf []int
		for {
			var ok bool
			buf, ok = m.WaitDrain(buf[:0])
			n += len(buf)
			if !ok {
				got <- n
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond) // let the consumer park
	m.Put(1)
	m.Put(2)
	m.Close()
	select {
	case n := <-got:
		if n != 2 {
			t.Fatalf("consumer saw %d items, want 2", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("consumer never observed Close")
	}
}

// TestPokeWakeupUnderLoad interleaves pokes with real traffic from other
// goroutines. Every WaitDrain return must carry items or be explained by a
// poke; the consumer must never deadlock, and all items must arrive.
func TestPokeWakeupUnderLoad(t *testing.T) {
	m := New[int]()
	const items = 2000
	var pokes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			m.Put(i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			m.Poke()
			pokes.Add(1)
		}
	}()
	seen := 0
	var buf []int
	for seen < items {
		var ok bool
		buf, ok = m.WaitDrain(buf[:0])
		if !ok {
			t.Fatal("closed unexpectedly")
		}
		seen += len(buf)
	}
	wg.Wait()
	if seen != items {
		t.Fatalf("saw %d items, want %d", seen, items)
	}
}

// TestMixedPutPutAllClose is a churn test: value puts, batch puts, pokes,
// and a late Close all race; the consumer must drain exactly the produced
// multiset and then terminate.
func TestMixedPutPutAllClose(t *testing.T) {
	m := NewCap[int](8)
	const producers = 6
	const per = 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]int, 0, 4)
			for i := 0; i < per; i++ {
				v := p*per + i
				if i%3 == 0 {
					m.Put(v)
				} else {
					batch = append(batch, v)
					if len(batch) == cap(batch) {
						m.PutAll(batch)
						batch = batch[:0]
					}
				}
				if i%101 == 0 {
					m.Poke()
				}
			}
			m.PutAll(batch)
		}(p)
	}
	closer := make(chan struct{})
	go func() {
		wg.Wait()
		m.Close()
		close(closer)
	}()
	seen := make([]bool, producers*per)
	count := 0
	var buf []int
	for {
		var ok bool
		buf, ok = m.WaitDrain(buf[:0])
		for _, v := range buf {
			if seen[v] {
				t.Fatalf("duplicate %d", v)
			}
			seen[v] = true
			count++
		}
		if !ok {
			break
		}
	}
	<-closer
	if count != producers*per {
		t.Fatalf("drained %d of %d items", count, producers*per)
	}
}
