package mpsc

// Transport is the seam the asynchronous engines talk to instead of a
// concrete *Mailbox. It exists so test harnesses (internal/simtest/chaos)
// can interpose a perturbing wrapper — delaying, splitting, or reordering
// deliveries — without the engines knowing. Production code always runs on
// the raw Mailbox; the interface is satisfied by *Mailbox directly and the
// indirection cost is one interface call on paths that are already
// lock-dominated.
type Transport[T any] interface {
	// Put enqueues one item.
	Put(v T)
	// PutAll enqueues a batch. Implementations must copy vs if they retain
	// it: callers reuse the backing array after the call returns.
	PutAll(vs []T)
	// TryDrain appends all currently deliverable items to buf and returns
	// it without blocking.
	TryDrain(buf []T) []T
	// WaitDrain blocks until at least one item is deliverable, a Poke
	// arrives, or the transport is closed; it then appends deliverable
	// items to buf. The second result is false once the transport is
	// closed and empty.
	WaitDrain(buf []T) ([]T, bool)
	// Poke wakes a blocked receiver without delivering an item.
	Poke()
	// Close wakes any blocked receiver and makes future WaitDrain calls
	// return false once drained.
	Close()
	// Len reports the current queue length (racy; stats only).
	Len() int
}

var _ Transport[int] = (*Mailbox[int])(nil)
