package logic

import "testing"

// x01z is the full domain of one wide lane.
var x01z = []Value{X, Zero, One, Z}

// scalarOps pairs each wide two-input table with its scalar reference.
var scalarOps = []struct {
	name   string
	wide   func(a, b Word) Word
	scalar func(a, b Value) Value
}{
	{"and", WideAnd, And},
	{"or", WideOr, Or},
	{"xor", WideXor, Xor},
	{"nand", WideNand, Nand},
	{"nor", WideNor, Nor},
	{"xnor", WideXnor, Xnor},
	{"resolve", WideResolve, Resolve},
}

// TestWideTablesExhaustive checks every wide two-input operation against
// the scalar IEEE 1164 tables on all 16 value pairs, replicated across all
// 64 lane positions so shifted-mask bugs cannot hide.
func TestWideTablesExhaustive(t *testing.T) {
	for _, op := range scalarOps {
		for _, a := range x01z {
			for _, b := range x01z {
				want := op.scalar(a, b)
				if want.ToX01Z() != want {
					t.Fatalf("scalar %s(%v,%v)=%v escapes the X01Z subset", op.name, a, b, want)
				}
				for lane := 0; lane < Lanes; lane++ {
					// Surround the lane under test with a contrasting value
					// so cross-lane leakage is visible.
					bg := Splat(Not(a))
					got := op.wide(bg.Set(lane, a), Splat(b)).Get(lane)
					if got != want {
						t.Errorf("%s lane %d: wide(%v,%v)=%v, scalar %v", op.name, lane, a, b, got, want)
					}
				}
			}
		}
	}
	for _, a := range x01z {
		if got, want := WideNot(Splat(a)).Get(7), Not(a); got != want {
			t.Errorf("not: wide(%v)=%v, scalar %v", a, got, want)
		}
		if got, want := WideBuf(Splat(a)).Get(7), a.Buf(); got != want {
			t.Errorf("buf: wide(%v)=%v, scalar %v", a, got, want)
		}
	}
}

// TestWideFolds checks the N-ary folds against their scalar counterparts
// on mixed-lane operands, including the 0-operand identities.
func TestWideFolds(t *testing.T) {
	mk := func(vs ...Value) Word { return Pack(vs) }
	ops := []struct {
		name   string
		wide   func(...Word) Word
		scalar func(...Value) Value
	}{
		{"andN", WideAndN, AndN},
		{"orN", WideOrN, OrN},
		{"xorN", WideXorN, XorN},
		{"resolveN", WideResolveN, ResolveN},
	}
	cases := [][]Word{
		{},
		{mk(Zero, One, X, Z)},
		{mk(Zero, One, X, Z), mk(One, One, Zero, X)},
		{mk(Zero, One, X, Z), mk(One, One, Zero, X), mk(Z, Z, Z, Z)},
	}
	for _, op := range ops {
		for ci, ws := range cases {
			got := op.wide(ws...)
			for lane := 0; lane < 4; lane++ {
				args := make([]Value, len(ws))
				for i, w := range ws {
					args[i] = w.Get(lane)
				}
				want := op.scalar(args...).ToX01Z()
				if g := got.Get(lane); g != want {
					t.Errorf("%s case %d lane %d: wide %v, scalar %v", op.name, ci, lane, g, want)
				}
			}
		}
	}
}

// TestWordRoundTrip pins the encoding: Get inverts Set and Splat, and
// two-valued words round-trip through PackBits/Bits.
func TestWordRoundTrip(t *testing.T) {
	for _, v := range x01z {
		w := Splat(v)
		for lane := 0; lane < Lanes; lane += 13 {
			if got := w.Get(lane); got != v {
				t.Fatalf("Splat(%v).Get(%d) = %v", v, lane, got)
			}
		}
	}
	var w Word
	for lane, v := range []Value{One, Zero, X, Z, One, X} {
		w = w.Set(lane, v)
	}
	for lane, want := range []Value{One, Zero, X, Z, One, X} {
		if got := w.Get(lane); got != want {
			t.Errorf("lane %d = %v, want %v", lane, got, want)
		}
	}
	const bits = 0xdeadbeefcafef00d
	ones, known := PackBits(bits).Bits()
	if ones != bits || known != ^uint64(0) {
		t.Errorf("PackBits round trip: ones=%#x known=%#x", ones, known)
	}
	// Projection: nine-valued levels land on their X01Z projections.
	for _, v := range []Value{U, W, L, H, DontCare} {
		if got := Splat(v).Get(0); got != v.ToX01Z() {
			t.Errorf("Splat(%v).Get(0) = %v, want %v", v, got, v.ToX01Z())
		}
	}
}

// TestWordMasks pins the lane-mask accessors against Get.
func TestWordMasks(t *testing.T) {
	w := Pack([]Value{Zero, One, X, Z, One, Zero, X, Z})
	for lane := 0; lane < 8; lane++ {
		bit := uint64(1) << uint(lane)
		v := w.Get(lane)
		if got := w.IsHigh()&bit != 0; got != (v == One) {
			t.Errorf("IsHigh lane %d: %v for %v", lane, got, v)
		}
		if got := w.IsLow()&bit != 0; got != (v == Zero) {
			t.Errorf("IsLow lane %d: %v for %v", lane, got, v)
		}
		if got := w.IsX()&bit != 0; got != (v == X) {
			t.Errorf("IsX lane %d: %v for %v", lane, got, v)
		}
		if got := w.IsZ()&bit != 0; got != (v == Z) {
			t.Errorf("IsZ lane %d: %v for %v", lane, got, v)
		}
		if got := w.Known()&bit != 0; got != (v == Zero || v == One) {
			t.Errorf("Known lane %d: %v for %v", lane, got, v)
		}
	}
	a := Pack([]Value{Zero, One, X, Z})
	b := Pack([]Value{Zero, X, X, One})
	eq := Equal64(a, b)
	for lane := 0; lane < 4; lane++ {
		want := a.Get(lane) == b.Get(lane)
		if got := eq&(1<<uint(lane)) != 0; got != want {
			t.Errorf("Equal64 lane %d = %v, want %v", lane, got, want)
		}
	}
	sel := Select(0b0101, a, b)
	for lane := 0; lane < 4; lane++ {
		want := b.Get(lane)
		if lane%2 == 0 {
			want = a.Get(lane)
		}
		if got := sel.Get(lane); got != want {
			t.Errorf("Select lane %d = %v, want %v", lane, got, want)
		}
	}
}

// FuzzWideTables drives the wide tables with arbitrary plane words and
// verifies every lane of every operation against the scalar tables. All
// four plane-bit combinations are valid encodings, so any uint64 pair is a
// well-formed Word and the fuzzer explores the whole input space.
func FuzzWideTables(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(0), uint64(0), ^uint64(0))
	f.Add(uint64(0xaaaaaaaaaaaaaaaa), uint64(0x5555555555555555), uint64(0xffff0000ffff0000), uint64(0x00ffff0000ffff00))
	f.Add(uint64(0xdeadbeefcafef00d), uint64(0x0123456789abcdef), uint64(0xfedcba9876543210), uint64(0x1111111111111111))
	f.Fuzz(func(t *testing.T, aL, aH, bL, bH uint64) {
		a, b := Word{L: aL, H: aH}, Word{L: bL, H: bH}
		for _, op := range scalarOps {
			got := op.wide(a, b)
			for lane := 0; lane < Lanes; lane++ {
				want := op.scalar(a.Get(lane), b.Get(lane))
				if g := got.Get(lane); g != want {
					t.Fatalf("%s lane %d: wide(%v,%v)=%v, scalar %v",
						op.name, lane, a.Get(lane), b.Get(lane), g, want)
				}
			}
		}
		for lane := 0; lane < Lanes; lane++ {
			if got, want := WideNot(a).Get(lane), Not(a.Get(lane)); got != want {
				t.Fatalf("not lane %d: wide %v, scalar %v", lane, got, want)
			}
			if got, want := WideBuf(a).Get(lane), a.Get(lane).Buf(); got != want {
				t.Fatalf("buf lane %d: wide %v, scalar %v", lane, got, want)
			}
		}
	})
}
