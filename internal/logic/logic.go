// Package logic implements the multi-valued signal algebra used throughout
// the simulator.
//
// The value system is modeled on the IEEE 1164 standard logic package
// (STD_LOGIC_1164) referenced by the paper: nine values covering strong and
// weak drive strengths, high impedance, unknowns, and don't-care. Gate
// evaluation uses the standard AND/OR/XOR/NOT tables, and multi-driver nets
// are combined with the standard resolution function. Two- and four-valued
// projections are provided for simulators that run with a reduced system.
package logic

import "fmt"

// Value is one signal level of the 9-valued IEEE 1164 logic system.
//
// The numeric encoding is stable and dense so that Value can index lookup
// tables directly.
type Value uint8

// The nine standard logic values, in the conventional STD_LOGIC order.
const (
	U        Value = iota // uninitialized
	X                     // forcing unknown
	Zero                  // forcing 0
	One                   // forcing 1
	Z                     // high impedance
	W                     // weak unknown
	L                     // weak 0
	H                     // weak 1
	DontCare              // don't care ('-')

	// NumValues is the size of the value domain; valid values are < NumValues.
	NumValues
)

// valueRunes maps each Value to its conventional character.
var valueRunes = [NumValues]byte{'U', 'X', '0', '1', 'Z', 'W', 'L', 'H', '-'}

// String returns the conventional single-character name ("U", "X", "0", ...).
func (v Value) String() string {
	if v < NumValues {
		return string(valueRunes[v])
	}
	return fmt.Sprintf("Value(%d)", uint8(v))
}

// Valid reports whether v is one of the nine defined logic values.
func (v Value) Valid() bool { return v < NumValues }

// Parse converts a character into a Value. It accepts upper- and lower-case
// forms of the standard names.
func Parse(c byte) (Value, error) {
	switch c {
	case 'U', 'u':
		return U, nil
	case 'X', 'x':
		return X, nil
	case '0':
		return Zero, nil
	case '1':
		return One, nil
	case 'Z', 'z':
		return Z, nil
	case 'W', 'w':
		return W, nil
	case 'L', 'l':
		return L, nil
	case 'H', 'h':
		return H, nil
	case '-':
		return DontCare, nil
	}
	return U, fmt.Errorf("logic: invalid value character %q", c)
}

// MustParse is Parse but panics on invalid input; for tests and literals.
func MustParse(c byte) Value {
	v, err := Parse(c)
	if err != nil {
		panic(err)
	}
	return v
}

// FromBool converts a Go bool into a strong logic level.
func FromBool(b bool) Value {
	if b {
		return One
	}
	return Zero
}

// IsHigh reports whether v is driven high (strongly or weakly).
func (v Value) IsHigh() bool { return v == One || v == H }

// IsLow reports whether v is driven low (strongly or weakly).
func (v Value) IsLow() bool { return v == Zero || v == L }

// Known reports whether v is a driven 0/1 level (possibly weak).
func (v Value) Known() bool { return v.IsHigh() || v.IsLow() }

// Bool converts a known value to a Go bool. The second result is false when
// the value is not a driven 0/1 level.
func (v Value) Bool() (bool, bool) {
	switch {
	case v.IsHigh():
		return true, true
	case v.IsLow():
		return false, true
	}
	return false, false
}

// To01 projects v onto the strong two-valued subset {0,1}; everything that
// is not driven resolves to X. This is the STD_LOGIC to_X01 conversion.
func (v Value) To01() Value {
	switch {
	case v.IsHigh():
		return One
	case v.IsLow():
		return Zero
	default:
		return X
	}
}

// To0 projects like To01 but maps non-driven values to Zero (to_01 with a
// zero default), used when a two-valued simulator needs total values.
func (v Value) To0() Value {
	if v.IsHigh() {
		return One
	}
	return Zero
}

// ToX01Z projects onto the four-valued subset {X,0,1,Z} (to_X01Z).
func (v Value) ToX01Z() Value {
	switch {
	case v.IsHigh():
		return One
	case v.IsLow():
		return Zero
	case v == Z:
		return Z
	default:
		return X
	}
}

// System selects how many of the nine values a simulation run uses. The
// simulators always compute in the 9-valued algebra; a System is a
// projection applied to stimulus so that reduced-system runs remain closed
// over the projected domain.
type System uint8

// Supported value systems.
const (
	TwoValued  System = 2 // {0,1}
	FourValued System = 4 // {X,0,1,Z}
	NineValued System = 9 // full STD_LOGIC
)

// Project maps v into the system's domain.
func (s System) Project(v Value) Value {
	switch s {
	case TwoValued:
		return v.To0()
	case FourValued:
		return v.ToX01Z()
	default:
		return v
	}
}

// String names the system ("2-valued", ...).
func (s System) String() string {
	switch s {
	case TwoValued:
		return "2-valued"
	case FourValued:
		return "4-valued"
	case NineValued:
		return "9-valued"
	}
	return fmt.Sprintf("System(%d)", uint8(s))
}

// And returns the IEEE 1164 AND of a and b.
func And(a, b Value) Value { return andTable[a][b] }

// Or returns the IEEE 1164 OR of a and b.
func Or(a, b Value) Value { return orTable[a][b] }

// Xor returns the IEEE 1164 XOR of a and b.
func Xor(a, b Value) Value { return xorTable[a][b] }

// Not returns the IEEE 1164 complement of a.
func Not(a Value) Value { return notTable[a] }

// Nand returns Not(And(a, b)).
func Nand(a, b Value) Value { return notTable[andTable[a][b]] }

// Nor returns Not(Or(a, b)).
func Nor(a, b Value) Value { return notTable[orTable[a][b]] }

// Xnor returns Not(Xor(a, b)).
func Xnor(a, b Value) Value { return notTable[xorTable[a][b]] }

// Buf returns the buffered (strength-normalized) value of a: weak levels
// are promoted to strong levels and undriven inputs become X, exactly as a
// buffer re-drives its input.
func (v Value) Buf() Value { return v.To01() }

// AndN folds And over vs; the AND of no inputs is One (identity).
func AndN(vs ...Value) Value {
	acc := One
	for _, v := range vs {
		acc = andTable[acc][v]
	}
	return acc
}

// OrN folds Or over vs; the OR of no inputs is Zero (identity).
func OrN(vs ...Value) Value {
	acc := Zero
	for _, v := range vs {
		acc = orTable[acc][v]
	}
	return acc
}

// XorN folds Xor over vs; the XOR of no inputs is Zero (identity).
func XorN(vs ...Value) Value {
	acc := Zero
	for _, v := range vs {
		acc = xorTable[acc][v]
	}
	return acc
}

// Resolve combines two simultaneous drivers of one net using the IEEE 1164
// resolution function (stronger drive wins; conflicting strong drives give
// X; conflicting weak drives give W).
func Resolve(a, b Value) Value { return resolutionTable[a][b] }

// ResolveN resolves an arbitrary number of drivers; a net with no drivers
// floats at Z.
func ResolveN(vs ...Value) Value {
	acc := Z
	for _, v := range vs {
		acc = resolutionTable[acc][v]
	}
	return acc
}

// RisingEdge reports whether the transition prev -> cur is a rising edge in
// the STD_LOGIC sense: the previous value was low (or unknown-but-not-high)
// and the new value is high. Only 0/L -> 1/H counts; transitions through X
// are not edges, which keeps flip-flops conservative under unknowns.
func RisingEdge(prev, cur Value) bool { return prev.IsLow() && cur.IsHigh() }

// FallingEdge reports whether prev -> cur is a falling edge (1/H -> 0/L).
func FallingEdge(prev, cur Value) bool { return prev.IsHigh() && cur.IsLow() }

// FormatVector renders a slice of values as a compact string such as
// "01XZ10".
func FormatVector(vs []Value) string {
	buf := make([]byte, len(vs))
	for i, v := range vs {
		if v < NumValues {
			buf[i] = valueRunes[v]
		} else {
			buf[i] = '?'
		}
	}
	return string(buf)
}

// ParseVector parses a string produced by FormatVector.
func ParseVector(s string) ([]Value, error) {
	out := make([]Value, len(s))
	for i := 0; i < len(s); i++ {
		v, err := Parse(s[i])
		if err != nil {
			return nil, fmt.Errorf("logic: vector position %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
