package logic

// The lookup tables below are transcriptions of the IEEE 1164
// STD_LOGIC_1164 package body. Rows are the first operand, columns the
// second, both in the order U X 0 1 Z W L H -.

var andTable = [NumValues][NumValues]Value{
	//        U     X     0     1     Z     W     L     H     -
	U:        {U, U, Zero, U, U, U, Zero, U, U},
	X:        {U, X, Zero, X, X, X, Zero, X, X},
	Zero:     {Zero, Zero, Zero, Zero, Zero, Zero, Zero, Zero, Zero},
	One:      {U, X, Zero, One, X, X, Zero, One, X},
	Z:        {U, X, Zero, X, X, X, Zero, X, X},
	W:        {U, X, Zero, X, X, X, Zero, X, X},
	L:        {Zero, Zero, Zero, Zero, Zero, Zero, Zero, Zero, Zero},
	H:        {U, X, Zero, One, X, X, Zero, One, X},
	DontCare: {U, X, Zero, X, X, X, Zero, X, X},
}

var orTable = [NumValues][NumValues]Value{
	//        U     X     0     1     Z     W     L     H     -
	U:        {U, U, U, One, U, U, U, One, U},
	X:        {U, X, X, One, X, X, X, One, X},
	Zero:     {U, X, Zero, One, X, X, Zero, One, X},
	One:      {One, One, One, One, One, One, One, One, One},
	Z:        {U, X, X, One, X, X, X, One, X},
	W:        {U, X, X, One, X, X, X, One, X},
	L:        {U, X, Zero, One, X, X, Zero, One, X},
	H:        {One, One, One, One, One, One, One, One, One},
	DontCare: {U, X, X, One, X, X, X, One, X},
}

var xorTable = [NumValues][NumValues]Value{
	//        U     X     0     1     Z     W     L     H     -
	U:        {U, U, U, U, U, U, U, U, U},
	X:        {U, X, X, X, X, X, X, X, X},
	Zero:     {U, X, Zero, One, X, X, Zero, One, X},
	One:      {U, X, One, Zero, X, X, One, Zero, X},
	Z:        {U, X, X, X, X, X, X, X, X},
	W:        {U, X, X, X, X, X, X, X, X},
	L:        {U, X, Zero, One, X, X, Zero, One, X},
	H:        {U, X, One, Zero, X, X, One, Zero, X},
	DontCare: {U, X, X, X, X, X, X, X, X},
}

var notTable = [NumValues]Value{
	U:        U,
	X:        X,
	Zero:     One,
	One:      Zero,
	Z:        X,
	W:        X,
	L:        One,
	H:        Zero,
	DontCare: X,
}

// resolutionTable is the STD_LOGIC resolution function: the value of a net
// driven simultaneously by both operands.
var resolutionTable = [NumValues][NumValues]Value{
	//        U  X  0     1    Z  W  L  H  -
	U:        {U, U, U, U, U, U, U, U, U},
	X:        {U, X, X, X, X, X, X, X, X},
	Zero:     {U, X, Zero, X, Zero, Zero, Zero, Zero, X},
	One:      {U, X, X, One, One, One, One, One, X},
	Z:        {U, X, Zero, One, Z, W, L, H, X},
	W:        {U, X, Zero, One, W, W, W, W, X},
	L:        {U, X, Zero, One, L, W, L, W, X},
	H:        {U, X, Zero, One, H, W, W, H, X},
	DontCare: {U, X, X, X, X, X, X, X, X},
}
