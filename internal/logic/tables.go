package logic

// The lookup tables below are transcriptions of the IEEE 1164
// STD_LOGIC_1164 package body. Rows are the first operand, columns the
// second, both in the order U X 0 1 Z W L H -.

var andTable = [NumValues][NumValues]Value{
	//        U     X     0     1     Z     W     L     H     -
	U:        {U, U, Zero, U, U, U, Zero, U, U},
	X:        {U, X, Zero, X, X, X, Zero, X, X},
	Zero:     {Zero, Zero, Zero, Zero, Zero, Zero, Zero, Zero, Zero},
	One:      {U, X, Zero, One, X, X, Zero, One, X},
	Z:        {U, X, Zero, X, X, X, Zero, X, X},
	W:        {U, X, Zero, X, X, X, Zero, X, X},
	L:        {Zero, Zero, Zero, Zero, Zero, Zero, Zero, Zero, Zero},
	H:        {U, X, Zero, One, X, X, Zero, One, X},
	DontCare: {U, X, Zero, X, X, X, Zero, X, X},
}

var orTable = [NumValues][NumValues]Value{
	//        U     X     0     1     Z     W     L     H     -
	U:        {U, U, U, One, U, U, U, One, U},
	X:        {U, X, X, One, X, X, X, One, X},
	Zero:     {U, X, Zero, One, X, X, Zero, One, X},
	One:      {One, One, One, One, One, One, One, One, One},
	Z:        {U, X, X, One, X, X, X, One, X},
	W:        {U, X, X, One, X, X, X, One, X},
	L:        {U, X, Zero, One, X, X, Zero, One, X},
	H:        {One, One, One, One, One, One, One, One, One},
	DontCare: {U, X, X, One, X, X, X, One, X},
}

var xorTable = [NumValues][NumValues]Value{
	//        U     X     0     1     Z     W     L     H     -
	U:        {U, U, U, U, U, U, U, U, U},
	X:        {U, X, X, X, X, X, X, X, X},
	Zero:     {U, X, Zero, One, X, X, Zero, One, X},
	One:      {U, X, One, Zero, X, X, One, Zero, X},
	Z:        {U, X, X, X, X, X, X, X, X},
	W:        {U, X, X, X, X, X, X, X, X},
	L:        {U, X, Zero, One, X, X, Zero, One, X},
	H:        {U, X, One, Zero, X, X, One, Zero, X},
	DontCare: {U, X, X, X, X, X, X, X, X},
}

var notTable = [NumValues]Value{
	U:        U,
	X:        X,
	Zero:     One,
	One:      Zero,
	Z:        X,
	W:        X,
	L:        One,
	H:        Zero,
	DontCare: X,
}

// Wide truth tables: the branch-free 64-lane forms of the scalar tables
// above, restricted to the {X,0,1,Z} subset the Word encoding represents.
// Each is a handful of bitwise ops computing all 64 lanes at once; the
// equivalence tests in wide_test.go check every lane of every operation
// against the scalar tables exhaustively.

// WideBuf normalizes drive strength: Z lanes become X, driven lanes pass
// through. It is the wide form of Value.Buf restricted to {X,0,1,Z}, and
// the input normalization every non-resolving gate applies.
func WideBuf(a Word) Word {
	z := ^(a.L | a.H) // floating lanes
	return Word{L: a.L | z, H: a.H | z}
}

// WideNot complements each lane (Z and X lanes give X).
func WideNot(a Word) Word {
	a = WideBuf(a)
	return Word{L: a.H, H: a.L}
}

// WideAnd is the lane-wise IEEE 1164 AND. A lane is 0 when either input
// is 0, 1 when both are 1, X otherwise.
func WideAnd(a, b Word) Word {
	a, b = WideBuf(a), WideBuf(b)
	return Word{L: a.L | b.L, H: a.H & b.H}
}

// WideOr is the lane-wise OR, the plane dual of WideAnd.
func WideOr(a, b Word) Word {
	a, b = WideBuf(a), WideBuf(b)
	return Word{L: a.L & b.L, H: a.H | b.H}
}

// WideXor is the lane-wise XOR: defined only where both lanes are driven,
// X everywhere else.
func WideXor(a, b Word) Word {
	a, b = WideBuf(a), WideBuf(b)
	k := (a.L ^ a.H) & (b.L ^ b.H) // both operands driven 0/1
	d := a.H ^ b.H                 // differing driven lanes -> 1
	return Word{L: k&^d | ^k, H: k&d | ^k}
}

// WideNand, WideNor and WideXnor are the complemented forms.
func WideNand(a, b Word) Word { return WideNot(WideAnd(a, b)) }

// WideNor is the complemented WideOr.
func WideNor(a, b Word) Word { return WideNot(WideOr(a, b)) }

// WideXnor is the complemented WideXor.
func WideXnor(a, b Word) Word { return WideNot(WideXor(a, b)) }

// WideResolve combines two simultaneous drivers lane-wise. On the raw
// encoding the {X,0,1,Z} resolution function is exactly a plane OR: a
// floating lane (0,0) yields the other driver, agreeing drivers idempote,
// and 0-vs-1 conflict (1,0)|(0,1) gives X (1,1).
func WideResolve(a, b Word) Word {
	return Word{L: a.L | b.L, H: a.H | b.H}
}

// WideAndN folds WideAnd over vs; the AND of no inputs is all-1.
func WideAndN(vs ...Word) Word {
	acc := Splat(One)
	for _, v := range vs {
		acc = WideAnd(acc, v)
	}
	return acc
}

// WideOrN folds WideOr over vs; the OR of no inputs is all-0.
func WideOrN(vs ...Word) Word {
	acc := Splat(Zero)
	for _, v := range vs {
		acc = WideOr(acc, v)
	}
	return acc
}

// WideXorN folds WideXor over vs; the XOR of no inputs is all-0.
func WideXorN(vs ...Word) Word {
	acc := Splat(Zero)
	for _, v := range vs {
		acc = WideXor(acc, v)
	}
	return acc
}

// WideResolveN resolves any number of drivers; no drivers float at Z,
// which is the zero Word.
func WideResolveN(vs ...Word) Word {
	var acc Word
	for _, v := range vs {
		acc = WideResolve(acc, v)
	}
	return acc
}

// resolutionTable is the STD_LOGIC resolution function: the value of a net
// driven simultaneously by both operands.
var resolutionTable = [NumValues][NumValues]Value{
	//        U  X  0     1    Z  W  L  H  -
	U:        {U, U, U, U, U, U, U, U, U},
	X:        {U, X, X, X, X, X, X, X, X},
	Zero:     {U, X, Zero, X, Zero, Zero, Zero, Zero, X},
	One:      {U, X, X, One, One, One, One, One, X},
	Z:        {U, X, Zero, One, Z, W, L, H, X},
	W:        {U, X, Zero, One, W, W, W, W, X},
	L:        {U, X, Zero, One, L, W, L, W, X},
	H:        {U, X, Zero, One, H, W, W, H, X},
	DontCare: {U, X, X, X, X, X, X, X, X},
}
