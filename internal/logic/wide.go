// Wide words: 64 simulation lanes packed into one value.
//
// A Word holds one four-valued {X,0,1,Z} signal level for each of 64
// independent simulation lanes (test vectors), in a dual-plane encoding:
// lane k of plane L and lane k of plane H together select the level.
//
//	L=1 H=0  ->  0
//	L=0 H=1  ->  1
//	L=1 H=1  ->  X
//	L=0 H=0  ->  Z
//
// The encoding is chosen so the gate operations in tables.go are pure
// bitwise formulas (branch-free, 64 lanes per machine op): resolution is a
// plane-OR, strength normalization (Z -> X) is a single mask, and AND/OR
// are dual plane formulas. Two-valued lanes use the same encoding — {0,1}
// is closed under every operation — so one Word type serves both the
// two-valued and four-valued systems; PackBits/Bits convert to and from
// plain bit masks for two-valued workloads.
//
// The wide algebra is exact with respect to the scalar one: for inputs in
// the {X,0,1,Z} subset, every wide operation equals the scalar IEEE 1164
// operation applied lane by lane (the scalar tables are closed over the
// subset). The nine-valued levels U/W/L/H/- are not representable; callers
// project through System.Project (two- or four-valued) before packing.
package logic

import "fmt"

// Lanes is the number of independent simulation lanes in one Word.
const Lanes = 64

// Word is a packed 64-lane four-valued signal. The zero Word is all-Z
// (every lane floating), which is the identity of resolution.
type Word struct {
	L, H uint64
}

// CheckWide validates that sys is representable by the wide value plane:
// a Word lane holds {X,0,1,Z} only, so the nine-valued system cannot run
// wide. Every wide engine entry point applies this check.
func CheckWide(sys System) error {
	if sys != TwoValued && sys != FourValued {
		return fmt.Errorf("logic: %v system not supported by wide evaluation (lanes are four-valued)", sys)
	}
	return nil
}

// Splat returns the word with v (projected to {X,0,1,Z}) in every lane.
func Splat(v Value) Word {
	switch v.ToX01Z() {
	case Zero:
		return Word{L: ^uint64(0)}
	case One:
		return Word{H: ^uint64(0)}
	case Z:
		return Word{}
	default:
		return Word{L: ^uint64(0), H: ^uint64(0)}
	}
}

// Get extracts the value of one lane.
func (w Word) Get(lane int) Value {
	l := w.L >> uint(lane) & 1
	h := w.H >> uint(lane) & 1
	switch {
	case l == 1 && h == 0:
		return Zero
	case l == 0 && h == 1:
		return One
	case l == 1 && h == 1:
		return X
	default:
		return Z
	}
}

// Set returns w with lane set to v (projected to {X,0,1,Z}).
func (w Word) Set(lane int, v Value) Word {
	bit := uint64(1) << uint(lane)
	w.L &^= bit
	w.H &^= bit
	switch v.ToX01Z() {
	case Zero:
		w.L |= bit
	case One:
		w.H |= bit
	case Z:
	default:
		w.L |= bit
		w.H |= bit
	}
	return w
}

// Pack builds a word from up to 64 scalar values, one per lane starting at
// lane 0; missing lanes float at Z.
func Pack(vs []Value) Word {
	var w Word
	for i, v := range vs {
		if i >= Lanes {
			break
		}
		w = w.Set(i, v)
	}
	return w
}

// Unpack expands lanes [0, n) of w into a slice of scalar values.
func (w Word) Unpack(n int) []Value {
	if n > Lanes {
		n = Lanes
	}
	out := make([]Value, n)
	for i := range out {
		out[i] = w.Get(i)
	}
	return out
}

// PackBits builds a two-valued word from a plain bit mask: lane k is One
// where bit k of bits is set, Zero elsewhere.
func PackBits(bits uint64) Word {
	return Word{L: ^bits, H: bits}
}

// Bits projects w onto plain bit masks: ones has a bit set for each lane
// driven 1, known for each lane driven 0 or 1. For two-valued words known
// is all ones and the word round-trips through PackBits.
func (w Word) Bits() (ones, known uint64) {
	k := w.L ^ w.H // exactly one plane set: a driven 0/1 lane
	return w.H & k, k
}

// IsHigh returns the mask of lanes driven 1.
func (w Word) IsHigh() uint64 { return w.H &^ w.L }

// IsLow returns the mask of lanes driven 0.
func (w Word) IsLow() uint64 { return w.L &^ w.H }

// IsX returns the mask of unknown lanes.
func (w Word) IsX() uint64 { return w.L & w.H }

// IsZ returns the mask of floating lanes.
func (w Word) IsZ() uint64 { return ^(w.L | w.H) }

// Known returns the mask of lanes driven 0 or 1.
func (w Word) Known() uint64 { return w.L ^ w.H }

// String renders the word as 64 value characters, lane 63 first (so lane 0
// is the rightmost character, matching numeric bit order).
func (w Word) String() string {
	var buf [Lanes]byte
	for i := 0; i < Lanes; i++ {
		buf[Lanes-1-i] = valueRunes[w.Get(i)]
	}
	return string(buf[:])
}

// Select returns a word that takes its value from a where the mask bit is
// set and from b elsewhere — the lane-wise conditional the sequential wide
// gate models build on.
func Select(mask uint64, a, b Word) Word {
	return Word{
		L: a.L&mask | b.L&^mask,
		H: a.H&mask | b.H&^mask,
	}
}

// Equal64 reports per-lane equality of a and b as a mask.
func Equal64(a, b Word) uint64 {
	return ^((a.L ^ b.L) | (a.H ^ b.H))
}
