package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// allValues lists the whole domain for exhaustive table checks.
var allValues = []Value{U, X, Zero, One, Z, W, L, H, DontCare}

// Generate lets testing/quick draw uniformly from the 9-valued domain.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(Value(r.Intn(int(NumValues))))
}

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, v := range allValues {
		s := v.String()
		if len(s) != 1 {
			t.Fatalf("String(%d) = %q, want single character", v, s)
		}
		got, err := Parse(s[0])
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got != v {
			t.Errorf("Parse(String(%v)) = %v", v, got)
		}
	}
}

func TestParseLowerCase(t *testing.T) {
	for _, c := range []byte{'u', 'x', 'z', 'w', 'l', 'h'} {
		v, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		upper, _ := Parse(c - 'a' + 'A')
		if v != upper {
			t.Errorf("Parse(%q) = %v, want %v", c, v, upper)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, c := range []byte{'2', 'a', ' ', '?', 0} {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse('q') did not panic")
		}
	}()
	MustParse('q')
}

func TestInvalidValueString(t *testing.T) {
	if got := Value(200).String(); got != "Value(200)" {
		t.Errorf("Value(200).String() = %q", got)
	}
	if Value(200).Valid() {
		t.Error("Value(200).Valid() = true")
	}
}

func TestBoolConversions(t *testing.T) {
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Fatal("FromBool broken")
	}
	cases := []struct {
		v  Value
		b  bool
		ok bool
	}{
		{One, true, true}, {H, true, true},
		{Zero, false, true}, {L, false, true},
		{X, false, false}, {U, false, false}, {Z, false, false},
		{W, false, false}, {DontCare, false, false},
	}
	for _, c := range cases {
		b, ok := c.v.Bool()
		if b != c.b || ok != c.ok {
			t.Errorf("%v.Bool() = %v,%v want %v,%v", c.v, b, ok, c.b, c.ok)
		}
	}
}

func TestProjections(t *testing.T) {
	for _, v := range allValues {
		p := v.To01()
		if p != Zero && p != One && p != X {
			t.Errorf("To01(%v) = %v outside {0,1,X}", v, p)
		}
		q := v.To0()
		if q != Zero && q != One {
			t.Errorf("To0(%v) = %v outside {0,1}", v, q)
		}
		z := v.ToX01Z()
		if z != Zero && z != One && z != X && z != Z {
			t.Errorf("ToX01Z(%v) = %v outside {X,0,1,Z}", v, z)
		}
	}
	if One.To01() != One || Zero.To01() != Zero || H.To01() != One || L.To01() != Zero {
		t.Error("To01 mangles driven values")
	}
	if Z.ToX01Z() != Z {
		t.Error("ToX01Z must preserve Z")
	}
}

func TestSystemProject(t *testing.T) {
	for _, v := range allValues {
		if got := NineValued.Project(v); got != v {
			t.Errorf("9-valued projection changed %v to %v", v, got)
		}
		if got := TwoValued.Project(v); got != Zero && got != One {
			t.Errorf("2-valued projection of %v = %v", v, got)
		}
		fv := FourValued.Project(v)
		if fv != Zero && fv != One && fv != X && fv != Z {
			t.Errorf("4-valued projection of %v = %v", v, fv)
		}
	}
}

func TestSystemString(t *testing.T) {
	if TwoValued.String() != "2-valued" || FourValued.String() != "4-valued" ||
		NineValued.String() != "9-valued" {
		t.Error("System.String names wrong")
	}
	if System(7).String() != "System(7)" {
		t.Error("unknown system string wrong")
	}
}

// TestBooleanSubsetTruthTables pins the classic 2-valued behaviour.
func TestBooleanSubsetTruthTables(t *testing.T) {
	b := []Value{Zero, One}
	for _, a := range b {
		for _, c := range b {
			ab, _ := a.Bool()
			cb, _ := c.Bool()
			if And(a, c) != FromBool(ab && cb) {
				t.Errorf("And(%v,%v) = %v", a, c, And(a, c))
			}
			if Or(a, c) != FromBool(ab || cb) {
				t.Errorf("Or(%v,%v) = %v", a, c, Or(a, c))
			}
			if Xor(a, c) != FromBool(ab != cb) {
				t.Errorf("Xor(%v,%v) = %v", a, c, Xor(a, c))
			}
			if Nand(a, c) != FromBool(!(ab && cb)) {
				t.Errorf("Nand(%v,%v) = %v", a, c, Nand(a, c))
			}
			if Nor(a, c) != FromBool(!(ab || cb)) {
				t.Errorf("Nor(%v,%v) = %v", a, c, Nor(a, c))
			}
			if Xnor(a, c) != FromBool(ab == cb) {
				t.Errorf("Xnor(%v,%v) = %v", a, c, Xnor(a, c))
			}
		}
	}
	if Not(Zero) != One || Not(One) != Zero {
		t.Error("Not broken on Boolean subset")
	}
}

// TestWeakValuesActAsLevels checks H behaves as 1 and L as 0 through gates.
func TestWeakValuesActAsLevels(t *testing.T) {
	for _, v := range allValues {
		if And(L, v) != And(Zero, v) {
			t.Errorf("And(L,%v) != And(0,%v)", v, v)
		}
		if Or(H, v) != Or(One, v) {
			t.Errorf("Or(H,%v) != Or(1,%v)", v, v)
		}
		if Xor(H, v) != Xor(One, v) || Xor(L, v) != Xor(Zero, v) {
			t.Errorf("Xor weak mismatch at %v", v)
		}
	}
	if Not(H) != Zero || Not(L) != One {
		t.Error("Not must treat weak levels as levels")
	}
}

func TestTablesClosedOverDomain(t *testing.T) {
	for _, a := range allValues {
		if !Not(a).Valid() {
			t.Errorf("Not(%v) invalid", a)
		}
		for _, b := range allValues {
			for name, f := range map[string]func(Value, Value) Value{
				"And": And, "Or": Or, "Xor": Xor, "Resolve": Resolve,
			} {
				if got := f(a, b); !got.Valid() {
					t.Errorf("%s(%v,%v) = %v invalid", name, a, b, got)
				}
			}
		}
	}
}

func TestCommutativity(t *testing.T) {
	f := func(a, b Value) bool {
		return And(a, b) == And(b, a) &&
			Or(a, b) == Or(b, a) &&
			Xor(a, b) == Xor(b, a) &&
			Resolve(a, b) == Resolve(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssociativity(t *testing.T) {
	f := func(a, b, c Value) bool {
		return And(And(a, b), c) == And(a, And(b, c)) &&
			Or(Or(a, b), c) == Or(a, Or(b, c)) &&
			Resolve(Resolve(a, b), c) == Resolve(a, Resolve(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeMorgan(t *testing.T) {
	f := func(a, b Value) bool {
		return Nand(a, b) == Or(Not(a), Not(b)) &&
			Nor(a, b) == And(Not(a), Not(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDoubleNegationOnStrengthNormalizedValues(t *testing.T) {
	// Not(Not(v)) loses strength information but must be stable once the
	// value is strength-normalized.
	f := func(a Value) bool {
		n := a.To01()
		return Not(Not(n)) == n || n == X && Not(Not(n)) == X
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDominance(t *testing.T) {
	// 0 dominates AND, 1 dominates OR, regardless of the other operand.
	f := func(a Value) bool {
		return And(Zero, a) == Zero && Or(One, a) == One
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdentityOnDrivenValues(t *testing.T) {
	// 1 is the AND identity and 0 the OR/XOR identity up to strength
	// normalization; U propagates as U rather than degrading to X.
	for _, v := range allValues {
		want := v.To01()
		if v == U {
			want = U
		}
		if And(One, v) != want {
			t.Errorf("And(1,%v) = %v want %v", v, And(One, v), want)
		}
		if Or(Zero, v) != want {
			t.Errorf("Or(0,%v) = %v want %v", v, Or(Zero, v), want)
		}
		if Xor(Zero, v) != want {
			t.Errorf("Xor(0,%v) = %v want %v", v, Xor(Zero, v), want)
		}
	}
}

func TestXorSelfCancellation(t *testing.T) {
	for _, v := range allValues {
		got := Xor(v, v)
		if v.Known() {
			if got != Zero {
				t.Errorf("Xor(%v,%v) = %v want 0", v, v, got)
			}
		} else if got == Zero || got == One {
			t.Errorf("Xor(%v,%v) = %v should stay unknown", v, v, got)
		}
	}
}

func TestResolutionLattice(t *testing.T) {
	// Z is the resolution identity; U is absorbing; resolution is
	// idempotent.
	f := func(a Value) bool {
		return Resolve(Z, a) == a.resolveIdentityImage() &&
			Resolve(U, a) == U &&
			Resolve(a, a) == a.resolveSelfImage()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// resolveIdentityImage gives the expected value of Resolve(Z, v).
func (v Value) resolveIdentityImage() Value {
	if v == DontCare {
		return X
	}
	return v
}

// resolveSelfImage gives the expected value of Resolve(v, v).
func (v Value) resolveSelfImage() Value {
	if v == DontCare {
		return X
	}
	return v
}

func TestResolveConflicts(t *testing.T) {
	if Resolve(Zero, One) != X {
		t.Error("0 vs 1 must resolve to X")
	}
	if Resolve(L, H) != W {
		t.Error("L vs H must resolve to W")
	}
	if Resolve(One, L) != One || Resolve(Zero, H) != Zero {
		t.Error("strong drive must beat weak drive")
	}
}

func TestResolveN(t *testing.T) {
	if ResolveN() != Z {
		t.Error("empty net must float at Z")
	}
	if ResolveN(Z, Z, L) != L {
		t.Error("single weak driver must win over floats")
	}
	if ResolveN(One, Zero, Z) != X {
		t.Error("strong conflict must give X")
	}
}

func TestNAryFolds(t *testing.T) {
	if AndN() != One || OrN() != Zero || XorN() != Zero {
		t.Error("fold identities wrong")
	}
	if AndN(One, One, Zero) != Zero {
		t.Error("AndN wrong")
	}
	if OrN(Zero, Zero, One) != One {
		t.Error("OrN wrong")
	}
	if XorN(One, One, One) != One {
		t.Error("XorN wrong")
	}
	f := func(a, b, c Value) bool {
		return AndN(a, b, c) == And(And(And(One, a), b), c) &&
			OrN(a, b, c) == Or(Or(Or(Zero, a), b), c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEdges(t *testing.T) {
	if !RisingEdge(Zero, One) || !RisingEdge(L, H) || !RisingEdge(Zero, H) {
		t.Error("missed rising edges")
	}
	if RisingEdge(X, One) || RisingEdge(Zero, X) || RisingEdge(One, One) {
		t.Error("false rising edges")
	}
	if !FallingEdge(One, Zero) || !FallingEdge(H, L) {
		t.Error("missed falling edges")
	}
	if FallingEdge(One, X) || FallingEdge(Zero, Zero) {
		t.Error("false falling edges")
	}
	f := func(a, b Value) bool {
		// A transition cannot be both a rising and a falling edge.
		return !(RisingEdge(a, b) && FallingEdge(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	f := func(vs []Value) bool {
		s := FormatVector(vs)
		got, err := ParseVector(s)
		if err != nil {
			return false
		}
		if len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := ParseVector("01q"); err == nil {
		t.Error("ParseVector accepted invalid character")
	}
	if got := FormatVector([]Value{One, Value(99)}); got != "1?" {
		t.Errorf("FormatVector out-of-range = %q", got)
	}
}

func TestBufNormalizesStrength(t *testing.T) {
	for _, v := range allValues {
		if v.Buf() != v.To01() {
			t.Errorf("Buf(%v) = %v", v, v.Buf())
		}
	}
}

func BenchmarkAnd(b *testing.B) {
	var sink Value
	for i := 0; i < b.N; i++ {
		sink = And(Value(i%9), Value((i+3)%9))
	}
	_ = sink
}

func BenchmarkResolveN(b *testing.B) {
	drivers := []Value{Z, L, Z, H, Z}
	var sink Value
	for i := 0; i < b.N; i++ {
		sink = ResolveN(drivers...)
	}
	_ = sink
}
