package chaos

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/simtest/chaos/inject"
)

// shortSeeds trims the sweep under -short (race CI runs every test with
// -short; the full sweep belongs to the nightly job).
func sweepSeeds(t *testing.T, full []uint64) []uint64 {
	t.Helper()
	if testing.Short() && len(full) > 2 {
		return full[:2]
	}
	return full
}

// TestExploreDeterministic is the reproducibility contract: two sweeps of
// the same configuration render byte-identically (same plans injected,
// same verdicts), and the correct engines pass under every chaos
// schedule.
func TestExploreDeterministic(t *testing.T) {
	cfg := Config{
		Seeds:     sweepSeeds(t, []uint64{1, 2, 3}),
		Workloads: []string{"ripple8", "counter5"},
	}
	first, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := Render(first), Render(second)
	if ra != rb {
		t.Errorf("two identical sweeps rendered differently:\n--- first\n%s--- second\n%s", ra, rb)
	}
	for i := range first {
		if first[i].Failed() {
			t.Errorf("%s/%v/seed=%d failed under chaos:\n%s\nrepro: %s",
				first[i].Workload, first[i].Engine, first[i].Seed, first[i].Failure, first[i].Repro)
		}
	}
}

// TestExploreAllEnginesClean sweeps every asynchronous engine over the
// full workload corpus: a correct engine must reproduce the sequential
// waveform and satisfy the counter invariants under every fault plan.
func TestExploreAllEnginesClean(t *testing.T) {
	outs, err := Explore(Config{
		Seeds: sweepSeeds(t, []uint64{10, 11, 12, 13}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		o := &outs[i]
		if o.Failed() {
			t.Errorf("%s/%v/seed=%d failed under chaos:\n%s\nrepro: %s",
				o.Workload, o.Engine, o.Seed, o.Failure, o.Repro)
		}
	}
}

// TestBrokenLookaheadCaughtAndShrunk is the harness self-test demanded by
// the issue: an engine whose null-message lookahead is off by one (the
// hook's sabotage knob) must be caught, shrunk to a <= 10-fault repro,
// and the repro must replay to the same failure.
func TestBrokenLookaheadCaughtAndShrunk(t *testing.T) {
	cfg := Config{
		Seeds:         []uint64{5},
		Engines:       []core.Engine{core.EngineCMB},
		Workloads:     []string{"ripple8"},
		LookaheadBias: 1,
	}
	outs, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes, want 1", len(outs))
	}
	o := &outs[0]
	if !o.Failed() {
		t.Fatal("biased-lookahead engine was not caught")
	}
	if !strings.Contains(o.Failure, "bound") && !strings.Contains(o.Failure, "mismatch") {
		t.Errorf("failure does not look like a promise violation: %s", o.Failure)
	}
	if o.Keep == nil {
		t.Fatal("failure was not shrunk")
	}
	if len(o.Keep) > 10 {
		t.Errorf("minimal repro has %d faults, want <= 10", len(o.Keep))
	}
	if o.MinFailure == "" {
		t.Error("no failure recorded for the minimal subset")
	}
	if o.Repro == "" {
		t.Fatal("no repro command emitted")
	}

	// The repro line round-trips: parse the spec back out and replay it.
	start := strings.Index(o.Repro, "-replay '")
	if start < 0 {
		t.Fatalf("repro line has no -replay spec: %s", o.Repro)
	}
	specText := o.Repro[start+len("-replay '"):]
	specText = strings.TrimSuffix(specText, "'")
	spec, err := ParseReplay(specText)
	if err != nil {
		t.Fatalf("repro spec does not parse: %v", err)
	}
	replayed, err := Replay(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Failed() {
		t.Errorf("replay of shrunk repro passed; original failure: %s", o.MinFailure)
	}
}

// TestReplaySpecRoundTrip checks the spec text format.
func TestReplaySpecRoundTrip(t *testing.T) {
	spec := ReplaySpec{
		Workload: "dag150", Engine: core.EngineTimeWarpLazy, Seed: 77,
		LPs: 6, Faults: 9, Bias: 2, Keep: []int{0, 3, 8},
	}
	parsed, err := ParseReplay(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != spec.String() {
		t.Errorf("round trip changed spec: %q -> %q", spec.String(), parsed.String())
	}
	// Empty keep (fails with zero faults) round-trips distinctly from
	// nil keep (full plan).
	spec.Keep = []int{}
	parsed, err = ParseReplay(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Keep == nil || len(parsed.Keep) != 0 {
		t.Errorf("empty keep parsed as %v", parsed.Keep)
	}
	spec.Keep = nil
	parsed, err = ParseReplay(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Keep != nil {
		t.Errorf("nil keep parsed as %v", parsed.Keep)
	}
}

// TestShrinkMinimizes exercises ddmin against a synthetic predicate: the
// plan fails iff the subset retains both of two specific faults.
func TestShrinkMinimizes(t *testing.T) {
	plan := inject.NewPlan(1, 4, 16)
	culpritA, culpritB := plan[3].String(), plan[11].String()
	run := func(sub inject.Plan) string {
		var a, b bool
		for _, f := range sub {
			switch f.String() {
			case culpritA:
				a = true
			case culpritB:
				b = true
			}
		}
		if a && b {
			return "boom"
		}
		return ""
	}
	keep, f := Shrink(plan, "boom", run, 200)
	if f != "boom" {
		t.Fatalf("shrink lost the failure: %q", f)
	}
	want := map[int]bool{3: true, 11: true}
	if len(keep) != 2 || !want[keep[0]] || !want[keep[1]] {
		t.Errorf("shrunk to %v, want exactly [3 11]", keep)
	}
}

// TestShrinkEmptyProbe: an engine that fails with no faults at all shrinks
// straight to the empty subset.
func TestShrinkEmptyProbe(t *testing.T) {
	plan := inject.NewPlan(2, 4, 16)
	run := func(sub inject.Plan) string { return "always broken" }
	keep, f := Shrink(plan, "always broken", run, 200)
	if len(keep) != 0 || keep == nil {
		t.Errorf("keep = %v, want empty non-nil slice", keep)
	}
	if f != "always broken" {
		t.Errorf("failure = %q", f)
	}
}
