package chaos

import "repro/internal/simtest/chaos/inject"

// Shrink reduces a failing plan to a small failing subset of its fault
// indices with delta debugging (ddmin). run must be a deterministic
// predicate over plan subsets — the same subset must fail the same way on
// every call — which holds for this harness because verdicts are
// schedule-independent (see the package comment). fullFailure is the
// failure already observed on the complete plan; budget caps the number
// of probe runs.
//
// The empty subset is probed first: an engine broken independently of the
// injected faults (the interesting kind of finding) fails with no faults
// at all, and that is the smallest possible repro.
func Shrink(plan inject.Plan, fullFailure string, run func(inject.Plan) string, budget int) ([]int, string) {
	return ShrinkIndices(len(plan), fullFailure, func(idx []int) (bool, string) {
		sub := make(inject.Plan, 0, len(idx))
		for _, i := range idx {
			sub = append(sub, plan[i])
		}
		f := run(sub)
		return f != "", f
	}, budget)
}

// ShrinkIndices is the ddmin core underneath Shrink, generalized to any
// failure predicate over subsets of the indices [0, n): it is also reused
// by the optimizer-equivalence suite to minimize failing pass subsets.
// fails must be deterministic over subsets; budget caps its invocations.
func ShrinkIndices(size int, fullFailure string, failsFn func([]int) (bool, string), budget int) ([]int, string) {
	probes := 0
	fails := func(idx []int) (bool, string) {
		if probes >= budget {
			return false, ""
		}
		probes++
		return failsFn(idx)
	}

	if ok, f := fails(nil); ok {
		return []int{}, f
	}

	cur := allIndices(size)
	curFailure := fullFailure
	n := 2
	for len(cur) >= 2 && probes < budget {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		// Try each chunk alone.
		for i := 0; i < len(cur) && !reduced; i += chunk {
			subset := cur[i:min(i+chunk, len(cur))]
			if ok, f := fails(subset); ok {
				cur = append([]int(nil), subset...)
				curFailure = f
				n = 2
				reduced = true
			}
		}
		// Then each chunk's complement.
		if !reduced && n > 2 {
			for i := 0; i < len(cur) && !reduced; i += chunk {
				comp := append([]int(nil), cur[:i]...)
				comp = append(comp, cur[min(i+chunk, len(cur)):]...)
				if ok, f := fails(comp); ok {
					cur = comp
					curFailure = f
					n = max(n-1, 2)
					reduced = true
				}
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(2*n, len(cur))
		}
	}
	return cur, curFailure
}
