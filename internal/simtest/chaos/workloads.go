package chaos

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/vectors"
)

// Workload is one circuit + stimulus + horizon, reconstructible from its
// name alone so a repro command can name it.
type Workload struct {
	Name  string
	C     *circuit.Circuit
	Stim  *vectors.Stimulus
	Until circuit.Tick
}

// DefaultWorkloads is the standard sweep corpus: a combinational adder
// under random vectors (null-message heavy), a fine-delay random DAG
// (irregular cross-LP traffic), and a clocked counter (low activity,
// blocking-dominated).
var DefaultWorkloads = []string{"ripple8", "dag150", "counter5"}

// WorkloadByName reconstructs a named workload deterministically. Every
// parameter below is a constant: the workload is a pure function of its
// name, which is what makes failure repro lines self-contained.
func WorkloadByName(name string) (*Workload, error) {
	var (
		c   *circuit.Circuit
		err error
	)
	switch name {
	case "ripple8":
		c, err = gen.ByName("ripple8", gen.Unit, 1)
	case "dag150":
		c, err = gen.ByName("dag150", gen.Fine(6, 3), 3)
	case "counter5":
		c, err = gen.ByName("counter5", gen.Unit, 1)
	default:
		return nil, fmt.Errorf("chaos: unknown workload %q (have %v)", name, DefaultWorkloads)
	}
	if err != nil {
		return nil, fmt.Errorf("chaos: workload %q: %w", name, err)
	}
	var stim *vectors.Stimulus
	switch name {
	case "counter5":
		stim, err = vectors.Clocked(c, vectors.ClockedConfig{
			Clock: "clk", Cycles: 10, HalfPeriod: 15, Activity: 0.5, Seed: 9,
		})
	default:
		stim, err = vectors.Random(c, vectors.RandomConfig{
			Vectors: 12, Period: 25, Activity: 0.6, Seed: 7,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("chaos: workload %q stimulus: %w", name, err)
	}
	return &Workload{Name: name, C: c, Stim: stim, Until: core.Horizon(c, stim)}, nil
}
