package chaos

import (
	"flag"
	"testing"
)

// replaySpec is set by the -replay flag that Explore's repro commands
// pass; see reproLine.
var replaySpec = flag.String("replay", "", "chaos replay spec (workload=...,engine=...,seed=...,...)")

// TestReplay reruns one shrunk failure named by -replay. Without the flag
// it is a no-op, so the repro command printed by a failing sweep is the
// only intended entry point:
//
//	go test ./internal/simtest/chaos -run 'TestReplay$' -replay '<spec>'
func TestReplay(t *testing.T) {
	if *replaySpec == "" {
		t.Skip("no -replay spec given")
	}
	spec, err := ParseReplay(*replaySpec)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Replay(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plan (%d faults):", len(o.Plan))
	for i, f := range o.Plan {
		t.Logf("  [%d] %s", i, f)
	}
	if o.Failed() {
		t.Errorf("replayed failure:\n%s", o.Failure)
	} else {
		t.Log("replay passed (failure did not reproduce)")
	}
}
