package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// TestExploreNightly is the scheduled CI entry point (see the
// chaos-nightly job in .github/workflows/ci.yml). It sweeps a wide,
// date-derived seed range under a wall-clock budget so every nightly run
// explores fresh schedules while staying reproducible within the day:
// re-running the job replays the same seeds, and any failure's repro
// line pins the seed forever. Gated on CHAOS_NIGHTLY=1 so ordinary
// `go test ./...` never pays for it.
//
// Environment:
//
//	CHAOS_NIGHTLY=1        enable (otherwise skipped)
//	CHAOS_BUDGET=25m       wall-clock budget (default 20m)
//	CHAOS_ARTIFACT_DIR=dir write failing repro commands here, one file
//	                       per failure, for CI artifact upload
func TestExploreNightly(t *testing.T) {
	if os.Getenv("CHAOS_NIGHTLY") != "1" {
		t.Skip("set CHAOS_NIGHTLY=1 to run the nightly sweep")
	}
	budget := 20 * time.Minute
	if s := os.Getenv("CHAOS_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("CHAOS_BUDGET %q: %v", s, err)
		}
		budget = d
	}
	// Seeds derived from the date: stable across re-runs of the same
	// nightly job, different from yesterday's.
	day, err := strconv.ParseUint(time.Now().UTC().Format("20060102"), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	base := day * 1000

	deadline := time.Now().Add(budget)
	artifacts := os.Getenv("CHAOS_ARTIFACT_DIR")
	var failures int
	for round := uint64(0); time.Now().Before(deadline); round++ {
		outs, err := Explore(Config{Seeds: []uint64{base + round}})
		if err != nil {
			t.Fatal(err)
		}
		for i := range outs {
			o := &outs[i]
			if !o.Failed() {
				continue
			}
			failures++
			t.Errorf("%s/%v/seed=%d failed:\n%s\nminimal (%d faults): %s\nrepro: %s",
				o.Workload, o.Engine, o.Seed, o.Failure, len(o.Keep), o.MinFailure, o.Repro)
			if artifacts != "" {
				name := fmt.Sprintf("chaos-%s-%v-seed%d.txt", o.Workload, o.Engine, o.Seed)
				body := fmt.Sprintf("failure:\n%s\n\nminimal failure:\n%s\n\nrepro:\n%s\n",
					o.Failure, o.MinFailure, o.Repro)
				if werr := os.WriteFile(filepath.Join(artifacts, name), []byte(body), 0o644); werr != nil {
					t.Logf("writing artifact %s: %v", name, werr)
				}
			}
		}
		t.Logf("round %d (seed %d): %d runs, %d total failures", round, base+round, len(outs), failures)
	}
}
