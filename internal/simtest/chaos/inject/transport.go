package inject

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"repro/internal/mpsc"
)

// heldStream is one delayed (src → lp) stream suffix: every message that
// arrived since the delay armed, released together after ttl drains.
type heldStream[T any] struct {
	msgs []T
	ttl  uint64
}

// splitKey identifies one batch of one stream.
type splitKey struct {
	src int
	seq uint64
}

// transport is the chaos wrapper around one LP's inbox. Producers (other
// LPs) call Put/PutAll concurrently; exactly one consumer drains. It
// perturbs delivery per the plan and checks two conservative-protocol
// invariants on the way through:
//
//   - null monotonicity: successive null bounds from one sender only
//     increase;
//   - promise soundness: a value message never carries a time below a
//     bound promised by the same sender in an *earlier* batch. The check
//     is batch-scoped because null folding legitimately strengthens a
//     batched promise after earlier value messages were appended to the
//     same batch — within one batch a null says nothing about its
//     neighbours.
//
// Liveness with held streams: the receiver is Poked whenever a hold arms
// and re-Poked after every drain while anything stays held, so a blocked
// receiver keeps draining (each drain ticks the ttls) and the hold expires
// after at most N wakeups. Protocols that wait for global quiescence
// (deadlock recovery, GVT) cannot falsely conclude while messages are
// held, because held value messages still count as in transit — transit is
// decremented by the receiver's handler, which has not seen them.
type transport[T any] struct {
	h     *Hook
	lp    int
	inner mpsc.Transport[T]
	meta  func(T) Meta

	mu        sync.Mutex
	putSeq    map[int]uint64 // delivered batches per src
	drainSeq  uint64         // completed drains
	delays    map[int][]Fault
	splits    map[splitKey]Fault
	reorders  map[uint64]Fault
	held      map[int]*heldStream[T]
	heldOrder []int            // hold arming order, for deterministic release order
	bound     map[int]uint64   // max null bound per src from previous batches
}

// Wrap interposes the chaos transport for one LP's inbox. A nil hook
// returns the inner transport unchanged, so production paths stay
// wrapper-free. meta projects a message to its protocol role; it must be
// pure.
func Wrap[T any](h *Hook, lp int, inner mpsc.Transport[T], meta func(T) Meta) mpsc.Transport[T] {
	if h == nil {
		return inner
	}
	t := &transport[T]{
		h:        h,
		lp:       lp,
		inner:    inner,
		meta:     meta,
		putSeq:   map[int]uint64{},
		delays:   map[int][]Fault{},
		splits:   map[splitKey]Fault{},
		reorders: map[uint64]Fault{},
		held:     map[int]*heldStream[T]{},
		bound:    map[int]uint64{},
	}
	for _, f := range h.plan {
		if f.LP != lp {
			continue
		}
		switch f.Op {
		case OpDelay:
			t.delays[f.Src] = append(t.delays[f.Src], f)
		case OpSplit:
			t.splits[splitKey{f.Src, f.Seq}] = f
		case OpReorder:
			t.reorders[f.Seq] = f
		}
	}
	return t
}

// Put enqueues one item. Control messages bypass chaos entirely.
func (t *transport[T]) Put(v T) {
	if t.meta(v).Kind == Control {
		t.inner.Put(v)
		return
	}
	t.deliver([]T{v})
}

// PutAll enqueues one sender batch. Engines never mix control and payload
// in one batch (coordinators send control as singles), so the first
// message's kind classifies the batch.
func (t *transport[T]) PutAll(vs []T) {
	if len(vs) == 0 {
		return
	}
	if t.meta(vs[0]).Kind == Control {
		t.inner.PutAll(vs)
		return
	}
	t.deliver(vs)
}

// deliver runs one payload batch through check → hold → delay-arm →
// split → passthrough. The caller's slice is only retained via copy (held
// streams append by value; the split path hands slices to the inner
// mailbox, which copies).
func (t *transport[T]) deliver(vs []T) {
	src := t.meta(vs[0]).From
	t.mu.Lock()
	t.checkBatch(src, vs)
	seq := t.putSeq[src]
	t.putSeq[src] = seq + 1
	if hs := t.held[src]; hs != nil {
		// Stream already held: append, preserving per-sender FIFO.
		hs.msgs = append(hs.msgs, vs...)
		t.mu.Unlock()
		t.inner.Poke()
		return
	}
	for _, f := range t.delays[src] {
		if f.Seq == seq {
			hs := &heldStream[T]{ttl: f.N}
			hs.msgs = append(hs.msgs, vs...)
			t.held[src] = hs
			t.heldOrder = append(t.heldOrder, src)
			t.mu.Unlock()
			t.h.noteFired(f.String())
			t.inner.Poke()
			return
		}
	}
	if f, ok := t.splits[splitKey{src, seq}]; ok && len(vs) > 1 {
		half := len(vs) / 2
		t.mu.Unlock()
		t.h.noteFired(f.String())
		t.inner.PutAll(vs[:half])
		runtime.Gosched() // invite another sender into the gap
		t.inner.PutAll(vs[half:])
		return
	}
	t.mu.Unlock()
	t.inner.PutAll(vs)
}

// checkBatch enforces the conservative wire invariants for one arriving
// batch; t.mu is held.
func (t *transport[T]) checkBatch(src int, vs []T) {
	prev, have := t.bound[src]
	var maxNull uint64
	haveNull := false
	for _, v := range vs {
		m := t.meta(v)
		switch m.Kind {
		case Value:
			if have && m.Time < prev {
				t.h.violate(fmt.Sprintf(
					"lp %d: value message from lp %d at t=%d below promised bound %d",
					t.lp, src, m.Time, prev))
			}
		case Null:
			if have && m.Time <= prev {
				t.h.violate(fmt.Sprintf(
					"lp %d: non-increasing null bound %d from lp %d (previous bound %d)",
					t.lp, m.Time, src, prev))
			}
			if !haveNull || m.Time > maxNull {
				maxNull = m.Time
				haveNull = true
			}
		}
	}
	if haveNull && (!have || maxNull > prev) {
		t.bound[src] = maxNull
	}
}

// TryDrain drains the inner mailbox, then applies hold expiry and
// reordering.
func (t *transport[T]) TryDrain(buf []T) []T {
	pre := len(buf)
	out := t.inner.TryDrain(buf)
	return t.afterDrain(out, pre, false)
}

// WaitDrain blocks on the inner mailbox, then applies hold expiry and
// reordering. If the inner mailbox reports closed but a hold release
// produced items, it reports ok so the items are not dropped.
func (t *transport[T]) WaitDrain(buf []T) ([]T, bool) {
	pre := len(buf)
	out, ok := t.inner.WaitDrain(buf)
	out = t.afterDrain(out, pre, !ok)
	if !ok && len(out) > pre {
		ok = true
	}
	return out, ok
}

// afterDrain is the consumer-side half: tick hold ttls (releasing expired
// streams after the drained content — they are the late arrivals), apply
// a planned reorder to the newly drained range, and keep the receiver
// awake while anything stays held.
func (t *transport[T]) afterDrain(out []T, pre int, closed bool) []T {
	t.mu.Lock()
	seq := t.drainSeq
	t.drainSeq++
	if len(t.heldOrder) > 0 {
		rem := t.heldOrder[:0]
		for _, src := range t.heldOrder {
			hs := t.held[src]
			if closed || hs.ttl <= 1 {
				out = append(out, hs.msgs...)
				delete(t.held, src)
			} else {
				hs.ttl--
				rem = append(rem, src)
			}
		}
		t.heldOrder = rem
	}
	rePoke := len(t.heldOrder) > 0
	if f, ok := t.reorders[seq]; ok {
		if t.reorderRange(out[pre:], seq) {
			t.h.noteFired(f.String())
		}
	}
	t.mu.Unlock()
	if rePoke {
		t.inner.Poke()
	}
	return out
}

// reorderRange permutes the per-sender groups of ms, keeping each
// sender's messages in order. The permutation is a pure function of
// (hook seed, LP, drain ordinal). Ranges containing control messages are
// left alone — control is not part of any stream, so commuting around it
// has no defined semantics.
func (t *transport[T]) reorderRange(ms []T, drainSeq uint64) bool {
	if len(ms) < 2 {
		return false
	}
	var srcs []int
	idx := map[int]int{}
	for _, v := range ms {
		m := t.meta(v)
		if m.Kind == Control {
			return false
		}
		if _, ok := idx[m.From]; !ok {
			idx[m.From] = len(srcs)
			srcs = append(srcs, m.From)
		}
	}
	if len(srcs) < 2 {
		return false
	}
	rng := rand.New(rand.NewPCG(t.h.seed^(uint64(t.lp)<<32|0x5bf0_3635), drainSeq))
	order := rng.Perm(len(srcs))
	buckets := make([][]T, len(srcs))
	for _, v := range ms {
		i := idx[t.meta(v).From]
		buckets[i] = append(buckets[i], v)
	}
	pos := 0
	for _, bi := range order {
		pos += copy(ms[pos:], buckets[bi])
	}
	return true
}

// Poke forwards to the inner mailbox.
func (t *transport[T]) Poke() { t.inner.Poke() }

// Close forwards to the inner mailbox.
func (t *transport[T]) Close() { t.inner.Close() }

// Len reports queued plus held items.
func (t *transport[T]) Len() int {
	n := t.inner.Len()
	t.mu.Lock()
	for _, hs := range t.held {
		n += len(hs.msgs)
	}
	t.mu.Unlock()
	return n
}
