// Package inject is the engine-facing half of the chaos harness: seeded
// fault plans, a perturbing Transport wrapper for the per-LP mailboxes,
// and stall points at LP phase boundaries.
//
// It deliberately imports nothing above the transport layer (only
// internal/mpsc), so the asynchronous engines can depend on it without a
// cycle: engines import inject, the chaos runner imports core, core
// imports the engines.
//
// Everything is driven by one PCG seed. A Plan is a pure function of
// (seed, LP count, fault count); the reorder permutations are derived from
// (seed, LP, drain ordinal). A failure is therefore replayable from the
// integers in its repro line alone.
//
// The wrapper only perturbs *commutable* deliveries: messages from
// different senders may be delayed or permuted past each other, but the
// per-sender FIFO order is never broken. Both protocols depend on that
// order — conservative receivers interpret a null message as a bound on
// every *later* message from the same sender, and Time Warp annihilation
// assumes an anti-message arrives after its original — so breaking it
// would inject failures the real transport cannot produce. Cross-sender
// order carries no protocol meaning, which is exactly why perturbing it is
// a fair (and interesting) adversary.
package inject

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
)

// Kind classifies a message for the chaos transport.
type Kind uint8

const (
	// Value is simulation payload (a value or anti-message): a member of
	// its sender's FIFO stream whose Time is checked against promises.
	Value Kind = iota
	// Null is a conservative promise; Meta.Time carries the bound.
	Null
	// Aux is a protocol message that belongs to its sender's FIFO stream
	// but has no timestamp semantics (demand-mode promise requests).
	Aux
	// Control is coordinator traffic (permits, GVT rounds, termination).
	// Control messages bypass the chaos transport entirely: they are not
	// part of any per-sender stream, and delaying them would perturb the
	// coordinator protocols themselves rather than the schedules they
	// observe.
	Control
)

// Phase names an LP execution boundary where a stall can be injected.
type Phase uint8

// The stallable phase boundaries.
const (
	PhaseEvaluate Phase = iota
	PhaseBlock
	PhaseRollback

	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseEvaluate:
		return "evaluate"
	case PhaseBlock:
		return "block"
	case PhaseRollback:
		return "rollback"
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Op is a fault kind.
type Op uint8

// The fault kinds.
const (
	// OpDelay holds the (Src → LP) message stream starting at that
	// stream's batch number Seq for N receiver drains. Holding the whole
	// stream suffix (not just one batch) is what preserves per-sender
	// FIFO.
	OpDelay Op = iota
	// OpSplit delivers batch Seq of the (Src → LP) stream as two halves
	// with a scheduling yield between them, so another sender can slip a
	// batch into the gap.
	OpSplit
	// OpReorder permutes the per-sender groups of the LP's drain number
	// Seq (stable within each sender).
	OpReorder
	// OpStall spins the LP for N scheduling yields at its Seq-th crossing
	// of Phase.
	OpStall
)

// Fault is one planned perturbation.
type Fault struct {
	Op    Op
	LP    int    // receiving LP (delay/split/reorder) or stalling LP
	Src   int    // sending LP (delay/split)
	Seq   uint64 // batch, drain, or phase-crossing ordinal (0-based)
	N     uint64 // hold drains (delay) or yield count (stall)
	Phase Phase  // stall site (stall only)
}

// String renders the fault compactly and deterministically.
func (f Fault) String() string {
	switch f.Op {
	case OpDelay:
		return fmt.Sprintf("delay(lp%d<-lp%d batch %d, %d drains)", f.LP, f.Src, f.Seq, f.N)
	case OpSplit:
		return fmt.Sprintf("split(lp%d<-lp%d batch %d)", f.LP, f.Src, f.Seq)
	case OpReorder:
		return fmt.Sprintf("reorder(lp%d drain %d)", f.LP, f.Seq)
	case OpStall:
		return fmt.Sprintf("stall(lp%d %s #%d, %d yields)", f.LP, f.Phase, f.Seq, f.N)
	}
	return fmt.Sprintf("Fault(op=%d)", uint8(f.Op))
}

// Plan is an ordered fault list. Order matters only for shrinking: the
// minimal failing subset is reported as indices into the plan.
type Plan []Fault

// NewPlan derives a fault plan from a seed. It is a pure function of its
// arguments — same seed, same plan, on every run and platform.
func NewPlan(seed uint64, lps, faults int) Plan {
	if lps < 1 {
		lps = 1
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	plan := make(Plan, 0, faults)
	for i := 0; i < faults; i++ {
		f := Fault{LP: rng.IntN(lps)}
		switch r := rng.Float64(); {
		case r < 0.40:
			f.Op = OpDelay
			f.Src = rng.IntN(lps)
			f.Seq = uint64(rng.IntN(24))
			f.N = 1 + uint64(rng.IntN(8))
		case r < 0.60:
			f.Op = OpSplit
			f.Src = rng.IntN(lps)
			f.Seq = uint64(rng.IntN(32))
		case r < 0.80:
			f.Op = OpReorder
			f.Seq = uint64(rng.IntN(48))
		default:
			f.Op = OpStall
			f.Phase = Phase(rng.IntN(int(numPhases)))
			f.Seq = uint64(rng.IntN(64))
			f.N = 1 + uint64(rng.IntN(256))
		}
		plan = append(plan, f)
	}
	return plan
}

// Meta is what the chaos transport knows about a message: its protocol
// role, its sender, and (for Value/Null) its timestamp. Engines provide a
// msg → Meta projection when wrapping their inboxes.
type Meta struct {
	Kind Kind
	From int
	Time uint64
}

// stallKey indexes stall faults by site.
type stallKey struct {
	lp int
	ph Phase
}

// Hook is one run's chaos state: the plan, the per-site stall schedule,
// and the accumulated protocol violations. A single Hook is shared by
// every LP of a run; all methods are safe for concurrent use, and a nil
// *Hook is inert (engines call Stall unconditionally).
type Hook struct {
	// LookaheadBias inflates every conservative link lookahead by this
	// many ticks when the cmb engine is built with this hook. It is a
	// sabotage knob for the harness's own tests: a positive bias makes the
	// engine promise more than it can keep, which the transport's promise
	// checker must catch.
	LookaheadBias uint64
	// PanicLP, when >= 0, panics that LP's goroutine at its first
	// PhaseEvaluate crossing. The panic fires once per Hook lifetime —
	// Rearm does not reload it — so a supervisor retry of the same hook
	// models a transient fault that does not recur.
	PanicLP int
	// HangLP, when >= 0, parks that LP at its first PhaseEvaluate
	// crossing until Release is called (engines release from their abort
	// paths, so a watchdog abort always unblocks it). Unlike PanicLP the
	// hang is rearmed by Rearm: every retried attempt hangs again,
	// modeling a permanent stall that only an engine fallback survives.
	HangLP int

	seed uint64
	plan Plan

	mu         sync.Mutex
	violations []string
	fired      []string

	stallMu  sync.Mutex
	stallCnt map[stallKey]uint64
	stalls   map[stallKey][]Fault

	faultMu  sync.Mutex
	panicked bool          // PanicLP already fired (never rearmed)
	hung     bool          // HangLP already fired this attempt
	hangCh   chan struct{} // closed by Release; recreated by Rearm
}

// NewHook builds the shared chaos state for one run.
func NewHook(seed uint64, plan Plan) *Hook {
	h := &Hook{
		PanicLP:  -1,
		HangLP:   -1,
		seed:     seed,
		plan:     plan,
		stallCnt: map[stallKey]uint64{},
		stalls:   map[stallKey][]Fault{},
		hangCh:   make(chan struct{}),
	}
	for _, f := range plan {
		if f.Op == OpStall {
			k := stallKey{f.LP, f.Phase}
			h.stalls[k] = append(h.stalls[k], f)
		}
	}
	return h
}

// Seed returns the hook's seed.
func (h *Hook) Seed() uint64 { return h.seed }

// Plan returns the hook's fault plan (not a copy; callers must not
// mutate it).
func (h *Hook) Plan() Plan { return h.plan }

// Stall yields the calling LP goroutine if the plan schedules a stall at
// this crossing of the phase boundary. Safe on a nil receiver, so engines
// call it unconditionally.
func (h *Hook) Stall(lp int, ph Phase) {
	if h == nil {
		return
	}
	if ph == PhaseEvaluate {
		h.maybePanic(lp)
		h.maybeHang(lp)
	}
	k := stallKey{lp, ph}
	h.stallMu.Lock()
	fs := h.stalls[k]
	if len(fs) == 0 {
		h.stallMu.Unlock()
		return
	}
	c := h.stallCnt[k]
	h.stallCnt[k] = c + 1
	var spin uint64
	var hit Fault
	for _, f := range fs {
		if f.Seq == c {
			spin += f.N
			hit = f
		}
	}
	h.stallMu.Unlock()
	if spin == 0 {
		return
	}
	h.noteFired(hit.String())
	for i := uint64(0); i < spin; i++ {
		runtime.Gosched()
	}
}

// maybePanic fires the one-shot PanicLP fault.
func (h *Hook) maybePanic(lp int) {
	if h.PanicLP != lp {
		return
	}
	h.faultMu.Lock()
	fire := !h.panicked
	h.panicked = true
	h.faultMu.Unlock()
	if fire {
		h.noteFired(fmt.Sprintf("panic(lp%d evaluate)", lp))
		panic(fmt.Sprintf("chaos: injected panic at lp %d", lp))
	}
}

// maybeHang parks the HangLP fault's LP until Release.
func (h *Hook) maybeHang(lp int) {
	if h.HangLP != lp {
		return
	}
	h.faultMu.Lock()
	fire := !h.hung
	h.hung = true
	ch := h.hangCh
	h.faultMu.Unlock()
	if fire {
		h.noteFired(fmt.Sprintf("hang(lp%d evaluate)", lp))
		<-ch
	}
}

// Release unblocks a parked HangLP fault. Engines call it from their
// abort-everything path, so a watchdog or failure abort never leaves
// the hung LP goroutine (and the run's WaitGroup) blocked forever. Safe
// on a nil receiver and idempotent per attempt.
func (h *Hook) Release() {
	if h == nil {
		return
	}
	h.faultMu.Lock()
	select {
	case <-h.hangCh:
	default:
		close(h.hangCh)
	}
	h.faultMu.Unlock()
}

// Rearm resets the per-attempt fault state so a supervisor can retry
// with the same hook: the hang fires again (a permanent stall), stall
// schedules restart from crossing zero, but a fired panic stays fired
// (a transient fault). Safe on a nil receiver.
func (h *Hook) Rearm() {
	if h == nil {
		return
	}
	h.faultMu.Lock()
	h.hung = false
	h.hangCh = make(chan struct{})
	h.faultMu.Unlock()
	h.stallMu.Lock()
	h.stallCnt = map[stallKey]uint64{}
	h.stallMu.Unlock()
}

// violate records a protocol violation (bounded; the first entries are
// what matter).
func (h *Hook) violate(s string) {
	h.mu.Lock()
	if len(h.violations) < 64 {
		h.violations = append(h.violations, s)
	}
	h.mu.Unlock()
}

// Violations returns the protocol violations the chaos transports
// detected, in detection order.
func (h *Hook) Violations() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, len(h.violations))
	copy(out, h.violations)
	return out
}

// noteFired records that a planned fault actually triggered.
func (h *Hook) noteFired(s string) {
	h.mu.Lock()
	if len(h.fired) < 1024 {
		h.fired = append(h.fired, s)
	}
	h.mu.Unlock()
}

// Fired returns the faults that triggered, sorted for stable display.
// Which faults trigger can depend on runtime scheduling (batch boundaries
// are timing-dependent), so Fired is diagnostic — verdicts must not be
// derived from it.
func (h *Hook) Fired() []string {
	h.mu.Lock()
	out := make([]string, len(h.fired))
	copy(out, h.fired)
	h.mu.Unlock()
	sortStrings(out)
	return out
}

// sortStrings is a tiny insertion sort; fired lists are short and this
// avoids importing sort just for it.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
