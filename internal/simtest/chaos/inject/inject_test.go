package inject

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/mpsc"
)

// tmsg is the test message: enough structure for the meta projection and
// for asserting per-sender FIFO (seq increases within one sender).
type tmsg struct {
	kind Kind
	from int
	time uint64
	seq  int
}

func tmeta(m tmsg) Meta { return Meta{Kind: m.kind, From: m.from, Time: m.time} }

func wrapT(t *testing.T, h *Hook, lp int) (mpsc.Transport[tmsg], *mpsc.Mailbox[tmsg]) {
	t.Helper()
	inner := mpsc.NewCap[tmsg](16)
	return Wrap(h, lp, inner, tmeta), inner
}

// drainAll drains until the transport reports empty, counting drains.
func drainAll(tr mpsc.Transport[tmsg]) []tmsg {
	var out []tmsg
	for {
		got := tr.TryDrain(nil)
		if len(got) == 0 && tr.Len() == 0 {
			return out
		}
		out = append(out, got...)
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(42, 4, 16)
	b := NewPlan(42, 4, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	c := NewPlan(43, 4, 16)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if len(a) != 16 {
		t.Fatalf("plan size %d, want 16", len(a))
	}
	for i, f := range a {
		if f.LP < 0 || f.LP >= 4 {
			t.Errorf("fault %d: LP %d out of range", i, f.LP)
		}
		if (f.Op == OpDelay || f.Op == OpSplit) && (f.Src < 0 || f.Src >= 4) {
			t.Errorf("fault %d: Src %d out of range", i, f.Src)
		}
		if f.Op == OpDelay && f.N == 0 {
			t.Errorf("fault %d: zero-drain delay", i)
		}
	}
}

func TestWrapNilHookPassthrough(t *testing.T) {
	inner := mpsc.New[tmsg]()
	if got := Wrap(nil, 0, inner, tmeta); got != mpsc.Transport[tmsg](inner) {
		t.Fatal("nil hook did not return the inner transport unchanged")
	}
}

// TestDelayHoldsAndReleases: a delay fault holds the stream suffix; the
// receiver is kept awake and sees everything, in per-sender order, after
// N drains.
func TestDelayHoldsAndReleases(t *testing.T) {
	plan := Plan{{Op: OpDelay, LP: 0, Src: 1, Seq: 0, N: 3}}
	h := NewHook(7, plan)
	tr, _ := wrapT(t, h, 0)

	tr.PutAll([]tmsg{{kind: Value, from: 1, time: 10, seq: 0}})
	tr.PutAll([]tmsg{{kind: Value, from: 1, time: 20, seq: 1}}) // appended to held stream
	tr.PutAll([]tmsg{{kind: Value, from: 2, time: 5, seq: 0}})  // other sender flows

	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (2 held + 1 queued)", tr.Len())
	}

	// Drain 1: only sender 2's message; ttl 3→2.
	got := tr.TryDrain(nil)
	if len(got) != 1 || got[0].from != 2 {
		t.Fatalf("drain 1 = %v, want just sender 2", got)
	}
	// Drain 2: nothing; ttl 2→1.
	if got := tr.TryDrain(nil); len(got) != 0 {
		t.Fatalf("drain 2 = %v, want empty", got)
	}
	// Drain 3: ttl 1 → release both held messages in FIFO order.
	got = tr.TryDrain(nil)
	if len(got) != 2 || got[0].seq != 0 || got[1].seq != 1 {
		t.Fatalf("drain 3 = %v, want held stream in order", got)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after release, want 0", tr.Len())
	}
	fired := h.Fired()
	if len(fired) != 1 || fired[0] != plan[0].String() {
		t.Errorf("Fired = %v, want the delay fault", fired)
	}
}

// TestDelayLivenessWaitDrain: a blocked receiver poked by the hold keeps
// waking until the release, so a held message cannot deadlock it.
func TestDelayLivenessWaitDrain(t *testing.T) {
	h := NewHook(7, Plan{{Op: OpDelay, LP: 0, Src: 1, Seq: 0, N: 5}})
	tr, _ := wrapT(t, h, 0)

	done := make(chan []tmsg)
	go func() {
		var out []tmsg
		for len(out) == 0 {
			got, ok := tr.WaitDrain(nil)
			if !ok {
				break
			}
			out = append(out, got...)
		}
		done <- out
	}()

	tr.Put(tmsg{kind: Value, from: 1, time: 42})
	out := <-done
	if len(out) != 1 || out[0].time != 42 {
		t.Fatalf("receiver got %v, want the held message", out)
	}
}

// TestControlBypassesHeldStream: control traffic is never delayed, even
// while a payload stream from the same source index is held.
func TestControlBypassesHeldStream(t *testing.T) {
	h := NewHook(7, Plan{{Op: OpDelay, LP: 0, Src: 0, Seq: 0, N: 100}})
	tr, _ := wrapT(t, h, 0)

	tr.Put(tmsg{kind: Value, from: 0, time: 1}) // arms the hold
	tr.Put(tmsg{kind: Control, from: 0})

	got := tr.TryDrain(nil)
	if len(got) != 1 || got[0].kind != Control {
		t.Fatalf("drain = %v, want only the control message", got)
	}
}

// TestSplitKeepsOrder: a split batch arrives as two halves but the
// sender's order is intact.
func TestSplitKeepsOrder(t *testing.T) {
	h := NewHook(7, Plan{{Op: OpSplit, LP: 0, Src: 1, Seq: 0}})
	tr, _ := wrapT(t, h, 0)

	batch := []tmsg{
		{kind: Value, from: 1, time: 1, seq: 0},
		{kind: Value, from: 1, time: 2, seq: 1},
		{kind: Value, from: 1, time: 3, seq: 2},
	}
	tr.PutAll(batch)
	got := drainAll(tr)
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("drained %v, want %v in order", got, batch)
	}
	if len(h.Fired()) != 1 {
		t.Errorf("Fired = %v, want the split fault", h.Fired())
	}
}

// TestReorderPreservesPerSenderFIFO: a reorder permutes sender groups but
// never the order within one sender, and skips ranges containing control.
func TestReorderPreservesPerSenderFIFO(t *testing.T) {
	// Reorder the first drain (seq 0) on LP 0; find a seed whose
	// permutation actually swaps the two groups so the test is not
	// vacuous.
	var h *Hook
	var tr mpsc.Transport[tmsg]
	feed := func(seed uint64) []tmsg {
		h = NewHook(seed, Plan{{Op: OpReorder, LP: 0, Seq: 0}})
		tr, _ = wrapT(t, h, 0)
		tr.PutAll([]tmsg{
			{kind: Value, from: 1, time: 1, seq: 0},
			{kind: Value, from: 1, time: 2, seq: 1},
		})
		tr.PutAll([]tmsg{
			{kind: Value, from: 2, time: 3, seq: 0},
			{kind: Value, from: 2, time: 4, seq: 1},
		})
		return tr.TryDrain(nil)
	}

	swappedSeen := false
	for seed := uint64(1); seed <= 16; seed++ {
		got := feed(seed)
		if len(got) != 4 {
			t.Fatalf("seed %d: drained %d messages, want 4", seed, len(got))
		}
		lastSeq := map[int]int{1: -1, 2: -1}
		for _, m := range got {
			if m.seq <= lastSeq[m.from] {
				t.Fatalf("seed %d: per-sender FIFO broken: %v", seed, got)
			}
			lastSeq[m.from] = m.seq
		}
		if got[0].from == 2 {
			swappedSeen = true
		}
	}
	if !swappedSeen {
		t.Error("no seed in 1..16 produced a swapped group order; reorder looks inert")
	}

	// Determinism: same seed, same permutation.
	a := feed(3)
	b := feed(3)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed reordered differently: %v vs %v", a, b)
	}

	// Ranges containing control are left alone.
	h = NewHook(1, Plan{{Op: OpReorder, LP: 0, Seq: 0}})
	tr, _ = wrapT(t, h, 0)
	in := []tmsg{
		{kind: Value, from: 1, time: 1},
		{kind: Control, from: 0},
		{kind: Value, from: 2, time: 2},
	}
	// Control goes through Put (bypass) but lands in the same mailbox;
	// feed values around it so the drained range mixes kinds.
	for _, m := range in {
		tr.Put(m)
	}
	got := tr.TryDrain(nil)
	if !reflect.DeepEqual(got, in) {
		t.Errorf("range with control was permuted: %v", got)
	}
}

// TestCheckerCatchesBrokenPromise: a value below a previous batch's null
// bound is a violation; a larger one is not.
func TestCheckerCatchesBrokenPromise(t *testing.T) {
	h := NewHook(7, nil)
	tr, _ := wrapT(t, h, 0)

	tr.PutAll([]tmsg{{kind: Null, from: 1, time: 50}})
	tr.PutAll([]tmsg{{kind: Value, from: 1, time: 60}})
	if v := h.Violations(); len(v) != 0 {
		t.Fatalf("sound promise flagged: %v", v)
	}
	tr.PutAll([]tmsg{{kind: Value, from: 1, time: 40}})
	v := h.Violations()
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the broken promise", v)
	}
}

// TestCheckerCatchesNonIncreasingNull: a later batch's null must raise
// the bound.
func TestCheckerCatchesNonIncreasingNull(t *testing.T) {
	h := NewHook(7, nil)
	tr, _ := wrapT(t, h, 0)

	tr.PutAll([]tmsg{{kind: Null, from: 1, time: 50}})
	tr.PutAll([]tmsg{{kind: Null, from: 1, time: 50}})
	if v := h.Violations(); len(v) != 1 {
		t.Fatalf("violations = %v, want the non-increasing null", v)
	}
}

// TestCheckerAllowsFoldedBatch: null folding places a strengthened
// promise *before* older value messages within one batch — the checker
// must scope bounds to previous batches or it would false-positive on a
// correct engine.
func TestCheckerAllowsFoldedBatch(t *testing.T) {
	h := NewHook(7, nil)
	tr, _ := wrapT(t, h, 0)

	// One batch: value at t=10, then a folded null promising 100. The
	// null must not retroactively condemn its batch-mate.
	tr.PutAll([]tmsg{
		{kind: Value, from: 1, time: 10},
		{kind: Null, from: 1, time: 100},
	})
	if v := h.Violations(); len(v) != 0 {
		t.Fatalf("folded batch flagged: %v", v)
	}
	// But the bound does apply to the next batch.
	tr.PutAll([]tmsg{{kind: Value, from: 1, time: 99}})
	if v := h.Violations(); len(v) != 1 {
		t.Fatalf("violations = %v, want the bound from the folded null to bind later batches", v)
	}
	// Aux messages carry no timestamp semantics and are never checked.
	tr.PutAll([]tmsg{{kind: Aux, from: 1, time: 0}})
	if v := h.Violations(); len(v) != 1 {
		t.Fatalf("aux message changed the verdict: %v", v)
	}
}

// TestConcurrentProducersFIFO hammers the transport with concurrent
// senders under delays and splits, asserting per-sender FIFO and no loss.
func TestConcurrentProducersFIFO(t *testing.T) {
	const senders, msgs = 4, 200
	plan := Plan{
		{Op: OpDelay, LP: 0, Src: 1, Seq: 2, N: 4},
		{Op: OpDelay, LP: 0, Src: 3, Seq: 0, N: 2},
		{Op: OpSplit, LP: 0, Src: 2, Seq: 1},
		{Op: OpReorder, LP: 0, Seq: 3},
		{Op: OpReorder, LP: 0, Seq: 7},
	}
	h := NewHook(9, plan)
	tr, _ := wrapT(t, h, 0)

	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i += 2 {
				tr.PutAll([]tmsg{
					{kind: Value, from: s, time: uint64(1000 + i), seq: i},
					{kind: Value, from: s, time: uint64(1000 + i + 1), seq: i + 1},
				})
			}
		}(s)
	}

	var got []tmsg
	done := make(chan struct{})
	go func() {
		for len(got) < senders*msgs {
			out, ok := tr.WaitDrain(nil)
			got = append(got, out...)
			if !ok {
				break
			}
		}
		done <- struct{}{}
	}()
	wg.Wait()
	// Producers finished; keep poking so the consumer's WaitDrain ticks
	// the remaining hold ttls rather than blocking forever.
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tr.Poke()
			}
		}
	}()
	<-done

	if len(got) != senders*msgs {
		t.Fatalf("received %d messages, want %d", len(got), senders*msgs)
	}
	lastSeq := map[int]int{}
	for s := 1; s <= senders; s++ {
		lastSeq[s] = -1
	}
	for _, m := range got {
		if m.seq != lastSeq[m.from]+1 {
			t.Fatalf("sender %d: seq %d after %d (FIFO broken)", m.from, m.seq, lastSeq[m.from])
		}
		lastSeq[m.from] = m.seq
	}
	if v := h.Violations(); len(v) != 0 {
		t.Errorf("spurious violations on monotone senders: %v", v)
	}
}

// TestStallFiresAtScheduledCrossing: the Nth crossing stalls, others pass
// through; a nil hook is inert.
func TestStallFiresAtScheduledCrossing(t *testing.T) {
	f := Fault{Op: OpStall, LP: 2, Phase: PhaseBlock, Seq: 1, N: 3}
	h := NewHook(5, Plan{f})

	h.Stall(2, PhaseBlock) // crossing 0: no stall
	if len(h.Fired()) != 0 {
		t.Fatalf("stall fired early: %v", h.Fired())
	}
	h.Stall(2, PhaseEvaluate) // wrong phase: separate counter
	h.Stall(1, PhaseBlock)    // wrong LP
	h.Stall(2, PhaseBlock)    // crossing 1: fires
	fired := h.Fired()
	if len(fired) != 1 || fired[0] != f.String() {
		t.Fatalf("Fired = %v, want %q", fired, f.String())
	}
	h.Stall(2, PhaseBlock) // crossing 2: done
	if len(h.Fired()) != 1 {
		t.Errorf("stall fired again: %v", h.Fired())
	}

	var nilHook *Hook
	nilHook.Stall(0, PhaseEvaluate) // must not panic
}

func TestFaultStrings(t *testing.T) {
	cases := map[string]Fault{
		"delay(lp1<-lp2 batch 3, 4 drains)": {Op: OpDelay, LP: 1, Src: 2, Seq: 3, N: 4},
		"split(lp0<-lp3 batch 7)":           {Op: OpSplit, LP: 0, Src: 3, Seq: 7},
		"reorder(lp2 drain 9)":              {Op: OpReorder, LP: 2, Seq: 9},
		"stall(lp1 rollback #5, 64 yields)": {Op: OpStall, LP: 1, Phase: PhaseRollback, Seq: 5, N: 64},
	}
	for want, f := range cases {
		if got := f.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
