package chaos

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/adapt"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/trace"
)

// TestAdaptiveRecoverySoak is the adaptive-control soak for the
// chaos-nightly CI job: supervised adaptive runs (engine switching,
// rebalancing, and window control all live) with one-shot panics and
// permanent LP stalls injected into whichever engine the controllers
// happen to be running. Every recovery — retry, fallback, or an
// adaptation-triggered engine migration — must land on the golden
// waveform. Gated on CHAOS_SOAK=1 so ordinary `go test ./...` never
// pays for it.
func TestAdaptiveRecoverySoak(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") != "1" {
		t.Skip("set CHAOS_SOAK=1 to run the adaptive-recovery soak")
	}
	const lps = 4
	var recoveries, fallbacks, switches, segments uint64
	for _, wlName := range DefaultWorkloads {
		wl, err := WorkloadByName(wlName)
		if err != nil {
			t.Fatal(err)
		}
		base, err := core.Simulate(wl.C, wl.Stim, wl.Until, core.Options{
			Engine: core.EngineSeq, System: logic.NineValued,
		})
		if err != nil {
			t.Fatal(err)
		}
		every := uint64(wl.Until) / 4
		if every == 0 {
			every = 1
		}
		for _, engine := range []core.Engine{core.EngineCMB, core.EngineTimeWarp, core.EngineHybrid} {
			for seed := uint64(1); seed <= 6; seed++ {
				for _, mode := range []string{"panic", "hang"} {
					hook := inject.NewHook(seed, nil)
					lp := int(seed) % lps
					if mode == "panic" {
						hook.PanicLP = lp
					} else {
						hook.HangLP = lp
					}
					rep, err := core.Simulate(wl.C, wl.Stim, wl.Until, core.Options{
						Engine: engine, LPs: lps, Partition: partition.MethodFM,
						PartitionSeed: int64(seed), System: logic.NineValued,
						Chaos: hook,
						Adapt: &adapt.Spec{Every: every},
						Supervise: &core.SuperviseOptions{
							Watchdog: 500 * time.Millisecond,
							Retries:  1,
							Backoff:  5 * time.Millisecond,
							Fallback: true,
						},
					})
					if err != nil {
						t.Errorf("%s/%v/seed=%d/%s: adaptive supervised run failed: %v",
							wlName, engine, seed, mode, err)
						continue
					}
					if d := trace.Diff(base.Waveform, rep.Waveform, 3); d != "" {
						t.Errorf("%s/%v/seed=%d/%s: waveform diverged after recovery:\n%s",
							wlName, engine, seed, mode, d)
					}
					if rep.Supervision != nil {
						recoveries += rep.Supervision.Recoveries
						fallbacks += rep.Supervision.Fallbacks
					}
					if rep.Adapt != nil {
						switches += uint64(rep.Adapt.EngineSwitches)
						segments += uint64(rep.Adapt.Segments)
					}
				}
			}
		}
	}
	t.Logf("adaptive soak: %d segments, %d engine switches, %d retry recoveries, %d fallbacks",
		segments, switches, recoveries, fallbacks)
	if recoveries == 0 {
		t.Error("soak injected panics but recorded zero supervised recoveries")
	}
	if fallbacks == 0 {
		t.Error("soak injected permanent stalls but recorded zero fallbacks")
	}
	if segments == 0 {
		t.Error("adaptive soak never segmented a run")
	}
}
