// Package chaos is the deterministic schedule-exploration harness for the
// asynchronous engines: it sweeps seeded fault plans (message delays,
// batch splits, cross-sender reorders, LP stalls — see the inject
// subpackage) over a workload corpus, checks every perturbed run against
// the sequential engine's golden waveform plus the counter-conservation
// invariants, and shrinks any failure to a minimal fault subset with a
// self-contained repro command.
//
// Determinism contract: a Plan is a pure function of its seed, every
// workload is reconstructible from its name, and verdicts depend only on
// (workload, engine, seed, plan subset, bias) — a correct engine passes
// under every chaos schedule, and protocol violations are detected at the
// transport where they are schedule-independent. Which faults happen to
// fire can vary with runtime scheduling (batch boundaries are
// timing-dependent); verdicts never derive from it.
package chaos

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/trace"
)

// DefaultEngines is the sweep's engine set: every asynchronous engine
// that honors core.Options.Chaos.
var DefaultEngines = []core.Engine{
	core.EngineCMB, core.EngineCMBDemand, core.EngineCMBDetect,
	core.EngineTimeWarp, core.EngineTimeWarpLazy, core.EngineHybrid,
}

// DefaultSeeds is the fixed seed list used when Config.Seeds is nil.
var DefaultSeeds = []uint64{1, 2, 3, 4}

// Config parameterizes an exploration sweep.
type Config struct {
	// Seeds are the fault-plan seeds swept per (workload, engine); nil
	// uses DefaultSeeds.
	Seeds []uint64
	// Engines limits the engines exercised; nil uses DefaultEngines.
	Engines []core.Engine
	// Workloads names the workload corpus; nil uses DefaultWorkloads.
	Workloads []string
	// LPs is the logical-process count (default 4).
	LPs int
	// Faults is the plan size per seed (default 16).
	Faults int
	// MaxEvents bounds each run (default 5,000,000).
	MaxEvents uint64
	// LookaheadBias is forwarded to the hook's sabotage knob; nonzero
	// deliberately breaks the conservative engines' promises (harness
	// self-tests only).
	LookaheadBias uint64
	// NoShrink disables failure minimization.
	NoShrink bool
	// ShrinkBudget caps shrinking probes per failure (default 120).
	ShrinkBudget int
}

func (cfg *Config) fill() {
	if cfg.LPs <= 0 {
		cfg.LPs = 4
	}
	if cfg.Faults <= 0 {
		cfg.Faults = 16
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 5_000_000
	}
	if cfg.ShrinkBudget <= 0 {
		cfg.ShrinkBudget = 120
	}
	if cfg.Seeds == nil {
		cfg.Seeds = DefaultSeeds
	}
	if cfg.Engines == nil {
		cfg.Engines = DefaultEngines
	}
	if cfg.Workloads == nil {
		cfg.Workloads = DefaultWorkloads
	}
}

// Outcome is one (workload, engine, seed) verdict.
type Outcome struct {
	Workload string
	Engine   core.Engine
	Seed     uint64
	Plan     inject.Plan
	// Failure is empty on a pass; otherwise the first check that failed.
	Failure string
	// Keep is the minimal failing subset of plan indices (empty means the
	// engine fails with no injected faults at all); nil until shrunk.
	Keep []int
	// MinFailure is the failure observed on the minimal subset.
	MinFailure string
	// Repro is a self-contained command replaying the minimal failure.
	Repro string
}

// Failed reports whether the run failed any check.
func (o *Outcome) Failed() bool { return o.Failure != "" }

// Explore sweeps the configured seeds over every (workload, engine) pair.
// The outcome order is deterministic: workloads × engines × seeds, each in
// configuration order.
func Explore(cfg Config) ([]Outcome, error) {
	cfg.fill()
	var out []Outcome
	for _, wn := range cfg.Workloads {
		w, err := WorkloadByName(wn)
		if err != nil {
			return nil, err
		}
		ref, err := goldenRun(w)
		if err != nil {
			return nil, fmt.Errorf("chaos: sequential golden for %q: %w", wn, err)
		}
		for _, eng := range cfg.Engines {
			for _, seed := range cfg.Seeds {
				out = append(out, exploreOne(cfg, w, ref, eng, seed))
			}
		}
	}
	return out, nil
}

// goldenRun computes the sequential reference for a workload.
func goldenRun(w *Workload) (*core.Report, error) {
	return core.Simulate(w.C, w.Stim, w.Until, core.Options{
		Engine: core.EngineSeq, System: logic.TwoValued,
	})
}

// exploreOne runs one seed and shrinks on failure.
func exploreOne(cfg Config, w *Workload, ref *core.Report, eng core.Engine, seed uint64) Outcome {
	plan := inject.NewPlan(seed, cfg.LPs, cfg.Faults)
	run := func(p inject.Plan) string {
		hook := inject.NewHook(seed, p)
		hook.LookaheadBias = cfg.LookaheadBias
		return runOnce(w, eng, ref, cfg.LPs, cfg.MaxEvents, hook)
	}
	o := Outcome{Workload: w.Name, Engine: eng, Seed: seed, Plan: plan}
	o.Failure = run(plan)
	if o.Failure == "" {
		return o
	}
	if cfg.NoShrink {
		o.Keep = allIndices(len(plan))
		o.MinFailure = o.Failure
	} else {
		o.Keep, o.MinFailure = Shrink(plan, o.Failure, run, cfg.ShrinkBudget)
	}
	o.Repro = reproLine(cfg, &o)
	return o
}

// runOnce executes one perturbed run and applies every check: engine
// error, transport-level protocol violations, golden waveform and final
// values, and counter conservation. It returns the first failure, or "".
func runOnce(w *Workload, eng core.Engine, ref *core.Report, lps int, maxEvents uint64, hook *inject.Hook) string {
	rep, err := core.Simulate(w.C, w.Stim, w.Until, core.Options{
		Engine: eng, LPs: lps, Partition: partition.MethodFM, PartitionSeed: 11,
		System: logic.TwoValued, MaxEvents: maxEvents, Chaos: hook,
	})
	// Transport-level violations are checked before the engine error:
	// message contents and per-sender batch order are schedule-independent,
	// so a violation yields the same failure text on every run, whereas a
	// broken engine's own failure mode (straggler abort vs silently wrong
	// waveform) can depend on how far the receiver happened to advance.
	if v := hook.Violations(); len(v) > 0 {
		s := "protocol violation: " + v[0]
		if len(v) > 1 {
			s += fmt.Sprintf(" (+%d more)", len(v)-1)
		}
		return s
	}
	if err != nil {
		return fmt.Sprintf("engine error: %v", err)
	}
	if d := trace.Diff(ref.Waveform, rep.Waveform, 5); d != "" {
		return "waveform mismatch vs sequential:\n" + d
	}
	for g := range ref.Values {
		if ref.Values[g] != rep.Values[g] {
			return fmt.Sprintf("final value mismatch at gate %d (%q): seq=%v got=%v",
				g, w.C.Gates[g].Name, ref.Values[g], rep.Values[g])
		}
	}
	if rep.Metrics == nil {
		return "metrics report not populated"
	}
	tot := rep.Metrics.Counters()
	seqEvals := ref.SeqWork.Evaluations

	// Conservative engines do exactly the sequential work under any
	// schedule (safe processing is schedule-independent); optimistic
	// engines may only add rollback re-execution.
	switch eng {
	case core.EngineCMB, core.EngineCMBDemand, core.EngineCMBDetect:
		if tot.Evaluations != seqEvals {
			return fmt.Sprintf("evaluations %d != sequential %d", tot.Evaluations, seqEvals)
		}
	default:
		if tot.Evaluations < seqEvals {
			return fmt.Sprintf("evaluations %d < sequential %d (lost work)", tot.Evaluations, seqEvals)
		}
	}
	// Message conservation (lazy cancellation counts suppressed
	// regenerations as sent, so only >= holds there).
	if eng == core.EngineTimeWarpLazy {
		if tot.MessagesSent < tot.MessagesRecv {
			return fmt.Sprintf("messages recv %d exceed sent %d", tot.MessagesRecv, tot.MessagesSent)
		}
	} else if tot.MessagesSent != tot.MessagesRecv {
		return fmt.Sprintf("messages sent %d != recv %d", tot.MessagesSent, tot.MessagesRecv)
	}
	if tot.NullsFolded > tot.NullsSent {
		return fmt.Sprintf("nulls folded %d exceed sent %d", tot.NullsFolded, tot.NullsSent)
	}
	if transmitted := tot.NullsSent - tot.NullsFolded; tot.NullsRecv > transmitted {
		return fmt.Sprintf("nulls recv %d exceed transmitted %d", tot.NullsRecv, transmitted)
	}
	if tot.AntiMessagesSent != tot.AntiMessagesRecv {
		return fmt.Sprintf("anti-messages sent %d != recv %d", tot.AntiMessagesSent, tot.AntiMessagesRecv)
	}
	return ""
}

// allIndices returns [0, n).
func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// planDigest is a deterministic fingerprint of a plan, for compact
// reporting.
func planDigest(p inject.Plan) string {
	h := fnv.New64a()
	for _, f := range p {
		fmt.Fprintln(h, f.String())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Render formats outcomes one per line. The output is a pure function of
// the outcomes' verdict-relevant fields, so two sweeps of the same
// configuration render byte-identically.
func Render(outs []Outcome) string {
	var b strings.Builder
	for i := range outs {
		o := &outs[i]
		verdict := "ok"
		if o.Failed() {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "workload=%s engine=%v seed=%d faults=%d plan=%s verdict=%s",
			o.Workload, o.Engine, o.Seed, len(o.Plan), planDigest(o.Plan), verdict)
		if o.Failed() {
			fmt.Fprintf(&b, " keep=%s", joinInts(o.Keep))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// joinInts renders indices as a semicolon list ("-" when empty).
func joinInts(idx []int) string {
	if len(idx) == 0 {
		return "-"
	}
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ";")
}

// reproLine builds the self-contained replay command for a failure.
func reproLine(cfg Config, o *Outcome) string {
	spec := ReplaySpec{
		Workload: o.Workload,
		Engine:   o.Engine,
		Seed:     o.Seed,
		LPs:      cfg.LPs,
		Faults:   cfg.Faults,
		Bias:     cfg.LookaheadBias,
		Keep:     o.Keep,
	}
	return fmt.Sprintf("go test ./internal/simtest/chaos -run 'TestReplay$' -replay '%s'", spec)
}
