package chaos

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/trace"
)

// TestSupervisedRecoverySoak is the supervised-recovery soak for the
// chaos-nightly CI job: it sweeps seeds injecting one-shot panics and
// permanent LP stalls into the asynchronous engines running under the
// supervision layer, and requires every run to complete with the golden
// waveform — panics absorbed by retries, stalls absorbed by
// watchdog-triggered fallback, zero hangs. Gated on CHAOS_SOAK=1 so
// ordinary `go test ./...` never pays for it.
func TestSupervisedRecoverySoak(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") != "1" {
		t.Skip("set CHAOS_SOAK=1 to run the supervised-recovery soak")
	}
	const lps = 4
	var recoveries, fallbacks uint64
	for _, wlName := range DefaultWorkloads {
		wl, err := WorkloadByName(wlName)
		if err != nil {
			t.Fatal(err)
		}
		base, err := core.Simulate(wl.C, wl.Stim, wl.Until, core.Options{
			Engine: core.EngineSeq, System: logic.NineValued,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, engine := range []core.Engine{core.EngineCMB, core.EngineTimeWarp} {
			for seed := uint64(1); seed <= 8; seed++ {
				for _, mode := range []string{"panic", "hang"} {
					hook := inject.NewHook(seed, nil)
					lp := int(seed) % lps
					if mode == "panic" {
						hook.PanicLP = lp
					} else {
						hook.HangLP = lp
					}
					rep, err := core.Simulate(wl.C, wl.Stim, wl.Until, core.Options{
						Engine: engine, LPs: lps, Partition: partition.MethodFM,
						PartitionSeed: int64(seed), System: logic.NineValued,
						Chaos: hook,
						Supervise: &core.SuperviseOptions{
							Watchdog: 500 * time.Millisecond,
							Retries:  1,
							Backoff:  5 * time.Millisecond,
							Fallback: true,
						},
					})
					if err != nil {
						t.Errorf("%s/%v/seed=%d/%s: supervised run failed: %v",
							wlName, engine, seed, mode, err)
						continue
					}
					if d := trace.Diff(base.Waveform, rep.Waveform, 3); d != "" {
						t.Errorf("%s/%v/seed=%d/%s: waveform diverged after recovery:\n%s",
							wlName, engine, seed, mode, d)
					}
					if rep.Supervision != nil {
						recoveries += rep.Supervision.Recoveries
						fallbacks += rep.Supervision.Fallbacks
					}
				}
			}
		}
	}
	t.Logf("soak: %d retry recoveries, %d fallbacks", recoveries, fallbacks)
	if recoveries == 0 {
		t.Error("soak injected panics but recorded zero supervised recoveries")
	}
	if fallbacks == 0 {
		t.Error("soak injected permanent stalls but recorded zero fallbacks")
	}
}
