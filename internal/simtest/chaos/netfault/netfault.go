// Package netfault is the real-network half of the chaos harness:
// seeded plans of connection-scoped socket faults for distributed runs.
// Where package inject perturbs in-process mailbox delivery, netfault
// perturbs the coordinator's relay of framed event batches over real
// sockets: whole-direction stalls, connection drops (forcing reconnect
// plus ordered retransmit), frame duplication (absorbed by sequence
// dedup), symmetric partitions, and worker kills.
//
// Every fault is scoped to a connection, never to an individual frame:
// the reliable wire layer (sequence numbers, cumulative acks, in-order
// retransmit) then guarantees that per-sender FIFO delivery — which
// both simulation protocols depend on — survives any plan. That mirrors
// what a real TCP failure can and cannot do, and it is exactly the
// fault model package inject's commutable-reordering rationale permits.
//
// A Plan is a pure function of (seed, shard count, fault count), so a
// failing run replays from the integers in its repro line, and plans
// shrink with the same ddmin machinery as in-process chaos plans
// (chaos.ShrinkIndices over plan indices via Subset).
package netfault

import (
	"fmt"
	"math/rand/v2"
)

// Op is a network fault kind.
type Op uint8

// The fault kinds.
const (
	// OpStall holds the coordinator's relay of frames arriving from the
	// shard for Ms milliseconds. Later frames from that shard queue
	// behind the stall, so delivery is delayed but never reordered.
	OpStall Op = iota
	// OpDropConn closes the shard's connection. The worker re-dials with
	// exponential backoff; unacknowledged frames retransmit in order on
	// reattach.
	OpDropConn
	// OpDup re-sends the most recent sequenced frame delivered to the
	// shard; the receiver's sequence dedup must absorb the duplicate.
	OpDup
	// OpPartition freezes both directions of the shard's link for Ms
	// milliseconds without closing it: frames (and heartbeats) are
	// neither sent nor read, as in a dropped route.
	OpPartition
	// OpKill terminates the worker outright (SIGKILL for a process
	// worker, forced disconnect and abort for an in-process one). The
	// coordinator must classify the loss and recover from the last
	// complete per-shard checkpoint cut.
	OpKill
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpStall:
		return "stall"
	case OpDropConn:
		return "drop-conn"
	case OpDup:
		return "dup"
	case OpPartition:
		return "partition"
	case OpKill:
		return "kill"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Fault is one planned network perturbation.
type Fault struct {
	Op Op
	// Shard is the worker whose link is perturbed.
	Shard int
	// AfterFrames triggers the fault once the coordinator has relayed
	// this many frames from the shard (0-based count of inbound frames).
	AfterFrames uint64
	// Ms is the stall/partition duration in milliseconds.
	Ms uint64
	// Attempt restricts the fault to one run attempt (kills must not
	// recur forever or recovery could never complete); -1 applies on
	// every attempt.
	Attempt int
	// Peer targets a mesh link instead of the shard's hub link: 0 (the
	// zero value, so every pre-mesh plan is unchanged) perturbs the hub
	// link, k > 0 perturbs the shard's direct link to shard k-1. Ignored
	// on non-mesh runs and meaningless for kills.
	Peer int
}

// String renders the fault compactly and deterministically.
func (f Fault) String() string {
	at := "*"
	if f.Attempt >= 0 {
		at = fmt.Sprintf("%d", f.Attempt)
	}
	link := fmt.Sprintf("shard%d", f.Shard)
	if f.Peer > 0 {
		link = fmt.Sprintf("shard%d~%d", f.Shard, f.Peer-1)
	}
	switch f.Op {
	case OpStall, OpPartition:
		return fmt.Sprintf("%s(%s after %d frames, %dms, attempt %s)", f.Op, link, f.AfterFrames, f.Ms, at)
	default:
		return fmt.Sprintf("%s(%s after %d frames, attempt %s)", f.Op, link, f.AfterFrames, at)
	}
}

// Plan is an ordered fault list. Order matters only for shrinking: a
// minimal failing subset is reported as indices into the plan.
type Plan []Fault

// Subset keeps the faults at the given plan indices, the projection
// ddmin shrinking probes with.
func (p Plan) Subset(idx []int) Plan {
	out := make(Plan, 0, len(idx))
	for _, i := range idx {
		out = append(out, p[i])
	}
	return out
}

// NewPlan derives a fault plan from a seed: a pure function of its
// arguments — same seed, same plan, on every run and platform. Stall
// and partition durations stay below maxHoldMs so a survivable plan
// cannot by itself outlast a reasonably configured heartbeat timeout;
// kills are generated only when allowKill is set, and each kill is
// pinned to a distinct attempt (0, 1, 2, …) so a run with enough
// restart budget always reaches a kill-free attempt.
func NewPlan(seed uint64, shards, faults int, allowKill bool) Plan {
	if shards < 1 {
		shards = 1
	}
	const maxHoldMs = 40
	rng := rand.New(rand.NewPCG(seed, 0xb5297a4d3f84d5a3))
	plan := make(Plan, 0, faults)
	kills := 0
	for i := 0; i < faults; i++ {
		f := Fault{Shard: rng.IntN(shards), Attempt: -1}
		f.AfterFrames = uint64(rng.IntN(240))
		switch r := rng.Float64(); {
		case r < 0.35:
			f.Op = OpStall
			f.Ms = 2 + uint64(rng.IntN(maxHoldMs-2))
		case r < 0.55:
			f.Op = OpDropConn
		case r < 0.75:
			f.Op = OpDup
		case r < 0.90 || !allowKill:
			f.Op = OpPartition
			f.Ms = 2 + uint64(rng.IntN(maxHoldMs-2))
		default:
			f.Op = OpKill
			f.Attempt = kills
			kills++
		}
		plan = append(plan, f)
	}
	return plan
}

// NewMeshPlan derives a fault plan for a mesh-topology run: the same
// faults NewPlan(seed, shards, faults, allowKill) yields — so every
// existing seed keeps its meaning — with roughly half of the non-kill
// faults retargeted from the shard's hub link to one of its mesh links,
// using an independent deterministic stream so the retargeting never
// perturbs the base plan. Like the base plan it is a pure function of
// its arguments, so a failing run replays and ddmin-shrinks from the
// integers in its repro line.
func NewMeshPlan(seed uint64, shards, faults int, allowKill bool) Plan {
	plan := NewPlan(seed, shards, faults, allowKill)
	if shards < 2 {
		return plan
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	for i := range plan {
		f := &plan[i]
		if f.Op == OpKill {
			continue
		}
		if rng.Float64() < 0.5 {
			continue
		}
		// Pick a peer shard distinct from the fault's own shard.
		p := rng.IntN(shards - 1)
		if p >= f.Shard {
			p++
		}
		f.Peer = p + 1
	}
	return plan
}

// Kills counts the kill faults in the plan — the minimum restart budget
// a run needs to reach a kill-free attempt.
func (p Plan) Kills() int {
	n := 0
	for _, f := range p {
		if f.Op == OpKill {
			n++
		}
	}
	return n
}
