package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/simtest/chaos/inject"
)

// ReplaySpec names one perturbed run precisely enough to reproduce it:
// the workload (reconstructible by name), the engine, the plan seed and
// size, the sabotage bias, and the fault subset kept after shrinking. Its
// textual form is what Explore prints in repro commands.
type ReplaySpec struct {
	Workload string
	Engine   core.Engine
	Seed     uint64
	LPs      int
	Faults   int
	Bias     uint64
	// Keep selects plan indices; nil replays the full plan.
	Keep []int
}

// String renders the spec in the key=value form ParseReplay accepts.
func (s ReplaySpec) String() string {
	out := fmt.Sprintf("workload=%s,engine=%v,seed=%d,lps=%d,faults=%d,bias=%d",
		s.Workload, s.Engine, s.Seed, s.LPs, s.Faults, s.Bias)
	if s.Keep != nil {
		out += ",keep=" + joinInts(s.Keep)
	}
	return out
}

// ParseReplay parses a spec previously rendered by String.
func ParseReplay(text string) (ReplaySpec, error) {
	spec := ReplaySpec{LPs: 4, Faults: 16}
	for _, kv := range strings.Split(text, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("chaos: replay spec field %q: want key=value", kv)
		}
		var err error
		switch k {
		case "workload":
			spec.Workload = v
		case "engine":
			spec.Engine, err = core.ParseEngine(v)
		case "seed":
			spec.Seed, err = strconv.ParseUint(v, 10, 64)
		case "lps":
			spec.LPs, err = strconv.Atoi(v)
		case "faults":
			spec.Faults, err = strconv.Atoi(v)
		case "bias":
			spec.Bias, err = strconv.ParseUint(v, 10, 64)
		case "keep":
			spec.Keep = []int{}
			if v != "-" && v != "" {
				for _, part := range strings.Split(v, ";") {
					i, perr := strconv.Atoi(part)
					if perr != nil {
						return spec, fmt.Errorf("chaos: replay spec keep index %q: %v", part, perr)
					}
					spec.Keep = append(spec.Keep, i)
				}
			}
		default:
			return spec, fmt.Errorf("chaos: replay spec: unknown key %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("chaos: replay spec %s=%s: %v", k, v, err)
		}
	}
	if spec.Workload == "" {
		return spec, fmt.Errorf("chaos: replay spec: workload is required")
	}
	return spec, nil
}

// Replay reruns one spec and returns its outcome. Because plans are pure
// functions of their seed and verdicts are schedule-independent, a replay
// of a shrunk failure fails the same checks as the original sweep.
func Replay(spec ReplaySpec) (Outcome, error) {
	w, err := WorkloadByName(spec.Workload)
	if err != nil {
		return Outcome{}, err
	}
	ref, err := goldenRun(w)
	if err != nil {
		return Outcome{}, fmt.Errorf("chaos: sequential golden for %q: %w", spec.Workload, err)
	}
	full := inject.NewPlan(spec.Seed, spec.LPs, spec.Faults)
	plan := full
	if spec.Keep != nil {
		plan = make(inject.Plan, 0, len(spec.Keep))
		for _, i := range spec.Keep {
			if i < 0 || i >= len(full) {
				return Outcome{}, fmt.Errorf("chaos: replay keep index %d out of range [0,%d)", i, len(full))
			}
			plan = append(plan, full[i])
		}
	}
	hook := inject.NewHook(spec.Seed, plan)
	hook.LookaheadBias = spec.Bias
	o := Outcome{Workload: spec.Workload, Engine: spec.Engine, Seed: spec.Seed, Plan: plan, Keep: spec.Keep}
	o.Failure = runOnce(w, spec.Engine, ref, spec.LPs, 5_000_000, hook)
	return o, nil
}
