// Package simtest provides shared helpers for functional simulator tests:
// driving a circuit with a fixed input assignment, decoding integer-valued
// output buses, and a standard corpus of circuits for cross-engine
// equivalence testing.
package simtest

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim/seq"
	"repro/internal/vectors"
)

// Assign builds a single-vector stimulus driving the named inputs to the
// given values at time zero.
func Assign(c *circuit.Circuit, values map[string]logic.Value) (*vectors.Stimulus, error) {
	s := &vectors.Stimulus{End: 0}
	seen := make(map[string]bool, len(values))
	for _, in := range c.Inputs {
		name := c.Gate(in).Name
		v, ok := values[name]
		if !ok {
			return nil, fmt.Errorf("simtest: no value for input %q", name)
		}
		seen[name] = true
		s.Changes = append(s.Changes, vectors.Change{Time: 0, Input: in, Value: v})
	}
	for name := range values {
		if !seen[name] {
			return nil, fmt.Errorf("simtest: %q is not an input of the circuit", name)
		}
	}
	return s, nil
}

// Settle runs the sequential engine on a single-vector stimulus until the
// circuit is quiescent and returns the final values.
func Settle(c *circuit.Circuit, values map[string]logic.Value) ([]logic.Value, error) {
	stim, err := Assign(c, values)
	if err != nil {
		return nil, err
	}
	res, err := seq.Run(c, stim, seq.Horizon(c, stim), seq.Config{
		System:    logic.TwoValued,
		MaxEvents: 10_000_000,
	})
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// BusValue decodes the outputs named prefix0..prefixN (little-endian) into
// an integer. It fails if any bit is not a driven 0/1.
func BusValue(c *circuit.Circuit, values []logic.Value, prefix string, bits int) (uint64, error) {
	var out uint64
	for i := 0; i < bits; i++ {
		id, ok := c.ByName(fmt.Sprintf("%s%d", prefix, i))
		if !ok {
			return 0, fmt.Errorf("simtest: no output %s%d", prefix, i)
		}
		b, known := values[id].Bool()
		if !known {
			return 0, fmt.Errorf("simtest: output %s%d = %v not driven", prefix, i, values[id])
		}
		if b {
			out |= 1 << i
		}
	}
	return out, nil
}

// BusAssign produces input assignments for a bus prefix0..prefixN
// (little-endian) from an integer, merged into dst.
func BusAssign(dst map[string]logic.Value, prefix string, bits int, v uint64) {
	for i := 0; i < bits; i++ {
		dst[fmt.Sprintf("%s%d", prefix, i)] = logic.FromBool(v&(1<<i) != 0)
	}
}

// Corpus describes one standard test circuit paired with a stimulus
// generator, used by the cross-engine equivalence suites.
type Corpus struct {
	Name string
	C    *circuit.Circuit
	Stim *vectors.Stimulus
}

// StandardCorpus builds a diverse set of circuits and stimulus covering
// combinational and sequential logic, unit and random delays, and low and
// high activity. Every engine must reproduce the sequential engine's
// waveform on all of them.
func StandardCorpus(seed int64) ([]Corpus, error) {
	var out []Corpus
	add := func(name string, c *circuit.Circuit, err error, mk func(*circuit.Circuit) (*vectors.Stimulus, error)) error {
		if err != nil {
			return fmt.Errorf("simtest: corpus %s: %w", name, err)
		}
		stim, err := mk(c)
		if err != nil {
			return fmt.Errorf("simtest: corpus %s stimulus: %w", name, err)
		}
		out = append(out, Corpus{name, c, stim})
		return nil
	}

	rand20 := func(c *circuit.Circuit) (*vectors.Stimulus, error) {
		return vectors.Random(c, vectors.RandomConfig{Vectors: 20, Period: 40, Activity: 0.5, Seed: seed})
	}
	randHot := func(c *circuit.Circuit) (*vectors.Stimulus, error) {
		return vectors.Random(c, vectors.RandomConfig{Vectors: 30, Period: 25, Activity: 1.0, Seed: seed + 1})
	}
	clocked := func(c *circuit.Circuit) (*vectors.Stimulus, error) {
		return vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 25, HalfPeriod: 30, Activity: 0.6, Seed: seed + 2})
	}

	ra, err := gen.RippleAdder(8, gen.Unit)
	if err := add("ripple8-unit", ra, err, rand20); err != nil {
		return nil, err
	}
	raf, err := gen.RippleAdder(8, gen.Fine(7, seed))
	if err := add("ripple8-fine", raf, err, rand20); err != nil {
		return nil, err
	}
	cla, err := gen.CLAAdder(12, gen.Unit)
	if err := add("cla12-unit", cla, err, randHot); err != nil {
		return nil, err
	}
	mul, err := gen.ArrayMultiplier(6, gen.Fine(5, seed+3))
	if err := add("mul6-fine", mul, err, rand20); err != nil {
		return nil, err
	}
	dag, err := gen.RandomDAG(gen.RandomConfig{Gates: 300, Inputs: 12, Outputs: 8, Seed: seed + 4, Locality: 0.5})
	if err := add("dag300-unit", dag, err, randHot); err != nil {
		return nil, err
	}
	dagf, err := gen.RandomDAG(gen.RandomConfig{Gates: 200, Inputs: 10, Outputs: 6, Seed: seed + 5, Delays: gen.Fine(9, seed+5)})
	if err := add("dag200-fine", dagf, err, rand20); err != nil {
		return nil, err
	}
	lfsr, err := gen.LFSR(8, nil, gen.Unit)
	if err := add("lfsr8-unit", lfsr, err, clocked); err != nil {
		return nil, err
	}
	ctr, err := gen.Counter(6, gen.Fine(4, seed+6))
	if err := add("counter6-fine", ctr, err, clocked); err != nil {
		return nil, err
	}
	rs, err := gen.RandomSeq(gen.RandomConfig{Gates: 250, Inputs: 8, Outputs: 6, Seed: seed + 7, FFRatio: 0.15})
	if err := add("seq250-unit", rs, err, clocked); err != nil {
		return nil, err
	}
	return out, nil
}
