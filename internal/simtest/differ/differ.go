// Package differ is the cross-engine differential harness: randomized
// circuit x stimulus x engine x partition x LP-count trials, each checked
// for waveform and final-value equality against the sequential reference.
// It lives below simtest (rather than in it) because it must import
// core — which imports every engine — while the engines' own test files
// import simtest's circuit helpers.
package differ

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/sim/timewarp"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Trials are a pure function of (config seed, trial index), so any
// failure is reproducible from the two integers in its error message; the
// message also carries the full generated spec so a failing case can be
// reconstructed as a standalone test without rerunning the harness.

// DiffConfig seeds the randomized differential harness.
type DiffConfig struct {
	// Seed is the master seed; every trial derives its own seed from it.
	Seed int64
	// MaxGates bounds generated circuit size (default 400).
	MaxGates int
	// Engines limits the engines exercised; nil means every parallel
	// event-driven engine (sync, cmb variants, timewarp variants, hybrid).
	Engines []core.Engine
}

// DiffEngines is the default engine set: every parallel event-driven
// engine, which must reproduce the sequential reference waveform exactly.
// (The oblivious and bit-parallel engines are cycle-based — they settle
// per boundary rather than reproducing transients — so their equivalence
// suites compare settled values, not waveforms, and live elsewhere.)
var DiffEngines = []core.Engine{
	core.EngineSync,
	core.EngineCMB, core.EngineCMBDemand, core.EngineCMBDetect,
	core.EngineTimeWarp, core.EngineTimeWarpLazy,
	core.EngineHybrid,
}

// diffMethods are the partition heuristics the harness samples.
// MethodAnneal is excluded: its move budget makes trial cost dominated by
// partitioning rather than simulation.
var diffMethods = []partition.Method{
	partition.MethodRandom, partition.MethodContiguous, partition.MethodStrings,
	partition.MethodCones, partition.MethodLevels, partition.MethodKL,
	partition.MethodFM, partition.MethodMultilevel,
}

// Trial is one fully-specified differential check. All fields are derived
// deterministically from (DiffConfig.Seed, Index).
type Trial struct {
	Index int
	Seed  int64
	// Spec describes how the circuit and stimulus were generated,
	// precisely enough to reconstruct them by hand.
	Spec string
	C    *circuit.Circuit
	Stim *vectors.Stimulus
	// Until is the simulation horizon.
	Until circuit.Tick
	// Opts is the engine configuration under test.
	Opts core.Options
}

// GenTrial deterministically derives trial i from the config.
func GenTrial(cfg DiffConfig, i int) (*Trial, error) {
	if cfg.MaxGates <= 0 {
		cfg.MaxGates = 400
	}
	engines := cfg.Engines
	if engines == nil {
		engines = DiffEngines
	}
	seed := cfg.Seed*1_000_003 + int64(i)
	rng := rand.New(rand.NewSource(seed))
	tr := &Trial{Index: i, Seed: seed}

	var spec strings.Builder
	c, stim, err := genWorkload(rng, cfg.MaxGates, seed, &spec)
	if err != nil {
		return nil, fmt.Errorf("differ: trial %d (seed %d): %w", i, seed, err)
	}
	tr.C, tr.Stim = c, stim
	tr.Until = seq.Horizon(c, stim)

	opts := core.Options{
		Engine:        engines[rng.Intn(len(engines))],
		LPs:           1 + rng.Intn(8),
		Partition:     diffMethods[rng.Intn(len(diffMethods))],
		PartitionSeed: rng.Int63n(1 << 30),
		System:        logic.TwoValued,
	}
	if rng.Intn(4) == 0 {
		opts.System = logic.NineValued
	}
	switch opts.Engine {
	case core.EngineTimeWarp, core.EngineTimeWarpLazy:
		if rng.Intn(2) == 0 {
			opts.StateSaving = timewarp.FullCopy
		}
		if rng.Intn(3) == 0 {
			opts.Window = circuit.Tick(20 + rng.Intn(200))
		}
	case core.EngineHybrid:
		opts.IntraWorkers = 1 + rng.Intn(3)
	}
	fmt.Fprintf(&spec, "; engine=%v lps=%d partition=%v/seed=%d system=%v",
		opts.Engine, opts.LPs, opts.Partition, opts.PartitionSeed, opts.System)
	if opts.StateSaving == timewarp.FullCopy {
		spec.WriteString(" statesaving=full-copy")
	}
	if opts.Window > 0 {
		fmt.Fprintf(&spec, " window=%d", opts.Window)
	}
	if opts.Engine == core.EngineHybrid {
		fmt.Fprintf(&spec, " intraworkers=%d", opts.IntraWorkers)
	}
	tr.Opts = opts
	tr.Spec = spec.String()
	return tr, nil
}

// genWorkload picks a circuit family and a stimulus, recording the
// generation parameters in spec.
func genWorkload(rng *rand.Rand, maxGates int, seed int64, spec *strings.Builder) (*circuit.Circuit, *vectors.Stimulus, error) {
	delays := gen.Unit
	delayName := "unit"
	if rng.Intn(2) == 0 {
		max := circuit.Tick(3 + rng.Intn(9))
		delays = gen.Fine(max, seed)
		delayName = fmt.Sprintf("fine(%d,%d)", max, seed)
	}

	var (
		c    *circuit.Circuit
		err  error
		seqC bool // needs a clocked stimulus
	)
	switch k := rng.Intn(6); k {
	case 0:
		bits := 4 + rng.Intn(8)
		fmt.Fprintf(spec, "ripple%d delays=%s", bits, delayName)
		c, err = gen.RippleAdder(bits, delays)
	case 1:
		n := 3 + rng.Intn(3)
		fmt.Fprintf(spec, "mul%d delays=%s", n, delayName)
		c, err = gen.ArrayMultiplier(n, delays)
	case 2:
		gates := 50 + rng.Intn(maxGates-50)
		loc := rng.Float64()
		fmt.Fprintf(spec, "dag{gates=%d,in=10,out=8,seed=%d,loc=%.2f} delays=%s", gates, seed, loc, delayName)
		c, err = gen.RandomDAG(gen.RandomConfig{
			Gates: gates, Inputs: 10, Outputs: 8, Seed: seed, Locality: loc, Delays: delays,
		})
	case 3:
		gates := 50 + rng.Intn(maxGates-50)
		ff := 0.05 + 0.2*rng.Float64()
		fmt.Fprintf(spec, "seq{gates=%d,in=8,out=6,seed=%d,ff=%.2f} delays=%s", gates, seed, ff, delayName)
		c, err = gen.RandomSeq(gen.RandomConfig{
			Gates: gates, Inputs: 8, Outputs: 6, Seed: seed, FFRatio: ff, Delays: delays,
		})
		seqC = true
	case 4:
		bits := 3 + rng.Intn(5)
		fmt.Fprintf(spec, "counter%d delays=%s", bits, delayName)
		c, err = gen.Counter(bits, delays)
		seqC = true
	default:
		bits := 4 + rng.Intn(6)
		fmt.Fprintf(spec, "lfsr%d delays=%s", bits, delayName)
		c, err = gen.LFSR(bits, nil, delays)
		seqC = true
	}
	if err != nil {
		return nil, nil, err
	}

	var stim *vectors.Stimulus
	if seqC {
		cycles := 8 + rng.Intn(15)
		half := 20 + rng.Intn(30)
		act := 0.2 + 0.8*rng.Float64()
		fmt.Fprintf(spec, "; clocked{cycles=%d,half=%d,act=%.2f,seed=%d}", cycles, half, act, seed)
		stim, err = vectors.Clocked(c, vectors.ClockedConfig{
			Clock: "clk", Cycles: cycles, HalfPeriod: circuit.Tick(half), Activity: act, Seed: seed,
		})
	} else {
		vecs := 5 + rng.Intn(20)
		period := 20 + rng.Intn(50)
		act := 0.05 + 0.95*rng.Float64()
		fmt.Fprintf(spec, "; random{vecs=%d,period=%d,act=%.2f,seed=%d}", vecs, period, act, seed)
		stim, err = vectors.Random(c, vectors.RandomConfig{
			Vectors: vecs, Period: circuit.Tick(period), Activity: act, Seed: seed,
		})
	}
	if err != nil {
		return nil, nil, err
	}
	return c, stim, nil
}

// Check runs the trial's engine and the sequential reference and compares
// waveforms and final values. A non-nil error carries a self-contained
// repro: the trial coordinates, the generation spec, and the first
// divergences.
func (tr *Trial) Check() error {
	ref, err := core.Simulate(tr.C, tr.Stim, tr.Until, core.Options{
		Engine: core.EngineSeq, System: tr.Opts.System,
	})
	if err != nil {
		return tr.fail("sequential reference failed: %v", err)
	}
	rep, err := core.Simulate(tr.C, tr.Stim, tr.Until, tr.Opts)
	if err != nil {
		return tr.fail("engine run failed: %v", err)
	}
	if d := trace.Diff(ref.Waveform, rep.Waveform, 5); d != "" {
		return tr.fail("waveform mismatch vs seq:\n%s", d)
	}
	for g := range ref.Values {
		if ref.Values[g] != rep.Values[g] {
			return tr.fail("final value mismatch at gate %d (%q): seq=%v got=%v",
				g, tr.C.Gates[g].Name, ref.Values[g], rep.Values[g])
		}
	}
	return nil
}

// fail wraps a mismatch with everything needed to reproduce the trial.
func (tr *Trial) fail(format string, argv ...any) error {
	return fmt.Errorf("differential trial %d (seed %d)\n  spec: %s\n  repro: differ.GenTrial(differ.DiffConfig{Seed: <master>}, %d) with trial seed %d\n  %s",
		tr.Index, tr.Seed, tr.Spec, tr.Index, tr.Seed, fmt.Sprintf(format, argv...))
}
