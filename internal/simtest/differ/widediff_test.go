package differ

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestWideLockstepCrossEngine is the wide-plane conformance suite: every
// trial generates a fresh circuit, a batch of independent per-lane scalar
// stimuli, and a wide engine configuration, then checks that every lane of
// the wide run reproduces — sample for sample — the scalar sequential
// reference of that lane's stimulus. Failures shrink to a minimal lane set
// and carry a self-contained repro.
func TestWideLockstepCrossEngine(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	cfg := WideDiffConfig{Seed: 64}
	for i := 0; i < trials; i++ {
		tr, err := GenWideTrial(cfg, i)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		t.Run(fmt.Sprintf("trial-%02d-%s-%s", i, tr.Opts.Engine, tr.Opts.Partition), func(t *testing.T) {
			t.Parallel()
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWideLockstepPerEngineCoverage pins one deterministic batch per wide
// engine, so a regression in a single engine's wide path is reported by
// name even if the randomized mix under-samples it. The sequential and
// oblivious wide paths, which the lockstep trials use differently or not
// at all, get explicit entries.
func TestWideLockstepPerEngineCoverage(t *testing.T) {
	per := 4
	if testing.Short() {
		per = 2
	}
	for _, eng := range WideDiffEngines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			t.Parallel()
			cfg := WideDiffConfig{Seed: 400 + int64(eng), Engines: []core.Engine{eng}}
			for i := 0; i < per; i++ {
				tr, err := GenWideTrial(cfg, i)
				if err != nil {
					t.Fatalf("trial %d: %v", i, err)
				}
				if err := tr.Check(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestWideSeqLockstep covers the wide sequential engine itself through the
// same generator (the cross-engine trials use it only as the reference).
func TestWideSeqLockstep(t *testing.T) {
	cfg := WideDiffConfig{Seed: 11, Engines: []core.Engine{core.EngineSeq}}
	for i := 0; i < 4; i++ {
		tr, err := GenWideTrial(cfg, i)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGenWideTrialDeterministic guards the repro contract: the same
// (seed, index) must regenerate the identical wide trial.
func TestGenWideTrialDeterministic(t *testing.T) {
	cfg := WideDiffConfig{Seed: 99}
	a, err := GenWideTrial(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenWideTrial(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec != b.Spec || a.Seed != b.Seed {
		t.Fatalf("wide trial not deterministic:\n%s\n%s", a.Spec, b.Spec)
	}
	if fmt.Sprintf("%+v", a.Opts) != fmt.Sprintf("%+v", b.Opts) {
		t.Fatalf("options not deterministic: %+v vs %+v", a.Opts, b.Opts)
	}
	if len(a.Wide.Changes) != len(b.Wide.Changes) || a.Wide.Lanes != b.Wide.Lanes {
		t.Fatalf("wide stimulus not deterministic")
	}
}
