package differ

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/opt"
	"repro/internal/sim/seq"
	"repro/internal/simtest/chaos"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// OptDiffConfig seeds the randomized optimizer-equivalence harness: every
// trial optimizes a generated netlist with a pass subset, runs an engine
// on the optimized circuit, and demands the primary-output waveform —
// mapped back through the remap — be bit-identical to the unoptimized
// sequential reference.
type OptDiffConfig struct {
	// Seed is the master seed; every trial derives its own seed from it.
	Seed int64
	// MaxGates bounds generated circuit size (default 300).
	MaxGates int
	// Engines limits the engines run on the optimized netlist; nil means
	// the sequential reference plus every parallel event-driven engine.
	Engines []core.Engine
}

// OptTrial is one fully-specified optimizer-equivalence check. All fields
// derive deterministically from (OptDiffConfig.Seed, Index).
type OptTrial struct {
	Index int
	Seed  int64
	Spec  string
	C     *circuit.Circuit
	// Passes is the optimizer pipeline under test (a subset of
	// opt.DefaultPasses, so the exactness contract applies).
	Passes []string
	Until  circuit.Tick
	Opts   core.Options

	// Scalar trials populate Stim; wide trials populate Stims/Wide and run
	// the engine's 64-lane path instead.
	Stim  *vectors.Stimulus
	Stims []*vectors.Stimulus
	Wide  *vectors.WideStimulus
}

// GenOptTrial deterministically derives optimizer trial i from the config.
func GenOptTrial(cfg OptDiffConfig, i int) (*OptTrial, error) {
	if cfg.MaxGates <= 0 {
		cfg.MaxGates = 300
	}
	engines := cfg.Engines
	if engines == nil {
		engines = append([]core.Engine{core.EngineSeq}, DiffEngines...)
	}
	seed := cfg.Seed*3_000_017 + int64(i)
	rng := rand.New(rand.NewSource(seed))
	tr := &OptTrial{Index: i, Seed: seed}

	// Pass subset: the full default pipeline half the time (the case users
	// run), otherwise a random non-empty subset in pipeline order.
	if rng.Intn(2) == 0 {
		tr.Passes = append([]string(nil), opt.DefaultPasses...)
	} else {
		for len(tr.Passes) == 0 {
			tr.Passes = tr.Passes[:0]
			for _, p := range opt.DefaultPasses {
				if rng.Intn(2) == 0 {
					tr.Passes = append(tr.Passes, p)
				}
			}
		}
	}

	var spec strings.Builder
	fmt.Fprintf(&spec, "passes=%v; ", tr.Passes)

	wide := rng.Intn(4) == 0
	if wide {
		return genOptWide(cfg, tr, rng, seed, &spec, engines)
	}

	c, stim, err := genWorkload(rng, cfg.MaxGates, seed, &spec)
	if err != nil {
		return nil, fmt.Errorf("differ: opt trial %d (seed %d): %w", i, seed, err)
	}
	tr.C, tr.Stim = c, stim
	tr.Until = seq.Horizon(c, stim)

	opts := core.Options{
		Engine:        engines[rng.Intn(len(engines))],
		LPs:           1 + rng.Intn(6),
		Partition:     diffMethods[rng.Intn(len(diffMethods))],
		PartitionSeed: rng.Int63n(1 << 30),
		System:        logic.TwoValued,
	}
	if rng.Intn(3) == 0 {
		opts.System = logic.NineValued
	}
	if opts.Engine == core.EngineHybrid {
		opts.IntraWorkers = 1 + rng.Intn(3)
	}
	// Exercise the cone-split + sweep execution mode against optimized
	// netlists too: it overrides the partition method.
	if opts.Engine.Parallel() && rng.Intn(4) == 0 {
		opts.ConeSplit = true
		spec.WriteString("; cone-split")
	}
	fmt.Fprintf(&spec, "; engine=%v lps=%d partition=%v/seed=%d system=%v",
		opts.Engine, opts.LPs, opts.Partition, opts.PartitionSeed, opts.System)
	tr.Opts = opts
	tr.Spec = spec.String()
	return tr, nil
}

// genOptWide fills in a wide-path trial: a lane batch on a generated
// circuit, compared lane by lane against the scalar sequential reference
// of the unoptimized netlist.
func genOptWide(cfg OptDiffConfig, tr *OptTrial, rng *rand.Rand, seed int64, spec *strings.Builder, engines []core.Engine) (*OptTrial, error) {
	sys := logic.TwoValued
	if rng.Intn(2) == 0 {
		sys = logic.FourValued
	}
	lanes := 1 + rng.Intn(logic.Lanes)

	var (
		c    *circuit.Circuit
		err  error
		seqC bool
	)
	if rng.Intn(2) == 0 {
		gates := 40 + rng.Intn(cfg.MaxGates-40)
		fmt.Fprintf(spec, "dag{gates=%d,seed=%d}", gates, seed)
		c, err = gen.RandomDAG(gen.RandomConfig{
			Gates: gates, Inputs: 8, Outputs: 6, Seed: seed, Locality: 0.6,
		})
	} else {
		gates := 40 + rng.Intn(cfg.MaxGates-40)
		fmt.Fprintf(spec, "seq{gates=%d,seed=%d}", gates, seed)
		c, err = gen.RandomSeq(gen.RandomConfig{
			Gates: gates, Inputs: 8, Outputs: 6, Seed: seed, FFRatio: 0.15,
		})
		seqC = true
	}
	if err != nil {
		return nil, fmt.Errorf("differ: opt trial %d (seed %d): %w", tr.Index, seed, err)
	}
	tr.C = c

	if seqC {
		fmt.Fprintf(spec, "; clockedbatch{lanes=%d,seed=%d}", lanes, seed)
		tr.Wide, tr.Stims, err = vectors.ClockedBatch(c, vectors.ClockedConfig{
			Clock: "clk", Cycles: 6, HalfPeriod: 20, Activity: 0.6, Seed: seed,
		}, lanes, sys)
	} else {
		fmt.Fprintf(spec, "; randombatch{lanes=%d,seed=%d}", lanes, seed)
		tr.Wide, tr.Stims, err = vectors.RandomBatch(c, vectors.RandomConfig{
			Vectors: 6, Period: 25, Activity: 0.6, Seed: seed,
		}, lanes, sys)
	}
	if err != nil {
		return nil, fmt.Errorf("differ: opt trial %d (seed %d): %w", tr.Index, seed, err)
	}
	tr.Until = seq.WideHorizon(c, tr.Wide)

	tr.Opts = core.Options{
		Engine:        engines[rng.Intn(len(engines))],
		LPs:           1 + rng.Intn(4),
		Partition:     diffMethods[rng.Intn(len(diffMethods))],
		PartitionSeed: rng.Int63n(1 << 30),
		System:        sys,
	}
	if tr.Opts.Engine == core.EngineHybrid {
		tr.Opts.IntraWorkers = 1 + rng.Intn(3)
	}
	fmt.Fprintf(spec, "; wide engine=%v lps=%d partition=%v system=%v",
		tr.Opts.Engine, tr.Opts.LPs, tr.Opts.Partition, tr.Opts.System)
	tr.Spec = spec.String()
	return tr, nil
}

// Check optimizes with the trial's pass list, runs the engine on the
// optimized netlist, and compares primary-output waveforms and final
// values — through the remap — against the unoptimized sequential
// reference. On a mismatch the pass list is ddmin-shrunk (reusing the
// chaos harness's ShrinkIndices) so the report names the smallest pass
// subset that still breaks equivalence.
func (tr *OptTrial) Check() error {
	failure := tr.probe(tr.Passes)
	if failure == "" {
		return nil
	}
	idx, detail := chaos.ShrinkIndices(len(tr.Passes), failure, func(idx []int) (bool, string) {
		sub := make([]string, 0, len(idx))
		for _, i := range idx {
			sub = append(sub, tr.Passes[i])
		}
		f := tr.probe(sub)
		return f != "", f
	}, 32)
	minimal := make([]string, 0, len(idx))
	for _, i := range idx {
		minimal = append(minimal, tr.Passes[i])
	}
	if detail == "" {
		detail = failure
	}
	return tr.fail("optimizer equivalence broken (minimal failing pass subset %v of %v):\n%s",
		minimal, tr.Passes, detail)
}

// probe runs one equivalence comparison under the given pass subset and
// returns "" on success or a divergence description. The subset is passed
// as a non-nil slice so an empty probe means "no passes" (the ddmin
// baseline), not opt's nil-means-default.
func (tr *OptTrial) probe(passes []string) string {
	if passes == nil {
		passes = []string{}
	}
	res, err := opt.Optimize(tr.C, opt.Options{Passes: passes})
	if err != nil {
		return fmt.Sprintf("Optimize(%v) failed: %v", passes, err)
	}
	if tr.Wide != nil {
		return tr.probeWide(res)
	}
	ref, err := core.Simulate(tr.C, tr.Stim, tr.Until, core.Options{
		Engine: core.EngineSeq, System: tr.Opts.System,
	})
	if err != nil {
		return fmt.Sprintf("sequential reference failed: %v", err)
	}
	ostim, err := res.Remap.Stimulus(tr.Stim)
	if err != nil {
		return fmt.Sprintf("stimulus remap failed: %v", err)
	}
	rep, err := core.Simulate(res.Circuit, ostim, tr.Until, tr.Opts)
	if err != nil {
		return fmt.Sprintf("engine run on optimized netlist failed: %v", err)
	}
	if d := trace.Diff(ref.Waveform, res.Remap.WaveformBack(rep.Waveform), 5); d != "" {
		return fmt.Sprintf("primary-output waveform mismatch vs unoptimized seq:\n%s", d)
	}
	for _, po := range tr.C.Outputs {
		np, ok := res.Remap.Gate(po)
		if !ok {
			return fmt.Sprintf("primary output %d eliminated by %v", po, passes)
		}
		if ref.Values[po] != rep.Values[np] {
			return fmt.Sprintf("final value mismatch at output %d (%q): unopt=%v opt=%v",
				po, tr.C.Gates[po].Name, ref.Values[po], rep.Values[np])
		}
	}
	return ""
}

// probeWide is probe's 64-lane variant: the wide engine runs the optimized
// netlist on the packed batch; each lane must match the scalar sequential
// reference of the unoptimized netlist under that lane's stimulus.
func (tr *OptTrial) probeWide(res *opt.Result) string {
	stims := make([]*vectors.Stimulus, len(tr.Stims))
	for i, s := range tr.Stims {
		os, err := res.Remap.Stimulus(s)
		if err != nil {
			return fmt.Sprintf("lane %d stimulus remap failed: %v", i, err)
		}
		stims[i] = os
	}
	ws, err := vectors.Pack(res.Circuit, stims, tr.Opts.System)
	if err != nil {
		return fmt.Sprintf("packing remapped lanes failed: %v", err)
	}
	wrep, err := core.SimulateWide(res.Circuit, ws, tr.Until, tr.Opts)
	if err != nil {
		return fmt.Sprintf("wide engine run on optimized netlist failed: %v", err)
	}
	sys := tr.Opts.System
	init := func(g circuit.GateID) logic.Value {
		return sys.Project(circuit.InitialValue(res.Circuit.Gates[g].Kind))
	}
	for k := 0; k < ws.Lanes; k++ {
		sres, err := seq.Run(tr.C, tr.Stims[k], tr.Until, seq.Config{System: sys})
		if err != nil {
			return fmt.Sprintf("lane %d scalar reference failed: %v", k, err)
		}
		lane := res.Remap.WaveformBack(wrep.Waveform.Lane(k, init))
		if d := trace.Diff(sres.Waveform, lane, 5); d != "" {
			return fmt.Sprintf("lane %d waveform vs unoptimized scalar seq:\n%s", k, d)
		}
		for _, po := range tr.C.Outputs {
			np, ok := res.Remap.Gate(po)
			if !ok {
				return fmt.Sprintf("primary output %d eliminated", po)
			}
			if g, w := wrep.Values[np].Get(k), sres.Values[po].ToX01Z(); g != w {
				return fmt.Sprintf("lane %d final value at output %d (%q): wide-opt=%v scalar-unopt=%v",
					k, po, tr.C.Gates[po].Name, g, w)
			}
		}
	}
	return ""
}

// fail wraps a mismatch with everything needed to reproduce the trial.
func (tr *OptTrial) fail(format string, argv ...any) error {
	return fmt.Errorf("optimizer trial %d (seed %d)\n  spec: %s\n  repro: differ.GenOptTrial(differ.OptDiffConfig{Seed: <master>}, %d) with trial seed %d\n  %s",
		tr.Index, tr.Seed, tr.Spec, tr.Index, tr.Seed, fmt.Sprintf(format, argv...))
}
