package differ

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/adapt"
	"repro/internal/sim/seq"
	"repro/internal/simtest/chaos"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// The adaptive-equivalence suite: adaptive runs — live controllers and
// forced decision scripts alike — must replay the sequential golden
// waveform bit for bit on every engine, for every fixture. When a
// scripted run diverges, the failing decision sequence is minimized
// with the ddmin core (chaos.ShrinkIndices), so the report names the
// smallest set of adaptation decisions that still breaks equivalence.

// adaptFixture is one circuit x stimulus workload of the suite.
type adaptFixture struct {
	name  string
	c     *circuit.Circuit
	stim  *vectors.Stimulus
	until circuit.Tick
}

func adaptFixtures(t *testing.T) []adaptFixture {
	t.Helper()
	var fxs []adaptFixture
	add := func(name string, c *circuit.Circuit, err error, mk func(*circuit.Circuit) (*vectors.Stimulus, error)) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		stim, err := mk(c)
		if err != nil {
			t.Fatalf("%s stimulus: %v", name, err)
		}
		fxs = append(fxs, adaptFixture{name, c, stim, seq.Horizon(c, stim)})
	}
	c, err := gen.RandomSeq(gen.RandomConfig{Gates: 200, Inputs: 8, Outputs: 6, Seed: 11, FFRatio: 0.15})
	add("randseq200", c, err, func(c *circuit.Circuit) (*vectors.Stimulus, error) {
		return vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 10, HalfPeriod: 50, Activity: 0.5, Seed: 11})
	})
	c, err = gen.Counter(6, gen.Unit)
	add("counter6", c, err, func(c *circuit.Circuit) (*vectors.Stimulus, error) {
		return vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 24, HalfPeriod: 30, Activity: 0.3, Seed: 7})
	})
	c, err = gen.RippleAdder(8, gen.Fine(4, 5))
	add("ripple8-fine", c, err, func(c *circuit.Circuit) (*vectors.Stimulus, error) {
		return vectors.Random(c, vectors.RandomConfig{Vectors: 12, Period: 60, Activity: 0.6, Seed: 5})
	})
	return fxs
}

// checkAdaptive runs the fixture adaptively and compares against the
// sequential reference; "" means equivalent.
func checkAdaptive(fx adaptFixture, eng core.Engine, spec *adapt.Spec) string {
	ref, err := core.Simulate(fx.c, fx.stim, fx.until, core.Options{
		Engine: core.EngineSeq, System: logic.TwoValued,
	})
	if err != nil {
		return fmt.Sprintf("sequential reference failed: %v", err)
	}
	rep, err := core.Simulate(fx.c, fx.stim, fx.until, core.Options{
		Engine: eng, LPs: 4, Partition: partition.MethodFM, System: logic.TwoValued,
		Adapt: spec,
	})
	if err != nil {
		return fmt.Sprintf("adaptive run failed: %v", err)
	}
	if d := trace.Diff(ref.Waveform, rep.Waveform, 5); d != "" {
		return fmt.Sprintf("waveform mismatch vs seq:\n%s", d)
	}
	for g := range ref.Values {
		if ref.Values[g] != rep.Values[g] {
			return fmt.Sprintf("final value mismatch at gate %d: seq=%v got=%v",
				g, ref.Values[g], rep.Values[g])
		}
	}
	if rep.EndTime != ref.EndTime {
		return fmt.Sprintf("EndTime %d, want %d", rep.EndTime, ref.EndTime)
	}
	return ""
}

// scriptSpec builds a scripted adaptive spec: boundary controllers off,
// the given forced decisions on, in-run window controller live.
func scriptSpec(every uint64, script []adapt.Decision) *adapt.Spec {
	return &adapt.Spec{
		Every: every, MaxProbes: len(script) + 2,
		NoSwitch: true, NoRebalance: true,
		Script: script,
	}
}

// adaptScripts are the forced decision sequences, per start engine:
// protocol migrations in both directions (including the hybrid and the
// demand-null conservative variant), a measured-weight rebalance, a
// window pin, and a commit.
var adaptScripts = map[core.Engine][]adapt.Decision{
	core.EngineCMB: {
		{Round: 0, Kind: adapt.KindSwitch, To: "timewarp"},
		{Round: 1, Kind: adapt.KindRebalance},
		{Round: 2, Kind: adapt.KindWindow, Window: 64},
		{Round: 3, Kind: adapt.KindSwitch, To: "cmb-demand"},
		{Round: 4, Kind: adapt.KindCommit},
	},
	core.EngineTimeWarp: {
		{Round: 0, Kind: adapt.KindRebalance},
		{Round: 1, Kind: adapt.KindSwitch, To: "cmb"},
		{Round: 2, Kind: adapt.KindSwitch, To: "hybrid"},
		{Round: 3, Kind: adapt.KindWindow, Window: 32},
	},
	core.EngineHybrid: {
		{Round: 0, Kind: adapt.KindWindow, Window: 48},
		{Round: 1, Kind: adapt.KindSwitch, To: "timewarp-lazy"},
		{Round: 2, Kind: adapt.KindRebalance},
	},
}

// TestAdaptEquivalenceScripted forces the decision sequences above and
// requires golden-waveform equivalence; a divergence is minimized with
// ddmin before failing.
func TestAdaptEquivalenceScripted(t *testing.T) {
	for _, fx := range adaptFixtures(t) {
		every := uint64(fx.until) / 8
		if every == 0 {
			every = 1
		}
		for eng, script := range adaptScripts {
			t.Run(fx.name+"/"+eng.String(), func(t *testing.T) {
				f := checkAdaptive(fx, eng, scriptSpec(every, script))
				if f == "" {
					return
				}
				// Minimize: which decisions are actually needed to break
				// equivalence? (Order and Round values are preserved, so a
				// subset is a sparser adaptation path of the same run.)
				sub := func(idx []int) []adapt.Decision {
					s := make([]adapt.Decision, 0, len(idx))
					for _, i := range idx {
						s = append(s, script[i])
					}
					return s
				}
				min, mf := chaos.ShrinkIndices(len(script), f, func(idx []int) (bool, string) {
					r := checkAdaptive(fx, eng, scriptSpec(every, sub(idx)))
					return r != "", r
				}, 24)
				t.Fatalf("adaptive run diverged from golden; minimal script (%d of %d decisions): %v\n%s",
					len(min), len(script), sub(min), mf)
			})
		}
	}
}

// TestAdaptEquivalenceLive runs every fixture on every parallel start
// engine with all three controllers live (real metrics close the loop)
// and requires golden-waveform equivalence regardless of what the
// controllers decided.
func TestAdaptEquivalenceLive(t *testing.T) {
	engines := []core.Engine{
		core.EngineCMB, core.EngineCMBDemand, core.EngineSync,
		core.EngineTimeWarp, core.EngineTimeWarpLazy, core.EngineHybrid,
	}
	for _, fx := range adaptFixtures(t) {
		every := uint64(fx.until) / 5
		if every == 0 {
			every = 1
		}
		for _, eng := range engines {
			t.Run(fx.name+"/"+eng.String(), func(t *testing.T) {
				if f := checkAdaptive(fx, eng, &adapt.Spec{Every: every}); f != "" {
					t.Fatal(f)
				}
			})
		}
	}
}
