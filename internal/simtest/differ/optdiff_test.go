package differ

import (
	"testing"

	"repro/internal/core"
	"repro/internal/opt"
)

// TestOptimizerEquivalence is the optimizer property suite: randomized
// netlists, pass subsets, engines (scalar and wide paths), partitions, and
// value systems — every trial's optimized primary-output waveform must be
// bit-identical to the unoptimized sequential reference.
func TestOptimizerEquivalence(t *testing.T) {
	trials := 48
	if testing.Short() {
		trials = 12
	}
	cfg := OptDiffConfig{Seed: 20260808}
	for i := 0; i < trials; i++ {
		tr, err := GenOptTrial(cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOptimizerEquivalencePerPass pins each exact pass individually on
// every engine family, so a regression names the pass directly instead of
// depending on the randomized subset sampler to hit it.
func TestOptimizerEquivalencePerPass(t *testing.T) {
	engines := []core.Engine{
		core.EngineSeq, core.EngineSync, core.EngineCMB,
		core.EngineTimeWarp, core.EngineHybrid,
	}
	if testing.Short() {
		engines = []core.Engine{core.EngineSeq, core.EngineCMB}
	}
	for _, pass := range opt.DefaultPasses {
		pass := pass
		t.Run(pass, func(t *testing.T) {
			for ei, engine := range engines {
				cfg := OptDiffConfig{Seed: 77, Engines: []core.Engine{engine}}
				tr, err := GenOptTrial(cfg, ei)
				if err != nil {
					t.Fatal(err)
				}
				tr.Passes = []string{pass}
				if err := tr.Check(); err != nil {
					t.Fatalf("engine %v: %v", engine, err)
				}
			}
		})
	}
}
