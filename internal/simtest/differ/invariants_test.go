package differ

import (
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/simtest"
)

// The metrics-invariant suite: conservation laws that must hold for every
// engine's counters regardless of schedule, partition, or protocol. These
// catch instrumentation drift (an engine forgetting to count one side of
// a message exchange) that waveform equality cannot see.

// invariantWorkloads returns a small corpus slice diverse enough to
// exercise messages, nulls, rollbacks, and barriers.
func invariantWorkloads(t *testing.T) []simtest.Corpus {
	t.Helper()
	corpus, err := simtest.StandardCorpus(61)
	if err != nil {
		t.Fatal(err)
	}
	// One combinational fine-delay, one hot DAG, one clocked sequential.
	picks := map[string]bool{"ripple8-fine": true, "dag300-unit": true, "seq250-unit": true}
	var out []simtest.Corpus
	for _, cs := range corpus {
		if picks[cs.Name] {
			out = append(out, cs)
		}
	}
	if len(out) != len(picks) {
		t.Fatalf("corpus picks missing: got %d of %d", len(out), len(picks))
	}
	return out
}

func TestMetricsInvariants(t *testing.T) {
	for _, cs := range invariantWorkloads(t) {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			t.Parallel()
			until := seq.Horizon(cs.C, cs.Stim)
			ref, err := core.Simulate(cs.C, cs.Stim, until, core.Options{
				Engine: core.EngineSeq, System: logic.TwoValued,
			})
			if err != nil {
				t.Fatal(err)
			}
			seqEvals := ref.SeqWork.Evaluations
			if seqEvals == 0 {
				t.Fatal("sequential reference did no work")
			}

			for _, eng := range core.Engines() {
				if eng == core.EngineSeq {
					continue
				}
				reg := metrics.NewRegistry(eng.String())
				rep, err := core.Simulate(cs.C, cs.Stim, until, core.Options{
					Engine: eng, LPs: 4, Partition: partition.MethodFM, PartitionSeed: 11,
					System: logic.TwoValued, Metrics: reg,
				})
				if err != nil {
					t.Fatalf("%v: %v", eng, err)
				}
				if rep.Metrics == nil {
					t.Fatalf("%v: Report.Metrics not populated", eng)
				}
				tot := rep.Metrics.Counters()

				// Conservation: every receive has a matching send. The
				// reverse is not exact everywhere — conservative runs
				// terminate with a few nulls still in flight, and lazy
				// cancellation counts a regenerated duplicate as sent while
				// suppressing its transmission — so those sides are
				// inequalities with tight slack.
				if eng == core.EngineTimeWarpLazy {
					if tot.MessagesSent < tot.MessagesRecv {
						t.Errorf("%v: messages recv %d exceed sent %d (%s)",
							eng, tot.MessagesRecv, tot.MessagesSent, rep.Metrics.Summary())
					}
				} else if tot.MessagesSent != tot.MessagesRecv {
					t.Errorf("%v: messages sent %d != recv %d (%s)",
						eng, tot.MessagesSent, tot.MessagesRecv, rep.Metrics.Summary())
				}
				// Nulls folded inside a send batch count as sent (the
				// protocol work happened) but never reach the wire, so the
				// transmitted count is sent − folded.
				if tot.NullsFolded > tot.NullsSent {
					t.Errorf("%v: nulls folded %d exceed sent %d", eng, tot.NullsFolded, tot.NullsSent)
				}
				transmitted := tot.NullsSent - tot.NullsFolded
				if tot.NullsRecv > transmitted {
					t.Errorf("%v: nulls recv %d exceed transmitted %d (sent %d, folded %d)",
						eng, tot.NullsRecv, transmitted, tot.NullsSent, tot.NullsFolded)
				}
				if undelivered := transmitted - tot.NullsRecv; undelivered > 4*4 {
					t.Errorf("%v: %d nulls undelivered at termination (transmitted %d, recv %d)",
						eng, undelivered, transmitted, tot.NullsRecv)
				}
				if tot.AntiMessagesSent != tot.AntiMessagesRecv {
					t.Errorf("%v: anti-messages sent %d != recv %d",
						eng, tot.AntiMessagesSent, tot.AntiMessagesRecv)
				}

				// Work accounting: conservative and synchronous engines do
				// exactly the sequential evaluation work; optimistic engines
				// may only add (rollback re-execution), never lose, work.
				switch eng {
				case core.EngineSync, core.EngineCMB, core.EngineCMBDemand, core.EngineCMBDetect:
					if tot.Evaluations != seqEvals {
						t.Errorf("%v: evaluations %d != sequential %d",
							eng, tot.Evaluations, seqEvals)
					}
				case core.EngineTimeWarp, core.EngineTimeWarpLazy, core.EngineHybrid:
					if tot.Evaluations < seqEvals {
						t.Errorf("%v: evaluations %d < sequential %d (lost work)",
							eng, tot.Evaluations, seqEvals)
					}
				case core.EngineOblivious:
					if tot.Evaluations == 0 {
						t.Errorf("%v: no evaluations recorded", eng)
					}
				}

				// Rollback accounting only exists on optimistic engines.
				switch eng {
				case core.EngineTimeWarp, core.EngineTimeWarpLazy, core.EngineHybrid:
					if tot.EventsRolledBack > 0 && tot.Rollbacks == 0 {
						t.Errorf("%v: %d events rolled back in zero episodes",
							eng, tot.EventsRolledBack)
					}
				default:
					if tot.Rollbacks != 0 || tot.AntiMessagesSent != 0 {
						t.Errorf("%v: non-optimistic engine reported rollbacks=%d antis=%d",
							eng, tot.Rollbacks, tot.AntiMessagesSent)
					}
				}

				// The synchronous engine advances all LPs in lockstep: every
				// LP executes the same number of timesteps, and each
				// timestep costs exactly two barriers (apply, evaluate).
				if eng == core.EngineSync {
					steps := rep.Metrics.LPs[0].Counters[metrics.Steps.String()]
					for _, lp := range rep.Metrics.LPs {
						if s := lp.Counters[metrics.Steps.String()]; s != steps {
							t.Errorf("sync: LP %d ran %d steps, LP 0 ran %d (lockstep broken)",
								lp.LP, s, steps)
						}
					}
					if b := rep.Metrics.Globals.Barriers; b != 2*steps {
						t.Errorf("sync: %d barriers for %d timesteps (want 2 per step)", b, steps)
					}
				}

				// The step-events histogram observes exactly the applied
				// events, so its sum must match the counter.
				if eng != core.EngineOblivious {
					h := reg.MergedHist(metrics.HistStepEvents)
					if h.Sum() != tot.EventsApplied {
						t.Errorf("%v: step-events histogram sum %d != events applied %d",
							eng, h.Sum(), tot.EventsApplied)
					}
				}

				// Report self-consistency: totals must equal the per-LP sums
				// of the same document.
				var lpSum uint64
				for _, lp := range rep.Metrics.LPs {
					lpSum += lp.Counters[metrics.Evaluations.String()]
				}
				if lpSum != tot.Evaluations {
					t.Errorf("%v: per-LP evaluations sum %d != total %d",
						eng, lpSum, tot.Evaluations)
				}
				if rep.Metrics.Schema != metrics.ReportSchema {
					t.Errorf("%v: schema %q", eng, rep.Metrics.Schema)
				}
				if rep.Metrics.Globals.WallNs <= 0 {
					t.Errorf("%v: wall time not stamped", eng)
				}
			}
		})
	}
}

// TestMetricsGlobals checks the run-level counters engines own: barrier
// counts for the synchronous engine, GVT rounds for the optimistic one.
func TestMetricsGlobals(t *testing.T) {
	corpus := invariantWorkloads(t)
	cs := corpus[1] // hot DAG
	until := seq.Horizon(cs.C, cs.Stim)

	reg := metrics.NewRegistry("sync")
	if _, err := core.Simulate(cs.C, cs.Stim, until, core.Options{
		Engine: core.EngineSync, LPs: 4, Partition: partition.MethodFM,
		System: logic.TwoValued, Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}
	if reg.Globals().Barriers == 0 {
		t.Error("sync: no barriers counted")
	}

	reg = metrics.NewRegistry("timewarp")
	if _, err := core.Simulate(cs.C, cs.Stim, until, core.Options{
		Engine: core.EngineTimeWarp, LPs: 4, Partition: partition.MethodFM,
		System: logic.TwoValued, Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}
	if reg.Globals().GVTRounds == 0 {
		t.Error("timewarp: no GVT rounds counted")
	}
}
