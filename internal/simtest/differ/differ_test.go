package differ

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestDifferentialCrossEngine runs the randomized cross-engine harness:
// every trial generates a fresh circuit, stimulus, engine, partition, and
// LP count, and checks the engine's waveform and final values against the
// sequential reference. Failures carry a self-contained repro.
func TestDifferentialCrossEngine(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 12
	}
	cfg := DiffConfig{Seed: 1995}
	for i := 0; i < trials; i++ {
		tr, err := GenTrial(cfg, i)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		t.Run(fmt.Sprintf("trial-%02d-%s-%s", i, tr.Opts.Engine, tr.Opts.Partition), func(t *testing.T) {
			t.Parallel()
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDifferentialPerEngineCoverage pins one deterministic trial batch per
// engine, so a regression in a single engine is reported by name even if
// the randomized mix above happens to under-sample it.
func TestDifferentialPerEngineCoverage(t *testing.T) {
	per := 6
	if testing.Short() {
		per = 2
	}
	for _, eng := range DiffEngines {
		eng := eng
		t.Run(eng.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DiffConfig{Seed: 7 + int64(eng), Engines: []core.Engine{eng}}
			for i := 0; i < per; i++ {
				tr, err := GenTrial(cfg, i)
				if err != nil {
					t.Fatalf("trial %d: %v", i, err)
				}
				if err := tr.Check(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestGenTrialDeterministic guards the repro contract: the same (seed,
// index) must regenerate the identical trial.
func TestGenTrialDeterministic(t *testing.T) {
	cfg := DiffConfig{Seed: 42}
	a, err := GenTrial(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenTrial(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec != b.Spec || a.Seed != b.Seed {
		t.Fatalf("trial not deterministic:\n%s\n%s", a.Spec, b.Spec)
	}
	if fmt.Sprintf("%+v", a.Opts) != fmt.Sprintf("%+v", b.Opts) {
		t.Fatalf("options not deterministic: %+v vs %+v", a.Opts, b.Opts)
	}
	if len(a.Stim.Changes) != len(b.Stim.Changes) {
		t.Fatalf("stimulus not deterministic: %d vs %d changes", len(a.Stim.Changes), len(b.Stim.Changes))
	}
}
