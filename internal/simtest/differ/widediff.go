package differ

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim/seq"
	"repro/internal/sim/timewarp"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// WideDiffConfig seeds the randomized wide/scalar lockstep harness.
type WideDiffConfig struct {
	// Seed is the master seed; every trial derives its own seed from it.
	Seed int64
	// MaxGates bounds generated circuit size (default 300).
	MaxGates int
	// Engines limits the engines exercised; nil means every wide engine
	// with event semantics (sync, cmb variants, timewarp variants, hybrid).
	Engines []core.Engine
}

// WideDiffEngines is the default wide engine set: every parallel
// event-driven engine's wide path, each of which must reproduce — lane by
// lane — the scalar sequential reference waveform of that lane's stimulus.
var WideDiffEngines = []core.Engine{
	core.EngineSync,
	core.EngineCMB, core.EngineCMBDemand, core.EngineCMBDetect,
	core.EngineTimeWarp, core.EngineTimeWarpLazy,
	core.EngineHybrid,
}

// WideTrial is one fully-specified wide lockstep check: a circuit, a batch
// of per-lane scalar stimuli with their packed wide form, and a wide
// engine configuration. All fields derive deterministically from
// (WideDiffConfig.Seed, Index).
type WideTrial struct {
	Index int
	Seed  int64
	Spec  string
	C     *circuit.Circuit
	// Stims holds the independent per-lane scalar stimuli; Wide is their
	// packed 64-lane form.
	Stims []*vectors.Stimulus
	Wide  *vectors.WideStimulus
	Until circuit.Tick
	Opts  core.Options
}

// GenWideTrial deterministically derives wide trial i from the config.
func GenWideTrial(cfg WideDiffConfig, i int) (*WideTrial, error) {
	if cfg.MaxGates <= 0 {
		cfg.MaxGates = 300
	}
	engines := cfg.Engines
	if engines == nil {
		engines = WideDiffEngines
	}
	seed := cfg.Seed*2_000_029 + int64(i)
	rng := rand.New(rand.NewSource(seed))
	tr := &WideTrial{Index: i, Seed: seed}

	sys := logic.TwoValued
	if rng.Intn(2) == 0 {
		sys = logic.FourValued
	}
	// Lane counts sample the edges and the middle: a single lane (wide
	// machinery, scalar workload), a partial word, and the full word.
	lanes := []int{1, 2 + rng.Intn(62), logic.Lanes}[rng.Intn(3)]

	delays := gen.Unit
	delayName := "unit"
	if rng.Intn(2) == 0 {
		max := circuit.Tick(2 + rng.Intn(6))
		delays = gen.Fine(max, seed)
		delayName = fmt.Sprintf("fine(%d,%d)", max, seed)
	}

	var spec strings.Builder
	var (
		c    *circuit.Circuit
		err  error
		seqC bool
	)
	switch rng.Intn(4) {
	case 0:
		bits := 4 + rng.Intn(6)
		fmt.Fprintf(&spec, "ripple%d delays=%s", bits, delayName)
		c, err = gen.RippleAdder(bits, delays)
	case 1:
		gates := 40 + rng.Intn(cfg.MaxGates-40)
		loc := rng.Float64()
		fmt.Fprintf(&spec, "dag{gates=%d,in=10,out=8,seed=%d,loc=%.2f} delays=%s", gates, seed, loc, delayName)
		c, err = gen.RandomDAG(gen.RandomConfig{
			Gates: gates, Inputs: 10, Outputs: 8, Seed: seed, Locality: loc, Delays: delays,
		})
	case 2:
		gates := 40 + rng.Intn(cfg.MaxGates-40)
		ff := 0.05 + 0.2*rng.Float64()
		fmt.Fprintf(&spec, "seq{gates=%d,in=8,out=6,seed=%d,ff=%.2f} delays=%s", gates, seed, ff, delayName)
		c, err = gen.RandomSeq(gen.RandomConfig{
			Gates: gates, Inputs: 8, Outputs: 6, Seed: seed, FFRatio: ff, Delays: delays,
		})
		seqC = true
	default:
		bits := 3 + rng.Intn(5)
		fmt.Fprintf(&spec, "counter%d delays=%s", bits, delayName)
		c, err = gen.Counter(bits, delays)
		seqC = true
	}
	if err != nil {
		return nil, fmt.Errorf("differ: wide trial %d (seed %d): %w", i, seed, err)
	}
	tr.C = c

	if seqC {
		cycles := 5 + rng.Intn(8)
		half := 15 + rng.Intn(20)
		act := 0.2 + 0.8*rng.Float64()
		fmt.Fprintf(&spec, "; clockedbatch{lanes=%d,cycles=%d,half=%d,act=%.2f,seed=%d}", lanes, cycles, half, act, seed)
		tr.Wide, tr.Stims, err = vectors.ClockedBatch(c, vectors.ClockedConfig{
			Clock: "clk", Cycles: cycles, HalfPeriod: circuit.Tick(half), Activity: act, Seed: seed,
		}, lanes, sys)
	} else {
		vecs := 4 + rng.Intn(10)
		period := 20 + rng.Intn(40)
		act := 0.1 + 0.9*rng.Float64()
		fmt.Fprintf(&spec, "; randombatch{lanes=%d,vecs=%d,period=%d,act=%.2f,seed=%d}", lanes, vecs, period, act, seed)
		tr.Wide, tr.Stims, err = vectors.RandomBatch(c, vectors.RandomConfig{
			Vectors: vecs, Period: circuit.Tick(period), Activity: act, Seed: seed,
		}, lanes, sys)
	}
	if err != nil {
		return nil, fmt.Errorf("differ: wide trial %d (seed %d): %w", i, seed, err)
	}
	tr.Until = seq.WideHorizon(c, tr.Wide)

	opts := core.Options{
		Engine:        engines[rng.Intn(len(engines))],
		LPs:           1 + rng.Intn(6),
		Partition:     diffMethods[rng.Intn(len(diffMethods))],
		PartitionSeed: rng.Int63n(1 << 30),
		System:        sys,
	}
	switch opts.Engine {
	case core.EngineTimeWarp, core.EngineTimeWarpLazy:
		if rng.Intn(2) == 0 {
			opts.StateSaving = timewarp.FullCopy
		}
		if rng.Intn(3) == 0 {
			opts.Window = circuit.Tick(20 + rng.Intn(200))
		}
	case core.EngineHybrid:
		opts.IntraWorkers = 1 + rng.Intn(3)
	}
	fmt.Fprintf(&spec, "; engine=%v lps=%d partition=%v/seed=%d system=%v",
		opts.Engine, opts.LPs, opts.Partition, opts.PartitionSeed, opts.System)
	tr.Opts = opts
	tr.Spec = spec.String()
	return tr, nil
}

// Check runs the wide engine once and the scalar sequential reference once
// per lane, then compares every lane's extracted waveform and final output
// values. On a mismatch the failing lane set is shrunk — the wide engine is
// re-run on repacked lane subsets — so the reported repro carries the
// smallest lane batch that still diverges.
func (tr *WideTrial) Check() error {
	badLane, detail, err := tr.checkOnce(tr.Wide, tr.Stims)
	if err != nil {
		return tr.fail("%v", err)
	}
	if badLane < 0 {
		return nil
	}
	lanes, shrunkDetail := tr.shrinkLanes(badLane)
	if shrunkDetail != "" {
		detail = shrunkDetail
	}
	return tr.fail("lane lockstep mismatch (minimal failing lane set %v of %d lanes):\n%s",
		lanes, tr.Wide.Lanes, detail)
}

// checkOnce runs one wide-vs-scalar comparison. It returns the first
// mismatching lane index (-1 if all lanes agree) and a description of the
// divergence, or an error if a run itself failed.
func (tr *WideTrial) checkOnce(ws *vectors.WideStimulus, stims []*vectors.Stimulus) (int, string, error) {
	wrep, err := core.SimulateWide(tr.C, ws, tr.Until, tr.Opts)
	if err != nil {
		return -1, "", fmt.Errorf("wide engine run failed: %w", err)
	}
	sys := tr.Opts.System
	init := func(g circuit.GateID) logic.Value {
		return sys.Project(circuit.InitialValue(tr.C.Gates[g].Kind))
	}
	for k := 0; k < ws.Lanes; k++ {
		sres, err := seq.Run(tr.C, stims[k], tr.Until, seq.Config{System: sys})
		if err != nil {
			return -1, "", fmt.Errorf("lane %d scalar reference failed: %w", k, err)
		}
		if d := trace.Diff(sres.Waveform, wrep.Waveform.Lane(k, init), 5); d != "" {
			return k, fmt.Sprintf("lane %d waveform vs scalar seq:\n%s", k, d), nil
		}
		for _, out := range tr.C.Outputs {
			if g, w := wrep.Values[out].Get(k), sres.Values[out].ToX01Z(); g != w {
				return k, fmt.Sprintf("lane %d final value at gate %d (%q): wide=%v scalar=%v",
					k, out, tr.C.Gates[out].Name, g, w), nil
			}
		}
	}
	return -1, "", nil
}

// shrinkLanes minimizes the failing lane set: first the single known-bad
// lane alone, then binary halving of the full set. Every probe repacks the
// chosen scalar stimuli and re-runs the wide engine, so the result is a
// genuine standalone repro. Returns the lane indices (into the original
// batch) of the smallest failing subset found and its divergence detail.
func (tr *WideTrial) shrinkLanes(firstBad int) ([]int, string) {
	probe := func(laneIdx []int) string {
		sub := make([]*vectors.Stimulus, len(laneIdx))
		for i, k := range laneIdx {
			sub[i] = tr.Stims[k]
		}
		ws, err := vectors.Pack(tr.C, sub, tr.Opts.System)
		if err != nil {
			return ""
		}
		bad, detail, err := tr.checkOnce(ws, sub)
		if err != nil || bad < 0 {
			return ""
		}
		return detail
	}
	// The known-bad lane alone is the smallest candidate; it usually holds.
	if d := probe([]int{firstBad}); d != "" {
		return []int{firstBad}, d
	}
	// The failure needs lane interaction (it should not — lanes are
	// independent by construction — which is itself diagnostic). Halve the
	// set a few times to bound the repro.
	cur := make([]int, tr.Wide.Lanes)
	for i := range cur {
		cur[i] = i
	}
	detail := ""
	for len(cur) > 1 {
		half := len(cur) / 2
		if d := probe(cur[:half]); d != "" {
			cur, detail = cur[:half], d
			continue
		}
		if d := probe(cur[half:]); d != "" {
			cur, detail = cur[half:], d
			continue
		}
		break
	}
	return cur, detail
}

// fail wraps a mismatch with everything needed to reproduce the trial.
func (tr *WideTrial) fail(format string, argv ...any) error {
	return fmt.Errorf("wide lockstep trial %d (seed %d)\n  spec: %s\n  repro: differ.GenWideTrial(differ.WideDiffConfig{Seed: <master>}, %d) with trial seed %d\n  %s",
		tr.Index, tr.Seed, tr.Spec, tr.Index, tr.Seed, fmt.Sprintf(format, argv...))
}
