// Package golden pins the exact committed waveforms of three small named
// circuits as on-disk fixtures, and requires every engine to reproduce
// them bit-exactly. Unlike the randomized differential harness (package
// differ), these fixtures are stable across runs and committed to the
// repository, so a regression in any engine — or in shared hot-path code
// like event pooling and message batching — fails against a known-good
// history rather than against a concurrently-computed reference.
//
// Regenerate with: go test ./internal/simtest/golden/ -run Golden -update
// (only legitimate semantic changes should ever require it).
package golden

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/bitpar"
	"repro/internal/sim/seq"
	"repro/internal/trace"
	"repro/internal/vectors"
)

var update = flag.Bool("update", false, "rewrite the golden waveform fixtures")

// fixture is one named circuit+stimulus workload. cycleTimes lists the
// timestamps at which cycle-based engines (oblivious, bitpar) are compared:
// the committed values of the watched nets at each listed time must match
// the golden "cyc" rows. laneInputTime maps each cycle index to the time
// whose input assignment feeds that bitpar lane/cycle.
type fixture struct {
	name  string
	build func() (*circuit.Circuit, *vectors.Stimulus, error)
	// seqCirc marks sequential fixtures: bitpar replays them cycle-based
	// (one Cycle per clock), combinational ones lane-per-vector.
	seqCirc bool
	// cycles is the clock-cycle count (sequential) or vector count
	// (combinational); period is the boundary spacing in ticks.
	cycles int
	period circuit.Tick
}

var fixtures = []fixture{
	{
		name: "rippleadder",
		build: func() (*circuit.Circuit, *vectors.Stimulus, error) {
			c, err := gen.RippleAdder(4, gen.Unit)
			if err != nil {
				return nil, nil, err
			}
			stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 8, Period: 20, Activity: 0.5, Seed: 3})
			return c, stim, err
		},
		seqCirc: false,
		cycles:  9, // t=0 assignment plus 8 vectors
		period:  20,
	},
	{
		name: "lfsr",
		build: func() (*circuit.Circuit, *vectors.Stimulus, error) {
			c, err := gen.LFSR(5, nil, gen.Unit)
			if err != nil {
				return nil, nil, err
			}
			stim, err := vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 8, HalfPeriod: 10, Activity: 0.3, Seed: 4})
			return c, stim, err
		},
		seqCirc: true,
		cycles:  8,
		period:  20,
	},
	{
		name: "counter",
		build: func() (*circuit.Circuit, *vectors.Stimulus, error) {
			c, err := gen.Counter(4, gen.Unit)
			if err != nil {
				return nil, nil, err
			}
			stim, err := vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 10, HalfPeriod: 10, Activity: 0.4, Seed: 5})
			return c, stim, err
		},
		seqCirc: true,
		cycles:  10,
		period:  20,
	},
}

// golden is the parsed fixture file.
type golden struct {
	end     circuit.Tick
	init    map[string]logic.Value // committed values after the t=0 settle
	samples []trace.Sample         // gate identified via name index below
	names   []string               // sample gate names, parallel to samples
	finals  map[string]logic.Value
	cyc     map[int]map[string]logic.Value // cycle -> watched name -> value
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden")
}

// cycleSampleTime is the timestamp at which cycle k's settled values are
// read: one tick before the next boundary, so zero-delay (cycle-based)
// engines — which apply a boundary's inputs at the boundary instant —
// and delayed event-driven engines agree on which vector is in force.
func (f *fixture) cycleSampleTime(k int) circuit.Tick {
	return circuit.Tick(k+1)*f.period - 1
}

// laneInputTime is the timestamp whose input assignment drives bitpar for
// cycle/vector k: the rising edge for sequential circuits (what the FFs
// sample), the boundary itself for combinational ones.
func (f *fixture) laneInputTime(k int) circuit.Tick {
	if f.seqCirc {
		return circuit.Tick(k)*f.period + f.period/2
	}
	return circuit.Tick(k) * f.period
}

// inputsAt replays the stimulus to the input assignment in force at t.
func inputsAt(c *circuit.Circuit, stim *vectors.Stimulus, t circuit.Tick) map[circuit.GateID]logic.Value {
	vals := map[circuit.GateID]logic.Value{}
	for _, ch := range stim.Changes {
		if ch.Time > t {
			break // changes are sorted by time
		}
		vals[ch.Input] = ch.Value
	}
	return vals
}

func writeGolden(t *testing.T, f *fixture, c *circuit.Circuit, g *golden) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "# golden waveform fixture %q -- regenerate with -update\n", f.name)
	fmt.Fprintf(&sb, "end %d\n", g.end)
	for _, name := range sortedKeys(g.init) {
		fmt.Fprintf(&sb, "init %s %d\n", name, g.init[name])
	}
	for i, s := range g.samples {
		fmt.Fprintf(&sb, "s %d %s %d\n", s.Time, g.names[i], s.Value)
	}
	for _, name := range sortedKeys(g.finals) {
		fmt.Fprintf(&sb, "final %s %d\n", name, g.finals[name])
	}
	for k := 0; k < f.cycles; k++ {
		for _, name := range sortedKeys(g.cyc[k]) {
			fmt.Fprintf(&sb, "cyc %d %s %d\n", k, name, g.cyc[k][name])
		}
	}
	if err := os.WriteFile(goldenPath(f.name), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func sortedKeys(m map[string]logic.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; maps are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func readGolden(t *testing.T, name string, c *circuit.Circuit) *golden {
	t.Helper()
	fh, err := os.Open(goldenPath(name))
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	defer fh.Close()
	g := &golden{
		init:   map[string]logic.Value{},
		finals: map[string]logic.Value{},
		cyc:    map[int]map[string]logic.Value{},
	}
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		atoi := func(s string) uint64 {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				t.Fatalf("golden %s: bad number %q: %v", name, s, err)
			}
			return v
		}
		switch fields[0] {
		case "end":
			g.end = circuit.Tick(atoi(fields[1]))
		case "init":
			g.init[fields[1]] = logic.Value(atoi(fields[2]))
		case "s":
			id, ok := c.ByName(fields[2])
			if !ok {
				t.Fatalf("golden %s: unknown gate %q", name, fields[2])
			}
			g.samples = append(g.samples, trace.Sample{
				Time: circuit.Tick(atoi(fields[1])), Gate: id, Value: logic.Value(atoi(fields[3]))})
			g.names = append(g.names, fields[2])
		case "final":
			g.finals[fields[1]] = logic.Value(atoi(fields[2]))
		case "cyc":
			k := int(atoi(fields[1]))
			if g.cyc[k] == nil {
				g.cyc[k] = map[string]logic.Value{}
			}
			g.cyc[k][fields[2]] = logic.Value(atoi(fields[3]))
		default:
			t.Fatalf("golden %s: unknown row %q", name, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return g
}

// runEngine executes one engine on the fixture workload with the shared
// deterministic configuration.
func runEngine(t *testing.T, e core.Engine, c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick) *core.Report {
	t.Helper()
	rep, err := core.Simulate(c, stim, until, core.Options{
		Engine:        e,
		LPs:           4,
		Partition:     partition.MethodFM,
		PartitionSeed: 11,
		System:        logic.TwoValued,
	})
	if err != nil {
		t.Fatalf("%v: %v", e, err)
	}
	return rep
}

// buildGolden derives the full golden record from a sequential run.
func buildGolden(t *testing.T, f *fixture, c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick) *golden {
	t.Helper()
	g := &golden{
		end:    until,
		init:   map[string]logic.Value{},
		finals: map[string]logic.Value{},
		cyc:    map[int]map[string]logic.Value{},
	}
	// Committed values right after the t=0 settling step, the baseline for
	// reconstructing watched values at any later time from the samples.
	rep0 := runEngine(t, core.EngineSeq, c, stim, 0)
	for _, out := range c.Outputs {
		g.init[c.Gate(out).Name] = rep0.Values[out]
	}
	rep := runEngine(t, core.EngineSeq, c, stim, until)
	for _, s := range rep.Waveform {
		g.samples = append(g.samples, s)
		g.names = append(g.names, c.Gate(s.Gate).Name)
	}
	for _, out := range c.Outputs {
		g.finals[c.Gate(out).Name] = rep.Values[out]
	}
	for k := 0; k < f.cycles; k++ {
		row := map[string]logic.Value{}
		ts := f.cycleSampleTime(k)
		for _, out := range c.Outputs {
			name := c.Gate(out).Name
			row[name] = rep.Waveform.ValueAt(out, ts, g.init[name])
		}
		g.cyc[k] = row
	}
	return g
}

func compareWaveform(t *testing.T, label string, g *golden, c *circuit.Circuit, rep *core.Report) {
	t.Helper()
	want := make(trace.Waveform, len(g.samples))
	copy(want, g.samples)
	if d := trace.Diff(want, rep.Waveform, 8); d != "" {
		t.Errorf("%s: waveform differs from golden:\n%s", label, d)
	}
	for _, out := range c.Outputs {
		name := c.Gate(out).Name
		if got := rep.Values[out]; got != g.finals[name] {
			t.Errorf("%s: final %s = %v, golden %v", label, name, got, g.finals[name])
		}
	}
}

// eventEngines is every engine that must reproduce the committed waveform
// sample-for-sample.
var eventEngines = []core.Engine{
	core.EngineSeq, core.EngineSync,
	core.EngineCMB, core.EngineCMBDemand, core.EngineCMBDetect,
	core.EngineTimeWarp, core.EngineTimeWarpLazy,
	core.EngineHybrid,
}

func TestGoldenWaveforms(t *testing.T) {
	for fi := range fixtures {
		f := &fixtures[fi]
		t.Run(f.name, func(t *testing.T) {
			c, stim, err := f.build()
			if err != nil {
				t.Fatal(err)
			}
			until := seq.Horizon(c, stim)
			if *update {
				writeGolden(t, f, c, buildGolden(t, f, c, stim, until))
				t.Logf("rewrote %s", goldenPath(f.name))
				return
			}
			g := readGolden(t, f.name, c)
			if g.end != until {
				t.Fatalf("golden horizon %d != computed %d (stale fixture?)", g.end, until)
			}
			for _, e := range eventEngines {
				e := e
				t.Run(e.String(), func(t *testing.T) {
					compareWaveform(t, e.String(), g, c, runEngine(t, e, c, stim, until))
				})
			}
			t.Run("oblivious", func(t *testing.T) {
				rep := runEngine(t, core.EngineOblivious, c, stim, until)
				// Cycle-based: settled values per boundary, no transient
				// waveform. Every boundary and the final state must agree.
				for _, out := range c.Outputs {
					name := c.Gate(out).Name
					if got := rep.Values[out]; got != g.finals[name] {
						t.Errorf("final %s = %v, golden %v", name, got, g.finals[name])
					}
					for k := 0; k < f.cycles; k++ {
						got := rep.Waveform.ValueAt(out, f.cycleSampleTime(k), g.init[name])
						if want := g.cyc[k][name]; got != want {
							t.Errorf("cycle %d %s = %v, golden %v", k, name, got, want)
						}
					}
				}
			})
			t.Run("bitpar", func(t *testing.T) {
				checkBitpar(t, f, c, stim, g)
			})
		})
	}
}

// checkBitpar replays the fixture on the bit-parallel engine and compares
// each cycle's settled watched values against the golden cyc rows.
// Combinational fixtures map one stimulus vector per bit lane and settle
// once; sequential ones replay lane 0 cycle by cycle (SetInput, Settle,
// Cycle), the engine's native implicit-clock convention.
func checkBitpar(t *testing.T, f *fixture, c *circuit.Circuit, stim *vectors.Stimulus, g *golden) {
	t.Helper()
	s, err := bitpar.New(c)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if !f.seqCirc {
		for _, in := range c.Inputs {
			var word uint64
			for k := 0; k < f.cycles; k++ {
				if v, ok := inputsAt(c, stim, f.laneInputTime(k))[in].Bool(); ok && v {
					word |= 1 << k
				}
			}
			s.SetInput(in, word)
		}
		s.Settle()
		for k := 0; k < f.cycles; k++ {
			for _, out := range c.Outputs {
				name := c.Gate(out).Name
				got := logic.FromBool(s.Get(out)&(1<<k) != 0)
				if want := g.cyc[k][name]; got != want {
					t.Errorf("lane %d %s = %v, golden %v", k, name, got, want)
				}
			}
		}
		return
	}
	clk, _ := c.ByName("clk")
	for k := 0; k < f.cycles; k++ {
		at := inputsAt(c, stim, f.laneInputTime(k))
		for _, in := range c.Inputs {
			if in == clk {
				continue
			}
			var word uint64
			if v, ok := at[in].Bool(); ok && v {
				word = 1
			}
			s.SetInput(in, word)
		}
		s.Settle()
		s.Cycle()
		for _, out := range c.Outputs {
			name := c.Gate(out).Name
			got := logic.FromBool(s.Get(out)&1 != 0)
			if want := g.cyc[k][name]; got != want {
				t.Errorf("cycle %d %s = %v, golden %v", k, name, got, want)
			}
		}
	}
}
