package golden

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/opt"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// optStatsPath pins the exact optimizer statistics per fixture: gate
// counts, per-pass rewrite counts, and levelized depth. A change here
// means the optimizer's behavior on a known netlist changed — regenerate
// with -update only for intentional pass changes.
func optStatsPath() string {
	return filepath.Join("testdata", "optstats.json")
}

func readOptStats(t *testing.T) map[string]opt.Stats {
	t.Helper()
	raw, err := os.ReadFile(optStatsPath())
	if err != nil {
		t.Fatalf("missing optimizer stats fixture (run with -update to create): %v", err)
	}
	var m map[string]opt.Stats
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("parsing %s: %v", optStatsPath(), err)
	}
	return m
}

// TestGoldenOptimized replays every golden fixture through the optimized
// path: the circuit is optimized with the default (exact) pipeline, each
// event-driven engine runs the optimized netlist under the remapped
// stimulus, and the waveform — mapped back to original gate IDs — must
// match the committed golden samples bit-for-bit. The optimizer's exact
// per-fixture statistics are pinned alongside.
func TestGoldenOptimized(t *testing.T) {
	gotStats := map[string]opt.Stats{}
	for fi := range fixtures {
		f := &fixtures[fi]
		t.Run(f.name, func(t *testing.T) {
			c, stim, err := f.build()
			if err != nil {
				t.Fatal(err)
			}
			until := seq.Horizon(c, stim)
			res, err := opt.Optimize(c, opt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			gotStats[f.name] = res.Stats
			if res.Stats.GatesAfter > res.Stats.GatesBefore {
				t.Fatalf("optimizer grew the netlist: %+v", res.Stats)
			}
			if *update {
				return // stats written below; waveform goldens are unchanged
			}
			g := readGolden(t, f.name, c)
			ostim, err := res.Remap.Stimulus(stim)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range eventEngines {
				e := e
				t.Run(e.String(), func(t *testing.T) {
					rep := runOptEngine(t, e, res.Circuit, ostim, until)
					compareOptimized(t, e.String(), g, c, res, rep)
				})
			}
		})
	}

	if *update {
		raw, err := json.MarshalIndent(gotStats, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(optStatsPath(), append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", optStatsPath())
		return
	}
	want := readOptStats(t)
	for name, ws := range want {
		if gs, ok := gotStats[name]; !ok || !reflect.DeepEqual(gs, ws) {
			t.Errorf("fixture %s optimizer stats drifted:\n  got  %+v\n  want %+v", name, gotStats[name], ws)
		}
	}
	for name := range gotStats {
		if _, ok := want[name]; !ok {
			t.Errorf("fixture %s has no pinned optimizer stats (run -update)", name)
		}
	}
}

func runOptEngine(t *testing.T, e core.Engine, c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick) *core.Report {
	t.Helper()
	rep, err := core.Simulate(c, stim, until, core.Options{
		Engine:        e,
		LPs:           4,
		Partition:     partition.MethodFM,
		PartitionSeed: 11,
		System:        logic.TwoValued,
	})
	if err != nil {
		t.Fatalf("%v: %v", e, err)
	}
	return rep
}

// compareOptimized is compareWaveform through the remap: samples map back
// to original gate IDs, finals compare at the remapped primary outputs.
func compareOptimized(t *testing.T, label string, g *golden, c *circuit.Circuit, res *opt.Result, rep *core.Report) {
	t.Helper()
	want := make(trace.Waveform, len(g.samples))
	copy(want, g.samples)
	if d := trace.Diff(want, res.Remap.WaveformBack(rep.Waveform), 8); d != "" {
		t.Errorf("%s: optimized waveform differs from golden:\n%s", label, d)
	}
	for _, out := range c.Outputs {
		name := c.Gate(out).Name
		np, ok := res.Remap.Gate(out)
		if !ok {
			t.Fatalf("%s: output %s eliminated", label, name)
		}
		if got := rep.Values[np]; got != g.finals[name] {
			t.Errorf("%s: final %s = %v, golden %v", label, name, got, g.finals[name])
		}
	}
}
