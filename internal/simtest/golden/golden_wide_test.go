package golden

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// wideEventEngines is every wide engine that must reproduce the committed
// waveform sample-for-sample in every lane.
var wideEventEngines = []core.Engine{
	core.EngineSeq, core.EngineSync,
	core.EngineCMB, core.EngineCMBDemand, core.EngineCMBDetect,
	core.EngineTimeWarp, core.EngineTimeWarpLazy,
	core.EngineHybrid,
}

// goldenLanes are the lanes checked against the fixture: both word edges
// and an interior lane. The stimulus is splatted, so all 64 lanes carry
// the fixture workload; checking three keeps the suite fast while still
// catching lane-indexing bugs at both ends of the word.
var goldenLanes = []int{0, 31, logic.Lanes - 1}

// TestGoldenWaveformsWide replays each golden fixture on the wide (64-lane)
// path of every engine: the scalar fixture stimulus is packed into all 64
// lanes, and each checked lane of the wide run must reproduce the committed
// golden waveform bit-exactly. The same -update flag regenerates the
// underlying fixtures (via TestGoldenWaveforms); this test is skipped
// during an update run since the fixtures are being rewritten.
func TestGoldenWaveformsWide(t *testing.T) {
	if *update {
		t.Skip("fixtures are being rewritten; wide replay uses the committed files")
	}
	for fi := range fixtures {
		f := &fixtures[fi]
		t.Run(f.name, func(t *testing.T) {
			c, stim, err := f.build()
			if err != nil {
				t.Fatal(err)
			}
			until := seq.Horizon(c, stim)
			g := readGolden(t, f.name, c)
			if g.end != until {
				t.Fatalf("golden horizon %d != computed %d (stale fixture?)", g.end, until)
			}
			ws, err := vectors.Splat(c, stim, logic.Lanes, logic.TwoValued)
			if err != nil {
				t.Fatal(err)
			}
			init := func(gid circuit.GateID) logic.Value {
				return logic.TwoValued.Project(circuit.InitialValue(c.Gates[gid].Kind))
			}
			for _, e := range wideEventEngines {
				e := e
				t.Run(e.String(), func(t *testing.T) {
					rep, err := core.SimulateWide(c, ws, until, core.Options{
						Engine:        e,
						LPs:           4,
						Partition:     partition.MethodFM,
						PartitionSeed: 11,
						System:        logic.TwoValued,
					})
					if err != nil {
						t.Fatalf("%v: %v", e, err)
					}
					want := make(trace.Waveform, len(g.samples))
					copy(want, g.samples)
					for _, k := range goldenLanes {
						if d := trace.Diff(want, rep.Waveform.Lane(k, init), 8); d != "" {
							t.Errorf("lane %d: waveform differs from golden:\n%s", k, d)
						}
						for _, out := range c.Outputs {
							name := c.Gate(out).Name
							if got, w := rep.Values[out].Get(k), g.finals[name].ToX01Z(); got != w {
								t.Errorf("lane %d: final %s = %v, golden %v", k, name, got, w)
							}
						}
					}
				})
			}
			t.Run("oblivious", func(t *testing.T) {
				rep, err := core.SimulateWide(c, ws, until, core.Options{
					Engine: core.EngineOblivious, LPs: 4, System: logic.TwoValued,
				})
				if err != nil {
					t.Fatal(err)
				}
				// Cycle-based: settled values per boundary in every checked
				// lane must match the golden cyc rows.
				for _, out := range c.Outputs {
					name := c.Gate(out).Name
					for _, k := range goldenLanes {
						if got, w := rep.Values[out].Get(k), g.finals[name].ToX01Z(); got != w {
							t.Errorf("lane %d final %s = %v, golden %v", k, name, got, w)
						}
						for cyc := 0; cyc < f.cycles; cyc++ {
							got := rep.Waveform.ValueAt(out, k, f.cycleSampleTime(cyc), g.init[name])
							if want := g.cyc[cyc][name]; got != want {
								t.Errorf("lane %d cycle %d %s = %v, golden %v", k, cyc, name, got, want)
							}
						}
					}
				}
			})
		})
	}
}
