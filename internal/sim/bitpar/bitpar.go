// Package bitpar implements bit-parallel (word-level) compiled simulation:
// 64 input patterns evaluated simultaneously by mapping each gate to one
// machine word and each pattern to one bit position.
//
// This is the word-level instantiation of the paper's data parallelism
// ("different processors [here: bit lanes] simulate the circuit for
// distinct input vectors ... quite effective for fault simulation") and
// the engine behind the classic PPSFP fault-grading loop in package fault.
// Like the oblivious engine it is compiled-mode and zero-delay: gates
// evaluate level by level, so it reports settled values per pattern, not
// waveforms, and it is restricted to the two-valued system.
//
// Sequential circuits are handled cycle-based with an implicit global
// clock: Cycle() makes every flip-flop sample its settled data input
// simultaneously, the conventional treatment of ISCAS-89-style netlists in
// test generation tools (explicit clock inputs are ignored).
package bitpar

import (
	"fmt"
	"math/bits"

	"repro/internal/circuit"
	"repro/internal/metrics"
)

// Sim is a bit-parallel evaluator over one circuit. It is not safe for
// concurrent use; fault grading creates one Sim per worker.
type Sim struct {
	c    *circuit.Circuit
	comb []circuit.GateID // combinational gates in evaluation order
	seq  []circuit.GateID // flip-flops
	w    []uint64         // value word per gate (bit k = pattern k)
	st   *metrics.LPBlock
	// force overrides one net to a constant word in every lane — the
	// stuck-at injection mechanism of PPSFP fault grading.
	forceGate circuit.GateID
	forceWord uint64
	forced    bool
}

// ForceNet pins a net to the given word in every subsequent evaluation
// (stuck-at fault injection). One net at a time; ClearForce removes it.
func (s *Sim) ForceNet(g circuit.GateID, word uint64) {
	s.forceGate, s.forceWord, s.forced = g, word, true
	s.w[g] = word
}

// ClearForce removes the injected fault.
func (s *Sim) ClearForce() { s.forced = false }

// New compiles a circuit for bit-parallel evaluation. Circuits with
// transparent latches, tri-state drivers, resolution nodes, or X constants
// are rejected: those need more than two values.
func New(c *circuit.Circuit) (*Sim, error) {
	for id := range c.Gates {
		switch c.Gates[id].Kind {
		case circuit.DLatch, circuit.Tri, circuit.Resolve, circuit.ConstX:
			return nil, fmt.Errorf("bitpar: gate %q (%v) is not two-valued evaluable",
				c.Gates[id].Name, c.Gates[id].Kind)
		}
	}
	levels, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	s := &Sim{c: c, w: make([]uint64, c.NumGates()), st: metrics.NewRegistry("bitpar").LP(0)}
	for _, level := range levels {
		for _, g := range level {
			if c.Gates[g].Kind == circuit.DFF {
				s.seq = append(s.seq, g)
			} else {
				s.comb = append(s.comb, g)
			}
		}
	}
	// Constants hold their value in every lane from the start.
	for id := range c.Gates {
		if c.Gates[id].Kind == circuit.Const1 {
			s.w[id] = ^uint64(0)
		}
	}
	return s, nil
}

// Reset clears all state words (flip-flops and nets back to all-zero).
func (s *Sim) Reset() {
	for i := range s.w {
		s.w[i] = 0
	}
	for id := range s.c.Gates {
		if s.c.Gates[id].Kind == circuit.Const1 {
			s.w[id] = ^uint64(0)
		}
	}
}

// SetInput drives a primary input with one bit per pattern.
func (s *Sim) SetInput(g circuit.GateID, patterns uint64) {
	s.w[g] = patterns
}

// Get returns a net's settled word.
func (s *Sim) Get(g circuit.GateID) uint64 { return s.w[g] }

// Evaluations reports the number of gate-word evaluations performed; each
// one covers up to 64 patterns.
func (s *Sim) Evaluations() uint64 { return s.st.Evaluations }

// AttachMetrics redirects the evaluator's counters into the given sink's
// LP block (one block per worker in fault grading). Call before any
// evaluation; the counters accumulated so far are carried over.
func (s *Sim) AttachMetrics(m metrics.Sink, lp int) {
	blk := m.LP(lp)
	blk.Add(s.st.LPCounters)
	s.st = blk
}

// Settle evaluates the combinational logic level by level.
func (s *Sim) Settle() {
	for _, g := range s.comb {
		if s.forced && g == s.forceGate {
			s.w[g] = s.forceWord
			continue
		}
		s.w[g] = s.evalWord(g)
		s.st.Evaluations++
	}
}

// Cycle clocks every flip-flop once (sampling the currently settled data
// inputs simultaneously) and re-settles the combinational logic.
func (s *Sim) Cycle() {
	// Two-phase: sample all D inputs before committing any Q.
	type upd struct {
		g circuit.GateID
		v uint64
	}
	updates := make([]upd, 0, len(s.seq))
	for _, g := range s.seq {
		updates = append(updates, upd{g, s.w[s.c.Gates[g].Fanin[0]]})
		s.st.Evaluations++
	}
	for _, u := range updates {
		s.w[u.g] = u.v
	}
	s.Settle()
}

// evalWord computes one gate over all 64 lanes.
func (s *Sim) evalWord(g circuit.GateID) uint64 {
	gate := &s.c.Gates[g]
	fi := gate.Fanin
	switch gate.Kind {
	case circuit.Const0:
		return 0
	case circuit.Const1:
		return ^uint64(0)
	case circuit.Buf, circuit.Output:
		return s.w[fi[0]]
	case circuit.Not:
		return ^s.w[fi[0]]
	case circuit.And:
		acc := ^uint64(0)
		for _, f := range fi {
			acc &= s.w[f]
		}
		return acc
	case circuit.Nand:
		acc := ^uint64(0)
		for _, f := range fi {
			acc &= s.w[f]
		}
		return ^acc
	case circuit.Or:
		var acc uint64
		for _, f := range fi {
			acc |= s.w[f]
		}
		return acc
	case circuit.Nor:
		var acc uint64
		for _, f := range fi {
			acc |= s.w[f]
		}
		return ^acc
	case circuit.Xor:
		var acc uint64
		for _, f := range fi {
			acc ^= s.w[f]
		}
		return acc
	case circuit.Xnor:
		var acc uint64
		for _, f := range fi {
			acc ^= s.w[f]
		}
		return ^acc
	case circuit.Mux2:
		sel, d0, d1 := s.w[fi[0]], s.w[fi[1]], s.w[fi[2]]
		return (sel & d1) | (^sel & d0)
	}
	return 0
}

// Patterns packs up to 64 input assignments. Patterns[k][i] is the value
// of input i (in circuit.Inputs order) under pattern k.
type Patterns struct {
	Count int
	// Words is indexed like circuit.Inputs: Words[i] bit k = pattern k.
	Words []uint64
}

// PackPatterns converts per-pattern boolean assignments into lane words.
func PackPatterns(c *circuit.Circuit, patterns [][]bool) (*Patterns, error) {
	if len(patterns) > 64 {
		return nil, fmt.Errorf("bitpar: %d patterns exceed the 64-lane word", len(patterns))
	}
	p := &Patterns{Count: len(patterns), Words: make([]uint64, len(c.Inputs))}
	for k, pat := range patterns {
		if len(pat) != len(c.Inputs) {
			return nil, fmt.Errorf("bitpar: pattern %d has %d values for %d inputs", k, len(pat), len(c.Inputs))
		}
		for i, b := range pat {
			if b {
				p.Words[i] |= 1 << k
			}
		}
	}
	return p, nil
}

// Mask returns the lane mask covering Count patterns.
func (p *Patterns) Mask() uint64 {
	if p.Count >= 64 {
		return ^uint64(0)
	}
	return 1<<p.Count - 1
}

// ApplyAndSettle drives the patterns and settles the circuit. A forced
// (faulted) input net keeps its forced word.
func (s *Sim) ApplyAndSettle(p *Patterns) {
	for i, in := range s.c.Inputs {
		if s.forced && in == s.forceGate {
			continue
		}
		s.w[in] = p.Words[i]
	}
	s.Settle()
}

// CountDifferences reports in how many lanes (patterns) two words differ
// under the mask.
func CountDifferences(a, b, mask uint64) int {
	return bits.OnesCount64((a ^ b) & mask)
}
