package bitpar

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/simtest"
)

// TestMatchesScalarSimulation cross-validates all 64 lanes against the
// event-driven reference, one pattern at a time.
func TestMatchesScalarSimulation(t *testing.T) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 300, Inputs: 12, Outputs: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	patterns := make([][]bool, 64)
	for k := range patterns {
		patterns[k] = make([]bool, len(c.Inputs))
		for i := range patterns[k] {
			patterns[k][i] = rng.Intn(2) == 1
		}
	}
	packed, err := PackPatterns(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	s.ApplyAndSettle(packed)

	for k, pat := range patterns {
		assign := map[string]logic.Value{}
		for i, in := range c.Inputs {
			assign[c.Gate(in).Name] = logic.FromBool(pat[i])
		}
		vals, err := simtest.Settle(c, assign)
		if err != nil {
			t.Fatal(err)
		}
		for g := range c.Gates {
			want, ok := vals[g].Bool()
			if !ok {
				t.Fatalf("scalar value of gate %d not driven", g)
			}
			got := s.Get(circuit.GateID(g))&(1<<k) != 0
			if got != want {
				t.Fatalf("pattern %d gate %d (%s): bitpar %v, scalar %v",
					k, g, c.Gates[g].Name, got, want)
			}
		}
	}
}

// TestMultiplierLanes computes 64 products simultaneously and checks them
// against Go arithmetic.
func TestMultiplierLanes(t *testing.T) {
	const bits = 6
	c, err := gen.ArrayMultiplier(bits, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	type op struct{ a, b uint64 }
	ops := make([]op, 64)
	patterns := make([][]bool, 64)
	for k := range patterns {
		ops[k] = op{rng.Uint64() & (1<<bits - 1), rng.Uint64() & (1<<bits - 1)}
		pat := make([]bool, len(c.Inputs))
		for i, in := range c.Inputs {
			name := c.Gate(in).Name
			var idx int
			var bus uint64
			if name[0] == 'a' {
				bus = ops[k].a
			} else {
				bus = ops[k].b
			}
			if _, err := fmtSscanf(name[1:], &idx); err != nil {
				t.Fatal(err)
			}
			pat[i] = bus&(1<<idx) != 0
		}
		patterns[k] = pat
	}
	packed, err := PackPatterns(c, patterns)
	if err != nil {
		t.Fatal(err)
	}
	s.ApplyAndSettle(packed)
	for k := range ops {
		var p uint64
		for i := 0; i < 2*bits; i++ {
			o, ok := c.ByName("p" + itoa(i))
			if !ok {
				t.Fatalf("no output p%d", i)
			}
			if s.Get(o)&(1<<k) != 0 {
				p |= 1 << i
			}
		}
		if want := ops[k].a * ops[k].b; p != want {
			t.Fatalf("lane %d: %d*%d = %d, want %d", k, ops[k].a, ops[k].b, p, want)
		}
	}
}

// TestSequentialCycle checks the implicit-clock LFSR-style behaviour: a
// shift register shifts one position per Cycle in every lane.
func TestSequentialCycle(t *testing.T) {
	c, err := gen.ShiftRegister(5, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := c.ByName("d")
	out, _ := c.ByName("out")
	// Lane k carries a distinct bit stream; after 5 cycles the first bit
	// driven appears at the output.
	s.SetInput(d, 0xAAAA)
	s.Settle()
	for i := 0; i < 5; i++ {
		s.Cycle()
	}
	if got := s.Get(out); got != 0xAAAA {
		t.Fatalf("shift register output = %x, want AAAA", got)
	}
}

// TestForceNet pins a mid-circuit net and checks downstream lanes see it.
func TestForceNet(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	n := b.Gate(circuit.Not, "n", a)
	y := b.Output("y", n)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	s.ForceNet(n, 0) // stuck-at-0 on the inverter output
	s.SetInput(a, 0x0F)
	s.Settle()
	if got := s.Get(y); got != 0 {
		t.Fatalf("forced net leaked: y = %x", got)
	}
	s.ClearForce()
	s.Settle()
	if got := s.Get(y); got != ^uint64(0x0F) {
		t.Fatalf("after ClearForce: y = %x", got)
	}
}

func TestRejectsNonTwoValued(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	en := b.Input("en")
	tr := b.Gate(circuit.Tri, "t", en, a)
	b.Output("y", tr)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(c); err == nil {
		t.Fatal("tri-state circuit accepted")
	}
}

func TestPackPatternsValidation(t *testing.T) {
	c, err := gen.RippleAdder(2, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PackPatterns(c, make([][]bool, 65)); err == nil {
		t.Fatal("65 patterns accepted")
	}
	if _, err := PackPatterns(c, [][]bool{{true}}); err == nil {
		t.Fatal("short pattern accepted")
	}
	p, err := PackPatterns(c, [][]bool{make([]bool, len(c.Inputs))})
	if err != nil {
		t.Fatal(err)
	}
	if p.Mask() != 1 {
		t.Fatalf("mask = %x", p.Mask())
	}
}

func TestCountDifferences(t *testing.T) {
	if CountDifferences(0b1010, 0b0110, 0xF) != 2 {
		t.Fatal("CountDifferences wrong")
	}
	if CountDifferences(0b1010, 0b0110, 0b0010) != 0 {
		t.Fatal("mask not applied")
	}
}

// small helpers to avoid fmt dependency weirdness in hot test loops

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func fmtSscanf(s string, v *int) (int, error) {
	*v = 0
	for i := 0; i < len(s); i++ {
		*v = *v*10 + int(s[i]-'0')
	}
	return 1, nil
}
