package oblivious

import (
	"fmt"
	gosync "sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/sim/supervise"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// WideResult is the outcome of a wide oblivious run.
type WideResult struct {
	// Values holds the settled packed value of every net after the last
	// boundary.
	Values []logic.Word
	// Waveform holds the settled whole-word values of watched nets sampled
	// at each boundary where any lane changed.
	Waveform trace.WideWaveform
	// Cycles is the number of boundaries evaluated.
	Cycles int
	// Lanes is the meaningful lane count, copied from the stimulus.
	Lanes int
	Stats  stats.RunStats
}

// RunWide is the levelized compiled-mode sweep over 64 packed lanes: at
// every stimulus boundary every gate is evaluated once on all 64 vectors —
// the evaluation order (sequential elements first, then combinational
// levels) is identical to the scalar Run, so each lane settles to exactly
// the scalar oblivious result for that lane's stimulus. This is the purest
// form of the wide win: the per-boundary evaluation count is unchanged
// while the vector throughput is multiplied by the lane count.
func RunWide(c *circuit.Circuit, stim *vectors.WideStimulus, cfg Config) (*WideResult, error) {
	if cfg.System == 0 {
		cfg.System = logic.FourValued
	}
	if err := logic.CheckWide(cfg.System); err != nil {
		return nil, err
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Cost == (stats.CostModel{}) {
		cfg.Cost = stats.DefaultCostModel()
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("oblivious-wide")
	}
	st := c.ComputeStats()
	if st.Latches > 0 {
		return nil, fmt.Errorf("oblivious: transparent latches are not supported by cycle-based evaluation")
	}
	levels, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	start := time.Now()

	val, prevClk := circuit.InitStateWide(c, cfg.System)
	watched := cfg.Watch
	if watched == nil {
		watched = c.Outputs
	}

	var seqGates []circuit.GateID
	combLevels := levels
	if st.FlipFlops > 0 && len(levels) > 0 {
		last := levels[len(levels)-1]
		allSeq := true
		for _, g := range last {
			if !c.Gates[g].Kind.Sequential() {
				allSeq = false
			}
		}
		if allSeq {
			seqGates = last
			combLevels = levels[:len(levels)-1]
		}
	}

	res := &WideResult{Lanes: stim.Lanes}
	blocks := make([]*metrics.LPBlock, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		blocks[w] = sink.LP(w)
	}
	globals := sink.Globals()
	var rec trace.WideRecorder
	// lastRec dedupes boundary samples at whole-word granularity; per-lane
	// deduplication happens in WideWaveform.Lane.
	lastRec := make([]logic.Word, len(c.Gates))
	for id := range lastRec {
		lastRec[id] = circuit.InitialWide(c.Gates[id].Kind, cfg.System)
	}

	type boundary struct {
		t       circuit.Tick
		changes []vectors.WideChange
	}
	var bounds []boundary
	for _, ch := range stim.Changes {
		if len(bounds) == 0 || bounds[len(bounds)-1].t != ch.Time {
			bounds = append(bounds, boundary{t: ch.Time})
		}
		bounds[len(bounds)-1].changes = append(bounds[len(bounds)-1].changes, ch)
	}

	newQ := make([]logic.Word, len(c.Gates))
	newClk := make([]logic.Word, len(c.Gates))
	evalSlice := func(w int, gates []circuit.GateID, scratch *[]logic.Word) {
		for _, g := range gates {
			out, cs, buf := circuit.EvalGateWide(c, g, val, prevClk, *scratch)
			*scratch = buf
			newQ[g] = out
			newClk[g] = cs
			blocks[w].Evaluations++
		}
	}
	scratches := make([][]logic.Word, cfg.Workers)

	var failMu gosync.Mutex
	var failErr error
	setFail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
	}

	runLevel := func(t circuit.Tick, gates []circuit.GateID) {
		if cfg.Workers == 1 || len(gates) < 2*cfg.Workers {
			evalSlice(0, gates, &scratches[0])
		} else {
			var wg gosync.WaitGroup
			chunk := (len(gates) + cfg.Workers - 1) / cfg.Workers
			for w := 0; w < cfg.Workers; w++ {
				lo := w * chunk
				if lo >= len(gates) {
					break
				}
				hi := lo + chunk
				if hi > len(gates) {
					hi = len(gates)
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							setFail(supervise.FromPanic("oblivious-wide", w, "eval", t, r))
						}
					}()
					metrics.Do(sink, "oblivious-wide", w, "eval", func() {
						evalSlice(w, gates[lo:hi], &scratches[w])
					})
				}(w, lo, hi)
			}
			wg.Wait()
		}
		globals.Barriers++
		maxChunk := len(gates)
		if cfg.Workers > 1 {
			maxChunk = (len(gates) + cfg.Workers - 1) / cfg.Workers
		}
		globals.ModeledCriticalNs += float64(maxChunk) * cfg.Cost.EvalCost
		for _, g := range gates {
			val[g] = newQ[g]
			prevClk[g] = newClk[g]
		}
	}

	for _, b := range bounds {
		failMu.Lock()
		err := failErr
		failMu.Unlock()
		if err != nil {
			return nil, err
		}
		res.Cycles++
		blocks[0].Steps++
		for _, ch := range b.changes {
			val[ch.Input] = ch.Word
		}
		if len(seqGates) > 0 {
			runLevel(b.t, seqGates)
		}
		for _, level := range combLevels {
			runLevel(b.t, level)
		}
		for _, g := range watched {
			if val[g] != lastRec[g] {
				lastRec[g] = val[g]
				rec.Record(b.t, g, val[g])
			}
		}
	}

	failMu.Lock()
	ferr := failErr
	failMu.Unlock()
	if ferr != nil {
		return nil, ferr
	}

	res.Values = val
	res.Waveform = trace.MergeWide(&rec)
	res.Stats = stats.Collect(sink, time.Since(start))
	return res, nil
}
