package oblivious

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim/seq"
	"repro/internal/vectors"
)

// settleMatch runs both engines and compares the settled state at the end.
func settleMatch(t *testing.T, c *circuit.Circuit, stim *vectors.Stimulus, workers int) (*Result, *seq.Result) {
	t.Helper()
	ob, err := Run(c, stim, Config{System: logic.TwoValued, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := seq.Run(c, stim, seq.Horizon(c, stim), seq.Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	for g := range ref.Values {
		if ref.Values[g] != ob.Values[g] {
			t.Fatalf("gate %d (%s): oblivious %v, event-driven %v",
				g, c.Gates[g].Name, ob.Values[g], ref.Values[g])
		}
	}
	return ob, ref
}

func TestCombinationalMatchesEventDriven(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c, err := gen.ArrayMultiplier(5, gen.Unit)
		if err != nil {
			t.Fatal(err)
		}
		stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 20, Period: 100, Activity: 0.7, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		settleMatch(t, c, stim, workers)
	}
}

func TestSequentialMatchesEventDriven(t *testing.T) {
	// Half-period must exceed the settle time for cycle-based equivalence.
	for _, workers := range []int{1, 3} {
		c, err := gen.Counter(6, gen.Unit)
		if err != nil {
			t.Fatal(err)
		}
		stim, err := vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 25, HalfPeriod: 64, Activity: 0.5, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		settleMatch(t, c, stim, workers)

		lf, err := gen.LFSR(8, nil, gen.Unit)
		if err != nil {
			t.Fatal(err)
		}
		stimL, err := vectors.Clocked(lf, vectors.ClockedConfig{Clock: "clk", Cycles: 30, HalfPeriod: 64, Activity: 0.3, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		settleMatch(t, lf, stimL, workers)
	}
}

func TestEvaluationCountIsOblivious(t *testing.T) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 300, Inputs: 10, Outputs: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 9, Period: 50, Activity: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ob, err := Run(c, stim, Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	// Every non-source gate is evaluated at every boundary regardless of
	// activity — that is the definition of oblivious simulation.
	nonSource := 0
	for g := range c.Gates {
		if !c.Gates[g].Kind.Source() {
			nonSource++
		}
	}
	want := uint64(nonSource * ob.Cycles)
	if got := ob.Stats.Total().Evaluations; got != want {
		t.Fatalf("evaluations = %d, want %d (gates x cycles)", got, want)
	}
}

func TestActivityCrossover(t *testing.T) {
	// The paper: at low activity oblivious wastes evaluations; at high
	// activity the event queue overhead dominates. Check the evaluation
	// ratio moves in the right direction with activity.
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 400, Inputs: 12, Outputs: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(activity float64) float64 {
		stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 20, Period: 60, Activity: activity, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		ob, err := Run(c, stim, Config{System: logic.TwoValued})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := seq.Run(c, stim, seq.Horizon(c, stim), seq.Config{System: logic.TwoValued})
		if err != nil {
			t.Fatal(err)
		}
		return float64(ref.Counters.Evaluations) / float64(ob.Stats.Total().Evaluations)
	}
	low := ratio(0.02)
	high := ratio(1.0)
	if low >= high {
		t.Fatalf("event-driven/oblivious evaluation ratio did not grow with activity: low=%f high=%f", low, high)
	}
}

func TestLatchesRejected(t *testing.T) {
	b := circuit.NewBuilder()
	d := b.Input("d")
	en := b.Input("en")
	l := b.Gate(circuit.DLatch, "l", d, en)
	b.Output("q", l)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stim := &vectors.Stimulus{Changes: []vectors.Change{
		{Time: 0, Input: d, Value: logic.Zero}, {Time: 0, Input: en, Value: logic.Zero},
	}}
	if _, err := Run(c, stim, Config{}); err == nil {
		t.Fatal("latch circuit accepted")
	}
}

func TestParallelAccounting(t *testing.T) {
	c, err := gen.ArrayMultiplier(6, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 5, Period: 100, Activity: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, stim, Config{System: logic.TwoValued, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.LPs) != 4 {
		t.Fatalf("worker stats = %d", len(res.Stats.LPs))
	}
	if res.Stats.Barriers == 0 || res.Stats.ModeledCritical <= 0 {
		t.Fatal("parallel accounting missing")
	}
	// Worker 0 must not have done all the work.
	if res.Stats.LPs[1].Evaluations == 0 {
		t.Fatal("work not distributed")
	}
}

func TestWaveformSampledChanges(t *testing.T) {
	c, err := gen.RippleAdder(2, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 10, Period: 50, Activity: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, stim, Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	// Waveform entries must be genuine changes on watched nets at
	// boundary times.
	last := map[circuit.GateID]logic.Value{}
	for _, s := range res.Waveform {
		if uint64(s.Time)%50 != 0 {
			t.Fatalf("sample at non-boundary time %d", s.Time)
		}
		if prev, ok := last[s.Gate]; ok && prev == s.Value {
			t.Fatalf("non-change recorded for gate %d at %d", s.Gate, s.Time)
		}
		last[s.Gate] = s.Value
	}
}
