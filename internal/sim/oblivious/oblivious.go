// Package oblivious implements the compiled-mode, levelized simulator the
// paper contrasts with event-driven techniques.
//
// The oblivious algorithm is not event driven at all: at every stimulus
// boundary every gate is evaluated, whether or not its inputs changed,
// which "completely eliminates the need for an event queue". Correctness
// comes from schedule order alone — gates are evaluated level by level, so
// each sees settled inputs ("components are evaluated after their input
// values are known").
//
// The engine evaluates sequential elements first (flip-flops sample the
// previous boundary's settled data, exactly what an event-driven run with
// delays shorter than the clock half-period produces), then sweeps the
// combinational levels in order. The parallel variant splits every level
// across workers with a barrier per level, which is how SIMD and compiled
// oblivious simulators of the period extracted parallelism.
//
// Timing semantics are cycle-based (zero-delay): the engine reports
// settled values per stimulus boundary, not transient waveforms. The
// activity-crossover experiment (E3) uses the evaluation counters of this
// engine and the event-driven reference to reproduce the paper's claim
// that oblivious wins at high activity and loses badly at low activity.
package oblivious

import (
	"fmt"
	gosync "sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/sim/supervise"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Config parameterizes an oblivious run.
type Config struct {
	// System is the logic value system.
	System logic.System
	// Workers is the number of parallel evaluators per level; 0 or 1 runs
	// serially.
	Workers int
	// Watch lists nets to sample at each boundary; nil watches outputs.
	Watch []circuit.GateID
	// Cost prices per-level work for the modeled critical path.
	Cost stats.CostModel
	// Metrics receives per-worker counters and barrier globals; nil uses a
	// private registry.
	Metrics metrics.Sink
	// Tracer, when non-nil, records one evaluate span per worker per level.
	Tracer *trace.Tracer
}

// Result is the outcome of an oblivious run.
type Result struct {
	// Values holds the settled value of every net after the last boundary.
	Values []logic.Value
	// Waveform holds the settled values of watched nets sampled at each
	// stimulus boundary where they changed.
	Waveform trace.Waveform
	// Cycles is the number of boundaries evaluated.
	Cycles int
	Stats  stats.RunStats
}

// Run evaluates the circuit at every stimulus boundary.
func Run(c *circuit.Circuit, stim *vectors.Stimulus, cfg Config) (*Result, error) {
	if err := stim.Validate(c); err != nil {
		return nil, err
	}
	if cfg.System == 0 {
		cfg.System = logic.NineValued
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Cost == (stats.CostModel{}) {
		cfg.Cost = stats.DefaultCostModel()
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("oblivious")
	}
	st := c.ComputeStats()
	if st.Latches > 0 {
		return nil, fmt.Errorf("oblivious: transparent latches are not supported by cycle-based evaluation")
	}
	levels, err := c.Levelize()
	if err != nil {
		return nil, err
	}
	start := time.Now()

	val, prevClk := circuit.InitState(c, cfg.System)
	watched := cfg.Watch
	if watched == nil {
		watched = c.Outputs
	}

	// Split levels: sequential gates live in the dedicated final level (by
	// construction of Levelize) and are evaluated before the combinational
	// sweep of each boundary.
	var seqGates []circuit.GateID
	combLevels := levels
	if st.FlipFlops > 0 && len(levels) > 0 {
		last := levels[len(levels)-1]
		allSeq := true
		for _, g := range last {
			if !c.Gates[g].Kind.Sequential() {
				allSeq = false
			}
		}
		if allSeq {
			seqGates = last
			combLevels = levels[:len(levels)-1]
		}
	}

	res := &Result{}
	blocks := make([]*metrics.LPBlock, cfg.Workers)
	shards := make([]*trace.Shard, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		blocks[w] = sink.LP(w)
		shards[w] = cfg.Tracer.Shard(fmt.Sprintf("worker %d", w))
	}
	globals := sink.Globals()
	var rec trace.Recorder

	// Group stimulus changes by boundary time.
	type boundary struct {
		t       circuit.Tick
		changes []vectors.Change
	}
	var bounds []boundary
	for _, ch := range stim.Changes {
		if len(bounds) == 0 || bounds[len(bounds)-1].t != ch.Time {
			bounds = append(bounds, boundary{t: ch.Time})
		}
		bounds[len(bounds)-1].changes = append(bounds[len(bounds)-1].changes, ch)
	}

	// evalSlice evaluates one contiguous chunk of a level into newVals.
	newQ := make([]logic.Value, len(c.Gates))
	newClk := make([]logic.Value, len(c.Gates))
	evalSlice := func(w int, t circuit.Tick, gates []circuit.GateID, scratch *[]logic.Value) {
		begin := shards[w].Now()
		for _, g := range gates {
			out, cs, buf := circuit.EvalGate(c, g, val, prevClk, *scratch)
			*scratch = buf
			newQ[g] = out
			newClk[g] = cs
			blocks[w].Evaluations++
		}
		shards[w].Span(trace.PhaseEvaluate, begin, t)
	}
	scratches := make([][]logic.Value, cfg.Workers)

	// A panicking worker is recovered into the run's first error so the
	// level barrier always completes; the coordinator surfaces it at the
	// next boundary.
	var failMu gosync.Mutex
	var failErr error
	setFail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
	}

	// runLevel evaluates a level (in parallel when configured) and commits.
	runLevel := func(t circuit.Tick, gates []circuit.GateID) {
		if cfg.Workers == 1 || len(gates) < 2*cfg.Workers {
			evalSlice(0, t, gates, &scratches[0])
		} else {
			var wg gosync.WaitGroup
			chunk := (len(gates) + cfg.Workers - 1) / cfg.Workers
			for w := 0; w < cfg.Workers; w++ {
				lo := w * chunk
				if lo >= len(gates) {
					break
				}
				hi := lo + chunk
				if hi > len(gates) {
					hi = len(gates)
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							setFail(supervise.FromPanic("oblivious", w, "eval", t, r))
						}
					}()
					metrics.Do(sink, "oblivious", w, "eval", func() {
						evalSlice(w, t, gates[lo:hi], &scratches[w])
					})
				}(w, lo, hi)
			}
			wg.Wait()
		}
		globals.Barriers++
		// Commit. Per-level worst-case chunk cost models the critical path.
		maxChunk := len(gates)
		if cfg.Workers > 1 {
			maxChunk = (len(gates) + cfg.Workers - 1) / cfg.Workers
		}
		globals.ModeledCriticalNs += float64(maxChunk) * cfg.Cost.EvalCost
		for _, g := range gates {
			val[g] = newQ[g]
			prevClk[g] = newClk[g]
		}
	}

	for _, b := range bounds {
		failMu.Lock()
		err := failErr
		failMu.Unlock()
		if err != nil {
			return nil, err
		}
		res.Cycles++
		blocks[0].Steps++
		for _, ch := range b.changes {
			val[ch.Input] = cfg.System.Project(ch.Value)
		}
		// Sequential elements sample the previous boundary's settled data
		// before the combinational sweep recomputes it.
		if len(seqGates) > 0 {
			runLevel(b.t, seqGates)
		}
		for _, level := range combLevels {
			runLevel(b.t, level)
		}
		for _, g := range watched {
			rec.Record(b.t, g, val[g])
		}
	}

	failMu.Lock()
	ferr := failErr
	failMu.Unlock()
	if ferr != nil {
		return nil, ferr
	}

	// Deduplicate the sampled waveform into genuine changes.
	full := trace.Merge(&rec)
	lastSeen := map[circuit.GateID]logic.Value{}
	var wf trace.Waveform
	for _, s := range full {
		prev, ok := lastSeen[s.Gate]
		if !ok {
			prev = cfg.System.Project(circuit.InitialValue(c.Gates[s.Gate].Kind))
		}
		if s.Value != prev {
			wf = append(wf, s)
			lastSeen[s.Gate] = s.Value
		}
	}

	res.Values = val
	res.Waveform = wf
	res.Stats = stats.Collect(sink, time.Since(start))
	return res, nil
}
