package seq

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/eventq"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// stim builds a stimulus from raw changes.
func stim(end circuit.Tick, chs ...vectors.Change) *vectors.Stimulus {
	return &vectors.Stimulus{Changes: chs, End: end}
}

// run2 runs with the 2-valued system and sane defaults.
func run2(t *testing.T, c *circuit.Circuit, s *vectors.Stimulus, until circuit.Tick) *Result {
	t.Helper()
	res, err := Run(c, s, until, Config{System: logic.TwoValued, MaxEvents: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNandTruthTable(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	bb := b.Input("b")
	n := b.Gate(circuit.Nand, "n", a, bb)
	y := b.Output("y", n)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want logic.Value }{
		{logic.Zero, logic.Zero, logic.One},
		{logic.Zero, logic.One, logic.One},
		{logic.One, logic.Zero, logic.One},
		{logic.One, logic.One, logic.Zero},
	}
	for _, cs := range cases {
		s := stim(0,
			vectors.Change{Time: 0, Input: a, Value: cs.a},
			vectors.Change{Time: 0, Input: bb, Value: cs.b},
		)
		res := run2(t, c, s, 100)
		if res.Values[y] != cs.want {
			t.Errorf("NAND(%v,%v) -> %v, want %v", cs.a, cs.b, res.Values[y], cs.want)
		}
	}
}

func TestGlitchPropagationWithUnequalDelays(t *testing.T) {
	// y = a AND not(a). With delay(not)=3, a 0->1 input change makes y
	// pulse high for exactly the inverter delay (transport semantics).
	b := circuit.NewBuilder()
	a := b.Input("a")
	inv := b.GateDelay(circuit.Not, "inv", 3, a)
	and := b.GateDelay(circuit.And, "and", 1, a, inv)
	y := b.Output("y", and)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := stim(10,
		vectors.Change{Time: 0, Input: a, Value: logic.Zero},
		vectors.Change{Time: 10, Input: a, Value: logic.One},
	)
	res, err := Run(c, s, 100, Config{System: logic.TwoValued, Watch: []circuit.GateID{and, y}})
	if err != nil {
		t.Fatal(err)
	}
	// a rises at 10; and sees (a=1, inv=1) from 10 until inv falls at 13.
	// and output: 1 at 11, back to 0 at 14.
	want := trace.Waveform{
		{Time: 11, Gate: and, Value: logic.One},
		{Time: 12, Gate: y, Value: logic.One},
		{Time: 14, Gate: and, Value: logic.Zero},
		{Time: 15, Gate: y, Value: logic.Zero},
	}
	if d := trace.Diff(want, res.Waveform, 10); d != "" {
		t.Fatalf("glitch waveform wrong:\n%s", d)
	}
}

func TestCounterCounts(t *testing.T) {
	c, err := gen.Counter(4, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	clk, _ := c.ByName("clk")
	en, _ := c.ByName("en")
	chs := []vectors.Change{
		{Time: 0, Input: clk, Value: logic.Zero},
		{Time: 0, Input: en, Value: logic.One},
	}
	const cycles = 11
	for k := 0; k < cycles; k++ {
		base := circuit.Tick(k) * 40
		chs = append(chs,
			vectors.Change{Time: base + 20, Input: clk, Value: logic.One},
			vectors.Change{Time: base + 40, Input: clk, Value: logic.Zero},
		)
	}
	s := &vectors.Stimulus{Changes: chs, End: cycles * 40}
	res := run2(t, c, s, cycles*40+20)
	var got uint64
	for i := 0; i < 4; i++ {
		q, _ := c.ByName(getName("q", i))
		if bit, ok := res.Values[q].Bool(); ok && bit {
			got |= 1 << i
		}
	}
	if got != cycles%16 {
		t.Fatalf("counter = %d after %d cycles, want %d", got, cycles, cycles%16)
	}
}

func getName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

func TestLFSRMatchesSoftwareModel(t *testing.T) {
	const bits = 6
	c, err := gen.LFSR(bits, nil, gen.Unit) // taps {0, bits-1}
	if err != nil {
		t.Fatal(err)
	}
	clk, _ := c.ByName("clk")
	rst, _ := c.ByName("rst")
	chs := []vectors.Change{
		{Time: 0, Input: clk, Value: logic.Zero},
		{Time: 0, Input: rst, Value: logic.One},
	}
	const cycles = 20
	for k := 0; k < cycles; k++ {
		base := circuit.Tick(k) * 40
		chs = append(chs,
			vectors.Change{Time: base + 20, Input: clk, Value: logic.One},
			vectors.Change{Time: base + 40, Input: clk, Value: logic.Zero},
		)
	}
	// Release reset after the first rising edge.
	chs = append(chs, vectors.Change{Time: 30, Input: rst, Value: logic.Zero})
	s := &vectors.Stimulus{Changes: chs, End: cycles * 40}
	s.Sort()
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
	res := run2(t, c, s, cycles*40+20)

	// Software model: edge 1 loads reset state (q0=1, rest 0); the
	// remaining cycles-1 edges shift with feedback q0 ^ q(bits-1).
	state := make([]bool, bits)
	state[0] = true
	for k := 1; k < cycles; k++ {
		fb := state[0] != state[bits-1]
		copy(state[1:], state[:bits-1])
		state[0] = fb
	}
	for i := 0; i < bits; i++ {
		q, _ := c.ByName(getName("q", i))
		got, ok := res.Values[q].Bool()
		if !ok {
			t.Fatalf("q%d undriven: %v", i, res.Values[q])
		}
		if got != state[i] {
			t.Fatalf("q%d = %v, want %v", i, got, state[i])
		}
	}
}

func TestNineValuedUnknownPropagation(t *testing.T) {
	// Leave input b undriven: in the 9-valued system it stays U and the
	// AND output must not pretend to know the answer (except a=0).
	b := circuit.NewBuilder()
	a := b.Input("a")
	bb := b.Input("b")
	g := b.Gate(circuit.And, "g", a, bb)
	y := b.Output("y", g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := stim(0, vectors.Change{Time: 0, Input: a, Value: logic.One})
	res, err := Run(c, s, 100, Config{System: logic.NineValued})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[g] != logic.U {
		t.Fatalf("AND(1,U) = %v, want U", res.Values[g])
	}
	// The Output buffer strength-normalizes U to X.
	if res.Values[y] != logic.X {
		t.Fatalf("output buffer of U = %v, want X", res.Values[y])
	}
	// a=0 dominates regardless of the unknown.
	s0 := stim(0, vectors.Change{Time: 0, Input: a, Value: logic.Zero})
	res0, err := Run(c, s0, 100, Config{System: logic.NineValued})
	if err != nil {
		t.Fatal(err)
	}
	if res0.Values[y] != logic.Zero {
		t.Fatalf("AND(0,U) output = %v, want 0", res0.Values[y])
	}
}

func TestOscillatorHitsEventLimit(t *testing.T) {
	// A transparent latch with its own inverted output as data oscillates.
	b := circuit.NewBuilder()
	en := b.Input("en")
	lt := b.Gate(circuit.DLatch, "lt", en, en) // placeholder fanin
	inv := b.Gate(circuit.Not, "inv", lt)
	b.SetFanin(lt, []circuit.GateID{inv, en})
	b.Output("y", lt)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := stim(0, vectors.Change{Time: 0, Input: en, Value: logic.One})
	_, err = Run(c, s, 1_000_000, Config{System: logic.TwoValued, MaxEvents: 10_000})
	if err == nil {
		t.Fatal("oscillator did not hit the event limit")
	}
}

func TestQueueImplementationsAgree(t *testing.T) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 400, Inputs: 10, Outputs: 8, Seed: 9, Delays: gen.Fine(8, 9)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := vectors.Random(c, vectors.RandomConfig{Vectors: 30, Period: 20, Activity: 0.7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	until := Horizon(c, s)
	var ref *Result
	for _, impl := range []eventq.Impl{eventq.ImplHeap, eventq.ImplCalendar, eventq.ImplWheel} {
		res, err := Run(c, s, until, Config{System: logic.TwoValued, Queue: impl})
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if d := trace.Diff(ref.Waveform, res.Waveform, 5); d != "" {
			t.Fatalf("%v waveform differs from heap:\n%s", impl, d)
		}
		for g := range ref.Values {
			if ref.Values[g] != res.Values[g] {
				t.Fatalf("%v final value differs at gate %d", impl, g)
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	c, err := gen.RippleAdder(4, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	s, err := vectors.Random(c, vectors.RandomConfig{Vectors: 10, Period: 30, Activity: 0.8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, s, Horizon(c, s), Config{System: logic.TwoValued, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Counters
	if st.EventsApplied == 0 || st.Evaluations == 0 || st.Steps == 0 {
		t.Fatalf("stats are zero: %+v", st)
	}
	if res.EvalsByGate == nil {
		t.Fatal("profile not collected")
	}
	var sum uint64
	for _, n := range res.EvalsByGate {
		sum += n
	}
	if sum != st.Evaluations {
		t.Fatalf("per-gate evals %d != total %d", sum, st.Evaluations)
	}
	// Events applied can exceed scheduled by at most the stimulus size.
	if st.EventsApplied > st.EventsScheduled+uint64(len(s.Changes)) {
		t.Fatalf("applied %d > scheduled %d + stimulus %d", st.EventsApplied, st.EventsScheduled, len(s.Changes))
	}
}

func TestWatchDefaultsToOutputs(t *testing.T) {
	c, err := gen.RippleAdder(2, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	s, err := vectors.Random(c, vectors.RandomConfig{Vectors: 5, Period: 20, Activity: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := run2(t, c, s, Horizon(c, s))
	isOut := map[circuit.GateID]bool{}
	for _, o := range c.Outputs {
		isOut[o] = true
	}
	if len(res.Waveform) == 0 {
		t.Fatal("no waveform recorded")
	}
	for _, smp := range res.Waveform {
		if !isOut[smp.Gate] {
			t.Fatalf("non-output gate %d in default waveform", smp.Gate)
		}
	}
}

func TestHorizonBeyondStimulus(t *testing.T) {
	c, err := gen.RippleAdder(8, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	s, err := vectors.Random(c, vectors.RandomConfig{Vectors: 3, Period: 10, Activity: 1, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if h := Horizon(c, s); h <= s.End {
		t.Fatalf("Horizon %d not beyond stimulus end %d", h, s.End)
	}
}

func TestEventsBeyondHorizonDiscarded(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	n := b.GateDelay(circuit.Not, "n", 50, a)
	b.Output("y", n)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := stim(10,
		vectors.Change{Time: 0, Input: a, Value: logic.Zero},
		vectors.Change{Time: 10, Input: a, Value: logic.One},
	)
	// Horizon 20: the inverter's response at t=60 must not be processed.
	res := run2(t, c, s, 20)
	if res.EndTime > 20 {
		t.Fatalf("processed beyond horizon: %d", res.EndTime)
	}
	if len(res.Waveform) != 0 {
		t.Fatalf("output changed within horizon: %v", res.Waveform)
	}
}

func TestZeroDelayRejected(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	b.GateDelay(circuit.Not, "n", 0, a)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, stim(0), 10, Config{}); err == nil {
		t.Fatal("zero-delay circuit accepted")
	}
}

func TestInvalidStimulusRejected(t *testing.T) {
	c, err := gen.RippleAdder(2, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	bad := stim(10, vectors.Change{Time: 0, Input: c.Outputs[0], Value: logic.One})
	if _, err := Run(c, bad, 10, Config{}); err == nil {
		t.Fatal("invalid stimulus accepted")
	}
}

func TestCriticalPathBounds(t *testing.T) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 300, Inputs: 10, Outputs: 6, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	s, err := vectors.Random(c, vectors.RandomConfig{Vectors: 15, Period: 40, Activity: 0.6, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, s, Horizon(c, s), Config{System: logic.TwoValued, CriticalPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalPath <= 0 {
		t.Fatal("no critical path computed")
	}
	// The makespan with unlimited processors can never exceed the serial
	// time, and must be at least one evaluation unit deep.
	m := stats.DefaultCostModel()
	seqTime := stats.SequentialTime(m, res.Counters.Evaluations, res.Counters.EventsApplied, res.Counters.EventsScheduled)
	if res.CriticalPath > seqTime {
		t.Fatalf("critical path %f exceeds serial time %f", res.CriticalPath, seqTime)
	}
	if res.CriticalPath < m.EvalCost {
		t.Fatalf("critical path %f below one evaluation", res.CriticalPath)
	}
	// Disabled by default.
	res2, err := Run(c, s, Horizon(c, s), Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CriticalPath != 0 {
		t.Fatal("critical path computed without being requested")
	}
}

func TestCriticalPathChainsThroughLogic(t *testing.T) {
	// A single N-gate inverter chain driven once: the critical path must
	// grow linearly with N (every evaluation depends on the previous one).
	depth := func(n int) float64 {
		b := circuit.NewBuilder()
		a := b.Input("a")
		prev := a
		for i := 0; i < n; i++ {
			prev = b.Gate(circuit.Not, getName("g", i%10)+getName("x", i/10%10)+getName("y", i/100), prev)
		}
		b.Output("y", prev)
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		s := stim(10,
			vectors.Change{Time: 0, Input: a, Value: logic.Zero},
			vectors.Change{Time: 10, Input: a, Value: logic.One})
		res, err := Run(c, s, 10_000, Config{System: logic.TwoValued, CriticalPath: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.CriticalPath
	}
	d20, d40 := depth(20), depth(40)
	if d40 < 1.8*d20 {
		t.Fatalf("critical path not chaining: depth 20 -> %f, depth 40 -> %f", d20, d40)
	}
}
