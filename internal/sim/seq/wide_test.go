package seq

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// laneInitial returns the per-lane dedup baseline for wide waveform
// extraction: the projected time-zero value of each net, identical across
// lanes and identical to the scalar engine's initial committed value.
func laneInitial(c *circuit.Circuit, sys logic.System) func(circuit.GateID) logic.Value {
	return func(g circuit.GateID) logic.Value {
		return sys.Project(circuit.InitialValue(c.Gates[g].Kind))
	}
}

// TestRunWideLaneExact is the foundation check for the whole wide path:
// every lane of a wide run must reproduce, sample for sample, the scalar
// reference run of that lane's stimulus.
func TestRunWideLaneExact(t *testing.T) {
	cases := []struct {
		name string
		sys  logic.System
		seq  bool
	}{
		{"comb-2v", logic.TwoValued, false},
		{"comb-4v", logic.FourValued, false},
		{"seq-2v", logic.TwoValued, true},
		{"seq-4v", logic.FourValued, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var (
				c   *circuit.Circuit
				err error
			)
			if tc.seq {
				c, err = gen.RandomSeq(gen.RandomConfig{Gates: 120, Inputs: 8, Outputs: 6, Locality: 0.5, Seed: 9, FFRatio: 0.2})
			} else {
				c, err = gen.RandomDAG(gen.RandomConfig{Gates: 120, Inputs: 8, Outputs: 6, Locality: 0.5, Seed: 9})
			}
			if err != nil {
				t.Fatal(err)
			}
			const lanes = 64
			var (
				ws    *vectors.WideStimulus
				stims []*vectors.Stimulus
			)
			if tc.seq {
				ws, stims, err = vectors.ClockedBatch(c, vectors.ClockedConfig{Clock: "clk", Cycles: 6, HalfPeriod: 8, Activity: 0.5, Seed: 21}, lanes, tc.sys)
			} else {
				ws, stims, err = vectors.RandomBatch(c, vectors.RandomConfig{Vectors: 6, Period: 16, Activity: 0.6, Seed: 21}, lanes, tc.sys)
			}
			if err != nil {
				t.Fatal(err)
			}
			until := WideHorizon(c, ws)
			wres, err := RunWide(c, ws, until, WideConfig{System: tc.sys})
			if err != nil {
				t.Fatal(err)
			}
			init := laneInitial(c, tc.sys)
			for k := 0; k < lanes; k++ {
				sres, err := Run(c, stims[k], until, Config{System: tc.sys})
				if err != nil {
					t.Fatalf("lane %d scalar: %v", k, err)
				}
				got := wres.Waveform.Lane(k, init)
				if d := trace.Diff(sres.Waveform, got, 6); d != "" {
					t.Fatalf("lane %d waveform mismatch:\n%s", k, d)
				}
				for _, out := range c.Outputs {
					if g, w := wres.Values[out].Get(k), sres.Values[out].ToX01Z(); g != w {
						t.Fatalf("lane %d final %d: wide %v, scalar %v", k, out, g, w)
					}
				}
			}
		})
	}
}

// TestRunWideRejectsNineValued pins the wide plane's system constraint.
func TestRunWideRejectsNineValued(t *testing.T) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 20, Inputs: 4, Outputs: 2, Locality: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws, _, err := vectors.RandomBatch(c, vectors.RandomConfig{Vectors: 2, Period: 10, Activity: 0.5, Seed: 1}, 4, logic.TwoValued)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWide(c, ws, 100, WideConfig{System: logic.NineValued}); err == nil {
		t.Fatal("nine-valued wide run unexpectedly succeeded")
	}
}
