// Package seq implements the sequential event-driven reference simulator.
//
// This is the classic single-queue gate-level simulator the paper takes as
// the baseline that parallel techniques accelerate. It also defines the
// semantics of the whole repository: every parallel engine is required to
// produce exactly the waveform this engine produces, and the cross-engine
// equivalence tests enforce that.
//
// Timestep semantics are two-phase: all net-value changes for the current
// time are applied first, then every gate whose fanin changed is evaluated
// exactly once against the settled values, and its output (if different
// from the last value projected for the net) is scheduled one gate-delay
// into the future. Because gate delays are >= 1 and evaluation is a pure
// function, the result is independent of the order in which same-time
// events are drawn from the queue — which is precisely what makes the
// partitioned, parallel executions of the other engines comparable.
//
// The engine doubles as the paper's "pre-simulation" workload estimator:
// with Profile enabled it counts evaluations per gate, and the partition
// package uses those counts as load weights.
package seq

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/eventq"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/supervise"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Config parameterizes a sequential run.
type Config struct {
	// System is the logic value system used to initialize state.
	System logic.System
	// Queue selects the pending-event set implementation.
	Queue eventq.Impl
	// Watch lists the nets to record in the waveform; nil watches the
	// primary outputs.
	Watch []circuit.GateID
	// Profile enables per-gate evaluation counting (pre-simulation).
	Profile bool
	// CriticalPath enables critical-path analysis: alongside the normal
	// run, every event's completion time is computed on a hypothetical
	// machine with unlimited processors and zero communication cost, where
	// an evaluation may start as soon as the latest change of any net it
	// reads has completed. The resulting makespan is the data-dependency
	// lower bound on parallel execution time — the "ideal parallelism" of
	// the workload that no synchronization algorithm can beat.
	CriticalPath bool
	// Cost prices critical-path work; the zero value uses the default
	// model.
	Cost stats.CostModel
	// MaxEvents aborts runaway simulations (oscillators); 0 means no limit.
	MaxEvents uint64
	// Metrics receives the run's work counters; nil uses a private
	// registry (the counters still come back in Result.Counters).
	Metrics metrics.Sink
	// Tracer, when non-nil, records one evaluate span per timestep.
	Tracer *trace.Tracer

	// CheckpointEvery, with Checkpoint set, captures a consistent
	// snapshot at every multiple of this modeled-time interval: the
	// snapshot at boundary B is taken once the next pending event is
	// strictly later than B, so state reflects every event <= B and the
	// pending set is strictly later. Sequential execution is this
	// repository's definition of the trajectory (every engine must match
	// its waveform), which is what makes these snapshots consistent cuts
	// for any engine to restore.
	CheckpointEvery circuit.Tick
	// Checkpoint receives each captured snapshot; a non-nil error aborts
	// the run.
	Checkpoint func(*ckpt.State) error
	// Boot, when non-nil, resumes from a snapshot instead of the
	// stimulus: value planes are seeded, pending events requeued, and the
	// time-0 settling pass skipped. Result.Waveform then holds only the
	// samples recorded after the boundary (callers prepend Boot's
	// prefix).
	Boot *ckpt.State
}

// Result is the outcome of a run.
type Result struct {
	// Values holds the final value of every net.
	Values []logic.Value
	// Waveform is the committed change history of the watched nets.
	Waveform trace.Waveform
	// EndTime is the last simulated time processed.
	EndTime circuit.Tick
	// CriticalPath is the data-dependency makespan in model nanoseconds
	// (0 unless Config.CriticalPath was set).
	CriticalPath float64
	// Counters is the run's work tally. Steps counts distinct simulated
	// times processed; EventsApplied counts committed net changes only
	// (same-value deliveries are filtered before counting).
	Counters metrics.LPCounters
	// EvalsByGate holds per-gate evaluation counts when profiling.
	EvalsByGate []uint64
}

// event is a scheduled net value change. compl carries the event's
// completion time on the ideal machine when critical-path analysis is on.
type event struct {
	gate  circuit.GateID
	value logic.Value
	compl float64
}

// Run simulates c under the stimulus until the given time (inclusive).
// Events scheduled beyond the horizon are discarded unprocessed.
func Run(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, cfg Config) (*Result, error) {
	if err := c.CheckEventDriven(); err != nil {
		return nil, err
	}
	if err := stim.Validate(c); err != nil {
		return nil, err
	}
	if cfg.System == 0 {
		cfg.System = logic.NineValued
	}
	if cfg.Cost == (stats.CostModel{}) {
		cfg.Cost = stats.DefaultCostModel()
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("seq")
	}
	blk := sink.LP(0)
	shard := cfg.Tracer.Shard("lp 0")

	val, prevClk := circuit.InitState(c, cfg.System)
	projected := make([]logic.Value, len(val))
	copy(projected, val)

	watched := cfg.Watch
	if watched == nil {
		watched = c.Outputs
	}
	isWatched := make([]bool, len(c.Gates))
	for _, g := range watched {
		isWatched[g] = true
	}

	q := eventq.New[event](cfg.Queue)
	if cfg.Boot != nil {
		if err := cfg.Boot.Check(c, cfg.System); err != nil {
			return nil, err
		}
		copy(val, cfg.Boot.Vals)
		copy(prevClk, cfg.Boot.PrevClk)
		copy(projected, cfg.Boot.Projected)
		for _, ev := range cfg.Boot.Events {
			q.Push(ev.Time, event{gate: ev.Gate, value: ev.Value})
		}
	} else {
		for _, ch := range stim.Changes {
			if ch.Time > until {
				continue
			}
			q.Push(uint64(ch.Time), event{gate: ch.Input, value: cfg.System.Project(ch.Value)})
			projected[ch.Input] = cfg.System.Project(ch.Value)
		}
	}

	res := &Result{}
	if cfg.Profile {
		res.EvalsByGate = make([]uint64, len(c.Gates))
	}
	var rec trace.Recorder

	// Critical-path state: lastCompl[g] is the ideal-machine completion
	// time of net g's most recent change.
	var lastCompl []float64
	if cfg.CriticalPath {
		lastCompl = make([]float64, len(c.Gates))
	}
	// evalStep is the ideal cost of one apply-evaluate-schedule unit.
	evalStep := cfg.Cost.EvalCost + 2*cfg.Cost.EventCost

	// dirty tracking: stamp[g] == epoch marks g already queued this step.
	stamp := make([]uint64, len(c.Gates))
	var epoch uint64
	var dirty []circuit.GateID
	var scratch []logic.Value
	var endTime circuit.Tick
	var totalEvents uint64

	// step processes one timestep: apply all queued changes at time t, then
	// evaluate each affected gate once. When initial is set every non-source
	// gate is evaluated regardless of input changes — the time-zero settling
	// pass that establishes correct steady state from the initial values.
	step := func(t circuit.Tick, initial bool) error {
		epoch++
		blk.Steps++
		endTime = t
		dirty = dirty[:0]
		begin := shard.Now()
		applied := uint64(0)

		// Phase 1: apply all value changes for time t.
		for {
			pt, ok := q.PeekTime()
			if !ok || circuit.Tick(pt) != t {
				break
			}
			_, ev, _ := q.PopMin()
			totalEvents++
			if cfg.MaxEvents > 0 && totalEvents > cfg.MaxEvents {
				return &supervise.SimError{
					Engine: "seq", LP: 0, Phase: "evaluate", ModeledTime: t,
					Kind:  supervise.KindEventLimit,
					Cause: fmt.Errorf("event limit %d exceeded at time %d (oscillation?)", cfg.MaxEvents, t),
				}
			}
			if val[ev.gate] == ev.value {
				continue
			}
			val[ev.gate] = ev.value
			if lastCompl != nil {
				lastCompl[ev.gate] = ev.compl
			}
			blk.EventsApplied++
			applied++
			if isWatched[ev.gate] {
				rec.Record(t, ev.gate, ev.value)
			}
			for _, out := range c.Fanout[ev.gate] {
				if stamp[out] != epoch {
					stamp[out] = epoch
					dirty = append(dirty, out)
				}
			}
		}
		if initial {
			dirty = dirty[:0]
			for id := range c.Gates {
				if !c.Gates[id].Kind.Source() {
					dirty = append(dirty, circuit.GateID(id))
				}
			}
		}

		// Phase 2: evaluate affected gates against the settled values.
		for _, g := range dirty {
			var out, clkSample logic.Value
			out, clkSample, scratch = circuit.EvalGate(c, g, val, prevClk, scratch)
			prevClk[g] = clkSample
			blk.Evaluations++
			if cfg.Profile {
				res.EvalsByGate[g]++
			}
			var compl float64
			if lastCompl != nil {
				// The evaluation may start once every net it reads (and its
				// own output, whose previous value it extends) is final.
				dep := lastCompl[g]
				for _, f := range c.Gates[g].Fanin {
					if lastCompl[f] > dep {
						dep = lastCompl[f]
					}
				}
				compl = dep + evalStep
				if compl > res.CriticalPath {
					res.CriticalPath = compl
				}
			}
			if out == projected[g] {
				continue
			}
			projected[g] = out
			q.Push(uint64(t+c.Gates[g].Delay), event{gate: g, value: out, compl: compl})
			blk.EventsScheduled++
		}
		blk.Hist(metrics.HistStepEvents).Observe(applied)
		shard.Span(trace.PhaseEvaluate, begin, t)
		return nil
	}

	// Checkpoint capture: nextCk is the next boundary to snapshot; it is
	// captured the moment the next pending event is strictly later.
	var nextCk circuit.Tick
	if cfg.CheckpointEvery > 0 && cfg.Checkpoint != nil {
		nextCk = cfg.CheckpointEvery
		if cfg.Boot != nil {
			nextCk = (circuit.Tick(cfg.Boot.Time)/cfg.CheckpointEvery + 1) * cfg.CheckpointEvery
		}
	}
	var fp string
	capture := func(b circuit.Tick) error {
		if fp == "" {
			fp = ckpt.Fingerprint(c)
		}
		st := &ckpt.State{
			Version: ckpt.Version, Fingerprint: fp,
			Time: uint64(b), Until: uint64(until), System: uint8(cfg.System),
			EndTime:   uint64(endTime),
			Vals:      append([]logic.Value(nil), val...),
			PrevClk:   append([]logic.Value(nil), prevClk...),
			Projected: append([]logic.Value(nil), projected...),
		}
		st.Waveform = ckpt.FromWaveform(trace.Merge(&rec))
		if cfg.Boot != nil {
			st.Waveform = append(append([]ckpt.Sample(nil), cfg.Boot.Waveform...), st.Waveform...)
			if cfg.Boot.EndTime > st.EndTime {
				st.EndTime = cfg.Boot.EndTime
			}
		}
		// Snapshot the pending set by draining and requeuing; ResetFloor
		// lets the ascending repush start below the drain's last pop.
		tmp := make([]event, 0, q.Len())
		times := make([]uint64, 0, q.Len())
		for {
			t64, ev, ok := q.PopMin()
			if !ok {
				break
			}
			times = append(times, t64)
			tmp = append(tmp, ev)
		}
		q.ResetFloor()
		st.Events = make([]ckpt.Event, len(tmp))
		for i, ev := range tmp {
			st.Events[i] = ckpt.Event{Time: times[i], Gate: ev.gate, Value: ev.value}
			q.Push(times[i], ev)
		}
		return cfg.Checkpoint(st)
	}

	var runErr error
	metrics.Do(sink, "seq", 0, "run", func() {
		if cfg.Boot == nil {
			if runErr = step(0, true); runErr != nil {
				return
			}
		}
		for q.Len() > 0 {
			t64, _ := q.PeekTime()
			t := circuit.Tick(t64)
			if t > until {
				break
			}
			for nextCk > 0 && t > nextCk && nextCk <= until {
				if runErr = capture(nextCk); runErr != nil {
					return
				}
				nextCk += cfg.CheckpointEvery
			}
			if runErr = step(t, false); runErr != nil {
				return
			}
			if err := q.Err(); err != nil {
				runErr = &supervise.SimError{
					Engine: "seq", LP: 0, Phase: "eventq", ModeledTime: t,
					Kind: supervise.KindCausality, Cause: err,
				}
				return
			}
		}
	})
	if runErr != nil {
		return nil, runErr
	}

	res.Values = val
	res.Waveform = trace.Merge(&rec)
	res.EndTime = endTime
	res.Counters = blk.LPCounters
	return res, nil
}

// Horizon suggests a simulation end time for a stimulus: the stimulus end
// plus a settling margin of the circuit's combinational depth times its
// maximum gate delay (enough for the last vector to propagate to the
// outputs through any path, plus slack for sequential feedback).
func Horizon(c *circuit.Circuit, stim *vectors.Stimulus) circuit.Tick {
	depth := circuit.Tick(1)
	if levels, err := c.Levelize(); err == nil {
		depth = circuit.Tick(len(levels) + 2)
	}
	max := c.MaxDelay()
	if max == 0 {
		max = 1
	}
	return stim.End + 4*depth*max
}
