package seq

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/eventq"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/sim/supervise"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// WideConfig parameterizes a wide (64-lane) sequential run. The wide path
// supports the two- and four-valued systems only: a Word lane cannot
// represent the nine-valued levels.
type WideConfig struct {
	// System is the logic value system; TwoValued or FourValued.
	System logic.System
	// Queue selects the pending-event set implementation.
	Queue eventq.Impl
	// Watch lists the nets to record; nil watches the primary outputs.
	Watch []circuit.GateID
	// MaxEvents aborts runaway simulations (oscillators); 0 means no limit.
	MaxEvents uint64
	// Metrics receives the run's work counters; nil uses a private
	// registry.
	Metrics metrics.Sink
}

// WideResult is the outcome of a wide run.
type WideResult struct {
	// Values holds the final packed value of every net.
	Values []logic.Word
	// Waveform is the committed whole-word change history of the watched
	// nets; lane k of it equals the scalar waveform of lane k's stimulus.
	Waveform trace.WideWaveform
	// EndTime is the last simulated time processed.
	EndTime circuit.Tick
	// Lanes is the meaningful lane count, copied from the stimulus.
	Lanes int
	// Counters is the run's work tally.
	Counters metrics.LPCounters
}

// wideEvent is a scheduled whole-word net change.
type wideEvent struct {
	gate circuit.GateID
	word logic.Word
}

// RunWide simulates all 64 lanes of the wide stimulus in one pass,
// evaluating 64 vectors per gate operation. The event loop is the scalar
// Run loop verbatim with words for values: an event fires when the word
// differs from the net's current word in any lane. Because the fired
// evaluation times are a superset of every lane's scalar evaluation times
// and gate evaluation is idempotent under unchanged inputs, each lane of
// the resulting waveform is exactly the scalar reference waveform for that
// lane's stimulus.
func RunWide(c *circuit.Circuit, stim *vectors.WideStimulus, until circuit.Tick, cfg WideConfig) (*WideResult, error) {
	if err := c.CheckEventDriven(); err != nil {
		return nil, err
	}
	if cfg.System == 0 {
		cfg.System = logic.FourValued
	}
	if err := logic.CheckWide(cfg.System); err != nil {
		return nil, err
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("seq-wide")
	}
	blk := sink.LP(0)

	val, prevClk := circuit.InitStateWide(c, cfg.System)
	projected := make([]logic.Word, len(val))
	copy(projected, val)

	watched := cfg.Watch
	if watched == nil {
		watched = c.Outputs
	}
	isWatched := make([]bool, len(c.Gates))
	for _, g := range watched {
		isWatched[g] = true
	}

	q := eventq.New[wideEvent](cfg.Queue)
	for _, ch := range stim.Changes {
		if ch.Time > until {
			continue
		}
		q.Push(uint64(ch.Time), wideEvent{gate: ch.Input, word: ch.Word})
		projected[ch.Input] = ch.Word
	}

	res := &WideResult{Lanes: stim.Lanes}
	var rec trace.WideRecorder

	stamp := make([]uint64, len(c.Gates))
	var epoch uint64
	var dirty []circuit.GateID
	var scratch []logic.Word
	var endTime circuit.Tick
	var totalEvents uint64

	step := func(t circuit.Tick, initial bool) error {
		epoch++
		blk.Steps++
		endTime = t
		dirty = dirty[:0]
		applied := uint64(0)

		// Phase 1: apply all word changes for time t.
		for {
			pt, ok := q.PeekTime()
			if !ok || circuit.Tick(pt) != t {
				break
			}
			_, ev, _ := q.PopMin()
			totalEvents++
			if cfg.MaxEvents > 0 && totalEvents > cfg.MaxEvents {
				return &supervise.SimError{
					Engine: "seq-wide", LP: 0, Phase: "evaluate", ModeledTime: t,
					Kind:  supervise.KindEventLimit,
					Cause: fmt.Errorf("event limit %d exceeded at time %d (oscillation?)", cfg.MaxEvents, t),
				}
			}
			if val[ev.gate] == ev.word {
				continue
			}
			val[ev.gate] = ev.word
			blk.EventsApplied++
			applied++
			if isWatched[ev.gate] {
				rec.Record(t, ev.gate, ev.word)
			}
			for _, out := range c.Fanout[ev.gate] {
				if stamp[out] != epoch {
					stamp[out] = epoch
					dirty = append(dirty, out)
				}
			}
		}
		if initial {
			dirty = dirty[:0]
			for id := range c.Gates {
				if !c.Gates[id].Kind.Source() {
					dirty = append(dirty, circuit.GateID(id))
				}
			}
		}

		// Phase 2: evaluate affected gates against the settled words.
		for _, g := range dirty {
			var out, clkSample logic.Word
			out, clkSample, scratch = circuit.EvalGateWide(c, g, val, prevClk, scratch)
			prevClk[g] = clkSample
			blk.Evaluations++
			if out == projected[g] {
				continue
			}
			projected[g] = out
			q.Push(uint64(t+c.Gates[g].Delay), wideEvent{gate: g, word: out})
			blk.EventsScheduled++
		}
		blk.Hist(metrics.HistStepEvents).Observe(applied)
		return nil
	}

	var runErr error
	metrics.Do(sink, "seq-wide", 0, "run", func() {
		if runErr = step(0, true); runErr != nil {
			return
		}
		for q.Len() > 0 {
			t64, _ := q.PeekTime()
			t := circuit.Tick(t64)
			if t > until {
				break
			}
			if runErr = step(t, false); runErr != nil {
				return
			}
			if err := q.Err(); err != nil {
				runErr = &supervise.SimError{
					Engine: "seq-wide", LP: 0, Phase: "eventq", ModeledTime: t,
					Kind: supervise.KindCausality, Cause: err,
				}
				return
			}
		}
	})
	if runErr != nil {
		return nil, runErr
	}

	res.Values = val
	res.Waveform = trace.MergeWide(&rec)
	res.EndTime = endTime
	res.Counters = blk.LPCounters
	return res, nil
}

// WideHorizon is Horizon for a wide stimulus.
func WideHorizon(c *circuit.Circuit, stim *vectors.WideStimulus) circuit.Tick {
	depth := circuit.Tick(1)
	if levels, err := c.Levelize(); err == nil {
		depth = circuit.Tick(len(levels) + 2)
	}
	max := c.MaxDelay()
	if max == 0 {
		max = 1
	}
	return stim.End + 4*depth*max
}
