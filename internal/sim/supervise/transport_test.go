package supervise

import (
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A distributed hang must be diagnosable from the report alone: the
// watchdog attaches per-shard transport state (connection status,
// heartbeat age, unacked backlog) when the engine provides a probe.
func TestWatchdogReportCarriesTransportState(t *testing.T) {
	b := NewBoard(1)
	var got atomic.Value
	wd := Watch(WatchConfig{
		Engine:  "dist-test",
		Timeout: 30 * time.Millisecond,
		Board:   b,
		Transport: func() []TransportState {
			return []TransportState{
				{Shard: 0, Connected: true, LastHeartbeatMs: 12, UnackedBatches: 0, Reconnects: 1},
				{Shard: 1, Connected: false, LastHeartbeatMs: 950, UnackedBatches: 7, Reconnects: 3,
						Frames: 4096, Retransmits: 12, DupsDropped: 5},
			}
		},
		OnHang: func(err error) { got.Store(err) },
	})
	defer wd.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	err, _ := got.Load().(error)
	if err == nil {
		t.Fatal("watchdog did not fire")
	}
	var hr *HangReport
	if !errors.As(err, &hr) {
		t.Fatalf("cause is not a HangReport: %v", err)
	}
	msg := hr.Error()
	idx := strings.Index(msg, "{")
	if idx < 0 {
		t.Fatalf("no JSON body in %q", msg)
	}
	var decoded HangReport
	if err := json.Unmarshal([]byte(msg[idx:]), &decoded); err != nil {
		t.Fatalf("report body does not parse: %v", err)
	}
	if len(decoded.Transport) != 2 {
		t.Fatalf("transport entries = %d, want 2", len(decoded.Transport))
	}
	dead := decoded.Transport[1]
	if dead.Shard != 1 || dead.Connected || dead.LastHeartbeatMs != 950 || dead.UnackedBatches != 7 || dead.Reconnects != 3 {
		t.Errorf("dead-link entry wrong: %+v", dead)
	}
	// Per-link traffic stats must survive the JSON round trip under
	// their wire names, so a hang report distinguishes a link that never
	// carried traffic from one that degraded mid-run.
	if dead.Frames != 4096 || dead.Retransmits != 12 || dead.DupsDropped != 5 {
		t.Errorf("link stats wrong after round trip: %+v", dead)
	}
	for _, field := range []string{`"frames":4096`, `"retransmits":12`, `"dups_dropped":5`} {
		if !strings.Contains(msg[idx:], field) {
			t.Errorf("report JSON missing %s", field)
		}
	}
}
