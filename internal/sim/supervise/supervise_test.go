package supervise

import (
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSimErrorRendering(t *testing.T) {
	cause := errors.New("boom")
	err := &SimError{Engine: "cmb", LP: 3, Phase: "handle", ModeledTime: 42, Kind: KindCausality, Cause: cause}
	msg := err.Error()
	for _, want := range []string{"cmb", "causality", "lp 3", "handle", "t=42", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if !errors.Is(err, cause) {
		t.Error("Unwrap does not reach the cause")
	}
	var se *SimError
	if !errors.As(err, &se) || se.Kind != KindCausality {
		t.Error("errors.As failed to recover the SimError")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindInternal:   "internal",
		KindCausality:  "causality",
		KindHang:       "hang",
		KindPanic:      "panic",
		KindEventLimit: "event-limit",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestFromPanicCarriesStack(t *testing.T) {
	var err *SimError
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = FromPanic("timewarp", 2, "run", 7, r)
			}
		}()
		panic("injected")
	}()
	if err == nil {
		t.Fatal("no error produced")
	}
	if err.Kind != KindPanic || err.LP != 2 || err.ModeledTime != 7 {
		t.Errorf("wrong classification: %+v", err)
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Errorf("panic value lost: %v", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("stack trace lost: %v", err)
	}
}

func TestNilSlotAndBoardAreSafe(t *testing.T) {
	var s *LPSlot
	s.SetLVT(1)
	s.SetNext(2)
	s.SetBound(3)
	s.AddEvents(4)
	s.SetPhase(PhaseRun)
	var b *Board
	if b.LP(0) != nil {
		t.Error("nil board handed out a non-nil slot")
	}
	var w *Watchdog
	w.Stop() // must not panic
}

func TestWatchDisabled(t *testing.T) {
	if Watch(WatchConfig{}) != nil {
		t.Error("zero config should disable the watchdog")
	}
	if Watch(WatchConfig{Timeout: time.Second}) != nil {
		t.Error("missing board/hook should disable the watchdog")
	}
}

func TestWatchdogFiresOnNoProgress(t *testing.T) {
	b := NewBoard(2)
	b.LP(0).SetLVT(10)
	b.LP(1).SetLVT(5)
	b.LP(1).SetPhase(PhaseBlock)
	var got atomic.Value
	wd := Watch(WatchConfig{
		Engine:     "test",
		Timeout:    30 * time.Millisecond,
		Board:      b,
		QueueDepth: func(lp int) int { return lp + 1 },
		OnHang:     func(err error) { got.Store(err) },
	})
	defer wd.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	err, _ := got.Load().(error)
	if err == nil {
		t.Fatal("watchdog did not fire")
	}
	var se *SimError
	if !errors.As(err, &se) || se.Kind != KindHang {
		t.Fatalf("expected a KindHang SimError, got %v", err)
	}
	if se.ModeledTime != 5 {
		t.Errorf("ModeledTime = %d, want the minimum LVT 5", se.ModeledTime)
	}
	var hr *HangReport
	if !errors.As(err, &hr) {
		t.Fatalf("cause is not a HangReport: %v", se.Cause)
	}
	// The report must be machine-readable: its JSON body parses back.
	msg := hr.Error()
	idx := strings.Index(msg, "{")
	if idx < 0 {
		t.Fatalf("no JSON body in %q", msg)
	}
	var decoded HangReport
	if err := json.Unmarshal([]byte(msg[idx:]), &decoded); err != nil {
		t.Fatalf("report body does not parse: %v", err)
	}
	if len(decoded.LPs) != 2 || decoded.Engine != "test" {
		t.Errorf("decoded report wrong: %+v", decoded)
	}
	if decoded.LPs[1].Phase != "blocked" || decoded.LPs[1].LVT != 5 || decoded.LPs[1].MailboxDepth != 2 {
		t.Errorf("per-LP detail wrong: %+v", decoded.LPs[1])
	}
}

func TestWatchdogStaysQuietUnderProgress(t *testing.T) {
	b := NewBoard(1)
	var fired atomic.Bool
	wd := Watch(WatchConfig{
		Engine:  "test",
		Timeout: 60 * time.Millisecond,
		Board:   b,
		OnHang:  func(error) { fired.Store(true) },
	})
	for i := 0; i < 20; i++ {
		b.LP(0).AddEvents(1)
		time.Sleep(10 * time.Millisecond)
	}
	wd.Stop()
	wd.Stop() // idempotent
	if fired.Load() {
		t.Error("watchdog fired despite steady progress")
	}
}
