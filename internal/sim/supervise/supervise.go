// Package supervise is the fault-isolation layer shared by every
// simulation engine: a structured SimError classifying how a run died
// (panic, hang, causality violation, event limit), a panic-capture
// helper for per-LP goroutines, and a progress watchdog that turns a
// wedged run into a machine-readable hang report instead of an
// indefinite block.
//
// Like package inject, it deliberately sits below the engines in the
// import graph (it imports only internal/circuit and the standard
// library), so engines can report through it without a cycle: engines
// import supervise, core imports the engines and re-exports SimError.
package supervise

import (
	"bytes"
	"fmt"
	"runtime/debug"

	"repro/internal/circuit"
)

// Kind classifies a simulation failure. The parsim CLI maps kinds to
// process exit codes, so the set is part of the tool's interface.
type Kind uint8

// The failure classes.
const (
	// KindInternal is an unclassified engine failure.
	KindInternal Kind = iota
	// KindCausality is a protocol violation: an event or message arrived
	// in an LP's past (straggler below GVT, value below LVT, or an
	// eventq push below its floor).
	KindCausality
	// KindHang is a watchdog verdict: no LP made progress for the
	// configured deadline. The Cause is a *HangReport.
	KindHang
	// KindPanic is a recovered per-LP (or coordinator) panic.
	KindPanic
	// KindEventLimit is the MaxEvents runaway guard tripping; it is
	// deterministic for a given workload, so supervisors must not retry.
	KindEventLimit
	// KindShardLoss is a distributed-run verdict: a worker shard was lost
	// (crash, hang, or network partition) and the coordinator exhausted
	// its checkpoint-restart budget without completing the run.
	KindShardLoss
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInternal:
		return "internal"
	case KindCausality:
		return "causality"
	case KindHang:
		return "hang"
	case KindPanic:
		return "panic"
	case KindEventLimit:
		return "event-limit"
	case KindShardLoss:
		return "shard-loss"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// SimError is the structured failure every engine reports: which
// engine, which LP (-1 when the failure is not attributable to one),
// the execution phase, the modeled time the LP had reached, the failure
// class, and the underlying cause.
type SimError struct {
	Engine      string
	LP          int
	Phase       string
	ModeledTime circuit.Tick
	Kind        Kind
	Cause       error
}

// Error renders the failure with its classification up front.
func (e *SimError) Error() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s: %s", e.Engine, e.Kind)
	if e.LP >= 0 {
		fmt.Fprintf(&b, " at lp %d", e.LP)
	}
	if e.Phase != "" {
		fmt.Fprintf(&b, " in %s", e.Phase)
	}
	fmt.Fprintf(&b, " (t=%d)", e.ModeledTime)
	if e.Cause != nil {
		fmt.Fprintf(&b, ": %v", e.Cause)
	}
	return b.String()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *SimError) Unwrap() error { return e.Cause }

// FromPanic converts a recovered panic value into a SimError carrying a
// trimmed stack trace. Engines call it from the deferred recover at the
// top of each LP goroutine.
func FromPanic(engine string, lp int, phase string, t circuit.Tick, r any) *SimError {
	return &SimError{
		Engine: engine, LP: lp, Phase: phase, ModeledTime: t, Kind: KindPanic,
		Cause: fmt.Errorf("panic: %v\n%s", r, trimStack(debug.Stack())),
	}
}

// trimStack keeps the head of a debug.Stack dump: the goroutine line
// and the innermost frames, which is where the panic site is.
func trimStack(stack []byte) []byte {
	const maxLines = 16
	n := 0
	for i, b := range stack {
		if b == '\n' {
			n++
			if n == maxLines {
				return append(bytes.TrimRight(stack[:i], "\n"), []byte("\n\t...")...)
			}
		}
	}
	return bytes.TrimRight(stack, "\n")
}
