package supervise

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
)

// PhaseID is the coarse LP state published to the watchdog scoreboard.
type PhaseID uint32

// The published phases.
const (
	PhaseInit PhaseID = iota
	PhaseRun
	PhaseBlock
	PhaseBarrier
	PhaseDone
)

// String names the phase.
func (p PhaseID) String() string {
	switch p {
	case PhaseInit:
		return "init"
	case PhaseRun:
		return "run"
	case PhaseBlock:
		return "blocked"
	case PhaseBarrier:
		return "barrier"
	case PhaseDone:
		return "done"
	}
	return fmt.Sprintf("PhaseID(%d)", uint32(p))
}

// LPSlot is one LP's atomic scoreboard entry. Engines publish local
// virtual time, the next pending event time, the incoming channel bound
// (safe time or GVT), the processed-event count, and the coarse phase;
// the watchdog reads them racily but atomically. All methods are
// nil-safe so engines can publish unconditionally whether or not a
// watchdog is attached.
type LPSlot struct {
	lvt    atomic.Uint64
	next   atomic.Uint64
	bound  atomic.Uint64
	events atomic.Uint64
	phase  atomic.Uint32
}

// SetLVT publishes the LP's local virtual time.
func (s *LPSlot) SetLVT(t uint64) {
	if s != nil {
		s.lvt.Store(t)
	}
}

// SetNext publishes the LP's next pending event time.
func (s *LPSlot) SetNext(t uint64) {
	if s != nil {
		s.next.Store(t)
	}
}

// SetBound publishes the LP's incoming bound (CMB safe time, TW GVT).
func (s *LPSlot) SetBound(t uint64) {
	if s != nil {
		s.bound.Store(t)
	}
}

// AddEvents counts processed events (any monotone work measure).
func (s *LPSlot) AddEvents(n uint64) {
	if s != nil {
		s.events.Add(n)
	}
}

// SetPhase publishes the LP's coarse execution phase.
func (s *LPSlot) SetPhase(p PhaseID) {
	if s != nil {
		s.phase.Store(uint32(p))
	}
}

// Board is the per-run scoreboard: one LPSlot per LP. A nil *Board
// hands out nil slots, so engines create it only when a watchdog is
// requested.
type Board struct {
	slots []LPSlot
}

// NewBoard allocates a scoreboard for n LPs.
func NewBoard(n int) *Board { return &Board{slots: make([]LPSlot, n)} }

// LP returns the i-th slot (nil on a nil board).
func (b *Board) LP(i int) *LPSlot {
	if b == nil {
		return nil
	}
	return &b.slots[i]
}

// Utilization snapshots the per-LP processed-event counts — the live
// utilization scoreboard. Unlike the metrics blocks (written without
// atomics by the LP goroutines), slots are atomic, so this is safe to
// read at any time; the adaptive controllers sample it to detect load
// imbalance. Nil boards report nil.
func (b *Board) Utilization() []uint64 {
	if b == nil {
		return nil
	}
	out := make([]uint64, len(b.slots))
	for i := range b.slots {
		out[i] = b.slots[i].events.Load()
	}
	return out
}

// progress folds every slot into one monotone progress measure: any
// LVT advance, bound advance, or processed event changes the sum.
func (b *Board) progress() uint64 {
	var sum uint64
	for i := range b.slots {
		s := &b.slots[i]
		sum += s.lvt.Load() + s.bound.Load() + s.events.Load()
	}
	return sum
}

// LPReport is one LP's state in a hang report.
type LPReport struct {
	LP           int    `json:"lp"`
	Phase        string `json:"phase"`
	LVT          uint64 `json:"lvt"`
	NextEvent    uint64 `json:"next_event"`
	Bound        uint64 `json:"bound"`
	Events       uint64 `json:"events"`
	MailboxDepth int    `json:"mailbox_depth"`
}

// TransportState is one peer link's state in a hang report. Distributed
// runs attach one entry per shard connection, so a distributed hang is
// diagnosable from the report alone: a dead or partitioned link shows
// up as Connected=false or a stale LastHeartbeatMs, and a send-side
// stall as a growing unacked backlog.
type TransportState struct {
	// Shard is the peer shard index.
	Shard int `json:"shard"`
	// Connected reports whether the link currently has a live connection.
	Connected bool `json:"connected"`
	// LastHeartbeatMs is the age of the most recent heartbeat (or any
	// frame) received from the peer, in milliseconds; -1 if none yet.
	LastHeartbeatMs int64 `json:"last_heartbeat_ms"`
	// UnackedBatches is the number of sequenced frames sent but not yet
	// acknowledged by the peer.
	UnackedBatches int `json:"unacked_batches"`
	// Reconnects counts completed reconnections on this link.
	Reconnects uint64 `json:"reconnects"`
	// Frames counts sequenced frames delivered in order on this link;
	// under a mesh topology a partitioned peer link shows up as a Frames
	// counter that stops advancing while others keep climbing.
	Frames uint64 `json:"frames"`
	// Retransmits counts sequenced frames written more than once
	// (reconnect replays); a climbing count flags a flapping link.
	Retransmits uint64 `json:"retransmits"`
	// DupsDropped counts duplicate sequenced frames absorbed by the
	// receive-side dedup.
	DupsDropped uint64 `json:"dups_dropped"`
}

// HangReport is the machine-readable diagnostic the watchdog emits when
// no LP makes progress for the deadline. It implements error and
// renders as a one-line prefix followed by the JSON body, so both
// humans and tools can consume it from stderr.
type HangReport struct {
	Engine       string     `json:"engine"`
	NoProgressMs int64      `json:"no_progress_ms"`
	LPs          []LPReport `json:"lps"`
	// Transport is the per-shard link state of a distributed run; empty
	// for single-process runs.
	Transport []TransportState `json:"transport,omitempty"`
}

// Error renders the report with the JSON body inline.
func (r *HangReport) Error() string {
	body, err := json.Marshal(r)
	if err != nil {
		return fmt.Sprintf("no progress for %dms (report marshal failed: %v)", r.NoProgressMs, err)
	}
	return fmt.Sprintf("no progress for %dms; hang report: %s", r.NoProgressMs, body)
}

// WatchConfig configures a progress watchdog.
type WatchConfig struct {
	// Engine names the watched engine in reports.
	Engine string
	// Timeout is the no-progress deadline; zero disables the watchdog
	// (Watch returns nil).
	Timeout time.Duration
	// Board is the scoreboard the engine publishes to.
	Board *Board
	// QueueDepth probes an LP's mailbox depth for the report; may be nil.
	QueueDepth func(lp int) int
	// Transport snapshots per-shard link state for the report; may be
	// nil (single-process runs).
	Transport func() []TransportState
	// OnHang receives the *SimError (Kind KindHang, Cause *HangReport)
	// when the deadline trips. It is called once, from the watchdog
	// goroutine; engines pass their abort-everything fail hook.
	OnHang func(error)
}

// Watchdog monitors a Board and fails the run when progress stops. The
// zero deadline disables it; Stop is nil-safe and idempotent, so
// engines can `defer wd.Stop()` unconditionally.
type Watchdog struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// Watch starts a watchdog goroutine, or returns nil when disabled.
func Watch(cfg WatchConfig) *Watchdog {
	if cfg.Timeout <= 0 || cfg.Board == nil || cfg.OnHang == nil {
		return nil
	}
	w := &Watchdog{stop: make(chan struct{}), done: make(chan struct{})}
	go w.run(cfg)
	return w
}

// Stop terminates the watchdog and waits for its goroutine to exit.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.once.Do(func() { close(w.stop) })
	<-w.done
}

func (w *Watchdog) run(cfg WatchConfig) {
	defer close(w.done)
	poll := cfg.Timeout / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	if poll > 250*time.Millisecond {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	last := cfg.Board.progress()
	stuck := time.Duration(0)
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		if cur := cfg.Board.progress(); cur != last {
			last, stuck = cur, 0
			continue
		}
		if stuck += poll; stuck < cfg.Timeout {
			continue
		}
		rep := w.report(cfg, stuck)
		minLVT := ^uint64(0)
		for _, lp := range rep.LPs {
			if lp.LVT < minLVT {
				minLVT = lp.LVT
			}
		}
		cfg.OnHang(&SimError{
			Engine: cfg.Engine, LP: -1, Phase: "watchdog",
			ModeledTime: circuit.Tick(minLVT), Kind: KindHang, Cause: rep,
		})
		return
	}
}

// report snapshots the scoreboard into a HangReport.
func (w *Watchdog) report(cfg WatchConfig, stuck time.Duration) *HangReport {
	rep := &HangReport{Engine: cfg.Engine, NoProgressMs: stuck.Milliseconds()}
	for i := range cfg.Board.slots {
		s := &cfg.Board.slots[i]
		lr := LPReport{
			LP:        i,
			Phase:     PhaseID(s.phase.Load()).String(),
			LVT:       s.lvt.Load(),
			NextEvent: s.next.Load(),
			Bound:     s.bound.Load(),
			Events:    s.events.Load(),
		}
		if cfg.QueueDepth != nil {
			lr.MailboxDepth = cfg.QueueDepth(i)
		}
		rep.LPs = append(rep.LPs, lr)
	}
	if cfg.Transport != nil {
		rep.Transport = cfg.Transport()
	}
	return rep
}
