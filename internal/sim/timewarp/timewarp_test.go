package timewarp

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/simtest"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// variants enumerates the policy combinations under test.
var variants = []struct {
	name string
	cfg  func(Config) Config
}{
	{"aggressive-incremental", func(c Config) Config { return c }},
	{"aggressive-fullcopy", func(c Config) Config { c.StateSaving = FullCopy; return c }},
	{"lazy-incremental", func(c Config) Config { c.Cancellation = Lazy; return c }},
	{"lazy-fullcopy", func(c Config) Config { c.Cancellation = Lazy; c.StateSaving = FullCopy; return c }},
	{"windowed", func(c Config) Config { c.Window = 50; return c }},
}

// TestMatchesSequentialReference is the core equivalence suite for the
// optimistic engine across every policy combination.
func TestMatchesSequentialReference(t *testing.T) {
	corpus, err := simtest.StandardCorpus(29)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range corpus {
		until := seq.Horizon(cs.C, cs.Stim)
		ref, err := seq.Run(cs.C, cs.Stim, until, seq.Config{System: logic.TwoValued})
		if err != nil {
			t.Fatalf("%s: seq: %v", cs.Name, err)
		}
		for _, v := range variants {
			for _, k := range []int{1, 2, 4} {
				p, err := partition.New(partition.MethodFM, cs.C, k, partition.Options{Seed: 5})
				if err != nil {
					t.Fatal(err)
				}
				cfg := v.cfg(Config{Partition: p, System: logic.TwoValued})
				res, err := Run(cs.C, cs.Stim, until, cfg)
				if err != nil {
					t.Fatalf("%s %s k=%d: %v", cs.Name, v.name, k, err)
				}
				if d := trace.Diff(ref.Waveform, res.Waveform, 5); d != "" {
					t.Fatalf("%s %s k=%d waveform mismatch:\n%s", cs.Name, v.name, k, d)
				}
				for g := range ref.Values {
					if ref.Values[g] != res.Values[g] {
						t.Fatalf("%s %s k=%d: value mismatch at gate %d: %v vs %v",
							cs.Name, v.name, k, g, ref.Values[g], res.Values[g])
					}
				}
			}
		}
	}
}

// TestRandomPartitionsStress drives maximum cross-LP traffic and therefore
// maximum rollback pressure.
func TestRandomPartitionsStress(t *testing.T) {
	c, err := gen.RandomSeq(gen.RandomConfig{Gates: 300, Inputs: 10, Outputs: 6, Seed: 31, FFRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 20, HalfPeriod: 25, Activity: 0.7, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	ref, err := seq.Run(c, stim, until, seq.Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		p, err := partition.New(partition.MethodRandom, c, 5, partition.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range variants {
			cfg := v.cfg(Config{Partition: p, System: logic.TwoValued})
			res, err := Run(c, stim, until, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, v.name, err)
			}
			if d := trace.Diff(ref.Waveform, res.Waveform, 3); d != "" {
				t.Fatalf("seed %d %s mismatch:\n%s", seed, v.name, d)
			}
		}
	}
}

// TestRepeatedRunsDeterministicResult checks that despite nondeterministic
// execution interleavings (rollback counts vary run to run), the committed
// result never does.
func TestRepeatedRunsDeterministicResult(t *testing.T) {
	c, err := gen.ArrayMultiplier(5, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 15, Period: 40, Activity: 0.8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	p, err := partition.New(partition.MethodRandom, c, 4, partition.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var first *Result
	for i := 0; i < 5; i++ {
		res, err := Run(c, stim, until, Config{Partition: p, System: logic.TwoValued})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if d := trace.Diff(first.Waveform, res.Waveform, 3); d != "" {
			t.Fatalf("run %d produced different committed waveform:\n%s", i, d)
		}
	}
}

func TestStatsAndStateSavingVolume(t *testing.T) {
	c, err := gen.ArrayMultiplier(5, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 15, Period: 40, Activity: 0.8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	p, err := partition.New(partition.MethodFM, c, 4, partition.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Run(c, stim, until, Config{Partition: p, System: logic.TwoValued, StateSaving: Incremental})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(c, stim, until, Config{Partition: p, System: logic.TwoValued, StateSaving: FullCopy})
	if err != nil {
		t.Fatal(err)
	}
	ti, tf := inc.Stats.Total(), full.Stats.Total()
	if ti.Evaluations == 0 || tf.Evaluations == 0 {
		t.Fatal("no work recorded")
	}
	if ti.StateSavedWords == 0 || tf.StateSavedWords == 0 {
		t.Fatal("no state saving recorded")
	}
	// The paper: incremental state saving is crucial — full copies move
	// far more data. This is structural (full copies scale with LP state
	// size, undo logs with change volume), so assert a big gap.
	if tf.StateSavedWords < 3*ti.StateSavedWords {
		t.Fatalf("full-copy volume (%d words) not clearly above incremental (%d words)",
			tf.StateSavedWords, ti.StateSavedWords)
	}
	if inc.Stats.GVTRounds == 0 {
		t.Log("note: run finished before the first GVT round")
	}
	if inc.GVT == 0 {
		t.Fatal("final GVT not reported")
	}
}

func TestWindowLimitsOptimism(t *testing.T) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 400, Inputs: 10, Outputs: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 30, Period: 30, Activity: 0.6, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	ref, err := seq.Run(c, stim, until, seq.Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(partition.MethodFM, c, 4, partition.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, stim, until, Config{Partition: p, System: logic.TwoValued, Window: 20})
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(ref.Waveform, res.Waveform, 3); d != "" {
		t.Fatalf("windowed mismatch:\n%s", d)
	}
}

func TestMaxEventsAborts(t *testing.T) {
	c, err := gen.ArrayMultiplier(6, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 40, Period: 40, Activity: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := partition.New(partition.MethodContiguous, c, 4, partition.Options{})
	if _, err := Run(c, stim, seq.Horizon(c, stim), Config{
		Partition: p, System: logic.TwoValued, MaxEvents: 100,
	}); err == nil {
		t.Fatal("event limit not enforced")
	}
}

func TestConfigValidation(t *testing.T) {
	c, _ := gen.RippleAdder(2, gen.Unit)
	stim, _ := vectors.Random(c, vectors.RandomConfig{Vectors: 1, Period: 5, Activity: 1, Seed: 0})
	if _, err := Run(c, stim, 10, Config{}); err == nil {
		t.Fatal("missing partition accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if Aggressive.String() != "aggressive" || Lazy.String() != "lazy" {
		t.Fatal("cancellation names wrong")
	}
	if Incremental.String() != "incremental" || FullCopy.String() != "full-copy" {
		t.Fatal("state saving names wrong")
	}
	if Cancellation(9).String() != "Cancellation(9)" || StateSaving(9).String() != "StateSaving(9)" {
		t.Fatal("unknown policy names wrong")
	}
}
