package timewarp

import (
	"testing"
	"time"

	"repro/internal/eventq"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// TestFrequentGVTStress runs with a pathologically small GVT interval:
// each pause-the-world round perturbs LP progress and multiplies
// rollbacks, exercising deep rollback, fossil collection, and lazy
// cancellation flushing far harder than the default pacing. Correctness
// must be untouched.
func TestFrequentGVTStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	c, err := gen.RandomSeq(gen.RandomConfig{Gates: 400, Inputs: 10, Outputs: 8, Seed: 77, FFRatio: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 20, HalfPeriod: 30, Activity: 0.7, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	ref, err := seq.Run(c, stim, until, seq.Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(partition.MethodRandom, c, 6, partition.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cancel := range []Cancellation{Aggressive, Lazy} {
		for _, ss := range []StateSaving{Incremental, FullCopy} {
			res, err := Run(c, stim, until, Config{
				Partition: p, System: logic.TwoValued,
				Cancellation: cancel, StateSaving: ss,
				GVTInterval: 200 * time.Microsecond,
				Window:      25,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", cancel, ss, err)
			}
			if d := trace.Diff(ref.Waveform, res.Waveform, 5); d != "" {
				t.Fatalf("%v/%v mismatch under GVT stress:\n%s", cancel, ss, d)
			}
		}
	}
}

// TestQueueImplementations runs Time Warp over every pending-event set —
// the rollback path calls ResetFloor, which only these runs exercise on
// the calendar queue and timing wheel.
func TestQueueImplementations(t *testing.T) {
	c, err := gen.ArrayMultiplier(4, gen.Fine(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 20, Period: 50, Activity: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	ref, err := seq.Run(c, stim, until, seq.Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(partition.MethodRandom, c, 4, partition.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, impl := range []eventq.Impl{eventq.ImplHeap, eventq.ImplCalendar, eventq.ImplWheel} {
		res, err := Run(c, stim, until, Config{
			Partition: p, System: logic.TwoValued, Queue: impl,
			GVTInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if d := trace.Diff(ref.Waveform, res.Waveform, 5); d != "" {
			t.Fatalf("%v mismatch:\n%s", impl, d)
		}
		if res.Stats.Total().Rollbacks == 0 {
			t.Logf("note: %v run had no rollbacks", impl)
		}
	}
}

// TestManyLPsSparseGates pushes granularity to the extreme the paper warns
// about: nearly one gate per LP.
func TestManyLPsSparseGates(t *testing.T) {
	c, err := gen.RippleAdder(8, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 10, Period: 60, Activity: 0.8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	ref, err := seq.Run(c, stim, until, seq.Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	lps := c.NumGates() / 2
	p, err := partition.New(partition.MethodRandom, c, lps, partition.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, stim, until, Config{Partition: p, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(ref.Waveform, res.Waveform, 5); d != "" {
		t.Fatalf("near-one-gate-per-LP mismatch:\n%s", d)
	}
}
