package timewarp

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/dist/wire"
	"repro/internal/logic"
	"repro/internal/sim/supervise"
)

// checkDist validates a distributed configuration. The Time Warp
// protocol itself distributes — values and anti-messages are
// point-to-point and GVT becomes the seam's hub-driven conversation —
// but the single-coordinator control loops that need a frozen global
// view do not: the memory throttle and the adaptive window controller
// both sample every LP's state during the pause, and hybrid clusters
// barrier inside one process.
func checkDist(cfg Config) error {
	if cfg.Dist == nil {
		return nil
	}
	if cfg.IntraWorkers > 1 {
		return fmt.Errorf("timewarp: distributed runs do not support hybrid intra-LP clusters")
	}
	if cfg.HistoryLimit > 0 {
		return fmt.Errorf("timewarp: distributed runs do not support the history-limit memory throttle")
	}
	if cfg.Adapt != nil {
		return fmt.Errorf("timewarp: distributed runs do not support the adaptive window controller")
	}
	return nil
}

// wireEncScalar projects a scalar Time Warp message onto the wire
// format; ID carries the message identity anti-message annihilation
// keys on.
func wireEncScalar(m msg[logic.Value]) wire.Msg {
	return wire.Msg{
		Kind:  uint8(m.kind),
		From:  int32(m.from),
		ID:    m.id,
		Time:  uint64(m.time),
		Gate:  int32(m.gate),
		Value: uint8(m.value),
	}
}

// wireDecScalar is the inverse projection.
func wireDecScalar(w wire.Msg) msg[logic.Value] {
	return msg[logic.Value]{
		kind:  msgKind(w.Kind),
		from:  int(w.From),
		id:    w.ID,
		time:  circuit.Tick(w.Time),
		gate:  circuit.GateID(w.Gate),
		value: logic.Value(w.Value),
	}
}

// distOutbox is the remote half of the transport seam: an
// mpsc.Transport standing in for a remote LP's mailbox, whose PutAll
// encodes the batch and hands it to the socket seam as one frame (so
// batch atomicity and per-sender FIFO — which annihilation depends on —
// survive the wire). Values and anti-messages leave the local transit
// ledger here, after the seam has counted them into its wire-sent
// ledger, so no GVT round can observe them in neither: local quiescence
// covers buffered messages, the Mattern counts cover the wire.
type distOutbox[V comparable] struct {
	sh  *shared[V]
	dst int
	enc func(msg[V]) wire.Msg
}

func (o *distOutbox[V]) Put(m msg[V]) { o.PutAll([]msg[V]{m}) }

func (o *distOutbox[V]) PutAll(ms []msg[V]) {
	if len(ms) == 0 {
		return
	}
	ws := make([]wire.Msg, len(ms))
	counted := int64(0)
	for i, m := range ms {
		ws[i] = o.enc(m)
		if m.kind == msgValue || m.kind == msgAnti {
			counted++
		}
	}
	o.sh.cfg.Dist.Send(o.dst, ws)
	if counted > 0 {
		o.sh.transit.Add(-counted)
	}
}

func (o *distOutbox[V]) TryDrain(buf []msg[V]) []msg[V]          { return buf }
func (o *distOutbox[V]) WaitDrain(buf []msg[V]) ([]msg[V], bool) { return buf, false }
func (o *distOutbox[V]) Poke()                                   {}
func (o *distOutbox[V]) Close()                                  {}
func (o *distOutbox[V]) Len() int                                { return 0 }

// bindDist wires the seam to this worker's local mailboxes: inbound
// batches decode and deliver with one PutAll, a link failure aborts the
// run (and CancelWait in fail unblocks the GVT loop), and the heartbeat
// probe reads the shared event counter plus the all-idle flag the hub
// paces GVT rounds on. Returns the deferred unhook.
func bindDist[V comparable](sh *shared[V], engine string, dec func(wire.Msg) msg[V], nLocal int) func() {
	dist := sh.cfg.Dist
	for i := range sh.inboxes {
		if !dist.Local(i) {
			continue
		}
		ib := sh.inboxes[i]
		dist.Bind(i, func(ws []wire.Msg) {
			batch := make([]msg[V], len(ws))
			for j, w := range ws {
				batch[j] = dec(w)
			}
			ib.PutAll(batch)
		})
	}
	dist.OnDown(func(err error) {
		sh.fail(&supervise.SimError{
			Engine: engine, LP: -1, Phase: "transport",
			Kind: supervise.KindInternal, Cause: err,
		})
	})
	dist.SetProgress(func() (uint64, bool) {
		return sh.events.Load(), sh.idle.Load() == int64(nLocal)
	})
	return func() {
		dist.OnDown(nil)
		dist.SetProgress(nil)
	}
}

// distCoordinate is the worker half of distributed GVT. The hub owns
// pacing and conclusion — it repeats rounds until every shard reports
// quiet with matching, stable wire counts (Mattern-style message
// counting) — while this loop answers each round exactly like the
// single-process coordinator's inner collection: freeze processing,
// poll the local LPs through their inboxes, and fold their replies into
// one report. A concluded GVT is applied by the same msgGVTDone /
// msgTerminate broadcast the local protocol uses, so the LPs cannot
// tell the difference.
func distCoordinate[V comparable](sh *shared[V], localLPs []int) (uint64, circuit.Tick) {
	dist := sh.cfg.Dist
	var rounds uint64
	gvt := circuit.Tick(0)
	for {
		cmd, err := dist.GVTNext()
		if err != nil {
			// Link death or engine abort; fail is idempotent and the
			// transport OnDown hook usually got there first.
			sh.fail(&supervise.SimError{
				Engine: sh.engine, LP: -1, Phase: "gvt",
				Kind: supervise.KindInternal, Cause: err,
			})
			return rounds, gvt
		}
		switch cmd.Kind {
		case wire.CmdRound:
			sh.paused.Store(true)
			for _, i := range localLPs {
				sh.inboxes[i].Put(msg[V]{kind: msgGVTRound})
			}
			var handled uint64
			localMin := infTick
			for k := 0; k < len(localLPs); {
				select {
				case r := <-sh.replies:
					handled += r.handled
					if r.localMin < localMin {
						localMin = r.localMin
					}
					k++
				case <-time.After(5 * time.Millisecond):
					if sh.abort.Load() {
						sh.paused.Store(false)
						return rounds, gvt
					}
				}
			}
			if sh.abort.Load() {
				sh.paused.Store(false)
				return rounds, gvt
			}
			rounds++
			quiet := handled == 0 && sh.transit.Load() == 0
			dist.GVTReport(cmd.Round, quiet, uint64(localMin))
		case wire.CmdDone:
			gvt = circuit.Tick(cmd.GVT)
			sh.paused.Store(false)
			for _, i := range localLPs {
				sh.inboxes[i].Put(msg[V]{kind: msgGVTDone, time: gvt})
			}
		case wire.CmdTerminate:
			gvt = circuit.Tick(cmd.GVT)
			for _, i := range localLPs {
				sh.inboxes[i].Put(msg[V]{kind: msgTerminate})
			}
			sh.paused.Store(false)
			return rounds, gvt
		}
	}
}
