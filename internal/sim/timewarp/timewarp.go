// Package timewarp implements optimistic asynchronous simulation with the
// Time Warp mechanism of Jefferson.
//
// Logical processes execute events speculatively, as soon as they are
// available, with no safety check. Causality is repaired after the fact: a
// straggler message older than the local clock triggers a rollback that
// restores saved state, requeues the affected input events, and cancels
// previously sent messages with anti-messages. Both state-saving policies
// from the paper are implemented — full per-step copies and incremental
// undo logs ("frequently only the change in state is saved") — as are both
// cancellation policies, aggressive (cancel on rollback) and Gafni's lazy
// cancellation (cancel only once re-execution shows the message is not
// regenerated).
//
// Global virtual time is computed by a coordinator with a pause-the-world
// round protocol: processing is frozen, message-handling rounds repeat
// until nothing is in transit and nothing was handled, and GVT is then the
// minimum unprocessed event time. Fossil collection frees history older
// than GVT, and an optional moving time window bounds optimism to
// GVT + Window, one of the "control" mechanisms the paper's future
// directions discuss.
//
// The Time Warp protocol itself — speculation, rollback, anti-messages,
// GVT, fossil collection — never inspects a signal value; it only moves
// them, compares them, and saves them. The implementation is therefore
// generic over the value type: runCore and the tlp machinery in lp.go are
// instantiated with logic.Value for scalar runs (Run) and logic.Word for
// 64-lane wide runs (RunWide), with the value-specific pieces (stimulus
// projection, kernel construction, waveform recording) injected by the two
// wrappers.
package timewarp

import (
	"fmt"
	gosync "sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/dist/wire"
	"repro/internal/eventq"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/mpsc"
	"repro/internal/partition"
	"repro/internal/sim/adapt"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/kernel"
	"repro/internal/sim/supervise"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Cancellation selects the anti-message policy.
type Cancellation uint8

// The cancellation policies.
const (
	Aggressive Cancellation = iota
	Lazy
)

// String names the policy.
func (c Cancellation) String() string {
	switch c {
	case Aggressive:
		return "aggressive"
	case Lazy:
		return "lazy"
	}
	return fmt.Sprintf("Cancellation(%d)", uint8(c))
}

// StateSaving selects the checkpointing policy.
type StateSaving uint8

// The state-saving policies.
const (
	Incremental StateSaving = iota
	FullCopy
)

// String names the policy.
func (s StateSaving) String() string {
	switch s {
	case Incremental:
		return "incremental"
	case FullCopy:
		return "full-copy"
	}
	return fmt.Sprintf("StateSaving(%d)", uint8(s))
}

// Config parameterizes an optimistic run.
type Config struct {
	// Partition assigns gates to LPs; required.
	Partition *partition.Partition
	// Cancellation selects aggressive or lazy anti-messages.
	Cancellation Cancellation
	// StateSaving selects incremental undo logs or full per-step copies.
	StateSaving StateSaving
	// Window, when non-zero, bounds optimism: an LP does not execute
	// events later than GVT + Window (the moving-time-window control).
	Window circuit.Tick
	// GVTInterval is the wall-clock ceiling between GVT computations; zero
	// uses a 50ms default. GVT is normally paced by work, not wall time: a
	// round starts once the run has processed about sixteen events per
	// gate since the previous round, or immediately when every LP goes
	// idle (so termination latency never depends on the interval). GVT is
	// a pause-the-world protocol here and each pause perturbs the LPs'
	// relative progress enough to induce extra rollback, so pacing by work
	// keeps the perturbation proportional to useful progress at every
	// circuit size.
	GVTInterval time.Duration
	// IntraWorkers, when > 1, enables hierarchical (hybrid) execution:
	// each LP evaluates its per-timestep dirty set across this many
	// barrier-synchronized sub-workers (a synchronous cluster), while the
	// clusters synchronize optimistically among themselves. This is the
	// hierarchical scheme of the paper's future-directions section; the
	// hybrid engine package wraps it.
	IntraWorkers int
	// Cost prices intra-cluster critical-path accounting when
	// IntraWorkers > 1; the zero value uses the default model.
	Cost stats.CostModel
	// System is the logic value system.
	System logic.System
	// Queue selects each LP's pending-event set implementation.
	Queue eventq.Impl
	// Watch lists nets to record; nil watches primary outputs.
	Watch []circuit.GateID
	// MaxEvents aborts runaway simulations; 0 means no limit.
	MaxEvents uint64
	// Metrics receives per-LP counters and GVT globals; nil uses a private
	// registry.
	Metrics metrics.Sink
	// Tracer, when non-nil, records per-LP evaluate/rollback/block spans
	// and coordinator GVT spans.
	Tracer *trace.Tracer
	// Chaos, when non-nil, wraps every LP inbox in the fault-injecting
	// chaos transport and enables stall points at the
	// evaluate/rollback/block boundaries. Test harness use only; nil
	// leaves the hot path on the raw mailboxes.
	Chaos *inject.Hook
	// HangTimeout, when non-zero, arms a progress watchdog: if no LP
	// advances its clock, bound, or event count for this long, the run
	// aborts with a machine-readable hang report instead of blocking
	// forever.
	HangTimeout time.Duration
	// HistoryLimit, when non-zero, bounds the total words of saved
	// rollback history (undo logs, snapshots, step records) across all
	// LPs. When the bound is exceeded the coordinator forces an immediate
	// GVT round (aggressive fossil collection) and clamps the optimism
	// window until memory falls below half the limit.
	HistoryLimit uint64
	// Boot, when non-nil, resumes from a checkpoint instead of time zero:
	// LP state planes are seeded from the snapshot, the pending-event
	// queue is reloaded from it, the stimulus is ignored (the checkpoint
	// queue already holds every future stimulus change), and the
	// time-zero settling step is skipped. The returned waveform covers
	// only the resumed suffix.
	Boot *ckpt.State
	// Sweep arms the kernel's oblivious block sweep on the scalar LPs (the
	// wide LPs always arm it): once a step's dirty set covers half an LP's
	// block, the whole block is evaluated in one levelized pass. Intended
	// for cone-split partitions, whose fat per-cone blocks saturate the
	// dirty set on nearly every active step.
	Sweep bool
	// Adapt, when non-nil, closes the loop on the optimism window: the
	// coordinator feeds the controller one metrics sample per GVT round
	// and publishes its output as an additional window bound. The
	// effective window is the narrowest of the configured Window, the
	// memory-throttle clamp, and the adapted window — so the clamp
	// always wins over the controller, by construction. The controller
	// may be shared across segmented runs (the adaptive supervisor
	// resets its sampling epoch between segments); within one run only
	// the coordinator goroutine touches it.
	Adapt *adapt.WindowController
	// Dist, when non-nil, runs this process as one shard of a
	// distributed simulation: only the LPs the seam maps to this shard
	// execute locally, remote LPs' mailboxes are replaced by socket
	// outboxes, and GVT becomes the seam's hub-driven round protocol
	// instead of the local pause-the-world coordinator. Scalar runs
	// only; incompatible with IntraWorkers, HistoryLimit, and Adapt.
	Dist *wire.Seam
}

// Result is the outcome of an optimistic run.
type Result struct {
	Values   []logic.Value
	Waveform trace.Waveform
	EndTime  circuit.Tick
	GVT      circuit.Tick
	Stats    stats.RunStats
	// IntraCritical, in hybrid mode, holds each cluster's modeled
	// evaluation critical path (per-step max chunk plus barrier costs).
	IntraCritical []float64
}

// infTick is the "never" timestamp.
const infTick = circuit.Tick(^uint64(0))

type msgKind uint8

const (
	msgValue msgKind = iota
	msgAnti
	msgGVTRound
	msgGVTDone // time carries the new GVT
	msgTerminate
)

type msg[V comparable] struct {
	kind  msgKind
	from  int
	id    uint64
	time  circuit.Tick
	gate  circuit.GateID
	value V
}

// msgMeta projects a message to its chaos-transport role: values and
// anti-messages are members of their sender's FIFO stream (annihilation
// depends on that order, so chaos preserves it); GVT rounds and
// termination are coordinator control that chaos must not touch. Time
// Warp has no promises, so no timestamps are bound-checked.
func msgMeta[V comparable](m msg[V]) inject.Meta {
	switch m.kind {
	case msgValue, msgAnti:
		return inject.Meta{Kind: inject.Value, From: m.from, Time: uint64(m.time)}
	default:
		return inject.Meta{Kind: inject.Control}
	}
}

// gvtReply is an LP's answer to one GVT round.
type gvtReply struct {
	handled  uint64       // messages handled since the previous reply
	localMin circuit.Tick // minimum live unprocessed event time
}

// shared bundles cross-goroutine state of a run.
type shared[V comparable] struct {
	cfg     Config
	engine  string // supervise/metrics label: "timewarp" or "timewarp-wide"
	boot    bool   // resuming from a checkpoint (skip the settling step)
	c       *circuit.Circuit
	until   circuit.Tick
	inboxes []mpsc.Transport[msg[V]]
	sink    metrics.Sink
	tracer  *trace.Tracer
	coShard *trace.Shard
	replies chan gvtReply
	transit atomic.Int64
	events  atomic.Uint64
	abort   atomic.Bool
	paused  atomic.Bool
	// idle counts LPs parked with nothing executable; when every LP is
	// idle the coordinator starts a GVT round immediately (fast
	// termination) instead of waiting out the interval.
	idle    atomic.Int64
	errOnce gosync.Once
	err     error

	// Memory-throttle state (HistoryLimit > 0). histWords is the live
	// total of saved-history words across LPs; clamp, when non-zero, is a
	// coordinator-imposed optimism window that overrides any wider
	// configured window. throttleRounds and histPeak are coordinator-owned
	// and read only after it returns.
	histWords      atomic.Int64
	clamp          atomic.Uint64
	throttleRounds uint64
	histPeak       uint64

	// Adaptive-window state (cfg.Adapt != nil). adaptWin is the
	// controller's current output (0 = unbounded), published by the
	// coordinator after each GVT round and folded into every LP's
	// effective window alongside the clamp; winChanges is
	// coordinator-owned and read only after it returns. board is the
	// per-LP utilization scoreboard, always populated so the adaptive
	// sampler (and any watchdog) can read live progress.
	adaptWin   atomic.Uint64
	winChanges uint64
	board      *supervise.Board
}

// fail records the first fatal error and aborts the run. Releasing any
// chaos-injected hang is part of the abort contract: a parked LP must be
// unparked so it can observe the abort flag and exit.
func (sh *shared[V]) fail(err error) {
	sh.errOnce.Do(func() { sh.err = err })
	sh.abort.Store(true)
	sh.cfg.Chaos.Release()
	if sh.cfg.Dist != nil {
		// Unpark a distributed GVT loop blocked on the coordinator: the
		// hub will never answer a dead run.
		sh.cfg.Dist.CancelWait()
	}
	for _, ib := range sh.inboxes {
		ib.Poke()
	}
}

// stimChange is one pre-projected stimulus (or checkpoint) event handed to
// runCore by a wrapper; the value is already in the run's value domain.
type stimChange[V comparable] struct {
	time circuit.Tick
	gate circuit.GateID
	value V
}

// Run simulates c under the stimulus until the given time (inclusive).
func Run(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, cfg Config) (*Result, error) {
	if cfg.Partition == nil {
		return nil, fmt.Errorf("timewarp: Config.Partition is required")
	}
	if err := cfg.Partition.Validate(c); err != nil {
		return nil, err
	}
	if err := c.CheckEventDriven(); err != nil {
		return nil, err
	}
	if err := stim.Validate(c); err != nil {
		return nil, err
	}
	if err := checkDist(cfg); err != nil {
		return nil, err
	}
	if cfg.System == 0 {
		cfg.System = logic.NineValued
	}
	if cfg.Boot != nil {
		if err := cfg.Boot.Check(c, cfg.System); err != nil {
			return nil, err
		}
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("timewarp")
	}
	start := time.Now()

	n := cfg.Partition.Blocks
	owner := cfg.Partition.Assign
	watched := cfg.Watch
	if watched == nil {
		watched = c.Outputs
	}

	var stimEvents, bootEvents []stimChange[logic.Value]
	var seedState func(k *kernel.LP)
	if cfg.Boot == nil {
		stimEvents = make([]stimChange[logic.Value], 0, len(stim.Changes))
		for _, ch := range stim.Changes {
			stimEvents = append(stimEvents, stimChange[logic.Value]{ch.Time, ch.Input, cfg.System.Project(ch.Value)})
		}
	} else {
		boot := cfg.Boot
		bootEvents = make([]stimChange[logic.Value], 0, len(boot.Events))
		for _, ev := range boot.Events {
			bootEvents = append(bootEvents, stimChange[logic.Value]{circuit.Tick(ev.Time), ev.Gate, ev.Value})
		}
		seedState = func(k *kernel.LP) {
			k.SeedState(boot.Vals, boot.PrevClk, boot.Projected)
		}
	}

	recs := make([]trace.Recorder, n)
	lps, sh, gvtRounds, finalGVT, err := runCore(c, until, cfg, sink, "timewarp",
		stimEvents, bootEvents, seedState, wireEncScalar, wireDecScalar,
		func(self int, own []circuit.GateID) *kernel.LP {
			k := kernel.New(c, owner, self, cfg.System, watched, own)
			if cfg.Sweep {
				k.EnableSweep(kernel.SweepThreshold(len(own)))
			}
			return k
		},
		func(lp int) recorderOf[logic.Value] { return &recs[lp] })
	if err != nil {
		return nil, err
	}

	res := &Result{Values: make([]logic.Value, len(c.Gates)), GVT: finalGVT}
	for g := range c.Gates {
		res.Values[g] = lps[owner[g]].k.Value(circuit.GateID(g))
	}
	recPtrs := make([]*trace.Recorder, n)
	for i, l := range lps {
		recPtrs[i] = &recs[i]
		res.IntraCritical = append(res.IntraCritical, l.critEval)
		if l.lvt != infTick && l.lvt > res.EndTime {
			res.EndTime = l.lvt
		}
	}
	res.Waveform = trace.Merge(recPtrs...)
	sink.Globals().GVTRounds = gvtRounds
	if finalGVT != infTick {
		sink.SetGauge("final_gvt", float64(finalGVT))
	}
	if cfg.HistoryLimit > 0 {
		sink.SetGauge("mem_throttle_rounds", float64(sh.throttleRounds))
		sink.SetGauge("history_peak_words", float64(sh.histPeak))
	}
	if cfg.Adapt != nil {
		sink.SetGauge("adapt_window_changes", float64(sh.winChanges))
		sink.SetGauge("adapt_final_window", float64(sh.adaptWin.Load()))
	}
	res.Stats = stats.Collect(sink, time.Since(start))
	return res, nil
}

// runCore executes the value-blind Time Warp protocol: LP construction,
// stimulus/checkpoint routing, the LP goroutines, the GVT coordinator, and
// abort-to-error mapping. The value-specific pieces arrive as hooks:
// pre-projected stimulus (or checkpoint) events, an optional state seeder
// (non-nil exactly when resuming from a checkpoint), a kernel factory, and
// a recorder factory. On success the caller assembles its result from the
// returned LPs.
func runCore[V comparable](c *circuit.Circuit, until circuit.Tick, cfg Config, sink metrics.Sink,
	engine string, stimEvents, bootEvents []stimChange[V], seedState func(k *kernel.LPT[V]),
	wireEnc func(msg[V]) wire.Msg, wireDec func(wire.Msg) msg[V],
	newKernel func(self int, own []circuit.GateID) *kernel.LPT[V],
	newRecorder func(lp int) recorderOf[V]) ([]*tlp[V], *shared[V], uint64, circuit.Tick, error) {
	if cfg.GVTInterval == 0 {
		cfg.GVTInterval = 50 * time.Millisecond
	}
	if cfg.Cost == (stats.CostModel{}) {
		cfg.Cost = stats.DefaultCostModel()
	}

	p := cfg.Partition
	n := p.Blocks
	owner := p.Assign
	dist := cfg.Dist
	// local reports LP residency; without a seam every LP is local.
	local := func(lp int) bool { return dist == nil || dist.Local(lp) }
	var localLPs []int
	for i := 0; i < n; i++ {
		if local(i) {
			localLPs = append(localLPs, i)
		}
	}

	sh := &shared[V]{cfg: cfg, engine: engine, boot: seedState != nil, c: c, until: until, sink: sink, tracer: cfg.Tracer}
	sh.coShard = cfg.Tracer.Shard("coordinator")
	sh.inboxes = make([]mpsc.Transport[msg[V]], n)
	for i := range sh.inboxes {
		if !local(i) {
			// A remote LP's mailbox is a socket outbox: sends cross the
			// seam as encoded frames, and nothing local ever drains it.
			sh.inboxes[i] = &distOutbox[V]{sh: sh, dst: i, enc: wireEnc}
			continue
		}
		var tr mpsc.Transport[msg[V]] = mpsc.New[msg[V]]()
		if cfg.Chaos != nil {
			tr = inject.Wrap(cfg.Chaos, i, tr, msgMeta[V])
		}
		sh.inboxes[i] = tr
	}
	sh.replies = make(chan gvtReply, n)
	if dist != nil {
		defer bindDist(sh, engine, wireDec, len(localLPs))()
	}

	// The scoreboard is always created: it costs n cache lines and
	// feeds both the watchdog (when armed) and the adaptive sampler's
	// per-LP utilization view.
	board := supervise.NewBoard(n)
	sh.board = board
	if cfg.Adapt != nil {
		sh.adaptWin.Store(cfg.Adapt.Window())
	}
	blockGates := p.BlockGates()
	lps := make([]*tlp[V], n)
	for i := 0; i < n; i++ {
		lps[i] = newTLP(sh, i, newKernel(i, blockGates[i]), newRecorder(i), cfg)
		lps[i].slot = board.LP(i)
		if seedState != nil {
			seedState(lps[i].k)
		}
	}

	if !sh.boot {
		// Stimulus routing, as in the conservative engine: owner plus
		// ghosts.
		deliverTo := map[circuit.GateID][]int{}
		for _, in := range c.Inputs {
			dsts := []int{owner[in]}
			seen := map[int]bool{owner[in]: true}
			for _, fo := range c.Fanout[in] {
				if b := owner[fo]; !seen[b] {
					seen[b] = true
					dsts = append(dsts, b)
				}
			}
			deliverTo[in] = dsts
		}
		for _, ch := range stimEvents {
			if ch.time > until {
				continue
			}
			for _, dst := range deliverTo[ch.gate] {
				// Each shard routes only to its own LPs: every worker
				// holds the full stimulus, so remote destinations are
				// someone else's copy of this same loop.
				if !local(dst) {
					continue
				}
				l := lps[dst]
				ev := qevent[V]{gate: ch.gate, value: ch.value, id: l.newID()}
				if ch.time == 0 {
					l.initialEvents = append(l.initialEvents, kernel.EventT[V]{Gate: ev.gate, Value: ev.value})
				} else {
					l.q.Push(uint64(ch.time), ev)
				}
			}
		}
	} else {
		// Checkpoint events route to the target's owner plus every block
		// holding a fanout ghost — the same visibility rule as stimulus,
		// but checkpoint events can target any gate, not just inputs.
		seen := map[int]bool{}
		for _, ev := range bootEvents {
			for b := range seen {
				delete(seen, b)
			}
			seen[owner[ev.gate]] = true
			dsts := []int{owner[ev.gate]}
			for _, fo := range c.Fanout[ev.gate] {
				if b := owner[fo]; !seen[b] {
					seen[b] = true
					dsts = append(dsts, b)
				}
			}
			for _, dst := range dsts {
				if !local(dst) {
					continue
				}
				l := lps[dst]
				l.q.Push(uint64(ev.time), qevent[V]{gate: ev.gate, value: ev.value, id: l.newID()})
			}
		}
	}

	wcfg := supervise.WatchConfig{
		Engine:     engine,
		Timeout:    cfg.HangTimeout,
		Board:      board,
		QueueDepth: func(i int) int { return sh.inboxes[i].Len() },
		OnHang:     sh.fail,
	}
	if dist != nil {
		wcfg.Transport = dist.TransportState
	}
	wd := supervise.Watch(wcfg)
	defer wd.Stop()

	var wg gosync.WaitGroup
	for _, l := range lps {
		if !local(l.id) {
			// Remote LPs run on their own shard; mark the slot done so a
			// hang report shows them as not-ours rather than stuck at init.
			l.slot.SetPhase(supervise.PhaseDone)
			continue
		}
		wg.Add(1)
		go func(l *tlp[V]) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					l.slot.SetPhase(supervise.PhaseDone)
					l.sh.fail(supervise.FromPanic(engine, l.id, "run", l.lvt, r))
				}
			}()
			metrics.Do(sink, engine, l.id, "run", func() {
				l.run()
			})
		}(l)
	}
	var gvtRounds uint64
	var finalGVT circuit.Tick
	metrics.Do(sink, engine, -1, "coordinate", func() {
		defer func() {
			if r := recover(); r != nil {
				sh.fail(supervise.FromPanic(engine, -1, "coordinate", 0, r))
			}
		}()
		if dist != nil {
			gvtRounds, finalGVT = distCoordinate(sh, localLPs)
		} else {
			gvtRounds, finalGVT = coordinate(sh, lps)
		}
	})
	wg.Wait()
	wd.Stop()

	if sh.abort.Load() {
		if sh.err != nil {
			return nil, nil, 0, 0, sh.err
		}
		return nil, nil, 0, 0, &supervise.SimError{
			Engine: engine, LP: -1, Phase: "run",
			Kind:  supervise.KindEventLimit,
			Cause: fmt.Errorf("event limit %d exceeded", cfg.MaxEvents),
		}
	}
	return lps, sh, gvtRounds, finalGVT, nil
}

// coordinate runs the GVT/termination protocol and returns the number of
// GVT computations performed and the final GVT.
func coordinate[V comparable](sh *shared[V], lps []*tlp[V]) (uint64, circuit.Tick) {
	n := len(lps)
	start := time.Now()
	var rounds uint64
	gvt := circuit.Tick(0)
	// Work-based pacing: a GVT round per ~16 events of progress per gate,
	// floored so small circuits are not paused constantly.
	threshold := uint64(16 * len(sh.c.Gates))
	if threshold < 100_000 {
		threshold = 100_000
	}
	limit := sh.cfg.HistoryLimit
	var lastEvents uint64
	for {
		// Wait for enough progress, an all-idle run, the wall ceiling, or
		// (memory throttling) the history bound being exceeded — the last
		// forces an early GVT round so fossil collection can run. The
		// forced round still waits out a small air gap so the LPs execute
		// between pauses: with no gap a persistently-over-limit run would
		// pause back-to-back and never advance GVT at all.
		deadline := time.Now().Add(sh.cfg.GVTInterval)
		gapEnd := time.Now().Add(2 * time.Millisecond)
		for time.Now().Before(deadline) {
			over := false
			if limit > 0 {
				w := uint64(sh.histWords.Load())
				if w > sh.histPeak {
					sh.histPeak = w
				}
				over = w > limit
			}
			if over && time.Now().After(gapEnd) {
				break
			}
			if sh.abort.Load() || sh.idle.Load() == int64(n) ||
				sh.events.Load()-lastEvents >= threshold {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		if sh.abort.Load() {
			return rounds, gvt
		}
		lastEvents = sh.events.Load()
		// Freeze processing, then repeat handling rounds to quiescence.
		roundBegin := sh.coShard.Now()
		sh.paused.Store(true)
		var localMins []circuit.Tick
		for {
			for _, ib := range sh.inboxes {
				ib.Put(msg[V]{kind: msgGVTRound})
			}
			var handled uint64
			localMins = localMins[:0]
			// An LP that died (panic, watchdog abort) never replies, so the
			// collection loop must stay abort-aware rather than block on the
			// channel forever.
			for i := 0; i < n; {
				select {
				case r := <-sh.replies:
					handled += r.handled
					localMins = append(localMins, r.localMin)
					i++
				case <-time.After(5 * time.Millisecond):
					if sh.abort.Load() {
						sh.paused.Store(false)
						return rounds, gvt
					}
				}
			}
			if sh.abort.Load() {
				sh.paused.Store(false)
				return rounds, gvt
			}
			if handled == 0 && sh.transit.Load() == 0 {
				break
			}
		}
		rounds++
		gvt = infTick
		for _, m := range localMins {
			if m < gvt {
				gvt = m
			}
		}
		if limit > 0 {
			throttle(sh, localMins, gvt)
		}
		if ad := sh.cfg.Adapt; ad != nil {
			// Sample the frozen run. Reading the LP metrics blocks here is
			// race-free: every LP sent its gvtReply after its last counter
			// write and is parked in WaitDrain until the coordinator's next
			// message, so the reply-channel receives above are the
			// happens-before edge. Sampled after throttle so the controller
			// sees the clamp it must yield to.
			tot := metrics.SinkTotals(sh.sink)
			s := adapt.Sample{
				Round:            int(rounds),
				WallMs:           float64(time.Since(start).Microseconds()) / 1e3,
				Engine:           sh.engine,
				EventsApplied:    tot.EventsApplied,
				EventsRolledBack: tot.EventsRolledBack,
				Rollbacks:        tot.Rollbacks,
				MessagesSent:     tot.MessagesSent,
				Clamp:            sh.clamp.Load(),
				PerLPEvals:       sh.board.Utilization(),
			}
			if gvt != infTick {
				s.GVT = uint64(gvt)
			}
			win, changed := ad.Observe(s)
			sh.adaptWin.Store(win)
			if changed {
				sh.winChanges++
			}
		}
		if gvt == infTick {
			sh.coShard.Span(trace.PhaseGVT, roundBegin, trace.NoTick)
		} else {
			sh.coShard.Span(trace.PhaseGVT, roundBegin, gvt)
			sh.coShard.Sample("gvt", float64(gvt))
		}
		if gvt > sh.until {
			for _, ib := range sh.inboxes {
				ib.Put(msg[V]{kind: msgTerminate})
			}
			sh.paused.Store(false)
			return rounds, gvt
		}
		sh.paused.Store(false)
		for _, ib := range sh.inboxes {
			ib.Put(msg[V]{kind: msgGVTDone, time: gvt})
		}
	}
}

// throttle adjusts the optimism clamp after a GVT round. Over the history
// limit: count a throttle round and clamp the window to half the observed
// optimism spread (or halve an existing clamp), forcing the LPs to stay
// near GVT so fossil collection can keep up. Under half the limit: release
// the clamp. The hysteresis band avoids oscillating at the boundary.
func throttle[V comparable](sh *shared[V], localMins []circuit.Tick, gvt circuit.Tick) {
	w := uint64(sh.histWords.Load())
	if w > sh.histPeak {
		sh.histPeak = w
	}
	limit := sh.cfg.HistoryLimit
	switch {
	case w > limit:
		sh.throttleRounds++
		cl := sh.clamp.Load()
		if cl == 0 {
			// First clamp: half the spread between GVT and the most
			// optimistic LP's next event.
			var spread circuit.Tick = 2
			if gvt != infTick {
				for _, m := range localMins {
					if m != infTick && m > gvt && m-gvt > spread {
						spread = m - gvt
					}
				}
			}
			cl = uint64(spread / 2)
		} else if cl > 1 {
			cl /= 2
		}
		if cl < 1 {
			cl = 1
		}
		sh.clamp.Store(cl)
	case w < limit/2:
		sh.clamp.Store(0)
	}
}
