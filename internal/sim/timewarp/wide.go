package timewarp

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/sim/kernel"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// WideResult is the outcome of a wide optimistic run.
type WideResult struct {
	Values   []logic.Word
	Waveform trace.WideWaveform
	EndTime  circuit.Tick
	GVT      circuit.Tick
	Lanes    int
	Stats    stats.RunStats
	// IntraCritical, in hybrid mode, holds each cluster's modeled
	// evaluation critical path (per-step max chunk plus barrier costs).
	IntraCritical []float64
}

// RunWide is the optimistic engine on 64 packed lanes: the identical Time
// Warp protocol — speculation, rollback, anti-messages, GVT, fossil
// collection — with every message, saved state word, and undo record
// carrying a whole 64-lane word. Rollback restores all lanes at once, so a
// straggler in any lane repairs every lane together. Inside each LP the
// kernel's oblivious block sweep is armed: when the lane-union dirty set
// reaches half the LP's block, the step evaluates the whole owned block in
// levelized order obliviously-wide — scalar event semantics at LP
// boundaries, batch evaluation inside. Per lane, the committed result is
// bit-identical to a scalar optimistic run of that lane's stimulus.
//
// The wide path does not support checkpoint boot or chaos injection; those
// Config fields must be unset.
func RunWide(c *circuit.Circuit, stim *vectors.WideStimulus, until circuit.Tick, cfg Config) (*WideResult, error) {
	if cfg.Partition == nil {
		return nil, fmt.Errorf("timewarp: Config.Partition is required")
	}
	if err := cfg.Partition.Validate(c); err != nil {
		return nil, err
	}
	if err := c.CheckEventDriven(); err != nil {
		return nil, err
	}
	if cfg.Boot != nil {
		return nil, fmt.Errorf("timewarp: wide runs do not support checkpoint boot")
	}
	if cfg.Chaos != nil {
		return nil, fmt.Errorf("timewarp: wide runs do not support chaos injection")
	}
	if cfg.Dist != nil {
		return nil, fmt.Errorf("timewarp: wide runs do not support distributed execution (the wire format carries scalar values)")
	}
	if cfg.System == 0 {
		cfg.System = logic.FourValued
	}
	if err := logic.CheckWide(cfg.System); err != nil {
		return nil, err
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("timewarp-wide")
	}
	start := time.Now()

	n := cfg.Partition.Blocks
	owner := cfg.Partition.Assign
	watched := cfg.Watch
	if watched == nil {
		watched = c.Outputs
	}

	stimEvents := make([]stimChange[logic.Word], 0, len(stim.Changes))
	for _, ch := range stim.Changes {
		stimEvents = append(stimEvents, stimChange[logic.Word]{ch.Time, ch.Input, ch.Word})
	}

	recs := make([]trace.WideRecorder, n)
	lps, sh, gvtRounds, finalGVT, err := runCore(c, until, cfg, sink, "timewarp-wide",
		stimEvents, nil, nil, nil, nil,
		func(self int, own []circuit.GateID) *kernel.WideLP {
			k := kernel.NewWide(c, owner, self, cfg.System, watched, own)
			k.EnableSweep(kernel.SweepThreshold(len(own)))
			return k
		},
		func(lp int) recorderOf[logic.Word] { return &recs[lp] })
	if err != nil {
		return nil, err
	}

	res := &WideResult{Values: make([]logic.Word, len(c.Gates)), GVT: finalGVT, Lanes: stim.Lanes}
	for g := range c.Gates {
		res.Values[g] = lps[owner[g]].k.Value(circuit.GateID(g))
	}
	recPtrs := make([]*trace.WideRecorder, n)
	for i, l := range lps {
		recPtrs[i] = &recs[i]
		res.IntraCritical = append(res.IntraCritical, l.critEval)
		if l.lvt != infTick && l.lvt > res.EndTime {
			res.EndTime = l.lvt
		}
	}
	res.Waveform = trace.MergeWide(recPtrs...)
	sink.Globals().GVTRounds = gvtRounds
	if finalGVT != infTick {
		sink.SetGauge("final_gvt", float64(finalGVT))
	}
	if cfg.HistoryLimit > 0 {
		sink.SetGauge("mem_throttle_rounds", float64(sh.throttleRounds))
		sink.SetGauge("history_peak_words", float64(sh.histPeak))
	}
	res.Stats = stats.Collect(sink, time.Since(start))
	return res, nil
}
