package timewarp

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/circuit"
	"repro/internal/eventq"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/sim/kernel"
	"repro/internal/trace"
)

// qevent is one pending input event. Every event carries a globally unique
// id so anti-messages can annihilate their originals and rollbacks can
// retract internally scheduled events.
type qevent struct {
	gate  circuit.GateID
	value logic.Value
	id    uint64
}

// sentRec remembers one transmitted message for later cancellation.
type sentRec struct {
	dst   int
	id    uint64
	time  circuit.Tick
	gate  circuit.GateID
	value logic.Value
}

// step is the saved history of one executed timestep: everything needed to
// undo it (state log or snapshot), re-execute it (consumed inputs), and
// cancel its effects (sent messages, created internal events).
type step struct {
	time    circuit.Tick
	inputs  []qevent
	undo    *kernel.Undo     // incremental state saving
	snap    *kernel.Snapshot // full-copy state saving (state before the step)
	sent    []sentRec
	created []uint64
}

// lazyRec is a message awaiting lazy cancellation: sent by a rolled-back
// step, to be annihilated only if re-execution does not regenerate it.
type lazyRec struct {
	sentRec
	createdAt circuit.Tick
}

// tlp is one Time Warp logical process.
type tlp struct {
	id  int
	sh  *shared
	cfg Config
	k   *kernel.LP
	q    eventq.Queue[qevent]
	rec  trace.Recorder
	st   *metrics.LPBlock
	trsh *trace.Shard

	lvt         circuit.Tick
	gvt         circuit.Tick // last observed GVT
	fossilFloor circuit.Tick // history below this time has been collected
	steps       []*step
	dead        map[uint64]bool
	lazyPending []lazyRec
	seq         uint64
	relevant    []circuit.GateID

	initialEvents []kernel.Event
	curStep       *step
	handledSince  uint64
	buf           []msg
	evs           []qevent
	kevs          []kernel.Event

	// Hybrid-mode intra-cluster buffers and accounting.
	outBuf   []logic.Value
	clkBuf   []logic.Value
	critEval float64
}

func newTLP(sh *shared, id int, k *kernel.LP, cfg Config) *tlp {
	l := &tlp{
		id:   id,
		sh:   sh,
		cfg:  cfg,
		k:    k,
		q:    eventq.New[qevent](cfg.Queue),
		dead: map[uint64]bool{},
		st:   sh.sink.LP(id),
		trsh: sh.tracer.Shard(fmt.Sprintf("lp %d", id)),
	}
	if cfg.StateSaving == FullCopy {
		l.relevant = k.RelevantNets()
	}
	if cfg.IntraWorkers > 1 {
		l.outBuf = make([]logic.Value, sh.c.NumGates())
		l.clkBuf = make([]logic.Value, sh.c.NumGates())
	}
	k.Schedule = func(t circuit.Tick, g circuit.GateID, v logic.Value) {
		ev := qevent{gate: g, value: v, id: l.newID()}
		l.q.Push(uint64(t), ev)
		if l.curStep != nil {
			l.curStep.created = append(l.curStep.created, ev.id)
		}
	}
	k.Send = func(dst int, t circuit.Tick, g circuit.GateID, v logic.Value) {
		if l.cfg.Cancellation == Lazy && len(l.lazyPending) > 0 {
			// Lazy cancellation: a regenerated message equal to one already
			// delivered is suppressed — the receiver's copy stays valid —
			// but it keeps its original id so this step's own rollback can
			// still cancel it. A match implies this step is a re-execution
			// of the pending record's originating step: equal message times
			// and gates force equal creation times.
			for i, p := range l.lazyPending {
				if p.dst == dst && p.time == t && p.gate == g && p.value == v {
					l.lazyPending = append(l.lazyPending[:i], l.lazyPending[i+1:]...)
					l.curStep.sent = append(l.curStep.sent, p.sentRec)
					return
				}
			}
		}
		rec := sentRec{dst: dst, id: l.newID(), time: t, gate: g, value: v}
		l.curStep.sent = append(l.curStep.sent, rec)
		l.sh.transit.Add(1)
		l.sh.inboxes[dst].Put(msg{kind: msgValue, from: l.id, id: rec.id, time: t, gate: g, value: v})
	}
	k.Record = func(t circuit.Tick, g circuit.GateID, v logic.Value) {
		l.rec.Record(t, g, v)
	}
	return l
}

// newID mints a run-unique event/message id.
func (l *tlp) newID() uint64 {
	l.seq++
	return uint64(l.id)<<40 | l.seq
}

// nextLive returns the earliest non-annihilated pending event time,
// discarding annihilated entries it passes over.
func (l *tlp) nextLive() circuit.Tick {
	for {
		t, v, ok := l.q.Peek()
		if !ok {
			return infTick
		}
		if l.dead[v.id] {
			l.q.PopMin()
			delete(l.dead, v.id)
			continue
		}
		return circuit.Tick(t)
	}
}

// popBatch removes all live events at exactly time t.
func (l *tlp) popBatch(t circuit.Tick) []qevent {
	l.evs = l.evs[:0]
	for {
		pt, v, ok := l.q.Peek()
		if !ok || circuit.Tick(pt) != t {
			break
		}
		l.q.PopMin()
		if l.dead[v.id] {
			delete(l.dead, v.id)
			continue
		}
		l.evs = append(l.evs, v)
	}
	return l.evs
}

// execStep speculatively executes the events at time t.
func (l *tlp) execStep(t circuit.Tick, events []qevent, initial bool) {
	begin := l.trsh.Now()
	s := &step{time: t, inputs: append([]qevent(nil), events...)}
	l.kevs = l.kevs[:0]
	for _, ev := range events {
		l.kevs = append(l.kevs, kernel.Event{Gate: ev.gate, Value: ev.value})
	}
	if !initial && l.cfg.StateSaving == FullCopy {
		snapBegin := l.trsh.Now()
		s.snap = &kernel.Snapshot{}
		l.k.TakeSnapshot(l.relevant, s.snap)
		l.st.StateSaves++
		l.st.StateSavedWords += s.snap.Words()
		l.trsh.Span(trace.PhaseStateSave, snapBegin, t)
	}
	l.curStep = s
	var undo *kernel.Undo
	if !initial && l.cfg.StateSaving == Incremental {
		undo = &kernel.Undo{}
		s.undo = undo
	}
	if l.cfg.IntraWorkers > 1 {
		maxChunk := l.k.StepParallel(t, l.kevs, initial, undo, &l.st.LPCounters, l.cfg.IntraWorkers, l.outBuf, l.clkBuf)
		l.critEval += float64(maxChunk)*l.cfg.Cost.EvalCost + l.cfg.Cost.Barrier(l.cfg.IntraWorkers)
	} else {
		l.k.Step(t, l.kevs, initial, undo, &l.st.LPCounters)
	}
	if undo != nil {
		l.st.StateSaves++
		l.st.StateSavedWords += undo.Words()
	}
	l.st.Hist(metrics.HistStepEvents).Observe(uint64(len(events)))
	l.trsh.Span(trace.PhaseEvaluate, begin, t)
	l.curStep = nil
	if !initial {
		l.steps = append(l.steps, s)
	}
	l.lvt = t
	// Lazy messages from steps at or before t that re-execution did not
	// regenerate are now provably wrong: cancel them.
	l.cancelLazyThrough(t)
}

// execInitial runs the time-zero settling step (never rolled back: all
// cross-LP messages carry times >= 1, so no straggler can target time 0).
func (l *tlp) execInitial() {
	s := &step{time: 0}
	l.curStep = s
	begin := l.trsh.Now()
	l.k.Step(0, l.initialEvents, true, nil, &l.st.LPCounters)
	l.st.Hist(metrics.HistStepEvents).Observe(uint64(len(l.initialEvents)))
	l.trsh.Span(trace.PhaseEvaluate, begin, 0)
	l.curStep = nil
	l.lvt = 0
}

// rollback restores the LP to just before the earliest step at or after ts
// and schedules that history for re-execution.
func (l *tlp) rollback(ts circuit.Tick) {
	idx := sort.Search(len(l.steps), func(i int) bool { return l.steps[i].time >= ts })
	if idx == len(l.steps) {
		return
	}
	if l.steps[idx].time < l.fossilFloor {
		l.sh.fail(fmt.Errorf("timewarp: LP %d rollback to %d below GVT %d", l.id, ts, l.fossilFloor))
		return
	}
	suffix := l.steps[idx:]
	l.st.Rollbacks++
	begin := l.trsh.Now()
	undoneBefore := l.st.EventsRolledBack

	// Restore state.
	if l.cfg.StateSaving == FullCopy {
		l.k.RestoreSnapshot(l.relevant, suffix[0].snap)
		for _, s := range suffix {
			l.st.EventsRolledBack += uint64(len(s.inputs))
		}
	} else {
		undos := make([]*kernel.Undo, len(suffix))
		for i, s := range suffix {
			undos[i] = s.undo
		}
		l.k.Rollback(undos, &l.st.LPCounters)
	}

	// Retract internally scheduled events and cancel sent messages.
	for _, s := range suffix {
		for _, id := range s.created {
			l.dead[id] = true
		}
		for _, sr := range s.sent {
			if l.cfg.Cancellation == Lazy {
				l.lazyPending = append(l.lazyPending, lazyRec{sentRec: sr, createdAt: s.time})
			} else {
				l.sendAnti(sr)
			}
		}
	}
	// Requeue the rolled-back inputs (except ones just retracted or
	// previously annihilated).
	l.q.ResetFloor()
	for _, s := range suffix {
		for _, in := range s.inputs {
			if l.dead[in.id] {
				delete(l.dead, in.id)
				continue
			}
			l.q.Push(uint64(s.time), in)
		}
	}
	l.rec.TruncateFrom(suffix[0].time)
	l.steps = l.steps[:idx]
	if idx > 0 {
		l.lvt = l.steps[idx-1].time
	} else {
		l.lvt = 0
	}
	l.st.Hist(metrics.HistRollbackDepth).Observe(l.st.EventsRolledBack - undoneBefore)
	l.trsh.Span(trace.PhaseRollback, begin, ts)
}

// sendAnti transmits an anti-message for a previously sent message.
func (l *tlp) sendAnti(sr sentRec) {
	l.st.AntiMessagesSent++
	l.sh.transit.Add(1)
	l.sh.inboxes[sr.dst].Put(msg{kind: msgAnti, from: l.id, id: sr.id, time: sr.time, gate: sr.gate, value: sr.value})
}

// cancelLazyThrough cancels pending lazy messages whose originating step
// time is <= t: the LP has re-executed past them without regenerating.
func (l *tlp) cancelLazyThrough(t circuit.Tick) {
	if len(l.lazyPending) == 0 {
		return
	}
	kept := l.lazyPending[:0]
	for _, p := range l.lazyPending {
		if p.createdAt <= t {
			l.sendAnti(p.sentRec)
		} else {
			kept = append(kept, p)
		}
	}
	l.lazyPending = kept
}

// flushLazyBelowNext cancels pending lazy messages whose originating step
// cannot re-execute with the current queue contents (no pending event at
// or before their creation time). Slightly eager — a future straggler
// could have re-created the step — but cancellation is always safe, and
// this guarantees no wrong message survives quiescence.
func (l *tlp) flushLazyBelowNext() {
	if len(l.lazyPending) == 0 {
		return
	}
	next := l.nextLive()
	kept := l.lazyPending[:0]
	for _, p := range l.lazyPending {
		if p.createdAt < next {
			l.sendAnti(p.sentRec)
		} else {
			kept = append(kept, p)
		}
	}
	l.lazyPending = kept
}

// localMin is this LP's contribution to GVT: the earliest live unprocessed
// event, lower-bounded by any still-pending lazy cancellation (whose
// eventual anti-message may roll the destination back to that time).
func (l *tlp) localMin() circuit.Tick {
	m := l.nextLive()
	for _, p := range l.lazyPending {
		if p.time < m {
			m = p.time
		}
	}
	return m
}

// fossilCollect frees history strictly older than the new GVT.
func (l *tlp) fossilCollect(gvt circuit.Tick) {
	l.gvt = gvt
	l.fossilFloor = gvt
	idx := sort.Search(len(l.steps), func(i int) bool { return l.steps[i].time >= gvt })
	if idx > 0 {
		l.steps = append([]*step(nil), l.steps[idx:]...)
	}
}

// handle processes one inbound message; it returns false on terminate.
func (l *tlp) handle(m msg) bool {
	switch m.kind {
	case msgValue:
		l.sh.transit.Add(-1)
		l.st.MessagesRecv++
		l.handledSince++
		if m.time < l.fossilFloor {
			l.sh.fail(fmt.Errorf("timewarp: LP %d received message at %d below GVT %d", l.id, m.time, l.fossilFloor))
			return false
		}
		if m.time <= l.lvt {
			l.rollback(m.time)
		}
		l.q.ResetFloor()
		l.q.Push(uint64(m.time), qevent{gate: m.gate, value: m.value, id: m.id})
	case msgAnti:
		l.sh.transit.Add(-1)
		l.st.AntiMessagesRecv++
		l.handledSince++
		if m.time < l.fossilFloor {
			l.sh.fail(fmt.Errorf("timewarp: LP %d received anti-message at %d below GVT %d", l.id, m.time, l.fossilFloor))
			return false
		}
		if m.time <= l.lvt {
			l.rollback(m.time)
		}
		// The original is now unprocessed (FIFO per link guarantees it
		// arrived first; if it had been processed, the rollback above just
		// requeued it). Tombstone it.
		l.dead[m.id] = true
	case msgGVTRound:
		l.sh.replies <- gvtReply{handled: l.handledSince, localMin: l.localMin()}
		l.handledSince = 0
	case msgGVTDone:
		l.fossilCollect(m.time)
	case msgTerminate:
		return false
	}
	return true
}

// handleAll processes a batch; it returns false on terminate.
func (l *tlp) handleAll(batch []msg) bool {
	for _, m := range batch {
		if !l.handle(m) {
			return false
		}
	}
	return true
}

// run is the LP goroutine body.
func (l *tlp) run() {
	l.execInitial()
	for {
		if l.sh.abort.Load() {
			return
		}
		l.buf = l.sh.inboxes[l.id].TryDrain(l.buf[:0])
		if !l.handleAll(l.buf) {
			return
		}
		if l.sh.paused.Load() {
			// Processing is frozen during GVT computation; keep serving
			// rounds until released.
			begin := l.trsh.Now()
			var ok bool
			l.buf, ok = l.sh.inboxes[l.id].WaitDrain(l.buf[:0])
			l.trsh.Span(trace.PhaseBarrier, begin, trace.NoTick)
			if !ok || !l.handleAll(l.buf) {
				return
			}
			continue
		}
		t := l.nextLive()
		blocked := t == infTick || t > l.sh.until ||
			(l.cfg.Window > 0 && l.gvt < infTick-l.cfg.Window && t > l.gvt+l.cfg.Window)
		if blocked {
			// Nothing executable: flush provably wrong lazy sends, then
			// sleep until messages (or a GVT round) arrive.
			l.st.Blocks++
			l.flushLazyBelowNext()
			begin := l.trsh.Now()
			l.sh.idle.Add(1)
			var ok bool
			l.buf, ok = l.sh.inboxes[l.id].WaitDrain(l.buf[:0])
			l.sh.idle.Add(-1)
			l.trsh.Span(trace.PhaseBlock, begin, trace.NoTick)
			if !ok || !l.handleAll(l.buf) {
				return
			}
			continue
		}
		events := l.popBatch(t)
		if len(events) == 0 {
			continue
		}
		processed := l.sh.events.Add(uint64(len(events)))
		if max := l.sh.cfg.MaxEvents; max > 0 && processed > max {
			l.sh.fail(fmt.Errorf("timewarp: event limit %d exceeded at time %d", max, t))
			return
		}
		l.execStep(t, events, false)
		// Yield between speculative steps. Without this, a single-core
		// scheduler lets one LP race arbitrarily far ahead before its
		// neighbours run at all, and the eventual stragglers roll back
		// nearly everything — optimism thrash that exists only as a
		// scheduling artifact.
		runtime.Gosched()
	}
}
