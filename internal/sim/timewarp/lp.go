package timewarp

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/circuit"
	"repro/internal/eventq"
	"repro/internal/metrics"
	"repro/internal/sim/kernel"
	"repro/internal/sim/supervise"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/trace"
)

// qevent is one pending input event. Every event carries a globally unique
// id so anti-messages can annihilate their originals and rollbacks can
// retract internally scheduled events.
type qevent[V comparable] struct {
	gate  circuit.GateID
	value V
	id    uint64
}

// sentRec remembers one transmitted message for later cancellation.
type sentRec[V comparable] struct {
	dst   int
	id    uint64
	time  circuit.Tick
	gate  circuit.GateID
	value V
}

// step is the saved history of one executed timestep: everything needed to
// undo it (state log or snapshot), re-execute it (consumed inputs), and
// cancel its effects (sent messages, created internal events).
type step[V comparable] struct {
	time    circuit.Tick
	inputs  []qevent[V]
	undo    *kernel.UndoT[V]     // incremental state saving
	snap    *kernel.SnapshotT[V] // full-copy state saving (state before the step)
	sent    []sentRec[V]
	created []uint64
	words   uint64 // history words charged to the memory throttle
}

// lazyRec is a message awaiting lazy cancellation: sent by a rolled-back
// step, to be annihilated only if re-execution does not regenerate it.
type lazyRec[V comparable] struct {
	sentRec[V]
	createdAt circuit.Tick
}

// recorderOf abstracts the waveform recorder over the value type:
// *trace.Recorder for scalar runs, *trace.WideRecorder for wide runs.
// Rollback needs TruncateFrom, so a bare record callback is not enough.
type recorderOf[V comparable] interface {
	Record(t circuit.Tick, g circuit.GateID, v V)
	TruncateFrom(t circuit.Tick)
}

// tlp is one Time Warp logical process.
type tlp[V comparable] struct {
	id   int
	sh   *shared[V]
	cfg  Config
	k    *kernel.LPT[V]
	q    eventq.Queue[qevent[V]]
	rec  recorderOf[V]
	st   *metrics.LPBlock
	trsh *trace.Shard
	slot *supervise.LPSlot // watchdog scoreboard entry; nil-safe when unwatched

	lvt         circuit.Tick
	gvt         circuit.Tick // last observed GVT
	fossilFloor circuit.Tick // history below this time has been collected
	steps       []*step[V]
	dead        map[uint64]bool
	lazyPending []lazyRec[V]
	seq         uint64
	relevant    []circuit.GateID

	initialEvents []kernel.EventT[V]
	curStep       *step[V]
	handledSince  uint64
	buf           []msg[V]
	evs           []qevent[V]
	kevs          []kernel.EventT[V]

	// Free-lists for the per-step history records. Steps, undo logs, and
	// snapshots are recycled here at rollback and fossil collection instead
	// of being dropped for the GC; reuse keeps the slices' grown capacity,
	// so a warm LP executes timesteps without allocating.
	stepPool    []*step[V]
	undoPool    []*kernel.UndoT[V]
	snapPool    []*kernel.SnapshotT[V]
	undoScratch []*kernel.UndoT[V]

	// Per-destination outgoing message batches. Sends append here (transit
	// is counted at buffer time so GVT quiescence waits for unflushed
	// batches) and flushSends delivers each destination's batch with one
	// PutAll — one lock acquisition per destination per step instead of one
	// per message.
	pend    [][]msg[V]
	pendDst []int // destinations with a non-empty batch, in first-use order

	// Hybrid-mode intra-cluster buffers and accounting.
	outBuf   []V
	clkBuf   []V
	critEval float64
}

func newTLP[V comparable](sh *shared[V], id int, k *kernel.LPT[V], rec recorderOf[V], cfg Config) *tlp[V] {
	l := &tlp[V]{
		id:   id,
		sh:   sh,
		cfg:  cfg,
		k:    k,
		rec:  rec,
		q:    eventq.NewCap[qevent[V]](cfg.Queue, 128),
		dead: map[uint64]bool{},
		evs:  make([]qevent[V], 0, 32),
		kevs: make([]kernel.EventT[V], 0, 32),
		buf:  make([]msg[V], 0, 64),
		st:   sh.sink.LP(id),
		trsh: sh.tracer.Shard(fmt.Sprintf("lp %d", id)),
	}
	if cfg.StateSaving == FullCopy {
		l.relevant = k.RelevantNets()
	}
	if cfg.IntraWorkers > 1 {
		l.outBuf = make([]V, sh.c.NumGates())
		l.clkBuf = make([]V, sh.c.NumGates())
	}
	l.pend = make([][]msg[V], len(sh.inboxes))
	k.Schedule = func(t circuit.Tick, g circuit.GateID, v V) {
		ev := qevent[V]{gate: g, value: v, id: l.newID()}
		l.q.Push(uint64(t), ev)
		if l.curStep != nil {
			l.curStep.created = append(l.curStep.created, ev.id)
		}
	}
	k.Send = func(dst int, t circuit.Tick, g circuit.GateID, v V) {
		if l.cfg.Cancellation == Lazy && len(l.lazyPending) > 0 {
			// Lazy cancellation: a regenerated message equal to one already
			// delivered is suppressed — the receiver's copy stays valid —
			// but it keeps its original id so this step's own rollback can
			// still cancel it. A match implies this step is a re-execution
			// of the pending record's originating step: equal message times
			// and gates force equal creation times.
			for i, p := range l.lazyPending {
				if p.dst == dst && p.time == t && p.gate == g && p.value == v {
					l.lazyPending = append(l.lazyPending[:i], l.lazyPending[i+1:]...)
					l.curStep.sent = append(l.curStep.sent, p.sentRec)
					return
				}
			}
		}
		rec := sentRec[V]{dst: dst, id: l.newID(), time: t, gate: g, value: v}
		l.curStep.sent = append(l.curStep.sent, rec)
		l.buffer(dst, msg[V]{kind: msgValue, from: l.id, id: rec.id, time: t, gate: g, value: v})
	}
	k.Record = func(t circuit.Tick, g circuit.GateID, v V) {
		l.rec.Record(t, g, v)
	}
	return l
}

// newID mints a run-unique event/message id.
func (l *tlp[V]) newID() uint64 {
	l.seq++
	return uint64(l.id)<<40 | l.seq
}

// getStep acquires a cleared step record, reusing a recycled one (and its
// grown slice capacity) when available.
func (l *tlp[V]) getStep(t circuit.Tick) *step[V] {
	if n := len(l.stepPool); n > 0 {
		s := l.stepPool[n-1]
		l.stepPool[n-1] = nil
		l.stepPool = l.stepPool[:n-1]
		s.time = t
		s.inputs = s.inputs[:0]
		s.sent = s.sent[:0]
		s.created = s.created[:0]
		l.st.PoolHits++
		return s
	}
	l.st.PoolMisses++
	return &step[V]{
		time:    t,
		inputs:  make([]qevent[V], 0, 8),
		sent:    make([]sentRec[V], 0, 8),
		created: make([]uint64, 0, 16),
	}
}

// putStep recycles a step record and its undo/snapshot into the free-lists.
// Callers must be done with every slice the record owns: the requeue/cancel
// loops copy inputs, sent records, and created ids by value before recycling.
func (l *tlp[V]) putStep(s *step[V]) {
	if s.words != 0 {
		l.sh.histWords.Add(-int64(s.words))
		s.words = 0
	}
	if s.undo != nil {
		l.undoPool = append(l.undoPool, s.undo)
		s.undo = nil
	}
	if s.snap != nil {
		l.snapPool = append(l.snapPool, s.snap)
		s.snap = nil
	}
	l.stepPool = append(l.stepPool, s)
}

// getUndo acquires a reset undo log from the free-list.
func (l *tlp[V]) getUndo() *kernel.UndoT[V] {
	if n := len(l.undoPool); n > 0 {
		u := l.undoPool[n-1]
		l.undoPool[n-1] = nil
		l.undoPool = l.undoPool[:n-1]
		u.Reset()
		l.st.PoolHits++
		return u
	}
	l.st.PoolMisses++
	return kernel.NewUndoOf[V](32, 8, 32)
}

// getSnap acquires a snapshot buffer from the free-list; TakeSnapshot
// reuses its capacity.
func (l *tlp[V]) getSnap() *kernel.SnapshotT[V] {
	if n := len(l.snapPool); n > 0 {
		s := l.snapPool[n-1]
		l.snapPool[n-1] = nil
		l.snapPool = l.snapPool[:n-1]
		l.st.PoolHits++
		return s
	}
	l.st.PoolMisses++
	return &kernel.SnapshotT[V]{}
}

// buffer queues one outgoing message for dst. Transit is counted here, at
// buffer time, so GVT quiescence (handled==0 && transit==0) cannot conclude
// while any batch is unflushed.
func (l *tlp[V]) buffer(dst int, m msg[V]) {
	l.sh.transit.Add(1)
	if len(l.pend[dst]) == 0 {
		if cap(l.pend[dst]) == 0 {
			l.pend[dst] = make([]msg[V], 0, 64)
		}
		l.pendDst = append(l.pendDst, dst)
	}
	l.pend[dst] = append(l.pend[dst], m)
}

// flushSends delivers every buffered batch, one PutAll per destination.
// Per-destination order is preserved, so link FIFO (which anti-message
// annihilation relies on) still holds.
func (l *tlp[V]) flushSends() {
	for _, dst := range l.pendDst {
		l.sh.inboxes[dst].PutAll(l.pend[dst])
		l.pend[dst] = l.pend[dst][:0]
	}
	l.pendDst = l.pendDst[:0]
}

// nextLive returns the earliest non-annihilated pending event time,
// discarding annihilated entries it passes over.
func (l *tlp[V]) nextLive() circuit.Tick {
	for {
		t, v, ok := l.q.Peek()
		if !ok {
			return infTick
		}
		if l.dead[v.id] {
			l.q.PopMin()
			delete(l.dead, v.id)
			continue
		}
		return circuit.Tick(t)
	}
}

// popBatch removes all live events at exactly time t.
func (l *tlp[V]) popBatch(t circuit.Tick) []qevent[V] {
	l.evs = l.evs[:0]
	for {
		pt, v, ok := l.q.Peek()
		if !ok || circuit.Tick(pt) != t {
			break
		}
		l.q.PopMin()
		if l.dead[v.id] {
			delete(l.dead, v.id)
			continue
		}
		l.evs = append(l.evs, v)
	}
	return l.evs
}

// execStep speculatively executes the events at time t.
func (l *tlp[V]) execStep(t circuit.Tick, events []qevent[V], initial bool) {
	begin := l.trsh.Now()
	s := l.getStep(t)
	s.inputs = append(s.inputs, events...)
	l.kevs = l.kevs[:0]
	for _, ev := range events {
		l.kevs = append(l.kevs, kernel.EventT[V]{Gate: ev.gate, Value: ev.value})
	}
	if !initial && l.cfg.StateSaving == FullCopy {
		snapBegin := l.trsh.Now()
		s.snap = l.getSnap()
		l.k.TakeSnapshot(l.relevant, s.snap)
		l.st.StateSaves++
		l.st.StateSavedWords += s.snap.Words()
		l.trsh.Span(trace.PhaseStateSave, snapBegin, t)
	}
	l.curStep = s
	var undo *kernel.UndoT[V]
	if !initial && l.cfg.StateSaving == Incremental {
		undo = l.getUndo()
		s.undo = undo
	}
	if l.cfg.IntraWorkers > 1 {
		maxChunk := l.k.StepParallel(t, l.kevs, initial, undo, &l.st.LPCounters, l.cfg.IntraWorkers, l.outBuf, l.clkBuf)
		l.critEval += float64(maxChunk)*l.cfg.Cost.EvalCost + l.cfg.Cost.Barrier(l.cfg.IntraWorkers)
	} else {
		l.k.Step(t, l.kevs, initial, undo, &l.st.LPCounters)
	}
	if undo != nil {
		l.st.StateSaves++
		l.st.StateSavedWords += undo.Words()
	}
	l.st.Hist(metrics.HistStepEvents).Observe(uint64(len(events)))
	l.trsh.Span(trace.PhaseEvaluate, begin, t)
	l.curStep = nil
	if !initial {
		if l.sh.cfg.HistoryLimit > 0 {
			w := uint64(len(s.inputs) + len(s.sent) + len(s.created))
			if s.undo != nil {
				w += s.undo.Words()
			}
			if s.snap != nil {
				w += s.snap.Words()
			}
			s.words = w
			l.sh.histWords.Add(int64(w))
		}
		l.steps = append(l.steps, s)
	} else {
		l.putStep(s)
	}
	l.lvt = t
	// Lazy messages from steps at or before t that re-execution did not
	// regenerate are now provably wrong: cancel them.
	l.cancelLazyThrough(t)
}

// execInitial runs the time-zero settling step (never rolled back: all
// cross-LP messages carry times >= 1, so no straggler can target time 0).
func (l *tlp[V]) execInitial() {
	s := &step[V]{time: 0}
	l.curStep = s
	begin := l.trsh.Now()
	l.k.Step(0, l.initialEvents, true, nil, &l.st.LPCounters)
	l.st.Hist(metrics.HistStepEvents).Observe(uint64(len(l.initialEvents)))
	l.trsh.Span(trace.PhaseEvaluate, begin, 0)
	l.curStep = nil
	l.lvt = 0
}

// rollback restores the LP to just before the earliest step at or after ts
// and schedules that history for re-execution.
func (l *tlp[V]) rollback(ts circuit.Tick) {
	idx := sort.Search(len(l.steps), func(i int) bool { return l.steps[i].time >= ts })
	if idx == len(l.steps) {
		return
	}
	if l.steps[idx].time < l.fossilFloor {
		l.sh.fail(&supervise.SimError{
			Engine: l.sh.engine, LP: l.id, Phase: "rollback", ModeledTime: ts,
			Kind:  supervise.KindCausality,
			Cause: fmt.Errorf("rollback to %d below GVT %d", ts, l.fossilFloor),
		})
		return
	}
	suffix := l.steps[idx:]
	l.st.Rollbacks++
	begin := l.trsh.Now()
	undoneBefore := l.st.EventsRolledBack

	// Restore state.
	if l.cfg.StateSaving == FullCopy {
		l.k.RestoreSnapshot(l.relevant, suffix[0].snap)
		for _, s := range suffix {
			l.st.EventsRolledBack += uint64(len(s.inputs))
		}
	} else {
		undos := l.undoScratch[:0]
		for _, s := range suffix {
			undos = append(undos, s.undo)
		}
		l.k.Rollback(undos, &l.st.LPCounters)
		for i := range undos {
			undos[i] = nil
		}
		l.undoScratch = undos[:0]
	}

	// Retract internally scheduled events and cancel sent messages.
	for _, s := range suffix {
		for _, id := range s.created {
			l.dead[id] = true
		}
		for _, sr := range s.sent {
			if l.cfg.Cancellation == Lazy {
				l.lazyPending = append(l.lazyPending, lazyRec[V]{sentRec: sr, createdAt: s.time})
			} else {
				l.sendAnti(sr)
			}
		}
	}
	// Requeue the rolled-back inputs (except ones just retracted or
	// previously annihilated).
	l.q.ResetFloor()
	for _, s := range suffix {
		for _, in := range s.inputs {
			if l.dead[in.id] {
				delete(l.dead, in.id)
				continue
			}
			l.q.Push(uint64(s.time), in)
		}
	}
	l.rec.TruncateFrom(suffix[0].time)
	// Everything the suffix records owned has been copied out (inputs into
	// the queue, sent records into lazyPending or anti-messages, created
	// ids into the tombstone set), so the records go back to the pool.
	for i, s := range suffix {
		l.putStep(s)
		suffix[i] = nil
	}
	l.steps = l.steps[:idx]
	if idx > 0 {
		l.lvt = l.steps[idx-1].time
	} else {
		l.lvt = 0
	}
	l.st.Hist(metrics.HistRollbackDepth).Observe(l.st.EventsRolledBack - undoneBefore)
	l.trsh.Span(trace.PhaseRollback, begin, ts)
	l.cfg.Chaos.Stall(l.id, inject.PhaseRollback)
}

// sendAnti queues an anti-message for a previously sent message; the batch
// is delivered at the next flushSends.
func (l *tlp[V]) sendAnti(sr sentRec[V]) {
	l.st.AntiMessagesSent++
	l.buffer(sr.dst, msg[V]{kind: msgAnti, from: l.id, id: sr.id, time: sr.time, gate: sr.gate, value: sr.value})
}

// cancelLazyThrough cancels pending lazy messages whose originating step
// time is <= t: the LP has re-executed past them without regenerating.
func (l *tlp[V]) cancelLazyThrough(t circuit.Tick) {
	if len(l.lazyPending) == 0 {
		return
	}
	kept := l.lazyPending[:0]
	for _, p := range l.lazyPending {
		if p.createdAt <= t {
			l.sendAnti(p.sentRec)
		} else {
			kept = append(kept, p)
		}
	}
	l.lazyPending = kept
}

// flushLazyBelowNext cancels pending lazy messages whose originating step
// cannot re-execute with the current queue contents (no pending event at
// or before their creation time). Slightly eager — a future straggler
// could have re-created the step — but cancellation is always safe, and
// this guarantees no wrong message survives quiescence.
func (l *tlp[V]) flushLazyBelowNext() {
	if len(l.lazyPending) == 0 {
		return
	}
	next := l.nextLive()
	kept := l.lazyPending[:0]
	for _, p := range l.lazyPending {
		if p.createdAt < next {
			l.sendAnti(p.sentRec)
		} else {
			kept = append(kept, p)
		}
	}
	l.lazyPending = kept
}

// localMin is this LP's contribution to GVT: the earliest live unprocessed
// event, lower-bounded by any still-pending lazy cancellation (whose
// eventual anti-message may roll the destination back to that time).
func (l *tlp[V]) localMin() circuit.Tick {
	m := l.nextLive()
	for _, p := range l.lazyPending {
		if p.time < m {
			m = p.time
		}
	}
	return m
}

// fossilCollect frees history strictly older than the new GVT.
func (l *tlp[V]) fossilCollect(gvt circuit.Tick) {
	l.gvt = gvt
	l.fossilFloor = gvt
	l.slot.SetBound(uint64(gvt))
	idx := sort.Search(len(l.steps), func(i int) bool { return l.steps[i].time >= gvt })
	if idx > 0 {
		// Recycle the collected prefix and compact in place, keeping the
		// slice's capacity instead of reallocating every collection.
		for _, s := range l.steps[:idx] {
			l.putStep(s)
		}
		n := copy(l.steps, l.steps[idx:])
		for i := n; i < len(l.steps); i++ {
			l.steps[i] = nil
		}
		l.steps = l.steps[:n]
	}
}

// handle processes one inbound message; it returns false on terminate.
func (l *tlp[V]) handle(m msg[V]) bool {
	switch m.kind {
	case msgValue:
		// A remote sender's message never entered the local transit
		// ledger (it left its shard's at flush and crossed as seam
		// wire-recv), so only locally originated messages decrement.
		if d := l.sh.cfg.Dist; d == nil || d.Local(m.from) {
			l.sh.transit.Add(-1)
		}
		l.st.MessagesRecv++
		l.handledSince++
		if m.time < l.fossilFloor {
			l.sh.fail(&supervise.SimError{
				Engine: l.sh.engine, LP: l.id, Phase: "handle", ModeledTime: m.time,
				Kind:  supervise.KindCausality,
				Cause: fmt.Errorf("received message at %d below GVT %d", m.time, l.fossilFloor),
			})
			return false
		}
		if m.time <= l.lvt {
			l.rollback(m.time)
		}
		l.q.ResetFloor()
		l.q.Push(uint64(m.time), qevent[V]{gate: m.gate, value: m.value, id: m.id})
	case msgAnti:
		if d := l.sh.cfg.Dist; d == nil || d.Local(m.from) {
			l.sh.transit.Add(-1)
		}
		l.st.AntiMessagesRecv++
		l.handledSince++
		if m.time < l.fossilFloor {
			l.sh.fail(&supervise.SimError{
				Engine: l.sh.engine, LP: l.id, Phase: "handle", ModeledTime: m.time,
				Kind:  supervise.KindCausality,
				Cause: fmt.Errorf("received anti-message at %d below GVT %d", m.time, l.fossilFloor),
			})
			return false
		}
		if m.time <= l.lvt {
			l.rollback(m.time)
		}
		// The original is now unprocessed (FIFO per link guarantees it
		// arrived first; if it had been processed, the rollback above just
		// requeued it). Tombstone it.
		l.dead[m.id] = true
	case msgGVTRound:
		l.sh.replies <- gvtReply{handled: l.handledSince, localMin: l.localMin()}
		l.handledSince = 0
	case msgGVTDone:
		l.fossilCollect(m.time)
	case msgTerminate:
		return false
	}
	return true
}

// handleAll processes a batch; it returns false on terminate.
func (l *tlp[V]) handleAll(batch []msg[V]) bool {
	for _, m := range batch {
		if !l.handle(m) {
			return false
		}
	}
	return true
}

// run is the LP goroutine body. Batched sends obey one rule: every path
// that can reach WaitDrain (or park the LP in any way) flushes first, so no
// message sits in a local batch while its sender sleeps — GVT quiescence
// and deadlock-freedom both depend on it.
func (l *tlp[V]) run() {
	l.slot.SetPhase(supervise.PhaseRun)
	defer l.slot.SetPhase(supervise.PhaseDone)
	if !l.sh.boot {
		l.execInitial()
		l.flushSends()
	}
	for {
		if l.sh.abort.Load() {
			return
		}
		l.buf = l.sh.inboxes[l.id].TryDrain(l.buf[:0])
		if !l.handleAll(l.buf) {
			return
		}
		l.flushSends() // anti-messages from straggler-induced rollbacks
		if l.sh.paused.Load() {
			// Processing is frozen during GVT computation; keep serving
			// rounds until released.
			begin := l.trsh.Now()
			l.slot.SetPhase(supervise.PhaseBarrier)
			var ok bool
			l.buf, ok = l.sh.inboxes[l.id].WaitDrain(l.buf[:0])
			l.slot.SetPhase(supervise.PhaseRun)
			l.trsh.Span(trace.PhaseBarrier, begin, trace.NoTick)
			if !ok || !l.handleAll(l.buf) {
				return
			}
			l.flushSends()
			continue
		}
		t := l.nextLive()
		// The effective optimism window is the narrowest of the configured
		// window, the adaptive controller's output, and any memory-throttle
		// clamp the coordinator imposed. The clamp folds last so it wins
		// regardless of what the controller asked for.
		win := l.cfg.Window
		if aw := circuit.Tick(l.sh.adaptWin.Load()); aw != 0 && (win == 0 || aw < win) {
			win = aw
		}
		if cl := circuit.Tick(l.sh.clamp.Load()); cl != 0 && (win == 0 || cl < win) {
			win = cl
		}
		blocked := t == infTick || t > l.sh.until ||
			(win > 0 && l.gvt < infTick-win && t > l.gvt+win)
		if blocked {
			// Nothing executable: flush provably wrong lazy sends, then
			// sleep until messages (or a GVT round) arrive.
			l.st.Blocks++
			l.flushLazyBelowNext()
			l.flushSends()
			l.cfg.Chaos.Stall(l.id, inject.PhaseBlock)
			begin := l.trsh.Now()
			l.slot.SetNext(uint64(t))
			l.slot.SetPhase(supervise.PhaseBlock)
			l.sh.idle.Add(1)
			var ok bool
			l.buf, ok = l.sh.inboxes[l.id].WaitDrain(l.buf[:0])
			l.sh.idle.Add(-1)
			l.slot.SetPhase(supervise.PhaseRun)
			l.trsh.Span(trace.PhaseBlock, begin, trace.NoTick)
			if !ok || !l.handleAll(l.buf) {
				return
			}
			l.flushSends()
			continue
		}
		events := l.popBatch(t)
		if len(events) == 0 {
			continue
		}
		processed := l.sh.events.Add(uint64(len(events)))
		if max := l.sh.cfg.MaxEvents; max > 0 && processed > max {
			l.sh.fail(&supervise.SimError{
				Engine: l.sh.engine, LP: l.id, Phase: "run", ModeledTime: t,
				Kind:  supervise.KindEventLimit,
				Cause: fmt.Errorf("event limit %d exceeded at time %d", max, t),
			})
			return
		}
		// Publish the event count before executing so a long evaluation is
		// still visible to the watchdog as progress.
		l.slot.AddEvents(uint64(len(events)))
		l.execStep(t, events, false)
		l.slot.SetLVT(uint64(l.lvt))
		if err := l.q.Err(); err != nil {
			l.sh.fail(&supervise.SimError{
				Engine: l.sh.engine, LP: l.id, Phase: "eventq", ModeledTime: l.lvt,
				Kind: supervise.KindCausality, Cause: err,
			})
			return
		}
		l.flushSends()
		l.cfg.Chaos.Stall(l.id, inject.PhaseEvaluate)
		// Yield between speculative steps. Without this, a single-core
		// scheduler lets one LP race arbitrarily far ahead before its
		// neighbours run at all, and the eventual stragglers roll back
		// nearly everything — optimism thrash that exists only as a
		// scheduling artifact.
		runtime.Gosched()
	}
}
