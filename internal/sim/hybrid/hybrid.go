// Package hybrid implements the hierarchical synchronization scheme from
// the paper's future-directions section: a synchronous algorithm within a
// cluster of processors and an optimistic asynchronous algorithm across
// clusters — "especially attractive for naturally hierarchical execution
// platforms (e.g. networks of workstations where the individual
// workstations are bus-based multiprocessors)".
//
// The engine composes the two existing mechanisms: the circuit is
// partitioned into clusters that run the Time Warp protocol among
// themselves, and each cluster evaluates its per-timestep gate set across
// a pool of barrier-synchronized sub-workers (kernel.StepParallel). The
// modeled execution time therefore combines an intra-cluster critical path
// (max chunk per step plus one barrier per step) with the usual optimistic
// overheads between clusters.
package hybrid

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim/adapt"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/timewarp"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Config parameterizes a hybrid run.
type Config struct {
	// Partition assigns gates to clusters; required.
	Partition *partition.Partition
	// IntraWorkers is the synchronous worker count inside each cluster
	// (>= 1; 1 degenerates to plain Time Warp).
	IntraWorkers int
	// Cancellation, StateSaving and Window configure the inter-cluster
	// optimistic protocol.
	Cancellation timewarp.Cancellation
	StateSaving  timewarp.StateSaving
	Window       circuit.Tick
	// System is the logic value system.
	System logic.System
	// Cost prices the modeled times.
	Cost stats.CostModel
	// Watch lists nets to record; nil watches primary outputs.
	Watch []circuit.GateID
	// MaxEvents aborts runaway simulations; 0 means no limit.
	MaxEvents uint64
	// Metrics receives the per-cluster counters; nil uses a private
	// registry.
	Metrics metrics.Sink
	// Tracer is forwarded to the inter-cluster optimistic protocol.
	Tracer *trace.Tracer
	// Chaos is forwarded to the inter-cluster optimistic protocol's
	// transport layer. Test harness use only.
	Chaos *inject.Hook
	// HangTimeout, HistoryLimit and Boot are forwarded to the
	// inter-cluster optimistic protocol; see timewarp.Config.
	HangTimeout  time.Duration
	HistoryLimit uint64
	Boot         *ckpt.State
	// Sweep arms the oblivious block sweep inside each cluster; see
	// timewarp.Config.Sweep. The natural companion of a cone-split
	// partition: whole combinational cones evaluate in one levelized pass
	// and clusters synchronize only at sequential boundaries.
	Sweep bool
	// Adapt closes the loop on the inter-cluster optimism window; see
	// timewarp.Config.Adapt.
	Adapt *adapt.WindowController
}

// Result is the outcome of a hybrid run.
type Result struct {
	Values   []logic.Value
	Waveform trace.Waveform
	EndTime  circuit.Tick
	Stats    stats.RunStats
	// IntraCritical is each cluster's modeled intra-cluster critical path.
	IntraCritical []float64
	cost          stats.CostModel
	intraWorkers  int
}

// Run simulates c under the stimulus until the given time (inclusive).
func Run(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, cfg Config) (*Result, error) {
	if cfg.Partition == nil {
		return nil, fmt.Errorf("hybrid: Config.Partition is required")
	}
	if cfg.IntraWorkers < 1 {
		cfg.IntraWorkers = 1
	}
	if cfg.Cost == (stats.CostModel{}) {
		cfg.Cost = stats.DefaultCostModel()
	}
	workers := cfg.IntraWorkers
	if workers == 1 {
		workers = 2 // still exercise the parallel step path in degenerate runs
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("hybrid")
	}
	res, err := timewarp.Run(c, stim, until, timewarp.Config{
		Partition:    cfg.Partition,
		Cancellation: cfg.Cancellation,
		StateSaving:  cfg.StateSaving,
		Window:       cfg.Window,
		IntraWorkers: workers,
		Cost:         cfg.Cost,
		System:       cfg.System,
		Watch:        cfg.Watch,
		MaxEvents:    cfg.MaxEvents,
		Metrics:      sink,
		Tracer:       cfg.Tracer,
		Chaos:        cfg.Chaos,
		HangTimeout:  cfg.HangTimeout,
		HistoryLimit: cfg.HistoryLimit,
		Boot:         cfg.Boot,
		Sweep:        cfg.Sweep,
		Adapt:        cfg.Adapt,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Values:        res.Values,
		Waveform:      res.Waveform,
		EndTime:       res.EndTime,
		Stats:         res.Stats,
		IntraCritical: res.IntraCritical,
		cost:          cfg.Cost,
		intraWorkers:  cfg.IntraWorkers,
	}, nil
}

// TotalProcessors reports the modeled machine size: clusters times
// intra-cluster workers.
func (r *Result) TotalProcessors() int {
	return len(r.Stats.LPs) * r.intraWorkers
}

// ModeledTime prices the run: per cluster, the serial evaluation cost is
// replaced by the intra-cluster critical path; the slowest cluster plus
// the inter-cluster GVT overhead bounds the run.
func (r *Result) ModeledTime() float64 {
	m := r.cost
	var worst float64
	for i, lp := range r.Stats.LPs {
		overhead := m.Busy(lp) - m.EvalCost*float64(lp.Evaluations)
		t := overhead
		if i < len(r.IntraCritical) {
			t += r.IntraCritical[i]
		} else {
			t += m.EvalCost * float64(lp.Evaluations)
		}
		if t > worst {
			worst = t
		}
	}
	return worst + float64(r.Stats.GVTRounds)*m.GVT(len(r.Stats.LPs))
}
