package hybrid

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/sim/timewarp"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// WideResult is the outcome of a wide hybrid run.
type WideResult struct {
	Values   []logic.Word
	Waveform trace.WideWaveform
	EndTime  circuit.Tick
	Lanes    int
	Stats    stats.RunStats
	// IntraCritical is each cluster's modeled intra-cluster critical path.
	IntraCritical []float64
	cost          stats.CostModel
	intraWorkers  int
}

// RunWide is the hierarchical engine on 64 packed lanes: clusters
// synchronize optimistically with whole-word Time Warp messages while each
// cluster's sub-workers evaluate the per-timestep dirty set wide. With the
// kernel's oblivious block sweep armed inside each cluster, a saturated
// step processes the cluster's whole combinational block across 64 vectors
// behind one barrier pair.
//
// The wide path does not support checkpoint boot or chaos injection; those
// Config fields must be unset.
func RunWide(c *circuit.Circuit, stim *vectors.WideStimulus, until circuit.Tick, cfg Config) (*WideResult, error) {
	if cfg.Partition == nil {
		return nil, fmt.Errorf("hybrid: Config.Partition is required")
	}
	if cfg.IntraWorkers < 1 {
		cfg.IntraWorkers = 1
	}
	if cfg.Cost == (stats.CostModel{}) {
		cfg.Cost = stats.DefaultCostModel()
	}
	workers := cfg.IntraWorkers
	if workers == 1 {
		workers = 2 // still exercise the parallel step path in degenerate runs
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("hybrid-wide")
	}
	res, err := timewarp.RunWide(c, stim, until, timewarp.Config{
		Partition:    cfg.Partition,
		Cancellation: cfg.Cancellation,
		StateSaving:  cfg.StateSaving,
		Window:       cfg.Window,
		IntraWorkers: workers,
		Cost:         cfg.Cost,
		System:       cfg.System,
		Watch:        cfg.Watch,
		MaxEvents:    cfg.MaxEvents,
		Metrics:      sink,
		Tracer:       cfg.Tracer,
		Chaos:        cfg.Chaos,
		HangTimeout:  cfg.HangTimeout,
		HistoryLimit: cfg.HistoryLimit,
		Boot:         cfg.Boot,
	})
	if err != nil {
		return nil, err
	}
	return &WideResult{
		Values:        res.Values,
		Waveform:      res.Waveform,
		EndTime:       res.EndTime,
		Lanes:         res.Lanes,
		Stats:         res.Stats,
		IntraCritical: res.IntraCritical,
		cost:          cfg.Cost,
		intraWorkers:  cfg.IntraWorkers,
	}, nil
}

// TotalProcessors reports the modeled machine size: clusters times
// intra-cluster workers.
func (r *WideResult) TotalProcessors() int {
	return len(r.Stats.LPs) * r.intraWorkers
}

// ModeledTime prices the run exactly as the scalar hybrid result does.
func (r *WideResult) ModeledTime() float64 {
	m := r.cost
	var worst float64
	for i, lp := range r.Stats.LPs {
		overhead := m.Busy(lp) - m.EvalCost*float64(lp.Evaluations)
		t := overhead
		if i < len(r.IntraCritical) {
			t += r.IntraCritical[i]
		} else {
			t += m.EvalCost * float64(lp.Evaluations)
		}
		if t > worst {
			worst = t
		}
	}
	return worst + float64(r.Stats.GVTRounds)*m.GVT(len(r.Stats.LPs))
}
