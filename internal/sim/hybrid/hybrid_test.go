package hybrid

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/simtest"
	"repro/internal/trace"
	"repro/internal/vectors"
)

func TestMatchesSequentialReference(t *testing.T) {
	corpus, err := simtest.StandardCorpus(41)
	if err != nil {
		t.Fatal(err)
	}
	// A representative subset: the full matrix is covered by the timewarp
	// suite; hybrid adds the intra-cluster parallel step path.
	for _, cs := range corpus[:5] {
		until := seq.Horizon(cs.C, cs.Stim)
		ref, err := seq.Run(cs.C, cs.Stim, until, seq.Config{System: logic.TwoValued})
		if err != nil {
			t.Fatal(err)
		}
		for _, clusters := range []int{2, 3} {
			for _, workers := range []int{2, 4} {
				p, err := partition.New(partition.MethodFM, cs.C, clusters, partition.Options{Seed: 8})
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(cs.C, cs.Stim, until, Config{
					Partition:    p,
					IntraWorkers: workers,
					System:       logic.TwoValued,
				})
				if err != nil {
					t.Fatalf("%s c=%d w=%d: %v", cs.Name, clusters, workers, err)
				}
				if d := trace.Diff(ref.Waveform, res.Waveform, 5); d != "" {
					t.Fatalf("%s c=%d w=%d mismatch:\n%s", cs.Name, clusters, workers, d)
				}
				for g := range ref.Values {
					if ref.Values[g] != res.Values[g] {
						t.Fatalf("%s c=%d w=%d: value mismatch at gate %d", cs.Name, clusters, workers, g)
					}
				}
			}
		}
	}
}

func TestModeledTimeAndProcessors(t *testing.T) {
	c, err := gen.ArrayMultiplier(5, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 12, Period: 50, Activity: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(partition.MethodFM, c, 2, partition.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, stim, seq.Horizon(c, stim), Config{
		Partition:    p,
		IntraWorkers: 4,
		System:       logic.TwoValued,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalProcessors() != 8 {
		t.Fatalf("TotalProcessors = %d, want 8", res.TotalProcessors())
	}
	if res.ModeledTime() <= 0 {
		t.Fatal("no modeled time")
	}
	if len(res.IntraCritical) != 2 {
		t.Fatalf("IntraCritical clusters = %d", len(res.IntraCritical))
	}
	for i, crit := range res.IntraCritical {
		if crit <= 0 {
			t.Fatalf("cluster %d has no intra critical path", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	c, _ := gen.RippleAdder(2, gen.Unit)
	stim, _ := vectors.Random(c, vectors.RandomConfig{Vectors: 1, Period: 5, Activity: 1, Seed: 0})
	if _, err := Run(c, stim, 10, Config{}); err == nil {
		t.Fatal("missing partition accepted")
	}
}
