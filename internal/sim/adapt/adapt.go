// Package adapt implements closed-loop controllers that self-tune a
// running simulation: a hysteretic AIMD controller for the Time Warp
// optimism window (extending the memory-pressure clamp to a throughput
// objective), an engine-switch supervisor that migrates a job between
// the conservative and optimistic protocols from observed null/rollback
// ratios, and a load rebalancer that migrates whole LPs between workers
// from the per-LP utilization scoreboard. The source paper's future
// directions ask for exactly this: dynamic load estimation and runtime
// control of the synchronization mechanism instead of static flags.
//
// # Determinism model
//
// Every controller is a pure function of the sampled-metrics trace it
// observes: feed the same sequence of Samples and it emits the same
// sequence of Decisions. Nothing here reads clocks, channels, or
// random state. That makes the policies testable open-loop — the unit
// harness in this package drives each controller from recorded JSON
// traces in testdata/ and pins the decision logs as goldens — without
// running a simulation at all.
//
// Live runs sample real metrics, whose values vary run to run, so live
// decision sequences may differ between runs. Correctness never
// depends on them: every engine reproduces the sequential trajectory
// exactly, so adaptation changes *when* things execute, never *what*
// is computed. The equivalence suite in internal/simtest/differ
// replays adaptive runs (with both live controllers and forced
// decision scripts) against the golden waveforms to enforce that.
package adapt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Sample is one observation of a run's metrics. The window controller
// consumes cumulative samples (one per GVT round, counters monotone
// within a run) and differences consecutive samples itself; the
// engine-switch and rebalance controllers consume per-segment samples
// whose counters are that segment's totals.
type Sample struct {
	// Round is the observation's sequence number: the GVT round for
	// in-run window samples, the segment index for boundary samples.
	Round int `json:"round"`
	// WallMs is wall-clock milliseconds since the run (or segment)
	// started — the denominator of committed-events/sec.
	WallMs float64 `json:"wall_ms"`
	// GVT is the global virtual time at the sample (window samples).
	GVT uint64 `json:"gvt,omitempty"`
	// Engine names the engine that produced the sample.
	Engine string `json:"engine,omitempty"`

	EventsApplied    uint64 `json:"events_applied"`
	EventsRolledBack uint64 `json:"events_rolled_back,omitempty"`
	Rollbacks        uint64 `json:"rollbacks,omitempty"`
	NullsSent        uint64 `json:"nulls_sent,omitempty"`
	MessagesSent     uint64 `json:"messages_sent,omitempty"`

	// Clamp is the memory-throttle window in force at the sample (0 =
	// none). The window controller must never adapt against it.
	Clamp uint64 `json:"clamp,omitempty"`
	// PerLPEvals is the per-LP utilization scoreboard (evaluations per
	// logical process) for rebalance samples.
	PerLPEvals []uint64 `json:"per_lp_evals,omitempty"`
}

// Decision is one structured controller action, both the in-memory
// decision-log entry of core.Report and the JSON golden format of the
// open-loop harness.
type Decision struct {
	// Round echoes the triggering Sample's sequence number (for
	// scripted decisions: the segment boundary index the decision
	// fires at).
	Round int `json:"round"`
	// Kind is "window", "switch", "rebalance", "commit", or "hold".
	Kind string `json:"kind"`
	// From and To name engines for "switch" decisions.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Window is the new optimism window for "window" decisions
	// (0 = unbounded).
	Window uint64 `json:"window,omitempty"`
	// Reason is the human-readable trigger, stable enough to golden.
	Reason string `json:"reason"`
}

// The decision kinds.
const (
	KindWindow    = "window"
	KindSwitch    = "switch"
	KindRebalance = "rebalance"
	KindCommit    = "commit"
	KindHold      = "hold"
)

// String renders the decision for logs.
func (d Decision) String() string {
	switch d.Kind {
	case KindSwitch:
		return fmt.Sprintf("round %d: switch %s -> %s (%s)", d.Round, d.From, d.To, d.Reason)
	case KindWindow:
		if d.Window == 0 {
			return fmt.Sprintf("round %d: window -> unbounded (%s)", d.Round, d.Reason)
		}
		return fmt.Sprintf("round %d: window -> %d (%s)", d.Round, d.Window, d.Reason)
	default:
		return fmt.Sprintf("round %d: %s (%s)", d.Round, d.Kind, d.Reason)
	}
}

// Spec is the adaptive-control configuration, parseable from the
// -adapt-spec JSON. The zero value (plus WithDefaults) enables all
// three controllers with conservative defaults.
type Spec struct {
	// Every is the adaptation cadence in modeled time: segment
	// boundaries where the engine-switch and rebalance controllers may
	// act fall on multiples of it. 0 defaults to a quarter of the
	// horizon. The window controller is not segmented — it acts inside
	// the run, once per GVT round.
	Every uint64 `json:"every,omitempty"`
	// MaxProbes bounds the number of probing segments: after this many
	// boundary decisions the current engine is committed and the run
	// proceeds unsegmented to the horizon (so adaptation overhead is
	// paid only while the controllers are still deciding). 0 defaults
	// to 4.
	MaxProbes int `json:"max_probes,omitempty"`

	// NoWindow, NoSwitch, and NoRebalance disable individual
	// controllers.
	NoWindow    bool `json:"no_window,omitempty"`
	NoSwitch    bool `json:"no_switch,omitempty"`
	NoRebalance bool `json:"no_rebalance,omitempty"`

	Window    WindowConfig    `json:"window,omitempty"`
	Switch    SwitchConfig    `json:"switch,omitempty"`
	Rebalance RebalanceConfig `json:"rebalance,omitempty"`

	// Script, when non-empty, replaces the boundary controllers with a
	// forced decision sequence: the entry whose Round equals the
	// segment-boundary index fires verbatim. The test harness uses it
	// to pin exact adaptation paths (the waveform must be identical
	// under any decision sequence).
	Script []Decision `json:"script,omitempty"`
}

// WithDefaults fills zero fields from the run horizon.
func (sp Spec) WithDefaults(until uint64) Spec {
	if sp.Every == 0 {
		sp.Every = until / 4
		if sp.Every == 0 {
			sp.Every = 1
		}
	}
	if sp.MaxProbes == 0 {
		sp.MaxProbes = 4
	}
	sp.Window = sp.Window.withDefaults()
	sp.Switch = sp.Switch.withDefaults()
	sp.Rebalance = sp.Rebalance.withDefaults()
	return sp
}

// Scripted returns the forced decision for a segment boundary, if any.
func (sp *Spec) Scripted(seg int) (Decision, bool) {
	for _, d := range sp.Script {
		if d.Round == seg {
			if d.Reason == "" {
				d.Reason = "scripted"
			}
			return d, true
		}
	}
	return Decision{}, false
}

// ParseSpec parses an -adapt-spec argument: inline JSON (first byte
// '{') or a path to a JSON file.
func ParseSpec(arg string) (*Spec, error) {
	data := []byte(arg)
	if len(arg) == 0 {
		return &Spec{}, nil
	}
	if arg[0] != '{' {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("adapt: read spec: %w", err)
		}
		data = b
	}
	sp := &Spec{}
	if err := json.Unmarshal(data, sp); err != nil {
		return nil, fmt.Errorf("adapt: parse spec: %w", err)
	}
	return sp, nil
}

// ReadTrace loads a recorded metrics trace (a JSON array of Samples),
// the open-loop input of the controller test harness.
func ReadTrace(path string) ([]Sample, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr []Sample
	if err := json.Unmarshal(b, &tr); err != nil {
		return nil, fmt.Errorf("adapt: parse trace %s: %w", path, err)
	}
	return tr, nil
}

// sub returns a-b, clamped at zero (samples are expected monotone; a
// malformed trace must not wrap).
func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// ratio divides delta counters with a zero-safe denominator.
func ratio(num, den uint64) float64 {
	if den == 0 {
		den = 1
	}
	return float64(num) / float64(den)
}
