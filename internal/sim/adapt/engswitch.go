package adapt

import (
	"fmt"
	"strings"
)

// SwitchConfig parameterizes the engine-switch supervisor.
type SwitchConfig struct {
	// NullHi is the nulls-per-applied-event ratio above which a
	// conservative engine is judged null-bound and migrated to the
	// optimistic target.
	NullHi float64 `json:"null_hi,omitempty"`
	// RollbackHi is the rolled-back-per-applied-event ratio above which
	// an optimistic engine is judged rollback-bound and migrated to the
	// conservative target.
	RollbackHi float64 `json:"rollback_hi,omitempty"`
	// Patience is how many consecutive breaching segments are required
	// before switching.
	Patience int `json:"patience,omitempty"`
	// Cooldown is how many boundary decisions are skipped after a
	// switch, so the new engine's first segments are not judged while
	// it warms up.
	Cooldown int `json:"cooldown,omitempty"`
	// SettleAfter commits the current engine (ending probing, and with
	// it all segmentation overhead) after this many consecutive
	// in-band segments.
	SettleAfter int `json:"settle_after,omitempty"`
	// MinEvents ignores segments with fewer applied events — too
	// little signal to act on.
	MinEvents uint64 `json:"min_events,omitempty"`
	// Conservative and Optimistic name the migration targets.
	Conservative string `json:"conservative,omitempty"`
	Optimistic   string `json:"optimistic,omitempty"`
}

func (c SwitchConfig) withDefaults() SwitchConfig {
	if c.NullHi == 0 {
		c.NullHi = 4.0
	}
	if c.RollbackHi == 0 {
		c.RollbackHi = 0.35
	}
	if c.Patience == 0 {
		c.Patience = 1
	}
	if c.Cooldown == 0 {
		c.Cooldown = 1
	}
	if c.SettleAfter == 0 {
		c.SettleAfter = 2
	}
	if c.MinEvents == 0 {
		c.MinEvents = 64
	}
	if c.Conservative == "" {
		c.Conservative = "cmb"
	}
	if c.Optimistic == "" {
		c.Optimistic = "timewarp"
	}
	return c
}

// SwitchController decides engine migrations at segment boundaries
// from per-segment samples (counters are segment totals, not
// cumulative). Like every controller here it is a pure function of
// its sample stream.
type SwitchController struct {
	cfg      SwitchConfig
	strikes  int // consecutive breaching segments
	stays    int // consecutive in-band segments
	cooldown int
	log      []Decision
}

// NewSwitchController builds a controller; zero config fields default.
func NewSwitchController(cfg SwitchConfig) *SwitchController {
	return &SwitchController{cfg: cfg.withDefaults()}
}

// Decisions returns the accumulated decision log (including holds).
func (c *SwitchController) Decisions() []Decision { return c.log }

// conservativeEngine classifies an engine name by protocol family.
func conservativeEngine(name string) bool {
	return strings.HasPrefix(name, "cmb") || name == "sync"
}

func optimisticEngine(name string) bool {
	return strings.HasPrefix(name, "timewarp") || name == "hybrid"
}

// Observe feeds one per-segment sample. It returns a Decision and
// whether the caller must act on it ("switch" and "commit" act;
// "hold" entries are returned with acted=false but still logged).
func (c *SwitchController) Observe(s Sample) (Decision, bool) {
	hold := func(reason string) (Decision, bool) {
		d := Decision{Round: s.Round, Kind: KindHold, Reason: reason}
		c.log = append(c.log, d)
		return d, false
	}
	if c.cooldown > 0 {
		c.cooldown--
		return hold("cooling down after switch")
	}
	if s.EventsApplied < c.cfg.MinEvents {
		return hold(fmt.Sprintf("only %d events in segment: no signal", s.EventsApplied))
	}
	nullR := ratio(s.NullsSent, s.EventsApplied)
	rollR := ratio(s.EventsRolledBack, s.EventsApplied)
	var breach bool
	var target, why string
	switch {
	case conservativeEngine(s.Engine) && nullR > c.cfg.NullHi:
		breach = true
		target = c.cfg.Optimistic
		why = fmt.Sprintf("null ratio %.1f > %.1f", nullR, c.cfg.NullHi)
	case optimisticEngine(s.Engine) && rollR > c.cfg.RollbackHi:
		breach = true
		target = c.cfg.Conservative
		why = fmt.Sprintf("rollback ratio %.2f > %.2f", rollR, c.cfg.RollbackHi)
	}
	if !breach {
		c.strikes = 0
		c.stays++
		if c.stays >= c.cfg.SettleAfter {
			d := Decision{Round: s.Round, Kind: KindCommit,
				Reason: fmt.Sprintf("%s in band for %d segments: commit", s.Engine, c.stays)}
			c.log = append(c.log, d)
			return d, true
		}
		return hold(fmt.Sprintf("%s in band (nulls %.1f/evt, rollback %.2f)", s.Engine, nullR, rollR))
	}
	c.stays = 0
	c.strikes++
	if c.strikes < c.cfg.Patience {
		return hold(why + fmt.Sprintf(" (strike %d/%d)", c.strikes, c.cfg.Patience))
	}
	if target == s.Engine {
		return hold(why + ": already on target engine")
	}
	c.strikes = 0
	c.cooldown = c.cfg.Cooldown
	d := Decision{Round: s.Round, Kind: KindSwitch, From: s.Engine, To: target, Reason: why}
	c.log = append(c.log, d)
	return d, true
}

// ReplaySwitch drives a fresh switch controller over a recorded trace
// and returns its decision log.
func ReplaySwitch(cfg SwitchConfig, tr []Sample) []Decision {
	c := NewSwitchController(cfg)
	for _, s := range tr {
		c.Observe(s)
	}
	return c.log
}
