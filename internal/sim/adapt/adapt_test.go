package adapt

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden decision logs from current controller behavior")

// goldenCases pairs each recorded trace with the controller (and
// config) that replays it. Traces are JSON []Sample in testdata/;
// goldens are the decision logs the replay must reproduce exactly.
var goldenCases = []struct {
	name   string
	replay func([]Sample) []Decision
}{
	{"window_rollback_storm", func(tr []Sample) []Decision {
		return ReplayWindow(WindowConfig{}, tr)
	}},
	{"window_clamped", func(tr []Sample) []Decision {
		return ReplayWindow(WindowConfig{}, tr)
	}},
	// Small Max so the trace can walk additive increase all the way to
	// the release-to-unbounded transition.
	{"window_calm_release", func(tr []Sample) []Decision {
		return ReplayWindow(WindowConfig{Initial: 256, Max: 600, Step: 128}, tr)
	}},
	{"window_throughput_guard", func(tr []Sample) []Decision {
		return ReplayWindow(WindowConfig{}, tr)
	}},
	{"switch_null_flood", func(tr []Sample) []Decision {
		return ReplaySwitch(SwitchConfig{}, tr)
	}},
	{"switch_rollback_thrash", func(tr []Sample) []Decision {
		return ReplaySwitch(SwitchConfig{}, tr)
	}},
	{"rebalance_imbalance", func(tr []Sample) []Decision {
		return ReplayRebalance(RebalanceConfig{}, tr)
	}},
}

// TestGoldenDecisions drives every controller open-loop from its
// recorded metrics trace and pins the decision log. Run with -update
// to regenerate the goldens after a deliberate policy change.
func TestGoldenDecisions(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ReadTrace(filepath.Join("testdata", tc.name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			got := tc.replay(tr)
			raw, err := json.MarshalIndent(got, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			raw = append(raw, '\n')
			golden := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.WriteFile(golden, raw, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if string(want) != string(raw) {
				t.Errorf("decision log drifted from golden %s\ngot:\n%s\nwant:\n%s\n(run with -update if the change is deliberate)",
					golden, raw, want)
			}
		})
	}
}

// TestReplayDeterministic replays every trace twice and demands
// identical decision logs — the controllers' core contract: decisions
// are a pure function of the sampled-metrics trace.
func TestReplayDeterministic(t *testing.T) {
	for _, tc := range goldenCases {
		tr, err := ReadTrace(filepath.Join("testdata", tc.name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		a, b := tc.replay(tr), tc.replay(tr)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: replay is not deterministic:\n%v\nvs\n%v", tc.name, a, b)
		}
	}
}

// TestClampAlwaysWins is the memory-throttle regression: whenever a
// sample carries a clamp, the controller's window must not exceed it,
// and the controller must not grow the window at all while clamped —
// growing against the clamp is the feedback fight the livelock guard
// exists to prevent.
func TestClampAlwaysWins(t *testing.T) {
	tr, err := ReadTrace(filepath.Join("testdata", "window_clamped.json"))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWindowController(WindowConfig{})
	var prevWin uint64
	for i, s := range tr {
		win, _ := w.Observe(s)
		if s.Clamp != 0 {
			if win == 0 || win > s.Clamp {
				t.Fatalf("sample %d: controller window %d exceeds clamp %d", i, win, s.Clamp)
			}
			if i > 0 && tr[i-1].Clamp != 0 && prevWin != 0 && win > prevWin {
				t.Fatalf("sample %d: controller grew %d -> %d while clamped", i, prevWin, win)
			}
		}
		prevWin = win
	}
	// After the clamp releases the controller must resume additive
	// increase from the clamp's setpoint, not snap back to a wide
	// window in one step.
	if got := w.Window(); got == 0 || got > 150+2*1024 {
		t.Fatalf("post-clamp window %d did not resume from the clamp setpoint", got)
	}
}

// TestClampLivelockGuard feeds an unchanging over-limit observation
// forever: the controller must reach a fixed point (adopt the clamp
// and hold), not oscillate or ratchet — an oscillating target would
// chase the engine-side clamp in circles.
func TestClampLivelockGuard(t *testing.T) {
	w := NewWindowController(WindowConfig{})
	s := Sample{Round: 0, WallMs: 10, EventsApplied: 1000, Clamp: 64}
	var last uint64
	for i := 0; i < 50; i++ {
		s.Round = i
		s.WallMs += 10
		s.EventsApplied += 1000
		win, changed := w.Observe(s)
		if i > 1 && changed {
			t.Fatalf("iteration %d: window still moving (%d -> %d) under a constant clamp", i, last, win)
		}
		last = win
	}
	if last != 64 {
		t.Fatalf("fixed point %d, want the clamp value 64", last)
	}
	if w.Changes() != 1 {
		t.Fatalf("expected exactly one change (adopting the clamp), got %d", w.Changes())
	}
}

// TestWindowIdleRoundsHold verifies rounds with no applied events
// carry no signal.
func TestWindowIdleRoundsHold(t *testing.T) {
	w := NewWindowController(WindowConfig{})
	w.Observe(Sample{Round: 0, WallMs: 10, EventsApplied: 1000, EventsRolledBack: 900})
	w.Observe(Sample{Round: 1, WallMs: 20, EventsApplied: 3000, EventsRolledBack: 2700})
	engaged := w.Window()
	if engaged == 0 {
		t.Fatal("storm sample did not engage the controller")
	}
	for i := 2; i < 10; i++ {
		if win, changed := w.Observe(Sample{Round: i, WallMs: float64(10 * (i + 1)), EventsApplied: 3000, EventsRolledBack: 2700}); changed || win != engaged {
			t.Fatalf("idle round %d moved the window %d -> %d", i, engaged, win)
		}
	}
}

// TestResetEpoch verifies the cross-segment re-baseline: after a
// reset, the first sample of the new run (whose counters restarted
// from zero) must not be differenced against the old run's totals.
func TestResetEpoch(t *testing.T) {
	w := NewWindowController(WindowConfig{})
	w.Observe(Sample{Round: 0, WallMs: 10, EventsApplied: 100000, EventsRolledBack: 90000})
	w.Observe(Sample{Round: 1, WallMs: 20, EventsApplied: 200000, EventsRolledBack: 180000})
	win := w.Window()
	w.ResetEpoch()
	// New engine run: counters restart. Without the re-baseline this
	// would be a huge negative delta.
	if got, changed := w.Observe(Sample{Round: 0, WallMs: 5, EventsApplied: 500}); changed || got != win {
		t.Fatalf("first post-reset sample moved the window %d -> %d", win, got)
	}
	if got, _ := w.Observe(Sample{Round: 1, WallMs: 10, EventsApplied: 1500, EventsRolledBack: 900}); got >= win && win > 16 {
		t.Fatalf("post-reset storm did not decrease the window (still %d from %d)", got, win)
	}
}

// TestSwitchTargetsParse pins the migration targets to names the core
// engine parser accepts (the supervisor ParseEngines these verbatim).
func TestSwitchTargetsParse(t *testing.T) {
	cfg := SwitchConfig{}.withDefaults()
	for _, name := range []string{cfg.Conservative, cfg.Optimistic} {
		if !conservativeEngine(name) && !optimisticEngine(name) {
			t.Errorf("default target %q is not classified by the controller itself", name)
		}
	}
}

// TestSpecRoundTrip exercises ParseSpec on inline JSON and files.
func TestSpecRoundTrip(t *testing.T) {
	sp, err := ParseSpec(`{"every": 100, "no_rebalance": true, "script": [{"round": 1, "kind": "switch", "to": "timewarp"}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Every != 100 || !sp.NoRebalance || len(sp.Script) != 1 {
		t.Fatalf("inline spec parsed wrong: %+v", sp)
	}
	d, ok := sp.Scripted(1)
	if !ok || d.Kind != KindSwitch || d.To != "timewarp" || d.Reason != "scripted" {
		t.Fatalf("Scripted(1) = %+v, %v", d, ok)
	}
	if _, ok := sp.Scripted(0); ok {
		t.Fatal("Scripted(0) matched nothing")
	}

	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{"max_probes": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err = ParseSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if sp.MaxProbes != 7 {
		t.Fatalf("file spec parsed wrong: %+v", sp)
	}
	if _, err := ParseSpec(`{"every": `); err == nil {
		t.Fatal("malformed inline spec accepted")
	}
	if _, err := ParseSpec("/nonexistent/spec.json"); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

// TestWithDefaults pins the derived defaults.
func TestWithDefaults(t *testing.T) {
	sp := Spec{}.WithDefaults(1000)
	if sp.Every != 250 || sp.MaxProbes != 4 {
		t.Fatalf("defaults: %+v", sp)
	}
	if sp.Window.Initial == 0 || sp.Switch.Conservative == "" || sp.Rebalance.ImbalanceHi == 0 {
		t.Fatalf("controller defaults not filled: %+v", sp)
	}
	if sp = (Spec{}).WithDefaults(2); sp.Every != 1 {
		t.Fatalf("tiny-horizon Every = %d, want 1", sp.Every)
	}
}
