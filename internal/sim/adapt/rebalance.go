package adapt

import "fmt"

// RebalanceConfig parameterizes the load rebalancer.
type RebalanceConfig struct {
	// ImbalanceHi triggers a rebalance when the busiest LP's
	// evaluation count exceeds this multiple of the mean.
	ImbalanceHi float64 `json:"imbalance_hi,omitempty"`
	// MinEvals ignores segments with less total work than this.
	MinEvals uint64 `json:"min_evals,omitempty"`
	// Cooldown skips this many boundary decisions after a rebalance.
	Cooldown int `json:"cooldown,omitempty"`
	// MaxMoves bounds how many rebalances a run may perform.
	MaxMoves int `json:"max_moves,omitempty"`
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.ImbalanceHi == 0 {
		c.ImbalanceHi = 1.5
	}
	if c.MinEvals == 0 {
		c.MinEvals = 256
	}
	if c.Cooldown == 0 {
		c.Cooldown = 1
	}
	if c.MaxMoves == 0 {
		c.MaxMoves = 2
	}
	return c
}

// Rebalancer decides LP migrations at segment boundaries from the
// per-LP utilization scoreboard (Sample.PerLPEvals, segment totals).
// It only decides *that* placement must change; the supervisor turns
// the same utilization vector into measured partitioner weights, so
// the next segment's partition spreads observed load instead of
// static estimates. A pure function of its sample stream.
type Rebalancer struct {
	cfg      RebalanceConfig
	cooldown int
	moves    int
	log      []Decision
}

// NewRebalancer builds a rebalancer; zero config fields default.
func NewRebalancer(cfg RebalanceConfig) *Rebalancer {
	return &Rebalancer{cfg: cfg.withDefaults()}
}

// Decisions returns the accumulated decision log.
func (r *Rebalancer) Decisions() []Decision { return r.log }

// Observe feeds one per-segment utilization sample; acted is true for
// a "rebalance" decision the caller must apply.
func (r *Rebalancer) Observe(s Sample) (Decision, bool) {
	hold := func(reason string) (Decision, bool) {
		d := Decision{Round: s.Round, Kind: KindHold, Reason: reason}
		r.log = append(r.log, d)
		return d, false
	}
	if r.cooldown > 0 {
		r.cooldown--
		return hold("cooling down after rebalance")
	}
	if r.moves >= r.cfg.MaxMoves {
		return hold("rebalance budget exhausted")
	}
	if len(s.PerLPEvals) < 2 {
		return hold("fewer than two LPs: nothing to balance")
	}
	var total, max uint64
	busiest := 0
	for i, v := range s.PerLPEvals {
		total += v
		if v > max {
			max, busiest = v, i
		}
	}
	if total < r.cfg.MinEvals {
		return hold(fmt.Sprintf("only %d evaluations in segment: no signal", total))
	}
	mean := float64(total) / float64(len(s.PerLPEvals))
	imb := float64(max) / mean
	if imb <= r.cfg.ImbalanceHi {
		return hold(fmt.Sprintf("imbalance %.2f within %.2f", imb, r.cfg.ImbalanceHi))
	}
	r.cooldown = r.cfg.Cooldown
	r.moves++
	d := Decision{Round: s.Round, Kind: KindRebalance,
		Reason: fmt.Sprintf("lp %d carries %.2fx the mean load: repartition on measured weights", busiest, imb)}
	r.log = append(r.log, d)
	return d, true
}

// ReplayRebalance drives a fresh rebalancer over a recorded trace and
// returns its decision log.
func ReplayRebalance(cfg RebalanceConfig, tr []Sample) []Decision {
	r := NewRebalancer(cfg)
	for _, s := range tr {
		r.Observe(s)
	}
	return r.log
}
