package adapt

import "fmt"

// WindowConfig parameterizes the AIMD optimism-window controller.
type WindowConfig struct {
	// Initial is the window adopted when the controller first engages
	// (first multiplicative decrease from the unbounded state).
	Initial uint64 `json:"initial,omitempty"`
	// Min and Max bound the adapted window. When additive increase
	// reaches Max the controller releases the window back to unbounded.
	Min uint64 `json:"min,omitempty"`
	Max uint64 `json:"max,omitempty"`
	// Step is the additive increase per calm sample.
	Step uint64 `json:"step,omitempty"`
	// RollbackHi triggers multiplicative decrease when the per-sample
	// rollback ratio (events rolled back / events applied) exceeds it;
	// RollbackLo permits additive increase below it. The band between
	// the two is the hysteresis deadband where the window holds.
	RollbackHi float64 `json:"rollback_hi,omitempty"`
	RollbackLo float64 `json:"rollback_lo,omitempty"`
	// GuardPct is the throughput guard: if committed-events/sec drops
	// by more than this fraction in the sample after an increase, the
	// increase is rolled back even inside the deadband.
	GuardPct float64 `json:"guard_pct,omitempty"`
}

func (c WindowConfig) withDefaults() WindowConfig {
	if c.Initial == 0 {
		c.Initial = 1024
	}
	if c.Min == 0 {
		c.Min = 16
	}
	if c.Max == 0 {
		c.Max = 1 << 20
	}
	if c.Step == 0 {
		c.Step = 128
	}
	if c.RollbackHi == 0 {
		c.RollbackHi = 0.25
	}
	if c.RollbackLo == 0 {
		c.RollbackLo = 0.10
	}
	if c.GuardPct == 0 {
		c.GuardPct = 0.30
	}
	return c
}

// WindowController is the hysteretic throughput-seeking optimism-window
// controller: AIMD on the rollback ratio, with committed-events/sec as
// a guard objective. It extends the memory-pressure clamp rather than
// fighting it — while a clamp is in force the controller freezes (no
// growth) and adopts the clamp as its own setpoint, so the engine-side
// min-fold (configured window ∧ clamp ∧ adapted window) always
// resolves to the clamp. The zero ambient state is "unbounded"
// (window 0): the controller only engages when rollback pressure
// appears and fully releases when calm persists.
//
// Observe is a pure function of the sample stream: no clocks, no
// randomness. The coordinator calls it from a single goroutine, once
// per GVT round.
type WindowController struct {
	cfg WindowConfig

	win      uint64 // current adapted window; 0 = unbounded
	have     bool   // prev is valid
	prev     Sample
	prevRate float64 // committed-events/ms of the previous sample
	haveRate bool
	grew     bool // last action was an additive increase

	changes int
	log     []Decision
}

// NewWindowController builds a controller; zero config fields default.
func NewWindowController(cfg WindowConfig) *WindowController {
	return &WindowController{cfg: cfg.withDefaults()}
}

// Window reports the current adapted window (0 = unbounded).
func (w *WindowController) Window() uint64 { return w.win }

// Changes reports how many times the window moved.
func (w *WindowController) Changes() int { return w.changes }

// Decisions returns the accumulated decision log.
func (w *WindowController) Decisions() []Decision { return w.log }

// ResetEpoch re-baselines the delta computation. The adaptive
// supervisor calls it between segments: each engine run restarts its
// counters from zero, so the first sample of a new run must not be
// differenced against the last sample of the previous one. The
// adapted window itself carries over.
func (w *WindowController) ResetEpoch() {
	w.have = false
	w.haveRate = false
	w.grew = false
}

// Observe feeds one cumulative sample and returns the adapted window
// and whether it changed.
func (w *WindowController) Observe(s Sample) (uint64, bool) {
	if !w.have {
		w.have, w.prev = true, s
		return w.win, false
	}
	dApplied := sub(s.EventsApplied, w.prev.EventsApplied)
	dRolled := sub(s.EventsRolledBack, w.prev.EventsRolledBack)
	dWall := s.WallMs - w.prev.WallMs
	w.prev = s
	if dApplied == 0 {
		// An idle round carries no signal; hold everything.
		return w.win, false
	}
	if dRolled > dApplied {
		dRolled = dApplied
	}
	rollback := float64(dRolled) / float64(dApplied)
	rate := float64(dApplied - dRolled)
	if dWall > 0 {
		rate /= dWall
	}
	prevRate, hadRate := w.prevRate, w.haveRate
	w.prevRate, w.haveRate = rate, true

	old := w.win
	var reason string
	switch {
	case s.Clamp != 0:
		// The memory clamp owns the window: freeze growth (growing a
		// target the clamp would instantly re-shrink is the livelock
		// the regression suite guards against) and adopt the clamp as
		// the controller's own setpoint so release starts from where
		// memory pressure left off.
		if w.win == 0 || w.win > s.Clamp {
			w.win = s.Clamp
			reason = fmt.Sprintf("memory clamp %d in force: adopt it", s.Clamp)
		}
		w.grew = false
	case rollback > w.cfg.RollbackHi:
		if w.win == 0 {
			w.win = w.cfg.Initial
		} else {
			w.win /= 2
		}
		if w.win < w.cfg.Min {
			w.win = w.cfg.Min
		}
		reason = fmt.Sprintf("rollback ratio %.2f > %.2f: multiplicative decrease", rollback, w.cfg.RollbackHi)
		w.grew = false
	case w.grew && hadRate && prevRate > 0 && rate < prevRate*(1-w.cfg.GuardPct):
		// The last increase cost throughput even though rollbacks stayed
		// in band; undo it.
		w.win /= 2
		if w.win < w.cfg.Min {
			w.win = w.cfg.Min
		}
		reason = fmt.Sprintf("committed rate fell %.0f%% after increase: back off",
			100*(1-rate/prevRate))
		w.grew = false
	case rollback < w.cfg.RollbackLo && w.win != 0:
		w.win += w.cfg.Step
		w.grew = true
		if w.win >= w.cfg.Max {
			w.win = 0
			w.grew = false
			reason = fmt.Sprintf("rollback ratio %.2f < %.2f at max: release to unbounded", rollback, w.cfg.RollbackLo)
		} else {
			reason = fmt.Sprintf("rollback ratio %.2f < %.2f: additive increase", rollback, w.cfg.RollbackLo)
		}
	default:
		// Hysteresis deadband (or already unbounded and calm): hold.
		w.grew = false
	}
	if w.win == old {
		return w.win, false
	}
	w.changes++
	w.log = append(w.log, Decision{Round: s.Round, Kind: KindWindow, Window: w.win, Reason: reason})
	return w.win, true
}

// ReplayWindow drives a fresh window controller over a recorded trace
// and returns its decision log — the open-loop harness entry point.
func ReplayWindow(cfg WindowConfig, tr []Sample) []Decision {
	w := NewWindowController(cfg)
	for _, s := range tr {
		w.Observe(s)
	}
	return w.log
}
