package ckpt

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/trace"
)

func sample(t *testing.T) (*circuit.Circuit, *State) {
	t.Helper()
	c, err := gen.ByName("c17", gen.Unit, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := len(c.Gates)
	mk := func(v logic.Value) []logic.Value {
		s := make([]logic.Value, n)
		for i := range s {
			s[i] = v
		}
		return s
	}
	return c, &State{
		Version:     Version,
		Fingerprint: Fingerprint(c),
		Time:        100,
		Until:       400,
		System:      uint8(logic.NineValued),
		EndTime:     97,
		Vals:        mk(logic.One),
		PrevClk:     mk(logic.Zero),
		Projected:   mk(logic.One),
		Events:      []Event{{Time: 101, Gate: 0, Value: logic.Zero}},
		Waveform:    []Sample{{Time: 5, Gate: c.Outputs[0], Value: logic.One}},
	}
}

func TestRoundTripFile(t *testing.T) {
	c, st := sample(t)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := WriteFile(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Check(c, logic.NineValued); err != nil {
		t.Fatalf("round-tripped snapshot fails Check: %v", err)
	}
	if got.Time != st.Time || got.EndTime != st.EndTime || len(got.Events) != 1 || len(got.Vals) != len(st.Vals) {
		t.Errorf("round trip lost data: %+v", got)
	}
	if got.Events[0] != st.Events[0] {
		t.Errorf("event round trip: got %+v want %+v", got.Events[0], st.Events[0])
	}
}

func TestCheckRejections(t *testing.T) {
	c, _ := sample(t)
	other, err := gen.ByName("s27", gen.Unit, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mut    func(*State)
		circ   *circuit.Circuit
		sys    logic.System
		substr string
	}{
		{"version", func(s *State) { s.Version = "bogus/v9" }, c, logic.NineValued, "version"},
		{"fingerprint", func(s *State) {}, other, logic.NineValued, "fingerprint"},
		{"system", func(s *State) {}, c, logic.TwoValued, "logic"},
		{"planes", func(s *State) { s.Vals = s.Vals[:1] }, c, logic.NineValued, "planes"},
		{"event-time", func(s *State) { s.Events[0].Time = 100 }, c, logic.NineValued, "boundary"},
		{"event-gate", func(s *State) { s.Events[0].Gate = circuit.GateID(len(c.Gates)) }, c, logic.NineValued, "outside"},
	}
	for _, tc := range cases {
		_, st := sample(t)
		tc.mut(st)
		err := st.Check(tc.circ, tc.sys)
		if err == nil {
			t.Errorf("%s: Check accepted a bad snapshot", tc.name)
		} else if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.substr)
		}
	}
}

func TestWaveformConversion(t *testing.T) {
	w := trace.Waveform{{Time: 3, Gate: 1, Value: logic.One}, {Time: 9, Gate: 2, Value: logic.Zero}}
	st := &State{Waveform: FromWaveform(w)}
	back := st.Prefix()
	if len(back) != len(w) {
		t.Fatalf("length %d, want %d", len(back), len(w))
	}
	for i := range w {
		if back[i] != w[i] {
			t.Errorf("sample %d: got %+v want %+v", i, back[i], w[i])
		}
	}
	// Prefix must hand out a fresh slice each call.
	p1 := st.Prefix()
	p1[0].Time = 999
	if st.Prefix()[0].Time == 999 {
		t.Error("Prefix aliases its backing store")
	}
}

func TestFingerprintDistinguishesCircuits(t *testing.T) {
	a, err := gen.ByName("c17", gen.Unit, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.ByName("s27", gen.Unit, 1)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("different circuits share a fingerprint")
	}
	if Fingerprint(a) != Fingerprint(a) {
		t.Error("fingerprint is not deterministic")
	}
}
