package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// Distributed recovery restores checkpoints written by a process that
// may have died mid-write: a snapshot that does not decode, or whose
// payload was silently damaged, must surface as a structured error
// wrapping ErrCorrupt — never a panic, never a silently wrong restore.

func writeSample(t *testing.T) (string, []byte) {
	t.Helper()
	_, st := sample(t)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := WriteFile(path, st); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestReadTruncatedIsErrCorrupt(t *testing.T) {
	path, raw := writeSample(t)
	for _, n := range []int{0, 1, 10, len(raw) / 2, len(raw) - 2} {
		if err := os.WriteFile(path, raw[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ReadFile(path)
		if err == nil {
			t.Fatalf("truncation to %d bytes read back without error", n)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation to %d bytes: error does not wrap ErrCorrupt: %v", n, err)
		}
	}
}

func TestReadBitFlippedPayloadIsErrCorrupt(t *testing.T) {
	path, raw := writeSample(t)
	// A single-field mutation that keeps the JSON valid: the boundary
	// time. Only the checksum can catch it.
	flipped := bytes.Replace(raw, []byte(`"time":100`), []byte(`"time":101`), 1)
	if bytes.Equal(flipped, raw) {
		t.Fatal("fixture did not contain the expected time field")
	}
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit-flipped payload: error does not wrap ErrCorrupt: %v", err)
	}

	// A flip inside the recorded checksum itself must also be caught.
	re := regexp.MustCompile(`"sum":"fnv64a:([0-9a-f])`)
	m := re.FindSubmatchIndex(raw)
	if m == nil {
		t.Fatal("fixture has no sum field")
	}
	bad := append([]byte(nil), raw...)
	if bad[m[2]] == 'f' {
		bad[m[2]] = '0'
	} else {
		bad[m[2]] = 'f'
	}
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("damaged checksum: error does not wrap ErrCorrupt: %v", err)
	}
}

func TestReadLegacySnapshotWithoutSum(t *testing.T) {
	path, raw := writeSample(t)
	// Pre-checksum snapshots have no sum field; they must still load.
	legacy := regexp.MustCompile(`,"sum":"fnv64a:[0-9a-f]{16}"`).ReplaceAll(raw, nil)
	if bytes.Equal(legacy, raw) {
		t.Fatal("fixture has no sum field to strip")
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err != nil {
		t.Errorf("legacy snapshot without sum rejected: %v", err)
	}
}

func TestSealVerify(t *testing.T) {
	_, st := sample(t)
	st.Seal()
	if err := st.Verify(); err != nil {
		t.Fatalf("freshly sealed snapshot fails Verify: %v", err)
	}
	st.Events[0].Time++
	if err := st.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mutated snapshot passes Verify: %v", err)
	}
}
