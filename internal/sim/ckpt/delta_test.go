package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// fakeState builds a sealed synthetic snapshot: the delta layer never
// inspects circuit topology (only the fingerprint string), so unit
// tests can fabricate trajectories without building a circuit.
func fakeState(t uint64, vals []logic.Value, wf []Sample) *State {
	s := &State{
		Version: Version, Fingerprint: "fnv64a:feedfacecafebeef",
		Time: t, Until: 500, System: 4, EndTime: t,
		Vals:      append([]logic.Value(nil), vals...),
		PrevClk:   make([]logic.Value, len(vals)),
		Projected: append([]logic.Value(nil), vals...),
		Events:    []Event{{Time: t + 3, Gate: 1, Value: 1}},
		Waveform:  wf,
	}
	s.Seal()
	return s
}

// step advances a fake trajectory one boundary: flip some gates, extend
// the waveform.
func step(base *State, t uint64, flip []circuit.GateID) *State {
	vals := append([]logic.Value(nil), base.Vals...)
	for _, g := range flip {
		vals[g] ^= 1
	}
	wf := append(append([]Sample(nil), base.Waveform...), Sample{Time: t, Gate: flip[0], Value: vals[flip[0]]})
	return fakeState(t, vals, wf)
}

// TestDeltaRoundTrip is the core chain property: DeltaFrom then Apply
// reconstructs the boundary state exactly — same checksum, deep-equal
// payload — across a multi-link chain.
func TestDeltaRoundTrip(t *testing.T) {
	s0 := fakeState(100, []logic.Value{0, 1, 0, 1}, []Sample{{Time: 50, Gate: 0, Value: 1}})
	s1 := step(s0, 200, []circuit.GateID{0, 2})
	s2 := step(s1, 300, []circuit.GateID{1})

	d1, err := DeltaFrom(s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DeltaFrom(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	// A delta must be sparse: only the flipped gates appear.
	if len(d1.Changed) != 2 || len(d2.Changed) != 1 {
		t.Fatalf("changed sets sized %d/%d, want 2/1", len(d1.Changed), len(d2.Changed))
	}
	// Replay the chain from the base.
	r1, err := d1.Apply(s0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d2.Apply(r1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sum != s1.Sum || !reflect.DeepEqual(r1, s1) {
		t.Errorf("link 1 restore diverges:\n got %+v\nwant %+v", r1, s1)
	}
	if r2.Sum != s2.Sum || !reflect.DeepEqual(r2, s2) {
		t.Errorf("link 2 restore diverges:\n got %+v\nwant %+v", r2, s2)
	}
}

// TestDeltaFileRoundTripAndCorruption covers the file layer: a written
// delta reads back intact; truncation and payload bit flips surface as
// structured ErrCorrupt, never as a silently different record.
func TestDeltaFileRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	s0 := fakeState(100, []logic.Value{0, 1, 0, 1}, nil)
	s1 := step(s0, 200, []circuit.GateID{3})
	d, err := DeltaFrom(s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "delta.json")
	if err := WriteDeltaFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("file round trip diverges:\n got %+v\nwant %+v", got, d)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation: the writer died before the atomic rename ever happened.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDeltaFile(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated delta: err = %v, want ErrCorrupt", err)
	}
	// Bit flip: mutate a payload field, leave the recorded checksum.
	flipped := strings.Replace(string(raw), `"base_time":100`, `"base_time":101`, 1)
	if flipped == string(raw) {
		t.Fatal("bit-flip substitution found nothing to replace")
	}
	if err := os.WriteFile(path, []byte(flipped), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDeltaFile(path); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit-flipped delta: err = %v, want ErrCorrupt", err)
	}
	// Version skew is a schema error, not corruption.
	skew := strings.Replace(string(raw), DeltaVersion, "parsim-ckpt-delta/v0", 1)
	if err := os.WriteFile(path, []byte(skew), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDeltaFile(path); err == nil || errors.Is(err, ErrCorrupt) {
		t.Errorf("version-skewed delta: err = %v, want non-corrupt version error", err)
	}
}

// TestDeltaApplyRejectsWrongBase pins the chain-link checks: applying
// a delta to any state other than its exact recorded predecessor —
// wrong checksum, wrong boundary time — is ErrCorrupt.
func TestDeltaApplyRejectsWrongBase(t *testing.T) {
	s0 := fakeState(100, []logic.Value{0, 1, 0, 1}, nil)
	s1 := step(s0, 200, []circuit.GateID{0})
	s2 := step(s1, 300, []circuit.GateID{1})
	d2, err := DeltaFrom(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong base entirely (the grandparent): BaseSum mismatch.
	if _, err := d2.Apply(s0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("apply to grandparent: err = %v, want ErrCorrupt", err)
	}
	// Unsealed base: the chain link cannot be checked, so refuse.
	unsealed := step(s0, 200, []circuit.GateID{0})
	unsealed.Sum = ""
	if _, err := d2.Apply(unsealed); !errors.Is(err, ErrCorrupt) {
		t.Errorf("apply to unsealed base: err = %v, want ErrCorrupt", err)
	}
	// A gate index outside the circuit in a verified record still must
	// not panic or write out of bounds.
	dBad, err := DeltaFrom(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	dBad.Changed[0].Gate = 99
	dBad.Seal()
	if _, err := dBad.Apply(s1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("out-of-range gate: err = %v, want ErrCorrupt", err)
	}
}

// TestDeltaFromRejectsInvalidPairs pins DeltaFrom's preconditions:
// mismatched workloads, non-advancing boundaries, and unsealed bases
// are diffing errors, not silently empty deltas.
func TestDeltaFromRejectsInvalidPairs(t *testing.T) {
	s0 := fakeState(100, []logic.Value{0, 1}, nil)
	s1 := step(s0, 200, []circuit.GateID{0})

	other := fakeState(200, []logic.Value{0, 1}, nil)
	other.Fingerprint = "fnv64a:0000000000000000"
	other.Seal()
	if _, err := DeltaFrom(s0, other); err == nil {
		t.Error("cross-workload delta accepted")
	}
	if _, err := DeltaFrom(s1, s0); err == nil {
		t.Error("backwards delta accepted")
	}
	unsealed := fakeState(100, []logic.Value{0, 1}, nil)
	unsealed.Sum = ""
	if _, err := DeltaFrom(unsealed, s1); err == nil {
		t.Error("delta from unsealed base accepted")
	}
}
