// Incremental (delta) checkpoints. A Delta records only what changed
// between two consecutive sealed boundary snapshots of the same run:
// the gates whose value planes moved, the full replacement pending-event
// set (small by construction), and the waveform suffix recorded after
// the base boundary. Deltas are fingerprint-chained: each one names the
// payload checksum of the exact predecessor state it applies to, so a
// replayed chain either reconstructs the full snapshot byte-for-byte or
// fails with a structured ErrCorrupt — never a silently wrong restore.
//
// The trajectory of every engine in this repository is deterministic,
// so a delta's content depends only on (workload, base boundary,
// boundary), never on which run attempt wrote it — the same property
// the full per-shard snapshots rely on for merge-safety across fleet
// restarts.
package ckpt

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// DeltaVersion is the delta-record format identifier. Bump on any
// incompatible schema change.
const DeltaVersion = "parsim-ckpt-delta/v1"

// DeltaEntry is one changed gate: the three kernel value-plane entries
// at the new boundary.
type DeltaEntry struct {
	Gate      circuit.GateID `json:"g"`
	Val       logic.Value    `json:"v"`
	PrevClk   logic.Value    `json:"p"`
	Projected logic.Value    `json:"j"`
}

// Delta is one incremental checkpoint record: everything needed to roll
// a sealed base state at BaseTime forward to Time.
type Delta struct {
	Version     string `json:"version"`
	Fingerprint string `json:"circuit"`
	// Time is the new boundary; BaseTime is the predecessor boundary the
	// delta applies to.
	Time     uint64 `json:"time"`
	BaseTime uint64 `json:"base_time"`
	// BaseSum is the payload checksum of the exact predecessor state —
	// the chain link. Apply refuses a base whose Sum differs.
	BaseSum string `json:"base_sum"`
	Until   uint64 `json:"until"`
	System  uint8  `json:"system"`
	EndTime uint64 `json:"end_time"`

	// Changed lists the gates whose value planes differ from the base.
	Changed []DeltaEntry `json:"changed"`
	// Events replaces the base's pending-event set outright.
	Events []Event `json:"events"`
	// Waveform is the sample suffix recorded after the base boundary.
	Waveform []Sample `json:"waveform"`

	// Sum is the fnv64a checksum over the fields above, same scheme as
	// State.Sum.
	Sum string `json:"sum,omitempty"`
}

// sum computes the delta's own payload checksum.
func (d *Delta) sum() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s %s %d %d %s %d %d %d\n",
		d.Version, d.Fingerprint, d.Time, d.BaseTime, d.BaseSum, d.Until, d.System, d.EndTime)
	for _, e := range d.Changed {
		fmt.Fprintf(h, "c %d %d %d %d\n", e.Gate, e.Val, e.PrevClk, e.Projected)
	}
	for _, ev := range d.Events {
		fmt.Fprintf(h, "e %d %d %d\n", ev.Time, ev.Gate, ev.Value)
	}
	for _, sm := range d.Waveform {
		fmt.Fprintf(h, "w %d %d %d\n", sm.Time, sm.Gate, sm.Value)
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// Seal fills in the delta's checksum; WriteDelta calls it automatically.
func (d *Delta) Seal() { d.Sum = d.sum() }

// Verify checks the delta's checksum, wrapping ErrCorrupt on mismatch.
func (d *Delta) Verify() error {
	if d.Sum == "" {
		return nil
	}
	if got := d.sum(); got != d.Sum {
		return fmt.Errorf("%w: delta checksum %s, recorded %s (bit flip?)", ErrCorrupt, got, d.Sum)
	}
	return nil
}

// DeltaFrom diffs two consecutive sealed boundary states of one run
// into a delta record. base must be the sealed state at the previous
// boundary of the same trajectory: cur's waveform extends base's, and
// cur's planes are the base's with the changed gates overwritten.
func DeltaFrom(base, cur *State) (*Delta, error) {
	if base.Fingerprint != cur.Fingerprint || base.System != cur.System {
		return nil, fmt.Errorf("ckpt: delta across different workloads (fp %s vs %s, sys %d vs %d)",
			base.Fingerprint, cur.Fingerprint, base.System, cur.System)
	}
	if base.Time >= cur.Time {
		return nil, fmt.Errorf("ckpt: delta base t=%d not before boundary t=%d", base.Time, cur.Time)
	}
	if base.Sum == "" {
		return nil, fmt.Errorf("ckpt: delta base at t=%d is unsealed", base.Time)
	}
	if len(base.Vals) != len(cur.Vals) ||
		len(base.Waveform) > len(cur.Waveform) {
		return nil, fmt.Errorf("ckpt: delta base does not prefix the boundary state")
	}
	d := &Delta{
		Version: DeltaVersion, Fingerprint: cur.Fingerprint,
		Time: cur.Time, BaseTime: base.Time, BaseSum: base.Sum,
		Until: cur.Until, System: cur.System, EndTime: cur.EndTime,
		Events:   cur.Events,
		Waveform: cur.Waveform[len(base.Waveform):],
	}
	for g := range cur.Vals {
		if cur.Vals[g] != base.Vals[g] || cur.PrevClk[g] != base.PrevClk[g] ||
			cur.Projected[g] != base.Projected[g] {
			d.Changed = append(d.Changed, DeltaEntry{
				Gate: circuit.GateID(g), Val: cur.Vals[g],
				PrevClk: cur.PrevClk[g], Projected: cur.Projected[g],
			})
		}
	}
	d.Seal()
	return d, nil
}

// Apply rolls a sealed base state forward through the delta, verifying
// the chain link first: the base's checksum must equal the recorded
// BaseSum, or the chain is broken and the result untrustworthy. The
// returned state is sealed and byte-identical to the full snapshot the
// producing run would have written at the delta's boundary.
func (d *Delta) Apply(base *State) (*State, error) {
	if err := d.Verify(); err != nil {
		return nil, err
	}
	if base.Sum == "" || base.Sum != d.BaseSum {
		return nil, fmt.Errorf("%w: delta at t=%d chains to base %s, have %s (broken chain)",
			ErrCorrupt, d.Time, d.BaseSum, base.Sum)
	}
	if base.Time != d.BaseTime || base.Fingerprint != d.Fingerprint {
		return nil, fmt.Errorf("%w: delta at t=%d applies to base t=%d fp %s, have t=%d fp %s",
			ErrCorrupt, d.Time, d.BaseTime, d.Fingerprint, base.Time, base.Fingerprint)
	}
	out := &State{
		Version: base.Version, Fingerprint: base.Fingerprint,
		Time: d.Time, Until: d.Until, System: d.System, EndTime: d.EndTime,
		Vals:      append([]logic.Value(nil), base.Vals...),
		PrevClk:   append([]logic.Value(nil), base.PrevClk...),
		Projected: append([]logic.Value(nil), base.Projected...),
		Events:    d.Events,
	}
	n := len(out.Vals)
	for _, e := range d.Changed {
		if int(e.Gate) < 0 || int(e.Gate) >= n {
			return nil, fmt.Errorf("%w: delta changes gate %d outside circuit", ErrCorrupt, e.Gate)
		}
		out.Vals[e.Gate] = e.Val
		out.PrevClk[e.Gate] = e.PrevClk
		out.Projected[e.Gate] = e.Projected
	}
	out.Waveform = make([]Sample, 0, len(base.Waveform)+len(d.Waveform))
	out.Waveform = append(out.Waveform, base.Waveform...)
	out.Waveform = append(out.Waveform, d.Waveform...)
	out.Seal()
	return out, nil
}

// WriteDelta serializes the delta as JSON, sealing it first.
func WriteDelta(w io.Writer, d *Delta) error {
	d.Seal()
	return json.NewEncoder(w).Encode(d)
}

// ReadDelta deserializes, version-checks, and checksum-verifies a
// delta record; truncation and bit flips surface as ErrCorrupt.
func ReadDelta(r io.Reader) (*Delta, error) {
	var d Delta
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("%w: delta decode: %v", ErrCorrupt, err)
	}
	if d.Version != DeltaVersion {
		return nil, fmt.Errorf("ckpt: delta version %q, want %q", d.Version, DeltaVersion)
	}
	if err := d.Verify(); err != nil {
		return nil, err
	}
	return &d, nil
}

// WriteDeltaFile atomically writes the delta to path (write temp,
// rename), mirroring WriteFile.
func WriteDeltaFile(path string, d *Delta) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteDelta(f, d); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadDeltaFile loads a delta record from path.
func ReadDeltaFile(path string) (*Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDelta(f)
}
