// Package ckpt defines the on-disk checkpoint format for simulation
// runs: a consistent cut of net values, pending events, and the
// waveform prefix at a modeled-time boundary, serializable as JSON and
// restorable into any event-driven engine.
//
// Consistency model: every engine in this repository implements the
// same two-phase timestep semantics and therefore computes the same
// trajectory of (state, pending events) at every modeled time. A
// checkpoint captured at boundary T — all events with time <= T
// applied, all pending events strictly later — is thus a consistent
// cut for *every* engine, not just the one that wrote it. Engines
// restore by seeding their net-value arrays, requeuing the pending
// events to the owning LPs, and skipping the time-0 settling step.
//
// The package sits below the engines in the import graph (it imports
// only circuit, logic, and trace), so engine configs can accept a
// *ckpt.State without a cycle.
package ckpt

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/trace"
)

// Version is the checkpoint format identifier. Bump on any
// incompatible schema change.
const Version = "parsim-checkpoint/v1"

// ErrStop is the sentinel a Checkpoint callback returns once it has
// captured the snapshot it wanted: the producing run (the sequential
// shadow) aborts immediately instead of simulating to its horizon.
// Producers propagate it verbatim, so callers distinguish "stopped on
// purpose, snapshot in hand" from a real failure with errors.Is. The
// adaptive supervisor leans on this: it needs exactly one boundary
// state per segment, and without the early stop every boundary would
// cost a full-horizon shadow run.
var ErrStop = errors.New("ckpt: capture complete")

// ErrCorrupt is the structured sentinel for a snapshot that cannot be
// trusted: a truncated file (a writer died mid-write and the atomic
// rename never happened — or the filesystem lost the tail), or a
// bit-flipped payload whose checksum no longer matches. Readers get an
// error wrapping ErrCorrupt, never a panic, so distributed recovery can
// skip the bad file and fall back to an older boundary with errors.Is.
var ErrCorrupt = errors.New("ckpt: corrupt snapshot")

// Event is one pending event in the snapshot: a scheduled output
// change for a gate at an absolute modeled time strictly greater than
// the checkpoint boundary.
type Event struct {
	Time  uint64         `json:"t"`
	Gate  circuit.GateID `json:"g"`
	Value logic.Value    `json:"v"`
}

// Sample is one recorded waveform sample (a JSON-stable mirror of
// trace.Sample).
type Sample struct {
	Time  uint64         `json:"t"`
	Gate  circuit.GateID `json:"g"`
	Value logic.Value    `json:"v"`
}

// State is a complete restorable snapshot at modeled-time boundary
// Time: the three kernel value planes, the pending event set, and the
// waveform prefix recorded so far.
type State struct {
	Version     string `json:"version"`
	Fingerprint string `json:"circuit"`
	// Time is the checkpoint boundary: every event with time <= Time has
	// been applied, every entry of Events is strictly later.
	Time  uint64 `json:"time"`
	Until uint64 `json:"until"`
	// System is the logic value system the run used (its numeric value:
	// 2, 4, or 9); restoring under a different system is rejected.
	System uint8 `json:"system"`
	// EndTime is the last timestep actually executed before the boundary
	// (<= Time; the restored run's EndTime is the max of this and its
	// own).
	EndTime uint64 `json:"end_time"`

	Vals      []logic.Value `json:"vals"`
	PrevClk   []logic.Value `json:"prev_clk"`
	Projected []logic.Value `json:"projected"`
	Events    []Event       `json:"events"`
	Waveform  []Sample      `json:"waveform"`

	// Sum is an fnv64a checksum over the payload fields above; Write
	// fills it in and Read verifies it, so a bit flip anywhere in the
	// planes, events, or waveform surfaces as ErrCorrupt instead of a
	// silently wrong restore. Empty on pre-checksum snapshots (accepted
	// unverified for compatibility).
	Sum string `json:"sum,omitempty"`
}

// sum computes the payload checksum Write stores in Sum.
func (s *State) sum() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s %s %d %d %d %d\n", s.Version, s.Fingerprint, s.Time, s.Until, s.System, s.EndTime)
	for _, p := range [][]logic.Value{s.Vals, s.PrevClk, s.Projected} {
		fmt.Fprintf(h, "%d:", len(p))
		for _, v := range p {
			h.Write([]byte{byte(v)})
		}
		h.Write([]byte{'\n'})
	}
	for _, ev := range s.Events {
		fmt.Fprintf(h, "e %d %d %d\n", ev.Time, ev.Gate, ev.Value)
	}
	for _, sm := range s.Waveform {
		fmt.Fprintf(h, "w %d %d %d\n", sm.Time, sm.Gate, sm.Value)
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// Seal fills in the payload checksum. Write calls it automatically;
// callers embedding a State elsewhere (per-shard snapshots) call it
// directly.
func (s *State) Seal() { s.Sum = s.sum() }

// Verify checks the payload checksum, returning an error wrapping
// ErrCorrupt on mismatch. Snapshots without a checksum pass.
func (s *State) Verify() error {
	if s.Sum == "" {
		return nil
	}
	if got := s.sum(); got != s.Sum {
		return fmt.Errorf("%w: checksum %s, recorded %s (bit flip?)", ErrCorrupt, got, s.Sum)
	}
	return nil
}

// Fingerprint hashes the circuit topology (gate kinds, delays, fanin)
// so a checkpoint cannot be restored into a different circuit.
func Fingerprint(c *circuit.Circuit) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "gates=%d in=%d out=%d\n", len(c.Gates), len(c.Inputs), len(c.Outputs))
	for i := range c.Gates {
		g := &c.Gates[i]
		fmt.Fprintf(h, "%d %d %d", i, g.Kind, g.Delay)
		for _, f := range g.Fanin {
			fmt.Fprintf(h, " %d", f)
		}
		fmt.Fprintln(h)
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// Check validates that the snapshot can be restored into circuit c
// under logic system sys.
func (s *State) Check(c *circuit.Circuit, sys logic.System) error {
	if s.Version != Version {
		return fmt.Errorf("ckpt: version %q, want %q", s.Version, Version)
	}
	if fp := Fingerprint(c); s.Fingerprint != fp {
		return fmt.Errorf("ckpt: circuit fingerprint %s does not match %s (different circuit?)", s.Fingerprint, fp)
	}
	if s.System != uint8(sys) {
		return fmt.Errorf("ckpt: captured under %d-valued logic, restoring under %d-valued", s.System, uint8(sys))
	}
	n := len(c.Gates)
	if len(s.Vals) != n || len(s.PrevClk) != n || len(s.Projected) != n {
		return fmt.Errorf("ckpt: value planes sized %d/%d/%d, want %d",
			len(s.Vals), len(s.PrevClk), len(s.Projected), n)
	}
	for _, ev := range s.Events {
		if ev.Time <= s.Time {
			return fmt.Errorf("ckpt: pending event at t=%d not after boundary t=%d", ev.Time, s.Time)
		}
		if int(ev.Gate) < 0 || int(ev.Gate) >= n {
			return fmt.Errorf("ckpt: pending event for gate %d outside circuit", ev.Gate)
		}
	}
	return nil
}

// Prefix converts the stored waveform prefix back to a trace.Waveform
// (a fresh slice on every call).
func (s *State) Prefix() trace.Waveform {
	w := make(trace.Waveform, len(s.Waveform))
	for i, sm := range s.Waveform {
		w[i] = trace.Sample{Time: circuit.Tick(sm.Time), Gate: sm.Gate, Value: sm.Value}
	}
	return w
}

// FromWaveform converts a trace.Waveform into the stored form.
func FromWaveform(w trace.Waveform) []Sample {
	out := make([]Sample, len(w))
	for i, sm := range w {
		out[i] = Sample{Time: uint64(sm.Time), Gate: sm.Gate, Value: sm.Value}
	}
	return out
}

// Write serializes the snapshot as JSON, sealing the payload checksum
// first.
func Write(w io.Writer, s *State) error {
	s.Seal()
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Read deserializes, version-checks, and checksum-verifies a snapshot.
// A file that does not decode (truncated mid-write) or whose checksum
// does not match (bit flip) yields an error wrapping ErrCorrupt.
func Read(r io.Reader) (*State, error) {
	var s State
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	if s.Version != Version {
		return nil, fmt.Errorf("ckpt: version %q, want %q", s.Version, Version)
	}
	if err := s.Verify(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteFile atomically writes the snapshot to path (write temp,
// rename), so a kill mid-write never leaves a truncated checkpoint.
func WriteFile(path string, s *State) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile loads a snapshot from path.
func ReadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
