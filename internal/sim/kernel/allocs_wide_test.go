package kernel

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/metrics"
)

// warmWideLP is warmLP on the 64-lane plane: the same mid-sized DAG with
// two alternating whole-word input patterns whose lanes differ, so every
// measured wide step changes state in every lane.
func warmWideLP(t *testing.T, sweep bool) (*WideLP, [2][]WideEvent) {
	t.Helper()
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 400, Inputs: 16, Outputs: 8, Locality: 0.6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, len(c.Gates))
	own := make([]circuit.GateID, len(c.Gates))
	for g := range own {
		own[g] = circuit.GateID(g)
	}
	lp := NewWide(c, owner, 0, logic.TwoValued, nil, own)
	if sweep {
		lp.EnableSweep(SweepThreshold(len(own)))
	}
	lp.Schedule = func(circuit.Tick, circuit.GateID, logic.Word) {}
	lp.Send = func(int, circuit.Tick, circuit.GateID, logic.Word) {}
	// Checkerboard words: alternate lanes within each word and flip the
	// whole word between the two patterns, so both planes toggle.
	var a logic.Word
	for k := 0; k < logic.Lanes; k++ {
		a.Set(k, logic.FromBool(k%2 == 0))
	}
	b := logic.WideNot(a)
	var evs [2][]WideEvent
	for i, in := range c.Inputs {
		w0, w1 := a, b
		if i%2 == 1 {
			w0, w1 = b, a
		}
		evs[0] = append(evs[0], WideEvent{Gate: in, Value: w0})
		evs[1] = append(evs[1], WideEvent{Gate: in, Value: w1})
	}
	return lp, evs
}

// TestWarmWideStepZeroAllocs pins the wide per-event hot path: once the
// LP's dirty list and scratch buffers have grown, a 64-lane timestep
// allocates nothing — the whole point of packing lanes into words.
func TestWarmWideStepZeroAllocs(t *testing.T) {
	lp, evs := warmWideLP(t, false)
	var st metrics.LPCounters
	lp.Step(0, evs[0], true, nil, &st)
	tick := circuit.Tick(1)
	step := func() {
		lp.Step(tick, evs[int(tick)%2], false, nil, &st)
		tick++
	}
	for i := 0; i < 64; i++ {
		step()
	}
	if a := testing.AllocsPerRun(500, step); a != 0 {
		t.Fatalf("warm wide Step allocates %.1f per op, want 0", a)
	}
}

// TestWarmWideStepSweepZeroAllocs covers the oblivious block sweep the
// event-driven wide engines arm: replacing the dirty set with the full
// levelized block must reuse the dirty slice's capacity, not allocate.
func TestWarmWideStepSweepZeroAllocs(t *testing.T) {
	lp, evs := warmWideLP(t, true)
	var st metrics.LPCounters
	lp.Step(0, evs[0], true, nil, &st)
	tick := circuit.Tick(1)
	step := func() {
		lp.Step(tick, evs[int(tick)%2], false, nil, &st)
		tick++
	}
	for i := 0; i < 64; i++ {
		step()
	}
	if a := testing.AllocsPerRun(500, step); a != 0 {
		t.Fatalf("warm wide sweep Step allocates %.1f per op, want 0", a)
	}
}

// TestWarmWideStepUndoZeroAllocs is the wide Time Warp forward path:
// incremental state saving of whole words into a reused undo log must also
// be allocation-free once the log's change slices have grown.
func TestWarmWideStepUndoZeroAllocs(t *testing.T) {
	lp, evs := warmWideLP(t, false)
	var st metrics.LPCounters
	lp.Step(0, evs[0], true, nil, &st)
	undo := NewUndoOf[logic.Word](32, 8, 32)
	tick := circuit.Tick(1)
	step := func() {
		undo.Reset()
		lp.Step(tick, evs[int(tick)%2], false, undo, &st)
		tick++
	}
	for i := 0; i < 64; i++ {
		step()
	}
	if a := testing.AllocsPerRun(500, step); a != 0 {
		t.Fatalf("warm wide Step+undo allocates %.1f per op, want 0", a)
	}
}
