// Package kernel implements the per-LP timestep executor shared by the
// asynchronous engines (conservative and optimistic).
//
// A logical process owns a subset of the gates. It keeps a full-size ghost
// copy of the net state: values of its own gates plus the last-received
// values of remote nets its gates read. One Step applies all net changes
// for a single simulated time (local events and arrived remote messages
// alike), then evaluates each affected owned gate once against the settled
// values — the same two-phase semantics as the sequential reference, which
// is what makes all engines produce identical waveforms.
//
// Steps can capture an undo log of every state write, which is exactly the
// incremental state saving Time Warp needs: rolling back a step replays its
// undo log in reverse.
//
// The executor is generic over the value type V: logic.Value for the
// scalar engines (the LP/Event/Undo aliases preserve that API), and
// logic.Word for the wide engines, where every event carries 64 packed
// vector lanes and one Step evaluates 64 vectors per gate op. The
// protocol-visible behavior is identical in both instantiations — an event
// fires when the word differs in any lane, a superset of each lane's
// scalar events, and gate evaluation is idempotent under unchanged inputs,
// so each lane of a wide run reproduces the scalar run exactly.
package kernel

import (
	"sync"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
)

// EventT is one net value change to apply, carrying a scalar value or a
// 64-lane word depending on the instantiation.
type EventT[V comparable] struct {
	Gate  circuit.GateID
	Value V
}

// Event is the scalar event type used by the one-vector-per-op engines.
type Event = EventT[logic.Value]

// WideEvent is the 64-lane event type used by the wide engines.
type WideEvent = EventT[logic.Word]

// valChange records a single state write for rollback.
type valChange[V comparable] struct {
	gate circuit.GateID
	old  V
}

// UndoT is the inverse of one Step: replaying it restores the LP state to
// the instant before the step ran. In the wide instantiation each entry
// snapshots a whole 64-lane word.
type UndoT[V comparable] struct {
	vals  []valChange[V]
	clks  []valChange[V]
	projs []valChange[V]
}

// Undo is the scalar undo log.
type Undo = UndoT[logic.Value]

// WideUndo is the wide undo log; one entry restores all 64 lanes of a net.
type WideUndo = UndoT[logic.Word]

// Words reports the saved state volume in value-words, the quantity the
// cost model prices for state saving.
func (u *UndoT[V]) Words() uint64 {
	return uint64(len(u.vals) + len(u.clks) + len(u.projs))
}

// NewUndoOf returns an undo log with pre-grown log capacity, so pooled
// records born on a free-list miss skip the append growth chain and land
// near their steady-state size immediately.
func NewUndoOf[V comparable](vals, clks, projs int) *UndoT[V] {
	return &UndoT[V]{
		vals:  make([]valChange[V], 0, vals),
		clks:  make([]valChange[V], 0, clks),
		projs: make([]valChange[V], 0, projs),
	}
}

// NewUndo is NewUndoOf for the scalar instantiation.
func NewUndo(vals, clks, projs int) *Undo {
	return NewUndoOf[logic.Value](vals, clks, projs)
}

// Reset clears the undo for reuse.
func (u *UndoT[V]) Reset() {
	u.vals = u.vals[:0]
	u.clks = u.clks[:0]
	u.projs = u.projs[:0]
}

// EvalFunc computes gate id against the val/prevClk planes, reusing
// scratch as the fanin buffer. circuit.EvalGate and circuit.EvalGateWide
// are the two instantiations.
type EvalFunc[V comparable] func(c *circuit.Circuit, id circuit.GateID, val, prevClk []V, scratch []V) (out, clkSample V, buf []V)

// LPT is the state of one logical process over value type V.
type LPT[V comparable] struct {
	// Self is this LP's block index; Owner maps gate -> block.
	Self  int
	Owner []int

	c         *circuit.Circuit
	val       []V
	prevClk   []V
	projected []V
	isWatched []bool
	ownGates  []circuit.GateID
	eval      EvalFunc[V]

	stamp   []uint64
	epoch   uint64
	dirty   []circuit.GateID
	scratch []V
	dstSeen []bool

	sweep      int
	sweepGates []circuit.GateID

	// Schedule receives locally owned future events (time, gate, value).
	Schedule func(t circuit.Tick, g circuit.GateID, v V)
	// Send receives cross-LP messages (destination, time, gate, value).
	Send func(dst int, t circuit.Tick, g circuit.GateID, v V)
	// Record receives committed watched-net changes.
	Record func(t circuit.Tick, g circuit.GateID, v V)
}

// LP is the scalar logical-process executor.
type LP = LPT[logic.Value]

// WideLP is the 64-lane logical-process executor.
type WideLP = LPT[logic.Word]

// newLP wires the common LP fields around pre-built state planes.
func newLP[V comparable](c *circuit.Circuit, owner []int, self int, val, prevClk []V, eval EvalFunc[V], watched []circuit.GateID, ownGates []circuit.GateID) *LPT[V] {
	projected := make([]V, len(val))
	copy(projected, val)
	isWatched := make([]bool, len(c.Gates))
	for _, g := range watched {
		isWatched[g] = true
	}
	nBlocks := 0
	for _, o := range owner {
		if o+1 > nBlocks {
			nBlocks = o + 1
		}
	}
	return &LPT[V]{
		Self:      self,
		Owner:     owner,
		c:         c,
		val:       val,
		prevClk:   prevClk,
		projected: projected,
		isWatched: isWatched,
		ownGates:  ownGates,
		eval:      eval,
		stamp:     make([]uint64, len(c.Gates)),
		dirty:     make([]circuit.GateID, 0, 64),
		scratch:   make([]V, 0, 8),
		dstSeen:   make([]bool, nBlocks),
	}
}

// New builds a scalar LP executor for block self of the partition-owner map.
func New(c *circuit.Circuit, owner []int, self int, sys logic.System, watched []circuit.GateID, ownGates []circuit.GateID) *LP {
	val, prevClk := circuit.InitState(c, sys)
	return newLP(c, owner, self, val, prevClk, circuit.EvalGate, watched, ownGates)
}

// NewWide builds a 64-lane LP executor: same ownership and two-phase
// semantics, but every net holds a packed word and each evaluation
// processes 64 vectors.
func NewWide(c *circuit.Circuit, owner []int, self int, sys logic.System, watched []circuit.GateID, ownGates []circuit.GateID) *WideLP {
	val, prevClk := circuit.InitStateWide(c, sys)
	return newLP(c, owner, self, val, prevClk, circuit.EvalGateWide, watched, ownGates)
}

// EnableSweep arms the oblivious block sweep: whenever a step's dirty set
// reaches threshold gates, the evaluation phase abandons event-driven
// selection and sweeps the LP's whole owned block in levelized order
// instead. The sweep is exact — evaluation against settled inputs is
// idempotent and the projected-value filter suppresses events for
// unchanged outputs — so it only trades bookkeeping for raw evaluation.
// Wide LPs use it: with 64 packed vector lanes a net fires when any lane
// changes, so the dirty set saturates toward the whole block and the
// per-gate selection machinery (stamps, fanout walks) costs more than
// obliviously evaluating everything 64 vectors at a time. A threshold
// <= 0 disables the sweep (the scalar engines' configuration).
func (lp *LPT[V]) EnableSweep(threshold int) {
	lp.sweep = threshold
	if threshold <= 0 || lp.sweepGates != nil {
		return
	}
	own := make([]bool, len(lp.c.Gates))
	for _, g := range lp.ownGates {
		own[g] = true
	}
	if levels, err := lp.c.Levelize(); err == nil {
		for _, level := range levels {
			for _, g := range level {
				if own[g] && !lp.c.Gates[g].Kind.Source() {
					lp.sweepGates = append(lp.sweepGates, g)
				}
			}
		}
		return
	}
	for _, g := range lp.ownGates {
		if !lp.c.Gates[g].Kind.Source() {
			lp.sweepGates = append(lp.sweepGates, g)
		}
	}
}

// SweepThreshold is the shared policy for arming the oblivious sweep on a
// block of the given size: sweep once the dirty set covers half the block,
// but never on trivially small blocks where the event-driven bookkeeping
// is already cheap.
func SweepThreshold(blockSize int) int {
	t := blockSize / 2
	if t < 8 {
		t = 8
	}
	return t
}

// applySweep swaps the dirty set for the full levelized block when the
// sweep is armed and the threshold is met.
func (lp *LPT[V]) applySweep() {
	if lp.sweep > 0 && len(lp.dirty) >= lp.sweep {
		lp.dirty = append(lp.dirty[:0], lp.sweepGates...)
	}
}

// Value returns the LP's current view of a net.
func (lp *LPT[V]) Value(g circuit.GateID) V { return lp.val[g] }

// Values exposes the full ghost state (for final-state assembly).
func (lp *LPT[V]) Values() []V { return lp.val }

// SeedState overwrites the LP's three value planes from a checkpoint.
// The planes are full-size (ghost copies included), so seeding every LP
// with the same globally consistent snapshot reproduces exactly the
// ghost views a live run would have at that boundary. Engines call it
// before processing any event when restoring.
func (lp *LPT[V]) SeedState(vals, prevClk, projected []V) {
	copy(lp.val, vals)
	copy(lp.prevClk, prevClk)
	copy(lp.projected, projected)
}

// Step applies the events for time t, then evaluates affected owned gates.
// When undo is non-nil every state write is logged into it. Counters are
// accumulated into st.
func (lp *LPT[V]) Step(t circuit.Tick, events []EventT[V], initial bool, undo *UndoT[V], st *metrics.LPCounters) {
	lp.epoch++
	lp.dirty = lp.dirty[:0]
	st.Steps++

	for _, ev := range events {
		st.EventsApplied++
		if lp.val[ev.Gate] == ev.Value {
			continue
		}
		if undo != nil {
			undo.vals = append(undo.vals, valChange[V]{ev.Gate, lp.val[ev.Gate]})
		}
		lp.val[ev.Gate] = ev.Value
		if lp.Owner[ev.Gate] == lp.Self && lp.isWatched[ev.Gate] && lp.Record != nil {
			lp.Record(t, ev.Gate, ev.Value)
		}
		for _, out := range lp.c.Fanout[ev.Gate] {
			if lp.Owner[out] != lp.Self {
				continue
			}
			if lp.stamp[out] != lp.epoch {
				lp.stamp[out] = lp.epoch
				lp.dirty = append(lp.dirty, out)
			}
		}
	}
	if initial {
		lp.dirty = lp.dirty[:0]
		for _, g := range lp.ownGates {
			if !lp.c.Gates[g].Kind.Source() {
				lp.dirty = append(lp.dirty, g)
			}
		}
	} else {
		lp.applySweep()
	}

	for _, g := range lp.dirty {
		var out, clkSample V
		out, clkSample, lp.scratch = lp.eval(lp.c, g, lp.val, lp.prevClk, lp.scratch)
		st.Evaluations++
		if clkSample != lp.prevClk[g] {
			if undo != nil {
				undo.clks = append(undo.clks, valChange[V]{g, lp.prevClk[g]})
			}
			lp.prevClk[g] = clkSample
		}
		if out == lp.projected[g] {
			continue
		}
		if undo != nil {
			undo.projs = append(undo.projs, valChange[V]{g, lp.projected[g]})
		}
		lp.projected[g] = out
		due := t + lp.c.Gates[g].Delay
		lp.Schedule(due, g, out)
		st.EventsScheduled++
		// Remote consumers get one message per destination LP.
		for i := range lp.dstSeen {
			lp.dstSeen[i] = false
		}
		for _, dst := range lp.c.Fanout[g] {
			db := lp.Owner[dst]
			if db == lp.Self || lp.dstSeen[db] {
				continue
			}
			lp.dstSeen[db] = true
			lp.Send(db, due, g, out)
			st.MessagesSent++
		}
	}
}

// StepParallel is Step with the evaluation phase fan-out across workers:
// the dirty gates are split into contiguous chunks, each chunk's outputs
// are computed concurrently (evaluation is pure, so this is race-free),
// and the commit (state writes, scheduling, sends) runs serially in
// deterministic order. It returns the largest chunk size, which is the
// per-step critical path of the intra-cluster synchronous phase — the
// quantity the hybrid engine's cost model needs.
//
// This is the paper's hierarchical synchronization: barrier-synchronous
// evaluation inside a cluster, with whatever protocol the caller runs
// between clusters.
func (lp *LPT[V]) StepParallel(t circuit.Tick, events []EventT[V], initial bool, undo *UndoT[V], st *metrics.LPCounters, workers int, outBuf, clkBuf []V) (maxChunk int) {
	lp.epoch++
	lp.dirty = lp.dirty[:0]
	st.Steps++

	for _, ev := range events {
		st.EventsApplied++
		if lp.val[ev.Gate] == ev.Value {
			continue
		}
		if undo != nil {
			undo.vals = append(undo.vals, valChange[V]{ev.Gate, lp.val[ev.Gate]})
		}
		lp.val[ev.Gate] = ev.Value
		if lp.Owner[ev.Gate] == lp.Self && lp.isWatched[ev.Gate] && lp.Record != nil {
			lp.Record(t, ev.Gate, ev.Value)
		}
		for _, out := range lp.c.Fanout[ev.Gate] {
			if lp.Owner[out] != lp.Self {
				continue
			}
			if lp.stamp[out] != lp.epoch {
				lp.stamp[out] = lp.epoch
				lp.dirty = append(lp.dirty, out)
			}
		}
	}
	if initial {
		lp.dirty = lp.dirty[:0]
		for _, g := range lp.ownGates {
			if !lp.c.Gates[g].Kind.Source() {
				lp.dirty = append(lp.dirty, g)
			}
		}
	} else {
		lp.applySweep()
	}
	if len(lp.dirty) == 0 {
		return 0
	}

	// Parallel evaluation into the caller's buffers.
	if workers > len(lp.dirty) {
		workers = len(lp.dirty)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(lp.dirty) + workers - 1) / workers
	maxChunk = chunk
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(lp.dirty) {
			break
		}
		hi := lo + chunk
		if hi > len(lp.dirty) {
			hi = len(lp.dirty)
		}
		wg.Add(1)
		go func(gs []circuit.GateID) {
			defer wg.Done()
			var scratch []V
			for _, g := range gs {
				out, cs, buf := lp.eval(lp.c, g, lp.val, lp.prevClk, scratch)
				scratch = buf
				outBuf[g] = out
				clkBuf[g] = cs
			}
		}(lp.dirty[lo:hi])
	}
	wg.Wait()

	// Serial commit in deterministic (dirty list) order.
	for _, g := range lp.dirty {
		st.Evaluations++
		out, clkSample := outBuf[g], clkBuf[g]
		if clkSample != lp.prevClk[g] {
			if undo != nil {
				undo.clks = append(undo.clks, valChange[V]{g, lp.prevClk[g]})
			}
			lp.prevClk[g] = clkSample
		}
		if out == lp.projected[g] {
			continue
		}
		if undo != nil {
			undo.projs = append(undo.projs, valChange[V]{g, lp.projected[g]})
		}
		lp.projected[g] = out
		due := t + lp.c.Gates[g].Delay
		lp.Schedule(due, g, out)
		st.EventsScheduled++
		for i := range lp.dstSeen {
			lp.dstSeen[i] = false
		}
		for _, dst := range lp.c.Fanout[g] {
			db := lp.Owner[dst]
			if db == lp.Self || lp.dstSeen[db] {
				continue
			}
			lp.dstSeen[db] = true
			lp.Send(db, due, g, out)
			st.MessagesSent++
		}
	}
	return maxChunk
}

// Rollback undoes a sequence of steps by replaying their undo logs in
// reverse order (most recent first).
func (lp *LPT[V]) Rollback(undos []*UndoT[V], st *metrics.LPCounters) {
	for i := len(undos) - 1; i >= 0; i-- {
		u := undos[i]
		for j := len(u.projs) - 1; j >= 0; j-- {
			lp.projected[u.projs[j].gate] = u.projs[j].old
		}
		for j := len(u.clks) - 1; j >= 0; j-- {
			lp.prevClk[u.clks[j].gate] = u.clks[j].old
		}
		for j := len(u.vals) - 1; j >= 0; j-- {
			lp.val[u.vals[j].gate] = u.vals[j].old
		}
		st.EventsRolledBack += uint64(len(u.vals))
	}
}

// SnapshotT copies the LP-relevant state (own gates and ghost nets) for
// full-copy state saving. The returned slices are keyed by position in
// relevant; Restore reverses it.
type SnapshotT[V comparable] struct {
	val     []V
	prevClk []V
	proj    []V
}

// Snapshot is the scalar snapshot.
type Snapshot = SnapshotT[logic.Value]

// WideSnapshot is the 64-lane snapshot.
type WideSnapshot = SnapshotT[logic.Word]

// Words reports the snapshot volume in value-words.
func (s *SnapshotT[V]) Words() uint64 {
	return uint64(len(s.val) + len(s.prevClk) + len(s.proj))
}

// RelevantNets lists the nets whose state matters to this LP: its own
// gates plus every remote net an owned gate reads.
func (lp *LPT[V]) RelevantNets() []circuit.GateID {
	seen := make(map[circuit.GateID]bool)
	var nets []circuit.GateID
	for _, g := range lp.ownGates {
		if !seen[g] {
			seen[g] = true
			nets = append(nets, g)
		}
		for _, f := range lp.c.Gates[g].Fanin {
			if !seen[f] {
				seen[f] = true
				nets = append(nets, f)
			}
		}
	}
	return nets
}

// TakeSnapshot captures the state of the given nets.
func (lp *LPT[V]) TakeSnapshot(nets []circuit.GateID, into *SnapshotT[V]) {
	into.val = resize(into.val, len(nets))
	into.prevClk = resize(into.prevClk, len(nets))
	into.proj = resize(into.proj, len(nets))
	for i, g := range nets {
		into.val[i] = lp.val[g]
		into.prevClk[i] = lp.prevClk[g]
		into.proj[i] = lp.projected[g]
	}
}

// RestoreSnapshot writes a snapshot back.
func (lp *LPT[V]) RestoreSnapshot(nets []circuit.GateID, s *SnapshotT[V]) {
	for i, g := range nets {
		lp.val[g] = s.val[i]
		lp.prevClk[g] = s.prevClk[i]
		lp.projected[g] = s.proj[i]
	}
}

func resize[V comparable](buf []V, n int) []V {
	if cap(buf) < n {
		return make([]V, n)
	}
	return buf[:n]
}
