// Package kernel implements the per-LP timestep executor shared by the
// asynchronous engines (conservative and optimistic).
//
// A logical process owns a subset of the gates. It keeps a full-size ghost
// copy of the net state: values of its own gates plus the last-received
// values of remote nets its gates read. One Step applies all net changes
// for a single simulated time (local events and arrived remote messages
// alike), then evaluates each affected owned gate once against the settled
// values — the same two-phase semantics as the sequential reference, which
// is what makes all engines produce identical waveforms.
//
// Steps can capture an undo log of every state write, which is exactly the
// incremental state saving Time Warp needs: rolling back a step replays its
// undo log in reverse.
package kernel

import (
	"sync"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
)

// Event is one net value change to apply.
type Event struct {
	Gate  circuit.GateID
	Value logic.Value
}

// valChange records a single state write for rollback.
type valChange struct {
	gate circuit.GateID
	old  logic.Value
}

// Undo is the inverse of one Step: replaying it restores the LP state to
// the instant before the step ran.
type Undo struct {
	vals  []valChange
	clks  []valChange
	projs []valChange
}

// Words reports the saved state volume in value-words, the quantity the
// cost model prices for state saving.
func (u *Undo) Words() uint64 {
	return uint64(len(u.vals) + len(u.clks) + len(u.projs))
}

// NewUndo returns an undo log with pre-grown log capacity, so pooled
// records born on a free-list miss skip the append growth chain and land
// near their steady-state size immediately.
func NewUndo(vals, clks, projs int) *Undo {
	return &Undo{
		vals:  make([]valChange, 0, vals),
		clks:  make([]valChange, 0, clks),
		projs: make([]valChange, 0, projs),
	}
}

// Reset clears the undo for reuse.
func (u *Undo) Reset() {
	u.vals = u.vals[:0]
	u.clks = u.clks[:0]
	u.projs = u.projs[:0]
}

// LP is the state of one logical process.
type LP struct {
	// Self is this LP's block index; Owner maps gate -> block.
	Self  int
	Owner []int

	c         *circuit.Circuit
	val       []logic.Value
	prevClk   []logic.Value
	projected []logic.Value
	isWatched []bool
	ownGates  []circuit.GateID

	stamp   []uint64
	epoch   uint64
	dirty   []circuit.GateID
	scratch []logic.Value
	dstSeen []bool

	// Schedule receives locally owned future events (time, gate, value).
	Schedule func(t circuit.Tick, g circuit.GateID, v logic.Value)
	// Send receives cross-LP messages (destination, time, gate, value).
	Send func(dst int, t circuit.Tick, g circuit.GateID, v logic.Value)
	// Record receives committed watched-net changes.
	Record func(t circuit.Tick, g circuit.GateID, v logic.Value)
}

// New builds an LP executor for block self of the partition-owner map.
func New(c *circuit.Circuit, owner []int, self int, sys logic.System, watched []circuit.GateID, ownGates []circuit.GateID) *LP {
	val, prevClk := circuit.InitState(c, sys)
	projected := make([]logic.Value, len(val))
	copy(projected, val)
	isWatched := make([]bool, len(c.Gates))
	for _, g := range watched {
		isWatched[g] = true
	}
	nBlocks := 0
	for _, o := range owner {
		if o+1 > nBlocks {
			nBlocks = o + 1
		}
	}
	return &LP{
		Self:      self,
		Owner:     owner,
		c:         c,
		val:       val,
		prevClk:   prevClk,
		projected: projected,
		isWatched: isWatched,
		ownGates:  ownGates,
		stamp:     make([]uint64, len(c.Gates)),
		dirty:     make([]circuit.GateID, 0, 64),
		scratch:   make([]logic.Value, 0, 8),
		dstSeen:   make([]bool, nBlocks),
	}
}

// Value returns the LP's current view of a net.
func (lp *LP) Value(g circuit.GateID) logic.Value { return lp.val[g] }

// Values exposes the full ghost state (for final-state assembly).
func (lp *LP) Values() []logic.Value { return lp.val }

// SeedState overwrites the LP's three value planes from a checkpoint.
// The planes are full-size (ghost copies included), so seeding every LP
// with the same globally consistent snapshot reproduces exactly the
// ghost views a live run would have at that boundary. Engines call it
// before processing any event when restoring.
func (lp *LP) SeedState(vals, prevClk, projected []logic.Value) {
	copy(lp.val, vals)
	copy(lp.prevClk, prevClk)
	copy(lp.projected, projected)
}

// Step applies the events for time t, then evaluates affected owned gates.
// When undo is non-nil every state write is logged into it. Counters are
// accumulated into st.
func (lp *LP) Step(t circuit.Tick, events []Event, initial bool, undo *Undo, st *metrics.LPCounters) {
	lp.epoch++
	lp.dirty = lp.dirty[:0]
	st.Steps++

	for _, ev := range events {
		st.EventsApplied++
		if lp.val[ev.Gate] == ev.Value {
			continue
		}
		if undo != nil {
			undo.vals = append(undo.vals, valChange{ev.Gate, lp.val[ev.Gate]})
		}
		lp.val[ev.Gate] = ev.Value
		if lp.Owner[ev.Gate] == lp.Self && lp.isWatched[ev.Gate] && lp.Record != nil {
			lp.Record(t, ev.Gate, ev.Value)
		}
		for _, out := range lp.c.Fanout[ev.Gate] {
			if lp.Owner[out] != lp.Self {
				continue
			}
			if lp.stamp[out] != lp.epoch {
				lp.stamp[out] = lp.epoch
				lp.dirty = append(lp.dirty, out)
			}
		}
	}
	if initial {
		lp.dirty = lp.dirty[:0]
		for _, g := range lp.ownGates {
			if !lp.c.Gates[g].Kind.Source() {
				lp.dirty = append(lp.dirty, g)
			}
		}
	}

	for _, g := range lp.dirty {
		var out, clkSample logic.Value
		out, clkSample, lp.scratch = circuit.EvalGate(lp.c, g, lp.val, lp.prevClk, lp.scratch)
		st.Evaluations++
		if clkSample != lp.prevClk[g] {
			if undo != nil {
				undo.clks = append(undo.clks, valChange{g, lp.prevClk[g]})
			}
			lp.prevClk[g] = clkSample
		}
		if out == lp.projected[g] {
			continue
		}
		if undo != nil {
			undo.projs = append(undo.projs, valChange{g, lp.projected[g]})
		}
		lp.projected[g] = out
		due := t + lp.c.Gates[g].Delay
		lp.Schedule(due, g, out)
		st.EventsScheduled++
		// Remote consumers get one message per destination LP.
		for i := range lp.dstSeen {
			lp.dstSeen[i] = false
		}
		for _, dst := range lp.c.Fanout[g] {
			db := lp.Owner[dst]
			if db == lp.Self || lp.dstSeen[db] {
				continue
			}
			lp.dstSeen[db] = true
			lp.Send(db, due, g, out)
			st.MessagesSent++
		}
	}
}

// StepParallel is Step with the evaluation phase fan-out across workers:
// the dirty gates are split into contiguous chunks, each chunk's outputs
// are computed concurrently (evaluation is pure, so this is race-free),
// and the commit (state writes, scheduling, sends) runs serially in
// deterministic order. It returns the largest chunk size, which is the
// per-step critical path of the intra-cluster synchronous phase — the
// quantity the hybrid engine's cost model needs.
//
// This is the paper's hierarchical synchronization: barrier-synchronous
// evaluation inside a cluster, with whatever protocol the caller runs
// between clusters.
func (lp *LP) StepParallel(t circuit.Tick, events []Event, initial bool, undo *Undo, st *metrics.LPCounters, workers int, outBuf, clkBuf []logic.Value) (maxChunk int) {
	lp.epoch++
	lp.dirty = lp.dirty[:0]
	st.Steps++

	for _, ev := range events {
		st.EventsApplied++
		if lp.val[ev.Gate] == ev.Value {
			continue
		}
		if undo != nil {
			undo.vals = append(undo.vals, valChange{ev.Gate, lp.val[ev.Gate]})
		}
		lp.val[ev.Gate] = ev.Value
		if lp.Owner[ev.Gate] == lp.Self && lp.isWatched[ev.Gate] && lp.Record != nil {
			lp.Record(t, ev.Gate, ev.Value)
		}
		for _, out := range lp.c.Fanout[ev.Gate] {
			if lp.Owner[out] != lp.Self {
				continue
			}
			if lp.stamp[out] != lp.epoch {
				lp.stamp[out] = lp.epoch
				lp.dirty = append(lp.dirty, out)
			}
		}
	}
	if initial {
		lp.dirty = lp.dirty[:0]
		for _, g := range lp.ownGates {
			if !lp.c.Gates[g].Kind.Source() {
				lp.dirty = append(lp.dirty, g)
			}
		}
	}
	if len(lp.dirty) == 0 {
		return 0
	}

	// Parallel evaluation into the caller's buffers.
	if workers > len(lp.dirty) {
		workers = len(lp.dirty)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(lp.dirty) + workers - 1) / workers
	maxChunk = chunk
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(lp.dirty) {
			break
		}
		hi := lo + chunk
		if hi > len(lp.dirty) {
			hi = len(lp.dirty)
		}
		wg.Add(1)
		go func(gs []circuit.GateID) {
			defer wg.Done()
			var scratch []logic.Value
			for _, g := range gs {
				out, cs, buf := circuit.EvalGate(lp.c, g, lp.val, lp.prevClk, scratch)
				scratch = buf
				outBuf[g] = out
				clkBuf[g] = cs
			}
		}(lp.dirty[lo:hi])
	}
	wg.Wait()

	// Serial commit in deterministic (dirty list) order.
	for _, g := range lp.dirty {
		st.Evaluations++
		out, clkSample := outBuf[g], clkBuf[g]
		if clkSample != lp.prevClk[g] {
			if undo != nil {
				undo.clks = append(undo.clks, valChange{g, lp.prevClk[g]})
			}
			lp.prevClk[g] = clkSample
		}
		if out == lp.projected[g] {
			continue
		}
		if undo != nil {
			undo.projs = append(undo.projs, valChange{g, lp.projected[g]})
		}
		lp.projected[g] = out
		due := t + lp.c.Gates[g].Delay
		lp.Schedule(due, g, out)
		st.EventsScheduled++
		for i := range lp.dstSeen {
			lp.dstSeen[i] = false
		}
		for _, dst := range lp.c.Fanout[g] {
			db := lp.Owner[dst]
			if db == lp.Self || lp.dstSeen[db] {
				continue
			}
			lp.dstSeen[db] = true
			lp.Send(db, due, g, out)
			st.MessagesSent++
		}
	}
	return maxChunk
}

// Rollback undoes a sequence of steps by replaying their undo logs in
// reverse order (most recent first).
func (lp *LP) Rollback(undos []*Undo, st *metrics.LPCounters) {
	for i := len(undos) - 1; i >= 0; i-- {
		u := undos[i]
		for j := len(u.projs) - 1; j >= 0; j-- {
			lp.projected[u.projs[j].gate] = u.projs[j].old
		}
		for j := len(u.clks) - 1; j >= 0; j-- {
			lp.prevClk[u.clks[j].gate] = u.clks[j].old
		}
		for j := len(u.vals) - 1; j >= 0; j-- {
			lp.val[u.vals[j].gate] = u.vals[j].old
		}
		st.EventsRolledBack += uint64(len(u.vals))
	}
}

// Snapshot copies the LP-relevant state (own gates and ghost nets) for
// full-copy state saving. The returned slices are keyed by position in
// relevant; Restore reverses it.
type Snapshot struct {
	val     []logic.Value
	prevClk []logic.Value
	proj    []logic.Value
}

// Words reports the snapshot volume in value-words.
func (s *Snapshot) Words() uint64 {
	return uint64(len(s.val) + len(s.prevClk) + len(s.proj))
}

// RelevantNets lists the nets whose state matters to this LP: its own
// gates plus every remote net an owned gate reads.
func (lp *LP) RelevantNets() []circuit.GateID {
	seen := make(map[circuit.GateID]bool)
	var nets []circuit.GateID
	for _, g := range lp.ownGates {
		if !seen[g] {
			seen[g] = true
			nets = append(nets, g)
		}
		for _, f := range lp.c.Gates[g].Fanin {
			if !seen[f] {
				seen[f] = true
				nets = append(nets, f)
			}
		}
	}
	return nets
}

// TakeSnapshot captures the state of the given nets.
func (lp *LP) TakeSnapshot(nets []circuit.GateID, into *Snapshot) {
	into.val = resize(into.val, len(nets))
	into.prevClk = resize(into.prevClk, len(nets))
	into.proj = resize(into.proj, len(nets))
	for i, g := range nets {
		into.val[i] = lp.val[g]
		into.prevClk[i] = lp.prevClk[g]
		into.proj[i] = lp.projected[g]
	}
}

// RestoreSnapshot writes a snapshot back.
func (lp *LP) RestoreSnapshot(nets []circuit.GateID, s *Snapshot) {
	for i, g := range nets {
		lp.val[g] = s.val[i]
		lp.prevClk[g] = s.prevClk[i]
		lp.projected[g] = s.proj[i]
	}
}

func resize(buf []logic.Value, n int) []logic.Value {
	if cap(buf) < n {
		return make([]logic.Value, n)
	}
	return buf[:n]
}
