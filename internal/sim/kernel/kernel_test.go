package kernel

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/metrics"
)

// harness wires an LP over a small circuit with capture callbacks.
type harness struct {
	lp        *LP
	scheduled []struct {
		t circuit.Tick
		g circuit.GateID
		v logic.Value
	}
	sent []struct {
		dst int
		t   circuit.Tick
		g   circuit.GateID
		v   logic.Value
	}
	recorded int
}

func newHarness(t *testing.T, c *circuit.Circuit, owner []int, self int) *harness {
	t.Helper()
	var own []circuit.GateID
	for g, o := range owner {
		if o == self {
			own = append(own, circuit.GateID(g))
		}
	}
	h := &harness{}
	h.lp = New(c, owner, self, logic.TwoValued, c.Outputs, own)
	h.lp.Schedule = func(tk circuit.Tick, g circuit.GateID, v logic.Value) {
		h.scheduled = append(h.scheduled, struct {
			t circuit.Tick
			g circuit.GateID
			v logic.Value
		}{tk, g, v})
	}
	h.lp.Send = func(dst int, tk circuit.Tick, g circuit.GateID, v logic.Value) {
		h.sent = append(h.sent, struct {
			dst int
			t   circuit.Tick
			g   circuit.GateID
			v   logic.Value
		}{dst, tk, g, v})
	}
	h.lp.Record = func(circuit.Tick, circuit.GateID, logic.Value) { h.recorded++ }
	return h
}

// twoLPCircuit: a=in -> inv (LP0) -> and with b (LP1).
func twoLPCircuit(t *testing.T) (*circuit.Circuit, []int) {
	t.Helper()
	b := circuit.NewBuilder()
	a := b.Input("a")
	bb := b.Input("b")
	inv := b.Gate(circuit.Not, "inv", a)
	and := b.Gate(circuit.And, "and", inv, bb)
	b.Output("y", and)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, c.NumGates())
	andID, _ := c.ByName("and")
	yID, _ := c.ByName("y")
	owner[andID], owner[yID], owner[bb] = 1, 1, 1
	return c, owner
}

func TestStepEvaluatesOnlyOwnedGates(t *testing.T) {
	c, owner := twoLPCircuit(t)
	h := newHarness(t, c, owner, 0)
	a, _ := c.ByName("a")
	var st metrics.LPCounters
	h.lp.Step(0, []Event{{a, logic.One}}, false, nil, &st)
	// LP0 owns a and inv; only inv is evaluated (a's change dirties it).
	if st.Evaluations != 1 {
		t.Fatalf("evaluations = %d, want 1", st.Evaluations)
	}
	// inv output 0 == projected initial 0 in the 2-valued system: no
	// schedule. Run the settling step instead.
	h2 := newHarness(t, c, owner, 0)
	h2.lp.Step(0, []Event{{a, logic.Zero}}, true, nil, &st)
	// Settling evaluates inv (only owned non-source gate) -> 1 != 0.
	if len(h2.scheduled) != 1 {
		t.Fatalf("scheduled %v", h2.scheduled)
	}
	if h2.scheduled[0].v != logic.One {
		t.Fatalf("inv output %v", h2.scheduled[0].v)
	}
}

func TestCrossLPSendDedup(t *testing.T) {
	c, owner := twoLPCircuit(t)
	h := newHarness(t, c, owner, 0)
	var st metrics.LPCounters
	// Settle: inv -> 1 scheduled at t=1 and sent to LP1 exactly once.
	h.lp.Step(0, nil, true, nil, &st)
	if len(h.sent) != 1 || h.sent[0].dst != 1 {
		t.Fatalf("sent = %v", h.sent)
	}
	if h.sent[0].t != 1 {
		t.Fatalf("send time = %d", h.sent[0].t)
	}
	if st.MessagesSent != 1 {
		t.Fatalf("MessagesSent = %d", st.MessagesSent)
	}
}

func TestUndoRoundTrip(t *testing.T) {
	c, err := gen.RandomSeq(gen.RandomConfig{Gates: 150, Inputs: 6, Outputs: 4, Seed: 3, FFRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, c.NumGates())
	var own []circuit.GateID
	for g := range owner {
		own = append(own, circuit.GateID(g))
	}
	lp := New(c, owner, 0, logic.TwoValued, c.Outputs, own)
	var sched []Event
	lp.Schedule = func(tk circuit.Tick, g circuit.GateID, v logic.Value) {
		sched = append(sched, Event{g, v})
	}
	lp.Send = func(int, circuit.Tick, circuit.GateID, logic.Value) {}
	var st metrics.LPCounters

	// Settle, snapshot the state, run a few steps with undo, roll back,
	// and require bit-identical state.
	lp.Step(0, nil, true, nil, &st)
	nets := lp.RelevantNets()
	var before Snapshot
	lp.TakeSnapshot(nets, &before)

	clk, _ := c.ByName("clk")
	var undos []*Undo
	evs := [][]Event{
		{{clk, logic.One}},
		{{clk, logic.Zero}, {c.Inputs[1], logic.One}},
		{{clk, logic.One}},
	}
	for i, e := range evs {
		u := &Undo{}
		lp.Step(circuit.Tick(10*(i+1)), e, false, u, &st)
		undos = append(undos, u)
		if i == 0 && u.Words() == 0 {
			t.Fatal("no undo captured for a clock edge")
		}
	}
	lp.Rollback(undos, &st)
	var after Snapshot
	lp.TakeSnapshot(nets, &after)
	for i := range before.val {
		if before.val[i] != after.val[i] || before.prevClk[i] != after.prevClk[i] || before.proj[i] != after.proj[i] {
			t.Fatalf("state differs at net %d after rollback", nets[i])
		}
	}
	if st.EventsRolledBack == 0 {
		t.Fatal("rollback stats not counted")
	}
}

func TestSnapshotRestore(t *testing.T) {
	c, err := gen.Counter(4, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, c.NumGates())
	var own []circuit.GateID
	for g := range owner {
		own = append(own, circuit.GateID(g))
	}
	lp := New(c, owner, 0, logic.TwoValued, c.Outputs, own)
	lp.Schedule = func(circuit.Tick, circuit.GateID, logic.Value) {}
	lp.Send = func(int, circuit.Tick, circuit.GateID, logic.Value) {}
	var st metrics.LPCounters
	lp.Step(0, nil, true, nil, &st)
	nets := lp.RelevantNets()
	var snap Snapshot
	lp.TakeSnapshot(nets, &snap)
	if snap.Words() == 0 {
		t.Fatal("empty snapshot")
	}
	clk, _ := c.ByName("clk")
	en, _ := c.ByName("en")
	lp.Step(5, []Event{{clk, logic.One}, {en, logic.One}}, false, nil, &st)
	lp.RestoreSnapshot(nets, &snap)
	var again Snapshot
	lp.TakeSnapshot(nets, &again)
	for i := range snap.val {
		if snap.val[i] != again.val[i] {
			t.Fatal("restore incomplete")
		}
	}
}

func TestStepParallelMatchesSerial(t *testing.T) {
	c, err := gen.ArrayMultiplier(4, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, c.NumGates())
	var own []circuit.GateID
	for g := range owner {
		own = append(own, circuit.GateID(g))
	}
	mk := func() (*LP, *[]Event) {
		lp := New(c, owner, 0, logic.TwoValued, c.Outputs, own)
		sched := &[]Event{}
		lp.Schedule = func(tk circuit.Tick, g circuit.GateID, v logic.Value) {
			*sched = append(*sched, Event{g, v})
		}
		lp.Send = func(int, circuit.Tick, circuit.GateID, logic.Value) {}
		return lp, sched
	}
	serial, ss := mk()
	par, ps := mk()
	var st1, st2 metrics.LPCounters
	outBuf := make([]logic.Value, c.NumGates())
	clkBuf := make([]logic.Value, c.NumGates())

	serial.Step(0, nil, true, nil, &st1)
	maxChunk := par.StepParallel(0, nil, true, nil, &st2, 4, outBuf, clkBuf)
	if maxChunk <= 0 {
		t.Fatal("no parallel chunks")
	}
	if len(*ss) != len(*ps) {
		t.Fatalf("schedule counts differ: %d vs %d", len(*ss), len(*ps))
	}
	for i := range *ss {
		if (*ss)[i] != (*ps)[i] {
			t.Fatalf("schedule %d differs", i)
		}
	}
	if st1.Evaluations != st2.Evaluations {
		t.Fatalf("evaluation counts differ: %d vs %d", st1.Evaluations, st2.Evaluations)
	}
	for g := range owner {
		if serial.Value(circuit.GateID(g)) != par.Value(circuit.GateID(g)) {
			t.Fatalf("value mismatch at gate %d", g)
		}
	}
}

func TestRecordOnlyWatchedOwned(t *testing.T) {
	c, owner := twoLPCircuit(t)
	// LP1 owns the output gate y; settling changes it (and -> ... ).
	h := newHarness(t, c, owner, 1)
	var st metrics.LPCounters
	h.lp.Step(0, nil, true, nil, &st)
	// y stays 0 on settle (and=0), so nothing recorded yet; force b high
	// then and high then y high across steps.
	bID, _ := c.ByName("b")
	invID, _ := c.ByName("inv")
	h.lp.Step(1, []Event{{bID, logic.One}, {invID, logic.One}}, false, nil, &st)
	// and evaluates to 1, scheduled at t=2 -> apply it.
	h.lp.Step(2, []Event{{mustID(t, c, "and"), logic.One}}, false, nil, &st)
	h.lp.Step(3, []Event{{mustID(t, c, "y"), logic.One}}, false, nil, &st)
	if h.recorded == 0 {
		t.Fatal("watched output change not recorded")
	}
}

func mustID(t *testing.T, c *circuit.Circuit, name string) circuit.GateID {
	t.Helper()
	id, ok := c.ByName(name)
	if !ok {
		t.Fatalf("no gate %s", name)
	}
	return id
}
