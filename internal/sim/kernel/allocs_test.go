package kernel

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/metrics"
)

// warmLP builds a single-LP executor over a mid-sized DAG with two
// alternating input patterns, so every measured Step changes state — the
// same shape as the benchsuite kernel fixture.
func warmLP(t *testing.T) (*LP, [2][]Event) {
	t.Helper()
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 400, Inputs: 16, Outputs: 8, Locality: 0.6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, len(c.Gates))
	own := make([]circuit.GateID, len(c.Gates))
	for g := range own {
		own[g] = circuit.GateID(g)
	}
	lp := New(c, owner, 0, logic.TwoValued, nil, own)
	lp.Schedule = func(circuit.Tick, circuit.GateID, logic.Value) {}
	lp.Send = func(int, circuit.Tick, circuit.GateID, logic.Value) {}
	var evs [2][]Event
	for i, in := range c.Inputs {
		v := logic.FromBool(i%2 == 0)
		evs[0] = append(evs[0], Event{Gate: in, Value: v})
		evs[1] = append(evs[1], Event{Gate: in, Value: logic.Not(v)})
	}
	return lp, evs
}

// TestWarmStepZeroAllocs pins the per-event hot path: once the LP's dirty
// list and scratch buffers have grown to the circuit's working set, a
// timestep allocates nothing.
func TestWarmStepZeroAllocs(t *testing.T) {
	lp, evs := warmLP(t)
	var st metrics.LPCounters
	lp.Step(0, evs[0], true, nil, &st)
	tick := circuit.Tick(1)
	step := func() {
		lp.Step(tick, evs[int(tick)%2], false, nil, &st)
		tick++
	}
	for i := 0; i < 64; i++ {
		step()
	}
	if a := testing.AllocsPerRun(500, step); a != 0 {
		t.Fatalf("warm Step allocates %.1f per op, want 0", a)
	}
}

// TestWarmStepUndoZeroAllocs is the Time Warp forward path: incremental
// state saving into a reused undo log must also be allocation-free once
// the log's change slices have grown.
func TestWarmStepUndoZeroAllocs(t *testing.T) {
	lp, evs := warmLP(t)
	var st metrics.LPCounters
	lp.Step(0, evs[0], true, nil, &st)
	undo := NewUndo(32, 8, 32)
	tick := circuit.Tick(1)
	step := func() {
		undo.Reset()
		lp.Step(tick, evs[int(tick)%2], false, undo, &st)
		tick++
	}
	for i := 0; i < 64; i++ {
		step()
	}
	if a := testing.AllocsPerRun(500, step); a != 0 {
		t.Fatalf("warm Step+undo allocates %.1f per op, want 0", a)
	}
}
