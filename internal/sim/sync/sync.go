// Package sync implements the synchronous (global-clock) parallel engine.
//
// All logical processes share one value of simulated time. Each global
// timestep runs in two barrier-separated phases mirroring the two-phase
// semantics of the sequential reference: phase A applies every net change
// scheduled for the current time and routes dirty-gate notifications to the
// owners of the fanout gates (the cross-LP notifications are the
// "messages" of the paper's model — here carried through shared memory,
// but counted and priced as messages by the cost model); phase B evaluates
// each affected gate exactly once against the settled values and schedules
// the outputs into the owner's local pending set. The coordinator then
// reduces the per-LP minima to find the next global time.
//
// The engine records Σ_steps max_LP(step work) as the modeled critical
// path, and two barriers per step, which is exactly where the paper says
// the synchronous algorithm's scaling limit lives: barrier time grows with
// the processor population while per-step useful work per LP shrinks.
package sync

import (
	"fmt"
	"sort"
	gosync "sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/eventq"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/supervise"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Config parameterizes a synchronous run.
type Config struct {
	// Partition assigns gates to LPs; required.
	Partition *partition.Partition
	// System is the logic value system.
	System logic.System
	// Queue selects each LP's pending-event set implementation.
	Queue eventq.Impl
	// Watch lists nets to record; nil watches primary outputs.
	Watch []circuit.GateID
	// Cost prices per-step work for the modeled critical path; zero value
	// uses the default model.
	Cost stats.CostModel
	// MaxEvents aborts runaway simulations; 0 means no limit.
	MaxEvents uint64
	// Metrics receives per-LP counters and barrier globals; nil uses a
	// private registry.
	Metrics metrics.Sink
	// Tracer, when non-nil, records per-LP apply/evaluate spans and
	// coordinator barrier spans.
	Tracer *trace.Tracer
	// Rebalance enables dynamic load balancing, the Section VI proposal
	// "dynamic load balancing is being considered to react to variations
	// in computational workload": between global steps, gates migrate from
	// the most-loaded LP (by evaluations in the last window) to the least
	// loaded. Migration is cheap in the shared-memory synchronous engine —
	// only the ownership map changes — but each moved gate is priced as a
	// state-transfer message on both sides.
	Rebalance RebalanceConfig
	// Boot, when non-nil, resumes from a checkpoint instead of time zero:
	// the shared state planes are seeded from the snapshot, pending events
	// are reloaded from it, the stimulus is ignored (the checkpoint queue
	// already holds every future stimulus change), and the time-zero
	// settling step is skipped. The returned waveform covers only the
	// resumed suffix.
	Boot *ckpt.State
}

// RebalanceConfig parameterizes dynamic load balancing.
type RebalanceConfig struct {
	// Interval is the number of global steps between rebalancing
	// episodes; 0 disables dynamic balancing.
	Interval uint64
	// Fraction is the largest share of the hottest LP's recent load moved
	// per episode (default 0.25).
	Fraction float64
}

// Result is the outcome of a synchronous run.
type Result struct {
	Values   []logic.Value
	Waveform trace.Waveform
	EndTime  circuit.Tick
	Stats    stats.RunStats
	// Migrations counts gates moved by dynamic load balancing.
	Migrations uint64
}

// event is a scheduled net change local to one LP.
type event struct {
	gate  circuit.GateID
	value logic.Value
}

// lp is one logical process worker.
type lp struct {
	id      int
	gates   []circuit.GateID
	q       eventq.Queue[event]
	dirty   []circuit.GateID
	stamp   []uint64
	scratch []logic.Value
	rec     trace.Recorder
	st      *metrics.LPBlock
	sh      *trace.Shard
	// outbox[dst] accumulates dirty-gate notifications for LP dst during
	// phase A; dst drains it in phase B. Only the owner writes, only dst
	// reads, and the phases are barrier-separated.
	outbox [][]circuit.GateID
	// phaseWork accumulates this phase's work in model nanoseconds.
	phaseWork float64
}

// Run simulates c under the stimulus until the given time (inclusive).
func Run(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, cfg Config) (*Result, error) {
	if cfg.Partition == nil {
		return nil, fmt.Errorf("sync: Config.Partition is required")
	}
	if err := cfg.Partition.Validate(c); err != nil {
		return nil, err
	}
	if err := c.CheckEventDriven(); err != nil {
		return nil, err
	}
	if err := stim.Validate(c); err != nil {
		return nil, err
	}
	if cfg.System == 0 {
		cfg.System = logic.NineValued
	}
	if cfg.Cost == (stats.CostModel{}) {
		cfg.Cost = stats.DefaultCostModel()
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("sync")
	}
	start := time.Now()

	p := cfg.Partition
	numLPs := p.Blocks
	owner := p.Assign

	val, prevClk := circuit.InitState(c, cfg.System)
	projected := make([]logic.Value, len(val))
	copy(projected, val)
	if cfg.Boot != nil {
		if err := cfg.Boot.Check(c, cfg.System); err != nil {
			return nil, err
		}
		copy(val, cfg.Boot.Vals)
		copy(prevClk, cfg.Boot.PrevClk)
		copy(projected, cfg.Boot.Projected)
	}

	watched := cfg.Watch
	if watched == nil {
		watched = c.Outputs
	}
	isWatched := make([]bool, len(c.Gates))
	for _, g := range watched {
		isWatched[g] = true
	}

	// Dynamic balancing mutates a private copy of the ownership map and
	// tracks per-gate evaluation counts within the current window.
	rebalancing := cfg.Rebalance.Interval > 0
	if rebalancing {
		owner = append([]int(nil), owner...)
		if cfg.Rebalance.Fraction <= 0 {
			cfg.Rebalance.Fraction = 0.25
		}
	}
	var windowEvals []uint32
	if rebalancing {
		windowEvals = make([]uint32, len(c.Gates))
	}
	var migrations uint64

	lps := make([]*lp, numLPs)
	blockGates := p.BlockGates()
	for i := range lps {
		lps[i] = &lp{
			id:     i,
			gates:  blockGates[i],
			q:      eventq.New[event](cfg.Queue),
			stamp:  make([]uint64, len(c.Gates)),
			outbox: make([][]circuit.GateID, numLPs),
			st:     sink.LP(i),
			sh:     cfg.Tracer.Shard(fmt.Sprintf("lp %d", i)),
		}
	}
	globals := sink.Globals()
	coord := cfg.Tracer.Shard("coordinator")
	if cfg.Boot == nil {
		for _, ch := range stim.Changes {
			if ch.Time > until {
				continue
			}
			lps[owner[ch.Input]].q.Push(uint64(ch.Time), event{ch.Input, cfg.System.Project(ch.Value)})
		}
	} else {
		// Checkpoint events go to the target's owner only: the engine
		// shares one value plane, so there are no ghost copies to feed.
		for _, ev := range cfg.Boot.Events {
			lps[owner[ev.Gate]].q.Push(ev.Time, event{ev.Gate, ev.Value})
		}
	}

	var epoch uint64
	var totalEvents atomic.Uint64
	run := &Result{}

	// phaseA applies this LP's events at time t and routes notifications.
	phaseA := func(l *lp, t circuit.Tick) {
		l.phaseWork = 0
		begin := l.sh.Now()
		applied := uint64(0)
		for {
			pt, ok := l.q.PeekTime()
			if !ok || circuit.Tick(pt) != t {
				break
			}
			_, ev, _ := l.q.PopMin()
			totalEvents.Add(1)
			l.st.EventsApplied++
			applied++
			l.phaseWork += cfg.Cost.EventCost
			if val[ev.gate] == ev.value {
				continue
			}
			val[ev.gate] = ev.value
			if isWatched[ev.gate] {
				l.rec.Record(t, ev.gate, ev.value)
			}
			for _, out := range c.Fanout[ev.gate] {
				dst := owner[out]
				l.outbox[dst] = append(l.outbox[dst], out)
				if dst != l.id {
					l.st.MessagesSent++
					l.phaseWork += cfg.Cost.MsgCost
				}
			}
		}
		l.st.Hist(metrics.HistStepEvents).Observe(applied)
		l.sh.Span(trace.PhaseApply, begin, t)
	}

	// phaseB drains notifications and evaluates affected gates.
	phaseB := func(l *lp, t circuit.Tick, initial bool) {
		l.phaseWork = 0
		begin := l.sh.Now()
		l.dirty = l.dirty[:0]
		if initial {
			// Every local gate is evaluated regardless of notifications,
			// but the notifications were still delivered: account for the
			// receive side so the message counters stay paired.
			for _, src := range lps {
				for range src.outbox[l.id] {
					if src.id != l.id {
						l.st.MessagesRecv++
						l.phaseWork += cfg.Cost.MsgCost
					}
				}
			}
			for _, g := range l.gates {
				if !c.Gates[g].Kind.Source() {
					l.dirty = append(l.dirty, g)
				}
			}
		} else {
			for _, src := range lps {
				inbox := src.outbox[l.id]
				for _, g := range inbox {
					if src.id != l.id {
						// Count the receive side of the notification.
						l.st.MessagesRecv++
						l.phaseWork += cfg.Cost.MsgCost
					}
					if l.stamp[g] != epoch {
						l.stamp[g] = epoch
						l.dirty = append(l.dirty, g)
					}
				}
			}
		}
		for _, g := range l.dirty {
			var out, clkSample logic.Value
			out, clkSample, l.scratch = circuit.EvalGate(c, g, val, prevClk, l.scratch)
			prevClk[g] = clkSample
			l.st.Evaluations++
			if rebalancing {
				windowEvals[g]++
			}
			l.phaseWork += cfg.Cost.EvalCost
			if out == projected[g] {
				continue
			}
			projected[g] = out
			l.q.Push(uint64(t+c.Gates[g].Delay), event{g, out})
			l.st.EventsScheduled++
			l.phaseWork += cfg.Cost.EventCost
		}
		l.st.Steps++
		l.sh.Span(trace.PhaseEvaluate, begin, t)
	}

	// Persistent phase workers: one goroutine per LP lives for the whole
	// run and executes phases on command, instead of forking numLPs fresh
	// goroutines per phase (two phases per global step). Goroutine creation
	// is not free — a stack allocation plus a scheduler wakeup — and the
	// synchronous engine crosses a barrier every few microseconds of useful
	// work, so the spawn cost sits squarely on the critical path this
	// engine exists to measure. Each worker owns its LP exclusively within
	// a phase; the WaitGroup is the join barrier.
	type phaseCmd struct {
		t     circuit.Tick
		phase int
	}
	// A panicking phase must still release the barrier (pw.Done in a
	// defer) or the coordinator would block forever; the recovered panic
	// is latched as the run's first failure and checked at each barrier.
	var failMu gosync.Mutex
	var failErr error
	setFail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
	}
	checkFail := func() error {
		failMu.Lock()
		defer failMu.Unlock()
		return failErr
	}
	work := make([]chan phaseCmd, numLPs)
	var pw gosync.WaitGroup
	for _, l := range lps {
		ch := make(chan phaseCmd, 1)
		work[l.id] = ch
		go func(l *lp, ch chan phaseCmd) {
			for cmd := range ch {
				name := "apply"
				if cmd.phase != 0 {
					name = "eval"
				}
				func() {
					defer pw.Done()
					defer func() {
						if r := recover(); r != nil {
							setFail(supervise.FromPanic("sync", l.id, name, cmd.t, r))
						}
					}()
					metrics.Do(sink, "sync", l.id, name, func() {
						switch cmd.phase {
						case 0:
							phaseA(l, cmd.t)
						case 1:
							phaseB(l, cmd.t, false)
						case 2:
							phaseB(l, cmd.t, true)
						}
					})
				}()
			}
		}(l, ch)
	}
	defer func() {
		for _, ch := range work {
			close(ch)
		}
	}()

	// runPhase executes one phase on every LP concurrently and waits for
	// all of them — the global barrier, priced by the cost model.
	runPhase := func(t circuit.Tick, phase int) {
		begin := coord.Now()
		pw.Add(numLPs)
		for _, ch := range work {
			ch <- phaseCmd{t, phase}
		}
		pw.Wait()
		coord.Span(trace.PhaseBarrier, begin, t)
		globals.Barriers++
		var max float64
		for _, l := range lps {
			if l.phaseWork > max {
				max = l.phaseWork
			}
		}
		globals.ModeledCriticalNs += max
	}

	clearOutboxes := func() {
		for _, l := range lps {
			for d := range l.outbox {
				l.outbox[d] = l.outbox[d][:0]
			}
		}
	}

	// rebalance migrates the hottest gates of the most loaded LP (by
	// window evaluations) to the least loaded LP. It runs between steps,
	// when no phase goroutines are live, so mutating the ownership map is
	// safe; pending events stay in the queue that scheduled them (applying
	// a net change does not require ownership — only evaluation routing
	// does, and that always consults the current map).
	rebalance := func() {
		loads := make([]uint64, numLPs)
		for g, o := range owner {
			loads[o] += uint64(windowEvals[g])
		}
		var total uint64
		for _, l := range loads {
			total += l
		}
		if total == 0 {
			return
		}
		avg := total / uint64(numLPs)
		// Drain each over-average LP toward the currently coldest one, one
		// pass per LP at most; gates with the highest recent activity move
		// first so few migrations shift a lot of load.
		type hg struct {
			g circuit.GateID
			n uint32
		}
		for pass := 0; pass < numLPs; pass++ {
			hot, cold := 0, 0
			for i, l := range loads {
				if l > loads[hot] {
					hot = i
				}
				if l < loads[cold] {
					cold = i
				}
			}
			if hot == cold || loads[hot] <= avg+avg/10 {
				break
			}
			var cands []hg
			for g, o := range owner {
				if o == hot && windowEvals[g] > 0 && !c.Gates[g].Kind.Source() {
					cands = append(cands, hg{circuit.GateID(g), windowEvals[g]})
				}
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].n > cands[j].n })
			budget := uint64(float64(loads[hot]-avg) * 4 * cfg.Rebalance.Fraction)
			if over := loads[hot] - avg; over < budget {
				budget = over
			}
			if headroom := avg - loads[cold]; headroom < budget {
				budget = headroom
			}
			var moved uint64
			for _, cand := range cands {
				if moved >= budget {
					break
				}
				owner[cand.g] = cold
				moved += uint64(cand.n)
				migrations++
				// Price the state transfer on both sides.
				lps[hot].st.MessagesSent++
				lps[cold].st.MessagesRecv++
			}
			loads[hot] -= moved
			loads[cold] += moved
			if moved == 0 {
				break
			}
		}
		clear(windowEvals)
	}

	// Time-zero settling step: apply t=0 stimulus, then evaluate all
	// gates. A checkpoint resume skips it — the snapshot is already
	// settled state.
	epoch++
	if cfg.Boot == nil {
		runPhase(0, 0)
		runPhase(0, 2)
		clearOutboxes()
		if err := checkFail(); err != nil {
			return nil, err
		}
	}
	var endTime circuit.Tick
	var stepsSinceRebalance uint64

	for {
		// Reduce the next global time across LP queues.
		var next uint64
		have := false
		for _, l := range lps {
			if err := l.q.Err(); err != nil {
				return nil, &supervise.SimError{
					Engine: "sync", LP: l.id, Phase: "eventq", ModeledTime: endTime,
					Kind: supervise.KindCausality, Cause: err,
				}
			}
			if pt, ok := l.q.PeekTime(); ok && (!have || pt < next) {
				next, have = pt, true
			}
		}
		if !have || circuit.Tick(next) > until {
			break
		}
		if cfg.MaxEvents > 0 && totalEvents.Load() > cfg.MaxEvents {
			return nil, &supervise.SimError{
				Engine: "sync", LP: -1, Phase: "run", ModeledTime: circuit.Tick(next),
				Kind:  supervise.KindEventLimit,
				Cause: fmt.Errorf("event limit %d exceeded at time %d", cfg.MaxEvents, next),
			}
		}
		t := circuit.Tick(next)
		endTime = t
		epoch++
		runPhase(t, 0)
		runPhase(t, 1)
		clearOutboxes()
		if err := checkFail(); err != nil {
			return nil, err
		}
		if rebalancing {
			stepsSinceRebalance++
			if stepsSinceRebalance >= cfg.Rebalance.Interval {
				stepsSinceRebalance = 0
				rebalance()
			}
		}
	}

	run.Values = val
	recs := make([]*trace.Recorder, numLPs)
	for i, l := range lps {
		recs[i] = &l.rec
	}
	run.Waveform = trace.Merge(recs...)
	run.EndTime = endTime
	run.Migrations = migrations
	sink.SetGauge("migrations", float64(migrations))
	run.Stats = stats.Collect(sink, time.Since(start))
	return run, nil
}
