package sync

import (
	"fmt"
	gosync "sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/eventq"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/sim/supervise"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// WideResult is the outcome of a wide synchronous run.
type WideResult struct {
	Values   []logic.Word
	Waveform trace.WideWaveform
	EndTime  circuit.Tick
	Lanes    int
	Stats    stats.RunStats
}

// wideEvent is a scheduled whole-word net change local to one LP.
type wideEvent struct {
	gate circuit.GateID
	word logic.Word
}

// wideLP is one logical process worker of the wide engine.
type wideLP struct {
	id        int
	gates     []circuit.GateID
	q         eventq.Queue[wideEvent]
	dirty     []circuit.GateID
	stamp     []uint64
	scratch   []logic.Word
	rec       trace.WideRecorder
	st        *metrics.LPBlock
	outbox    [][]circuit.GateID
	phaseWork float64
}

// RunWide is the synchronous engine on 64 packed lanes: the identical
// two-phase barrier protocol, with every net change carrying a whole word
// and every evaluation processing 64 vectors. Events fire when any lane
// changes, so per-step work is the union of the lanes' scalar work — one
// barrier pair now advances 64 vectors instead of one.
//
// The wide path does not support dynamic rebalancing or checkpoint boot;
// those Config fields must be unset.
func RunWide(c *circuit.Circuit, stim *vectors.WideStimulus, until circuit.Tick, cfg Config) (*WideResult, error) {
	if cfg.Partition == nil {
		return nil, fmt.Errorf("sync: Config.Partition is required")
	}
	if err := cfg.Partition.Validate(c); err != nil {
		return nil, err
	}
	if err := c.CheckEventDriven(); err != nil {
		return nil, err
	}
	if cfg.Rebalance.Interval > 0 {
		return nil, fmt.Errorf("sync: wide runs do not support dynamic rebalancing")
	}
	if cfg.Boot != nil {
		return nil, fmt.Errorf("sync: wide runs do not support checkpoint boot")
	}
	if cfg.System == 0 {
		cfg.System = logic.FourValued
	}
	if err := logic.CheckWide(cfg.System); err != nil {
		return nil, err
	}
	if cfg.Cost == (stats.CostModel{}) {
		cfg.Cost = stats.DefaultCostModel()
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("sync-wide")
	}
	start := time.Now()

	p := cfg.Partition
	numLPs := p.Blocks
	owner := p.Assign

	val, prevClk := circuit.InitStateWide(c, cfg.System)
	projected := make([]logic.Word, len(val))
	copy(projected, val)

	watched := cfg.Watch
	if watched == nil {
		watched = c.Outputs
	}
	isWatched := make([]bool, len(c.Gates))
	for _, g := range watched {
		isWatched[g] = true
	}

	lps := make([]*wideLP, numLPs)
	blockGates := p.BlockGates()
	for i := range lps {
		lps[i] = &wideLP{
			id:     i,
			gates:  blockGates[i],
			q:      eventq.New[wideEvent](cfg.Queue),
			stamp:  make([]uint64, len(c.Gates)),
			outbox: make([][]circuit.GateID, numLPs),
			st:     sink.LP(i),
		}
	}
	globals := sink.Globals()
	for _, ch := range stim.Changes {
		if ch.Time > until {
			continue
		}
		lps[owner[ch.Input]].q.Push(uint64(ch.Time), wideEvent{ch.Input, ch.Word})
	}

	var epoch uint64
	var totalEvents atomic.Uint64
	run := &WideResult{Lanes: stim.Lanes}

	phaseA := func(l *wideLP, t circuit.Tick) {
		l.phaseWork = 0
		applied := uint64(0)
		for {
			pt, ok := l.q.PeekTime()
			if !ok || circuit.Tick(pt) != t {
				break
			}
			_, ev, _ := l.q.PopMin()
			totalEvents.Add(1)
			l.st.EventsApplied++
			applied++
			l.phaseWork += cfg.Cost.EventCost
			if val[ev.gate] == ev.word {
				continue
			}
			val[ev.gate] = ev.word
			if isWatched[ev.gate] {
				l.rec.Record(t, ev.gate, ev.word)
			}
			for _, out := range c.Fanout[ev.gate] {
				dst := owner[out]
				l.outbox[dst] = append(l.outbox[dst], out)
				if dst != l.id {
					l.st.MessagesSent++
					l.phaseWork += cfg.Cost.MsgCost
				}
			}
		}
		l.st.Hist(metrics.HistStepEvents).Observe(applied)
	}

	phaseB := func(l *wideLP, t circuit.Tick, initial bool) {
		l.phaseWork = 0
		l.dirty = l.dirty[:0]
		if initial {
			for _, src := range lps {
				for range src.outbox[l.id] {
					if src.id != l.id {
						l.st.MessagesRecv++
						l.phaseWork += cfg.Cost.MsgCost
					}
				}
			}
			for _, g := range l.gates {
				if !c.Gates[g].Kind.Source() {
					l.dirty = append(l.dirty, g)
				}
			}
		} else {
			for _, src := range lps {
				inbox := src.outbox[l.id]
				for _, g := range inbox {
					if src.id != l.id {
						l.st.MessagesRecv++
						l.phaseWork += cfg.Cost.MsgCost
					}
					if l.stamp[g] != epoch {
						l.stamp[g] = epoch
						l.dirty = append(l.dirty, g)
					}
				}
			}
		}
		for _, g := range l.dirty {
			var out, clkSample logic.Word
			out, clkSample, l.scratch = circuit.EvalGateWide(c, g, val, prevClk, l.scratch)
			prevClk[g] = clkSample
			l.st.Evaluations++
			l.phaseWork += cfg.Cost.EvalCost
			if out == projected[g] {
				continue
			}
			projected[g] = out
			l.q.Push(uint64(t+c.Gates[g].Delay), wideEvent{g, out})
			l.st.EventsScheduled++
			l.phaseWork += cfg.Cost.EventCost
		}
		l.st.Steps++
	}

	// Persistent phase workers, as in the scalar engine: one goroutine per
	// LP for the whole run, commanded over a channel, joined by WaitGroup.
	type phaseCmd struct {
		t     circuit.Tick
		phase int
	}
	var failMu gosync.Mutex
	var failErr error
	setFail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
	}
	checkFail := func() error {
		failMu.Lock()
		defer failMu.Unlock()
		return failErr
	}
	work := make([]chan phaseCmd, numLPs)
	var pw gosync.WaitGroup
	for _, l := range lps {
		ch := make(chan phaseCmd, 1)
		work[l.id] = ch
		go func(l *wideLP, ch chan phaseCmd) {
			for cmd := range ch {
				name := "apply"
				if cmd.phase != 0 {
					name = "eval"
				}
				func() {
					defer pw.Done()
					defer func() {
						if r := recover(); r != nil {
							setFail(supervise.FromPanic("sync-wide", l.id, name, cmd.t, r))
						}
					}()
					metrics.Do(sink, "sync-wide", l.id, name, func() {
						switch cmd.phase {
						case 0:
							phaseA(l, cmd.t)
						case 1:
							phaseB(l, cmd.t, false)
						case 2:
							phaseB(l, cmd.t, true)
						}
					})
				}()
			}
		}(l, ch)
	}
	defer func() {
		for _, ch := range work {
			close(ch)
		}
	}()

	runPhase := func(t circuit.Tick, phase int) {
		pw.Add(numLPs)
		for _, ch := range work {
			ch <- phaseCmd{t, phase}
		}
		pw.Wait()
		globals.Barriers++
		var max float64
		for _, l := range lps {
			if l.phaseWork > max {
				max = l.phaseWork
			}
		}
		globals.ModeledCriticalNs += max
	}

	clearOutboxes := func() {
		for _, l := range lps {
			for d := range l.outbox {
				l.outbox[d] = l.outbox[d][:0]
			}
		}
	}

	epoch++
	runPhase(0, 0)
	runPhase(0, 2)
	clearOutboxes()
	if err := checkFail(); err != nil {
		return nil, err
	}
	var endTime circuit.Tick

	for {
		var next uint64
		have := false
		for _, l := range lps {
			if err := l.q.Err(); err != nil {
				return nil, &supervise.SimError{
					Engine: "sync-wide", LP: l.id, Phase: "eventq", ModeledTime: endTime,
					Kind: supervise.KindCausality, Cause: err,
				}
			}
			if pt, ok := l.q.PeekTime(); ok && (!have || pt < next) {
				next, have = pt, true
			}
		}
		if !have || circuit.Tick(next) > until {
			break
		}
		if cfg.MaxEvents > 0 && totalEvents.Load() > cfg.MaxEvents {
			return nil, &supervise.SimError{
				Engine: "sync-wide", LP: -1, Phase: "run", ModeledTime: circuit.Tick(next),
				Kind:  supervise.KindEventLimit,
				Cause: fmt.Errorf("event limit %d exceeded at time %d", cfg.MaxEvents, next),
			}
		}
		t := circuit.Tick(next)
		endTime = t
		epoch++
		runPhase(t, 0)
		runPhase(t, 1)
		clearOutboxes()
		if err := checkFail(); err != nil {
			return nil, err
		}
	}

	run.Values = val
	recs := make([]*trace.WideRecorder, numLPs)
	for i, l := range lps {
		recs[i] = &l.rec
	}
	run.Waveform = trace.MergeWide(recs...)
	run.EndTime = endTime
	run.Stats = stats.Collect(sink, time.Since(start))
	return run, nil
}
