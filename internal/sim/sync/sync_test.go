package sync

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/simtest"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// TestMatchesSequentialReference is the core equivalence suite: every
// corpus circuit, multiple partitioning methods, multiple LP counts —
// identical waveforms and final values as the sequential engine.
func TestMatchesSequentialReference(t *testing.T) {
	corpus, err := simtest.StandardCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	methods := []partition.Method{partition.MethodRandom, partition.MethodFM, partition.MethodStrings}
	for _, cs := range corpus {
		until := seq.Horizon(cs.C, cs.Stim)
		ref, err := seq.Run(cs.C, cs.Stim, until, seq.Config{System: logic.TwoValued})
		if err != nil {
			t.Fatalf("%s: seq: %v", cs.Name, err)
		}
		for _, m := range methods {
			for _, k := range []int{1, 2, 4, 8} {
				p, err := partition.New(m, cs.C, k, partition.Options{Seed: 11})
				if err != nil {
					t.Fatalf("%s %v k=%d: %v", cs.Name, m, k, err)
				}
				res, err := Run(cs.C, cs.Stim, until, Config{
					Partition: p,
					System:    logic.TwoValued,
				})
				if err != nil {
					t.Fatalf("%s %v k=%d: %v", cs.Name, m, k, err)
				}
				if d := trace.Diff(ref.Waveform, res.Waveform, 5); d != "" {
					t.Fatalf("%s %v k=%d waveform mismatch:\n%s", cs.Name, m, k, d)
				}
				for g := range ref.Values {
					if ref.Values[g] != res.Values[g] {
						t.Fatalf("%s %v k=%d: final value mismatch at gate %d: %v vs %v",
							cs.Name, m, k, g, ref.Values[g], res.Values[g])
					}
				}
			}
		}
	}
}

func TestNineValuedMatchesReference(t *testing.T) {
	c, err := gen.RandomSeq(gen.RandomConfig{Gates: 200, Inputs: 8, Outputs: 6, Seed: 5, FFRatio: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 15, HalfPeriod: 25, Activity: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	ref, err := seq.Run(c, stim, until, seq.Config{System: logic.NineValued})
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(partition.MethodFM, c, 4, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, stim, until, Config{Partition: p, System: logic.NineValued})
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Diff(ref.Waveform, res.Waveform, 5); d != "" {
		t.Fatalf("9-valued mismatch:\n%s", d)
	}
}

func TestStatsPopulated(t *testing.T) {
	c, err := gen.ArrayMultiplier(5, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 10, Period: 40, Activity: 0.8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(partition.MethodFM, c, 4, partition.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, stim, seq.Horizon(c, stim), Config{Partition: p, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if len(st.LPs) != 4 {
		t.Fatalf("LP stats count = %d", len(st.LPs))
	}
	total := st.Total()
	if total.Evaluations == 0 || total.EventsApplied == 0 {
		t.Fatalf("no work recorded: %+v", total)
	}
	if total.MessagesSent == 0 || total.MessagesSent != total.MessagesRecv {
		t.Fatalf("message accounting broken: sent=%d recv=%d", total.MessagesSent, total.MessagesRecv)
	}
	if st.Barriers == 0 {
		t.Fatal("no barriers counted")
	}
	if st.ModeledCritical <= 0 {
		t.Fatal("no modeled critical path")
	}
	if st.Wall <= 0 {
		t.Fatal("no wall time")
	}
}

func TestSingleLPDegeneratesToSequentialWork(t *testing.T) {
	c, err := gen.RippleAdder(8, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 15, Period: 50, Activity: 0.6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	ref, err := seq.Run(c, stim, until, seq.Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := partition.New(partition.MethodContiguous, c, 1, partition.Options{})
	res, err := Run(c, stim, until, Config{Partition: p, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Stats.Total()
	if total.Evaluations != ref.Counters.Evaluations {
		t.Fatalf("1-LP evaluations %d != sequential %d", total.Evaluations, ref.Counters.Evaluations)
	}
	if total.MessagesSent != 0 {
		t.Fatalf("1-LP run sent %d messages", total.MessagesSent)
	}
}

func TestMissingPartitionRejected(t *testing.T) {
	c, err := gen.RippleAdder(2, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, _ := vectors.Random(c, vectors.RandomConfig{Vectors: 1, Period: 5, Activity: 1, Seed: 0})
	if _, err := Run(c, stim, 100, Config{}); err == nil {
		t.Fatal("missing partition accepted")
	}
}

func TestMaxEventsEnforced(t *testing.T) {
	c, err := gen.ArrayMultiplier(6, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 50, Period: 30, Activity: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := partition.New(partition.MethodContiguous, c, 2, partition.Options{})
	if _, err := Run(c, stim, seq.Horizon(c, stim), Config{Partition: p, System: logic.TwoValued, MaxEvents: 50}); err == nil {
		t.Fatal("event limit not enforced")
	}
}

func TestPartitionForWrongCircuitRejected(t *testing.T) {
	c1, _ := gen.RippleAdder(4, gen.Unit)
	c2, _ := gen.RippleAdder(8, gen.Unit)
	p, _ := partition.New(partition.MethodContiguous, c1, 2, partition.Options{})
	stim, _ := vectors.Random(c2, vectors.RandomConfig{Vectors: 1, Period: 5, Activity: 1, Seed: 0})
	if _, err := Run(c2, stim, 100, Config{Partition: p, System: logic.TwoValued}); err == nil {
		t.Fatal("mismatched partition accepted")
	}
}

func TestWatchInternalNets(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	n1 := b.Gate(circuit.Not, "n1", a)
	n2 := b.Gate(circuit.Not, "n2", n1)
	b.Output("y", n2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	stim := &vectors.Stimulus{
		Changes: []vectors.Change{{Time: 0, Input: a, Value: logic.Zero}, {Time: 5, Input: a, Value: logic.One}},
		End:     5,
	}
	p, _ := partition.New(partition.MethodContiguous, c, 2, partition.Options{})
	res, err := Run(c, stim, 100, Config{Partition: p, System: logic.TwoValued, Watch: []circuit.GateID{n1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Waveform {
		if s.Gate != n1 {
			t.Fatalf("unexpected gate %d in waveform", s.Gate)
		}
	}
	if len(res.Waveform) == 0 {
		t.Fatal("internal net not recorded")
	}
}

// TestRebalancingPreservesResults checks that dynamic load balancing is
// semantically invisible: migrated ownership must not change a single
// sample of the waveform.
func TestRebalancingPreservesResults(t *testing.T) {
	corpus, err := simtest.StandardCorpus(53)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range corpus[:6] {
		until := seq.Horizon(cs.C, cs.Stim)
		ref, err := seq.Run(cs.C, cs.Stim, until, seq.Config{System: logic.TwoValued})
		if err != nil {
			t.Fatal(err)
		}
		p, err := partition.New(partition.MethodContiguous, cs.C, 4, partition.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, interval := range []uint64{1, 7, 50} {
			res, err := Run(cs.C, cs.Stim, until, Config{
				Partition: p, System: logic.TwoValued,
				Rebalance: RebalanceConfig{Interval: interval},
			})
			if err != nil {
				t.Fatalf("%s interval=%d: %v", cs.Name, interval, err)
			}
			if d := trace.Diff(ref.Waveform, res.Waveform, 5); d != "" {
				t.Fatalf("%s interval=%d: rebalancing changed results:\n%s", cs.Name, interval, d)
			}
			for g := range ref.Values {
				if ref.Values[g] != res.Values[g] {
					t.Fatalf("%s interval=%d: value mismatch at %d", cs.Name, interval, g)
				}
			}
		}
	}
}

// TestRebalancingMovesLoad checks migration actually happens under a
// skewed workload and the load spread narrows.
func TestRebalancingMovesLoad(t *testing.T) {
	b := circuit.NewBuilder()
	in := b.Input("hot")
	prev := in
	for i := 0; i < 200; i++ {
		prev = b.Gate(circuit.Not, getName2("g", i), prev)
	}
	b.Output("y", prev)
	cold := b.Input("cold")
	prevC := cold
	for i := 0; i < 200; i++ {
		prevC = b.Gate(circuit.Not, getName2("h", i), prevC)
	}
	b.Output("z", prevC)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var chs []vectors.Change
	hotID, _ := c.ByName("hot")
	coldID, _ := c.ByName("cold")
	chs = append(chs,
		vectors.Change{Time: 0, Input: hotID, Value: logic.Zero},
		vectors.Change{Time: 0, Input: coldID, Value: logic.Zero})
	for k := 1; k <= 30; k++ {
		chs = append(chs, vectors.Change{Time: circuit.Tick(k) * 800, Input: hotID, Value: logic.FromBool(k%2 == 1)})
	}
	stim := &vectors.Stimulus{Changes: chs, End: 30 * 800}
	stim.Sort()
	p, _ := partition.New(partition.MethodContiguous, c, 2, partition.Options{})
	res, err := Run(c, stim, seq.Horizon(c, stim), Config{
		Partition: p, System: logic.TwoValued,
		Rebalance: RebalanceConfig{Interval: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("no migrations under a fully skewed load")
	}
	// Both LPs must end up with meaningful evaluation counts.
	lo, hi := res.Stats.LPs[0].Evaluations, res.Stats.LPs[1].Evaluations
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo*5 < hi {
		t.Fatalf("load still skewed after rebalancing: %d vs %d", lo, hi)
	}
}

func getName2(p string, i int) string {
	return p + string(rune('a'+i/26%26)) + string(rune('a'+i%26))
}
