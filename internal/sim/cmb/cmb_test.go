package cmb

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/simtest"
	"repro/internal/trace"
	"repro/internal/vectors"
)

var allModes = []Mode{NullEager, NullDemand, DeadlockRecovery}

// TestMatchesSequentialReference is the core equivalence suite for the
// conservative engine, across all three protocol variants.
func TestMatchesSequentialReference(t *testing.T) {
	corpus, err := simtest.StandardCorpus(13)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range corpus {
		until := seq.Horizon(cs.C, cs.Stim)
		ref, err := seq.Run(cs.C, cs.Stim, until, seq.Config{System: logic.TwoValued})
		if err != nil {
			t.Fatalf("%s: seq: %v", cs.Name, err)
		}
		ks := []int{1, 2, 4, 7}
		if testing.Short() {
			ks = []int{4}
		}
		for _, mode := range allModes {
			for _, k := range ks {
				p, err := partition.New(partition.MethodFM, cs.C, k, partition.Options{Seed: 3})
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(cs.C, cs.Stim, until, Config{
					Partition: p,
					Mode:      mode,
					System:    logic.TwoValued,
				})
				if err != nil {
					t.Fatalf("%s %v k=%d: %v", cs.Name, mode, k, err)
				}
				if d := trace.Diff(ref.Waveform, res.Waveform, 5); d != "" {
					t.Fatalf("%s %v k=%d waveform mismatch:\n%s", cs.Name, mode, k, d)
				}
				for g := range ref.Values {
					if ref.Values[g] != res.Values[g] {
						t.Fatalf("%s %v k=%d: value mismatch at gate %d", cs.Name, mode, k, g)
					}
				}
			}
		}
	}
}

func TestRandomPartitionsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	// Random partitions maximize cut links and cyclic LP dependencies —
	// the stress case for null-message deadlock avoidance.
	c, err := gen.RandomSeq(gen.RandomConfig{Gates: 300, Inputs: 10, Outputs: 6, Seed: 21, FFRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Clocked(c, vectors.ClockedConfig{Clock: "clk", Cycles: 20, HalfPeriod: 25, Activity: 0.7, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	ref, err := seq.Run(c, stim, until, seq.Config{System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 4; seed++ {
		p, err := partition.New(partition.MethodRandom, c, 6, partition.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range allModes {
			res, err := Run(c, stim, until, Config{Partition: p, Mode: mode, System: logic.TwoValued})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, mode, err)
			}
			if d := trace.Diff(ref.Waveform, res.Waveform, 3); d != "" {
				t.Fatalf("seed %d %v mismatch:\n%s", seed, mode, d)
			}
		}
	}
}

func TestNullMessageAccounting(t *testing.T) {
	c, err := gen.ArrayMultiplier(5, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 12, Period: 50, Activity: 0.6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	p, err := partition.New(partition.MethodFM, c, 4, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	eager, err := Run(c, stim, until, Config{Partition: p, Mode: NullEager, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	te := eager.Stats.Total()
	if te.NullsSent == 0 {
		t.Fatal("eager mode sent no null messages")
	}
	if te.MessagesSent != te.MessagesRecv {
		t.Fatalf("message pairing broken: %d vs %d", te.MessagesSent, te.MessagesRecv)
	}

	detect, err := Run(c, stim, until, Config{Partition: p, Mode: DeadlockRecovery, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	td := detect.Stats.Total()
	if td.NullsSent != 0 {
		t.Fatal("deadlock-recovery mode sent null messages")
	}
	if td.Evaluations == 0 {
		t.Fatal("no work recorded")
	}
}

func TestDemandSendsFewerNulls(t *testing.T) {
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 500, Inputs: 12, Outputs: 8, Seed: 4, Locality: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Low activity: long idle stretches are where eager nulls pile up.
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 40, Period: 60, Activity: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	until := seq.Horizon(c, stim)
	p, err := partition.New(partition.MethodFM, c, 4, partition.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Run(c, stim, until, Config{Partition: p, Mode: NullEager, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	demand, err := Run(c, stim, until, Config{Partition: p, Mode: NullDemand, System: logic.TwoValued})
	if err != nil {
		t.Fatal(err)
	}
	en := eager.Stats.Total().NullsSent
	dn := demand.Stats.Total().NullsSent
	t.Logf("nulls: eager=%d demand=%d", en, dn)
	if dn > 3*en+100 {
		t.Fatalf("demand nulls (%d) wildly exceed eager (%d)", dn, en)
	}
}

func TestZeroDelayRejected(t *testing.T) {
	b := circuit.NewBuilder()
	a := b.Input("a")
	b.GateDelay(circuit.Not, "n", 0, a)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := partition.New(partition.MethodContiguous, c, 2, partition.Options{})
	stim := &vectors.Stimulus{Changes: []vectors.Change{{Time: 0, Input: a, Value: logic.Zero}}}
	if _, err := Run(c, stim, 10, Config{Partition: p}); err == nil {
		t.Fatal("zero-delay circuit accepted (lookahead would be zero)")
	}
}

func TestMissingPartitionRejected(t *testing.T) {
	c, _ := gen.RippleAdder(2, gen.Unit)
	stim, _ := vectors.Random(c, vectors.RandomConfig{Vectors: 1, Period: 5, Activity: 1, Seed: 0})
	if _, err := Run(c, stim, 10, Config{}); err == nil {
		t.Fatal("missing partition accepted")
	}
}

func TestMaxEventsAborts(t *testing.T) {
	c, err := gen.ArrayMultiplier(6, gen.Unit)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 40, Period: 40, Activity: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := partition.New(partition.MethodContiguous, c, 4, partition.Options{})
	for _, mode := range allModes {
		if _, err := Run(c, stim, seq.Horizon(c, stim), Config{
			Partition: p, Mode: mode, System: logic.TwoValued, MaxEvents: 100,
		}); err == nil {
			t.Fatalf("%v: event limit not enforced", mode)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if NullEager.String() != "null-eager" || NullDemand.String() != "null-demand" ||
		DeadlockRecovery.String() != "deadlock-recovery" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestLookaheadExploitsFineDelays(t *testing.T) {
	// With larger gate delays the lookahead grows and fewer nulls are
	// needed per unit of simulated time.
	mkRun := func(spec gen.DelaySpec) uint64 {
		c, err := gen.RandomDAG(gen.RandomConfig{Gates: 300, Inputs: 8, Outputs: 6, Seed: 9, Delays: spec})
		if err != nil {
			t.Fatal(err)
		}
		stim, err := vectors.Random(c, vectors.RandomConfig{Vectors: 20, Period: 80, Activity: 0.5, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		p, err := partition.New(partition.MethodFM, c, 4, partition.Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(c, stim, seq.Horizon(c, stim), Config{Partition: p, Mode: NullEager, System: logic.TwoValued})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Total().NullsSent
	}
	unit := mkRun(gen.Unit)
	if unit == 0 {
		t.Skip("no nulls generated")
	}
}
