package cmb

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/sim/kernel"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// WideResult is the outcome of a wide conservative run.
type WideResult struct {
	Values   []logic.Word
	Waveform trace.WideWaveform
	EndTime  circuit.Tick
	Lanes    int
	Stats    stats.RunStats
}

// RunWide is the conservative engine on 64 packed lanes: the identical
// null-message / deadlock-recovery protocol with every value message and
// event carrying a whole 64-lane word. Inside each LP the kernel's
// oblivious block sweep is armed: when the (lane-union) dirty set reaches
// half the LP's block, the step evaluates the whole owned block in
// levelized order obliviously-wide instead of walking the event-driven
// selection machinery — scalar event semantics at LP boundaries, batch
// evaluation inside. Per lane, the result is bit-identical to a scalar
// conservative run of that lane's stimulus.
//
// The wide path does not support checkpoint boot or chaos injection; those
// Config fields must be unset.
func RunWide(c *circuit.Circuit, stim *vectors.WideStimulus, until circuit.Tick, cfg Config) (*WideResult, error) {
	if cfg.Partition == nil {
		return nil, fmt.Errorf("cmb: Config.Partition is required")
	}
	if err := cfg.Partition.Validate(c); err != nil {
		return nil, err
	}
	if err := c.CheckEventDriven(); err != nil {
		return nil, err
	}
	if cfg.Boot != nil {
		return nil, fmt.Errorf("cmb: wide runs do not support checkpoint boot")
	}
	if cfg.Chaos != nil {
		return nil, fmt.Errorf("cmb: wide runs do not support chaos injection")
	}
	if cfg.Dist != nil {
		return nil, fmt.Errorf("cmb: wide runs do not support distributed execution (the wire format carries scalar values)")
	}
	if cfg.System == 0 {
		cfg.System = logic.FourValued
	}
	if err := logic.CheckWide(cfg.System); err != nil {
		return nil, err
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("cmb-wide-" + cfg.Mode.String())
	}
	start := time.Now()

	stimEvents := make([]stimEvent[logic.Word], 0, len(stim.Changes))
	for _, ch := range stim.Changes {
		stimEvents = append(stimEvents, stimEvent[logic.Word]{ch.Time, ch.Input, ch.Word})
	}

	watched := cfg.Watch
	if watched == nil {
		watched = c.Outputs
	}
	n := cfg.Partition.Blocks
	recs := make([]trace.WideRecorder, n)
	lps, sh, err := runCore(c, until, cfg, sink, "cmb-wide",
		stimEvents, nil, nil, nil, nil,
		func(self int, own []circuit.GateID) *kernel.WideLP {
			k := kernel.NewWide(c, cfg.Partition.Assign, self, cfg.System, watched, own)
			k.EnableSweep(kernel.SweepThreshold(len(own)))
			return k
		},
		func(lp int, t circuit.Tick, g circuit.GateID, v logic.Word) {
			recs[lp].Record(t, g, v)
		})
	if err != nil {
		return nil, err
	}

	res := &WideResult{Values: make([]logic.Word, len(c.Gates)), Lanes: stim.Lanes}
	owner := cfg.Partition.Assign
	for g := range c.Gates {
		res.Values[g] = lps[owner[g]].k.Value(circuit.GateID(g))
	}
	recPtrs := make([]*trace.WideRecorder, n)
	for i, l := range lps {
		recPtrs[i] = &recs[i]
		if l.end > res.EndTime {
			res.EndTime = l.end
		}
	}
	res.Waveform = trace.MergeWide(recPtrs...)
	sink.Globals().GVTRounds = sh.rounds
	res.Stats = stats.Collect(sink, time.Since(start))
	return res, nil
}
