// Package cmb implements conservative asynchronous simulation in the
// Chandy–Misra–Bryant style.
//
// Each logical process runs as its own goroutine with a private simulated
// clock. The input waiting rule is enforced through per-link promises: a
// null message from LP A carrying timestamp P guarantees that every future
// value message from A has time >= P, so the receiver may safely process
// any event strictly earlier than the minimum promise over its input
// links. Promises are computed from the sender's earliest possible next
// processing time plus the link lookahead (the minimum delay of the
// sender's gates whose outputs cross that link) — positive lookahead on
// every link is what makes the null-message chain advance around cycles,
// exactly the classic deadlock-avoidance argument.
//
// Three protocol variants reproduce the paper's Section IV taxonomy:
//
//   - NullEager: promises are pushed to downstream neighbours after every
//     processing step (classic deadlock avoidance).
//   - NullDemand: promises are only sent in response to a request from a
//     blocked neighbour (demand-driven nulls, lower null traffic, higher
//     blocking latency).
//   - DeadlockRecovery: no null messages at all; a coordinator detects
//     global quiescence (every LP blocked, no messages in transit) and
//     broadcasts a permit advancing the safe time to the global minimum
//     next event — the circulating-marker / deadlock recovery family.
//
// The protocol core is generic over the value type carried by events and
// messages: logic.Value for the scalar engine (Run) and logic.Word for the
// 64-lane wide engine (RunWide). Promises, blocking, and quiescence
// detection are value-blind, so both instantiations run the identical
// synchronization algorithm.
package cmb

import (
	"fmt"
	gosync "sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/dist/wire"
	"repro/internal/eventq"
	"repro/internal/logic"
	"repro/internal/metrics"
	"repro/internal/mpsc"
	"repro/internal/partition"
	"repro/internal/sim/ckpt"
	"repro/internal/sim/kernel"
	"repro/internal/sim/supervise"
	"repro/internal/simtest/chaos/inject"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vectors"
)

// Mode selects the synchronization variant.
type Mode uint8

// The protocol variants.
const (
	NullEager Mode = iota
	NullDemand
	DeadlockRecovery
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case NullEager:
		return "null-eager"
	case NullDemand:
		return "null-demand"
	case DeadlockRecovery:
		return "deadlock-recovery"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Config parameterizes a conservative run.
type Config struct {
	// Partition assigns gates to LPs; required.
	Partition *partition.Partition
	// Mode selects the protocol variant.
	Mode Mode
	// System is the logic value system.
	System logic.System
	// Queue selects each LP's pending-event set implementation.
	Queue eventq.Impl
	// Watch lists nets to record; nil watches primary outputs.
	Watch []circuit.GateID
	// MaxEvents aborts runaway simulations; 0 means no limit.
	MaxEvents uint64
	// Metrics receives per-LP counters and quiescence-round globals; nil
	// uses a private registry.
	Metrics metrics.Sink
	// Tracer, when non-nil, records per-LP evaluate/block spans and
	// coordinator quiescence-detection spans.
	Tracer *trace.Tracer
	// Chaos, when non-nil, wraps every LP inbox in the fault-injecting
	// chaos transport and enables stall points at the evaluate/block
	// boundaries. Test harness use only; nil leaves the hot path on the
	// raw mailboxes.
	Chaos *inject.Hook
	// HangTimeout, when positive, attaches a progress watchdog: if no LP
	// advances (LVT, safe bound, or processed events) for this long, the
	// run aborts with a supervise.SimError carrying a per-LP hang report.
	HangTimeout time.Duration
	// Boot, when non-nil, resumes from a checkpoint: LP state planes are
	// seeded, pending events routed to their owners and ghosts, and the
	// time-0 settling step skipped. Result.Waveform holds only samples
	// after the boundary (callers prepend the checkpoint's prefix).
	Boot *ckpt.State
	// Sweep arms the kernel's oblivious block sweep on the scalar LPs (the
	// wide LPs always arm it): once a step's dirty set covers half an LP's
	// block, the whole block is evaluated in one levelized pass. Intended
	// for cone-split partitions, whose fat per-cone blocks saturate the
	// dirty set on nearly every active step.
	Sweep bool
	// Dist, when non-nil, runs this process as one shard of a
	// distributed simulation: only the LPs the seam maps to this shard
	// execute locally, remote LPs' mailboxes are replaced by socket
	// outboxes, and inbound batches are delivered through the seam's
	// bindings. Null-message modes only (the deadlock-recovery
	// coordinator needs a global snapshot); scalar runs only.
	Dist *wire.Seam
}

// Result is the outcome of a conservative run.
type Result struct {
	Values   []logic.Value
	Waveform trace.Waveform
	EndTime  circuit.Tick
	Stats    stats.RunStats
}

// infTick is the "never" timestamp.
const infTick = circuit.Tick(^uint64(0))

type msgKind uint8

const (
	msgValue msgKind = iota
	msgNull          // time carries the promise bound
	msgRequest
	msgPermit // time carries the granted global minimum
	msgTerminate
)

type msg[V comparable] struct {
	kind  msgKind
	from  int
	time  circuit.Tick
	gate  circuit.GateID
	value V
}

// msgMeta projects a message to its chaos-transport role: values and
// nulls are timestamped members of their sender's FIFO stream, promise
// requests ride the stream without time semantics, and coordinator
// traffic (permits, terminate) is control that chaos must not touch.
func msgMeta[V comparable](m msg[V]) inject.Meta {
	switch m.kind {
	case msgValue:
		return inject.Meta{Kind: inject.Value, From: m.from, Time: uint64(m.time)}
	case msgNull:
		return inject.Meta{Kind: inject.Null, From: m.from, Time: uint64(m.time)}
	case msgRequest:
		return inject.Meta{Kind: inject.Aux, From: m.from}
	default:
		return inject.Meta{Kind: inject.Control}
	}
}

// outLink is one cross-LP edge with its lookahead.
type outLink struct {
	dst int
	la  circuit.Tick
}

// shared bundles cross-goroutine state of a run.
type shared[V comparable] struct {
	cfg     Config
	engine  string // metrics/supervise label: "cmb" or "cmb-wide"
	boot    bool
	c       *circuit.Circuit
	until   circuit.Tick
	inboxes []mpsc.Transport[msg[V]]
	transit atomic.Int64
	events  atomic.Uint64
	abort   atomic.Bool
	sink    metrics.Sink
	coShard *trace.Shard
	// blockedCnt counts LPs currently parked in WaitDrain (detect mode).
	blockedCnt atomic.Int64
	// rounds counts coordinator permit broadcasts (detect mode): each is a
	// global quiescence detection plus a permit fan-out, priced like a GVT
	// round by the cost model. This is exactly the overhead that makes
	// deadlock recovery slow: the paper's circulating-marker algorithms pay
	// a global synchronization per advance.
	rounds uint64

	failMu  gosync.Mutex
	failErr error
}

// fail records the first fatal protocol error and aborts the run. A
// conservative LP that receives a straggler cannot continue — the past it
// would have to revisit is already evaluated — so the whole run stops and
// Run surfaces the error instead of panicking in an LP goroutine.
func (sh *shared[V]) fail(err error) {
	sh.failMu.Lock()
	if sh.failErr == nil {
		sh.failErr = err
	}
	sh.failMu.Unlock()
	sh.abortAll()
}

// clp is one conservative logical process.
type clp[V comparable] struct {
	id   int
	sh   *shared[V]
	k    *kernel.LPT[V]
	q    eventq.Queue[kernel.EventT[V]]
	st   *metrics.LPBlock
	trsh *trace.Shard
	lvt  circuit.Tick
	safe circuit.Tick // DeadlockRecovery: permit bound; null modes: derived
	// bound, last, reqd, and awaiting are dense per-LP-id slices (length =
	// LP count) rather than maps: the hot promise/handle paths index them
	// per message, and a handful of words per peer is cheaper than map
	// hashing — and allocation-free after setup.
	bound []circuit.Tick
	last  []circuit.Tick // last promise sent per out-link dst
	out   []outLink
	in    []int
	reqd  []bool // dsts that requested a promise (demand mode)
	// awaiting tracks in-links with an outstanding promise request, so a
	// blocked LP keeps at most one request in flight per source; without
	// the bound, mutual re-requesting among blocked LPs becomes a message
	// storm that grows with the LP count.
	awaiting []bool
	// pend/pendDst/pendNull batch outgoing messages per destination,
	// delivered with one PutAll per destination at flush points (before any
	// WaitDrain, and at termination). pendNull[dst] is the index of the
	// batched null message for dst, or -1: promises only increase, so a
	// newer promise overwrites the batched one in place — the fold — and
	// only the strongest promise per flush reaches the wire.
	pend     [][]msg[V]
	pendDst  []int
	pendNull []int
	// nextPub and wakeGen publish quiescence state to the coordinator
	// (DeadlockRecovery mode): the pending-event time while blocked, and a
	// generation bumped on every wake for the double-collect snapshot.
	nextPub atomic.Uint64
	wakeGen atomic.Uint64
	buf     []msg[V]
	evs     []kernel.EventT[V]
	end     circuit.Tick
	// slot is the watchdog scoreboard entry (nil-safe; nil without a
	// watchdog).
	slot *supervise.LPSlot
}

// stimEvent is one pre-routed event whose value is already in the
// engine's value domain: a projected scalar for Run, a packed 64-lane
// word for RunWide.
type stimEvent[V comparable] struct {
	time  circuit.Tick
	gate  circuit.GateID
	value V
}

// Run simulates c under the stimulus until the given time (inclusive).
func Run(c *circuit.Circuit, stim *vectors.Stimulus, until circuit.Tick, cfg Config) (*Result, error) {
	if cfg.Partition == nil {
		return nil, fmt.Errorf("cmb: Config.Partition is required")
	}
	if err := cfg.Partition.Validate(c); err != nil {
		return nil, err
	}
	if err := c.CheckEventDriven(); err != nil {
		return nil, err
	}
	if err := stim.Validate(c); err != nil {
		return nil, err
	}
	if err := checkDist(cfg); err != nil {
		return nil, err
	}
	if cfg.System == 0 {
		cfg.System = logic.NineValued
	}
	if cfg.Boot != nil {
		if err := cfg.Boot.Check(c, cfg.System); err != nil {
			return nil, err
		}
	}
	sink := cfg.Metrics
	if sink == nil {
		sink = metrics.NewRegistry("cmb-" + cfg.Mode.String())
	}
	start := time.Now()

	var stimEvents, bootEvents []stimEvent[logic.Value]
	var seedState func(k *kernel.LP)
	if cfg.Boot == nil {
		stimEvents = make([]stimEvent[logic.Value], 0, len(stim.Changes))
		for _, ch := range stim.Changes {
			stimEvents = append(stimEvents, stimEvent[logic.Value]{ch.Time, ch.Input, cfg.System.Project(ch.Value)})
		}
	} else {
		boot := cfg.Boot
		seedState = func(k *kernel.LP) {
			k.SeedState(boot.Vals, boot.PrevClk, boot.Projected)
		}
		bootEvents = make([]stimEvent[logic.Value], 0, len(boot.Events))
		for _, ev := range boot.Events {
			bootEvents = append(bootEvents, stimEvent[logic.Value]{circuit.Tick(ev.Time), ev.Gate, ev.Value})
		}
	}

	watched := cfg.Watch
	if watched == nil {
		watched = c.Outputs
	}
	n := cfg.Partition.Blocks
	recs := make([]trace.Recorder, n)
	lps, sh, err := runCore(c, until, cfg, sink, "cmb",
		stimEvents, bootEvents, seedState, wireEncScalar, wireDecScalar,
		func(self int, own []circuit.GateID) *kernel.LP {
			k := kernel.New(c, cfg.Partition.Assign, self, cfg.System, watched, own)
			if cfg.Sweep {
				k.EnableSweep(kernel.SweepThreshold(len(own)))
			}
			return k
		},
		func(lp int, t circuit.Tick, g circuit.GateID, v logic.Value) {
			recs[lp].Record(t, g, v)
		})
	if err != nil {
		return nil, err
	}

	res := &Result{Values: make([]logic.Value, len(c.Gates))}
	owner := cfg.Partition.Assign
	for g := range c.Gates {
		res.Values[g] = lps[owner[g]].k.Value(circuit.GateID(g))
	}
	recPtrs := make([]*trace.Recorder, n)
	for i, l := range lps {
		recPtrs[i] = &recs[i]
		if l.end > res.EndTime {
			res.EndTime = l.end
		}
	}
	res.Waveform = trace.Merge(recPtrs...)
	sink.Globals().GVTRounds = sh.rounds
	// null_ratio is the conservative protocol's headline overhead
	// (nulls sent per applied event) as a run gauge — the signal the
	// adaptive engine-switch controller thresholds on.
	tot := metrics.SinkTotals(sink)
	if tot.EventsApplied > 0 {
		sink.SetGauge("null_ratio", float64(tot.NullsSent)/float64(tot.EventsApplied))
	}
	res.Stats = stats.Collect(sink, time.Since(start))
	return res, nil
}

// runCore is the conservative protocol over value type V: it derives the
// LP graph, routes the pre-projected stimulus (or boot) events, runs the
// LP goroutines (plus the coordinator in DeadlockRecovery mode) to
// completion, and returns the finished LPs. Everything value-specific —
// projection, recording, kernel construction, result assembly — lives in
// the Run/RunWide wrappers.
func runCore[V comparable](
	c *circuit.Circuit,
	until circuit.Tick,
	cfg Config,
	sink metrics.Sink,
	engine string,
	stimEvents, bootEvents []stimEvent[V],
	seedState func(k *kernel.LPT[V]),
	wireEnc func(msg[V]) wire.Msg,
	wireDec func(wire.Msg) msg[V],
	newKernel func(self int, own []circuit.GateID) *kernel.LPT[V],
	record func(lp int, t circuit.Tick, g circuit.GateID, v V),
) ([]*clp[V], *shared[V], error) {
	p := cfg.Partition
	n := p.Blocks
	owner := p.Assign
	dist := cfg.Dist
	// local reports LP residency; without a seam every LP is local.
	local := func(lp int) bool { return dist == nil || dist.Local(lp) }

	sh := &shared[V]{cfg: cfg, engine: engine, boot: seedState != nil, c: c, until: until, sink: sink}
	sh.coShard = cfg.Tracer.Shard("coordinator")
	sh.inboxes = make([]mpsc.Transport[msg[V]], n)
	for i := range sh.inboxes {
		if !local(i) {
			// A remote LP's mailbox is a socket outbox: sends cross the
			// seam as encoded frames, and nothing local ever drains it.
			sh.inboxes[i] = &distOutbox[V]{sh: sh, dst: i, enc: wireEnc}
			continue
		}
		var tr mpsc.Transport[msg[V]] = mpsc.NewCap[msg[V]](64)
		if cfg.Chaos != nil {
			tr = inject.Wrap(cfg.Chaos, i, tr, msgMeta[V])
		}
		sh.inboxes[i] = tr
	}
	if dist != nil {
		defer bindDist(sh, engine, wireDec)()
	}
	// laBias widens every link lookahead when the chaos hook's sabotage
	// knob is set: the engine then promises bounds it cannot keep, which
	// the chaos transport's promise checker must catch.
	laBias := circuit.Tick(0)
	if cfg.Chaos != nil {
		laBias = circuit.Tick(cfg.Chaos.LookaheadBias)
	}
	// Derive the LP graph: links and lookaheads.
	type linkKey struct{ src, dst int }
	la := map[linkKey]circuit.Tick{}
	for g := range c.Gates {
		src := owner[g]
		d := c.Gates[g].Delay
		for _, fo := range c.Fanout[g] {
			dst := owner[fo]
			if dst == src {
				continue
			}
			k := linkKey{src, dst}
			if cur, ok := la[k]; !ok || d < cur {
				la[k] = d
			}
		}
	}

	blockGates := p.BlockGates()
	// Per-LP in/out degrees, so link lists allocate exactly once.
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	for k2 := range la {
		outDeg[k2.src]++
		inDeg[k2.dst]++
	}
	// Per-LP working state lives in shared slabs sliced per LP rather than
	// one small make per field per LP: the structures are fixed-size (length
	// or capacity known up front), so a single backing array per field class
	// replaces 10+ allocations per LP. Growable fields (out, in, pendDst,
	// evs, buf) use three-index slices so an append past the reserved
	// capacity reallocates privately instead of clobbering a neighbour.
	totOut, totIn := 0, 0
	for i := 0; i < n; i++ {
		totOut += outDeg[i]
		totIn += inDeg[i]
	}
	var (
		lpSlab      = make([]clp[V], n)
		tickSlab    = make([]circuit.Tick, 2*n*n) // bound + last
		boolSlab    = make([]bool, 2*n*n)         // reqd + awaiting
		pendSlab    = make([][]msg[V], n*n)       // pend headers
		nullSlab    = make([]int, n*n)            // pendNull
		pendDstSlab = make([]int, n*n)            // pendDst dirty lists
		outSlab     = make([]outLink, totOut)
		inSlab      = make([]int, totIn)
		evsSlab     = make([]kernel.EventT[V], n*64)
		bufSlab     = make([]msg[V], n*64)
	)
	for d := range nullSlab {
		nullSlab[d] = -1
	}
	lps := make([]*clp[V], n)
	outOff, inOff := 0, 0
	for i := 0; i < n; i++ {
		l := &lpSlab[i]
		l.id = i
		l.sh = sh
		l.q = eventq.NewCap[kernel.EventT[V]](cfg.Queue, 128)
		l.bound = tickSlab[(2*i)*n : (2*i+1)*n : (2*i+1)*n]
		l.last = tickSlab[(2*i+1)*n : (2*i+2)*n : (2*i+2)*n]
		l.reqd = boolSlab[(2*i)*n : (2*i+1)*n : (2*i+1)*n]
		l.awaiting = boolSlab[(2*i+1)*n : (2*i+2)*n : (2*i+2)*n]
		l.pend = pendSlab[i*n : (i+1)*n : (i+1)*n]
		l.pendNull = nullSlab[i*n : (i+1)*n : (i+1)*n]
		l.pendDst = pendDstSlab[i*n : i*n : (i+1)*n]
		l.out = outSlab[outOff : outOff : outOff+outDeg[i]]
		l.in = inSlab[inOff : inOff : inOff+inDeg[i]]
		l.evs = evsSlab[i*64 : i*64 : (i+1)*64]
		l.buf = bufSlab[i*64 : i*64 : (i+1)*64]
		l.safe = 1
		l.st = sink.LP(i)
		l.trsh = cfg.Tracer.Shard(fmt.Sprintf("lp %d", i))
		outOff += outDeg[i]
		inOff += inDeg[i]
		l.k = newKernel(i, blockGates[i])
		l.k.Schedule = func(t circuit.Tick, g circuit.GateID, v V) {
			l.q.Push(uint64(t), kernel.EventT[V]{Gate: g, Value: v})
		}
		l.k.Send = func(dst int, t circuit.Tick, g circuit.GateID, v V) {
			sh.transit.Add(1)
			l.buffer(dst, msg[V]{kind: msgValue, from: l.id, time: t, gate: g, value: v})
		}
		l.k.Record = func(t circuit.Tick, g circuit.GateID, v V) {
			record(l.id, t, g, v)
		}
		if seedState != nil {
			seedState(l.k)
		}
		lps[i] = l
	}
	for k2, d := range la {
		lps[k2.src].out = append(lps[k2.src].out, outLink{k2.dst, d + laBias})
		lps[k2.src].last[k2.dst] = 0
		lps[k2.dst].in = append(lps[k2.dst].in, k2.src)
		lps[k2.dst].bound[k2.src] = 1
	}

	// Stimulus routing: each input change goes to the owner of the input
	// gate and to every LP that owns a consumer of it (ghost updates). The
	// destination lists live in one flat CSR-style array indexed by input
	// position, with a single reusable seen scratch — no per-input maps.
	initial := make([][]kernel.EventT[V], n)
	idxOf := make([]int32, len(c.Gates))
	deliverOff := make([]int32, len(c.Inputs)+1)
	deliverDst := make([]int, 0, len(c.Inputs))
	seen := make([]bool, n)
	for ii, in := range c.Inputs {
		idxOf[in] = int32(ii)
		start := len(deliverDst)
		seen[owner[in]] = true
		deliverDst = append(deliverDst, owner[in])
		for _, fo := range c.Fanout[in] {
			if b := owner[fo]; !seen[b] {
				seen[b] = true
				deliverDst = append(deliverDst, b)
			}
		}
		for _, d := range deliverDst[start:] {
			seen[d] = false
		}
		deliverOff[ii+1] = int32(len(deliverDst))
	}
	if seedState == nil {
		initCnt := make([]int, n)
		for _, ch := range stimEvents {
			if ch.time != 0 {
				continue
			}
			ii := idxOf[ch.gate]
			for _, dst := range deliverDst[deliverOff[ii]:deliverOff[ii+1]] {
				initCnt[dst]++
			}
		}
		for dst, cnt := range initCnt {
			if cnt > 0 && local(dst) {
				initial[dst] = make([]kernel.EventT[V], 0, cnt)
			}
		}
		for _, ch := range stimEvents {
			if ch.time > until {
				continue
			}
			ev := kernel.EventT[V]{Gate: ch.gate, Value: ch.value}
			ii := idxOf[ch.gate]
			for _, dst := range deliverDst[deliverOff[ii]:deliverOff[ii+1]] {
				// Each shard routes only to its own LPs: every worker holds
				// the full stimulus, so remote destinations are someone
				// else's copy of this same loop.
				if !local(dst) {
					continue
				}
				if ch.time == 0 {
					initial[dst] = append(initial[dst], ev)
				} else {
					lps[dst].q.Push(uint64(ch.time), ev)
				}
			}
		}
	} else {
		// Restore: requeue the checkpoint's pending events instead of the
		// stimulus. Every event goes to its gate's owner and to every LP
		// owning a consumer (the same ghost-update rule as stimulus
		// routing); all times are strictly after the boundary, so nothing
		// lands in the settle step.
		for _, ev := range bootEvents {
			kev := kernel.EventT[V]{Gate: ev.gate, Value: ev.value}
			seen[owner[ev.gate]] = true
			if local(owner[ev.gate]) {
				lps[owner[ev.gate]].q.Push(uint64(ev.time), kev)
			}
			for _, fo := range c.Fanout[ev.gate] {
				if b := owner[fo]; !seen[b] {
					seen[b] = true
					if local(b) {
						lps[b].q.Push(uint64(ev.time), kev)
					}
				}
			}
			seen[owner[ev.gate]] = false
			for _, fo := range c.Fanout[ev.gate] {
				seen[owner[fo]] = false
			}
		}
	}

	// Progress watchdog: a scoreboard the LPs publish to plus a monitor
	// goroutine that fails the run with a hang report when nothing moves.
	var board *supervise.Board
	if cfg.HangTimeout > 0 {
		board = supervise.NewBoard(n)
		for i, l := range lps {
			l.slot = board.LP(i)
		}
	}
	wcfg := supervise.WatchConfig{
		Engine: engine, Timeout: cfg.HangTimeout, Board: board,
		QueueDepth: func(i int) int { return sh.inboxes[i].Len() },
		OnHang:     sh.fail,
	}
	if dist != nil {
		wcfg.Transport = dist.TransportState
	}
	wd := supervise.Watch(wcfg)
	defer wd.Stop()

	var wg gosync.WaitGroup
	for _, l := range lps {
		if !local(l.id) {
			// Remote LPs run on their own shard; mark the slot done so a
			// hang report shows them as not-ours rather than stuck at init.
			l.slot.SetPhase(supervise.PhaseDone)
			continue
		}
		wg.Add(1)
		go func(l *clp[V]) {
			defer wg.Done()
			// Panic isolation: one poisoned LP fails the run cleanly (the
			// abort wakes and drains every sibling) instead of crashing the
			// process.
			defer func() {
				if r := recover(); r != nil {
					l.slot.SetPhase(supervise.PhaseDone)
					l.sh.fail(supervise.FromPanic(engine, l.id, "run", l.lvt, r))
				}
			}()
			metrics.Do(sink, engine, l.id, "run", func() {
				l.run(initial[l.id])
			})
		}(l)
	}
	var coordErr error
	if cfg.Mode == DeadlockRecovery {
		metrics.Do(sink, engine, -1, "coordinate", func() {
			defer func() {
				if r := recover(); r != nil {
					coordErr = supervise.FromPanic(engine, -1, "coordinate", 0, r)
					sh.abortAll()
				}
			}()
			coordErr = coordinate(sh, lps)
		})
	}
	wg.Wait()
	wd.Stop()

	if sh.abort.Load() {
		sh.failMu.Lock()
		ferr := sh.failErr
		sh.failMu.Unlock()
		if ferr != nil {
			return nil, nil, ferr
		}
		if coordErr != nil {
			return nil, nil, coordErr
		}
		return nil, nil, &supervise.SimError{
			Engine: engine, LP: -1, Phase: "run", Kind: supervise.KindEventLimit,
			Cause: fmt.Errorf("event limit %d exceeded", cfg.MaxEvents),
		}
	}
	return lps, sh, nil
}

// safeTime computes the time strictly below which this LP may process.
func (l *clp[V]) safeTime() circuit.Tick {
	if l.sh.cfg.Mode == DeadlockRecovery {
		return l.safe
	}
	min := infTick
	for _, src := range l.in {
		if b := l.bound[src]; b < min {
			min = b
		}
	}
	return min
}

// nextLocal returns the earliest pending event time (infTick if none).
func (l *clp[V]) nextLocal() circuit.Tick {
	if t, ok := l.q.PeekTime(); ok {
		return circuit.Tick(t)
	}
	return infTick
}

// promise computes the bound this LP can currently guarantee on a link
// with the given lookahead: its earliest possible next processing time
// plus the lookahead.
func (l *clp[V]) promise(la circuit.Tick) circuit.Tick {
	e := l.nextLocal()
	if s := l.safeTime(); s < e {
		e = s
	}
	if e > l.sh.until {
		return infTick
	}
	if e > infTick-la {
		return infTick
	}
	return e + la
}

// sendPromises batches increased promises on the selected out-links. A
// promise still buffered from an earlier call is superseded in place (the
// fold): it counts as sent — the protocol work happened — but never reaches
// the wire. Folding is safe because a receiver applies a drained batch in
// full before processing any event, so a value message that precedes the
// strengthened promise inside the batch is enqueued before the new bound is
// acted on, exactly as if both had arrived separately.
func (l *clp[V]) sendPromises(onlyRequested bool) {
	for _, link := range l.out {
		if onlyRequested && !l.reqd[link.dst] {
			continue
		}
		p := l.promise(link.la)
		if p <= l.last[link.dst] {
			continue
		}
		l.last[link.dst] = p
		l.reqd[link.dst] = false
		l.st.NullsSent++
		if i := l.pendNull[link.dst]; i >= 0 {
			l.pend[link.dst][i].time = p
			l.st.NullsFolded++
			continue
		}
		l.pendNull[link.dst] = len(l.pend[link.dst])
		l.buffer(link.dst, msg[V]{kind: msgNull, from: l.id, time: p})
	}
}

// buffer queues one outgoing message for dst until the next flushSends.
// Value messages count transit at their Send site (buffer time), so the
// deadlock-recovery quiescence test cannot pass with unflushed batches.
func (l *clp[V]) buffer(dst int, m msg[V]) {
	if len(l.pend[dst]) == 0 {
		if cap(l.pend[dst]) == 0 {
			l.pend[dst] = make([]msg[V], 0, 96)
		}
		l.pendDst = append(l.pendDst, dst)
	}
	l.pend[dst] = append(l.pend[dst], m)
}

// flushSends delivers every buffered batch, one PutAll per destination,
// preserving per-destination FIFO order. Every path into WaitDrain (and
// termination) flushes first, so no message outlives its sender's
// wakefulness inside a local batch.
func (l *clp[V]) flushSends() {
	for _, dst := range l.pendDst {
		l.sh.inboxes[dst].PutAll(l.pend[dst])
		l.pend[dst] = l.pend[dst][:0]
		l.pendNull[dst] = -1
	}
	l.pendDst = l.pendDst[:0]
}

// handle processes one inbound message; it returns false on terminate.
func (l *clp[V]) handle(m msg[V]) bool {
	switch m.kind {
	case msgValue:
		// A remote sender's message never entered the local transit
		// ledger (it left its shard's at flush and crossed as seam
		// wire-recv), so only locally originated values decrement.
		if d := l.sh.cfg.Dist; d == nil || d.Local(m.from) {
			l.sh.transit.Add(-1)
		}
		l.st.MessagesRecv++
		if m.time < l.lvt {
			l.sh.fail(&supervise.SimError{
				Engine: l.sh.engine, LP: l.id, Phase: "handle", ModeledTime: l.lvt,
				Kind: supervise.KindCausality,
				Cause: fmt.Errorf("causality violation: lp %d received value for t=%d from lp %d after processing t=%d",
					l.id, m.time, m.from, l.lvt),
			})
			return false
		}
		l.q.Push(uint64(m.time), kernel.EventT[V]{Gate: m.gate, Value: m.value})
	case msgNull:
		l.st.NullsRecv++
		l.awaiting[m.from] = false
		if m.time > l.bound[m.from] {
			l.bound[m.from] = m.time
		}
	case msgRequest:
		l.reqd[m.from] = true
	case msgPermit:
		if s := m.time + 1; s > l.safe {
			l.safe = s
		}
	case msgTerminate:
		return false
	}
	return true
}

// run is the LP goroutine body.
func (l *clp[V]) run(initialEvents []kernel.EventT[V]) {
	detect := l.sh.cfg.Mode == DeadlockRecovery
	demand := l.sh.cfg.Mode == NullDemand
	l.slot.SetPhase(supervise.PhaseRun)
	defer l.slot.SetPhase(supervise.PhaseDone)

	if !l.sh.boot {
		// Time-zero settling step (skipped on restore: the checkpoint's
		// state is already settled).
		begin := l.trsh.Now()
		l.k.Step(0, initialEvents, true, nil, &l.st.LPCounters)
		l.st.Hist(metrics.HistStepEvents).Observe(uint64(len(initialEvents)))
		l.trsh.Span(trace.PhaseEvaluate, begin, 0)
	}
	l.end = 0
	if !detect {
		l.sendPromises(false)
	}
	l.flushSends() // initial promises and any settle-step boundary values

	for {
		if l.sh.abort.Load() {
			return
		}
		// Drain whatever has arrived.
		l.buf = l.sh.inboxes[l.id].TryDrain(l.buf[:0])
		for _, m := range l.buf {
			if !l.handle(m) {
				return
			}
		}
		// Process every safe timestep.
		for {
			t := l.nextLocal()
			if t == infTick || t > l.sh.until || t >= l.safeTime() {
				break
			}
			l.evs = l.evs[:0]
			for {
				pt, ok := l.q.PeekTime()
				if !ok || circuit.Tick(pt) != t {
					break
				}
				_, ev, _ := l.q.PopMin()
				l.evs = append(l.evs, ev)
			}
			// The shared counter is always maintained — distributed runs
			// report it in heartbeats — and doubles as the runaway guard.
			if processed := l.sh.events.Add(uint64(len(l.evs))); l.sh.cfg.MaxEvents > 0 && processed > l.sh.cfg.MaxEvents {
				l.sh.abortAll()
				return
			}
			// Publish progress before the step so a single long evaluation
			// is not mistaken for a hang.
			l.slot.AddEvents(uint64(len(l.evs)))
			begin := l.trsh.Now()
			l.k.Step(t, l.evs, false, nil, &l.st.LPCounters)
			l.st.Hist(metrics.HistStepEvents).Observe(uint64(len(l.evs)))
			l.trsh.Span(trace.PhaseEvaluate, begin, t)
			l.lvt = t
			l.end = t
			l.slot.SetLVT(uint64(t))
		}
		if err := l.q.Err(); err != nil {
			l.sh.fail(&supervise.SimError{
				Engine: l.sh.engine, LP: l.id, Phase: "eventq", ModeledTime: l.lvt,
				Kind: supervise.KindCausality, Cause: err,
			})
			return
		}
		l.sh.cfg.Chaos.Stall(l.id, inject.PhaseEvaluate)
		if !detect {
			// Push promises eagerly, or answer outstanding requests only
			// (demand mode); either way only increases are transmitted.
			l.sendPromises(demand)
		}
		// Done? (Null modes only: in DeadlockRecovery the coordinator owns
		// termination and LPs just keep reporting quiescence.)
		if !detect && l.nextLocal() > l.sh.until && l.safeTime() > l.sh.until {
			// Final promises are already infTick via promise().
			l.sendPromises(false)
			l.flushSends()
			return
		}
		if !detect && l.nextLocal() < l.safeTime() && l.nextLocal() <= l.sh.until {
			// More work became processable from the drained messages.
			continue
		}
		// Blocked: wait for news.
		if demand {
			for _, src := range l.in {
				if l.awaiting[src] || l.bound[src] > l.sh.until {
					continue
				}
				l.awaiting[src] = true
				l.buffer(src, msg[V]{kind: msgRequest, from: l.id})
			}
		}
		// About to park: everything buffered — values, folded promises,
		// promise requests — must be on the wire first.
		l.flushSends()
		l.sh.cfg.Chaos.Stall(l.id, inject.PhaseBlock)
		l.st.Blocks++
		l.slot.SetNext(uint64(l.nextLocal()))
		l.slot.SetBound(uint64(l.safeTime()))
		l.slot.SetPhase(supervise.PhaseBlock)
		blockBegin := l.trsh.Now()
		var ok bool
		if detect {
			// Publish quiescence state for the coordinator's double-collect
			// snapshot: next-event time first, then the blocked count, so
			// that count==n implies every published next is current.
			l.nextPub.Store(uint64(l.nextLocal()))
			l.sh.blockedCnt.Add(1)
			l.buf, ok = l.sh.inboxes[l.id].WaitDrain(l.buf[:0])
			// Wake order matters: bump the generation before leaving the
			// blocked count, and leave the count before touching transit
			// (which happens when value messages are handled below).
			l.wakeGen.Add(1)
			l.sh.blockedCnt.Add(-1)
		} else {
			l.buf, ok = l.sh.inboxes[l.id].WaitDrain(l.buf[:0])
		}
		l.trsh.Span(trace.PhaseBlock, blockBegin, trace.NoTick)
		l.slot.SetPhase(supervise.PhaseRun)
		if !ok {
			return
		}
		keep := true
		for _, m := range l.buf {
			if !l.handle(m) {
				keep = false
			}
		}
		if !keep {
			return
		}
	}
}

// abortAll flags a global abort and wakes every LP. Releasing the chaos
// hook's hang fault here guarantees an injected permanent stall cannot
// outlive the abort: the watchdog fires, fail() lands here, and the
// parked LP goroutine is unblocked so wg.Wait always returns.
func (sh *shared[V]) abortAll() {
	sh.abort.Store(true)
	sh.cfg.Chaos.Release()
	for _, ib := range sh.inboxes {
		ib.Poke()
	}
}

// coordinate is the DeadlockRecovery coordinator: it detects global
// quiescence with a double-collect snapshot (every LP blocked, zero
// messages in transit, and no LP woke while the per-LP next-event times
// were being read), then either grants a permit advancing the safe time to
// the global minimum pending event or, when nothing remains inside the
// horizon, terminates the run.
func coordinate[V comparable](sh *shared[V], lps []*clp[V]) error {
	n := len(lps)
	gens := make([]uint64, n)
	quiet := func() bool {
		return sh.blockedCnt.Load() == int64(n) && sh.transit.Load() == 0
	}
	for {
		if sh.abort.Load() {
			return nil
		}
		if !quiet() {
			time.Sleep(50 * time.Microsecond)
			continue
		}
		// Double-collect: generation snapshot, reads, generation re-check.
		for i, l := range lps {
			gens[i] = l.wakeGen.Load()
		}
		if !quiet() {
			continue
		}
		gmin := infTick
		for _, l := range lps {
			if t := circuit.Tick(l.nextPub.Load()); t < gmin {
				gmin = t
			}
		}
		stable := quiet()
		for i, l := range lps {
			if l.wakeGen.Load() != gens[i] {
				stable = false
			}
		}
		if !stable {
			continue
		}
		if gmin > sh.until {
			for _, ib := range sh.inboxes {
				ib.Put(msg[V]{kind: msgTerminate})
			}
			return nil
		}
		sh.rounds++
		roundBegin := sh.coShard.Now()
		for _, ib := range sh.inboxes {
			ib.Put(msg[V]{kind: msgPermit, time: gmin})
		}
		sh.coShard.Span(trace.PhaseGVT, roundBegin, gmin)
		// Wait until every LP has observably woken (its generation moved
		// past the snapshot) before re-evaluating quiescence; watching the
		// blocked count instead would race with an LP that wakes and
		// re-blocks between two polls.
		for !sh.abort.Load() {
			woke := true
			for i, l := range lps {
				if l.wakeGen.Load() == gens[i] {
					woke = false
					break
				}
			}
			if woke {
				break
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
}
