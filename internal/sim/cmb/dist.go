package cmb

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/dist/wire"
	"repro/internal/logic"
	"repro/internal/sim/supervise"
)

// checkDist validates a distributed configuration. The null-message
// modes distribute cleanly — promises are point-to-point and carry their
// own bounds, so the protocol is oblivious to which side of a socket a
// neighbour lives on — but DeadlockRecovery needs a global
// double-collect snapshot of every LP's blocked state, which has no
// sound per-shard restriction; the coordinator would have to observe
// remote wake generations atomically. Distributed runs therefore keep
// to the null modes.
func checkDist(cfg Config) error {
	if cfg.Dist == nil {
		return nil
	}
	if cfg.Mode == DeadlockRecovery {
		return fmt.Errorf("cmb: distributed runs do not support deadlock-recovery mode (quiescence detection is a global snapshot)")
	}
	return nil
}

// wireEncScalar projects a scalar conservative message onto the wire
// format. Conservative messages carry no identity, so ID stays zero.
func wireEncScalar(m msg[logic.Value]) wire.Msg {
	return wire.Msg{
		Kind:  uint8(m.kind),
		From:  int32(m.from),
		Time:  uint64(m.time),
		Gate:  int32(m.gate),
		Value: uint8(m.value),
	}
}

// wireDecScalar is the inverse projection.
func wireDecScalar(w wire.Msg) msg[logic.Value] {
	return msg[logic.Value]{
		kind:  msgKind(w.Kind),
		from:  int(w.From),
		time:  circuit.Tick(w.Time),
		gate:  circuit.GateID(w.Gate),
		value: logic.Value(w.Value),
	}
}

// distOutbox is the remote half of the transport seam: an
// mpsc.Transport standing in for a remote LP's mailbox, whose PutAll
// encodes the batch and hands it to the socket seam as one frame (so
// batch atomicity and per-sender FIFO survive the wire). Value messages
// leave the local transit ledger here, after the seam has counted them
// sent, so no quiescence accounting can observe them in neither ledger.
// The drain side is never used — no local goroutine owns a remote LP.
type distOutbox[V comparable] struct {
	sh  *shared[V]
	dst int
	enc func(msg[V]) wire.Msg
}

func (o *distOutbox[V]) Put(m msg[V]) { o.PutAll([]msg[V]{m}) }

func (o *distOutbox[V]) PutAll(ms []msg[V]) {
	if len(ms) == 0 {
		return
	}
	ws := make([]wire.Msg, len(ms))
	vals := int64(0)
	for i, m := range ms {
		ws[i] = o.enc(m)
		if m.kind == msgValue {
			vals++
		}
	}
	o.sh.cfg.Dist.Send(o.dst, ws)
	if vals > 0 {
		o.sh.transit.Add(-vals)
	}
}

func (o *distOutbox[V]) TryDrain(buf []msg[V]) []msg[V]          { return buf }
func (o *distOutbox[V]) WaitDrain(buf []msg[V]) ([]msg[V], bool) { return buf, false }
func (o *distOutbox[V]) Poke()                                   {}
func (o *distOutbox[V]) Close()                                  {}
func (o *distOutbox[V]) Len() int                                { return 0 }

// bindDist wires the seam to this worker's local mailboxes: inbound
// batches decode and deliver with one PutAll (atomicity preserved), a
// link failure aborts the run, and the heartbeat probe reads the shared
// event counter. Returns the deferred unhook.
func bindDist[V comparable](sh *shared[V], engine string, dec func(wire.Msg) msg[V]) func() {
	dist := sh.cfg.Dist
	for i := range sh.inboxes {
		if !dist.Local(i) {
			continue
		}
		ib := sh.inboxes[i]
		dist.Bind(i, func(ws []wire.Msg) {
			batch := make([]msg[V], len(ws))
			for j, w := range ws {
				batch[j] = dec(w)
			}
			ib.PutAll(batch)
		})
	}
	dist.OnDown(func(err error) {
		sh.fail(&supervise.SimError{
			Engine: engine, LP: -1, Phase: "transport",
			Kind: supervise.KindInternal, Cause: err,
		})
	})
	dist.SetProgress(func() (uint64, bool) { return sh.events.Load(), false })
	return func() {
		dist.OnDown(nil)
		dist.SetProgress(nil)
	}
}
