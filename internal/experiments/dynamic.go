package experiments

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/sync"
	"repro/internal/stats"
	"repro/internal/vectors"
)

// E15Dynamic evaluates dynamic load balancing under a drifting hot spot:
// "dynamic load balancing is being considered to react to variations in
// computational workload" (Section VI). The circuit is a bank of
// independent chains whose hot subset rotates over the run, so any static
// assignment — even one informed by pre-simulation of the full run — is
// wrong most of the time, while migration tracks the drift.
func E15Dynamic(s Scale) (*Table, error) {
	chainLen := 24
	width := 8
	vecsPerPhase := 10
	if s == Full {
		chainLen = 64
		width = 16
		vecsPerPhase = 20
	}
	const chains = 32
	const phases = 4
	const lps = 8
	// Each module is a ladder: `width` parallel inverter chains fed by one
	// input, so an active module keeps `width` gates busy every timestep —
	// enough per-step work that load placement, not the barrier, bounds
	// the synchronous engine.
	b := circuit.NewBuilder()
	for ch := 0; ch < chains; ch++ {
		in := b.Input(fmt.Sprintf("in%d", ch))
		var last circuit.GateID
		for wdt := 0; wdt < width; wdt++ {
			prev := in
			for g := 0; g < chainLen; g++ {
				prev = b.Gate(circuit.Not, fmt.Sprintf("c%dw%dg%d", ch, wdt, g), prev)
			}
			last = prev
		}
		b.Output(fmt.Sprintf("out%d", ch), last)
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	// The hot window of 8 chains rotates each phase: 0-7, 8-15, 16-23,
	// 24-31. Contiguous partitioning places each window on ~2 LPs, so the
	// static assignment concentrates all work on a quarter of the machine
	// at any instant.
	var chs []vectors.Change
	for _, in := range c.Inputs {
		chs = append(chs, vectors.Change{Time: 0, Input: in, Value: logic.Zero})
	}
	period := circuit.Tick(4 * chainLen)
	vec := 0
	for ph := 0; ph < phases; ph++ {
		lo := ph * chains / phases
		hi := (ph + 1) * chains / phases
		for k := 0; k < vecsPerPhase; k++ {
			vec++
			t := circuit.Tick(vec) * period
			for i := lo; i < hi; i++ {
				chs = append(chs, vectors.Change{Time: t, Input: c.Inputs[i], Value: logic.FromBool(vec%2 == 1)})
			}
		}
	}
	stim := &vectors.Stimulus{Changes: chs, End: circuit.Tick(vec) * period}
	stim.Sort()
	w := &workload{c: c, stim: stim, until: core.Horizon(c, stim)}
	base, err := baselineFor(w)
	if err != nil {
		return nil, err
	}
	m := defaultModel()
	seqTime := stats.SequentialTime(m,
		base.SeqWork.Evaluations, base.SeqWork.EventsApplied, base.SeqWork.EventsScheduled)

	t := &Table{
		ID:     "E15",
		Title:  "dynamic load balancing under a rotating hot spot (sync, 8 LPs)",
		Claim:  "dynamic load balancing is being considered to react to variations in computational workload",
		Header: []string{"policy", "migrations", "speedup"},
	}
	p, err := partition.New(partition.MethodContiguous, c, lps, partition.Options{})
	if err != nil {
		return nil, err
	}
	run := func(name string, reb sync.RebalanceConfig) error {
		res, err := sync.Run(c, stim, w.until, sync.Config{
			Partition: p, System: logic.TwoValued, Rebalance: reb,
		})
		if err != nil {
			return err
		}
		sp := stats.Speedup(seqTime, res.Stats.ModeledTime(m))
		t.Rows = append(t.Rows, []string{name, d(res.Migrations), f2(sp)})
		return nil
	}
	if err := run("static", sync.RebalanceConfig{}); err != nil {
		return nil, err
	}
	if err := run("dynamic(every 64 steps)", sync.RebalanceConfig{Interval: 64}); err != nil {
		return nil, err
	}
	if err := run("dynamic(every 16 steps)", sync.RebalanceConfig{Interval: 16}); err != nil {
		return nil, err
	}
	// Pre-simulation over the whole run averages the rotating hot spot
	// into near-uniform weights, which cannot help a drifting load; shown
	// for contrast.
	prof, err := core.PreSimulate(c, stim, w.until, logic.TwoValued)
	if err != nil {
		return nil, err
	}
	pw, err := partition.New(partition.MethodContiguous, c, lps, partition.Options{Weights: prof})
	if err != nil {
		return nil, err
	}
	resPre, err := sync.Run(c, stim, w.until, sync.Config{Partition: pw, System: logic.TwoValued})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"static+presim", "0",
		f2(stats.Speedup(seqTime, resPre.Stats.ModeledTime(m)))})
	t.Notes = append(t.Notes, "the hot chains rotate through four regions; static assignments idle 3/4 of the machine")
	return t, nil
}
