package experiments

import (
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/seq"
	"repro/internal/stats"
)

// E16CriticalPath measures the data-dependency critical path of each
// workload — the makespan on an idealized machine with unlimited
// processors and free communication — and compares the real engines
// against that bound. This is the critical-path analysis technique of the
// parallel-simulation literature: it separates "the algorithm is wasting
// parallelism" from "the workload has no parallelism to find", the
// distinction behind the paper's observation that performance varies
// dramatically from one circuit to the next (circuit structure is one of
// the five factors).
func E16CriticalPath(s Scale) (*Table, error) {
	sizes := []int{1000, 5000}
	vecs := 25
	if s == Full {
		sizes = []int{1000, 5000, 20000}
		vecs = 50
	}
	t := &Table{
		ID:     "E16",
		Title:  "achieved speedup vs the data-dependency bound (ideal parallelism)",
		Claim:  "with all other factors equal, parallel simulator performance can vary dramatically from one circuit to the next [circuit structure is a primary factor]",
		Header: []string{"circuit", "ideal", "tw-8", "tw-32", "eff-8", "eff-32"},
	}
	m := defaultModel()
	row := func(name string, w *workload) error {
		ref, err := seq.Run(w.c, w.stim, w.until, seq.Config{
			System: logic.TwoValued, CriticalPath: true,
		})
		if err != nil {
			return err
		}
		seqTime := stats.SequentialTime(m,
			ref.Counters.Evaluations, ref.Counters.EventsApplied, ref.Counters.EventsScheduled)
		ideal := stats.Speedup(seqTime, ref.CriticalPath)
		base := &core.Report{SeqWork: ref.Counters}
		sp8, _, err := speedupOf(w, base, core.Options{
			Engine: core.EngineTimeWarp, LPs: 8, Partition: partition.MethodFM, PartitionSeed: 3,
		})
		if err != nil {
			return err
		}
		sp32, _, err := speedupOf(w, base, core.Options{
			Engine: core.EngineTimeWarp, LPs: 32, Partition: partition.MethodFM, PartitionSeed: 3,
		})
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			name, f2(ideal), f2(sp8), f2(sp32), f2(sp8 / ideal), f2(sp32 / ideal),
		})
		return nil
	}
	for i, n := range sizes {
		c, err := sizedCircuit(n, int64(60+i), gen.Unit)
		if err != nil {
			return nil, err
		}
		w, err := randomWorkload(c, vecs, 40, 0.5, int64(61+i))
		if err != nil {
			return nil, err
		}
		if err := row(d(n)+"-dag", w); err != nil {
			return nil, err
		}
	}
	// A deep serial structure for contrast: the ripple-carry adder's carry
	// chain leaves almost nothing for any parallel algorithm to find.
	bits := 64
	if s == Full {
		bits = 256
	}
	rc, err := gen.RippleAdder(bits, gen.Unit)
	if err != nil {
		return nil, err
	}
	w, err := randomWorkload(rc, vecs, circuit.Tick(4*bits), 0.5, 71)
	if err != nil {
		return nil, err
	}
	if err := row("ripple-adder", w); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"ideal = modeled sequential time / critical-path makespan (unlimited processors, free communication)",
		"eff-N = achieved Time Warp speedup at N LPs divided by the ideal bound")
	return t, nil
}
