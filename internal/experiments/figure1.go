package experiments

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/partition"
)

// Figure1 reproduces the paper's only figure: reported speedup on 8
// processors versus number of circuit elements, for the synchronous,
// conservative asynchronous, and optimistic asynchronous algorithms.
//
// The paper's figure aggregates incomparable published implementations;
// this controlled version runs the three algorithms on identical circuits,
// partitions, and vectors, and reports modeled speedups. The trends under
// test: conservative lags, synchronous and optimistic do well, and all
// three improve with circuit size (more concurrent events per timestep).
func Figure1(s Scale) (*Table, error) {
	sizes := []int{200, 1000, 5000}
	vecs := 30
	if s == Full {
		sizes = []int{200, 1000, 5000, 20000, 50000}
		vecs = 60
	}
	const lps = 8
	t := &Table{
		ID:     "F1",
		Title:  "modeled speedup on 8 LPs vs circuit size",
		Claim:  "Figure 1: none of the conservative implementations reported good performance, while a number of synchronous and optimistic implementations performed well",
		Header: []string{"gates", "seq-events", "sync", "cmb", "timewarp"},
	}
	for i, n := range sizes {
		c, err := sizedCircuit(n, int64(100+i), gen.Unit)
		if err != nil {
			return nil, err
		}
		w, err := randomWorkload(c, vecs, 40, 0.5, int64(200+i))
		if err != nil {
			return nil, err
		}
		base, err := baselineFor(w)
		if err != nil {
			return nil, err
		}
		row := []string{d(c.NumGates()), d(base.SeqWork.EventsApplied)}
		for _, eng := range []core.Engine{core.EngineSync, core.EngineCMB, core.EngineTimeWarp} {
			sp, _, err := speedupOf(w, base, core.Options{
				Engine: eng, LPs: lps, Partition: partition.MethodFM, PartitionSeed: 1,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(sp))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"speedup = modeled sequential time / modeled parallel time (see package stats)",
		"identical circuits, FM partitions, and random vectors across all three algorithms")
	return t, nil
}

// E2Scaling reproduces the synchronous-scaling observation: barrier cost
// grows with the processor population while per-LP work shrinks, so the
// synchronous curve flattens; the asynchronous engines avoid the global
// barrier.
func E2Scaling(s Scale) (*Table, error) {
	n := 2000
	vecs := 25
	if s == Full {
		n = 10000
		vecs = 50
	}
	c, err := sizedCircuit(n, 7, gen.Unit)
	if err != nil {
		return nil, err
	}
	w, err := randomWorkload(c, vecs, 40, 0.5, 7)
	if err != nil {
		return nil, err
	}
	base, err := baselineFor(w)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E2",
		Title:  "modeled speedup vs LP count",
		Claim:  "synchronous algorithms have difficulty scaling to large numbers of processors since the time required to perform the barrier synchronization grows with processor population",
		Header: []string{"LPs", "sync", "sync-barrier-share", "timewarp", "cmb"},
	}
	for _, lps := range []int{1, 2, 4, 8, 16, 32} {
		row := []string{d(lps)}
		spSync, rep, err := speedupOf(w, base, core.Options{
			Engine: core.EngineSync, LPs: lps, Partition: partition.MethodFM, PartitionSeed: 2,
		})
		if err != nil {
			return nil, err
		}
		row = append(row, f2(spSync))
		// Barrier share of the modeled time.
		m := defaultModel()
		barrier := float64(rep.Metrics.Globals.Barriers) * m.Barrier(lps)
		row = append(row, f2(barrier/rep.Modeled))
		for _, eng := range []core.Engine{core.EngineTimeWarp, core.EngineCMB} {
			sp, _, err := speedupOf(w, base, core.Options{
				Engine: eng, LPs: lps, Partition: partition.MethodFM, PartitionSeed: 2,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(sp))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
