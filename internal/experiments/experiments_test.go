package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllListsUniqueRunnableIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Name == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
		got, ok := ByID(e.ID)
		if !ok || got.Name != e.Name {
			t.Fatalf("ByID(%s) broken", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:     "T",
		Title:  "demo",
		Claim:  "claimed",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:  []string{"a note"},
	}
	out := tb.Render()
	for _, want := range []string{"== T: demo ==", "paper: claimed", "long-header", "333333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header and rows start each column at the same
	// offset; check the second column of row 0 aligns under the header.
	lines := strings.Split(out, "\n")
	var headerLine, rowLine string
	for i, l := range lines {
		if strings.HasPrefix(l, "a") && i+1 < len(lines) {
			headerLine, rowLine = l, lines[i+1]
			break
		}
	}
	if strings.Index(headerLine, "long-header") != strings.Index(rowLine, "2") {
		t.Errorf("columns misaligned:\n%s\n%s", headerLine, rowLine)
	}
}

// TestQuickExperimentsRun exercises the cheapest experiments end to end;
// the heavyweight ones are covered by bench_test.go and cmd/experiments.
func TestQuickExperimentsRun(t *testing.T) {
	for _, id := range []string{"E3", "E7", "E15"} {
		e, _ := ByID(id)
		tb, err := e.Run(Quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		if tb.ID != id {
			t.Fatalf("%s: table id %s", id, tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s: ragged row %v", id, row)
			}
		}
	}
}

// TestE3CrossoverDirection pins the central claim of the activity
// experiment: the oblivious/event-driven cost ratio falls as activity
// rises (oblivious gets relatively better).
func TestE3CrossoverDirection(t *testing.T) {
	tb, err := E3Activity(Quick)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		return v
	}
	first := parse(tb.Rows[0][len(tb.Header)-1])
	last := parse(tb.Rows[len(tb.Rows)-1][len(tb.Header)-1])
	if first <= last {
		t.Fatalf("oblivious/event-driven ratio did not fall with activity: %f -> %f", first, last)
	}
}
