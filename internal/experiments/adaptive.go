package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/partition"
	"repro/internal/sim/adapt"
	"repro/internal/vectors"
)

// E20Adaptive compares static protocol choices against closed-loop
// adaptive control on the E19 workload swept across activity. The
// paper's future directions ask for dynamic load estimation and runtime
// control of the synchronization mechanism; E20 closes that loop: the
// run starts on the eager-null conservative engine, the switch
// supervisor observes the first probe segment's null-per-event ratio,
// and migrates the job through a sequential-shadow checkpoint when the
// protocol is wrong for the workload. Wall-clock here is real (not
// modeled), because the claim under test is that the controller's probe
// overhead is small against the cost of staying on the wrong protocol.
func E20Adaptive(s Scale) (*Table, error) {
	vecs := 192
	runs := 3
	if s == Full {
		vecs = 1536
		runs = 5
	}
	const lps = 8
	c, err := gen.RandomDAG(gen.RandomConfig{Gates: 300, Inputs: 12, Outputs: 8, Locality: 0.6, Seed: 11})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E20",
		Title: "static vs adaptive synchronization (8 LPs, wall-clock)",
		Claim: "dynamic load estimation and runtime control of the synchronization mechanism (future directions)",
		Header: []string{"activity", "config", "ms", "nulls", "rollbacks", "switches", "segments", "final"},
	}
	base := core.Options{
		LPs: lps, Partition: partition.MethodFM, PartitionSeed: 11,
		System: logic.TwoValued,
	}
	for _, activity := range []float64{0.1, 0.5, 0.9} {
		stim, err := vectors.Random(c, vectors.RandomConfig{
			Vectors: vecs, Period: 30, Activity: activity, Seed: 11,
		})
		if err != nil {
			return nil, err
		}
		until := core.Horizon(c, stim)
		// Best-of-N wall clock: the quantity under test is the cost the
		// configuration cannot avoid, not scheduler noise on a busy host.
		measure := func(opts core.Options) (time.Duration, *core.Report, error) {
			var best time.Duration = 1 << 62
			var rep *core.Report
			for i := 0; i < runs; i++ {
				start := time.Now()
				r, err := core.Simulate(c, stim, until, opts)
				if err != nil {
					return 0, nil, err
				}
				if d := time.Since(start); d < best {
					best, rep = d, r
				}
			}
			return best, rep, nil
		}
		row := func(name string, dur time.Duration, rep *core.Report) {
			tot := rep.Stats.Total()
			swch, segs, final := "-", "-", "-"
			if rep.Adapt != nil {
				swch = d(rep.Adapt.EngineSwitches)
				segs = d(rep.Adapt.Segments)
				final = rep.Adapt.FinalEngine.String()
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1f", activity), name,
				fmt.Sprintf("%.2f", float64(dur.Microseconds())/1e3),
				d(tot.NullsSent), d(tot.EventsRolledBack), swch, segs, final,
			})
		}
		for _, eng := range []core.Engine{core.EngineCMB, core.EngineHybrid, core.EngineTimeWarp} {
			o := base
			o.Engine = eng
			dur, rep, err := measure(o)
			if err != nil {
				return nil, err
			}
			row("static/"+eng.String(), dur, rep)
		}
		o := base
		o.Engine = core.EngineCMB
		// Probe cadence and budget as in the Adapt/* benchmark rows: two
		// short segments of evidence, then commit whatever the controller
		// chose and run unsegmented to the horizon.
		o.Adapt = &adapt.Spec{Every: 128, MaxProbes: 2}
		dur, rep, err := measure(o)
		if err != nil {
			return nil, err
		}
		row("adaptive(start=cmb)", dur, rep)
	}
	t.Notes = append(t.Notes,
		"adaptive starts on the worst protocol for low activity; the switch supervisor migrates it off after one 128-tick probe segment",
		"probe cost is bounded by MaxProbes; the committed engine runs the rest of the horizon unsegmented")
	return t, nil
}
