// Package experiments regenerates every figure and quantitative claim of
// the paper's evaluation discussion as a reproducible table. Each
// experiment is a pure function from a scale (quick for CI, full for the
// recorded results) to a Table; the cmd/experiments binary prints them and
// bench_test.go exercises them under the Go benchmark harness.
//
// See DESIGN.md for the experiment index (F1, E2..E14) mapping each table
// to the sentence of the paper it reproduces.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/stats"
	"repro/internal/vectors"
)

// Scale selects the experiment size.
type Scale uint8

// The scales.
const (
	// Quick shrinks circuits and vector counts for test runs.
	Quick Scale = iota
	// Full is the configuration recorded in EXPERIMENTS.md.
	Full
)

// Table is one rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper statement under test
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table for terminals and EXPERIMENTS.md.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiment is a runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func(Scale) (*Table, error)
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"F1", "speedup vs circuit size (Figure 1)", Figure1},
		{"E2", "speedup vs processor count", E2Scaling},
		{"E3", "activity crossover: oblivious vs event-driven", E3Activity},
		{"E4", "partitioning heuristics", E4Partitioners},
		{"E5", "LP granularity", E5Granularity},
		{"E6", "state saving policies", E6StateSaving},
		{"E7", "cancellation policies", E7Cancellation},
		{"E8", "conservative variants and null traffic", E8NullMessages},
		{"E9", "timing granularity", E9TimingGranularity},
		{"E10", "pre-simulation load estimation", E10PreSimulation},
		{"E11", "performance stability", E11Variance},
		{"E12", "hybrid hierarchical synchronization", E12Hybrid},
		{"E13", "data-parallel fault simulation", E13FaultParallel},
		{"E14", "pending-event set implementations", E14EventQueues},
		{"E15", "dynamic load balancing", E15Dynamic},
		{"E16", "critical-path (ideal parallelism) analysis", E16CriticalPath},
		{"E17", "word-level data parallelism (PPSFP)", E17WordParallel},
		{"E20", "static vs adaptive synchronization control", E20Adaptive},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared workload builders -------------------------------------------

// sizedCircuit builds a random layered DAG with roughly n gates.
func sizedCircuit(n int, seed int64, delays gen.DelaySpec) (*circuit.Circuit, error) {
	inputs := 8 + n/64
	if inputs > 128 {
		inputs = 128
	}
	outputs := 4 + n/128
	if outputs > 64 {
		outputs = 64
	}
	return gen.RandomDAG(gen.RandomConfig{
		Gates: n, Inputs: inputs, Outputs: outputs,
		Locality: 0.6, Seed: seed, Delays: delays,
	})
}

// workload bundles a circuit with its stimulus and horizon.
type workload struct {
	c     *circuit.Circuit
	stim  *vectors.Stimulus
	until circuit.Tick
}

// randomWorkload attaches random vectors to a circuit.
func randomWorkload(c *circuit.Circuit, vecs int, period circuit.Tick, activity float64, seed int64) (*workload, error) {
	stim, err := vectors.Random(c, vectors.RandomConfig{
		Vectors: vecs, Period: period, Activity: activity, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &workload{c: c, stim: stim, until: core.Horizon(c, stim)}, nil
}

// baselineFor runs the sequential engine once.
func baselineFor(w *workload) (*core.Report, error) {
	return core.Simulate(w.c, w.stim, w.until, core.Options{
		Engine: core.EngineSeq, System: logic.TwoValued,
	})
}

// speedupOf runs an engine and returns its modeled speedup plus report.
func speedupOf(w *workload, base *core.Report, opts core.Options) (float64, *core.Report, error) {
	opts.System = logic.TwoValued
	rep, err := core.Simulate(w.c, w.stim, w.until, opts)
	if err != nil {
		return 0, nil, err
	}
	return rep.SpeedupOver(base, stats.CostModel{}), rep, nil
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// d formats an integer.
func d[T int | int64 | uint64](v T) string { return fmt.Sprintf("%d", v) }
